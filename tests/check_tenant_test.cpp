// Multi-tenant checking layer: expand_tenants() spec surgery, the
// `;tenants=` repro-string round-trip, and the oracle's tenant-isolation
// invariant (6) — a bystander tenant's reads must be bit-for-bit what its
// solo run observes, across failures, GC, and spills injected at tenant 0.
#include <gtest/gtest.h>

#include <string>

#include "check/campaign.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "core/multi_tenant.hpp"
#include "core/setups.hpp"
#include "core/workflow.hpp"

namespace dstage::check {
namespace {

TEST(ExpandTenantsTest, ClonesComponentsAndKeepsTenantZeroNamesFirst) {
  auto spec = core::table2_setup(core::Scheme::kUncoordinated);
  const auto solo_components = spec.components.size();
  const std::string first_name = spec.components.front().name;

  spec.tenancy.tenants = 3;
  spec.tenancy.fair_share = true;
  core::expand_tenants(spec);

  ASSERT_EQ(spec.components.size(), 3 * solo_components);
  // Tenant 0 comes first with original names: pre-expansion component
  // indices and trace names stay valid.
  EXPECT_EQ(spec.components.front().name, first_name);
  EXPECT_EQ(spec.components.front().tenant, 0);
  // Tenant t > 0 clones carry the @t suffix and their tenant stamp.
  const auto& clone = spec.components[solo_components];
  EXPECT_NE(clone.name.find(core::tenant_suffix(1)), std::string::npos);
  EXPECT_EQ(clone.tenant, 1);
  // fair_share with empty weights: equal weights over all tenants, and
  // forwarded to the staging governor.
  ASSERT_EQ(spec.tenancy.weights.size(), 3u);
  EXPECT_EQ(spec.tenancy.weights.at(0), spec.tenancy.weights.at(2));
  EXPECT_EQ(spec.staging.tenant_weights.size(), 3u);

  // Idempotent: a second expansion is a no-op.
  core::expand_tenants(spec);
  EXPECT_EQ(spec.components.size(), 3 * solo_components);
}

TEST(ExpandTenantsTest, SingleTenantSpecIsUntouched) {
  auto spec = core::table2_setup(core::Scheme::kUncoordinated);
  const auto before = spec.components.size();
  core::expand_tenants(spec);
  EXPECT_EQ(spec.components.size(), before);
  EXPECT_FALSE(spec.tenancy.expanded);
  EXPECT_TRUE(spec.staging.tenant_weights.empty());
}

TEST(ScheduleTenantTest, ReproStringRoundTripsTenants) {
  GenerateOptions gen;
  gen.count = 4;
  gen.seed = 9;
  gen.tenants = 3;
  const auto schedules = generate_schedules(gen);
  ASSERT_FALSE(schedules.empty());
  for (const Schedule& s : schedules) {
    EXPECT_EQ(s.tenants, 3);
    const std::string repro = s.repro();
    EXPECT_NE(repro.find(";tenants=3"), std::string::npos);
    EXPECT_EQ(Schedule::parse(repro), s);
  }
  // Single-tenant schedules serialize exactly as before the field existed
  // (old repro strings keep replaying byte-identically).
  gen.tenants = 1;
  for (const Schedule& s : generate_schedules(gen)) {
    EXPECT_EQ(s.repro().find(";tenants="), std::string::npos);
  }
}

TEST(OracleTenantTest, MultiTenantCampaignChecksIsolationAndPasses) {
  // Failures target tenant 0, so tenants 1..N-1 are provable bystanders;
  // invariant 6 rebases every bystander read onto the solo-run reference.
  CampaignOptions opts;
  opts.gen.count = 10;
  opts.gen.seed = 5;
  opts.gen.tenants = 2;
  opts.threads = 2;
  const CampaignResult result = run_campaign(opts);
  EXPECT_EQ(result.passed, 10);
  EXPECT_TRUE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    ADD_FAILURE() << f.schedule.repro() << "\n" << f.report.summary();
  }
  // The isolation invariant must have actually compared bystander reads —
  // a vacuous pass (zero comparisons) is a checker bug, and tools/campaign
  // --require-isolation gates on exactly this counter.
  EXPECT_GT(result.isolation_reads_checked, 0u);
  EXPECT_GT(result.total_failures_injected, 0u);
}

TEST(OracleTenantTest, SabotageIsCaughtUnderMultiTenancy) {
  // The oracle must stay sharp with tenants attached: a scheme sabotaged
  // into skipping replay still fails the campaign, and the shrunk repro
  // preserves the tenant count (the bug only manifests in this topology).
  CampaignOptions opts;
  opts.gen.count = 6;
  opts.gen.seed = 1;
  opts.gen.tenants = 2;
  opts.gen.schemes = {core::Scheme::kUncoordinated, core::Scheme::kHybrid};
  opts.threads = 2;
  opts.sabotage = Sabotage::kSkipReplay;
  opts.max_shrunk = 1;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    EXPECT_EQ(f.schedule.tenants, 2);
    EXPECT_NE(f.schedule.repro().find(";tenants=2"), std::string::npos);
  }
}

}  // namespace
}  // namespace dstage::check
