// End-to-end workflow tests: every fault-tolerance scheme runs the Table-II
// coupled workflow to completion and exhibits the paper's semantics.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/setups.hpp"

namespace dstage::core {
namespace {

WorkflowSpec small_spec(Scheme scheme, int failures, std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(scheme);
  spec.total_ts = 12;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  return spec;
}

RunMetrics run(const WorkflowSpec& spec) {
  WorkflowRunner runner(spec);
  return runner.run();
}

TEST(WorkflowTest, FailureFreeBaselineCompletes) {
  auto m = run(small_spec(Scheme::kNone, 0, 1));
  EXPECT_EQ(m.failures_injected, 0);
  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_EQ(m.components.size(), 2u);
  for (const auto& c : m.components) {
    EXPECT_EQ(c.timesteps_done, 12);
    EXPECT_EQ(c.timesteps_reworked, 0);
    EXPECT_EQ(c.checkpoints, 0);
  }
  EXPECT_GT(m.total_time_s, 0);
  EXPECT_GT(m.staging.puts, 0u);
  EXPECT_EQ(m.staging.puts, m.staging.gets);  // 1:1 coupling pattern
}

TEST(WorkflowTest, SchemesCheckpointAtTheirPeriods) {
  // Coordinated: period 4 over 12 ts → 3 checkpoints for each component.
  auto co = run(small_spec(Scheme::kCoordinated, 0, 1));
  EXPECT_EQ(co.component("simulation").checkpoints, 3);
  EXPECT_EQ(co.component("analytic").checkpoints, 3);
  // Uncoordinated: sim period 4 → 3; analytic period 5 → 2.
  auto un = run(small_spec(Scheme::kUncoordinated, 0, 1));
  EXPECT_EQ(un.component("simulation").checkpoints, 3);
  EXPECT_EQ(un.component("analytic").checkpoints, 2);
  // Hybrid: the analytic is replicated and never checkpoints.
  auto hy = run(small_spec(Scheme::kHybrid, 0, 1));
  EXPECT_EQ(hy.component("analytic").checkpoints, 0);
  EXPECT_GT(hy.component("simulation").checkpoints, 0);
}

TEST(WorkflowTest, UncoordinatedRecoversConsistently) {
  for (std::uint64_t seed : {1, 2, 3, 6, 7, 9, 10}) {
    auto m = run(small_spec(Scheme::kUncoordinated, 1, seed));
    EXPECT_EQ(m.failures_injected, 1) << "seed " << seed;
    EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
    EXPECT_EQ(m.staging.replay_mismatches, 0u) << "seed " << seed;
    for (const auto& c : m.components) EXPECT_EQ(c.timesteps_done >= 12, true);
  }
}

TEST(WorkflowTest, CoordinatedRollsEveryoneBack) {
  auto m = run(small_spec(Scheme::kCoordinated, 1, 6));
  EXPECT_EQ(m.failures_injected, 1);
  EXPECT_EQ(m.total_anomalies(), 0);
  // Both components reworked timesteps even though only one failed.
  int reworked_components = 0;
  for (const auto& c : m.components)
    reworked_components += (c.timesteps_reworked > 0);
  EXPECT_EQ(reworked_components, 2);
}

TEST(WorkflowTest, UncoordinatedRollsOnlyTheFailedComponentBack) {
  auto m = run(small_spec(Scheme::kUncoordinated, 1, 6));  // hits simulation
  EXPECT_GT(m.component("simulation").timesteps_reworked, 0);
  EXPECT_EQ(m.component("analytic").timesteps_reworked, 0);
  EXPECT_GT(m.staging.puts_suppressed, 0u);
}

TEST(WorkflowTest, IndividualSchemeExhibitsAnomaliesUnderConsumerFailure) {
  // Seed 16 fails the analytic mid-interval; without logging its re-reads
  // observe newer versions — the Fig. 2 case-1 anomaly.
  auto in = run(small_spec(Scheme::kIndividual, 1, 16));
  EXPECT_GT(in.total_anomalies(), 0);
  EXPECT_GT(in.component("analytic").failures, 0);
  // The same failure under uncoordinated logging is anomaly-free.
  auto un = run(small_spec(Scheme::kUncoordinated, 1, 16));
  EXPECT_EQ(un.total_anomalies(), 0);
  EXPECT_GT(un.staging.gets_from_log, 0u);
}

TEST(WorkflowTest, HybridMasksAnalyticFailureWithoutRollback) {
  auto m = run(small_spec(Scheme::kHybrid, 1, 10));  // hits the analytic
  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_EQ(m.component("analytic").timesteps_reworked, 0);  // failover
  EXPECT_EQ(m.staging.gets_from_log, 0u);  // no replay was triggered
  EXPECT_EQ(m.component("analytic").failures, 1);
}

TEST(WorkflowTest, HybridSimulationFailureStillReplays) {
  auto m = run(small_spec(Scheme::kHybrid, 1, 6));  // hits the simulation
  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_GT(m.staging.puts_suppressed, 0u);
  EXPECT_GT(m.component("simulation").timesteps_reworked, 0);
}

TEST(WorkflowTest, DeterministicGivenSeed) {
  auto a = run(small_spec(Scheme::kUncoordinated, 2, 5));
  auto b = run(small_spec(Scheme::kUncoordinated, 2, 5));
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_EQ(a.staging.puts, b.staging.puts);
  EXPECT_EQ(a.staging.puts_suppressed, b.staging.puts_suppressed);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(WorkflowTest, LoggingCostsWriteResponseTime) {
  auto plain = run(small_spec(Scheme::kNone, 0, 1));
  auto logged = run(small_spec(Scheme::kUncoordinated, 0, 1));
  const double plain_wr = plain.component("simulation").cum_put_response_s;
  const double logged_wr = logged.component("simulation").cum_put_response_s;
  EXPECT_GT(logged_wr, plain_wr);          // logging is not free...
  EXPECT_LT(logged_wr, plain_wr * 1.35);   // ...but bounded (paper: <= ~15%)
}

TEST(WorkflowTest, LoggingCostsMemory) {
  auto plain = run(small_spec(Scheme::kNone, 0, 1));
  auto logged = run(small_spec(Scheme::kUncoordinated, 0, 1));
  EXPECT_GT(logged.staging.total_bytes_peak, plain.staging.total_bytes_peak);
}

TEST(WorkflowTest, FailuresCostTime) {
  auto clean = run(small_spec(Scheme::kUncoordinated, 0, 6));
  auto failed = run(small_spec(Scheme::kUncoordinated, 1, 6));
  EXPECT_GT(failed.total_time_s, clean.total_time_s);
}

TEST(WorkflowTest, CoordinatedCostsMoreThanUncoordinatedUnderFailure) {
  // The paper's headline: Un/Hy beat Co in the presence of failures.
  for (std::uint64_t seed : {2, 3, 6, 7}) {
    auto co = run(small_spec(Scheme::kCoordinated, 1, seed));
    auto un = run(small_spec(Scheme::kUncoordinated, 1, seed));
    EXPECT_GT(co.total_time_s, un.total_time_s) << "seed " << seed;
  }
}

TEST(WorkflowTest, PfsTrafficMatchesCheckpointActivity) {
  auto m = run(small_spec(Scheme::kUncoordinated, 0, 1));
  // 3 sim ckpts * 256 cores + 2 analytic ckpts * 64 cores, 8 MB/core.
  const std::uint64_t expect =
      3 * 256ull * 8'000'000 + 2 * 64ull * 8'000'000;
  EXPECT_EQ(m.pfs_bytes_written, expect);
  EXPECT_EQ(m.pfs_bytes_read, 0u);  // no failure, no restart reads
}

TEST(WorkflowTest, RunnerIsSingleShot) {
  WorkflowRunner runner(small_spec(Scheme::kNone, 0, 1));
  runner.run();
  EXPECT_THROW(runner.run(), std::logic_error);
}

TEST(WorkflowTest, InvalidSpecsRejected) {
  WorkflowSpec no_comps;
  no_comps.components.clear();
  EXPECT_THROW(WorkflowRunner{no_comps}, std::invalid_argument);
  WorkflowSpec bad = table2_setup(Scheme::kNone);
  bad.staging_servers = 0;
  EXPECT_THROW(WorkflowRunner{bad}, std::invalid_argument);
  EXPECT_THROW(table2_setup(Scheme::kNone, 0.0), std::invalid_argument);
  EXPECT_THROW(table3_setup(Scheme::kNone, 9, 1), std::invalid_argument);
}

TEST(WorkflowTest, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kNone), "Ds");
  EXPECT_STREQ(scheme_name(Scheme::kCoordinated), "Co");
  EXPECT_STREQ(scheme_name(Scheme::kUncoordinated), "Un");
  EXPECT_STREQ(scheme_name(Scheme::kIndividual), "In");
  EXPECT_STREQ(scheme_name(Scheme::kHybrid), "Hy");
}

}  // namespace
}  // namespace dstage::core
