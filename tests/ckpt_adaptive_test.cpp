// Vaidya-style adaptive checkpoint interval (SCR_Need_checkpoint): the
// computed interval matches the closed-form optimum sqrt(2 * delta * MTBF)
// across an MTBF sweep, quantizes sanely to timesteps, and degrades to the
// configured fixed period whenever failure statistics are absent.
#include <gtest/gtest.h>

#include <cmath>

#include "ckpt/adaptive.hpp"

namespace dstage::ckpt {
namespace {

AdaptiveInterval::Params params(double mtbf, double cost, double per_ts,
                                int fixed) {
  AdaptiveInterval::Params p;
  p.mtbf_s = mtbf;
  p.ckpt_cost_s = cost;
  p.compute_per_ts_s = per_ts;
  p.fixed_period = fixed;
  return p;
}

TEST(CkptAdaptiveTest, OptimumMatchesClosedFormAcrossMtbfSweep) {
  const double cost = 0.8;
  for (double mtbf : {30.0, 120.0, 600.0, 3600.0, 86400.0}) {
    const AdaptiveInterval policy(params(mtbf, cost, 9.0, 3));
    EXPECT_DOUBLE_EQ(policy.optimum_s(), std::sqrt(2.0 * cost * mtbf))
        << "mtbf " << mtbf;
    // The quantized interval is the optimum rounded to whole timesteps,
    // floored at 1.
    const int expected = std::max(
        1, static_cast<int>(std::lround(std::sqrt(2.0 * cost * mtbf) / 9.0)));
    EXPECT_EQ(policy.interval_ts(), expected) << "mtbf " << mtbf;
  }
}

TEST(CkptAdaptiveTest, IntervalGrowsWithMtbfAndShrinksWithCheapCheckpoints) {
  // sqrt scaling: quadrupling MTBF doubles the optimum interval.
  const AdaptiveInterval base(params(900.0, 2.0, 1.0, 4));
  const AdaptiveInterval quad(params(3600.0, 2.0, 1.0, 4));
  EXPECT_DOUBLE_EQ(quad.optimum_s(), 2.0 * base.optimum_s());
  // Cheaper checkpoints shorten it: less to amortize per checkpoint.
  const AdaptiveInterval cheap(params(900.0, 0.5, 1.0, 4));
  EXPECT_LT(cheap.optimum_s(), base.optimum_s());
}

TEST(CkptAdaptiveTest, DegradesToFixedPeriodWithoutFailureStats) {
  // Unknown MTBF, unknown cost, or a degenerate timestep length: the
  // policy is never worse-informed than the paper's static scheme.
  EXPECT_EQ(AdaptiveInterval(params(0, 0.8, 9.0, 3)).interval_ts(), 3);
  EXPECT_EQ(AdaptiveInterval(params(600.0, 0, 9.0, 5)).interval_ts(), 5);
  EXPECT_EQ(AdaptiveInterval(params(600.0, 0.8, 0, 7)).interval_ts(), 7);
  EXPECT_DOUBLE_EQ(AdaptiveInterval(params(0, 0.8, 9.0, 3)).optimum_s(), 0);
  // Even a nonsensical fixed period floors at 1.
  EXPECT_EQ(AdaptiveInterval(params(0, 0, 9.0, 0)).interval_ts(), 1);
}

TEST(CkptAdaptiveTest, NeedCheckpointFiresExactlyOnTheInterval) {
  // MTBF 648 s, cost 1 s, 9 s timesteps -> optimum 36 s -> every 4 ts.
  const AdaptiveInterval policy(params(648.0, 1.0, 9.0, 3));
  ASSERT_EQ(policy.interval_ts(), 4);
  EXPECT_FALSE(policy.need_checkpoint(3, 0));
  EXPECT_TRUE(policy.need_checkpoint(4, 0));
  EXPECT_TRUE(policy.need_checkpoint(5, 0));  // overdue still fires
  EXPECT_FALSE(policy.need_checkpoint(7, 4));
  EXPECT_TRUE(policy.need_checkpoint(8, 4));
  // A failure-heavy machine checkpoints every timestep.
  const AdaptiveInterval hot(params(10.0, 1.0, 9.0, 3));
  ASSERT_EQ(hot.interval_ts(), 1);
  EXPECT_TRUE(hot.need_checkpoint(1, 0));
}

}  // namespace
}  // namespace dstage::ckpt
