#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dstage::sim {
namespace {

TEST(EngineTest, StartsAtTimeZeroAndEmpty) {
  Engine eng;
  EXPECT_EQ(eng.now().ns, 0);
  EXPECT_TRUE(eng.empty());
  EXPECT_FALSE(eng.step());
}

TEST(EngineTest, CallbacksRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_call(seconds(3), [&] { order.push_back(3); });
  eng.schedule_call(seconds(1), [&] { order.push_back(1); });
  eng.schedule_call(seconds(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), TimePoint{} + seconds(3));
}

TEST(EngineTest, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_call(seconds(1), [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EngineTest, NestedSchedulingFromCallback) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_call(seconds(1), [&] {
    order.push_back(1);
    eng.schedule_call(seconds(1), [&] { order.push_back(2); });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), TimePoint{} + seconds(2));
}

TEST(EngineTest, CancelEventSuppressesCallback) {
  Engine eng;
  bool ran = false;
  EventId id = eng.schedule_call(seconds(1), [&] { ran = true; });
  eng.cancel_event(id);
  eng.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(eng.empty());
}

TEST(EngineTest, CancelAlreadyFiredIsSafe) {
  Engine eng;
  EventId id = eng.schedule_call(seconds(1), [] {});
  eng.run();
  eng.cancel_event(id);  // no crash, no effect
  EXPECT_TRUE(eng.empty());
}

TEST(EngineTest, CancelUnknownIdIsSafe) {
  Engine eng;
  eng.cancel_event(0);
  eng.cancel_event(999);
  EXPECT_TRUE(eng.empty());
}

TEST(EngineTest, RunUntilStopsAtLimit) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_call(seconds(1), [&] { order.push_back(1); });
  eng.schedule_call(seconds(5), [&] { order.push_back(5); });
  const auto n = eng.run_until(TimePoint{} + seconds(3));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(eng.now(), TimePoint{} + seconds(3));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(EngineTest, RunUntilWithOnlyDeadItemsBeyondLimit) {
  Engine eng;
  bool ran = false;
  eng.schedule_call(seconds(1), [] {});          // dead, below limit
  EventId dead = eng.schedule_call(seconds(2), [&] { ran = true; });
  eng.cancel_event(dead);
  eng.schedule_call(seconds(10), [] {});  // beyond the limit
  eng.run_until(TimePoint{} + seconds(5));
  EXPECT_FALSE(ran);
  EXPECT_FALSE(eng.empty());  // the t=10 item survives
  eng.run();
  EXPECT_TRUE(eng.empty());
}

TEST(EngineTest, NegativeDelayRejected) {
  Engine eng;
  EXPECT_THROW(eng.schedule_call(Duration{-1}, [] {}), std::invalid_argument);
}

TEST(EngineTest, ProcessedCountsEvents) {
  Engine eng;
  for (int i = 0; i < 10; ++i) eng.schedule_call(seconds(i), [] {});
  eng.run();
  EXPECT_EQ(eng.processed(), 10u);
}

TEST(EngineTest, ZeroDelayRunsAtCurrentTime) {
  Engine eng;
  TimePoint seen{.ns = -1};
  eng.schedule_call(seconds(2), [&] {
    eng.schedule_call(Duration{0}, [&] { seen = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(seen, TimePoint{} + seconds(2));
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(seconds(2).ns, 2'000'000'000);
  EXPECT_EQ(milliseconds(3).ns, 3'000'000);
  EXPECT_EQ(microseconds(5).ns, 5'000);
  EXPECT_DOUBLE_EQ(from_seconds(1.5).seconds(), 1.5);
  EXPECT_EQ(from_seconds(1e-9).ns, 1);
  EXPECT_EQ((seconds(1) + milliseconds(500)).ns, 1'500'000'000);
  EXPECT_EQ((seconds(2) * 3).ns, 6'000'000'000);
  EXPECT_LT(seconds(1), seconds(2));
}

}  // namespace
}  // namespace dstage::sim
