// The typed wire vocabulary and its codec (net/message.hpp) plus the
// unified RPC transport (net/rpc.hpp). The wire_size constants are
// load-bearing — the Table II golden-trace digests are recorded against
// them — so every message and response size is locked down here.
#include "net/message.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>

#include "net/rpc.hpp"
#include "sim/spawn.hpp"

namespace dstage::net {
namespace {

Chunk chunk_of(std::uint64_t nominal) {
  Chunk c;
  c.var = "f";
  c.version = 3;
  c.region = Box::from_dims(4, 4, 4);
  c.nominal_bytes = nominal;
  return c;
}

TEST(MessageCodecTest, RequestSizesLockedDown) {
  PutRequest put;
  put.chunk = chunk_of(1000);
  EXPECT_EQ(wire_size(put), 1128u);  // object header + payload

  EXPECT_EQ(wire_size(GetRequest{}), 128u);
  EXPECT_EQ(wire_size(CheckpointEvent{}), 64u);
  EXPECT_EQ(wire_size(RecoveryEvent{}), 64u);
  EXPECT_EQ(wire_size(RollbackRequest{}), 64u);
  EXPECT_EQ(wire_size(FragmentPrune{}), 64u);
  EXPECT_EQ(wire_size(RecoveryPull{}), 64u);
  EXPECT_EQ(wire_size(QueryRequest{}), 64u);
  EXPECT_EQ(wire_size(QueueBackup{}), 96u);

  FragmentPut frag;
  frag.nominal_bytes = 5000;
  EXPECT_EQ(wire_size(frag), 5000u);  // fragment payload rides raw

  // Elastic-membership control verbs are descriptor-sized; the view
  // payload pays 4 bytes per member.
  EXPECT_EQ(wire_size(JoinGroup{}), 64u);
  EXPECT_EQ(wire_size(RetireServer{}), 64u);
  EXPECT_EQ(wire_size(MembershipQuery{}), 64u);
  MembershipUpdate update;
  update.active = {0, 1, 2};
  EXPECT_EQ(wire_size(update), 64u + 4u * 3u);
  EXPECT_EQ(wire_size(FragmentFetch{}), 128u);
  ResilverPut resilver;
  resilver.chunk = chunk_of(1000);
  EXPECT_EQ(wire_size(resilver), 1128u);  // same envelope as a put
}

TEST(MessageCodecTest, ResponseSizesLockedDown) {
  EXPECT_EQ(wire_size(PutResponse{}), 64u);
  EXPECT_EQ(wire_size(CheckpointAck{}), 64u);
  EXPECT_EQ(wire_size(RecoveryAck{}), 64u);
  EXPECT_EQ(wire_size(RollbackAck{}), 64u);

  GetResponse get;
  EXPECT_EQ(wire_size(get), 128u);
  get.pieces.push_back(chunk_of(700));
  get.pieces.push_back(chunk_of(300));
  EXPECT_EQ(wire_size(get), 1128u);

  QueryResponse query;
  query.store_versions = {1, 2, 3};
  query.logged_versions = {2, 3};
  EXPECT_EQ(wire_size(query), 64u + 4u * 5u);

  BatchPutResponse batch;
  batch.results.resize(3);
  EXPECT_EQ(wire_size(batch), 64u + 8u * 3u);

  RecoveryPullResponse pull;
  EXPECT_EQ(wire_size(pull), 128u);
  FragmentPut frag;
  frag.nominal_bytes = 5000;
  pull.fragments.push_back(frag);
  pull.events.emplace_back();
  EXPECT_EQ(wire_size(pull), 128u + 5000u + 96u);

  EXPECT_EQ(wire_size(GroupChangeAck{}), 64u);
  EXPECT_EQ(wire_size(ResilverAck{}), 64u);
  MembershipInfo info;
  info.active = {0, 1};
  EXPECT_EQ(wire_size(info), 64u + 4u * 2u);
  FragmentFetchResponse fetch;
  EXPECT_EQ(wire_size(fetch), 128u);
  fetch.fragments.push_back(frag);
  EXPECT_EQ(wire_size(fetch), 128u + 5000u);
}

TEST(MessageCodecTest, OneChunkBatchCostsExactlyOnePut) {
  // The coalesced encoding must not be cheaper than the messages it
  // replaces when there is nothing to coalesce.
  PutRequest put;
  put.chunk = chunk_of(4096);
  BatchPut batch;
  batch.chunks.push_back(chunk_of(4096));
  EXPECT_EQ(wire_size(batch), wire_size(put));

  // A second chunk adds its descriptor + payload but no second envelope.
  batch.chunks.push_back(chunk_of(1000));
  EXPECT_EQ(wire_size(batch), wire_size(put) + 64u + 1000u);
}

TEST(MessageCodecTest, SerializedSizeDispatchesOverEveryAlternative) {
  static_assert(std::variant_size_v<Message> == 23);
  FragmentPut frag;
  frag.nominal_bytes = 777;
  EXPECT_EQ(serialized_size(Message{std::move(frag)}), 777u);
  EXPECT_EQ(serialized_size(Message{QueryRequest{}}), 64u);
  PutRequest put;
  put.chunk = chunk_of(1000);
  EXPECT_EQ(serialized_size(Message{std::move(put)}), 1128u);
}

TEST(MessageCodecTest, MessageNamesMatchSpanVocabulary) {
  // These strings are the observability span names; the golden obs
  // expectations depend on them.
  EXPECT_STREQ(message_name(PutRequest{}), "put");
  EXPECT_STREQ(message_name(GetRequest{}), "get");
  EXPECT_STREQ(message_name(CheckpointEvent{}), "checkpoint");
  EXPECT_STREQ(message_name(RecoveryEvent{}), "recovery");
  EXPECT_STREQ(message_name(RollbackRequest{}), "rollback");
  EXPECT_STREQ(message_name(FragmentPut{}), "fragment_put");
  EXPECT_STREQ(message_name(FragmentPrune{}), "fragment_prune");
  EXPECT_STREQ(message_name(QueueBackup{}), "queue_backup");
  EXPECT_STREQ(message_name(RecoveryPull{}), "recovery_pull");
  EXPECT_STREQ(message_name(QueryRequest{}), "query");
  EXPECT_STREQ(message_name(BatchPut{}), "batch_put");
  EXPECT_STREQ(message_name(SpillPut{}), "spill_put");
  EXPECT_STREQ(message_name(SpillFetch{}), "spill_fetch");
  EXPECT_STREQ(message_name(SpillPrune{}), "spill_prune");
  EXPECT_STREQ(message_name(JoinGroup{}), "join_group");
  EXPECT_STREQ(message_name(RetireServer{}), "retire_server");
  EXPECT_STREQ(message_name(MembershipUpdate{}), "membership_update");
  EXPECT_STREQ(message_name(MembershipQuery{}), "membership_query");
  EXPECT_STREQ(message_name(FragmentFetch{}), "fragment_fetch");
  EXPECT_STREQ(message_name(ResilverPut{}), "resilver_put");
  EXPECT_STREQ(message_name(CkptStoreLocal{}), "ckpt_store_local");
  EXPECT_STREQ(message_name(CkptXorShard{}), "ckpt_xor_shard");
  EXPECT_STREQ(message_name(CkptDrainAck{}), "ckpt_drain_ack");
  EXPECT_STREQ(message_name(Message{QueryRequest{}}), "query");
}

// ---------------------------------------------------------------------------
// Rpc transport semantics.
// ---------------------------------------------------------------------------

struct RpcRig {
  sim::Engine eng;
  Fabric fabric{eng, {}};
  NodeId n0 = fabric.add_node();
  NodeId n1 = fabric.add_node();
  EndpointId client_ep = fabric.add_endpoint(n0);
  EndpointId server_ep = fabric.add_endpoint(n1);
  Rpc client{fabric, client_ep};
  Rpc server{fabric, server_ep};
};

TEST(RpcTest, CallRoundTripDeliversTypedResponse) {
  RpcRig rig;
  std::size_t got_versions = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    Packet pkt = co_await rig.fabric.endpoint(rig.server_ep).recv(nullptr);
    auto& req = std::get<QueryRequest>(pkt.payload);
    EXPECT_EQ(req.var, "f");
    EXPECT_EQ(req.reply_to, rig.client_ep);
    QueryResponse resp;
    resp.store_versions = {1, 2, 3};
    co_await rig.server.fulfill(ctx, req.reply_to, std::move(req.reply),
                                std::move(resp));
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    QueryRequest req;
    req.var = "f";
    auto resp = co_await rig.client.call(ctx, rig.server_ep, std::move(req));
    got_versions = resp.store_versions.size();
  });
  rig.eng.run();
  EXPECT_EQ(got_versions, 3u);
  EXPECT_EQ(rig.client.stats().calls, 1u);
  EXPECT_EQ(rig.client.stats().responses, 1u);
  EXPECT_EQ(rig.client.stats().retries, 0u);
}

TEST(RpcTest, RetryResendsAfterTimeoutAndSucceeds) {
  RpcRig rig;
  bool answered = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    // Drop the first attempt on the floor; answer the second.
    (void)co_await rig.fabric.endpoint(rig.server_ep).recv(nullptr);
    Packet pkt = co_await rig.fabric.endpoint(rig.server_ep).recv(nullptr);
    auto& req = std::get<QueryRequest>(pkt.payload);
    co_await rig.server.fulfill(ctx, req.reply_to, std::move(req.reply),
                                QueryResponse{});
    answered = true;
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    QueryRequest req;
    req.var = "f";
    RetryPolicy policy;
    policy.timeout = sim::milliseconds(1);
    policy.max_attempts = 3;
    (void)co_await rig.client.call(ctx, rig.server_ep, std::move(req),
                                   policy);
  });
  rig.eng.run();
  EXPECT_TRUE(answered);
  EXPECT_EQ(rig.client.stats().retries, 1u);
  EXPECT_EQ(rig.client.stats().responses, 1u);
  EXPECT_EQ(rig.client.stats().exhausted, 0u);
}

TEST(RpcTest, ExhaustedAttemptsThrowInsteadOfHanging) {
  RpcRig rig;  // nobody serves server_ep
  bool threw = false;
  sim::TimePoint gave_up{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    QueryRequest req;
    req.var = "f";
    RetryPolicy policy;
    policy.timeout = sim::milliseconds(1);
    policy.max_attempts = 3;
    try {
      (void)co_await rig.client.call(ctx, rig.server_ep, std::move(req),
                                     policy);
    } catch (const std::runtime_error&) {
      threw = true;
      gave_up = rig.eng.now();
    }
  });
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_EQ(rig.client.stats().retries, 2u);
  EXPECT_EQ(rig.client.stats().exhausted, 1u);
  EXPECT_EQ(rig.client.stats().responses, 0u);
  // Three full per-attempt timeouts elapsed.
  EXPECT_GE(gave_up.ns, 3 * sim::milliseconds(1).ns);
}

TEST(RpcTest, BackoffDelaysResends) {
  RpcRig rig;  // nobody serves
  sim::TimePoint gave_up{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    QueryRequest req;
    req.var = "f";
    RetryPolicy policy;
    policy.timeout = sim::milliseconds(1);
    policy.max_attempts = 3;
    policy.backoff = sim::milliseconds(1);
    try {
      (void)co_await rig.client.call(ctx, rig.server_ep, std::move(req),
                                     policy);
    } catch (const std::runtime_error&) {
      gave_up = rig.eng.now();
    }
  });
  rig.eng.run();
  // timeout + backoff + timeout + 2*backoff + timeout.
  EXPECT_GE(gave_up.ns, 6 * sim::milliseconds(1).ns);
}

TEST(RpcTest, BackoffEscalationResetsPerErrorClass) {
  // Regression: the escalation shift used to ride the *cumulative*
  // per-class counters, so when timeouts and governor rejections
  // interleaved within one call, a fresh rejection after a timeout
  // inherited the previous rejection's escalation and jumped straight to
  // a doubled wait. The shift must follow the *consecutive* streak, each
  // class resetting the other.
  RpcRig rig;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    // Script: reject, drop (let the client time out), reject, accept.
    for (int i = 0; i < 4; ++i) {
      Packet pkt = co_await rig.fabric.endpoint(rig.server_ep).recv(nullptr);
      auto& req = std::get<PutRequest>(pkt.payload);
      if (i == 1) continue;  // dropped on the floor
      PutResponse resp;
      resp.retry_later = i != 3;
      resp.applied = i == 3;
      co_await rig.server.fulfill(ctx, req.reply_to, std::move(req.reply),
                                  std::move(resp));
    }
  });
  bool applied = false;
  sim::TimePoint done{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    PutRequest req;
    req.app = 0;
    req.chunk.var = "f";
    req.chunk.nominal_bytes = 64;
    RetryPolicy policy;
    policy.timeout = sim::milliseconds(100);
    policy.backoff = sim::seconds(1);
    policy.max_attempts = 4;
    const PutResponse resp =
        co_await rig.client.call(ctx, rig.server_ep, std::move(req), policy);
    applied = resp.applied;
    done = rig.eng.now();
  });
  rig.eng.run();
  EXPECT_TRUE(applied);
  EXPECT_EQ(rig.client.stats().backpressure_waits, 2u);
  EXPECT_EQ(rig.client.stats().retries, 1u);
  EXPECT_EQ(rig.client.stats().responses, 1u);
  // reject (1 s) + timeout (0.1 s) + timeout backoff (1 s) + reject with
  // its streak RESET (1 s) ≈ 3.1 s. The pre-fix cumulative counter would
  // have shifted the second rejection to 2 s (total ≈ 4.1 s).
  EXPECT_GE(done.seconds(), 3.0);
  EXPECT_LT(done.seconds(), 3.6);
}

TEST(RpcTest, OneWaySendCountsAndDelivers) {
  RpcRig rig;
  bool got = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    Packet pkt = co_await rig.fabric.endpoint(rig.server_ep).recv(nullptr);
    got = std::holds_alternative<FragmentPrune>(pkt.payload);
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    FragmentPrune prune;
    prune.owner = 0;
    prune.var = "f";
    co_await rig.client.send(ctx, rig.server_ep, Message{std::move(prune)});
  });
  rig.eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(rig.client.stats().oneways, 1u);
  EXPECT_EQ(rig.client.stats().calls, 0u);
}

}  // namespace
}  // namespace dstage::net
