// Additional edge-case coverage for the simulation substrate: membership
// changes on barriers, multi-unit resource grants, run_until with live
// coroutines, and nested fan-out.
#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/spawn.hpp"
#include "sim/task.hpp"

namespace dstage::sim {
namespace {

TEST(BarrierMoreTest, SetPartiesChangesMembership) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Barrier bar(eng, 3);
  int released = 0;
  for (int i = 0; i < 2; ++i) {
    spawn(eng, [&]() -> Task<void> {
      co_await bar.arrive_and_wait(nullptr);
      ++released;
    });
  }
  // With 3 parties the two arrivals block...
  eng.run();
  EXPECT_EQ(released, 0);
  // ...and shrinking the membership to 2 releases the waiting generation
  // immediately (recovery rebuilds the group smaller).
  bar.set_parties(2);
  eng.run();
  EXPECT_EQ(released, 2);
  // The next generation works at the new size.
  spawn(eng, [&]() -> Task<void> {
    co_await bar.arrive_and_wait(nullptr);
    ++released;
  });
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(1));
    co_await bar.arrive_and_wait(nullptr);
    ++released;
  });
  eng.run();
  EXPECT_EQ(released, 4);
}

TEST(ResourceMoreTest, MultiUnitGrantsRespectAvailability) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Resource res(eng, 8);
  std::vector<int> order;
  auto worker = [&](int id, std::uint64_t amount,
                    std::int64_t hold) -> Task<void> {
    auto g = co_await res.acquire(nullptr, amount);
    order.push_back(id);
    co_await ctx.delay(seconds(hold));
  };
  spawn(eng, worker(0, 5, 4));
  spawn(eng, worker(1, 3, 2));  // fits alongside worker 0
  spawn(eng, worker(2, 6, 1));  // must wait for both
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(res.available(), 8u);
}

TEST(ResourceMoreTest, QueueLengthVisible) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Resource res(eng, 1);
  spawn(eng, [&]() -> Task<void> {
    auto g = co_await res.acquire(nullptr, 1);
    co_await ctx.delay(seconds(10));
  });
  for (int i = 0; i < 3; ++i) {
    spawn(eng, [&]() -> Task<void> {
      auto g = co_await res.acquire(nullptr, 1);
    });
  }
  eng.run_until(TimePoint{} + seconds(1));
  EXPECT_EQ(res.queue_length(), 3u);
  eng.run();
  EXPECT_EQ(res.queue_length(), 0u);
}

TEST(EngineMoreTest, RunUntilSuspendsAndResumesCoroutines) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  std::vector<int> marks;
  spawn(eng, [&]() -> Task<void> {
    for (int i = 1; i <= 5; ++i) {
      co_await ctx.delay(seconds(2));
      marks.push_back(i);
    }
  });
  eng.run_until(TimePoint{} + seconds(5));
  EXPECT_EQ(marks, (std::vector<int>{1, 2}));  // t=2, t=4 fired
  eng.run();
  EXPECT_EQ(marks, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ChannelMoreTest, WaitingReceiversCount) {
  Engine eng;
  Channel<int> ch(eng);
  for (int i = 0; i < 2; ++i) {
    spawn(eng, [&]() -> Task<void> { (void)co_await ch.recv(nullptr); });
  }
  eng.run();
  EXPECT_EQ(ch.waiting_receivers(), 2u);
  ch.send(1);
  ch.send(2);
  eng.run();
  EXPECT_EQ(ch.waiting_receivers(), 0u);
}

TEST(EventMoreTest, PreCancelledTokenBeatsSetEvent) {
  Engine eng;
  OneShotEvent ev(eng);
  ev.set();
  CancelToken tok;
  tok.cancel();
  bool threw = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await ev.wait(&tok);
    } catch (const Cancelled&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);  // death wins over readiness
}

TEST(WhenAllMoreTest, NestedFanOutStaysParallel) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  TimePoint finish{};
  auto leaf = [&](std::int64_t s) -> Task<void> {
    co_await ctx.delay(seconds(s));
  };
  auto branch = [&](std::int64_t base) -> Task<void> {
    std::vector<Task<void>> leaves;
    leaves.push_back(leaf(base));
    leaves.push_back(leaf(base + 1));
    co_await when_all(ctx, std::move(leaves));
  };
  spawn(eng, [&]() -> Task<void> {
    std::vector<Task<void>> branches;
    branches.push_back(branch(1));
    branches.push_back(branch(3));
    co_await when_all(ctx, std::move(branches));
    finish = ctx.now();
  });
  eng.run();
  // max(max(1,2), max(3,4)) = 4 seconds, not the serialized 10.
  EXPECT_EQ(finish, TimePoint{} + seconds(4));
}

TEST(CancelMoreTest, KillDuringNestedWhenAllUnwindsEverything) {
  Engine eng;
  CancelToken tok;
  Ctx ctx{&eng, &tok};
  bool parent_cancelled = false;
  int leaves_cancelled = 0;
  auto leaf = [&]() -> Task<void> {
    try {
      co_await ctx.delay(seconds(100));
    } catch (const Cancelled&) {
      ++leaves_cancelled;
      throw;
    }
  };
  spawn(eng, [&]() -> Task<void> {
    try {
      std::vector<Task<void>> ts;
      ts.push_back(leaf());
      ts.push_back(leaf());
      co_await when_all(ctx, std::move(ts));
    } catch (const Cancelled&) {
      parent_cancelled = true;
    }
  });
  eng.schedule_call(seconds(1), [&] { tok.cancel(); });
  eng.run();
  EXPECT_TRUE(parent_cancelled);
  EXPECT_EQ(leaves_cancelled, 2);
}

}  // namespace
}  // namespace dstage::sim
