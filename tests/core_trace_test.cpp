#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/executor.hpp"
#include "core/setups.hpp"

namespace dstage::core {
namespace {

TEST(TraceTest, RecordAndQuery) {
  Trace t;
  t.record(sim::TimePoint{} + sim::seconds(1), TraceKind::kTimestepStart,
           "sim", 1);
  t.record(sim::TimePoint{} + sim::seconds(2), TraceKind::kWriteDone, "sim",
           1, 4096);
  t.record(sim::TimePoint{} + sim::seconds(3), TraceKind::kTimestepStart,
           "analytic", 1);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.of_kind(TraceKind::kTimestepStart).size(), 2u);
  EXPECT_EQ(t.of_component("sim").size(), 2u);
  EXPECT_EQ(t.of_kind(TraceKind::kWriteDone)[0].value, 4096);
}

TEST(TraceTest, DigestDistinguishesContentAndOrder) {
  Trace a, b, c;
  a.record({}, TraceKind::kFailure, "x", 3);
  a.record({}, TraceKind::kRecoveryDone, "x", 2);
  b.record({}, TraceKind::kRecoveryDone, "x", 2);
  b.record({}, TraceKind::kFailure, "x", 3);
  c.record({}, TraceKind::kFailure, "x", 3);
  c.record({}, TraceKind::kRecoveryDone, "x", 2);
  EXPECT_NE(a.digest(), b.digest());  // order matters
  EXPECT_EQ(a.digest(), c.digest());  // identical content matches
}

TEST(TraceTest, CsvRoundTripShape) {
  Trace t;
  t.record(sim::TimePoint{} + sim::milliseconds(1500),
           TraceKind::kCheckpoint, "sim", 4);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_s,kind,component,timestep,value\n"
            "1.5,checkpoint,sim,4,0\n");
}

TEST(TraceTest, KindNamesAreUnique) {
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(TraceKind::kLogTruncate); ++k) {
    names.insert(trace_kind_name(static_cast<TraceKind>(k)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(TraceKind::kLogTruncate) + 1);
}

TEST(TraceTest, ViewsAreLazyAndIterable) {
  Trace t;
  t.record(sim::TimePoint{} + sim::seconds(1), TraceKind::kGcSweep, "s0", 4,
           100);
  t.record(sim::TimePoint{} + sim::seconds(2), TraceKind::kGcWatermarkAdvance,
           "s0/field", 0, 4);
  t.record(sim::TimePoint{} + sim::seconds(3), TraceKind::kGcSweep, "s1", 4,
           200);

  // Range-for over a filtered view visits matching events in trace order.
  std::int64_t reclaimed = 0;
  for (const TraceEvent& e : t.of_kind(TraceKind::kGcSweep)) {
    reclaimed += e.value;
  }
  EXPECT_EQ(reclaimed, 300);

  const TraceView sweeps = t.of_kind(TraceKind::kGcSweep);
  EXPECT_EQ(sweeps.size(), 2u);
  EXPECT_EQ(sweeps.front().component, "s0");
  EXPECT_EQ(sweeps.back().component, "s1");
  EXPECT_EQ(sweeps[1].value, 200);

  EXPECT_TRUE(t.of_kind(TraceKind::kLogTruncate).empty());
  EXPECT_TRUE(t.of_component("nope").empty());
  EXPECT_EQ(t.of_component("s0/field").size(), 1u);
}

WorkflowSpec spec_for_trace(int failures, std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(Scheme::kUncoordinated);
  spec.total_ts = 10;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  return spec;
}

TEST(TraceIntegrationTest, FailureFreeRunTimelineIsComplete) {
  WorkflowRunner runner(spec_for_trace(0, 1));
  runner.run();
  const Trace& t = runner.trace();
  // Every component starts and finishes every timestep exactly once.
  EXPECT_EQ(t.of_kind(TraceKind::kTimestepStart).size(), 20u);
  EXPECT_EQ(t.of_kind(TraceKind::kTimestepDone).size(), 20u);
  EXPECT_TRUE(t.of_kind(TraceKind::kFailure).empty());
  // Timestamps are monotone within a component.
  auto sim_events = t.of_component("simulation");
  for (std::size_t i = 1; i < sim_events.size(); ++i) {
    EXPECT_LE(sim_events[i - 1].at.ns, sim_events[i].at.ns);
  }
}

TEST(TraceIntegrationTest, FailureRunRecordsRecoverySequence) {
  WorkflowRunner runner(spec_for_trace(1, 6));  // simulation fails
  runner.run();
  const Trace& t = runner.trace();
  auto failures = t.of_kind(TraceKind::kFailure);
  auto rec_start = t.of_kind(TraceKind::kRecoveryStart);
  auto rec_done = t.of_kind(TraceKind::kRecoveryDone);
  auto replay = t.of_kind(TraceKind::kReplayDone);
  ASSERT_EQ(failures.size(), 1u);
  ASSERT_EQ(rec_start.size(), 1u);
  ASSERT_EQ(rec_done.size(), 1u);
  ASSERT_EQ(replay.size(), 1u);
  // Fig. 7(b) ordering: failure -> detection/recovery -> replay.
  EXPECT_LT(failures[0].at.ns, rec_start[0].at.ns);
  EXPECT_LT(rec_start[0].at.ns, rec_done[0].at.ns);
  EXPECT_LE(rec_done[0].at.ns, replay[0].at.ns);
  EXPECT_GT(replay[0].value, 0);  // events were queued for replay
}

TEST(TraceIntegrationTest, DigestIsARunFingerprint) {
  WorkflowRunner a(spec_for_trace(2, 7));
  WorkflowRunner b(spec_for_trace(2, 7));
  WorkflowRunner c(spec_for_trace(2, 8));
  a.run();
  b.run();
  c.run();
  EXPECT_EQ(a.trace().digest(), b.trace().digest());
  EXPECT_NE(a.trace().digest(), c.trace().digest());
}

}  // namespace
}  // namespace dstage::core
