#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/forensics.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"

namespace dstage::check {
namespace {

obs::FrDecoded ev(std::uint64_t seq, const std::string& kind,
                  const std::string& track, const std::string& detail,
                  std::int64_t a, std::int64_t b) {
  obs::FrDecoded e;
  e.seq = seq;
  e.at_ns = static_cast<std::int64_t>(seq) * 1000;
  e.kind = kind;
  e.track = track;
  e.detail = detail;
  e.a = a;
  e.b = b;
  return e;
}

Schedule failing_un_schedule() {
  Schedule s;
  s.scheme = core::Scheme::kUncoordinated;
  s.total_ts = 12;
  s.sim_period = 3;
  s.analytic_period = 4;
  ScheduleFailure f;
  f.comp = 0;
  f.ts = 2;
  f.phase = 0.5;
  s.failures.push_back(f);
  return s;
}

TEST(ForensicBundleTest, JsonRoundTripIsExact) {
  ForensicBundle b;
  b.trigger = "invariant-violation";
  b.detail = "invariant 4: simulation resumed without log replay";
  b.repro = "cc1;id=3;sch=un;ts=12;sp=3;ap=4;lp=0;res=0;mtbf=0";
  b.sabotage = "skip-replay";
  // Digests routinely exceed 2^53: the literal-preserving reader must
  // round-trip them exactly, not through a double.
  b.trace_digest = 18255976819492738729ull;
  b.reference_digest = 13509260001734639411ull;
  b.events_recorded = 1645;
  b.events_dropped = 608;
  b.degradations = {"double XOR loss: checkpoint set(s) unrestorable"};
  b.events = {ev(1, "put-admit", "staging-0", "field", 3, 4194304),
              ev(2, "get-serve", "analytic", "field", 3,
                 -7016758664213597039ll)};
  b.reference_events = {ev(1, "get-serve", "analytic", "field", 3, 99)};

  const ForensicBundle r = bundle_from_json(bundle_to_json(b));
  EXPECT_EQ(r.trigger, b.trigger);
  EXPECT_EQ(r.detail, b.detail);
  EXPECT_EQ(r.repro, b.repro);
  EXPECT_EQ(r.sabotage, b.sabotage);
  EXPECT_EQ(r.trace_digest, b.trace_digest);
  EXPECT_EQ(r.reference_digest, b.reference_digest);
  EXPECT_EQ(r.events_recorded, b.events_recorded);
  EXPECT_EQ(r.events_dropped, b.events_dropped);
  EXPECT_EQ(r.degradations, b.degradations);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[1].kind, "get-serve");
  EXPECT_EQ(r.events[1].a, 3);
  EXPECT_EQ(r.events[1].b, -7016758664213597039ll);
  ASSERT_EQ(r.reference_events.size(), 1u);
  EXPECT_EQ(r.reference_events[0].b, 99);
}

TEST(ForensicBundleTest, MalformedJsonThrows) {
  EXPECT_THROW(bundle_from_json("{not json"), std::runtime_error);
  EXPECT_THROW(bundle_from_json("[1, 2]"), std::runtime_error);
}

TEST(FindDivergenceTest, NamesFirstSilentReadMismatch) {
  ForensicBundle b;
  b.reference_events = {ev(1, "get-serve", "analytic", "field", 3, 100),
                        ev(2, "get-serve", "analytic", "field", 4, 200)};
  b.events = {ev(10, "put-admit", "staging-0", "field", 3, 4096),
              ev(11, "get-serve", "analytic", "field", 3, 100),   // matches
              ev(12, "get-serve", "analytic", "field", 4, 777),   // diverges
              ev(13, "get-serve", "analytic", "field", 4, 778)};  // later
  const Divergence d = find_divergence(b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 2u);
  EXPECT_NE(d.what.find("diverged silently"), std::string::npos);
  // The chain ends with the divergent event and pulls in the same-variable
  // put upstream of it.
  ASSERT_FALSE(d.causal_chain.empty());
  EXPECT_EQ(d.causal_chain.back().seq, 12u);
  EXPECT_EQ(d.causal_chain.front().seq, 10u);
}

TEST(FindDivergenceTest, FlaggedAnomalyWinsOverSilentDiff) {
  // A wrong-version serve the run itself flagged is the finding; the later
  // checksum mismatch on the same variable must not be reported as silent.
  ForensicBundle b;
  b.reference_events = {ev(1, "get-serve", "analytic", "field", 3, 100)};
  b.events = {ev(10, "get-anomaly", "analytic", "field", 3, 2),
              ev(11, "get-serve", "analytic", "field", 3, 777)};
  const Divergence d = find_divergence(b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 0u);
  EXPECT_NE(d.what.find("wrong-version serve"), std::string::npos);
}

TEST(FindDivergenceTest, FlagsWatermarkPastReference) {
  ForensicBundle b;
  b.reference_events = {ev(1, "gc-watermark", "staging-0", "field", 12, 0)};
  b.events = {ev(10, "gc-watermark", "staging-0", "field", 11, 0),  // fine
              ev(11, "gc-watermark", "staging-0", "field", 14, 0)};
  const Divergence d = find_divergence(b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(d.what.find("over-collection"), std::string::npos);
}

TEST(FindDivergenceTest, FlagsRestartWithoutReplayViaRealPolicy) {
  // The sabotaged policy lies to the runtime, so the missed replay is only
  // visible against the REAL scheme policy reconstructed from the repro.
  ForensicBundle b;
  b.repro = failing_un_schedule().repro();
  b.events = {ev(10, "failure", "simulation", "simulation", 2, 1),
              ev(11, "restart-level", "simulation", "simulation", 2, 0),
              ev(12, "get-serve", "analytic", "field", 3, 5)};
  const Divergence d = find_divergence(b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(d.what.find("no replay-done followed"), std::string::npos);
  // The injected failure is upstream in the causal chain.
  EXPECT_EQ(d.causal_chain.front().kind, "failure");

  // With the replay performed (later seq, same component), the same
  // stream is clean.
  b.events.push_back(ev(13, "replay-done", "simulation", "simulation", 4, 0));
  EXPECT_FALSE(find_divergence(b).found);
}

TEST(FindDivergenceTest, NamesDegradationPivot) {
  ForensicBundle b;
  b.trigger = "degradation";
  b.events = {ev(10, "put-admit", "staging-0", "field", 1, 4096),
              ev(11, "degradation", "recovery-manager",
                 "spare pool exhausted; server 2 down unrecovered", 0, 0)};
  const Divergence d = find_divergence(b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(d.what.find("spare pool exhausted"), std::string::npos);
}

// Trigger class 1: an oracle invariant violation attaches a bundle whose
// divergence analysis names the missed replay.
TEST(OracleBundleTest, InvariantViolationAttachesAnalyzableBundle) {
  ReferenceCache cache;
  const OracleReport report =
      check_schedule(failing_un_schedule(), cache, Sabotage::kSkipReplay);
  ASSERT_FALSE(report.ok());
  ASSERT_NE(report.bundle, nullptr);
  EXPECT_EQ(report.bundle->trigger, "invariant-violation");
  EXPECT_EQ(report.bundle->sabotage, "skip-replay");
  EXPECT_EQ(report.bundle->repro, failing_un_schedule().repro());
  EXPECT_FALSE(report.bundle->events.empty());
  EXPECT_FALSE(report.bundle->reference_events.empty());
  EXPECT_EQ(report.bundle->trace_digest, report.trace_digest);

  const Divergence d = find_divergence(*report.bundle);
  ASSERT_TRUE(d.found);
  EXPECT_NE(d.what.find("replay"), std::string::npos);

  // And the bundle survives the CI artifact round-trip.
  const ForensicBundle parsed = bundle_from_json(bundle_to_json(*report.bundle));
  EXPECT_EQ(parsed.events.size(), report.bundle->events.size());
  EXPECT_TRUE(find_divergence(parsed).found);
}

// Trigger class 2: a clean run with capture forced (how the campaign
// documents an --expect-fail mismatch) still yields a bundle.
TEST(OracleBundleTest, ForcedCaptureOnCleanRunIsExpectFailMismatch) {
  Schedule s = failing_un_schedule();
  s.failures.clear();  // failure-free: passes every invariant
  ReferenceCache cache;
  const OracleReport report =
      check_schedule(s, cache, Sabotage::kNone, /*capture_bundle=*/true);
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report.bundle, nullptr);
  EXPECT_EQ(report.bundle->trigger, "expect-fail-mismatch");
  EXPECT_FALSE(report.bundle->events.empty());
  // Nothing diverged: the analysis must say so rather than invent one.
  EXPECT_FALSE(find_divergence(*report.bundle).found);
}

// Without forced capture, clean runs carry no bundle — the recorder dump
// is only frozen when something went loudly wrong.
TEST(OracleBundleTest, CleanRunCarriesNoBundle) {
  Schedule s = failing_un_schedule();
  s.failures.clear();
  ReferenceCache cache;
  const OracleReport report = check_schedule(s, cache);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.bundle, nullptr);
}

}  // namespace
}  // namespace dstage::check
