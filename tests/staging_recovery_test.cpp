// Staging-service resilience (CoREC layer): redundancy fragments and queue
// mirrors on peer servers let a failed staging server be rebuilt without
// losing staged data, logged payloads, or replay state. Clients ride out
// the outage via RPC timeouts + retries.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/recovery.hpp"
#include "staging/server.hpp"

namespace dstage::staging {
namespace {

ServerParams params_with(resilience::Redundancy kind) {
  ServerParams p;
  p.logging = true;
  p.policy.kind = kind;
  p.policy.replicas = 2;
  p.policy.rs_k = 4;
  p.policy.rs_m = 2;
  return p;
}

struct Rig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  Box domain = Box::from_dims(64, 64, 64);
  dht::SpatialIndex index;
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<StagingServer>> servers;
  std::unique_ptr<StagingRecoveryManager> manager;

  explicit Rig(int nservers, ServerParams params, int spares = 4)
      : index(domain, nservers, 8) {
    for (int s = 0; s < nservers; ++s) {
      auto vp =
          cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(
          std::make_unique<StagingServer>(cluster, vp, params));
      servers.back()->register_var("f", {{1, true}});
    }
    std::vector<net::EndpointId> endpoints;
    for (auto vp : server_vprocs)
      endpoints.push_back(cluster.vproc(vp).endpoint);
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s]->set_peers(static_cast<int>(s), endpoints);
      servers[s]->start();
    }
    manager = std::make_unique<StagingRecoveryManager>(
        cluster, &servers, server_vprocs, params, spares);
    manager->arm();
  }

  std::unique_ptr<StagingClient> make_client(AppId app) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.put_timeout = sim::seconds(15);
    cp.get_timeout = sim::seconds(30);
    return std::make_unique<StagingClient>(cluster, index, server_vprocs,
                                           vp, cp);
  }

  void run() { eng.run(); }
};

class RecoveryPolicyTest
    : public ::testing::TestWithParam<resilience::Redundancy> {};

TEST_P(RecoveryPolicyTest, ServerLossIsTransparentToReaders) {
  Rig rig(3, params_with(GetParam()));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  int wrong = 0, corrupt = 0;
  std::uint64_t bytes_before = 0, bytes_after = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 3; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);
    co_await ctx.delay(sim::seconds(5));  // let fragments propagate

    // Kill staging server 0; the manager replaces and rebuilds it.
    rig.cluster.kill(rig.server_vprocs[0]);
    co_await ctx.delay(sim::seconds(10));

    // Reads of the latest versions must succeed with verified content.
    for (Version v = 2; v <= 3; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      wrong += gr.wrong_version;
      corrupt += gr.corrupt;
      bytes_after += gr.nominal_bytes;
    }
    bytes_before = 2 * rig.domain.volume() * 8;
  });
  rig.run();
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(corrupt, 0);
  EXPECT_EQ(bytes_after, bytes_before);
  EXPECT_EQ(rig.manager->stats().server_failures, 1);
  EXPECT_EQ(rig.manager->stats().servers_recovered, 1);
  EXPECT_GT(rig.servers[0]->stats().chunks_rebuilt, 0u);
  EXPECT_EQ(rig.servers[0]->stats().rebuild_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, RecoveryPolicyTest,
                         ::testing::Values(
                             resilience::Redundancy::kReplication,
                             resilience::Redundancy::kErasureCode),
                         [](const auto& info) {
                           return info.param ==
                                          resilience::Redundancy::kReplication
                                      ? std::string("Replication")
                                      : std::string("ErasureCode");
                         });

TEST(StagingRecoveryTest, RequestsDuringOutageAreServedAfterRebuild) {
  Rig rig(3, params_with(resilience::Redundancy::kErasureCode));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  int wrong = 0;
  bool got = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await ctx.delay(sim::seconds(2));
    rig.cluster.kill(rig.server_vprocs[1]);
    // Put the next version while server 1 is down: pieces for the dead
    // server wait in its mailbox (plus client retries) and apply once the
    // replacement finishes rebuilding.
    co_await producer->put(ctx, "f", 2, rig.domain);
    auto gr = co_await consumer->get(ctx, "f", 2, rig.domain);
    wrong = gr.wrong_version + gr.corrupt;
    got = gr.nominal_bytes == rig.domain.volume() * 8;
  });
  rig.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(rig.manager->stats().servers_recovered, 1);
}

TEST(StagingRecoveryTest, QueueMirrorPreservesReplayAcrossServerLoss) {
  // The producer's event queue survives the staging server's death via the
  // successor mirror, so a producer rollback after the staging recovery
  // still suppresses its redundant writes.
  Rig rig(3, params_with(resilience::Redundancy::kErasureCode));
  auto producer = rig.make_client(0);
  std::size_t suppressed = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await producer->workflow_check(ctx, 1);
    co_await producer->put(ctx, "f", 2, rig.domain);
    co_await ctx.delay(sim::seconds(2));  // mirrors propagate

    rig.cluster.kill(rig.server_vprocs[0]);
    co_await ctx.delay(sim::seconds(10));  // recovery completes

    // Now the *producer* rolls back to its ts-1 checkpoint and replays.
    co_await producer->workflow_restart(ctx, 1);
    auto pr = co_await producer->put(ctx, "f", 2, rig.domain);
    suppressed = pr.suppressed;
  });
  rig.run();
  EXPECT_GT(suppressed, 0u);
}

TEST(StagingRecoveryTest, FragmentsPrunedAtCheckpoints) {
  Rig rig(2, params_with(resilience::Redundancy::kReplication));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  std::uint64_t before = 0, after = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 6; ++v) {
      co_await producer->put(ctx, "f", v, rig.domain);
      co_await consumer->get(ctx, "f", v, rig.domain);
    }
    co_await ctx.delay(sim::seconds(2));
    for (const auto& s : rig.servers)
      before += s->memory().redundancy_bytes;
    // Consumer checkpoint releases replay retention; producer checkpoint
    // triggers the sweep + prune broadcast.
    co_await consumer->workflow_check(ctx, 6);
    co_await producer->workflow_check(ctx, 6);
    co_await ctx.delay(sim::seconds(2));
    for (const auto& s : rig.servers)
      after += s->memory().redundancy_bytes;
  });
  rig.run();
  EXPECT_GT(before, 0u);
  EXPECT_LT(after, before);
}

TEST(StagingRecoveryTest, RefailureDuringRecoveryIsCoalesced) {
  // The same vproc fails again while its recovery is still awaiting the
  // respawn delay. The manager must coalesce the second failure into the
  // in-flight recovery — a single spare, a single replacement — instead of
  // racing two replacements into the same slot. spares=1 makes a
  // double-acquire observable: it would exhaust the pool and mark the
  // server degraded.
  Rig rig(3, params_with(resilience::Redundancy::kErasureCode), /*spares=*/1);
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  int wrong = 0;
  std::uint64_t got = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await ctx.delay(sim::seconds(2));  // fragments propagate

    rig.cluster.kill(rig.server_vprocs[0]);
    // Recovery is now sleeping through the 2 s respawn delay. Flap the
    // vproc: briefly back up, then dead again — a second failure event for
    // a server whose recovery is already in flight.
    co_await ctx.delay(sim::seconds(1));
    rig.cluster.revive(rig.server_vprocs[0]);
    rig.cluster.kill(rig.server_vprocs[0]);

    co_await ctx.delay(sim::seconds(15));  // let the recovery land
    auto gr = co_await consumer->get(ctx, "f", 1, rig.domain);
    wrong = gr.wrong_version + gr.corrupt;
    got = gr.nominal_bytes;
  });
  rig.run();
  EXPECT_EQ(rig.manager->stats().server_failures, 2);
  EXPECT_EQ(rig.manager->stats().coalesced_failures, 1);
  EXPECT_EQ(rig.manager->stats().servers_recovered, 1);
  // No double-acquire: the single spare covered both failure events.
  EXPECT_EQ(rig.manager->stats().spare_exhausted, 0);
  EXPECT_FALSE(rig.manager->is_degraded(0));
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(got, rig.domain.volume() * 8);
}

TEST(StagingRecoveryTest, DegradedServerSurfacesDistinctClientError) {
  // Spare pool empty: the dead server is never coming back. With the
  // degraded probe wired, client requests to it must fail fast with the
  // distinct "staging degraded" error (not a generic rpc timeout), and the
  // manager must report the condition loudly.
  Rig rig(3, params_with(resilience::Redundancy::kErasureCode), /*spares=*/0);
  auto producer = rig.make_client(0);
  producer->set_degraded_probe(
      [&rig](int server) { return rig.manager->is_degraded(server); });
  int degraded_server = -1;
  rig.manager->set_on_degraded([&](int index) { degraded_server = index; });
  std::string error;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    rig.cluster.kill(rig.server_vprocs[0]);
    co_await ctx.delay(sim::seconds(1));
    try {
      co_await producer->put(ctx, "f", 2, rig.domain);
    } catch (const std::runtime_error& e) {
      error = e.what();
    }
  });
  rig.run();
  EXPECT_EQ(rig.manager->stats().spare_exhausted, 1);
  EXPECT_EQ(rig.manager->degraded_count(), 1);
  EXPECT_TRUE(rig.manager->is_degraded(0));
  EXPECT_EQ(degraded_server, 0);
  EXPECT_NE(error.find("staging degraded: server"), std::string::npos)
      << "got: " << error;
}

TEST(StagingRecoveryTest, SpareExhaustionNotesDegradationOnFlightRecorder) {
  // Trigger class 3 for the forensic dump: spare-pool exhaustion is a loud
  // degradation. With a recorder wired, the manager must both record the
  // kDegradation event and keep the verbatim note that makes the runtime
  // freeze a bundle.
  Rig rig(3, params_with(resilience::Redundancy::kErasureCode), /*spares=*/0);
  obs::FlightRecorder recorder;
  rig.manager->set_recorder(&recorder, recorder.track("recovery-manager"));
  auto producer = rig.make_client(0);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    rig.cluster.kill(rig.server_vprocs[0]);
    co_await ctx.delay(sim::seconds(1));
  });
  rig.run();
  ASSERT_EQ(rig.manager->stats().spare_exhausted, 1);
  ASSERT_EQ(recorder.degradations().size(), 1u);
  EXPECT_NE(recorder.degradations()[0].find("spare pool exhausted"),
            std::string::npos);
  const auto dump = recorder.dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].kind, "degradation");
  EXPECT_EQ(dump[0].track, "recovery-manager");
}

TEST(StagingRecoveryTest, UndersizedGroupClampsPlacementLoudly) {
  // Two servers cannot hold the 6 distinct fragments RS(4,2) wants; the
  // push clamps (wrapping onto repeat peers) and says so in stats instead
  // of silently overstating survivability.
  Rig rig(2, params_with(resilience::Redundancy::kErasureCode));
  auto producer = rig.make_client(0);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await ctx.delay(sim::seconds(2));
  });
  rig.run();
  std::uint64_t clamped = 0;
  for (const auto& s : rig.servers) clamped += s->stats().placement_clamped;
  EXPECT_GT(clamped, 0u);
}

TEST(StagingRecoveryTest, NoSparesMeansDegradedNotCrashed) {
  Rig rig(3, params_with(resilience::Redundancy::kErasureCode), /*spares=*/0);
  auto producer = rig.make_client(0);
  bool finished = false;
  sim::CancelToken app_tok;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, &app_tok};
    try {
      co_await producer->put(ctx, "f", 1, rig.domain);
      rig.cluster.kill(rig.server_vprocs[0]);
      // Requests to the dead server eventually exhaust retries.
      co_await producer->put(ctx, "f", 2, rig.domain);
    } catch (const std::runtime_error&) {
      finished = true;  // timed out after retries, as designed
    }
  });
  rig.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(rig.manager->stats().spare_exhausted, 1);
}

}  // namespace
}  // namespace dstage::staging
