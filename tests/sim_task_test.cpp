#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/spawn.hpp"

namespace dstage::sim {
namespace {

Task<int> make_value(int v) { co_return v; }

Task<int> add_async(int a, int b) {
  int x = co_await make_value(a);
  int y = co_await make_value(b);
  co_return x + y;
}

Task<void> set_flag(bool& flag) {
  flag = true;
  co_return;
}

Task<int> throws_logic_error() {
  throw std::logic_error("boom");
  co_return 0;  // unreachable
}

Task<int> rethrows_from_child() {
  int v = co_await throws_logic_error();
  co_return v;
}

TEST(TaskTest, LazyStart) {
  bool ran = false;
  Engine eng;
  {
    Task<void> t = set_flag(ran);
    EXPECT_FALSE(ran);  // not started until awaited/spawned
  }                     // destroying an unstarted task must not leak or run it
  EXPECT_FALSE(ran);
}

TEST(TaskTest, SpawnRunsToCompletion) {
  Engine eng;
  bool ran = false;
  spawn(eng, set_flag(ran));
  eng.run();
  EXPECT_TRUE(ran);
}

TEST(TaskTest, NestedAwaitsPropagateValues) {
  Engine eng;
  int result = 0;
  spawn(eng, [&]() -> Task<void> {
    result = co_await add_async(20, 22);
  });
  eng.run();
  EXPECT_EQ(result, 42);
}

TEST(TaskTest, ExceptionPropagatesThroughNestedTasks) {
  Engine eng;
  std::exception_ptr captured;
  spawn(
      eng, [&]() -> Task<void> { co_await rethrows_from_child(); },
      [&](std::exception_ptr ep) { captured = ep; });
  eng.run();
  ASSERT_TRUE(captured);
  EXPECT_THROW(std::rethrow_exception(captured), std::logic_error);
}

TEST(TaskTest, OnDoneReceivesNullOnSuccess) {
  Engine eng;
  bool done_called = false;
  std::exception_ptr captured = std::make_exception_ptr(std::logic_error("x"));
  spawn(
      eng, []() -> Task<void> { co_return; },
      [&](std::exception_ptr ep) {
        done_called = true;
        captured = ep;
      });
  eng.run();
  EXPECT_TRUE(done_called);
  EXPECT_FALSE(captured);
}

TEST(TaskTest, MoveSemantics) {
  Task<int> a = make_value(5);
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  Task<int> c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
}

TEST(TaskTest, DelayAdvancesVirtualTime) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  TimePoint finish{};
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(5));
    co_await ctx.delay(milliseconds(500));
    finish = ctx.now();
  });
  eng.run();
  EXPECT_EQ(finish, TimePoint{} + seconds(5) + milliseconds(500));
}

TEST(TaskTest, TwoProcessesInterleaveDeterministically) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  std::vector<std::string> log;
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(1));
    log.push_back("a@1");
    co_await ctx.delay(seconds(2));
    log.push_back("a@3");
  });
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(2));
    log.push_back("b@2");
    co_await ctx.delay(seconds(2));
    log.push_back("b@4");
  });
  eng.run();
  EXPECT_EQ(log,
            (std::vector<std::string>{"a@1", "b@2", "a@3", "b@4"}));
}

Task<std::string> make_string() { co_return "payload"; }

TEST(TaskTest, StringResult) {
  Engine eng;
  std::string out;
  spawn(eng, [&]() -> Task<void> { out = co_await make_string(); });
  eng.run();
  EXPECT_EQ(out, "payload");
}

TEST(CancelTest, CancelDuringDelayThrowsCancelled) {
  Engine eng;
  CancelToken tok;
  Ctx ctx{&eng, &tok};
  bool saw_cancelled = false;
  bool reached_end = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await ctx.delay(seconds(100));
      reached_end = true;
    } catch (const Cancelled&) {
      saw_cancelled = true;
    }
  });
  eng.schedule_call(seconds(1), [&] { tok.cancel(); });
  eng.run();
  EXPECT_TRUE(saw_cancelled);
  EXPECT_FALSE(reached_end);
  // The kill happened at t=1, not at the delay's natural expiry.
  EXPECT_EQ(eng.now(), TimePoint{} + seconds(1));
}

TEST(CancelTest, CancelPropagatesThroughNestedTasks) {
  Engine eng;
  CancelToken tok;
  Ctx ctx{&eng, &tok};
  std::exception_ptr captured;
  auto inner = [&]() -> Task<int> {
    co_await ctx.delay(seconds(50));
    co_return 1;
  };
  spawn(
      eng,
      [&, inner]() -> Task<void> { co_await inner(); },
      [&](std::exception_ptr ep) { captured = ep; });
  eng.schedule_call(seconds(2), [&] { tok.cancel(); });
  eng.run();
  ASSERT_TRUE(captured);
  EXPECT_THROW(std::rethrow_exception(captured), Cancelled);
}

TEST(CancelTest, PreCancelledTokenThrowsImmediately) {
  Engine eng;
  CancelToken tok;
  tok.cancel();
  Ctx ctx{&eng, &tok};
  bool threw = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await ctx.delay(seconds(1));
    } catch (const Cancelled&) {
      threw = true;
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(CancelTest, CheckThrowsWhenCancelled) {
  Engine eng;
  CancelToken tok;
  Ctx ctx{&eng, &tok};
  EXPECT_NO_THROW(ctx.check());
  tok.cancel();
  EXPECT_THROW(ctx.check(), Cancelled);
}

TEST(CancelTest, CancelIsIdempotent) {
  Engine eng;
  CancelToken tok;
  Ctx ctx{&eng, &tok};
  int cancel_count = 0;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await ctx.delay(seconds(10));
    } catch (const Cancelled&) {
      ++cancel_count;
    }
  });
  eng.schedule_call(seconds(1), [&] {
    tok.cancel();
    tok.cancel();
  });
  eng.run();
  EXPECT_EQ(cancel_count, 1);
}

TEST(CancelTest, ResetReArmsToken) {
  Engine eng;
  CancelToken tok;
  tok.cancel();
  EXPECT_TRUE(tok.cancelled());
  tok.reset();
  EXPECT_FALSE(tok.cancelled());
  Ctx ctx{&eng, &tok};
  bool completed = false;
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(1));
    completed = true;
  });
  eng.run();
  EXPECT_TRUE(completed);
}

TEST(WhenAllTest, RunsChildrenConcurrently) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  TimePoint finish{};
  auto sleeper = [&](std::int64_t secs) -> Task<int> {
    co_await ctx.delay(seconds(secs));
    co_return static_cast<int>(secs);
  };
  spawn(eng, [&]() -> Task<void> {
    std::vector<Task<int>> ts;
    ts.push_back(sleeper(3));
    ts.push_back(sleeper(5));
    ts.push_back(sleeper(2));
    auto results = co_await when_all(ctx, std::move(ts));
    EXPECT_EQ(results, (std::vector<int>{3, 5, 2}));
    finish = ctx.now();
  });
  eng.run();
  // Parallel in virtual time: max(3,5,2), not the 10s sum.
  EXPECT_EQ(finish, TimePoint{} + seconds(5));
}

TEST(WhenAllTest, EmptyCompletesImmediately) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  bool done = false;
  spawn(eng, [&]() -> Task<void> {
    auto r = co_await when_all(ctx, std::vector<Task<int>>{});
    EXPECT_TRUE(r.empty());
    co_await when_all(ctx, std::vector<Task<void>>{});
    done = true;
  });
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(eng.now().ns, 0);
}

TEST(WhenAllTest, PropagatesFirstChildError) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  bool threw = false;
  auto failing = [&]() -> Task<void> {
    co_await ctx.delay(seconds(1));
    throw std::runtime_error("child failed");
  };
  auto ok = [&]() -> Task<void> { co_await ctx.delay(seconds(2)); };
  spawn(eng, [&]() -> Task<void> {
    std::vector<Task<void>> ts;
    ts.push_back(failing());
    ts.push_back(ok());
    try {
      co_await when_all(ctx, std::move(ts));
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_STREQ(e.what(), "child failed");
    }
  });
  eng.run();
  EXPECT_TRUE(threw);
}

TEST(WhenAllTest, VoidVariantWaitsForAll) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  int completed = 0;
  TimePoint finish{};
  auto worker = [&](std::int64_t secs) -> Task<void> {
    co_await ctx.delay(seconds(secs));
    ++completed;
  };
  spawn(eng, [&]() -> Task<void> {
    std::vector<Task<void>> ts;
    for (std::int64_t s : {1, 4, 2}) ts.push_back(worker(s));
    co_await when_all(ctx, std::move(ts));
    finish = ctx.now();
  });
  eng.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(finish, TimePoint{} + seconds(4));
}

}  // namespace
}  // namespace dstage::sim
