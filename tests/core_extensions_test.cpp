// Tests for the paper's future-work extensions: multi-level (node-local +
// PFS) checkpointing and proactive, prediction-triggered checkpoints.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/setups.hpp"

namespace dstage::core {
namespace {

WorkflowSpec base_spec(int failures, std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(Scheme::kUncoordinated);
  spec.total_ts = 12;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  spec.failures.node_failure_fraction = 0;  // process failures by default
  return spec;
}

RunMetrics run(WorkflowSpec spec) {
  WorkflowRunner runner(std::move(spec));
  return runner.run();
}

TEST(MultilevelCkptTest, LocalLevelCheckpointsAtItsOwnPeriod) {
  WorkflowSpec spec = base_spec(0, 1);
  spec.components[0].local_ckpt_period = 2;  // sim: local@2, PFS@4
  auto m = run(std::move(spec));
  // 12 ts: PFS at 4, 8, 12 (3); local at 2, 6, 10 (the other multiples of 2).
  EXPECT_EQ(m.component("simulation").checkpoints, 3);
  EXPECT_EQ(m.component("simulation").local_checkpoints, 3);
  EXPECT_EQ(m.component("analytic").local_checkpoints, 0);
}

TEST(MultilevelCkptTest, ProcessFailureRestartsFromLocalLevel) {
  // With a local checkpoint every timestep, a process failure loses at most
  // the interrupted timestep.
  for (std::uint64_t seed : {2, 3, 6, 7}) {
    WorkflowSpec spec = base_spec(1, seed);
    for (auto& c : spec.components) c.local_ckpt_period = 1;
    auto m = run(std::move(spec));
    EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
    for (const auto& c : m.components) {
      EXPECT_LE(c.timesteps_reworked, 1)
          << c.name << " seed " << seed;
    }
  }
}

TEST(MultilevelCkptTest, NodeFailureFallsBackToPfsLevel) {
  // Node failures lose the local level: rework returns to the PFS period.
  WorkflowSpec spec = base_spec(1, 6);  // seed 6 hits the simulation
  spec.failures.node_failure_fraction = 1.0;
  for (auto& c : spec.components) c.local_ckpt_period = 1;
  auto m = run(std::move(spec));
  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_GT(m.component("simulation").timesteps_reworked, 1);
  EXPECT_GT(m.pfs_bytes_read, 0u);  // restart came from the PFS
}

TEST(MultilevelCkptTest, LocalRestartsAvoidPfsReads) {
  WorkflowSpec spec = base_spec(1, 6);
  for (auto& c : spec.components) c.local_ckpt_period = 1;
  auto m = run(std::move(spec));
  EXPECT_EQ(m.pfs_bytes_read, 0u);  // restored from node-local storage
  EXPECT_EQ(m.total_anomalies(), 0);
}

TEST(MultilevelCkptTest, FasterRecoveryThanPfsOnly) {
  WorkflowSpec plain = base_spec(1, 6);
  WorkflowSpec multilevel = base_spec(1, 6);
  for (auto& c : multilevel.components) c.local_ckpt_period = 1;
  const double t_plain = run(std::move(plain)).total_time_s;
  const double t_multi = run(std::move(multilevel)).total_time_s;
  EXPECT_LT(t_multi, t_plain);
}

TEST(ProactiveCkptTest, PredictedFailuresShrinkRework) {
  WorkflowSpec spec = base_spec(1, 6);  // sim fails mid-run
  spec.failures.predictor_recall = 1.0;
  auto m = run(std::move(spec));
  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_GE(m.component("simulation").proactive_checkpoints, 1);
  // The emergency checkpoint right before death means only the interrupted
  // timestep is redone.
  EXPECT_LE(m.component("simulation").timesteps_reworked, 1);
}

TEST(ProactiveCkptTest, UnpredictedBaselineReworksMore) {
  WorkflowSpec predicted = base_spec(1, 6);
  predicted.failures.predictor_recall = 1.0;
  WorkflowSpec blind = base_spec(1, 6);
  auto mp = run(std::move(predicted));
  auto mb = run(std::move(blind));
  EXPECT_LT(mp.component("simulation").timesteps_reworked,
            mb.component("simulation").timesteps_reworked);
  EXPECT_LT(mp.total_time_s, mb.total_time_s);
}

TEST(ProactiveCkptTest, FalseAlarmsCostTimeNotCorrectness) {
  WorkflowSpec noisy = base_spec(0, 5);
  noisy.failures.predictor_false_alarms = 4;
  WorkflowSpec quiet = base_spec(0, 5);
  auto mn = run(std::move(noisy));
  auto mq = run(std::move(quiet));
  EXPECT_EQ(mn.total_anomalies(), 0);
  int alarms = 0;
  for (const auto& c : mn.components) alarms += c.proactive_checkpoints;
  EXPECT_GT(alarms, 0);
  EXPECT_GE(mn.total_time_s, mq.total_time_s);
  EXPECT_EQ(mn.failures_injected, 0);  // alarms kill nothing
}

TEST(ProactiveCkptTest, ReplayStillConsistentAfterEmergencyCheckpoint) {
  // The emergency checkpoint inserts a W_Chk_ID mid-cycle; the replay
  // anchored on it must stay byte-exact across a seed sweep.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    WorkflowSpec spec = base_spec(1, seed);
    spec.failures.predictor_recall = 1.0;
    auto m = run(std::move(spec));
    EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
    EXPECT_EQ(m.staging.replay_mismatches, 0u) << "seed " << seed;
  }
}

TEST(ExtensionTest, DeterministicWithExtensionsEnabled) {
  auto make = [] {
    WorkflowSpec spec = base_spec(2, 9);
    spec.failures.predictor_recall = 0.5;
    spec.failures.node_failure_fraction = 0.5;
    for (auto& c : spec.components) c.local_ckpt_period = 2;
    return spec;
  };
  auto a = run(make());
  auto b = run(make());
  EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace dstage::core
