#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/spawn.hpp"

namespace dstage::net {
namespace {

struct Rig {
  sim::Engine eng;
  Fabric fabric;
  NodeId n0, n1;
  EndpointId a, b;

  explicit Rig(Fabric::Params p = {})
      : fabric(eng, p),
        n0(fabric.add_node()),
        n1(fabric.add_node()),
        a(fabric.add_endpoint(n0)),
        b(fabric.add_endpoint(n1)) {}
};

/// Payload whose codec size is exactly `nominal` bytes (a FragmentPut's
/// wire footprint is its nominal payload share).
Message sized_payload(std::uint64_t nominal, std::string var = "f") {
  FragmentPut frag;
  frag.owner = 0;
  frag.var = std::move(var);
  frag.nominal_bytes = nominal;
  return Message{std::move(frag)};
}

TEST(FabricTest, InjectionTimeModel) {
  Rig rig;
  const auto& p = rig.fabric.params();
  const auto t = rig.fabric.injection_time(8'000'000'000ull);  // 8 GB
  // 8 GB at 8 GB/s = 1 s plus the per-message overhead.
  EXPECT_EQ(t.ns, sim::seconds(1).ns + p.per_message_overhead.ns);
}

TEST(FabricTest, CrossNodeDeliveryPaysInjectionAndLatency) {
  Rig rig;
  sim::TimePoint recv_at{};
  std::string got;
  std::uint64_t packet_bytes = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    Packet pkt = co_await rig.fabric.endpoint(rig.b).recv(nullptr);
    got = std::get<FragmentPut>(pkt.payload).var;
    packet_bytes = pkt.bytes;
    recv_at = rig.eng.now();
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await rig.fabric.send(ctx, rig.a, rig.b,
                             sized_payload(8'000'000'000ull, "hello"));
  });
  rig.eng.run();
  EXPECT_EQ(got, "hello");
  // The envelope records the codec's size — callers never supply one.
  EXPECT_EQ(packet_bytes, 8'000'000'000ull);
  const auto expect = rig.fabric.injection_time(8'000'000'000ull) +
                      rig.fabric.params().latency;
  EXPECT_EQ(recv_at.ns, expect.ns);
}

TEST(FabricTest, IntraNodeSkipsNicAndLatency) {
  Rig rig;
  EndpointId a2 = rig.fabric.add_endpoint(rig.n0);
  sim::TimePoint recv_at{.ns = -1};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    (void)co_await rig.fabric.endpoint(a2).recv(nullptr);
    recv_at = rig.eng.now();
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await rig.fabric.send(ctx, rig.a, a2, sized_payload(1 << 20));
  });
  rig.eng.run();
  EXPECT_EQ(recv_at.ns, 0);  // same virtual instant
}

TEST(FabricTest, NicContentionSerializesSenders) {
  Rig rig;
  int received = 0;
  sim::TimePoint last{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      (void)co_await rig.fabric.endpoint(rig.b).recv(nullptr);
      ++received;
      last = rig.eng.now();
    }
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    std::vector<sim::Task<void>> sends;
    for (int i = 0; i < 3; ++i) {
      sends.push_back(
          rig.fabric.send(ctx, rig.a, rig.b, sized_payload(8'000'000'000ull)));
    }
    co_await sim::when_all(ctx, std::move(sends));
  });
  rig.eng.run();
  EXPECT_EQ(received, 3);
  // Three 1-second injections share one NIC: ~3 s total despite the
  // concurrent sends.
  EXPECT_GE(last.seconds(), 3.0);
  EXPECT_LT(last.seconds(), 3.1);
}

TEST(FabricTest, StatisticsAccumulateCodecBytes) {
  Rig rig;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await rig.fabric.send(ctx, rig.a, rig.b, sized_payload(100));
    co_await rig.fabric.send(ctx, rig.a, rig.b, sized_payload(200));
  });
  rig.eng.run();
  EXPECT_EQ(rig.fabric.packets_sent(), 2u);
  EXPECT_EQ(rig.fabric.bytes_sent(), 300u);
}

TEST(FabricTest, SenderKilledAfterInjectionStillDelivers) {
  // Once the bytes are on the wire, delivery completes even if the sender
  // process dies — exactly like RDMA.
  Rig rig;
  sim::CancelToken tok;
  bool delivered = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    (void)co_await rig.fabric.endpoint(rig.b).recv(nullptr);
    delivered = true;
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, &tok};
    co_await rig.fabric.send(ctx, rig.a, rig.b, sized_payload(64));
    co_await ctx.delay(sim::seconds(100));  // killed here
  });
  rig.eng.schedule_call(sim::microseconds(10), [&] { tok.cancel(); });
  rig.eng.run();
  EXPECT_TRUE(delivered);
}

TEST(FabricTest, ReplyRoundTrip) {
  Rig rig;
  auto reply = make_reply<int>(rig.eng);
  int got = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    got = co_await reply->take(ctx);
  });
  rig.eng.schedule_call(sim::seconds(1), [&] { reply->fulfill(99); });
  rig.eng.run();
  EXPECT_EQ(got, 99);
}

TEST(FabricTest, TransmitRunsDeliverAfterLatency) {
  Rig rig;
  sim::TimePoint fired{.ns = -1};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    std::function<void()> deliver = [&] { fired = rig.eng.now(); };
    co_await rig.fabric.transmit(ctx, rig.a, rig.b, 1000,
                                 std::move(deliver));
  });
  rig.eng.run();
  const auto expect =
      rig.fabric.injection_time(1000) + rig.fabric.params().latency;
  EXPECT_EQ(fired.ns, expect.ns);
}

TEST(FabricTest, InvalidEndpointsRejected) {
  Rig rig;
  EXPECT_THROW(rig.fabric.endpoint(99), std::out_of_range);
  EXPECT_THROW(rig.fabric.add_endpoint(42), std::out_of_range);
  EXPECT_THROW(Fabric(rig.eng, Fabric::Params{.injection_bw = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dstage::net
