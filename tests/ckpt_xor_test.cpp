// XOR partner-group codec: every single-member loss in groups of size
// {2, 3, 4} rebuilds byte-identically from the survivors + parity, and any
// two losses in one group exceed the code's tolerance and throw loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ckpt/hierarchy.hpp"
#include "ckpt/xor_group.hpp"

namespace dstage::ckpt {
namespace {

std::vector<std::vector<std::uint8_t>> group_blocks(int app, int ts,
                                                    int group) {
  std::vector<std::vector<std::uint8_t>> blocks;
  for (int i = 0; i < group; ++i) {
    blocks.push_back(CheckpointHierarchy::make_block(app, ts, i));
  }
  return blocks;
}

TEST(CkptXorTest, EverySingleLossRebuildsByteIdentically) {
  for (int group : {2, 3, 4}) {
    const auto blocks = group_blocks(/*app=*/0, /*ts=*/group, group);
    const auto parity = xor_encode(blocks);
    ASSERT_EQ(parity.size(), CheckpointHierarchy::kBlockBytes);
    // Exhaustive: lose each member in turn.
    for (int lost = 0; lost < group; ++lost) {
      std::vector<const std::vector<std::uint8_t>*> view;
      for (int i = 0; i < group; ++i) {
        view.push_back(i == lost ? nullptr : &blocks[static_cast<std::size_t>(i)]);
      }
      const auto rebuilt = xor_rebuild(view, parity);
      EXPECT_EQ(rebuilt, blocks[static_cast<std::size_t>(lost)])
          << "group=" << group << " lost member " << lost;
      // And against independent regeneration, not just the cached copy.
      EXPECT_EQ(rebuilt, CheckpointHierarchy::make_block(0, group, lost));
    }
  }
}

TEST(CkptXorTest, EveryDoubleLossDegradesLoudly) {
  for (int group : {2, 3, 4}) {
    const auto blocks = group_blocks(/*app=*/1, /*ts=*/7, group);
    const auto parity = xor_encode(blocks);
    // Exhaustive: every unordered pair of lost members.
    for (int a = 0; a < group; ++a) {
      for (int b = a + 1; b < group; ++b) {
        std::vector<const std::vector<std::uint8_t>*> view;
        for (int i = 0; i < group; ++i) {
          view.push_back(i == a || i == b
                             ? nullptr
                             : &blocks[static_cast<std::size_t>(i)]);
        }
        try {
          xor_rebuild(view, parity);
          ADD_FAILURE() << "group=" << group << " losses {" << a << "," << b
                        << "} rebuilt past the single-loss tolerance";
        } catch (const XorLossError& e) {
          EXPECT_EQ(e.missing(), 2);
          EXPECT_EQ(e.group(), group);
        }
      }
    }
  }
}

TEST(CkptXorTest, RebuildValidatesInputs) {
  const auto blocks = group_blocks(/*app=*/2, /*ts=*/3, 3);
  const auto parity = xor_encode(blocks);
  // Nothing missing: there is nothing to rebuild.
  std::vector<const std::vector<std::uint8_t>*> intact{&blocks[0], &blocks[1],
                                                       &blocks[2]};
  EXPECT_THROW(xor_rebuild(intact, parity), std::invalid_argument);
  // Length mismatch between a survivor and parity.
  std::vector<std::uint8_t> short_parity(parity.begin(), parity.end() - 1);
  std::vector<const std::vector<std::uint8_t>*> one_lost{nullptr, &blocks[1],
                                                         &blocks[2]};
  EXPECT_THROW(xor_rebuild(one_lost, short_parity), std::invalid_argument);
  // Empty group cannot be encoded.
  EXPECT_THROW(
      xor_encode(std::span<const std::vector<std::uint8_t>>{}),
      std::invalid_argument);
}

TEST(CkptXorTest, BlocksAreDeterministicAndDistinct) {
  const auto a = CheckpointHierarchy::make_block(0, 5, 1);
  EXPECT_EQ(a, CheckpointHierarchy::make_block(0, 5, 1));
  EXPECT_NE(a, CheckpointHierarchy::make_block(0, 5, 2));
  EXPECT_NE(a, CheckpointHierarchy::make_block(0, 6, 1));
  EXPECT_NE(a, CheckpointHierarchy::make_block(1, 5, 1));
  EXPECT_EQ(a.size(), CheckpointHierarchy::kBlockBytes);
}

}  // namespace
}  // namespace dstage::ckpt
