#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/setups.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/time.hpp"

namespace dstage::obs {
namespace {

sim::TimePoint at(std::int64_t ns) { return sim::TimePoint{} + sim::Duration{ns}; }

TEST(FlightRecorderTest, RingKeepsLastKOldestFirstUnderSustainedTraffic) {
  RecorderConfig cfg;
  cfg.ring_capacity = 8;
  FlightRecorder rec(cfg);
  const std::uint32_t t = rec.track("staging-0");
  const std::uint32_t var = rec.intern("field");
  for (int i = 0; i < 100; ++i) {
    rec.record(t, at(i), FrKind::kPutAdmit, var, i, 2 * i);
  }
  EXPECT_EQ(rec.events_recorded(), 100u);
  EXPECT_EQ(rec.events_dropped(), 92u);

  const std::vector<FrEvent> survived = rec.track_events(t);
  ASSERT_EQ(survived.size(), 8u);
  // Oldest first, and exactly the last K offered.
  for (std::size_t i = 0; i < survived.size(); ++i) {
    EXPECT_EQ(survived[i].a, 92 + static_cast<std::int64_t>(i));
    if (i > 0) EXPECT_LT(survived[i - 1].seq, survived[i].seq);
  }
}

TEST(FlightRecorderTest, TracksTruncateIndependentlyAndMergeBySeq) {
  RecorderConfig cfg;
  cfg.ring_capacity = 4;
  FlightRecorder rec(cfg);
  const std::uint32_t busy = rec.track("staging-0");
  const std::uint32_t quiet = rec.track("analytic");
  rec.record(quiet, at(0), FrKind::kGetServe, rec.intern("field"), 1, 42);
  for (int i = 0; i < 20; ++i) {
    rec.record(busy, at(10 + i), FrKind::kPutAdmit, rec.intern("field"), i, 0);
  }
  // The busy ring wrapped; the quiet track kept its single early event.
  const std::vector<FrEvent> merged = rec.snapshot();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged.front().track, quiet);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].seq, merged[i].seq);
  }
  const std::vector<FrDecoded> dump = rec.dump();
  ASSERT_EQ(dump.size(), 5u);
  EXPECT_EQ(dump.front().track, "analytic");
  EXPECT_EQ(dump.front().kind, "get-serve");
  EXPECT_EQ(dump.front().detail, "field");
  EXPECT_EQ(dump.back().track, "staging-0");
}

TEST(FlightRecorderTest, InternTablesReturnStableDenseIds) {
  FlightRecorder rec;
  const std::uint32_t a = rec.track("a");
  const std::uint32_t b = rec.track("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.track("a"), a);
  EXPECT_EQ(rec.intern("field"), rec.intern("field"));
  EXPECT_EQ(rec.track_name(a), "a");
  EXPECT_EQ(rec.track_count(), 2u);
}

TEST(FlightRecorderTest, DegradationIsRecordedAndKeptVerbatim) {
  FlightRecorder rec;
  const std::uint32_t t = rec.track("recovery-manager");
  rec.note_degradation(t, at(7), "spare pool exhausted; server 2 down");
  ASSERT_EQ(rec.degradations().size(), 1u);
  EXPECT_EQ(rec.degradations()[0], "spare pool exhausted; server 2 down");
  const std::vector<FrDecoded> dump = rec.dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].kind, "degradation");
  EXPECT_EQ(dump[0].detail, "spare pool exhausted; server 2 down");
}

// The recorder's reason to exist is that it is free: golden trace digests
// must be byte-identical with it at defaults (on), off, and at a tiny
// ring size — it allocates no vprocs, takes no virtual time, records no
// trace events, and draws no randomness.
TEST(FlightRecorderTest, GoldenDigestIsInvariantToRecorderConfig) {
  const auto digest_with = [](bool enabled, std::size_t ring) {
    core::WorkflowSpec spec = core::table2_setup(core::Scheme::kUncoordinated);
    spec.failures.count = 2;
    spec.failures.seed = 1;
    spec.failures.node_failure_fraction = 0.2;
    spec.recorder.enabled = enabled;
    spec.recorder.ring_capacity = ring;
    core::WorkflowRunner runner(std::move(spec));
    runner.run();
    return runner.trace().digest();
  };
  const std::uint64_t on = digest_with(true, 256);
  EXPECT_EQ(digest_with(false, 256), on);
  EXPECT_EQ(digest_with(true, 4), on);
}

}  // namespace
}  // namespace dstage::obs
