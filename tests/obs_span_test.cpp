#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"

namespace dstage::obs {
namespace {

sim::TimePoint at(double s) {
  return sim::TimePoint{} + sim::Duration{static_cast<std::int64_t>(s * 1e9)};
}

TEST(SpanTracerTest, BeginEndAndCausalLinks) {
  SpanTracer t;
  const SpanId root = t.begin("app", "recovery", Phase::kRestart, at(1));
  const SpanId child =
      t.begin("app", "detect", Phase::kRestart, at(1), root, 7);
  t.end(child, at(2));
  t.end(root, at(4));

  ASSERT_EQ(t.spans().size(), 2u);
  const Span* r = t.find(root);
  const Span* c = t.find(child);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->parent, 0u);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->value, 7);
  EXPECT_FALSE(r->open);
  EXPECT_EQ(r->duration().ns, sim::seconds(3).ns);
  ASSERT_EQ(t.children_of(root).size(), 1u);
  EXPECT_EQ(t.children_of(root)[0]->id, child);
}

TEST(SpanTracerTest, EndIsIdempotentAndIgnoresZero) {
  SpanTracer t;
  const SpanId s = t.begin("a", "x", Phase::kCompute, at(0));
  t.end(0, at(1));  // no-op
  t.end(s, at(1));
  t.end(s, at(5));  // already closed: keeps the first end
  EXPECT_EQ(t.find(s)->end.ns, at(1).ns);
  EXPECT_EQ(t.open_count(), 0u);
}

TEST(SpanTracerTest, EndOpenForTrackClosesInnermostFirst) {
  SpanTracer t;
  const SpanId outer = t.begin("app", "request", Phase::kOther, at(0));
  const SpanId inner =
      t.begin("app", "gc sweep", Phase::kCheckpoint, at(1), outer);
  const SpanId other = t.begin("elsewhere", "compute", Phase::kCompute, at(0));
  t.end_open_for_track("app", at(3));
  EXPECT_FALSE(t.find(outer)->open);
  EXPECT_FALSE(t.find(inner)->open);
  EXPECT_TRUE(t.find(other)->open);  // other tracks untouched
  t.end_all(at(9));
  EXPECT_EQ(t.open_count(), 0u);
  EXPECT_EQ(t.find(other)->end.ns, at(9).ns);
}

TEST(SpanTracerTest, TracksInFirstAppearanceOrder) {
  SpanTracer t;
  t.begin("b", "x", Phase::kOther, at(0));
  t.begin("a", "y", Phase::kOther, at(1));
  t.instant("c", "failure", at(2));
  t.begin("b", "z", Phase::kOther, at(3));
  const auto tracks = t.tracks();
  ASSERT_EQ(tracks.size(), 3u);
  EXPECT_EQ(tracks[0], "b");
  EXPECT_EQ(tracks[1], "a");
  EXPECT_EQ(tracks[2], "c");
}

TEST(ChromeTraceTest, ExportPassesIndependentValidator) {
  SpanTracer t;
  const SpanId ts = t.begin("sim", "timestep", Phase::kOther, at(0));
  const SpanId rd = t.begin("sim", "read", Phase::kRead, at(0), ts);
  t.end(rd, at(1));
  const SpanId wr = t.begin("sim", "write", Phase::kWrite, at(1), ts);
  t.end(wr, at(2));
  t.end(ts, at(2));
  t.instant("sim", "failure", at(2), 1);
  t.begin("staging-0", "put", Phase::kOther, at(0.5));
  t.end_all(at(3));

  const std::string text = chrome_trace_json(t).str();
  const TraceValidation v = validate_chrome_trace(text);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors[0]);
  // 6 B/E pairs? 4 spans -> 8 B/E + 1 instant + 2 thread_name metadata.
  EXPECT_EQ(v.events, 4u * 2 + 1 + 2);
}

TEST(ChromeTraceTest, ValidatorRejectsMalformedInput) {
  EXPECT_FALSE(validate_chrome_trace("not json").ok);
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\": 3}").ok);
  // Unbalanced begin/end on a track.
  const std::string unbalanced =
      "{\"traceEvents\":[{\"ph\":\"B\",\"name\":\"a\",\"pid\":0,\"tid\":0,"
      "\"ts\":1}]}";
  const TraceValidation v = validate_chrome_trace(unbalanced);
  EXPECT_FALSE(v.ok);
  // Non-monotone timestamps.
  const std::string backwards =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"name\":\"a\",\"pid\":0,\"tid\":0,\"ts\":5},"
      "{\"ph\":\"E\",\"name\":\"a\",\"pid\":0,\"tid\":0,\"ts\":2}]}";
  EXPECT_FALSE(validate_chrome_trace(backwards).ok);
}

TEST(ReportTest, BreakdownAttributesInnermostPhaseAndSumsExactly) {
  SpanTracer t;
  // Track "sim": [0,10) timestep(kOther) with read [0,2), compute [2,7),
  // write [7,9); [9,10) falls back to the enclosing span's phase (kOther).
  const SpanId ts = t.begin("sim", "timestep", Phase::kOther, at(0));
  const SpanId rd = t.begin("sim", "read", Phase::kRead, at(0), ts);
  t.end(rd, at(2));
  const SpanId cp = t.begin("sim", "compute", Phase::kCompute, at(2), ts);
  t.end(cp, at(7));
  const SpanId wr = t.begin("sim", "write", Phase::kWrite, at(7), ts);
  t.end(wr, at(9));
  t.end(ts, at(10));

  const Breakdown b = phase_breakdown(t);
  ASSERT_EQ(b.tracks.size(), 1u);
  const TrackBreakdown& sim = b.tracks[0];
  EXPECT_EQ(sim.track, "sim");
  EXPECT_EQ(sim.phase(Phase::kRead), sim::seconds(2).ns);
  EXPECT_EQ(sim.phase(Phase::kCompute), sim::seconds(5).ns);
  EXPECT_EQ(sim.phase(Phase::kWrite), sim::seconds(2).ns);
  EXPECT_EQ(sim.phase(Phase::kOther), sim::seconds(1).ns);
  EXPECT_EQ(sim.total_ns, sim::seconds(10).ns);
  EXPECT_EQ(sim.attributed_ns(), sim.total_ns);  // exact, by construction
  EXPECT_EQ(b.span_horizon_ns, sim::seconds(10).ns);
}

TEST(ReportTest, BreakdownChargesGapsToOther) {
  SpanTracer t;
  const SpanId a = t.begin("s", "a", Phase::kWrite, at(0));
  t.end(a, at(1));
  const SpanId c = t.begin("s", "b", Phase::kCheckpoint, at(3));
  t.end(c, at(4));
  const Breakdown b = phase_breakdown(t);
  ASSERT_EQ(b.tracks.size(), 1u);
  EXPECT_EQ(b.tracks[0].phase(Phase::kWrite), sim::seconds(1).ns);
  EXPECT_EQ(b.tracks[0].phase(Phase::kCheckpoint), sim::seconds(1).ns);
  EXPECT_EQ(b.tracks[0].phase(Phase::kOther), sim::seconds(2).ns);
  EXPECT_EQ(b.tracks[0].attributed_ns(), b.tracks[0].total_ns);
}

TEST(ReportTest, RecoveryPathsMarkCriticalChain) {
  SpanTracer t;
  const SpanId root = t.begin("app", "recovery", Phase::kRestart, at(10));
  const SpanId detect =
      t.begin("app", "detect", Phase::kRestart, at(10), root);
  t.end(detect, at(11));
  const SpanId restore =
      t.begin("app", "restore", Phase::kRestart, at(11), root);
  t.end(restore, at(15));
  const SpanId replay =
      t.begin("app", "replay", Phase::kReplay, at(15), root);
  t.end(replay, at(16));
  t.end(root, at(16));

  const auto roots = recovery_paths(t);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].span->id, root);
  ASSERT_EQ(roots[0].children.size(), 3u);
  // The longest child ("restore", 4 s) anchors the critical path.
  EXPECT_TRUE(roots[0].children[1].on_critical_path);
  EXPECT_EQ(roots[0].children[1].span->name, "restore");
}

}  // namespace
}  // namespace dstage::obs
