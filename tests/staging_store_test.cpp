#include <gtest/gtest.h>

#include "staging/object_store.hpp"
#include "staging/types.hpp"

namespace dstage::staging {
namespace {

Chunk chunk_of(const std::string& var, Version v, Box region,
               double bpp = 8.0) {
  return make_chunk(var, v, region, bpp, 1024);
}

TEST(ChunkTest, MakeChunkSizes) {
  Box r = Box::from_dims(32, 32, 32);
  Chunk c = chunk_of("t", 3, r);
  EXPECT_EQ(c.nominal_bytes, 32ull * 32 * 32 * 8);
  EXPECT_EQ(c.physical_bytes(), c.nominal_bytes / 1024);
  EXPECT_EQ(c.content_key, chunk_content_key("t", 3, r));
}

TEST(ChunkTest, PhysicalFloorIs16Bytes) {
  Chunk c = chunk_of("t", 0, Box{{0, 0, 0}, {0, 0, 0}});
  EXPECT_GE(c.physical_bytes(), 16u);
}

TEST(ChunkTest, CheckDetectsVersionMismatch) {
  Chunk c = chunk_of("t", 5, Box::from_dims(8, 8, 8));
  EXPECT_EQ(check_chunk(c, "t", 5), ChunkCheck::kOk);
  EXPECT_EQ(check_chunk(c, "t", 6), ChunkCheck::kWrongVersion);
  EXPECT_EQ(check_chunk(c, "u", 5), ChunkCheck::kWrongVersion);
}

TEST(ChunkTest, CheckDetectsCorruption) {
  Chunk c = chunk_of("t", 5, Box::from_dims(8, 8, 8));
  auto mutable_data = std::make_shared<std::vector<std::uint8_t>>(*c.data);
  (*mutable_data)[3] ^= 0xff;
  c.data = mutable_data;
  EXPECT_EQ(check_chunk(c, "t", 5), ChunkCheck::kCorrupt);
}

TEST(RegionHashTest, DistinctRegionsDistinctHashes) {
  EXPECT_NE(region_hash(Box{{0, 0, 0}, {1, 1, 1}}),
            region_hash(Box{{0, 0, 0}, {1, 1, 2}}));
  EXPECT_EQ(region_hash(Box{{1, 2, 3}, {4, 5, 6}}),
            region_hash(Box{{1, 2, 3}, {4, 5, 6}}));
}

TEST(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store(2);
  Box r = Box::from_dims(16, 16, 16);
  store.put(chunk_of("v", 1, r));
  auto got = store.get("v", 1, r);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].version, 1u);
  EXPECT_TRUE(store.covers("v", 1, r));
}

TEST(ObjectStoreTest, GetClipsToRequest) {
  ObjectStore store(2);
  store.put(chunk_of("v", 1, Box::from_dims(16, 16, 16)));
  Box half{{0, 0, 0}, {15, 15, 7}};
  auto got = store.get("v", 1, half);
  ASSERT_EQ(got.size(), 1u);
  // Clipped nominal size is proportional to overlap volume.
  EXPECT_EQ(got[0].nominal_bytes, half.volume() * 8);
}

TEST(ObjectStoreTest, MissingVersionNotCovered) {
  ObjectStore store(2);
  store.put(chunk_of("v", 1, Box::from_dims(8, 8, 8)));
  EXPECT_FALSE(store.covers("v", 2, Box::from_dims(8, 8, 8)));
  EXPECT_FALSE(store.covers("w", 1, Box::from_dims(8, 8, 8)));
  EXPECT_TRUE(store.get("v", 2, Box::from_dims(8, 8, 8)).empty());
}

TEST(ObjectStoreTest, PartialCoverageDetected) {
  ObjectStore store(2);
  store.put(chunk_of("v", 1, Box{{0, 0, 0}, {7, 7, 3}}));
  EXPECT_FALSE(store.covers("v", 1, Box::from_dims(8, 8, 8)));
  store.put(chunk_of("v", 1, Box{{0, 0, 4}, {7, 7, 7}}));
  EXPECT_TRUE(store.covers("v", 1, Box::from_dims(8, 8, 8)));
}

TEST(ObjectStoreTest, WindowRotatesOldVersions) {
  ObjectStore store(2);
  Box r = Box::from_dims(8, 8, 8);
  for (Version v = 1; v <= 5; ++v) store.put(chunk_of("v", v, r));
  EXPECT_FALSE(store.covers("v", 3, r));
  EXPECT_TRUE(store.covers("v", 4, r));
  EXPECT_TRUE(store.covers("v", 5, r));
  EXPECT_EQ(store.latest("v"), Version{5});
  EXPECT_EQ(store.versions_of("v"), (std::vector<Version>{4, 5}));
}

TEST(ObjectStoreTest, MemoryAccountingFollowsRotation) {
  ObjectStore store(1);
  Box r = Box::from_dims(8, 8, 8);
  const std::uint64_t per_version = r.volume() * 8;
  store.put(chunk_of("v", 1, r));
  EXPECT_EQ(store.nominal_bytes(), per_version);
  store.put(chunk_of("v", 2, r));
  EXPECT_EQ(store.nominal_bytes(), per_version);  // v1 rotated out
  EXPECT_EQ(store.peak_nominal_bytes(), 2 * per_version);
}

TEST(ObjectStoreTest, StaleRePutRotatesImmediately) {
  // An individually restarted producer re-writes an old version; the store
  // accepts and immediately rotates it out (Fig. 2 case 2's wasted write).
  ObjectStore store(1);
  Box r = Box::from_dims(8, 8, 8);
  store.put(chunk_of("v", 5, r));
  store.put(chunk_of("v", 2, r));
  EXPECT_EQ(store.latest("v"), Version{5});
  EXPECT_FALSE(store.covers("v", 2, r));
}

TEST(ObjectStoreTest, DropVersionsAboveRollsBack) {
  ObjectStore store(8);
  Box r = Box::from_dims(4, 4, 4);
  for (Version v = 1; v <= 6; ++v) store.put(chunk_of("v", v, r));
  const std::size_t dropped = store.drop_versions_above(3);
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(store.latest("v"), Version{3});
  EXPECT_EQ(store.nominal_bytes(), 3 * r.volume() * 8);
}

TEST(ObjectStoreTest, DropVersion) {
  ObjectStore store(8);
  Box r = Box::from_dims(4, 4, 4);
  store.put(chunk_of("v", 1, r));
  store.put(chunk_of("v", 2, r));
  EXPECT_TRUE(store.drop_version("v", 1));
  EXPECT_FALSE(store.drop_version("v", 1));
  EXPECT_FALSE(store.drop_version("w", 2));
  EXPECT_EQ(store.versions_of("v"), (std::vector<Version>{2}));
}

TEST(ObjectStoreTest, MultipleVariablesIndependent) {
  ObjectStore store(1);
  Box r = Box::from_dims(4, 4, 4);
  store.put(chunk_of("a", 1, r));
  store.put(chunk_of("b", 7, r));
  EXPECT_TRUE(store.covers("a", 1, r));
  EXPECT_TRUE(store.covers("b", 7, r));
  EXPECT_EQ(store.variables().size(), 2u);
  EXPECT_EQ(store.object_count(), 2u);
}

TEST(ObjectStoreTest, RejectsBadWindow) {
  EXPECT_THROW(ObjectStore(0), std::invalid_argument);
}

TEST(ObjectStoreTest, OverlappingChunksDoNotFakeCoverage) {
  // Chunks [0..3] and [2..5] on the x line sum to 8 points but cover only
  // 6 of [0..7]: the exact-coverage test must say "not covered".
  ObjectStore store(2);
  store.put(chunk_of("v", 1, Box{{0, 0, 0}, {3, 0, 0}}));
  store.put(chunk_of("v", 1, Box{{2, 0, 0}, {5, 0, 0}}));
  EXPECT_FALSE(store.covers("v", 1, Box{{0, 0, 0}, {7, 0, 0}}));
  store.put(chunk_of("v", 1, Box{{6, 0, 0}, {7, 0, 0}}));
  EXPECT_TRUE(store.covers("v", 1, Box{{0, 0, 0}, {7, 0, 0}}));
}

TEST(ObjectStoreTest, EmptyRegionTriviallyCovered) {
  ObjectStore store(1);
  store.put(chunk_of("v", 1, Box::from_dims(4, 4, 4)));
  EXPECT_TRUE(store.covers("v", 1, Box{}));
}

}  // namespace
}  // namespace dstage::staging
