#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace dstage::obs {
namespace {

TEST(MetricsRegistryTest, CountersGaugesHistogramsBasics) {
  MetricsRegistry r;
  r.counter("puts").inc();
  r.counter("puts").inc(4);
  EXPECT_EQ(r.counter("puts").value(), 5u);

  r.gauge("mem").set(10.0);
  r.gauge("mem").set(3.0);
  EXPECT_DOUBLE_EQ(r.gauge("mem").value(), 10.0);  // high-water
  EXPECT_DOUBLE_EQ(r.gauge("mem").last(), 3.0);

  r.histogram("resp").observe(1.0);
  r.histogram("resp").observe(3.0);
  EXPECT_EQ(r.histogram("resp").samples().count(), 2u);
  EXPECT_DOUBLE_EQ(r.histogram("resp").samples().percentile(50), 2.0);
  EXPECT_FALSE(r.empty());
}

TEST(MetricsRegistryTest, LabelsSeparateSeries) {
  MetricsRegistry r;
  r.counter("puts", "staging-0").inc(2);
  r.counter("puts", "staging-1").inc(7);
  r.counter("puts").inc();
  EXPECT_EQ(r.counter("puts", "staging-0").value(), 2u);
  EXPECT_EQ(r.counter("puts", "staging-1").value(), 7u);
  EXPECT_EQ(r.counter("puts").value(), 1u);
}

TEST(MetricsRegistryTest, HandleReferencesAreStable) {
  MetricsRegistry r;
  Counter& first = r.counter("a");
  // Creating many other metrics must not invalidate the reference.
  for (int i = 0; i < 100; ++i) {
    r.counter("c" + std::to_string(i)).inc();
  }
  first.inc(3);
  EXPECT_EQ(r.counter("a").value(), 3u);
}

TEST(MetricsRegistryTest, MergeIsCommutative) {
  MetricsRegistry a, b;
  a.counter("n", "x").inc(2);
  a.gauge("g").set(5.0);
  a.histogram("h").observe(1.0);
  b.counter("n", "x").inc(3);
  b.counter("only_b").inc();
  b.gauge("g").set(9.0);
  b.histogram("h").observe(4.0);

  MetricsRegistry ab, ba;
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.to_json().str(), ba.to_json().str());
  EXPECT_EQ(ab.counter("n", "x").value(), 5u);
  EXPECT_EQ(ab.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(ab.gauge("g").value(), 9.0);
  EXPECT_EQ(ab.histogram("h").samples().count(), 2u);
}

TEST(MetricsRegistryTest, JsonSnapshotIsDeterministic) {
  // Insertion order differs; to_json must not (keys are map-sorted).
  MetricsRegistry a, b;
  a.counter("z").inc();
  a.counter("a", "lbl").inc(2);
  b.counter("a", "lbl").inc(2);
  b.counter("z").inc();
  EXPECT_EQ(a.to_json().str(), b.to_json().str());
}

// Satellite acceptance: metrics collected under an N-thread sweep must
// equal a serial collection exactly. Here N workers hammer a shared
// aggregate with merge() (the only concurrent entry point the sweep uses);
// the result must equal merging the same per-run registries serially.
TEST(MetricsRegistryTest, ConcurrentMergeEqualsSerial) {
  constexpr int kRuns = 32;
  std::vector<std::unique_ptr<MetricsRegistry>> runs;
  for (int i = 0; i < kRuns; ++i) {
    auto r = std::make_unique<MetricsRegistry>();
    r->counter("events").inc(static_cast<std::uint64_t>(i + 1));
    r->counter("per_run", "run-" + std::to_string(i % 4)).inc();
    r->gauge("peak").set(static_cast<double>(i));
    r->histogram("resp").observe(0.001 * i);
    runs.push_back(std::move(r));
  }

  MetricsRegistry serial;
  for (const auto& r : runs) serial.merge(*r);

  MetricsRegistry parallel;
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < 4; ++t) {
      pool.emplace_back([&, t] {
        for (int i = t; i < kRuns; i += 4) parallel.merge(*runs[i]);
      });
    }
  }
  EXPECT_EQ(parallel.to_json().str(), serial.to_json().str());
  EXPECT_EQ(parallel.counter("events").value(),
            serial.counter("events").value());
}

}  // namespace
}  // namespace dstage::obs
