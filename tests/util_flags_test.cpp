#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace dstage {
namespace {

Flags make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  auto f = make({"--scheme=un", "--failures=3"});
  EXPECT_EQ(f.get("scheme", "x"), "un");
  EXPECT_EQ(f.get_int("failures", 0), 3);
}

TEST(FlagsTest, SpaceForm) {
  auto f = make({"--scheme", "co", "--seed", "42"});
  EXPECT_EQ(f.get("scheme", ""), "co");
  EXPECT_EQ(f.get_int("seed", 0), 42);
}

TEST(FlagsTest, BareSwitch) {
  auto f = make({"--verbose", "--subset=0.4"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(f.get_double("subset", 1.0), 0.4);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  auto f = make({});
  EXPECT_EQ(f.get("scheme", "un"), "un");
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_FALSE(f.has("scheme"));
}

TEST(FlagsTest, PositionalArguments) {
  auto f = make({"input.csv", "--n=1", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
}

TEST(FlagsTest, UnusedDetectsTypos) {
  auto f = make({"--schem=un", "--failures=1"});
  (void)f.get("scheme", "");
  (void)f.get_int("failures", 0);
  auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "schem");
}

TEST(FlagsTest, BoolSpellings) {
  auto f = make({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
  EXPECT_FALSE(f.get_bool("e", true));
}

}  // namespace
}  // namespace dstage
