#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/spawn.hpp"
#include "sim/task.hpp"

namespace dstage::sim {
namespace {

TEST(ChannelTest, SendBeforeRecvDeliversQueuedValue) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(7);
  ch.send(8);
  std::vector<int> got;
  spawn(eng, [&]() -> Task<void> {
    got.push_back(co_await ch.recv(nullptr));
    got.push_back(co_await ch.recv(nullptr));
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

TEST(ChannelTest, RecvBlocksUntilSend) {
  Engine eng;
  Channel<std::string> ch(eng);
  Ctx ctx{&eng, nullptr};
  TimePoint when{};
  spawn(eng, [&]() -> Task<void> {
    auto v = co_await ch.recv(nullptr);
    EXPECT_EQ(v, "late");
    when = ctx.now();
  });
  eng.schedule_call(seconds(3), [&] { ch.send("late"); });
  eng.run();
  EXPECT_EQ(when, TimePoint{} + seconds(3));
}

TEST(ChannelTest, MultipleReceiversServedFifo) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  for (int r = 0; r < 3; ++r) {
    spawn(eng, [&, r]() -> Task<void> {
      int v = co_await ch.recv(nullptr);
      got.emplace_back(r, v);
    });
  }
  eng.schedule_call(seconds(1), [&] {
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  eng.run();
  ASSERT_EQ(got.size(), 3u);
  // First-suspended receiver gets the first value.
  EXPECT_EQ(got[0], std::make_pair(0, 10));
  EXPECT_EQ(got[1], std::make_pair(1, 20));
  EXPECT_EQ(got[2], std::make_pair(2, 30));
}

TEST(ChannelTest, CancelWhileWaitingThrows) {
  Engine eng;
  Channel<int> ch(eng);
  CancelToken tok;
  bool cancelled = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await ch.recv(&tok);
    } catch (const Cancelled&) {
      cancelled = true;
    }
  });
  eng.schedule_call(seconds(1), [&] { tok.cancel(); });
  eng.run();
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(ch.waiting_receivers(), 0u);
  // A later send is simply queued, not delivered to the dead receiver.
  ch.send(5);
  EXPECT_EQ(ch.size(), 1u);
}

TEST(ChannelTest, DeliveredValueNotLostWhenCancelRacesAtSameTimestamp) {
  // send() delivers and deregisters the waiter from the token; a cancel at
  // the same virtual time must not produce a double resume.
  Engine eng;
  Channel<int> ch(eng);
  CancelToken tok;
  int received = -1;
  bool cancelled = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      received = co_await ch.recv(&tok);
    } catch (const Cancelled&) {
      cancelled = true;
    }
  });
  eng.schedule_call(seconds(1), [&] {
    ch.send(99);   // delivery scheduled at t=1
    tok.cancel();  // cancel at t=1, after delivery
  });
  eng.run();
  EXPECT_EQ(received, 99);
  EXPECT_FALSE(cancelled);
}

TEST(OneShotEventTest, WaitersReleasedOnSet) {
  Engine eng;
  OneShotEvent ev(eng);
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    spawn(eng, [&]() -> Task<void> {
      co_await ev.wait(nullptr);
      ++released;
    });
  }
  eng.schedule_call(seconds(2), [&] { ev.set(); });
  eng.run();
  EXPECT_EQ(released, 3);
  EXPECT_TRUE(ev.is_set());
}

TEST(OneShotEventTest, WaitAfterSetCompletesImmediately) {
  Engine eng;
  OneShotEvent ev(eng);
  ev.set();
  ev.set();  // idempotent
  bool done = false;
  spawn(eng, [&]() -> Task<void> {
    co_await ev.wait(nullptr);
    done = true;
  });
  eng.run();
  EXPECT_TRUE(done);
}

TEST(OneShotEventTest, CancelledWaiterUnwinds) {
  Engine eng;
  OneShotEvent ev(eng);
  CancelToken tok;
  bool cancelled = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await ev.wait(&tok);
    } catch (const Cancelled&) {
      cancelled = true;
    }
  });
  eng.schedule_call(seconds(1), [&] { tok.cancel(); });
  eng.schedule_call(seconds(2), [&] { ev.set(); });
  eng.run();
  EXPECT_TRUE(cancelled);
}

TEST(BarrierTest, ReleasesWhenAllArrive) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Barrier bar(eng, 3);
  std::vector<TimePoint> released;
  for (std::int64_t delay : {1, 5, 3}) {
    spawn(eng, [&, delay]() -> Task<void> {
      co_await ctx.delay(seconds(delay));
      co_await bar.arrive_and_wait(nullptr);
      released.push_back(ctx.now());
    });
  }
  eng.run();
  ASSERT_EQ(released.size(), 3u);
  for (auto t : released) EXPECT_EQ(t, TimePoint{} + seconds(5));
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Barrier bar(eng, 2);
  std::vector<std::string> log;
  auto worker = [&](std::string name, std::int64_t pace) -> Task<void> {
    for (int round = 0; round < 3; ++round) {
      co_await ctx.delay(seconds(pace));
      co_await bar.arrive_and_wait(nullptr);
      log.push_back(name + std::to_string(round));
    }
  };
  // Named lvalues: GCC 12 coroutines double-destroy prvalue arguments.
  std::string a = "a", b = "b";
  spawn(eng, worker(a, 1));
  spawn(eng, worker(b, 4));
  eng.run();
  ASSERT_EQ(log.size(), 6u);
  // Rounds stay in lockstep: a0/b0 before a1/b1 before a2/b2.
  EXPECT_EQ(log[0].back(), '0');
  EXPECT_EQ(log[1].back(), '0');
  EXPECT_EQ(log[2].back(), '1');
  EXPECT_EQ(log[3].back(), '1');
  EXPECT_EQ(log[4].back(), '2');
  EXPECT_EQ(log[5].back(), '2');
}

TEST(BarrierTest, CancelledParticipantDoesNotCorruptCount) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Barrier bar(eng, 2);
  CancelToken tok;
  bool cancelled = false;
  bool other_released = false;
  spawn(eng, [&]() -> Task<void> {
    try {
      co_await bar.arrive_and_wait(&tok);
    } catch (const Cancelled&) {
      cancelled = true;
    }
  });
  eng.schedule_call(seconds(1), [&] { tok.cancel(); });
  // After the cancel, two fresh arrivals must release normally.
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(2));
    co_await bar.arrive_and_wait(nullptr);
    other_released = true;
  });
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(3));
    co_await bar.arrive_and_wait(nullptr);
  });
  eng.run();
  EXPECT_TRUE(cancelled);
  EXPECT_TRUE(other_released);
}

TEST(ResourceTest, GrantsImmediatelyWhenAvailable) {
  Engine eng;
  Resource res(eng, 4);
  bool got = false;
  spawn(eng, [&]() -> Task<void> {
    auto g = co_await res.acquire(nullptr, 3);
    got = true;
    EXPECT_EQ(res.available(), 1u);
  });
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(res.available(), 4u);  // guard released on scope exit
}

TEST(ResourceTest, ContendersQueueFifo) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Resource res(eng, 1);
  std::vector<std::pair<int, TimePoint>> entries;
  auto worker = [&](int id) -> Task<void> {
    auto g = co_await res.acquire(nullptr, 1);
    entries.emplace_back(id, ctx.now());
    co_await ctx.delay(seconds(2));
  };
  for (int i = 0; i < 3; ++i) spawn(eng, worker(i));
  eng.run();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], std::make_pair(0, TimePoint{} + seconds(0)));
  EXPECT_EQ(entries[1], std::make_pair(1, TimePoint{} + seconds(2)));
  EXPECT_EQ(entries[2], std::make_pair(2, TimePoint{} + seconds(4)));
}

TEST(ResourceTest, NoOvertakingEvenWhenSmallerFits) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Resource res(eng, 4);
  std::vector<int> order;
  auto worker = [&](int id, std::uint64_t amount,
                    std::int64_t start) -> Task<void> {
    co_await ctx.delay(seconds(start));
    auto g = co_await res.acquire(nullptr, amount);
    order.push_back(id);
    co_await ctx.delay(seconds(10));
  };
  spawn(eng, worker(0, 3, 0));  // holds 3 of 4
  spawn(eng, worker(1, 3, 1));  // must wait (needs 3, only 1 free)
  spawn(eng, worker(2, 1, 2));  // would fit, but FIFO forbids overtaking
  eng.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, CancelWhileQueuedRemovesWaiter) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Resource res(eng, 1);
  CancelToken tok;
  bool cancelled = false;
  bool third_got = false;
  spawn(eng, [&]() -> Task<void> {
    auto g = co_await res.acquire(nullptr, 1);
    co_await ctx.delay(seconds(5));
  });
  spawn(eng, [&]() -> Task<void> {
    try {
      auto g = co_await res.acquire(&tok, 1);
    } catch (const Cancelled&) {
      cancelled = true;
    }
  });
  spawn(eng, [&]() -> Task<void> {
    co_await ctx.delay(seconds(1));
    auto g = co_await res.acquire(nullptr, 1);
    third_got = true;
  });
  eng.schedule_call(seconds(2), [&] { tok.cancel(); });
  eng.run();
  EXPECT_TRUE(cancelled);
  EXPECT_TRUE(third_got);
  EXPECT_EQ(res.available(), 1u);
}

TEST(ResourceTest, CancelledHolderReleasesViaRaii) {
  Engine eng;
  Ctx ctx{&eng, nullptr};
  Resource res(eng, 1);
  CancelToken tok;
  bool successor_got = false;
  spawn(eng, [&]() -> Task<void> {
    auto g = co_await res.acquire(&tok, 1);
    co_await ctx.delay(seconds(100));  // killed mid-hold
  });
  spawn(eng, [&]() -> Task<void> {
    auto g = co_await res.acquire(nullptr, 1);
    successor_got = true;
  });
  eng.schedule_call(seconds(3), [&] { tok.cancel(); });
  eng.run();
  EXPECT_TRUE(successor_got);
  EXPECT_EQ(res.available(), 1u);
}

TEST(ResourceTest, AcquireBeyondCapacityThrows) {
  Engine eng;
  Resource res(eng, 2);
  EXPECT_THROW(res.acquire(nullptr, 3), std::invalid_argument);
}

TEST(ResourceTest, OverReleaseThrows) {
  Engine eng;
  Resource res(eng, 2);
  EXPECT_THROW(res.release(1), std::logic_error);
}

}  // namespace
}  // namespace dstage::sim
