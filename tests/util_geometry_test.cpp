#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dstage {
namespace {

TEST(BoxTest, DefaultIsEmpty) {
  Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.volume(), 0u);
}

TEST(BoxTest, FromDimsCoversExpectedVolume) {
  Box b = Box::from_dims(512, 512, 256);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.volume(), 512ull * 512 * 256);
  EXPECT_EQ(b.lo, (Point3{0, 0, 0}));
  EXPECT_EQ(b.hi, (Point3{511, 511, 255}));
}

TEST(BoxTest, FromDimsRejectsNonPositive) {
  EXPECT_TRUE(Box::from_dims(0, 4, 4).empty());
  EXPECT_TRUE(Box::from_dims(4, -1, 4).empty());
}

TEST(BoxTest, ContainsPoint) {
  Box b{{1, 1, 1}, {3, 3, 3}};
  EXPECT_TRUE(b.contains(Point3{1, 1, 1}));
  EXPECT_TRUE(b.contains(Point3{3, 3, 3}));
  EXPECT_TRUE(b.contains(Point3{2, 3, 1}));
  EXPECT_FALSE(b.contains(Point3{0, 2, 2}));
  EXPECT_FALSE(b.contains(Point3{2, 4, 2}));
}

TEST(BoxTest, ContainsBox) {
  Box outer{{0, 0, 0}, {9, 9, 9}};
  EXPECT_TRUE(outer.contains(Box{{2, 2, 2}, {5, 5, 5}}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_TRUE(outer.contains(Box{}));  // empty is contained anywhere
  EXPECT_FALSE(outer.contains(Box{{5, 5, 5}, {10, 9, 9}}));
}

TEST(BoxTest, IntersectionBasic) {
  Box a{{0, 0, 0}, {5, 5, 5}};
  Box b{{3, 3, 3}, {8, 8, 8}};
  Box i = a.intersection(b);
  EXPECT_EQ(i, (Box{{3, 3, 3}, {5, 5, 5}}));
  EXPECT_TRUE(a.intersects(b));
}

TEST(BoxTest, IntersectionDisjointIsEmpty) {
  Box a{{0, 0, 0}, {2, 2, 2}};
  Box b{{3, 0, 0}, {5, 2, 2}};
  EXPECT_TRUE(a.intersection(b).empty());
  EXPECT_FALSE(a.intersects(b));
}

TEST(BoxTest, IntersectionTouchingFaceIsSinglePlane) {
  Box a{{0, 0, 0}, {2, 2, 2}};
  Box b{{2, 0, 0}, {4, 2, 2}};
  Box i = a.intersection(b);
  EXPECT_EQ(i.volume(), 9u);  // 1 x 3 x 3 plane
}

TEST(BoxTest, BoundingUnion) {
  Box a{{0, 0, 0}, {1, 1, 1}};
  Box b{{5, 5, 5}, {6, 6, 6}};
  EXPECT_EQ(a.bounding_union(b), (Box{{0, 0, 0}, {6, 6, 6}}));
  EXPECT_EQ(Box{}.bounding_union(b), b);
  EXPECT_EQ(a.bounding_union(Box{}), a);
}

TEST(BoxTest, CommutativityOfIntersection) {
  Box a{{1, 2, 3}, {7, 8, 9}};
  Box b{{4, 0, 5}, {10, 6, 7}};
  EXPECT_EQ(a.intersection(b), b.intersection(a));
}

TEST(BlockDecompositionTest, ExactSplit) {
  BlockDecomposition dec(Box::from_dims(8, 8, 4), 2, 2, 2);
  EXPECT_EQ(dec.block_count(), 8);
  std::uint64_t total = 0;
  for (int r = 0; r < dec.block_count(); ++r) total += dec.block(r).volume();
  EXPECT_EQ(total, 8ull * 8 * 4);
}

TEST(BlockDecompositionTest, BlocksArePairwiseDisjoint) {
  BlockDecomposition dec(Box::from_dims(10, 7, 5), 3, 2, 2);
  for (int i = 0; i < dec.block_count(); ++i) {
    for (int j = i + 1; j < dec.block_count(); ++j) {
      EXPECT_FALSE(dec.block(i).intersects(dec.block(j)))
          << "blocks " << i << " and " << j << " overlap";
    }
  }
}

TEST(BlockDecompositionTest, RemainderDistribution) {
  // 10 points over 3 parts: 4 + 3 + 3.
  BlockDecomposition dec(Box::from_dims(10, 1, 1), 3, 1, 1);
  EXPECT_EQ(dec.block(0).extents()[0], 4);
  EXPECT_EQ(dec.block(1).extents()[0], 3);
  EXPECT_EQ(dec.block(2).extents()[0], 3);
}

TEST(BlockDecompositionTest, BlocksTileDomain) {
  BlockDecomposition dec(Box::from_dims(9, 6, 7), 2, 3, 2);
  std::uint64_t total = 0;
  Box cover;
  for (int r = 0; r < dec.block_count(); ++r) {
    total += dec.block(r).volume();
    cover = cover.bounding_union(dec.block(r));
  }
  EXPECT_EQ(total, dec.domain().volume());
  EXPECT_EQ(cover, dec.domain());
}

TEST(BlockDecompositionTest, IntersectingQueryFindsExactCover) {
  BlockDecomposition dec(Box::from_dims(8, 8, 8), 2, 2, 2);
  Box query{{2, 2, 2}, {5, 5, 5}};  // straddles all 8 blocks
  auto hits = dec.blocks_intersecting(query);
  EXPECT_EQ(hits.size(), 8u);
  std::uint64_t covered = 0;
  for (const auto& [rank, overlap] : hits) covered += overlap.volume();
  EXPECT_EQ(covered, query.volume());
}

TEST(BlockDecompositionTest, RejectsInvalidArguments) {
  EXPECT_THROW(BlockDecomposition(Box{}, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(BlockDecomposition(Box::from_dims(4, 4, 4), 0, 1, 1),
               std::invalid_argument);
  EXPECT_THROW(BlockDecomposition(Box::from_dims(2, 2, 2), 4, 1, 1),
               std::invalid_argument);
}

TEST(SplitBoxTest, ProducesRequestedPieceCountWhenDivisible) {
  Box b = Box::from_dims(16, 16, 16);
  auto pieces = split_box(b, 8);
  EXPECT_EQ(pieces.size(), 8u);
  std::uint64_t total = 0;
  for (const auto& p : pieces) {
    total += p.volume();
    EXPECT_TRUE(b.contains(p));
  }
  EXPECT_EQ(total, b.volume());
}

TEST(SplitBoxTest, PiecesAreDisjoint) {
  auto pieces = split_box(Box::from_dims(12, 5, 9), 6);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(pieces[i].intersects(pieces[j]));
    }
  }
}

TEST(SplitBoxTest, SinglePointCannotSplit) {
  Box b{{3, 3, 3}, {3, 3, 3}};
  auto pieces = split_box(b, 4);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], b);
}

TEST(SplitBoxTest, EmptyAndZeroPieces) {
  EXPECT_TRUE(split_box(Box{}, 4).empty());
  EXPECT_TRUE(split_box(Box::from_dims(4, 4, 4), 0).empty());
}

TEST(BoxDifferenceTest, DisjointLeavesAUntouched) {
  Box a{{0, 0, 0}, {3, 3, 3}};
  Box b{{10, 10, 10}, {12, 12, 12}};
  auto d = box_difference(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], a);
}

TEST(BoxDifferenceTest, FullCoverIsEmpty) {
  Box a{{1, 1, 1}, {3, 3, 3}};
  EXPECT_TRUE(box_difference(a, Box{{0, 0, 0}, {4, 4, 4}}).empty());
  EXPECT_TRUE(box_difference(a, a).empty());
  EXPECT_TRUE(box_difference(Box{}, a).empty());
}

TEST(BoxDifferenceTest, PiecesAreDisjointAndExact) {
  Box a{{0, 0, 0}, {9, 9, 9}};
  Box b{{3, 4, 5}, {6, 7, 12}};  // cuts through and sticks out in z
  auto d = box_difference(a, b);
  std::uint64_t vol = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(a.contains(d[i]));
    EXPECT_FALSE(d[i].intersects(b));
    vol += d[i].volume();
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      EXPECT_FALSE(d[i].intersects(d[j]));
    }
  }
  EXPECT_EQ(vol, a.volume() - a.intersection(b).volume());
}

TEST(BoxDifferenceTest, CornerCutProducesThreeSlabs) {
  Box a{{0, 0, 0}, {3, 3, 3}};
  Box b{{2, 2, 2}, {3, 3, 3}};
  auto d = box_difference(a, b);
  std::uint64_t vol = 0;
  for (const Box& p : d) vol += p.volume();
  EXPECT_EQ(vol, 64u - 8u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(BoxesCoverTest, ExactTiling) {
  Box region = Box::from_dims(4, 4, 4);
  auto tiles = split_box(region, 8);
  EXPECT_TRUE(boxes_cover(region, tiles));
  tiles.pop_back();
  EXPECT_FALSE(boxes_cover(region, tiles));
}

TEST(BoxesCoverTest, OverlappingCoverIsNotDoubleCounted) {
  // Two overlapping boxes whose volumes sum to the region's volume but
  // which leave a gap — the naive volume-sum test would wrongly pass.
  Box region{{0, 0, 0}, {7, 0, 0}};  // 8 points on a line
  std::vector<Box> cover{{{0, 0, 0}, {3, 0, 0}},   // 4 points
                         {{2, 0, 0}, {5, 0, 0}}};  // 4 points, overlaps by 2
  EXPECT_FALSE(boxes_cover(region, cover));  // points 6, 7 uncovered
  cover.push_back(Box{{6, 0, 0}, {7, 0, 0}});
  EXPECT_TRUE(boxes_cover(region, cover));
}

TEST(BoxesCoverTest, EmptyRegionTriviallyCovered) {
  EXPECT_TRUE(boxes_cover(Box{}, {}));
  EXPECT_FALSE(boxes_cover(Box::from_dims(2, 2, 2), {}));
}

}  // namespace
}  // namespace dstage
