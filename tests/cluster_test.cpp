#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/failure.hpp"
#include "cluster/pfs.hpp"
#include "sim/spawn.hpp"

namespace dstage::cluster {
namespace {

struct Rig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  Cluster cluster{eng, fabric};
};

TEST(ClusterTest, AddVprocAssignsEndpointAndToken) {
  Rig rig;
  auto n = rig.cluster.add_node();
  auto vp = rig.cluster.add_vproc("worker", n);
  const Vproc& v = rig.cluster.vproc(vp);
  EXPECT_EQ(v.name, "worker");
  EXPECT_TRUE(v.alive);
  EXPECT_EQ(v.incarnation, 0u);
  EXPECT_GE(v.endpoint, 0);
  EXPECT_NE(v.token, nullptr);
  EXPECT_THROW(rig.cluster.vproc(99), std::out_of_range);
}

TEST(ClusterTest, KillCancelsAndNotifiesAfterDetectionDelay) {
  Rig rig;
  rig.cluster.set_detection_delay(sim::milliseconds(500));
  auto vp = rig.cluster.add_vproc("w", rig.cluster.add_node());
  sim::TimePoint detected{.ns = -1};
  bool unwound = false;
  rig.cluster.on_failure([&](VprocId id) {
    EXPECT_EQ(id, vp);
    detected = rig.eng.now();
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    auto ctx = rig.cluster.ctx_for(vp);
    try {
      co_await ctx.delay(sim::seconds(100));
    } catch (const sim::Cancelled&) {
      unwound = true;
    }
  });
  rig.eng.schedule_call(sim::seconds(2), [&] { rig.cluster.kill(vp); });
  rig.eng.run();
  EXPECT_TRUE(unwound);
  EXPECT_FALSE(rig.cluster.vproc(vp).alive);
  EXPECT_EQ(detected.ns, (sim::seconds(2) + sim::milliseconds(500)).ns);
  EXPECT_EQ(rig.cluster.kill_count(), 1);
}

TEST(ClusterTest, KillIsIdempotent) {
  Rig rig;
  auto vp = rig.cluster.add_vproc("w", rig.cluster.add_node());
  int notifications = 0;
  rig.cluster.on_failure([&](VprocId) { ++notifications; });
  rig.cluster.kill(vp);
  rig.cluster.kill(vp);
  rig.eng.run();
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(rig.cluster.kill_count(), 1);
}

TEST(ClusterTest, ReviveBumpsIncarnationAndReArmsToken) {
  Rig rig;
  auto vp = rig.cluster.add_vproc("w", rig.cluster.add_node());
  rig.cluster.kill(vp);
  rig.eng.run();
  rig.cluster.revive(vp);
  const Vproc& v = rig.cluster.vproc(vp);
  EXPECT_TRUE(v.alive);
  EXPECT_EQ(v.incarnation, 1u);
  EXPECT_FALSE(v.token->cancelled());
  // The revived process runs normally.
  bool ran = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    auto ctx = rig.cluster.ctx_for(vp);
    co_await ctx.delay(sim::seconds(1));
    ran = true;
  });
  rig.eng.run();
  EXPECT_TRUE(ran);
}

TEST(ClusterTest, ReviveLiveProcessThrows) {
  Rig rig;
  auto vp = rig.cluster.add_vproc("w", rig.cluster.add_node());
  EXPECT_THROW(rig.cluster.revive(vp), std::logic_error);
}

TEST(SparePoolTest, AcquireAndExhaust) {
  SparePool pool(2);
  EXPECT_TRUE(pool.acquire());
  EXPECT_TRUE(pool.acquire());
  EXPECT_FALSE(pool.acquire());
  EXPECT_EQ(pool.remaining(), 0);
  pool.refund();
  EXPECT_TRUE(pool.acquire());
}

TEST(FailureInjectorTest, UniformPlanWithinWindowSorted) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(42));
  inj.add_group({"sim", 256});
  inj.add_group({"analytic", 64});
  auto plan = inj.plan_uniform(10, sim::TimePoint{} + sim::seconds(10),
                               sim::TimePoint{} + sim::seconds(50));
  ASSERT_EQ(plan.size(), 10u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].at.seconds(), 10.0);
    EXPECT_LT(plan[i].at.seconds(), 50.0);
    if (i > 0) EXPECT_GE(plan[i].at.ns, plan[i - 1].at.ns);
    EXPECT_GE(plan[i].group, 0);
    EXPECT_LE(plan[i].group, 1);
  }
}

TEST(FailureInjectorTest, WeightingFavorsLargerGroups) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(7));
  inj.add_group({"big", 900});
  inj.add_group({"small", 100});
  auto plan = inj.plan_uniform(2000, sim::TimePoint{},
                               sim::TimePoint{} + sim::seconds(1));
  int big = 0;
  for (const auto& f : plan) big += (f.group == 0);
  EXPECT_NEAR(static_cast<double>(big) / 2000.0, 0.9, 0.03);
}

TEST(FailureInjectorTest, MtbfPlanApproximatesRate) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(11));
  inj.add_group({"g", 1});
  // 10,000 s window, MTBF 100 s → ~100 failures.
  auto plan = inj.plan_mtbf(sim::seconds(100), sim::TimePoint{},
                            sim::TimePoint{} + sim::seconds(10000));
  EXPECT_GT(plan.size(), 70u);
  EXPECT_LT(plan.size(), 140u);
}

TEST(FailureInjectorTest, ArmSchedulesKills) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(3));
  inj.add_group({"g", 1});
  std::vector<PlannedFailure> plan{
      {sim::TimePoint{} + sim::seconds(1), 0},
      {sim::TimePoint{} + sim::seconds(3), 0},
  };
  std::vector<double> kill_times;
  inj.arm(plan, [&](int group) {
    EXPECT_EQ(group, 0);
    kill_times.push_back(rig.eng.now().seconds());
  });
  rig.eng.run();
  ASSERT_EQ(kill_times.size(), 2u);
  EXPECT_DOUBLE_EQ(kill_times[0], 1.0);
  EXPECT_DOUBLE_EQ(kill_times[1], 3.0);
}

TEST(FailureInjectorTest, InvalidArguments) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(1));
  EXPECT_THROW(inj.plan_uniform(1, sim::TimePoint{} + sim::seconds(5),
                                sim::TimePoint{} + sim::seconds(5)),
               std::invalid_argument);
  inj.add_group({"g", 1});
  EXPECT_THROW(inj.plan_mtbf(sim::Duration{0}, sim::TimePoint{},
                             sim::TimePoint{} + sim::seconds(1)),
               std::invalid_argument);
}

// Property sweep across seeds: every uniform plan stays inside its window,
// comes out sorted, and only names registered victim groups — regardless
// of the seed or the requested count.
TEST(FailureInjectorPropertyTest, UniformPlanInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rig rig;
    FailureInjector inj(rig.cluster, Rng(seed));
    inj.add_group({"sim", 256});
    inj.add_group({"analytic", 64});
    inj.add_group({"viz", 16});
    const auto start = sim::TimePoint{} + sim::seconds(2);
    const auto end = sim::TimePoint{} + sim::seconds(42);
    const int count = static_cast<int>(seed % 13);
    auto plan = inj.plan_uniform(count, start, end);
    ASSERT_EQ(plan.size(), static_cast<std::size_t>(count)) << seed;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      EXPECT_GE(plan[i].at.ns, start.ns) << seed;
      EXPECT_LT(plan[i].at.ns, end.ns) << seed;
      if (i > 0) EXPECT_GE(plan[i].at.ns, plan[i - 1].at.ns) << seed;
      EXPECT_GE(plan[i].group, 0) << seed;
      EXPECT_LE(plan[i].group, 2) << seed;
    }
  }
}

TEST(FailureInjectorPropertyTest, MtbfPlanInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rig rig;
    FailureInjector inj(rig.cluster, Rng(seed));
    inj.add_group({"sim", 256});
    inj.add_group({"analytic", 64});
    const auto start = sim::TimePoint{} + sim::seconds(5);
    const auto end = sim::TimePoint{} + sim::seconds(405);
    auto plan = inj.plan_mtbf(sim::seconds(20), start, end);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      // Exponential arrivals are strictly ordered (zero increments have
      // probability zero) and never land on or past the window end.
      EXPECT_GT(plan[i].at.ns, start.ns) << seed;
      EXPECT_LT(plan[i].at.ns, end.ns) << seed;
      if (i > 0) EXPECT_GT(plan[i].at.ns, plan[i - 1].at.ns) << seed;
      EXPECT_GE(plan[i].group, 0) << seed;
      EXPECT_LE(plan[i].group, 1) << seed;
    }
  }
}

// Victim selection converges to the core-count weights in both planning
// modes — the Table II ratio (256:64 cores → 4:1 failures) emerges from
// the sampler rather than being hard-coded anywhere.
TEST(FailureInjectorPropertyTest, VictimWeightsConvergeInBothModes) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(17));
  inj.add_group({"sim", 256});
  inj.add_group({"analytic", 64});
  int uniform_sim = 0, uniform_total = 0;
  auto uplan = inj.plan_uniform(4000, sim::TimePoint{},
                                sim::TimePoint{} + sim::seconds(1));
  for (const auto& f : uplan) {
    uniform_sim += (f.group == 0);
    ++uniform_total;
  }
  EXPECT_NEAR(static_cast<double>(uniform_sim) / uniform_total, 0.8, 0.03);

  FailureInjector minj(rig.cluster, Rng(23));
  minj.add_group({"sim", 256});
  minj.add_group({"analytic", 64});
  int mtbf_sim = 0, mtbf_total = 0;
  auto mplan = minj.plan_mtbf(sim::seconds(1), sim::TimePoint{},
                              sim::TimePoint{} + sim::seconds(4000));
  for (const auto& f : mplan) {
    mtbf_sim += (f.group == 0);
    ++mtbf_total;
  }
  ASSERT_GT(mtbf_total, 2000);
  EXPECT_NEAR(static_cast<double>(mtbf_sim) / mtbf_total, 0.8, 0.03);
}

// Mean inter-arrival converges to the configured MTBF (Table III's rows
// depend on this calibration).
TEST(FailureInjectorPropertyTest, MtbfMeanInterArrivalConverges) {
  Rig rig;
  FailureInjector inj(rig.cluster, Rng(29));
  inj.add_group({"g", 1});
  auto plan = inj.plan_mtbf(sim::seconds(50), sim::TimePoint{},
                            sim::TimePoint{} + sim::seconds(200000));
  ASSERT_GT(plan.size(), 3000u);
  const double span = plan.back().at.seconds() - plan.front().at.seconds();
  const double mean = span / static_cast<double>(plan.size() - 1);
  EXPECT_NEAR(mean, 50.0, 3.0);
}

TEST(PfsTest, WriteTimeMatchesBandwidth) {
  Rig rig;
  Pfs pfs(rig.eng, Pfs::Params{.write_bw = 60e9,
                               .read_bw = 80e9,
                               .open_latency = sim::milliseconds(5)});
  sim::TimePoint done{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await pfs.write(ctx, 60'000'000'000ull);  // 60 GB at 60 GB/s = 1 s
    done = rig.eng.now();
  });
  rig.eng.run();
  EXPECT_EQ(done.ns, (sim::seconds(1) + sim::milliseconds(5)).ns);
  EXPECT_EQ(pfs.bytes_written(), 60'000'000'000ull);
}

TEST(PfsTest, ConcurrentWritersSerialize) {
  // Aggregate-bandwidth model: N concurrent checkpointers take N times as
  // long as one — the coordinated-checkpoint contention effect.
  Rig rig;
  Pfs pfs(rig.eng, Pfs::Params{.write_bw = 10e9,
                               .read_bw = 10e9,
                               .open_latency = sim::Duration{0}});
  std::vector<double> finish;
  auto writer = [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await pfs.write(ctx, 10'000'000'000ull);  // 1 s each
    finish.push_back(rig.eng.now().seconds());
  };
  for (int i = 0; i < 4; ++i) sim::spawn(rig.eng, writer());
  rig.eng.run();
  ASSERT_EQ(finish.size(), 4u);
  EXPECT_NEAR(finish.back(), 4.0, 1e-9);
}

TEST(PfsTest, ReadsUseReadBandwidth) {
  Rig rig;
  Pfs pfs(rig.eng, Pfs::Params{.write_bw = 10e9,
                               .read_bw = 20e9,
                               .open_latency = sim::Duration{0}});
  sim::TimePoint done{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await pfs.read(ctx, 20'000'000'000ull);  // 1 s at 20 GB/s
    done = rig.eng.now();
  });
  rig.eng.run();
  EXPECT_EQ(done.ns, sim::seconds(1).ns);
  EXPECT_EQ(pfs.bytes_read(), 20'000'000'000ull);
}

}  // namespace
}  // namespace dstage::cluster
