// WorkflowSpec::validate(): every malformed field is rejected with an
// std::invalid_argument whose message names the offending field, and the
// shipped presets pass untouched.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/setups.hpp"
#include "core/workflow.hpp"

namespace dstage::core {
namespace {

void expect_rejected(const WorkflowSpec& spec, const std::string& needle) {
  try {
    spec.validate();
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(ValidateTest, PresetsAreValid) {
  for (Scheme s : {Scheme::kNone, Scheme::kCoordinated, Scheme::kUncoordinated,
                   Scheme::kIndividual, Scheme::kHybrid}) {
    EXPECT_NO_THROW(table2_setup(s).validate());
    EXPECT_NO_THROW(table3_setup(s, 4, 3).validate());
  }
}

TEST(ValidateTest, WorkflowLevelFields) {
  auto spec = table2_setup(Scheme::kUncoordinated);

  auto bad = spec;
  bad.components.clear();
  expect_rejected(bad, "components");

  bad = spec;
  bad.staging_servers = 0;
  expect_rejected(bad, "staging_servers");

  bad = spec;
  bad.total_ts = 0;
  expect_rejected(bad, "total_ts");

  bad = spec;
  bad.coordinated_period = 0;
  expect_rejected(bad, "coordinated_period");

  bad = spec;
  bad.cells_per_axis = 0;
  expect_rejected(bad, "cells_per_axis");

  bad = spec;
  bad.bytes_per_point = 0;
  expect_rejected(bad, "bytes_per_point");

  bad = spec;
  bad.mem_scale = 0;
  expect_rejected(bad, "mem_scale");
}

TEST(ValidateTest, FailurePlanFields) {
  auto spec = table2_setup(Scheme::kUncoordinated);

  auto bad = spec;
  bad.failures.count = -1;
  expect_rejected(bad, "failures.count");

  bad = spec;
  bad.failures.mtbf_s = -1;
  expect_rejected(bad, "failures.mtbf_s");

  bad = spec;
  bad.failures.node_failure_fraction = 1.5;
  expect_rejected(bad, "node_failure_fraction");

  bad = spec;
  bad.failures.predictor_recall = -0.1;
  expect_rejected(bad, "predictor_recall");

  bad = spec;
  bad.failures.predictor_false_alarms = -1;
  expect_rejected(bad, "predictor_false_alarms");
}

TEST(ValidateTest, ComponentFieldsAreNamedInMessages) {
  auto spec = table2_setup(Scheme::kUncoordinated);

  auto bad = spec;
  bad.components[0].name.clear();
  expect_rejected(bad, "component name");

  bad = spec;
  bad.components[1].cores = 0;
  expect_rejected(bad, "analytic");

  bad = spec;
  bad.components[0].ckpt_period = 0;
  expect_rejected(bad, "ckpt_period");

  bad = spec;
  bad.components[0].local_ckpt_period = -1;
  expect_rejected(bad, "local_ckpt_period");

  bad = spec;
  bad.components[0].compute_per_ts_s = -1;
  expect_rejected(bad, "compute_per_ts_s");
}

TEST(ValidateTest, CouplingFields) {
  auto spec = table2_setup(Scheme::kUncoordinated);
  ASSERT_FALSE(spec.components[0].writes.empty());
  ASSERT_FALSE(spec.components[1].reads.empty());

  auto bad = spec;
  bad.components[0].writes[0].var.clear();
  expect_rejected(bad, "write var");

  bad = spec;
  bad.components[0].writes[0].subset_fraction = 0;
  expect_rejected(bad, "subset_fraction");

  bad = spec;
  bad.components[0].writes[0].subset_fraction = 1.5;
  expect_rejected(bad, "subset_fraction");

  bad = spec;
  bad.components[1].reads[0].var.clear();
  expect_rejected(bad, "read var");

  bad = spec;
  bad.components[1].reads[0].every = 0;
  expect_rejected(bad, "every");
}

TEST(ValidateTest, MemoryGovernorFields) {
  auto spec = table2_setup(Scheme::kUncoordinated);
  // Watermarks are only meaningful when the governor is on; a disabled
  // governor (budget 0, the default) accepts anything.
  auto bad = spec;
  bad.staging.soft_watermark = -1;
  EXPECT_NO_THROW(bad.validate());

  bad = spec;
  bad.staging.memory_budget = 512ull << 20;
  EXPECT_NO_THROW(bad.validate());

  bad.staging.soft_watermark = 0;
  expect_rejected(bad, "soft_watermark");

  bad.staging.soft_watermark = 1.2;
  expect_rejected(bad, "soft_watermark");

  bad.staging.soft_watermark = 0.7;
  bad.staging.hard_watermark = 0;
  expect_rejected(bad, "hard_watermark");

  bad.staging.hard_watermark = 0.5;  // below soft
  expect_rejected(bad, "soft_watermark must be <=");
}

TEST(ValidateTest, UnsatisfiableResiliencePolicyRejected) {
  auto spec = table2_setup(Scheme::kUncoordinated);
  auto bad = spec;
  bad.server.policy.kind = resilience::Redundancy::kReplication;
  bad.server.policy.replicas = 1;
  expect_rejected(bad, "replicas");

  bad = spec;
  bad.server.policy.kind = resilience::Redundancy::kErasureCode;
  bad.server.policy.rs_k = 0;
  expect_rejected(bad, "rs_k");

  bad = spec;
  bad.server.policy.kind = resilience::Redundancy::kReplication;
  bad.server.policy.replicas = 2;
  bad.staging_servers = 1;
  expect_rejected(bad, "server");
}

}  // namespace
}  // namespace dstage::core
