#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dstage {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximatesParameter) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(600.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 600.0, 600.0 * 0.02);
}

TEST(RngTest, WeightedPickRespectsWeights) {
  Rng rng(13);
  std::vector<double> w{1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_pick(w)];
  const double frac1 = static_cast<double>(counts[1]) / 40000.0;
  EXPECT_NEAR(frac1, 0.75, 0.02);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng base(21);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1b = Rng(21).fork(1);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    double x = rng.next_double() * 10;
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    double x = rng.next_double() * 3 - 5;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SampleSetTest, Percentiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, EmptyIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, SingleSampleIsEveryPercentile) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(SampleSetTest, PercentileArgumentIsClamped) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 3.0);
  // NaN must clamp too — casting a NaN rank to an index is UB.
  EXPECT_DOUBLE_EQ(s.percentile(std::nan("")), 1.0);
}

/// Independent reference: textbook linear interpolation over an
/// explicitly sorted copy, floor/ceil indexing (no clamp tricks shared
/// with the implementation under test).
double reference_percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (!(p > 0)) return v.front();
  if (p >= 100) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

TEST(SampleSetTest, PercentileMatchesReferenceOnRandomSets) {
  // Property test across sizes 1..40 (n == 1 and n == 2 are the historic
  // breakage: the old interpolation indexed past the end and misweighted
  // the single-sample case). Deterministic LCG so failures reproduce.
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 40) / 16777216.0;  // [0, 1)
  };
  const double probes[] = {0, 0.5, 1, 10, 25, 50, 75, 90, 99, 99.9, 100};
  for (std::size_t n = 1; n <= 40; ++n) {
    std::vector<double> v;
    SampleSet s;
    for (std::size_t i = 0; i < n; ++i) {
      // Duplicate-heavy: quantized values collide often.
      const double x = std::floor(next() * 8.0) * 2.5 - 10.0;
      v.push_back(x);
      s.add(x);
    }
    double prev = -1e300;
    for (double p : probes) {
      const double got = s.percentile(p);
      EXPECT_NEAR(got, reference_percentile(v, p), 1e-9)
          << "n=" << n << " p=" << p;
      // Tolerance: interpolation rounding may wiggle by an ulp or two.
      EXPECT_GE(got, prev - 1e-9) << "percentile not monotone at n=" << n;
      prev = got;
    }
  }
}

TEST(SampleSetTest, MergedSetsInterpolateLikeOneSet) {
  SampleSet a, b, all;
  for (int i = 0; i < 7; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 100; i < 103; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  for (double p : {0.0, 30.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << p;
  }
}

TEST(SampleSetTest, AddAfterPercentileKeepsSamplesVisible) {
  // Regression: add() must invalidate the sorted flag, otherwise samples
  // appended after a percentile() call land in an "already sorted" vector
  // and later percentile queries read a garbled order.
  SampleSet s;
  s.add(10.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);  // sorts {1, 10}
  s.add(0.5);                                 // appended after the sort
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_NEAR(s.percentile(50), 1.0, 1e-12);
}

TEST(SampleSetTest, LinearInterpolationOnRankBasis) {
  // percentile(p) interpolates on the (n - 1) rank basis: with samples
  // {0, 10, 20, 30}, rank = p/100 * 3, so p=25 -> 7.5 and p=90 -> 27.
  SampleSet s;
  for (double x : {30.0, 0.0, 20.0, 10.0}) s.add(x);
  EXPECT_NEAR(s.percentile(25), 7.5, 1e-12);
  EXPECT_NEAR(s.percentile(50), 15.0, 1e-12);
  EXPECT_NEAR(s.percentile(90), 27.0, 1e-12);
}

TEST(SampleSetTest, PercentileIsOrderInsensitive) {
  // Property: any insertion order of the same multiset yields identical
  // percentiles, and every percentile lies within [min, max].
  const double vals[] = {5, 1, 4, 1, 3, 9, 2, 6, 5, 3};
  SampleSet fwd, rev;
  for (double v : vals) fwd.add(v);
  for (std::size_t i = std::size(vals); i-- > 0;) rev.add(vals[i]);
  for (double p = 0; p <= 100; p += 2.5) {
    EXPECT_DOUBLE_EQ(fwd.percentile(p), rev.percentile(p)) << "p=" << p;
    EXPECT_GE(fwd.percentile(p), 1.0);
    EXPECT_LE(fwd.percentile(p), 9.0);
  }
}

TEST(SampleSetTest, MergeConcatenatesAndCommutes) {
  SampleSet a, b, all;
  for (double v : {3.0, 1.0, 4.0}) {
    a.add(v);
    all.add(v);
  }
  for (double v : {2.0, 5.0}) {
    b.add(v);
    all.add(v);
  }
  SampleSet ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count(), 5u);
  EXPECT_EQ(ba.count(), 5u);
  for (double p : {0.0, 25.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(ab.percentile(p), all.percentile(p));
    EXPECT_DOUBLE_EQ(ba.percentile(p), all.percentile(p));
  }
  SampleSet empty;
  ab.merge(empty);
  EXPECT_EQ(ab.count(), 5u);
}

TEST(WatermarkTest, TracksPeak) {
  Watermark w;
  w.add(100);
  w.add(250);
  w.add(-300);
  w.add(10);
  EXPECT_EQ(w.current(), 60);
  EXPECT_EQ(w.peak(), 350);
}

TEST(FormatBytesTest, Formats) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(20ull << 30), "20.00 GiB");
}

TEST(ChecksumTest, PayloadRoundTrip) {
  const std::uint64_t key = content_key("temperature", 7, 0x1234);
  auto p = make_payload(1000, key);
  EXPECT_TRUE(verify_payload(p, key));
}

TEST(ChecksumTest, WrongVersionDetected) {
  const std::uint64_t k7 = content_key("temperature", 7, 0x1234);
  const std::uint64_t k8 = content_key("temperature", 8, 0x1234);
  auto p = make_payload(64, k7);
  EXPECT_FALSE(verify_payload(p, k8));
}

TEST(ChecksumTest, DifferentVariablesDiffer) {
  EXPECT_NE(content_key("pressure", 1, 0), content_key("velocity", 1, 0));
  EXPECT_NE(content_key("pressure", 1, 0), content_key("pressure", 2, 0));
  EXPECT_NE(content_key("pressure", 1, 0), content_key("pressure", 1, 1));
}

TEST(ChecksumTest, NonMultipleOfEightSizes) {
  for (std::size_t n : {0u, 1u, 7u, 9u, 63u, 65u}) {
    const std::uint64_t key = content_key("v", 0, n);
    auto p = make_payload(n, key);
    EXPECT_TRUE(verify_payload(p, key)) << "size " << n;
  }
}

TEST(ChecksumTest, CorruptionDetected) {
  const std::uint64_t key = content_key("v", 3, 99);
  auto p = make_payload(256, key);
  p[100] ^= std::byte{0x01};
  EXPECT_FALSE(verify_payload(p, key));
}

TEST(Fnv1aTest, KnownValues) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a_str(""), 0xcbf29ce484222325ULL);
  // Differs for different strings and is stable.
  EXPECT_NE(fnv1a_str("a"), fnv1a_str("b"));
  EXPECT_EQ(fnv1a_str("dataspaces"), fnv1a_str("dataspaces"));
}

}  // namespace
}  // namespace dstage
