#include <gtest/gtest.h>

#include "staging/types.hpp"
#include "wlog/data_log.hpp"
#include "wlog/event_queue.hpp"

namespace dstage::wlog {
namespace {

using staging::make_chunk;

LogEvent put_evt(int app, Version v, const std::string& var = "f") {
  return LogEvent{EventKind::kPut, app, v, var, Box::from_dims(4, 4, 4),
                  512, 0};
}
LogEvent get_evt(int app, Version v, const std::string& var = "f") {
  return LogEvent{EventKind::kGet, app, v, var, Box::from_dims(4, 4, 4), 0,
                  0};
}
LogEvent ckpt_evt(int app, Version v, WChkId id) {
  return LogEvent{EventKind::kCheckpoint, app, v, {}, Box{}, 0, id};
}

TEST(EventQueueTest, RecordAccumulatesMetadata) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.metadata_bytes(), 0u);
  q.record(put_evt(0, 1));
  q.record(get_evt(1, 1));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_GT(q.metadata_bytes(), 0u);
}

TEST(EventQueueTest, ReplayWithoutCheckpointCoversWholeQueue) {
  EventQueue q;
  q.record(put_evt(0, 1));
  q.record(put_evt(0, 2));
  q.record(put_evt(0, 3));
  EXPECT_EQ(q.begin_replay(), 3u);
  EXPECT_TRUE(q.replaying());
  ASSERT_NE(q.expected(), nullptr);
  EXPECT_EQ(q.expected()->version, 1u);
}

TEST(EventQueueTest, ReplayStartsAfterLastCheckpoint) {
  EventQueue q;
  q.record(put_evt(0, 1));
  q.record(ckpt_evt(0, 1, 11));
  q.record(put_evt(0, 2));
  q.record(ckpt_evt(0, 2, 12));
  q.record(put_evt(0, 3));
  q.record(put_evt(0, 4));
  EXPECT_EQ(q.begin_replay(), 2u);
  EXPECT_EQ(q.expected()->version, 3u);
  q.advance();
  EXPECT_EQ(q.expected()->version, 4u);
  q.advance();
  EXPECT_FALSE(q.replaying());
  EXPECT_EQ(q.expected(), nullptr);
}

TEST(EventQueueTest, EmptyScriptDoesNotEnterReplay) {
  EventQueue q;
  q.record(put_evt(0, 1));
  q.record(ckpt_evt(0, 1, 1));
  EXPECT_EQ(q.begin_replay(), 0u);
  EXPECT_FALSE(q.replaying());
}

TEST(EventQueueTest, AdvanceOutsideReplayThrows) {
  EventQueue q;
  EXPECT_THROW(q.advance(), std::logic_error);
}

TEST(EventQueueTest, SecondFailureDuringReplayRestartsScript) {
  EventQueue q;
  q.record(ckpt_evt(0, 4, 1));
  q.record(put_evt(0, 5));
  q.record(get_evt(0, 5));
  q.begin_replay();
  q.advance();  // consumed the put
  // Second failure: replay restarts from the script head.
  EXPECT_EQ(q.begin_replay(), 2u);
  EXPECT_EQ(q.expected()->kind, EventKind::kPut);
}

TEST(EventQueueTest, RecoveryMarkersSkippedInScript) {
  EventQueue q;
  q.record(ckpt_evt(0, 2, 1));
  q.record(put_evt(0, 3));
  q.record(LogEvent{EventKind::kRecovery, 0, 2, {}, Box{}, 0, 0});
  q.record(put_evt(0, 4));
  EXPECT_EQ(q.begin_replay(), 2u);
  EXPECT_EQ(q.expected()->version, 3u);
  q.advance();
  EXPECT_EQ(q.expected()->version, 4u);  // recovery marker skipped
}

TEST(EventQueueTest, TruncateDropsOnlyBeforeLastCheckpoint) {
  EventQueue q;
  q.record(put_evt(0, 1));
  q.record(put_evt(0, 2));
  q.record(ckpt_evt(0, 2, 7));
  q.record(put_evt(0, 3));
  const std::uint64_t before = q.metadata_bytes();
  EXPECT_EQ(q.truncate_before_last_checkpoint(), 2u);
  EXPECT_EQ(q.size(), 2u);  // checkpoint marker + the ts-3 put
  EXPECT_LT(q.metadata_bytes(), before);
  EXPECT_TRUE(q.has_checkpoint());
  EXPECT_EQ(q.last_checkpoint_version(), 2u);
  // Replay still anchors correctly after truncation.
  EXPECT_EQ(q.begin_replay(), 1u);
  EXPECT_EQ(q.expected()->version, 3u);
}

TEST(EventQueueTest, TruncateWithoutCheckpointIsNoop) {
  EventQueue q;
  q.record(put_evt(0, 1));
  EXPECT_EQ(q.truncate_before_last_checkpoint(), 0u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, TruncateDuringReplayPreservesCursor) {
  EventQueue q;
  q.record(put_evt(0, 1));
  q.record(ckpt_evt(0, 1, 1));
  q.record(put_evt(0, 2));
  q.record(put_evt(0, 3));
  q.begin_replay();
  q.advance();  // consumed put(2); expecting put(3)
  q.truncate_before_last_checkpoint();
  ASSERT_TRUE(q.replaying());
  EXPECT_EQ(q.expected()->version, 3u);
}

TEST(EventQueueTest, LastCheckpointVersionOfEmptyQueueIsZero) {
  EventQueue q;
  EXPECT_FALSE(q.has_checkpoint());
  EXPECT_EQ(q.last_checkpoint_version(), 0u);
}

TEST(EventMetadataTest, ScalesWithNameLength) {
  LogEvent a = put_evt(0, 1, "x");
  LogEvent b = put_evt(0, 1, "a_much_longer_variable_name");
  EXPECT_LT(event_metadata_bytes(a), event_metadata_bytes(b));
}

TEST(DataLogTest, RetainsAllVersions) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  for (Version v = 1; v <= 10; ++v)
    log.add(make_chunk("f", v, r, 8.0, 1024));
  EXPECT_EQ(log.versions_of("f").size(), 10u);
  EXPECT_TRUE(log.covers("f", 1, r));
  EXPECT_TRUE(log.covers("f", 10, r));
  EXPECT_EQ(log.nominal_bytes(), 10 * r.volume() * 8);
}

TEST(DataLogTest, DropUptoReclaims) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  for (Version v = 1; v <= 6; ++v)
    log.add(make_chunk("f", v, r, 8.0, 1024));
  EXPECT_EQ(log.drop_upto("f", 4), 4u);
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{5, 6}));
  EXPECT_FALSE(log.covers("f", 4, r));
  EXPECT_EQ(log.drop_upto("f", 4), 0u);  // idempotent
}

TEST(DataLogTest, DropAboveForRollback) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  for (Version v = 1; v <= 6; ++v)
    log.add(make_chunk("f", v, r, 8.0, 1024));
  EXPECT_EQ(log.drop_above(2), 4u);
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{1, 2}));
}

TEST(DataLogTest, GetServesHistoricalVersion) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  log.add(make_chunk("f", 3, r, 8.0, 1024));
  log.add(make_chunk("f", 9, r, 8.0, 1024));
  auto pieces = log.get("f", 3, r);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].version, 3u);
  EXPECT_EQ(staging::check_chunk(pieces[0], "f", 3),
            staging::ChunkCheck::kOk);
}

TEST(DataLogTest, DropUptoEdgeCases) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  // Unknown variable and empty log: nothing to drop, no throw.
  EXPECT_EQ(log.drop_upto("ghost", 100), 0u);
  for (Version v = 2; v <= 5; ++v)
    log.add(make_chunk("f", v, r, 8.0, 1024));
  // Watermark 0 and watermark below the oldest retained version: no-ops.
  EXPECT_EQ(log.drop_upto("f", 0), 0u);
  EXPECT_EQ(log.drop_upto("f", 1), 0u);
  EXPECT_EQ(log.versions_of("f").size(), 4u);
  // Watermark at the oldest version drops exactly that one.
  EXPECT_EQ(log.drop_upto("f", 2), 1u);
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{3, 4, 5}));
  // Watermark beyond the newest drops everything: the raw log has no
  // keep-latest rule — that safety belongs to the GC sweep above it.
  EXPECT_EQ(log.drop_upto("f", 99), 3u);
  EXPECT_TRUE(log.versions_of("f").empty());
  EXPECT_EQ(log.nominal_bytes(), 0u);
  // A different variable is never touched by another variable's drop.
  log.add(make_chunk("g", 1, r, 8.0, 1024));
  EXPECT_EQ(log.drop_upto("f", 99), 0u);
  EXPECT_EQ(log.versions_of("g").size(), 1u);
}

TEST(DataLogTest, DropUptoSkipsGapsInVersionHistory) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  for (Version v : {1u, 4u, 7u, 10u})
    log.add(make_chunk("f", v, r, 8.0, 1024));
  // Only versions that actually exist count toward the drop total.
  EXPECT_EQ(log.drop_upto("f", 8), 3u);
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{10}));
}

TEST(DataLogTest, DropUptoFiresExplicitDropProbe) {
  DataLog log;
  Box r = Box::from_dims(8, 8, 8);
  for (Version v = 1; v <= 4; ++v)
    log.add(make_chunk("f", v, r, 8.0, 1024));
  std::vector<Version> dropped;
  log.set_probes(nullptr,
                 [&](const std::string& var, Version v,
                     staging::DropReason reason) {
                   EXPECT_EQ(var, "f");
                   EXPECT_EQ(reason, staging::DropReason::kExplicit);
                   dropped.push_back(v);
                 });
  EXPECT_EQ(log.drop_upto("f", 3), 3u);
  EXPECT_EQ(dropped, (std::vector<Version>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Metadata-byte accounting. Regression for an unsigned underflow: if any
// path mutated events_ without keeping the tally in step, truncation could
// subtract more than the remaining count and poison the governor's
// metadata accounting with a ~2^64 value for the rest of the run.
// ---------------------------------------------------------------------------

std::uint64_t recount(const EventQueue& q) {
  std::uint64_t total = 0;
  for (const LogEvent& e : q.events()) total += event_metadata_bytes(e);
  return total;
}

TEST(EventQueueTest, MetadataTallyMatchesRetainedRecords) {
  EventQueue q;
  // Mixed kinds and variable-name lengths (the tally is name-dependent).
  q.record(put_evt(0, 1, "f"));
  q.record(get_evt(1, 1, "grad_long_name"));
  q.record(ckpt_evt(0, 1, 11));
  q.record(put_evt(0, 2, "p"));
  EXPECT_EQ(q.metadata_bytes(), recount(q));

  EXPECT_EQ(q.truncate_before_last_checkpoint(), 2u);
  EXPECT_EQ(q.metadata_bytes(), recount(q));

  // Second truncation with no newer checkpoint drops nothing and must not
  // move the tally (the underflow would have struck here).
  EXPECT_EQ(q.truncate_before_last_checkpoint(), 0u);
  EXPECT_EQ(q.metadata_bytes(), recount(q));

  q.record(put_evt(0, 3));
  q.record(ckpt_evt(0, 3, 12));
  q.record(get_evt(1, 3));
  EXPECT_EQ(q.truncate_before_last_checkpoint(), 3u);
  EXPECT_EQ(q.metadata_bytes(), recount(q));
  EXPECT_LT(q.metadata_bytes(), 1ull << 32);  // no wrap-around, ever
}

TEST(EventQueueTest, MetadataTallySurvivesReplayInterleaving) {
  EventQueue q;
  q.record(put_evt(0, 1));
  q.record(ckpt_evt(0, 1, 1));
  q.record(put_evt(0, 2));
  q.record(get_evt(0, 2));
  q.begin_replay();
  q.advance();  // mid-replay truncation (recovery racing a checkpoint)
  EXPECT_EQ(q.truncate_before_last_checkpoint(), 1u);
  EXPECT_EQ(q.metadata_bytes(), recount(q));
  q.record(put_evt(0, 3));
  EXPECT_EQ(q.metadata_bytes(), recount(q));
}

}  // namespace
}  // namespace dstage::wlog
