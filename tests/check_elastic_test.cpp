// Elastic membership under the consistency oracle: the `;elastic=` repro
// field round-trips and survives shrinking, generated campaigns aim
// crashes into resilver windows, and the paper's 3 -> 5 -> 3 grow/shrink
// scenario passes every invariant with data moving the whole time.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/campaign.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"

namespace dstage::check {
namespace {

TEST(CheckElasticTest, ReproRoundTripsElasticField) {
  Schedule s;
  s.id = 7;
  s.scheme = core::Scheme::kUncoordinated;
  s.total_ts = 12;
  s.resilience = 2;
  s.staging_servers = 3;
  s.elastic = {{3, true}, {5, true}, {8, false}, {10, false}};
  s.failures.push_back(ScheduleFailure{0, 3, 0.25, false, false});

  const std::string repro = s.repro();
  EXPECT_NE(repro.find(";ss=3"), std::string::npos);
  EXPECT_NE(repro.find(";elastic=j3,j5,r8,r10"), std::string::npos);
  EXPECT_EQ(Schedule::parse(repro), s);
}

TEST(CheckElasticTest, FixedGroupReproStaysStable) {
  // Pre-elastic repro strings must parse and re-serialize unchanged: the
  // new fields are emitted only when set.
  const std::string legacy =
      "cc1;id=4;sch=un;ts=12;sp=3;ap=4;lp=0;res=1;mtbf=0"
      ";f=0:5:0.5:";
  EXPECT_EQ(Schedule::parse(legacy).repro(), legacy);
  EXPECT_EQ(legacy.find("elastic"), std::string::npos);
}

TEST(CheckElasticTest, ParseRejectsMalformedElastic) {
  EXPECT_THROW(Schedule::parse("cc1;elastic=x3"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;elastic=j"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;elastic=j3,q9"), std::invalid_argument);
}

TEST(CheckElasticTest, GeneratorAimsCrashesIntoResilverWindows) {
  GenerateOptions opts;
  opts.count = 24;
  opts.seed = 5;
  opts.elastic_probability = 1.0;
  int with_failures = 0;
  for (const Schedule& s : generate_schedules(opts)) {
    ASSERT_EQ(s.elastic.size(), 2u) << s.repro();
    EXPECT_TRUE(s.elastic[0].join);
    EXPECT_FALSE(s.elastic[1].join);
    EXPECT_GE(s.elastic[0].ts, 2);
    EXPECT_LT(s.elastic[0].ts, s.elastic[1].ts);
    EXPECT_LE(s.elastic[1].ts, s.total_ts);
    if (!s.failures.empty()) {
      ++with_failures;
      // The first crash strikes the join timestep: mid-resilver.
      EXPECT_EQ(s.failures.front().ts, s.elastic[0].ts) << s.repro();
    }
  }
  EXPECT_GT(with_failures, 0);

  opts.elastic_probability = 0.0;
  for (const Schedule& s : generate_schedules(opts)) {
    EXPECT_TRUE(s.elastic.empty());
  }
}

TEST(CheckElasticTest, GrowShrinkScenarioPassesAllInvariants) {
  // The acceptance scenario as one pinned repro: a 3-server group grows to
  // 5 and shrinks back to 3 mid-workflow, with a crash striking during the
  // first join's resilver, under RS(2,1) redundancy.
  const Schedule s = Schedule::parse(
      "cc1;id=1;sch=un;ts=12;sp=3;ap=4;lp=0;res=2;mtbf=0;ss=3"
      ";elastic=j2,j4,r7,r9;f=0:2:0.5:");
  ReferenceCache cache;
  const OracleReport report = check_schedule(s, cache);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.failures_injected, 1);
  EXPECT_EQ(report.membership_epoch, 4u);
  EXPECT_GT(report.resilver_chunks_moved, 0u);
  EXPECT_GT(report.resilver_drops, 0u);
}

TEST(CheckElasticTest, ElasticCampaignPassesWithDataInMotion) {
  CampaignOptions opts;
  opts.gen.count = 10;
  opts.gen.seed = 3;
  opts.gen.elastic_probability = 1.0;
  opts.gen.schemes = {core::Scheme::kUncoordinated, core::Scheme::kHybrid};
  opts.threads = 2;
  const CampaignResult result = run_campaign(opts);
  EXPECT_EQ(result.passed, 10);
  EXPECT_TRUE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    ADD_FAILURE() << f.schedule.repro() << "\n" << f.report.summary();
  }
  // The episodes must have really exercised elasticity: fragments moved
  // and every hand-off release passed the durability audit.
  EXPECT_GT(result.resilver_chunks_moved, 0u);
  EXPECT_GT(result.resilver_drops, 0u);
}

TEST(CheckElasticTest, ShrinkerPreservesElasticField) {
  // Sabotaged elastic schedules must shrink without losing the membership
  // events: the crash stays aimed into the resilver window all the way to
  // the minimal reproducer.
  CampaignOptions opts;
  opts.gen.count = 8;
  opts.gen.seed = 1;
  opts.gen.elastic_probability = 1.0;
  opts.gen.schemes = {core::Scheme::kUncoordinated};
  opts.threads = 2;
  opts.sabotage = Sabotage::kSkipReplay;
  opts.max_shrunk = 2;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.ok());
  int shrunk_seen = 0;
  for (const CampaignFailure& f : result.failures) {
    if (f.shrink_attempts == 0) continue;
    ++shrunk_seen;
    EXPECT_EQ(f.shrunk.elastic, f.schedule.elastic);
    EXPECT_NE(f.shrunk.repro().find(";elastic="), std::string::npos)
        << f.shrunk.repro();
  }
  EXPECT_GT(shrunk_seen, 0);
}

TEST(CheckElasticTest, ShrunkReproAnchorsStillCatchSabotage) {
  // Two shrunk reproducers from sabotaged elastic campaigns, pinned as
  // regression anchors: each must keep failing its oracle invariant under
  // the sabotage that produced it, and pass clean without it.
  const char* anchors[] = {
      "cc1;id=0;sch=un;ts=12;sp=4;ap=5;lp=2;res=1;mtbf=1"
      ";elastic=j7,r11;f=0:1:0.5:",
      "cc1;id=2;sch=un;ts=12;sp=2;ap=2;lp=0;res=2;mtbf=1"
      ";elastic=j4,r9;f=0:1:0.5:",
  };
  ReferenceCache cache;
  for (const char* anchor : anchors) {
    const Schedule s = Schedule::parse(anchor);
    ASSERT_EQ(s.elastic.size(), 2u);
    const OracleReport sabotaged =
        check_schedule(s, cache, Sabotage::kSkipReplay);
    EXPECT_FALSE(sabotaged.ok()) << anchor;
    const OracleReport clean = check_schedule(s, cache);
    EXPECT_TRUE(clean.ok()) << anchor << "\n" << clean.summary();
  }
}

}  // namespace
}  // namespace dstage::check
