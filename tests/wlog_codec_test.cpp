// Payload codec unit tests: round-trips across the degenerate and
// adversarial inputs (empty, single byte, incompressible, all-zero,
// version-chain deltas), and the typed-error guarantee — a corrupted
// block must surface a CodecError, never decoded garbage. The DataLog
// half exercises transparent encode/decode, self-contained export, and
// rebase-before-drop.
#include "wlog/codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "staging/types.hpp"
#include "wlog/data_log.hpp"

namespace dstage::wlog {
namespace {

using staging::make_chunk;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  // SplitMix64: statistically incompressible filler.
  std::vector<std::uint8_t> out(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    out[i] = static_cast<std::uint8_t>(z ^ (z >> 31));
  }
  return out;
}

const codec::Scheme kAllSchemes[] = {codec::Scheme::kLz, codec::Scheme::kDelta,
                                     codec::Scheme::kDeltaLz};

TEST(CodecTest, SchemeNamesRoundTrip) {
  for (codec::Scheme s :
       {codec::Scheme::kNone, codec::Scheme::kLz, codec::Scheme::kDelta,
        codec::Scheme::kDeltaLz}) {
    const auto parsed = codec::parse_scheme(codec::scheme_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(codec::parse_scheme("zip").has_value());
  EXPECT_FALSE(codec::parse_scheme("").has_value());
}

TEST(CodecTest, RoundTripEmptyPayload) {
  for (codec::Scheme s : kAllSchemes) {
    const auto block = codec::encode({}, s);
    ASSERT_GE(block.size(), codec::kHeaderSize);
    EXPECT_TRUE(codec::is_encoded(block));
    const auto r = codec::decode(block);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.raw.empty());
  }
}

TEST(CodecTest, RoundTripSingleByte) {
  const std::vector<std::uint8_t> raw = {0xa5};
  for (codec::Scheme s : kAllSchemes) {
    const auto block = codec::encode(raw, s);
    const auto r = codec::decode(block);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.raw, raw);
  }
}

TEST(CodecTest, AllZeroPayloadCompressesHard) {
  const std::vector<std::uint8_t> raw(64 * 1024, 0);
  for (codec::Scheme s : kAllSchemes) {
    const auto block = codec::encode(raw, s);
    EXPECT_LT(block.size(), raw.size() / 8)
        << "scheme " << codec::scheme_name(s);
    const auto r = codec::decode(block);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.raw, raw);
  }
}

TEST(CodecTest, IncompressibleInputFallsBackToStoredRaw) {
  const auto raw = random_bytes(4096, 17);
  const auto block = codec::encode(raw, codec::Scheme::kLz);
  // The encoder must never expand beyond the header.
  EXPECT_LE(block.size(), raw.size() + codec::kHeaderSize);
  const auto info = codec::inspect(block);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->stored_raw);
  EXPECT_EQ(info->raw_size, raw.size());
  const auto r = codec::decode(block);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.raw, raw);
}

TEST(CodecTest, VersionChainDeltaRoundTrips) {
  // v2 differs from v1 in a small dirty region — the XOR delta is mostly
  // zeros, so the delta block beats a full encode of the same bytes.
  auto v1 = random_bytes(16 * 1024, 3);
  auto v2 = v1;
  for (std::size_t i = 512; i < 640; ++i) v2[i] ^= 0x5a;
  for (codec::Scheme s : {codec::Scheme::kDelta, codec::Scheme::kDeltaLz}) {
    const auto full = codec::encode(v2, s);
    const auto delta = codec::encode(v2, s, v1, /*base_version=*/1);
    const auto info = codec::inspect(delta);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->has_base);
    EXPECT_EQ(info->base_version, 1u);
    EXPECT_LT(delta.size(), full.size());

    const auto r = codec::decode(delta, v1);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.raw, v2);
    // A delta without its base must fail typed, not hand back garbage.
    const auto orphan = codec::decode(delta);
    ASSERT_FALSE(orphan.ok());
    EXPECT_EQ(*orphan.error, codec::CodecError::kMissingBase);
    // ... and a wrong base fails the raw checksum.
    const auto wrong = codec::decode(delta, random_bytes(16 * 1024, 99));
    ASSERT_FALSE(wrong.ok());
    EXPECT_EQ(*wrong.error, codec::CodecError::kChecksum);
  }
}

TEST(CodecTest, CorruptedBlocksReturnTypedErrors) {
  const std::vector<std::uint8_t> raw(8192, 0x42);
  auto block = codec::encode(raw, codec::Scheme::kLz);

  // Raw (unencoded) input: kNotEncoded.
  const auto not_encoded = codec::decode(raw);
  ASSERT_FALSE(not_encoded.ok());
  EXPECT_EQ(*not_encoded.error, codec::CodecError::kNotEncoded);
  EXPECT_FALSE(codec::is_encoded(raw));

  // Clipped header: kTruncated.
  {
    std::vector<std::uint8_t> clipped(block.begin(),
                                      block.begin() + codec::kHeaderSize / 2);
    const auto r = codec::decode(clipped);
    ASSERT_FALSE(r.ok());
  }
  // Clipped payload: kTruncated or kCorrupt, never success.
  {
    std::vector<std::uint8_t> clipped(block.begin(), block.end() - 3);
    const auto r = codec::decode(clipped);
    ASSERT_FALSE(r.ok());
  }
  // Every single-byte flip anywhere in the block must be caught.
  for (std::size_t i = 0; i < block.size(); i += 7) {
    auto bad = block;
    bad[i] ^= 0x01;
    const auto r = codec::decode(bad);
    if (r.ok()) {
      // A flip in a don't-care bit may still decode — but then the bytes
      // must be exactly right (the checksum proved it).
      EXPECT_EQ(r.raw, raw) << "flip at " << i << " decoded to garbage";
    } else {
      EXPECT_NE(codec::codec_error_name(*r.error), std::string());
    }
  }
}

TEST(CodecTest, InspectReportsHeaderFields) {
  const std::vector<std::uint8_t> raw(4096, 7);
  const auto block = codec::encode(raw, codec::Scheme::kLz);
  const auto info = codec::inspect(block);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->raw_size, raw.size());
  EXPECT_FALSE(info->has_base);
  EXPECT_EQ(info->payload_size + codec::kHeaderSize, block.size());
  EXPECT_FALSE(codec::inspect(raw).has_value());
}

// ---------------------------------------------------------------------------
// DataLog-level codec behavior.
// ---------------------------------------------------------------------------

Box cube(int n) { return Box::from_dims(n, n, n); }

TEST(DataLogCodecTest, TransparentEncodeDecodeMatchesRawLog) {
  DataLog off;
  DataLog on;
  on.set_codec(codec::Scheme::kDeltaLz);
  const Box r = cube(16);
  for (staging::Version v = 1; v <= 4; ++v) {
    off.add(make_chunk("f", v, r, 8.0, 1));
    on.add(make_chunk("f", v, r, 8.0, 1));
  }
  EXPECT_GT(on.codec_stats().blocks_encoded, 0u);
  EXPECT_GT(on.codec_stats().delta_blocks, 0u);
  EXPECT_LT(on.codec_stats().stored_bytes, on.codec_stats().raw_bytes);
  for (staging::Version v = 1; v <= 4; ++v) {
    const auto a = off.get("f", v, r);
    const auto b = on.get("f", v, r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i].data && b[i].data);
      EXPECT_EQ(*a[i].data, *b[i].data) << "var f v" << v;
      // Decoded reads present raw payloads: no stored_bytes leakage.
      EXPECT_EQ(b[i].stored_bytes, 0u);
      EXPECT_EQ(staging::check_chunk(b[i], "f", v), staging::ChunkCheck::kOk);
    }
  }
}

TEST(DataLogCodecTest, ExportedChunksAreSelfContained) {
  DataLog log;
  log.set_codec(codec::Scheme::kDelta);
  const Box r = cube(8);
  log.add(make_chunk("f", 1, r, 8.0, 1));
  log.add(make_chunk("f", 2, r, 8.0, 1));  // delta against v1
  ASSERT_GT(log.codec_stats().delta_blocks, 0u);
  for (const auto& chunk : log.export_chunks("f", 2)) {
    ASSERT_TRUE(chunk.data);
    const auto info = codec::inspect(*chunk.data);
    ASSERT_TRUE(info.has_value());
    EXPECT_FALSE(info->has_base) << "export leaked a delta block";
    // Decodes with no base at all — the receiver never needs this log.
    const auto decoded = codec::decode(*chunk.data);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.raw.size(), info->raw_size);
    EXPECT_GT(chunk.stored_bytes, 0u);
  }
  // The log itself still reads v2 correctly afterwards (rebase was in
  // place, not a copy that dropped retained state).
  for (const auto& piece : log.get("f", 2, r)) {
    EXPECT_EQ(staging::check_chunk(piece, "f", 2), staging::ChunkCheck::kOk);
  }
}

TEST(DataLogCodecTest, DropRebasesDependentDeltasFirst) {
  DataLog log;
  log.set_codec(codec::Scheme::kDeltaLz);
  const Box r = cube(8);
  log.add(make_chunk("f", 1, r, 8.0, 1));
  log.add(make_chunk("f", 2, r, 8.0, 1));  // delta based on v1
  ASSERT_GT(log.codec_stats().delta_blocks, 0u);
  const std::uint64_t rebases_before = log.codec_stats().rebases;
  // Dropping the base must not strand the delta.
  EXPECT_TRUE(log.drop_spilled("f", 1));
  EXPECT_GT(log.codec_stats().rebases, rebases_before);
  for (const auto& piece : log.get("f", 2, r)) {
    EXPECT_EQ(staging::check_chunk(piece, "f", 2), staging::ChunkCheck::kOk);
  }
}

TEST(DataLogCodecTest, CodecOffRetainsRawBuffers) {
  DataLog log;  // default: Scheme::kNone
  const Box r = cube(8);
  const auto chunk = make_chunk("f", 1, r, 8.0, 1);
  log.add(chunk);
  EXPECT_EQ(log.codec_stats().blocks_encoded, 0u);
  for (const auto& piece : log.get("f", 1, r)) {
    EXPECT_EQ(piece.stored_bytes, 0u);
    EXPECT_EQ(staging::check_chunk(piece, "f", 1), staging::ChunkCheck::kOk);
  }
}

}  // namespace
}  // namespace dstage::wlog
