#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "core/executor.hpp"

namespace dstage::check {
namespace {

Schedule basic_un_schedule() {
  Schedule s;
  s.scheme = core::Scheme::kUncoordinated;
  s.total_ts = 12;
  s.sim_period = 3;
  s.analytic_period = 4;
  return s;
}

TEST(ScheduleTest, ReproRoundTripsEveryGeneratedSchedule) {
  GenerateOptions opts;
  opts.count = 60;
  opts.seed = 9;
  for (const Schedule& s : generate_schedules(opts)) {
    const std::string line = s.repro();
    EXPECT_EQ(Schedule::parse(line), s) << line;
  }
}

TEST(ScheduleTest, GeneratorIsDeterministicPerSeed) {
  GenerateOptions opts;
  opts.count = 25;
  opts.seed = 4;
  const auto a = generate_schedules(opts);
  const auto b = generate_schedules(opts);
  EXPECT_EQ(a, b);
  opts.seed = 5;
  EXPECT_NE(generate_schedules(opts), a);
}

TEST(ScheduleTest, GeneratorRespectsSchemePoolAndBounds) {
  GenerateOptions opts;
  opts.count = 40;
  opts.seed = 2;
  opts.max_failures = 3;
  opts.schemes = {core::Scheme::kHybrid, core::Scheme::kIndividual};
  for (const Schedule& s : generate_schedules(opts)) {
    EXPECT_TRUE(s.scheme == core::Scheme::kHybrid ||
                s.scheme == core::Scheme::kIndividual);
    EXPECT_LE(s.failures.size(), 3u);
    for (const ScheduleFailure& f : s.failures) {
      EXPECT_GE(f.ts, 1);
      EXPECT_LE(f.ts, s.total_ts);
      EXPECT_TRUE(f.comp == 0 || f.comp == 1);
    }
    // Every generated schedule must survive spec validation.
    EXPECT_NO_THROW(s.to_spec().validate());
  }
}

TEST(ScheduleTest, MemoryBudgetRoundTripsAndGatesTheSpec) {
  // mb= is part of the schedule's identity (it changes the reference run),
  // round-trips through the repro string, and is omitted when zero so
  // pre-governor repro strings stay byte-stable.
  Schedule s = basic_un_schedule();
  EXPECT_EQ(s.repro().find(";mb="), std::string::npos);
  EXPECT_EQ(s.to_spec().staging.memory_budget, 0u);

  s.memory_budget_mb = 512;
  const std::string line = s.repro();
  EXPECT_NE(line.find(";mb=512"), std::string::npos);
  const Schedule parsed = Schedule::parse(line);
  EXPECT_EQ(parsed, s);
  EXPECT_EQ(parsed.to_spec().staging.memory_budget, 512ull << 20);

  GenerateOptions opts;
  opts.count = 10;
  opts.seed = 9;
  opts.memory_budget_mb = 768;
  for (const Schedule& g : generate_schedules(opts)) {
    EXPECT_EQ(g.memory_budget_mb, 768);
    EXPECT_EQ(Schedule::parse(g.repro()), g);
  }
}

TEST(ScheduleTest, CodecRoundTripsAndArmsTheSpec) {
  // codec= is part of the schedule's identity (a codec-armed run gets its
  // own reference), round-trips through the repro string, and is omitted
  // for kNone so pre-codec repro strings stay byte-stable.
  Schedule s = basic_un_schedule();
  EXPECT_EQ(s.repro().find(";codec="), std::string::npos);
  EXPECT_EQ(s.to_spec().wlog.codec, wlog::codec::Scheme::kNone);

  s.codec = wlog::codec::Scheme::kDeltaLz;
  const std::string line = s.repro();
  EXPECT_NE(line.find(";codec=delta_lz"), std::string::npos);
  const Schedule parsed = Schedule::parse(line);
  EXPECT_EQ(parsed, s);
  EXPECT_EQ(parsed.to_spec().wlog.codec, wlog::codec::Scheme::kDeltaLz);

  // Unknown scheme names are loud, not silently kNone.
  std::string bad = line;
  bad.replace(bad.find("delta_lz"), 8, "zip");
  EXPECT_THROW(Schedule::parse(bad), std::invalid_argument);

  GenerateOptions opts;
  opts.count = 9;
  opts.seed = 3;
  opts.codec = wlog::codec::Scheme::kLz;
  for (const Schedule& g : generate_schedules(opts)) {
    EXPECT_EQ(g.codec, wlog::codec::Scheme::kLz);
    EXPECT_EQ(Schedule::parse(g.repro()), g);
  }
  opts.codec_mix = true;
  bool saw_delta = false;
  for (const Schedule& g : generate_schedules(opts)) {
    EXPECT_NE(g.codec, wlog::codec::Scheme::kNone);
    saw_delta = saw_delta || g.codec == wlog::codec::Scheme::kDelta ||
                g.codec == wlog::codec::Scheme::kDeltaLz;
    EXPECT_EQ(Schedule::parse(g.repro()), g);
  }
  EXPECT_TRUE(saw_delta);
}

TEST(ScheduleTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Schedule::parse(""), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc2;sch=un"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;sch=xx"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;bogus=1"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;ts=abc"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;f=1:2:0.5"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;f=1:2:0.5:z"), std::invalid_argument);
}

TEST(ScheduleTest, ValidateRejectsOutOfRangeExplicitFailures) {
  Schedule s = basic_un_schedule();
  s.failures.push_back({.comp = 5, .ts = 3});
  EXPECT_THROW(s.to_spec().validate(), std::invalid_argument);
  s.failures.clear();
  s.failures.push_back({.comp = 0, .ts = 99});
  EXPECT_THROW(s.to_spec().validate(), std::invalid_argument);
}

TEST(OracleTest, FailureFreeSchedulesPassForEveryScheme) {
  ReferenceCache cache;
  const core::Scheme schemes[] = {
      core::Scheme::kNone,          core::Scheme::kCoordinated,
      core::Scheme::kUncoordinated, core::Scheme::kIndividual,
      core::Scheme::kHybrid,
  };
  for (core::Scheme scheme : schemes) {
    Schedule s = basic_un_schedule();
    s.scheme = scheme;
    const OracleReport report = check_schedule(s, cache);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.failures_injected, 0);
    // With nothing injected, the run must be bit-identical to the
    // reference it is judged against.
    EXPECT_EQ(report.trace_digest, report.reference_digest);
  }
}

TEST(OracleTest, ExplicitPlanDrivesExactlyThePlannedFailures) {
  ReferenceCache cache;
  Schedule s = basic_un_schedule();
  s.failures.push_back({.comp = 0, .ts = 5, .phase = 0.4});
  s.failures.push_back(
      {.comp = 1, .ts = 8, .phase = 0.7, .node_level = true});
  s.failures.push_back({.comp = 0, .ts = 10, .phase = -1.0,
                        .predicted = true});  // false alarm
  const OracleReport report = check_schedule(s, cache);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.failures_injected, 2);
  EXPECT_EQ(report.alarms_fired, 1);
  EXPECT_NE(report.trace_digest, report.reference_digest);
}

TEST(OracleTest, VerdictIsDeterministic) {
  ReferenceCache cache;
  Schedule s = basic_un_schedule();
  s.local_ckpt_period = 2;
  s.resilience = 1;
  s.failures.push_back({.comp = 1, .ts = 6, .phase = 0.5,
                        .node_level = true});
  const OracleReport a = check_schedule(s, cache);
  const OracleReport b = check_schedule(s, cache);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

// Regression anchors: the two genuine crash-consistency bugs the campaign
// found in the multi-level extension. Both repros are verbatim shrinker
// output from the failing runs.
//
// Bug 1: node-local checkpoints advanced the staging GC watermark; a node
// failure falls back to the PFS checkpoint, so GC had reclaimed logged
// versions the fallback replay still needed — the consumer deadlocked.
TEST(OracleTest, RegressionNodeLocalCheckpointMustNotAdvanceWatermark) {
  ReferenceCache cache;
  const Schedule s = Schedule::parse(
      "cc1;id=29;sch=un;ts=12;sp=3;ap=4;lp=2;res=1;mtbf=0;f=1:4:0.5:n");
  const OracleReport report = check_schedule(s, cache);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Bug 2: the server's get-replay matcher ignored the version, so after a
// cross-level fallback restart the replay script served newer versions
// for re-reads of older timesteps (wrong-version anomalies on one
// server's pieces).
TEST(OracleTest, RegressionReplayedGetMustMatchVersion) {
  ReferenceCache cache;
  const Schedule s = Schedule::parse(
      "cc1;id=438;sch=un;ts=12;sp=3;ap=5;lp=2;res=2;mtbf=1;f=1:4:0.5:n");
  const OracleReport report = check_schedule(s, cache);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(OracleTest, SkipReplaySabotageIsCaughtAndShrinksToOneFailure) {
  ReferenceCache cache;
  Schedule s = basic_un_schedule();
  s.failures.push_back({.comp = 0, .ts = 4, .phase = 0.3});
  s.failures.push_back({.comp = 1, .ts = 7, .phase = 0.6});
  s.failures.push_back({.comp = 0, .ts = 10, .phase = 0.8});
  const OracleReport report =
      check_schedule(s, cache, Sabotage::kSkipReplay);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(std::any_of(
      report.violations.begin(), report.violations.end(),
      [](const Violation& v) { return v.invariant == 4 || v.invariant == 2; }))
      << report.summary();

  const ShrinkResult shrunk =
      shrink_schedule(s, cache, Sabotage::kSkipReplay);
  ASSERT_FALSE(shrunk.report.ok());
  EXPECT_LE(shrunk.minimal.failures.size(), 2u);
  EXPECT_GE(shrunk.minimal.failures.size(), 1u);
  EXPECT_GT(shrunk.attempts, 0);
  // The minimal schedule still re-runs to the same verdict from scratch.
  ReferenceCache fresh;
  EXPECT_FALSE(
      check_schedule(Schedule::parse(shrunk.minimal.repro()), fresh,
                     Sabotage::kSkipReplay)
          .ok());
}

TEST(OracleTest, GcOvercollectSabotageIsCaughtAsRetentionViolation) {
  ReferenceCache cache;
  Schedule s = basic_un_schedule();
  s.failures.push_back({.comp = 1, .ts = 6, .phase = 0.5});
  const OracleReport report =
      check_schedule(s, cache, Sabotage::kGcOvercollect);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(std::any_of(report.violations.begin(), report.violations.end(),
                          [](const Violation& v) { return v.invariant == 3; }))
      << report.summary();
}

TEST(OracleTest, ShrinkerLeavesPassingSchedulesAlone) {
  ReferenceCache cache;
  Schedule s = basic_un_schedule();
  s.failures.push_back({.comp = 0, .ts = 5, .phase = 0.5});
  const ShrinkResult result = shrink_schedule(s, cache, Sabotage::kNone);
  EXPECT_TRUE(result.report.ok());
  EXPECT_EQ(result.minimal, s);
}

TEST(OracleTest, SabotageNamesRoundTrip) {
  EXPECT_EQ(parse_sabotage(sabotage_name(Sabotage::kNone)), Sabotage::kNone);
  EXPECT_EQ(parse_sabotage(sabotage_name(Sabotage::kSkipReplay)),
            Sabotage::kSkipReplay);
  EXPECT_EQ(parse_sabotage(sabotage_name(Sabotage::kGcOvercollect)),
            Sabotage::kGcOvercollect);
  EXPECT_THROW(parse_sabotage("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace dstage::check
