// Golden trace-fingerprint regression test. The digests below were captured
// from the pre-refactor WorkflowRunner on the Table II presets (40 ts,
// dstage_cli defaults: node_failure_fraction 0.2) across all schemes and
// three failure seeds, plus the failure-free and the multi-level/proactive
// extension configurations. Any behavioral drift in the runtime, scheme
// policies, or recovery pipeline changes a digest; these values must only
// ever be updated for an intentional, explained semantic change.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/executor.hpp"
#include "core/setups.hpp"

namespace dstage::core {
namespace {

struct Golden {
  Scheme scheme;
  int failures;
  std::uint64_t seed;
  std::uint64_t digest;
};

constexpr Golden kGolden[] = {
    {Scheme::kCoordinated, 2, 1, 0xba25ef72a474a18bull},
    {Scheme::kCoordinated, 2, 2, 0xe405ac115efeeab2ull},
    {Scheme::kCoordinated, 2, 3, 0xab68c19fd7602e2bull},
    {Scheme::kUncoordinated, 2, 1, 0x9f4f954ecec58cfbull},
    {Scheme::kUncoordinated, 2, 2, 0x56fc10ffb64783b9ull},
    {Scheme::kUncoordinated, 2, 3, 0x3728dcd7bfe64794ull},
    {Scheme::kHybrid, 2, 1, 0x30dbf21780b1000eull},
    {Scheme::kHybrid, 2, 2, 0xb75b72c3e6583dcfull},
    {Scheme::kHybrid, 2, 3, 0xcd2db6b7b8dc694cull},
    {Scheme::kIndividual, 2, 1, 0x5d133bf32f9d9ff8ull},
    {Scheme::kIndividual, 2, 2, 0xf88ce33b3fe6f00cull},
    {Scheme::kIndividual, 2, 3, 0x04976d8ecbbc8a21ull},
    {Scheme::kCoordinated, 0, 1, 0xdb784046d757071bull},
    {Scheme::kNone, 0, 1, 0xe2da97408d9fc49dull},
};

WorkflowSpec golden_spec(Scheme scheme, int failures, std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(scheme);
  spec.failures.count = failures;
  spec.failures.seed = seed;
  spec.failures.node_failure_fraction = 0.2;
  return spec;
}

TEST(GoldenTraceTest, Table2PresetDigestsAreStable) {
  for (const Golden& g : kGolden) {
    WorkflowRunner runner(golden_spec(g.scheme, g.failures, g.seed));
    runner.run();
    EXPECT_EQ(runner.trace().digest(), g.digest)
        << scheme_name(g.scheme) << " failures=" << g.failures
        << " seed=" << g.seed;
  }
}

// The multi-level + proactive extension path (local checkpoints every
// timestep, perfect predictor) exercises emergency checkpoints, local
// restore, and the local/PFS retention split.
//
// Digest updated (was 0x4d553f5cdc60dda3) for an intentional semantic
// change: node-local and emergency checkpoints no longer advance the
// staging GC watermark. The consistency oracle caught the old behavior
// reclaiming logged versions that a node-failure fallback to the PFS
// checkpoint still had to replay, deadlocking the replaying consumer.
// Non-durable checkpoints still record a replay-anchor marker, but the
// GC sweep (and its simulated latency) now only runs on PFS-level
// checkpoints, shifting this config's timing.
// Table III drives the same presets with an exponential (MTBF) failure
// process instead of a fixed count. Pin the Individual and Hybrid traces
// under plan_mtbf-driven injection for two Table III rows, so drift in the
// MTBF planner (arrival sampling, victim weighting, truncation) is caught
// the same way plan_uniform drift is.
TEST(GoldenTraceTest, MtbfPlanDigestsAreStable) {
  struct Case {
    Scheme scheme;
    double mtbf_s;
    std::uint64_t digest;
  };
  const Case cases[] = {
      {Scheme::kIndividual, 600.0, 0x87f786d78cc2e74bull},
      {Scheme::kIndividual, 300.0, 0x7b0ff692690fdd97ull},
      {Scheme::kHybrid, 600.0, 0x95ad24d8804c11f9ull},
      {Scheme::kHybrid, 300.0, 0x7bad9a3fe948b954ull},
  };
  for (const Case& c : cases) {
    WorkflowSpec spec = golden_spec(c.scheme, 0, 1);
    spec.failures.mtbf_s = c.mtbf_s;
    WorkflowRunner runner(spec);
    runner.run();
    EXPECT_EQ(runner.trace().digest(), c.digest)
        << scheme_name(c.scheme) << " mtbf_s=" << c.mtbf_s;
  }
}

TEST(GoldenTraceTest, ExtensionConfigDigestIsStable) {
  WorkflowSpec spec = golden_spec(Scheme::kUncoordinated, 2, 1);
  for (auto& c : spec.components) c.local_ckpt_period = 1;
  spec.failures.predictor_recall = 1.0;
  WorkflowRunner runner(spec);
  runner.run();
  EXPECT_EQ(runner.trace().digest(), 0xa2c3d910effd8315ull);
}

// The Vaidya-style adaptive-interval policy over the MTBF failure process:
// checkpoint cadence becomes sqrt(2 * delta * MTBF) instead of the fixed
// period, so drift in the interval computation (or in what it anchors on)
// changes the checkpoint trace and with it this digest.
TEST(GoldenTraceTest, AdaptiveIntervalDigestIsStable) {
  WorkflowSpec spec = golden_spec(Scheme::kUncoordinated, 0, 1);
  spec.failures.mtbf_s = 600.0;
  spec.ckpt.adaptive_interval = true;
  WorkflowRunner runner(spec);
  runner.run();
  EXPECT_EQ(runner.trace().digest(), 0x4d9d6b87eaefab43ull);
}

}  // namespace
}  // namespace dstage::core
