#include <gtest/gtest.h>

#include <limits>

#include "gc/garbage_collector.hpp"
#include "staging/types.hpp"

namespace dstage::gc {
namespace {

using staging::make_chunk;
constexpr Version kMax = std::numeric_limits<Version>::max();

wlog::DataLog log_with_versions(const std::string& var, Version upto) {
  wlog::DataLog log;
  for (Version v = 1; v <= upto; ++v)
    log.add(make_chunk(var, v, Box::from_dims(8, 8, 8), 8.0, 1024));
  return log;
}

TEST(GarbageCollectorTest, WatermarkUnknownVarIsMax) {
  GarbageCollector gc;
  EXPECT_EQ(gc.watermark("unknown"), kMax);
}

TEST(GarbageCollectorTest, WatermarkTracksMinConsumerCheckpoint) {
  GarbageCollector gc;
  gc.register_var("f", {{1, true}, {2, true}});
  EXPECT_EQ(gc.watermark("f"), 0u);  // nobody checkpointed yet
  gc.on_checkpoint(1, 5);
  EXPECT_EQ(gc.watermark("f"), 0u);  // app 2 still at 0
  gc.on_checkpoint(2, 3);
  EXPECT_EQ(gc.watermark("f"), 3u);
  gc.on_checkpoint(2, 10);
  EXPECT_EQ(gc.watermark("f"), 5u);
}

TEST(GarbageCollectorTest, CheckpointNeverRegresses) {
  GarbageCollector gc;
  gc.register_var("f", {{1, true}});
  gc.on_checkpoint(1, 8);
  gc.on_checkpoint(1, 4);  // stale notification
  EXPECT_EQ(gc.last_checkpoint(1), 8u);
}

TEST(GarbageCollectorTest, ReplicatedConsumersDoNotPinRetention) {
  GarbageCollector gc;
  // App 2 is replication-protected: it never replays.
  gc.register_var("f", {{1, true}, {2, false}});
  gc.on_checkpoint(1, 6);
  EXPECT_EQ(gc.watermark("f"), 6u);  // app 2's absence of checkpoints ignored
}

TEST(GarbageCollectorTest, OnlyReplicatedConsumersMeansMaxWatermark) {
  GarbageCollector gc;
  gc.register_var("f", {{2, false}});
  EXPECT_EQ(gc.watermark("f"), kMax);
}

TEST(GarbageCollectorTest, SweepDropsReclaimableKeepsLatest) {
  GarbageCollector gc;
  gc.register_var("f", {{1, true}});
  gc.on_checkpoint(1, 4);
  auto log = log_with_versions("f", 6);
  auto result = gc.sweep(log);
  EXPECT_EQ(result.versions_dropped, 4u);  // versions 1..4
  EXPECT_GT(result.nominal_freed, 0u);
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{5, 6}));
}

TEST(GarbageCollectorTest, SweepNeverDropsLatestEvenIfReclaimable) {
  GarbageCollector gc;
  gc.register_var("f", {{1, true}});
  gc.on_checkpoint(1, 100);  // consumer far ahead
  auto log = log_with_versions("f", 6);
  gc.sweep(log);
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{6}));
}

TEST(GarbageCollectorTest, SweepSafety_NeverDropsReplayableVersion) {
  // GC safety invariant: any version a rolled-back consumer could re-read
  // (v > its last checkpoint) must survive the sweep.
  GarbageCollector gc;
  gc.register_var("f", {{1, true}, {2, true}});
  gc.on_checkpoint(1, 7);
  gc.on_checkpoint(2, 3);
  auto log = log_with_versions("f", 9);
  gc.sweep(log);
  for (Version v = 4; v <= 9; ++v) {
    EXPECT_TRUE(log.covers("f", v, Box::from_dims(8, 8, 8)))
        << "version " << v << " needed by app 2's replay was dropped";
  }
}

TEST(GarbageCollectorTest, SweepCountsScannedEntries) {
  GarbageCollector gc;
  gc.register_var("f", {{1, true}});
  auto log = log_with_versions("f", 5);
  auto result = gc.sweep(log);
  EXPECT_EQ(result.entries_scanned, 5u);
}

TEST(GarbageCollectorTest, SweepMultipleVariablesIndependently) {
  GarbageCollector gc;
  gc.register_var("a", {{1, true}});
  gc.register_var("b", {{2, true}});
  gc.on_checkpoint(1, 5);
  gc.on_checkpoint(2, 1);
  wlog::DataLog log;
  for (Version v = 1; v <= 6; ++v) {
    log.add(make_chunk("a", v, Box::from_dims(4, 4, 4), 8.0, 1024));
    log.add(make_chunk("b", v, Box::from_dims(4, 4, 4), 8.0, 1024));
  }
  gc.sweep(log);
  EXPECT_EQ(log.versions_of("a"), (std::vector<Version>{6}));
  EXPECT_EQ(log.versions_of("b"), (std::vector<Version>{2, 3, 4, 5, 6}));
}

TEST(GarbageCollectorTest, SweepEmptyLogIsNoop) {
  GarbageCollector gc;
  wlog::DataLog log;
  auto result = gc.sweep(log);
  EXPECT_EQ(result.versions_dropped, 0u);
  EXPECT_EQ(result.entries_scanned, 0u);
}

TEST(GarbageCollectorTest, RepeatedSweepsConvergeAsConsumersAdvance) {
  // The drop_upto/watermark interaction over a whole run: each consumer
  // checkpoint advance releases exactly the newly unreachable versions,
  // and a sweep with no watermark movement reclaims nothing.
  GarbageCollector gc;
  gc.register_var("f", {{1, true}, {2, true}});
  auto log = log_with_versions("f", 8);
  EXPECT_EQ(gc.sweep(log).versions_dropped, 0u);  // no checkpoints yet
  gc.on_checkpoint(1, 6);
  EXPECT_EQ(gc.sweep(log).versions_dropped, 0u);  // app 2 still pins v1+
  gc.on_checkpoint(2, 3);
  EXPECT_EQ(gc.sweep(log).versions_dropped, 3u);  // v1..3 released
  EXPECT_EQ(gc.sweep(log).versions_dropped, 0u);  // steady state
  gc.on_checkpoint(2, 8);
  EXPECT_EQ(gc.sweep(log).versions_dropped, 3u);  // v4..6; app 1 pins v7+
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{7, 8}));
  gc.on_checkpoint(1, 8);
  EXPECT_EQ(gc.sweep(log).versions_dropped, 1u);  // v7; v8 is latest
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{8}));
}

TEST(GarbageCollectorTest, SweepProbeReportsWatermarkAndBound) {
  GarbageCollector gc;
  gc.register_var("f", {{1, true}});
  gc.on_checkpoint(1, 5);
  auto log = log_with_versions("f", 9);
  std::string probed_var;
  Version probed_mark = 0, probed_upto = 0;
  std::size_t probed_dropped = 0;
  gc.set_probes(nullptr, [&](const std::string& var, Version mark,
                             Version upto, std::size_t dropped) {
    probed_var = var;
    probed_mark = mark;
    probed_upto = upto;
    probed_dropped = dropped;
  });
  gc.sweep(log);
  EXPECT_EQ(probed_var, "f");
  EXPECT_EQ(probed_mark, 5u);
  EXPECT_EQ(probed_upto, 5u);
  EXPECT_EQ(probed_dropped, 5u);
}

TEST(GarbageCollectorTest, WatermarkBiasSeamOvercollects) {
  // The campaign's fault-injection seam: a biased watermark must make the
  // GC reclaim versions a rolled-back consumer could still replay — this
  // is exactly what the oracle's retention invariant exists to catch.
  GarbageCollector gc;
  gc.register_var("f", {{1, true}});
  gc.on_checkpoint(1, 3);
  gc.set_watermark_bias(2);
  EXPECT_EQ(gc.watermark("f"), 5u);
  auto log = log_with_versions("f", 8);
  gc.sweep(log);
  EXPECT_FALSE(log.covers("f", 4, Box::from_dims(8, 8, 8)));
  EXPECT_FALSE(log.covers("f", 5, Box::from_dims(8, 8, 8)));
  EXPECT_EQ(log.versions_of("f"), (std::vector<Version>{6, 7, 8}));
}

TEST(GarbageCollectorTest, WatermarkBiasSaturatesAtMax) {
  GarbageCollector gc;
  gc.register_var("f", {});  // no rollback consumers: watermark already max
  gc.set_watermark_bias(2);
  EXPECT_EQ(gc.watermark("f"), kMax);
}

}  // namespace
}  // namespace dstage::gc
