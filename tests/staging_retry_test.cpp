// Client-side retry semantics over the typed RPC transport: exhausted
// retries surface an error instead of hanging the workflow, a retried put
// whose original landed is acknowledged idempotently, and replayed puts
// are suppressed exactly once.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/server.hpp"

namespace dstage::staging {
namespace {

struct Rig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  Box domain = Box::from_dims(32, 32, 32);
  dht::SpatialIndex index{domain, 1, 8};
  std::vector<cluster::VprocId> server_vprocs;
  std::unique_ptr<StagingServer> server;

  explicit Rig(bool start_server) {
    ServerParams sp;
    sp.logging = true;
    auto vp = cluster.add_vproc("srv0", cluster.add_node());
    server_vprocs.push_back(vp);
    server = std::make_unique<StagingServer>(cluster, vp, sp);
    server->register_var("f", {{1, true}});
    server->set_peers(0, {cluster.vproc(vp).endpoint});
    if (start_server) server->start();
  }

  std::unique_ptr<StagingClient> make_client(ClientParams cp) {
    auto vp = cluster.add_vproc("app", cluster.add_node());
    cp.logged = true;
    cp.mem_scale = 4096;
    return std::make_unique<StagingClient>(cluster, index, server_vprocs,
                                           vp, cp);
  }
};

TEST(StagingRetryTest, ExhaustedRetriesSurfaceAnError) {
  // The server never serves its mailbox: every attempt times out, and
  // after max_retries the put must fail loudly rather than hang forever.
  Rig rig(/*start_server=*/false);
  ClientParams cp;
  cp.app = 0;
  cp.put_timeout = sim::seconds(1);
  cp.max_retries = 2;
  auto producer = rig.make_client(cp);

  bool threw = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    try {
      (void)co_await producer->put(ctx, "f", 1, rig.domain);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  rig.eng.run();
  EXPECT_TRUE(threw);
  EXPECT_GE(producer->rpc_stats().exhausted, 1u);
  EXPECT_GE(producer->rpc_stats().retries, 1u);
  EXPECT_EQ(producer->rpc_stats().responses, 0u);
}

TEST(StagingRetryTest, RetriedPutWhoseOriginalLandedIsIdempotent) {
  // A retransmitted put (response lost, payload already staged) re-executes
  // the request; the server recognizes the identical chunk and acks without
  // re-applying or re-logging it.
  Rig rig(/*start_server=*/true);
  ClientParams cp;
  cp.app = 0;
  auto producer = rig.make_client(cp);

  PutResult first, second;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    first = co_await producer->put(ctx, "f", 1, rig.domain);
    second = co_await producer->put(ctx, "f", 1, rig.domain);
  });
  rig.eng.run();

  EXPECT_GT(first.pieces, 0u);
  EXPECT_EQ(second.pieces, first.pieces);
  EXPECT_EQ(second.suppressed, 0u);  // not a replay — just a duplicate
  // Both rounds hit the server, but the store and log hold one copy.
  EXPECT_EQ(rig.server->stats().puts, 2 * first.pieces);
  const auto one_copy =
      static_cast<std::uint64_t>(rig.domain.volume()) * 8u;
  EXPECT_EQ(rig.server->data_log().nominal_bytes(), one_copy);
  EXPECT_EQ(rig.server->store().nominal_bytes(), one_copy);
}

TEST(StagingRetryTest, ReplayedPutIsSuppressedExactlyOnce) {
  Rig rig(/*start_server=*/true);
  ClientParams cp;
  cp.app = 0;
  auto producer = rig.make_client(cp);

  PutResult original, replayed, after_replay;
  std::size_t replay_events = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    original = co_await producer->put(ctx, "f", 1, rig.domain);
    // The app restarts from scratch and re-executes the same timestep:
    // the logged script suppresses the duplicate writes...
    replay_events = co_await producer->workflow_restart(ctx, 0);
    replayed = co_await producer->put(ctx, "f", 1, rig.domain);
    // ...and only them: the same request issued again after the script is
    // consumed is handled as a fresh (idempotent) duplicate.
    after_replay = co_await producer->put(ctx, "f", 1, rig.domain);
  });
  rig.eng.run();

  EXPECT_EQ(replay_events, original.pieces);
  EXPECT_EQ(replayed.suppressed, original.pieces);
  EXPECT_EQ(after_replay.suppressed, 0u);
  EXPECT_EQ(rig.server->stats().puts_suppressed, original.pieces);
  const auto one_copy =
      static_cast<std::uint64_t>(rig.domain.volume()) * 8u;
  EXPECT_EQ(rig.server->data_log().nominal_bytes(), one_copy);
}

}  // namespace
}  // namespace dstage::staging
