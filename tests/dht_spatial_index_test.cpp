#include "dht/spatial_index.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace dstage::dht {
namespace {

TEST(SpatialIndexTest, RejectsBadArguments) {
  EXPECT_THROW(SpatialIndex(Box{}, 4), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(Box::from_dims(8, 8, 8), 0), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(Box::from_dims(8, 8, 8), 4, 3),
               std::invalid_argument);  // non power of two
}

TEST(SpatialIndexTest, SingleServerOwnsEverything) {
  SpatialIndex idx(Box::from_dims(64, 64, 64), 1, 8);
  EXPECT_EQ(idx.server_of(Point3{0, 0, 0}), 0);
  EXPECT_EQ(idx.server_of(Point3{63, 63, 63}), 0);
  auto placements = idx.place(Box::from_dims(64, 64, 64));
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].server, 0);
  EXPECT_EQ(placements[0].total_points, 64ull * 64 * 64);
}

TEST(SpatialIndexTest, PlacementCoversQueryExactly) {
  SpatialIndex idx(Box::from_dims(128, 128, 128), 7, 8);
  Box query{{10, 20, 30}, {100, 90, 120}};
  std::uint64_t covered = 0;
  for (const auto& p : idx.place(query)) {
    for (const Box& piece : p.pieces) {
      EXPECT_TRUE(query.contains(piece));
      covered += piece.volume();
    }
  }
  EXPECT_EQ(covered, query.volume());
}

TEST(SpatialIndexTest, PlacementPiecesAreDisjoint) {
  SpatialIndex idx(Box::from_dims(64, 64, 64), 5, 8);
  Box query{{3, 3, 3}, {60, 50, 40}};
  std::vector<Box> all;
  for (const auto& p : idx.place(query)) {
    for (const Box& piece : p.pieces) all.push_back(piece);
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].intersects(all[j]))
          << all[i].str() << " vs " << all[j].str();
    }
  }
}

TEST(SpatialIndexTest, PlacementAgreesWithPointOwnership) {
  SpatialIndex idx(Box::from_dims(64, 64, 64), 4, 8);
  Box query{{0, 0, 0}, {31, 31, 31}};
  for (const auto& p : idx.place(query)) {
    for (const Box& piece : p.pieces) {
      EXPECT_EQ(idx.server_of(piece.lo), p.server);
      EXPECT_EQ(idx.server_of(piece.hi), p.server);
    }
  }
}

TEST(SpatialIndexTest, LoadIsBalanced) {
  // SFC partitioning into equal curve segments keeps cell counts within a
  // factor ~2 of ideal even for awkward server counts.
  for (int servers : {2, 3, 5, 8, 13}) {
    SpatialIndex idx(Box::from_dims(256, 256, 256), servers, 16);
    auto counts = idx.cells_per_server();
    const auto total =
        std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
    EXPECT_EQ(total, 16ull * 16 * 16);
    const double ideal = static_cast<double>(total) / servers;
    for (auto c : counts) {
      EXPECT_GT(static_cast<double>(c), 0.4 * ideal) << servers << " servers";
      EXPECT_LT(static_cast<double>(c), 2.1 * ideal) << servers << " servers";
    }
  }
}

TEST(SpatialIndexTest, QueryOutsideDomainIsEmpty) {
  SpatialIndex idx(Box::from_dims(32, 32, 32), 2, 4);
  EXPECT_TRUE(idx.place(Box{{40, 40, 40}, {50, 50, 50}}).empty());
  EXPECT_TRUE(idx.place(Box{}).empty());
}

TEST(SpatialIndexTest, QueryClippedToDomain) {
  SpatialIndex idx(Box::from_dims(32, 32, 32), 2, 4);
  auto placements = idx.place(Box{{16, 16, 16}, {100, 100, 100}});
  std::uint64_t covered = 0;
  for (const auto& p : placements) covered += p.total_points;
  EXPECT_EQ(covered, 16ull * 16 * 16);
}

TEST(SpatialIndexTest, XRunMergingBoundsPieceCount) {
  SpatialIndex idx(Box::from_dims(128, 128, 128), 4, 8);
  auto placements = idx.place(Box::from_dims(128, 128, 128));
  std::size_t pieces = 0;
  for (const auto& p : placements) pieces += p.pieces.size();
  // 8x8x8 = 512 cells; x-run merging must compress well below that.
  EXPECT_LE(pieces, 128u);
  EXPECT_GE(pieces, 4u);
}

TEST(SpatialIndexTest, SpatialLocality) {
  // Neighbouring sub-boxes should mostly land on few servers: a small query
  // never touches every server of a large fleet.
  SpatialIndex idx(Box::from_dims(256, 256, 256), 64, 16);
  Box small{{0, 0, 0}, {31, 31, 31}};
  auto placements = idx.place(small);
  EXPECT_LE(placements.size(), 8u);
}

TEST(SpatialIndexTest, DomainNotStartingAtOrigin) {
  Box domain{{100, 200, 300}, {163, 263, 363}};
  SpatialIndex idx(domain, 4, 8);
  auto placements = idx.place(domain);
  std::uint64_t covered = 0;
  for (const auto& p : placements) covered += p.total_points;
  EXPECT_EQ(covered, domain.volume());
  EXPECT_THROW(idx.server_of(Point3{0, 0, 0}), std::out_of_range);
}

TEST(SpatialIndexTest, DeterministicPlacement) {
  SpatialIndex a(Box::from_dims(64, 64, 64), 6, 8);
  SpatialIndex b(Box::from_dims(64, 64, 64), 6, 8);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Box q{{rng.uniform_int(0, 30), rng.uniform_int(0, 30),
           rng.uniform_int(0, 30)},
          {rng.uniform_int(31, 63), rng.uniform_int(31, 63),
           rng.uniform_int(31, 63)}};
    auto pa = a.place(q);
    auto pb = b.place(q);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t k = 0; k < pa.size(); ++k) {
      EXPECT_EQ(pa[k].server, pb[k].server);
      EXPECT_EQ(pa[k].pieces.size(), pb[k].pieces.size());
    }
  }
}

}  // namespace
}  // namespace dstage::dht
