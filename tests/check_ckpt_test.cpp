// Multi-level checkpoint hierarchy under the consistency oracle: the
// `;ckpt=` repro field round-trips and survives shrinking, generated
// campaigns draw XOR groups from {2, 3, 4}, and a pinned scenario restarts
// from the cache AND a partner rebuild with every invariant holding —
// restart-from-cache ≡ restart-from-PFS, machine-checked.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/campaign.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"

namespace dstage::check {
namespace {

TEST(CheckCkptTest, ReproRoundTripsCkptField) {
  Schedule s;
  s.id = 9;
  s.scheme = core::Scheme::kUncoordinated;
  s.total_ts = 12;
  s.resilience = 1;
  s.ckpt_group = 3;
  s.failures.push_back(ScheduleFailure{0, 4, 0.25, true, false});

  const std::string repro = s.repro();
  EXPECT_NE(repro.find(";ckpt=3"), std::string::npos);
  EXPECT_EQ(Schedule::parse(repro), s);

  // The field composes with the other optional fields.
  s.staging_servers = 3;
  s.elastic = {{3, true}, {8, false}};
  EXPECT_EQ(Schedule::parse(s.repro()), s);
  EXPECT_EQ(Schedule::parse(s.repro()).ckpt_group, 3);
}

TEST(CheckCkptTest, HierarchyOffReproStaysStable) {
  // Pre-hierarchy repro strings must parse and re-serialize unchanged: the
  // `;ckpt=` field is emitted only when set.
  const std::string legacy =
      "cc1;id=4;sch=un;ts=12;sp=3;ap=4;lp=0;res=1;mtbf=0"
      ";f=0:5:0.5:";
  EXPECT_EQ(Schedule::parse(legacy).repro(), legacy);
  EXPECT_EQ(Schedule::parse(legacy).ckpt_group, 0);
  EXPECT_EQ(legacy.find("ckpt"), std::string::npos);
}

TEST(CheckCkptTest, ParseRejectsMalformedCkpt) {
  EXPECT_THROW(Schedule::parse("cc1;ckpt=x"), std::invalid_argument);
  EXPECT_THROW(Schedule::parse("cc1;ckpt="), std::invalid_argument);
  // An out-of-range group parses but is rejected by spec validation when
  // the schedule is materialized.
  const Schedule s = Schedule::parse("cc1;id=0;sch=un;ts=12;sp=3;ap=4;lp=0"
                                     ";res=0;mtbf=0;ckpt=1");
  EXPECT_THROW(s.to_spec().validate(), std::invalid_argument);
}

TEST(CheckCkptTest, GeneratorDrawsGroupsFromTwoToFour) {
  GenerateOptions opts;
  opts.count = 24;
  opts.seed = 5;
  opts.ckpt_probability = 1.0;
  for (const Schedule& s : generate_schedules(opts)) {
    EXPECT_GE(s.ckpt_group, 2) << s.repro();
    EXPECT_LE(s.ckpt_group, 4) << s.repro();
  }

  // Off by default — and the random stream is unchanged when off.
  opts.ckpt_probability = 0.0;
  for (const Schedule& s : generate_schedules(opts)) {
    EXPECT_EQ(s.ckpt_group, 0);
  }
}

TEST(CheckCkptTest, CacheAndPartnerRestartScenarioPassesAllInvariants) {
  // The acceptance scenario as one pinned repro: a process failure restarts
  // from the node-local cache, a later node failure restarts via an XOR
  // partner rebuild — both byte-verified, all invariants green.
  const Schedule s = Schedule::parse(
      "cc1;id=1;sch=un;ts=12;sp=3;ap=4;lp=0;res=0;mtbf=0;ckpt=3"
      ";f=0:5:0.5:;f=0:10:0.5:n");
  ReferenceCache cache;
  const OracleReport report = check_schedule(s, cache);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.failures_injected, 2);
  EXPECT_GT(report.ckpt_drains_completed, 0u);
  EXPECT_GT(report.ckpt_cache_restarts, 0u);
  EXPECT_GT(report.ckpt_partner_rebuilds, 0u);
}

TEST(CheckCkptTest, HierarchyCampaignPassesWithFastRestartsExercised) {
  CampaignOptions opts;
  opts.gen.count = 12;
  opts.gen.seed = 3;
  opts.gen.ckpt_probability = 1.0;
  opts.gen.schemes = {core::Scheme::kUncoordinated, core::Scheme::kHybrid};
  opts.threads = 2;
  const CampaignResult result = run_campaign(opts);
  EXPECT_EQ(result.passed, 12);
  EXPECT_TRUE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    ADD_FAILURE() << f.schedule.repro() << "\n" << f.report.summary();
  }
  // The hierarchy must really have been exercised: sets drained durable in
  // the background and restarts were served by the fast levels.
  EXPECT_GT(result.ckpt_drains_completed, 0u);
  EXPECT_GT(result.ckpt_cache_restarts, 0u);
  EXPECT_GT(result.ckpt_partner_rebuilds, 0u);
}

TEST(CheckCkptTest, ShrinkerPreservesCkptField) {
  // Sabotaged hierarchy schedules must shrink without losing the `;ckpt=`
  // field: the minimal reproducer still runs the hierarchy.
  CampaignOptions opts;
  opts.gen.count = 8;
  opts.gen.seed = 1;
  opts.gen.ckpt_probability = 1.0;
  opts.gen.schemes = {core::Scheme::kUncoordinated};
  opts.threads = 2;
  opts.sabotage = Sabotage::kSkipReplay;
  opts.max_shrunk = 2;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.ok());
  int shrunk_seen = 0;
  for (const CampaignFailure& f : result.failures) {
    if (f.shrink_attempts == 0) continue;
    ++shrunk_seen;
    EXPECT_EQ(f.shrunk.ckpt_group, f.schedule.ckpt_group);
    EXPECT_NE(f.shrunk.repro().find(";ckpt="), std::string::npos)
        << f.shrunk.repro();
  }
  EXPECT_GT(shrunk_seen, 0);
}

TEST(CheckCkptTest, ShrunkReproAnchorsStillCatchSabotage) {
  // Two shrunk reproducers from sabotaged hierarchy campaigns, pinned as
  // regression anchors: each must keep failing its oracle invariant under
  // the sabotage that produced it, and pass clean without it.
  const char* anchors[] = {
      "cc1;id=0;sch=un;ts=12;sp=2;ap=3;lp=0;res=0;mtbf=0;ckpt=3"
      ";f=0:1:0.5:",
      "cc1;id=2;sch=un;ts=12;sp=3;ap=4;lp=2;res=1;mtbf=0;ckpt=2"
      ";f=0:1:0.5:n",
  };
  ReferenceCache cache;
  for (const char* anchor : anchors) {
    const Schedule s = Schedule::parse(anchor);
    ASSERT_GE(s.ckpt_group, 2);
    const OracleReport sabotaged =
        check_schedule(s, cache, Sabotage::kSkipReplay);
    EXPECT_FALSE(sabotaged.ok()) << anchor;
    const OracleReport clean = check_schedule(s, cache);
    EXPECT_TRUE(clean.ok()) << anchor << "\n" << clean.summary();
  }
}

}  // namespace
}  // namespace dstage::check
