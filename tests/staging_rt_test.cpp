// Integration tests: staging servers + clients running in the discrete-event
// simulation. Exercises the paper's queue-based consistency algorithm end to
// end: logging, checkpoint events (W_Chk_ID), recovery + replay, redundant-
// write suppression, logged-version read resolution, GC, and rollback.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/server.hpp"

namespace dstage::staging {
namespace {

struct Rig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  Box domain = Box::from_dims(64, 64, 64);
  dht::SpatialIndex index;
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<StagingServer>> servers;

  explicit Rig(int nservers = 2, bool logging = true,
               ServerParams params = {})
      : index(domain, nservers, 8) {
    params.logging = logging;
    for (int s = 0; s < nservers; ++s) {
      auto vp = cluster.add_vproc("srv" + std::to_string(s),
                                  cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(
          std::make_unique<StagingServer>(cluster, vp, params));
    }
    std::vector<net::EndpointId> endpoints;
    for (auto vp : server_vprocs)
      endpoints.push_back(cluster.vproc(vp).endpoint);
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s]->set_peers(static_cast<int>(s), endpoints);
      servers[s]->start();
    }
  }

  std::unique_ptr<StagingClient> make_client(AppId app, bool logged) {
    auto vp = cluster.add_vproc("app" + std::to_string(app),
                                cluster.add_node());
    ClientParams cp;
    cp.app = app;
    cp.logged = logged;
    cp.mem_scale = 4096;
    return std::make_unique<StagingClient>(cluster, index, server_vprocs,
                                           vp, cp);
  }

  sim::Ctx ctx_of(const StagingClient& c) {
    // The client's vproc id is not exposed; track via endpoint order:
    // vprocs are servers first, then clients in creation order.
    return sim::Ctx{&eng, nullptr};
  }

  void register_simple_var(const std::string& var,
                           std::vector<std::pair<AppId, bool>> consumers) {
    for (auto& s : servers) s->register_var(var, consumers);
  }

  void run() { eng.run(); }

  ServerStats total_stats() const {
    ServerStats t;
    for (const auto& s : servers) {
      const auto& st = s->stats();
      t.puts += st.puts;
      t.gets += st.gets;
      t.gets_pending += st.gets_pending;
      t.puts_suppressed += st.puts_suppressed;
      t.gets_from_log += st.gets_from_log;
      t.replay_mismatches += st.replay_mismatches;
      t.gc_versions_dropped += st.gc_versions_dropped;
    }
    return t;
  }
};

TEST(StagingRtTest, PutThenGetRoundTrip) {
  Rig rig;
  auto producer = rig.make_client(0, true);
  auto consumer = rig.make_client(1, true);
  bool done = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    auto pr = co_await producer->put(ctx, "f", 1, rig.domain);
    EXPECT_GT(pr.pieces, 0u);
    EXPECT_GT(pr.nominal_bytes, 0u);
    EXPECT_GT(pr.response_time.ns, 0);
    auto gr = co_await consumer->get(ctx, "f", 1, rig.domain);
    EXPECT_EQ(gr.wrong_version, 0);
    EXPECT_EQ(gr.corrupt, 0);
    EXPECT_EQ(gr.nominal_bytes, pr.nominal_bytes);
    done = true;
  });
  rig.run();
  EXPECT_TRUE(done);
}

TEST(StagingRtTest, GetBlocksUntilPutArrives) {
  Rig rig;
  auto producer = rig.make_client(0, true);
  auto consumer = rig.make_client(1, true);
  sim::TimePoint got_at{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    auto gr = co_await consumer->get(ctx, "f", 1, rig.domain);
    EXPECT_EQ(gr.wrong_version, 0);
    got_at = rig.eng.now();
  });
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await ctx.delay(sim::seconds(5));
    co_await producer->put(ctx, "f", 1, rig.domain);
  });
  rig.run();
  EXPECT_GE(got_at.seconds(), 5.0);
  EXPECT_GT(rig.total_stats().gets_pending, 0u);
}

TEST(StagingRtTest, PartialRegionReadsVerify) {
  Rig rig;
  auto producer = rig.make_client(0, true);
  auto consumer = rig.make_client(1, true);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    Box corner{{0, 0, 0}, {15, 15, 15}};
    auto gr = co_await consumer->get(ctx, "f", 1, corner);
    EXPECT_EQ(gr.wrong_version, 0);
    EXPECT_EQ(gr.corrupt, 0);
    EXPECT_EQ(gr.nominal_bytes, corner.volume() * 8);
  });
  rig.run();
}

TEST(StagingRtTest, CheckpointEventAssignsWChkIds) {
  Rig rig;
  auto client = rig.make_client(0, true);
  std::uint64_t id1 = 0, id2 = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await client->put(ctx, "f", 1, rig.domain);
    id1 = co_await client->workflow_check(ctx, 1);
    co_await client->put(ctx, "f", 2, rig.domain);
    id2 = co_await client->workflow_check(ctx, 2);
  });
  rig.run();
  EXPECT_GT(id1, 0u);
  EXPECT_GT(id2, id1);  // unique, monotone per server
}

TEST(StagingRtTest, ProducerReplaySuppressesRedundantWrites) {
  // Fig. 2 case 2: the restarted producer re-puts staged data; with logging
  // the staging omits the redundant writes.
  Rig rig;
  auto producer = rig.make_client(0, true);
  rig.register_simple_var("f", {{1, true}});
  std::size_t replay_events = 0;
  std::size_t suppressed_in_replay = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    // Initial execution: ckpt at ts2, then progress to ts4, then "fail".
    for (Version v = 1; v <= 4; ++v) {
      co_await producer->put(ctx, "f", v, rig.domain);
      if (v == 2) co_await producer->workflow_check(ctx, 2);
    }
    // Rollback to ts2 and replay ts3, ts4.
    replay_events = co_await producer->workflow_restart(ctx, 2);
    for (Version v = 3; v <= 4; ++v) {
      auto pr = co_await producer->put(ctx, "f", v, rig.domain);
      suppressed_in_replay += pr.suppressed;
      EXPECT_EQ(pr.suppressed, pr.pieces);  // every piece suppressed
    }
    // Past the failure point: fresh writes are applied again.
    auto fresh = co_await producer->put(ctx, "f", 5, rig.domain);
    EXPECT_EQ(fresh.suppressed, 0u);
  });
  rig.run();
  EXPECT_GT(replay_events, 0u);
  EXPECT_GT(suppressed_in_replay, 0u);
  EXPECT_EQ(rig.total_stats().replay_mismatches, 0u);
}

TEST(StagingRtTest, ConsumerReplayResolvesLoggedVersions) {
  // Fig. 2 case 1: the restarted consumer re-reads; the log returns the
  // version observed initially even though newer data has been staged.
  Rig rig;
  auto producer = rig.make_client(0, true);
  auto consumer = rig.make_client(1, true);
  rig.register_simple_var("f", {{1, true}});
  int wrong = 0;
  bool from_log_seen = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    // Producer stages versions 1..5 while the consumer reads them; the
    // consumer checkpoints after reading version 2. The store window keeps
    // only the latest 2 versions, so the log is the only source for replay.
    for (Version v = 1; v <= 5; ++v) {
      co_await producer->put(ctx, "f", v, rig.domain);
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      wrong += gr.wrong_version;
      if (v == 2) co_await consumer->workflow_check(ctx, 2);
    }
    // Consumer fails and is restored to its ts-2 checkpoint.
    co_await consumer->workflow_restart(ctx, 2);
    // Replay: re-reads 3..5 must return exactly versions 3..5 from the log.
    for (Version v = 3; v <= 5; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      wrong += gr.wrong_version;
      from_log_seen |= gr.any_from_log;
      EXPECT_EQ(gr.nominal_bytes, rig.domain.volume() * 8);
    }
  });
  rig.run();
  EXPECT_EQ(wrong, 0);
  EXPECT_TRUE(from_log_seen);
}

TEST(StagingRtTest, NonLoggedStaleReadServesNewestVersion) {
  // Without logging (individual C/R), a re-read of a superseded version is
  // answered with the newest data — and detected by the content key.
  Rig rig(2, /*logging=*/false);
  auto producer = rig.make_client(0, false);
  auto consumer = rig.make_client(1, false);
  int wrong = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 5; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);
    auto gr = co_await consumer->get(ctx, "f", 1, rig.domain);
    wrong += gr.wrong_version;
  });
  rig.run();
  EXPECT_GT(wrong, 0);
}

TEST(StagingRtTest, GarbageCollectionReclaimsAfterConsumerCheckpoint) {
  Rig rig;
  auto producer = rig.make_client(0, true);
  auto consumer = rig.make_client(1, true);
  rig.register_simple_var("f", {{1, true}});
  std::uint64_t log_before = 0, log_after = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 6; ++v) {
      co_await producer->put(ctx, "f", v, rig.domain);
      co_await consumer->get(ctx, "f", v, rig.domain);
    }
    for (const auto& s : rig.servers)
      log_before += s->data_log().nominal_bytes();
    // Consumer checkpoints at ts6: versions <= 6 become unreachable for
    // replay; GC keeps only the newest retained version.
    co_await consumer->workflow_check(ctx, 6);
    for (const auto& s : rig.servers)
      log_after += s->data_log().nominal_bytes();
  });
  rig.run();
  EXPECT_GT(log_before, 0u);
  EXPECT_LT(log_after, log_before / 2);
  EXPECT_GT(rig.total_stats().gc_versions_dropped, 0u);
}

TEST(StagingRtTest, GcSafety_ReplayStillServedAfterSweeps) {
  // GC runs at every checkpoint, yet a consumer that rolls back can still
  // replay every read after its last checkpoint.
  Rig rig;
  auto producer = rig.make_client(0, true);
  auto consumer = rig.make_client(1, true);
  rig.register_simple_var("f", {{1, true}});
  int wrong = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 8; ++v) {
      co_await producer->put(ctx, "f", v, rig.domain);
      co_await consumer->get(ctx, "f", v, rig.domain);
      if (v == 4) co_await consumer->workflow_check(ctx, 4);
      if (v % 2 == 0) co_await producer->workflow_check(ctx, v);
    }
    co_await consumer->workflow_restart(ctx, 4);
    for (Version v = 5; v <= 8; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      wrong += gr.wrong_version + gr.corrupt;
    }
  });
  rig.run();
  EXPECT_EQ(wrong, 0);
}

TEST(StagingRtTest, RollbackDiscardsNewerVersions) {
  Rig rig(2, /*logging=*/false);
  auto client = rig.make_client(0, false);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 5; ++v)
      co_await client->put(ctx, "f", v, rig.domain);
    co_await client->rollback_staging(ctx, 2);
    // After the rollback only versions <= 2 remain (window had {4, 5},
    // both dropped), so a fresh get for v5 blocks until re-staged.
    co_await client->put(ctx, "f", 3, rig.domain);
    auto gr = co_await client->get(ctx, "f", 3, rig.domain);
    EXPECT_EQ(gr.wrong_version, 0);
  });
  rig.run();
  for (const auto& s : rig.servers) {
    auto latest = s->store().latest("f");
    if (latest) EXPECT_LE(*latest, 3u);
  }
}

TEST(StagingRtTest, ErasureCodePolicyDistributesFragmentsToPeers) {
  ServerParams params;
  params.policy.kind = resilience::Redundancy::kErasureCode;
  params.policy.rs_k = 4;
  params.policy.rs_m = 2;
  Rig rig(2, true, params);
  auto client = rig.make_client(0, true);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await client->put(ctx, "f", 1, rig.domain);
  });
  rig.run();
  std::uint64_t redundancy = 0;
  for (const auto& s : rig.servers) redundancy += s->memory().redundancy_bytes;
  // Each owner keeps its full payload and spreads all k+m shards minus the
  // one it implicitly holds: (k-1+m)/k of the payload lands on peers.
  const std::uint64_t total = rig.domain.volume() * 8;
  EXPECT_EQ(redundancy, total * 5 / 4);
}

TEST(StagingRtTest, MemoryReportSeparatesStoreAndLog) {
  Rig rig;
  auto client = rig.make_client(0, true);
  rig.register_simple_var("f", {{1, true}});
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 3; ++v)
      co_await client->put(ctx, "f", v, rig.domain);
  });
  rig.run();
  std::uint64_t store = 0, log = 0, meta = 0;
  for (const auto& s : rig.servers) {
    auto m = s->memory();
    store += m.store_bytes;
    log += m.log_payload_bytes;
    meta += m.log_metadata_bytes;
  }
  const std::uint64_t per_version = rig.domain.volume() * 8;
  EXPECT_EQ(store, 2 * per_version);  // base window of 2
  EXPECT_EQ(log, 3 * per_version);    // log retains everything (no ckpt yet)
  EXPECT_GT(meta, 0u);
}

TEST(StagingRtTest, QueryReportsAvailableAndLoggedVersions) {
  Rig rig;
  auto producer = rig.make_client(0, true);
  rig.register_simple_var("f", {{1, true}});
  QueryResult before{}, after{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 5; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);
    before = co_await producer->query(ctx, "f");
    // The consumer-free GC watermark stays 0 (consumer app 1 never
    // checkpoints), so everything is fully logged.
    co_await producer->workflow_check(ctx, 5);
    after = co_await producer->query(ctx, "f");
  });
  rig.run();
  // Base window keeps the latest two versions.
  EXPECT_EQ(before.available, (std::vector<Version>{4, 5}));
  EXPECT_EQ(before.fully_logged, (std::vector<Version>{1, 2, 3, 4, 5}));
  EXPECT_EQ(after.available, (std::vector<Version>{4, 5}));
}

TEST(StagingRtTest, QueryUnknownVariableIsEmpty) {
  Rig rig;
  auto client = rig.make_client(0, true);
  QueryResult r{};
  bool queried = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    r = co_await client->query(ctx, "nonexistent");
    queried = true;
  });
  rig.run();
  EXPECT_TRUE(queried);
  EXPECT_TRUE(r.available.empty());
  EXPECT_TRUE(r.fully_logged.empty());
}

TEST(StagingRtTest, ServerKillUnblocksNothingButClientSurvivesViaTimeout) {
  // A killed server stops serving; parked requests stay unanswered. This
  // documents the failure mode the resilience layer addresses.
  Rig rig(1);
  auto client = rig.make_client(0, true);
  bool got = false;
  sim::CancelToken client_tok;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, &client_tok};
    auto gr = co_await client->get(ctx, "f", 1, rig.domain);
    got = true;
  });
  rig.eng.schedule_call(sim::seconds(1), [&] {
    rig.cluster.kill(rig.server_vprocs[0]);
  });
  rig.eng.schedule_call(sim::seconds(2), [&] { client_tok.cancel(); });
  rig.run();
  EXPECT_FALSE(got);
}

}  // namespace
}  // namespace dstage::staging
