#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "resilience/gf256.hpp"
#include "resilience/policy.hpp"
#include "resilience/reed_solomon.hpp"
#include "util/rng.hpp"

namespace dstage::resilience {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  const auto& gf = gf256();
  EXPECT_EQ(gf.add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf.sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(Gf256Test, MulIdentityAndZero) {
  const auto& gf = gf256();
  for (int a = 0; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf.mul(ua, 1), ua);
    EXPECT_EQ(gf.mul(1, ua), ua);
    EXPECT_EQ(gf.mul(ua, 0), 0);
    EXPECT_EQ(gf.mul(0, ua), 0);
  }
}

TEST(Gf256Test, MulCommutativeExhaustive) {
  const auto& gf = gf256();
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; ++b) {
      EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a),
                       static_cast<std::uint8_t>(b)),
                gf.mul(static_cast<std::uint8_t>(b),
                       static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, MulAssociativeSampled) {
  const auto& gf = gf256();
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
    EXPECT_EQ(gf.mul(a, gf.add(b, c)),
              gf.add(gf.mul(a, b), gf.mul(a, c)));  // distributivity
  }
}

TEST(Gf256Test, EveryNonZeroElementHasInverse) {
  const auto& gf = gf256();
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf.mul(ua, gf.inv(ua)), 1) << "a=" << a;
    EXPECT_EQ(gf.div(ua, ua), 1);
  }
  EXPECT_THROW((void)gf.inv(0), std::domain_error);
  EXPECT_THROW((void)gf.div(1, 0), std::domain_error);
}

TEST(Gf256Test, DivIsMulByInverse) {
  const auto& gf = gf256();
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_u64(1, 255));
    EXPECT_EQ(gf.div(a, b), gf.mul(a, gf.inv(b)));
  }
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  const auto& gf = gf256();
  std::set<std::uint8_t> seen;
  for (int p = 0; p < 255; ++p) seen.insert(gf.exp(p));
  EXPECT_EQ(seen.size(), 255u);  // all non-zero elements
}

TEST(Gf256Test, MulAddMatchesScalarLoop) {
  const auto& gf = gf256();
  Rng rng(17);
  std::vector<std::uint8_t> dst(257), src(257), expect(257);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    src[i] = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  }
  const std::uint8_t c = 0x9d;
  for (std::size_t i = 0; i < dst.size(); ++i)
    expect[i] = gf.add(dst[i], gf.mul(c, src[i]));
  gf.mul_add(dst, src, c);
  EXPECT_EQ(dst, expect);
}

TEST(GfMatrixTest, IdentityInverse) {
  auto id = GfMatrix::identity(5);
  auto inv = id.inverted();
  ASSERT_TRUE(inv);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_EQ(inv->at(r, c), r == c ? 1 : 0);
}

TEST(GfMatrixTest, InverseTimesSelfIsIdentity) {
  Rng rng(23);
  GfMatrix m(6, 6);
  // Random matrices over GF(256) are invertible with high probability;
  // retry until one is.
  std::optional<GfMatrix> inv;
  do {
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 6; ++c)
        m.at(r, c) = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    inv = m.inverted();
  } while (!inv);
  auto prod = m.multiply(*inv);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_EQ(prod.at(r, c), r == c ? 1 : 0);
}

TEST(GfMatrixTest, SingularDetected) {
  GfMatrix m(2, 2);  // all zeros
  EXPECT_FALSE(m.inverted().has_value());
}

class ReedSolomonParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReedSolomonParamTest, DecodeSurvivesAnyMaxErasurePattern) {
  const auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  Rng rng(static_cast<std::uint64_t>(k * 100 + m));
  std::vector<std::uint8_t> data(1017);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));

  auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), static_cast<std::size_t>(k + m));
  EXPECT_TRUE(rs.verify(shards));

  // Erase m random distinct shards, many patterns.
  for (int trial = 0; trial < 20; ++trial) {
    auto damaged = shards;
    std::set<int> erased;
    while (static_cast<int>(erased.size()) < m) {
      erased.insert(rng.uniform_int(0, k + m - 1));
    }
    for (int e : erased) damaged[static_cast<std::size_t>(e)].clear();
    auto decoded = rs.decode(damaged, data.size());
    ASSERT_TRUE(decoded) << "k=" << k << " m=" << m;
    EXPECT_EQ(*decoded, data);
  }
}

TEST_P(ReedSolomonParamTest, ReconstructRestoresAllShards) {
  const auto [k, m] = GetParam();
  if (m == 0) return;
  ReedSolomon rs(k, m);
  Rng rng(static_cast<std::uint64_t>(k * 7 + m));
  std::vector<std::uint8_t> data(513);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  auto shards = rs.encode(data);
  auto damaged = shards;
  damaged[0].clear();                                    // a data shard
  damaged[static_cast<std::size_t>(k + m - 1)].clear();  // a parity shard
  if (m >= 2) {
    ASSERT_TRUE(rs.reconstruct(damaged));
    EXPECT_EQ(damaged, shards);
  } else {
    EXPECT_FALSE(rs.reconstruct(damaged));  // 2 losses > m=1
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, ReedSolomonParamTest,
    ::testing::Values(std::make_tuple(1, 0), std::make_tuple(1, 1),
                      std::make_tuple(2, 1), std::make_tuple(3, 2),
                      std::make_tuple(4, 2), std::make_tuple(4, 4),
                      std::make_tuple(6, 3), std::make_tuple(8, 4),
                      std::make_tuple(10, 4), std::make_tuple(16, 4)));

TEST(ReedSolomonTest, TooManyErasuresFails) {
  ReedSolomon rs(4, 2);
  std::vector<std::uint8_t> data(100, 0xab);
  auto shards = rs.encode(data);
  shards[0].clear();
  shards[1].clear();
  shards[2].clear();
  EXPECT_FALSE(rs.decode(shards, data.size()).has_value());
}

TEST(ReedSolomonTest, VerifyDetectsCorruption) {
  ReedSolomon rs(4, 2);
  std::vector<std::uint8_t> data(64, 0x11);
  auto shards = rs.encode(data);
  EXPECT_TRUE(rs.verify(shards));
  shards[2][5] ^= 1;
  EXPECT_FALSE(rs.verify(shards));
}

TEST(ReedSolomonTest, EmptyData) {
  ReedSolomon rs(4, 2);
  auto shards = rs.encode({});
  auto decoded = rs.decode(shards, 0);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->empty());
}

TEST(ReedSolomonTest, DataNotMultipleOfK) {
  ReedSolomon rs(3, 2);
  std::vector<std::uint8_t> data(10, 0x42);
  auto shards = rs.encode(data);
  EXPECT_EQ(shards[0].size(), 4u);  // ceil(10/3)
  auto decoded = rs.decode(shards, data.size());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(-1, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, -1), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

int popcount_mask(unsigned mask) {
  int n = 0;
  for (; mask != 0; mask &= mask - 1) ++n;
  return n;
}

// Exhaustive erasure fuzz: unlike the sampled patterns above, enumerate
// EVERY loss pattern of up to m shards for the codes the staging policies
// actually use, over randomized payload lengths (including empty and
// non-multiple-of-k). Each must round-trip via decode() and restore the
// exact shard set via reconstruct().
TEST(ReedSolomonFuzzTest, EveryErasurePatternUpToParityRoundTrips) {
  const std::tuple<int, int> codes[] = {{2, 1}, {3, 2}, {4, 2}};
  for (const auto& [k, m] : codes) {
    ReedSolomon rs(k, m);
    const int n = k + m;
    Rng rng(static_cast<std::uint64_t>(k * 1000 + m));
    // Lengths start at 1: a zero-length payload makes every shard empty,
    // indistinguishable from "lost" (the EmptyData test covers it without
    // erasures).
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t len =
          static_cast<std::size_t>(rng.uniform_u64(1, 313));
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
      }
      const auto shards = rs.encode(data);
      ASSERT_TRUE(rs.verify(shards));
      for (unsigned mask = 1; mask < (1u << n); ++mask) {
        if (popcount_mask(mask) > m) continue;
        auto damaged = shards;
        for (int i = 0; i < n; ++i) {
          if (mask & (1u << i)) damaged[static_cast<std::size_t>(i)].clear();
        }
        auto decoded = rs.decode(damaged, data.size());
        ASSERT_TRUE(decoded) << "k=" << k << " m=" << m << " mask=" << mask;
        EXPECT_EQ(*decoded, data)
            << "k=" << k << " m=" << m << " mask=" << mask;
        ASSERT_TRUE(rs.reconstruct(damaged))
            << "k=" << k << " m=" << m << " mask=" << mask;
        EXPECT_EQ(damaged, shards)
            << "k=" << k << " m=" << m << " mask=" << mask;
      }
    }
  }
}

// One erasure past the parity budget must fail loudly (nullopt / false),
// never return silently corrupt data — for EVERY (m+1)-sized pattern.
TEST(ReedSolomonFuzzTest, EveryPatternBeyondParityFailsLoudly) {
  const std::tuple<int, int> codes[] = {{2, 1}, {3, 2}, {4, 2}};
  for (const auto& [k, m] : codes) {
    ReedSolomon rs(k, m);
    const int n = k + m;
    std::vector<std::uint8_t> data(257, 0x5a);
    const auto shards = rs.encode(data);
    for (unsigned mask = 1; mask < (1u << n); ++mask) {
      if (popcount_mask(mask) != m + 1) continue;
      auto damaged = shards;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) damaged[static_cast<std::size_t>(i)].clear();
      }
      EXPECT_FALSE(rs.decode(damaged, data.size()).has_value())
          << "k=" << k << " m=" << m << " mask=" << mask;
      EXPECT_FALSE(rs.reconstruct(damaged))
          << "k=" << k << " m=" << m << " mask=" << mask;
    }
  }
}

TEST(PolicyTest, NoneHasNoOverhead) {
  ResiliencePolicy p;
  EXPECT_EQ(p.redundancy_bytes(1000), 0u);
  EXPECT_EQ(p.stored_bytes(1000), 1000u);
  EXPECT_EQ(p.encode_time(1000).ns, 0);
  EXPECT_EQ(p.max_losses(), 0);
}

TEST(PolicyTest, ReplicationOverhead) {
  ResiliencePolicy p;
  p.kind = Redundancy::kReplication;
  p.replicas = 3;
  EXPECT_EQ(p.redundancy_bytes(1000), 2000u);
  EXPECT_EQ(p.fragments_total(), 3);
  EXPECT_EQ(p.fragments_needed(), 1);
  EXPECT_EQ(p.max_losses(), 2);
  EXPECT_GT(p.encode_time(1 << 20).ns, 0);
}

TEST(PolicyTest, ErasureCodeOverhead) {
  ResiliencePolicy p;
  p.kind = Redundancy::kErasureCode;
  p.rs_k = 4;
  p.rs_m = 2;
  EXPECT_EQ(p.redundancy_bytes(4000), 2000u);  // 2 shards of 1000
  EXPECT_EQ(p.redundancy_bytes(4001), 2002u);  // ceil division
  EXPECT_EQ(p.fragments_total(), 6);
  EXPECT_EQ(p.fragments_needed(), 4);
  EXPECT_EQ(p.max_losses(), 2);
}

TEST(PolicyTest, FragmentPlacementDistinctServers) {
  auto placement = fragment_placement(3, 6, 8);
  EXPECT_EQ(placement.size(), 6u);
  std::set<int> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 6u);
  EXPECT_EQ(placement[0], 3);  // primary on the owner
  for (int s : placement) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
  }
}

TEST(PolicyTest, FragmentPlacementWrapsAround) {
  auto placement = fragment_placement(6, 4, 8);
  EXPECT_EQ(placement, (std::vector<int>{6, 7, 0, 1}));
  EXPECT_THROW(fragment_placement(0, 2, 0), std::invalid_argument);
}

TEST(PolicyTest, FragmentPlacementRefusesToCollide) {
  // More fragments than servers: the modulo would silently wrap several
  // fragments of one object onto the same server, voiding the
  // distinct-holders guarantee the helper promises. It must throw, not
  // return a colliding placement.
  EXPECT_THROW(fragment_placement(0, 6, 4), std::invalid_argument);
  EXPECT_THROW(fragment_placement(2, 3, 2), std::invalid_argument);
  // Exactly as many servers as fragments is still fine.
  auto placement = fragment_placement(1, 4, 4);
  std::set<int> unique(placement.begin(), placement.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(PolicyTest, ValidateRejectsUnsatisfiableConfigs) {
  ResiliencePolicy p;  // kNone: anything goes, even a single server
  p.validate(1);

  p.kind = Redundancy::kReplication;
  p.replicas = 2;
  p.validate(2);
  EXPECT_THROW(p.validate(1), std::invalid_argument);  // no peer to hold
  p.replicas = 1;  // "replication" with a single copy is a config bug
  EXPECT_THROW(p.validate(8), std::invalid_argument);
  p.replicas = 2;
  p.encode_bw = 0;
  EXPECT_THROW(p.validate(8), std::invalid_argument);
  p.encode_bw = 44e9;

  p.kind = Redundancy::kErasureCode;
  p.rs_k = 0;
  EXPECT_THROW(p.validate(8), std::invalid_argument);
  p.rs_k = 4;
  p.rs_m = 0;
  EXPECT_THROW(p.validate(8), std::invalid_argument);
  p.rs_m = 2;
  p.validate(8);
  // A group smaller than fragments_total() is allowed: placement clamps
  // loudly at the staging layer and survivability degrades, but partial
  // redundancy still beats rejecting the deployment.
  p.validate(3);
}

}  // namespace
}  // namespace dstage::resilience
