// End-to-end tests of the observability layer threaded through the
// runtime: zero perturbation when enabled, staging-internal trace kinds
// gated on ObsConfig, breakdown/critical-path reporting on a real failure
// run, Chrome export validity, and sweep aggregation determinism.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/setups.hpp"
#include "core/sweep.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"

namespace dstage::core {
namespace {

WorkflowSpec small_spec(Scheme scheme, int failures, std::uint64_t seed,
                        bool obs_on) {
  WorkflowSpec spec = table2_setup(scheme);
  spec.total_ts = 10;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  spec.obs.enabled = obs_on;
  return spec;
}

bool is_obs_kind(TraceKind k) {
  return k == TraceKind::kGcSweep || k == TraceKind::kGcWatermarkAdvance ||
         k == TraceKind::kLogTruncate;
}

TEST(ObsRuntimeTest, DisabledByDefault) {
  WorkflowRunner runner(small_spec(Scheme::kUncoordinated, 0, 1, false));
  runner.run();
  EXPECT_EQ(runner.runtime().obs(), nullptr);
  for (const TraceEvent& e : runner.trace().events()) {
    EXPECT_FALSE(is_obs_kind(e.kind)) << trace_kind_name(e.kind);
  }
}

TEST(ObsRuntimeTest, EnablingObsDoesNotPerturbTheRun) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with DSTAGE_OBS=OFF";
  WorkflowRunner off(small_spec(Scheme::kUncoordinated, 1, 6, false));
  WorkflowRunner on(small_spec(Scheme::kUncoordinated, 1, 6, true));
  const RunMetrics m_off = off.run();
  const RunMetrics m_on = on.run();

  // Identical timing and staging behaviour...
  EXPECT_EQ(m_on.total_time_s, m_off.total_time_s);
  EXPECT_EQ(m_on.staging.puts, m_off.staging.puts);
  EXPECT_EQ(m_on.events_processed, m_off.events_processed);
  // ...and the workflow-level event stream is identical once the
  // obs-gated staging-internal kinds are filtered out.
  std::vector<const TraceEvent*> a, b;
  for (const TraceEvent& e : off.trace().events()) a.push_back(&e);
  for (const TraceEvent& e : on.trace().events()) {
    if (!is_obs_kind(e.kind)) b.push_back(&e);
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->at.ns, b[i]->at.ns);
    EXPECT_EQ(a[i]->kind, b[i]->kind);
    EXPECT_EQ(a[i]->component, b[i]->component);
    EXPECT_EQ(a[i]->value, b[i]->value);
  }
}

TEST(ObsRuntimeTest, GcKindsRecordedOnlyWhenEnabled) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with DSTAGE_OBS=OFF";
  // Uncoordinated logging + periodic durable checkpoints exercise the GC:
  // watermarks advance and sweeps run on every checkpoint.
  WorkflowRunner on(small_spec(Scheme::kUncoordinated, 0, 1, true));
  on.run();
  EXPECT_FALSE(on.trace().of_kind(TraceKind::kGcWatermarkAdvance).empty());
  EXPECT_FALSE(on.trace().of_kind(TraceKind::kGcSweep).empty());

  obs::Observability* o = on.runtime().obs();
  ASSERT_NE(o, nullptr);
  // Per-server counters agree with the trace (counter() is find-or-create,
  // so a non-const registry handle is needed even to read).
  std::uint64_t advances = 0, sweeps = 0;
  for (int s = 0; s < on.runtime().server_count(); ++s) {
    const std::string label = "staging-" + std::to_string(s);
    advances += o->metrics().counter("gc.watermark_advances", label).value();
    sweeps += o->metrics().counter("gc.sweeps", label).value();
  }
  EXPECT_EQ(advances, on.trace().of_kind(TraceKind::kGcWatermarkAdvance).size());
  EXPECT_EQ(sweeps, on.trace().of_kind(TraceKind::kGcSweep).size());
}

TEST(ObsRuntimeTest, CoordinatedFailureBreakdownAndCriticalPath) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with DSTAGE_OBS=OFF";
  WorkflowRunner runner(small_spec(Scheme::kCoordinated, 1, 6, true));
  const RunMetrics m = runner.run();
  ASSERT_EQ(m.failures_injected, 1);
  const obs::Observability* o = runner.runtime().obs();
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->tracer().open_count(), 0u);  // finalize closed everything

  // Acceptance: per-phase breakdown whose phase columns sum to the track
  // total within 1e-9 s (exact in integer ns, in fact).
  const obs::Breakdown b = obs::phase_breakdown(o->tracer());
  ASSERT_FALSE(b.tracks.empty());
  bool saw_restart = false;
  for (const auto& t : b.tracks) {
    EXPECT_EQ(t.attributed_ns(), t.total_ns) << t.track;
    saw_restart = saw_restart || t.phase(obs::Phase::kRestart) > 0;
  }
  EXPECT_TRUE(saw_restart);  // the recovery shows up as restart time

  // Acceptance: a reconstructable recovery tree with the detect -> ...
  // stages as children, critical path marked.
  const auto recoveries = obs::recovery_paths(o->tracer());
  ASSERT_EQ(recoveries.size(), 1u);
  const obs::PathNode& root = recoveries[0];
  EXPECT_FALSE(root.children.empty());
  bool saw_detect = false, critical = false;
  for (const auto& c : root.children) {
    saw_detect = saw_detect || c.span->name == "detect";
    critical = critical || c.on_critical_path;
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(critical);

  // Acceptance: the exported Chrome trace passes the independent validator.
  const obs::TraceValidation v =
      obs::validate_chrome_trace(obs::chrome_trace_json(o->tracer()).str());
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors[0]);
  EXPECT_GT(v.events, 0u);
}

TEST(ObsRuntimeTest, KilledProcessSpansStayMatchedInExport) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with DSTAGE_OBS=OFF";
  // Node-level failures under Hybrid kill several processes mid-activity;
  // every span must still export as a matched begin/end pair.
  WorkflowSpec spec = small_spec(Scheme::kHybrid, 2, 3, true);
  spec.failures.node_failure_fraction = 1.0;
  WorkflowRunner runner(spec);
  runner.run();
  const obs::Observability* o = runner.runtime().obs();
  ASSERT_NE(o, nullptr);
  const obs::TraceValidation v =
      obs::validate_chrome_trace(obs::chrome_trace_json(o->tracer()).str());
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors[0]);
}

// Satellite acceptance: metrics collected under an N-thread sweep equal a
// serial collection exactly — same runs, same aggregate, any thread count.
TEST(ObsRuntimeTest, ParallelSweepAggregateEqualsSerial) {
  if (!obs::compiled_in()) GTEST_SKIP() << "built with DSTAGE_OBS=OFF";
  auto make = [](std::uint64_t seed) {
    return small_spec(Scheme::kUncoordinated, 1, seed, true);
  };
  obs::MetricsRegistry serial, parallel;
  SweepOptions so;
  so.threads = 1;
  so.metrics = &serial;
  const auto runs_serial = run_seed_sweep(make, 6, so);
  SweepOptions po;
  po.threads = 4;
  po.metrics = &parallel;
  const auto runs_parallel = run_seed_sweep(make, 6, po);

  EXPECT_EQ(serial.to_json().str(), parallel.to_json().str());
  ASSERT_EQ(runs_serial.size(), runs_parallel.size());
  for (std::size_t i = 0; i < runs_serial.size(); ++i) {
    EXPECT_EQ(runs_serial[i].trace_digest, runs_parallel[i].trace_digest);
    // Each run also carries its own obs snapshot in the sweep result.
    EXPECT_FALSE(runs_serial[i].obs.is_null());
    EXPECT_EQ(runs_serial[i].obs.str(), runs_parallel[i].obs.str());
  }
}

}  // namespace
}  // namespace dstage::core
