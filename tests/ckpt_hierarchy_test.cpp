// Multi-level hierarchy state machine: single losses rebuild from the
// partner level byte-verified, double losses degrade loudly to the PFS,
// and a drain interrupted at any stage never yields a restart point newer
// than the last complete set — nor leaks cache buffers past the durable
// frontier. The randomized property drives 200 seeded op sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "ckpt/hierarchy.hpp"

namespace dstage::ckpt {
namespace {

/// Drive (app 0, ts) to the requested state.
void advance_to(CheckpointHierarchy& h, int ts, SetState target) {
  h.write_set(0, ts, 4096);
  if (target == SetState::kLocalWritten) return;
  ASSERT_TRUE(h.encode_set(0, ts));
  if (target == SetState::kEncoded) return;
  h.begin_drain(0, ts);
  if (target == SetState::kDraining) return;
  h.complete_drain(0, ts);
}

TEST(CkptHierarchyTest, EverySingleMemberLossRebuildsFromPartners) {
  for (int group : {2, 3, 4}) {
    for (int lost = 0; lost < group; ++lost) {
      CheckpointHierarchy h(group);
      // The loss cursor round-robins over members; advance it so the next
      // failure strikes exactly member `lost`.
      for (int k = 0; k < lost; ++k) h.on_node_failure(0);
      h.write_set(0, 1, 4096);
      ASSERT_TRUE(h.encode_set(0, 1));
      h.on_node_failure(0);
      EXPECT_EQ(h.cached_blocks(0), static_cast<std::size_t>(group - 1));

      const Restore r = h.restore(0, 1, 0);
      EXPECT_EQ(r.level, CkptLevel::kPartner)
          << "group=" << group << " lost member " << lost;
      // checksum_ok compares the rebuilt member against the fnv1a taken at
      // write time: the rebuild is byte-identical, not just present.
      EXPECT_TRUE(r.checksum_ok);
      EXPECT_EQ(h.stats().partner_rebuilds, 1u);
      EXPECT_EQ(h.stats().blocks_lost, 1u);
    }
  }
}

TEST(CkptHierarchyTest, DoubleLossDegradesLoudlyToPfs) {
  for (int group : {2, 3, 4}) {
    for (int start = 0; start < group; ++start) {
      // Durable copy exists: a double loss must fall through to the PFS.
      CheckpointHierarchy h(group);
      for (int k = 0; k < start; ++k) h.on_node_failure(0);
      h.write_set(0, 1, 4096);
      ASSERT_TRUE(h.encode_set(0, 1));
      h.begin_drain(0, 1);
      h.complete_drain(0, 1);
      h.on_node_failure(0);
      h.on_node_failure(0);
      EXPECT_EQ(h.best_restart_ts(0, 1), 1);
      const Restore r = h.restore(0, 1, 1);
      EXPECT_EQ(r.level, CkptLevel::kPfs) << "group=" << group;
      EXPECT_TRUE(r.checksum_ok);

      // No durable copy yet: the set is simply not a restart point.
      CheckpointHierarchy h2(group);
      for (int k = 0; k < start; ++k) h2.on_node_failure(0);
      h2.write_set(0, 1, 4096);
      ASSERT_TRUE(h2.encode_set(0, 1));
      h2.on_node_failure(0);
      h2.on_node_failure(0);
      EXPECT_EQ(h2.best_restart_ts(0, 0), 0);
    }
  }
}

TEST(CkptHierarchyTest, DoubleLossStatCountsOnlyPreDrainSets) {
  // The double_losses counter feeds the flight recorder's degradation
  // trigger: it must fire exactly when a second member dies before the
  // set's drain completed, and never for sets the PFS already holds.
  CheckpointHierarchy h(2);
  advance_to(h, 1, SetState::kPfsComplete);
  advance_to(h, 2, SetState::kEncoded);
  h.on_node_failure(0);
  EXPECT_EQ(h.stats().double_losses, 0u);
  h.on_node_failure(0);
  // Set 1 also lost both members but is PFS-complete: only set 2 counts.
  EXPECT_EQ(h.stats().double_losses, 1u);
}

TEST(CkptHierarchyTest, InterruptedDrainNeverYieldsNewerRestartPoint) {
  // ts 1 drains fully durable; ts 2 is interrupted at each earlier stage by
  // a node failure that costs it two members. Whatever the stage, ts 2 must
  // not be chosen over the last complete set.
  for (SetState stage :
       {SetState::kLocalWritten, SetState::kEncoded, SetState::kDraining}) {
    CheckpointHierarchy h(3);
    advance_to(h, 1, SetState::kPfsComplete);
    advance_to(h, 2, stage);
    h.on_node_failure(0);
    h.on_node_failure(0);
    EXPECT_EQ(h.best_restart_ts(0, 1), 1)
        << "stage " << static_cast<int>(stage);
    const Restore r = h.restore(0, 1, 1);
    EXPECT_EQ(r.level, CkptLevel::kPfs);
  }
  // Only a *completed* drain makes ts 2 survive the same double loss.
  CheckpointHierarchy h(3);
  advance_to(h, 1, SetState::kPfsComplete);
  advance_to(h, 2, SetState::kPfsComplete);
  h.on_node_failure(0);
  h.on_node_failure(0);
  EXPECT_EQ(h.best_restart_ts(0, 1), 2);
  EXPECT_EQ(h.restore(0, 2, 1).level, CkptLevel::kPfs);
}

TEST(CkptHierarchyTest, DrainStateMachineRejectsOutOfOrderTransitions) {
  CheckpointHierarchy h(2);
  h.write_set(0, 1, 4096);
  EXPECT_THROW(h.begin_drain(0, 1), std::logic_error);  // not encoded yet
  ASSERT_TRUE(h.encode_set(0, 1));
  EXPECT_FALSE(h.encode_set(0, 1));  // double-encode is refused, not fatal
  EXPECT_THROW(h.complete_drain(0, 1), std::logic_error);  // never began
  h.begin_drain(0, 1);
  EXPECT_THROW(h.begin_drain(0, 1), std::logic_error);  // already draining
  h.complete_drain(0, 1);
  EXPECT_THROW(h.complete_drain(0, 1), std::logic_error);  // already durable
  // A set that lost a member before its shard went out cannot encode.
  h.write_set(0, 2, 4096);
  h.on_node_failure(0);
  EXPECT_FALSE(h.encode_set(0, 2));
  EXPECT_EQ(h.set_state(0, 2), SetState::kLocalWritten);
}

TEST(CkptHierarchyTest, CompletedDrainEvictsOlderCacheEntries) {
  CheckpointHierarchy h(3);
  for (int ts : {1, 2, 3}) advance_to(h, ts, SetState::kEncoded);
  EXPECT_EQ(h.cached_blocks(0), 9u);
  // Drain order is oldest-first.
  const auto d1 = h.next_drain();
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->ts, 1);
  h.begin_drain(0, 1);
  h.complete_drain(0, 1);
  EXPECT_EQ(h.cached_blocks(0), 9u);  // nothing older than ts 1 to evict
  h.begin_drain(0, 2);
  h.complete_drain(0, 2);
  // The durable frontier passed ts 1: its buffers are gone.
  EXPECT_EQ(h.cached_blocks(0), 6u);
  EXPECT_EQ(h.stats().cache_evictions, 1u);
  // An evicted set is no longer a restart point below the frontier.
  EXPECT_EQ(h.best_restart_ts(0, 2), 3);
}

TEST(CkptHierarchyTest, RandomizedInterruptionNeverLeaksOrRegresses) {
  // 200 seeded op sequences: writes, encodes, drains interrupted mid-flush,
  // and node failures in random order. After every op: the best restart
  // point never precedes the durable frontier, cache buffers never outlive
  // frontier passage, and the final restore byte-verifies.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    std::mt19937_64 rng(seed);
    CheckpointHierarchy h(2 + static_cast<int>(seed % 3));
    const auto group = static_cast<std::size_t>(h.xor_group());
    std::vector<int> written;
    int frontier = 0;  // newest kPfsComplete ts
    int next_ts = 1;
    for (int step = 0; step < 60; ++step) {
      switch (rng() % 6) {
        case 0:
        case 1:
          h.write_set(0, next_ts, 4096);
          written.push_back(next_ts++);
          break;
        case 2:
          if (!written.empty()) {
            h.encode_set(0, written[rng() % written.size()]);
          }
          break;
        case 3:
        case 4:
          if (const auto d = h.next_drain()) {
            h.begin_drain(d->app, d->ts);
            if (rng() % 2 == 0) {
              h.complete_drain(d->app, d->ts);
              frontier = std::max(frontier, d->ts);
            }
            // else: the flush was interrupted mid-PFS-write; the set stays
            // kDraining and must never be reported durable.
          }
          break;
        case 5:
          h.on_node_failure(0);
          break;
      }
      const int best = h.best_restart_ts(0, frontier);
      ASSERT_GE(best, frontier) << "seed " << seed << " step " << step;
      // Nothing below the frontier may still hold cache buffers.
      std::size_t above_frontier = 0;
      for (int ts : written) {
        if (ts >= frontier) ++above_frontier;
      }
      ASSERT_LE(h.cached_blocks(0), above_frontier * group)
          << "seed " << seed << " step " << step;
      // An incomplete drain is never observable as durable.
      for (int ts : written) {
        if (ts > frontier) {
          ASSERT_NE(h.set_state(0, ts), SetState::kPfsComplete)
              << "seed " << seed << " ts " << ts;
        }
      }
    }
    const int best = h.best_restart_ts(0, frontier);
    if (best > 0) {
      const Restore r = h.restore(0, best, frontier);
      EXPECT_TRUE(r.checksum_ok) << "seed " << seed;
      const RestartRecord& rec = h.restart_records().back();
      EXPECT_GE(rec.ts, rec.pfs_ts_at_choice) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dstage::ckpt
