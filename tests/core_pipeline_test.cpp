// Three-stage pipeline workflows (simulation → filter → analysis): the
// middle component both consumes and produces coupled data, so failures
// propagate through two coupling hops. Exercises transitive stalls,
// replay of a read-write component, and end-to-end consistency.
#include <gtest/gtest.h>

#include "core/executor.hpp"

namespace dstage::core {
namespace {

WorkflowSpec pipeline_spec(Scheme scheme, int failures, std::uint64_t seed) {
  WorkflowSpec spec;
  spec.domain = Box::from_dims(128, 128, 128);
  spec.total_ts = 10;
  spec.staging_servers = 4;
  spec.scheme = scheme;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  spec.failures.node_failure_fraction = 0;

  ComponentSpec sim;
  sim.name = "sim";
  sim.cores = 128;
  sim.compute_per_ts_s = 4.0;
  sim.ckpt_period = 3;
  sim.writes.push_back(CouplingWrite{"raw", 1.0});
  spec.components.push_back(sim);

  ComponentSpec filter;  // reads raw, writes features — the chain's middle
  filter.name = "filter";
  filter.cores = 64;
  filter.compute_per_ts_s = 2.0;
  filter.ckpt_period = 4;
  filter.reads.push_back(CouplingRead{"raw", 1.0, 1});
  filter.writes.push_back(CouplingWrite{"features", 1.0});
  spec.components.push_back(filter);

  ComponentSpec analysis;
  analysis.name = "analysis";
  analysis.cores = 32;
  analysis.compute_per_ts_s = 1.0;
  analysis.ckpt_period = 5;
  analysis.reads.push_back(CouplingRead{"features", 1.0, 1});
  spec.components.push_back(analysis);

  return spec;
}

TEST(PipelineTest, FailureFreeChainCompletesInOrder) {
  WorkflowRunner runner(pipeline_spec(Scheme::kUncoordinated, 0, 1));
  auto m = runner.run();
  EXPECT_EQ(m.total_anomalies(), 0);
  for (const auto& c : m.components) EXPECT_EQ(c.timesteps_done, 10);
  // The chain is paced by the producer: downstream stages finish later.
  EXPECT_LE(m.component("sim").completion_time_s,
            m.component("filter").completion_time_s);
  EXPECT_LE(m.component("filter").completion_time_s,
            m.component("analysis").completion_time_s);
  // Each coupled variable moved 10 versions of the full domain.
  EXPECT_EQ(m.component("filter").put_bytes,
            10ull * 128 * 128 * 128 * 8);
}

TEST(PipelineTest, MiddleStageFailureReplaysReadsAndWrites) {
  // Find a seed that fails the filter; its replay must resolve reads from
  // the log AND suppress its re-issued writes.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 30 && !exercised; ++seed) {
    WorkflowRunner runner(pipeline_spec(Scheme::kUncoordinated, 1, seed));
    auto m = runner.run();
    EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
    EXPECT_EQ(m.staging.replay_mismatches, 0u) << "seed " << seed;
    if (m.component("filter").failures == 1 &&
        m.component("filter").timesteps_reworked > 0) {
      exercised = true;
      EXPECT_GT(m.staging.puts_suppressed + m.staging.gets_from_log, 0u)
          << "seed " << seed;
    }
  }
  EXPECT_TRUE(exercised) << "no seed produced a filter failure with rework";
}

TEST(PipelineTest, HeadFailureStallsTheWholeChainButStaysConsistent) {
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 20 && !exercised; ++seed) {
    WorkflowRunner ok(pipeline_spec(Scheme::kUncoordinated, 0, seed));
    auto base = ok.run();
    WorkflowRunner failed(pipeline_spec(Scheme::kUncoordinated, 1, seed));
    auto m = failed.run();
    EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
    if (m.component("sim").failures == 1 &&
        m.component("sim").timesteps_reworked > 0) {
      exercised = true;
      // Downstream completion slips with the producer.
      EXPECT_GT(m.component("analysis").completion_time_s,
                base.component("analysis").completion_time_s);
    }
  }
  EXPECT_TRUE(exercised);
}

TEST(PipelineTest, SweepAllSchemesStayConsistent) {
  for (Scheme scheme : {Scheme::kCoordinated, Scheme::kUncoordinated,
                        Scheme::kHybrid}) {
    for (std::uint64_t seed : {3, 9, 14}) {
      WorkflowRunner runner(pipeline_spec(scheme, 2, seed));
      auto m = runner.run();
      EXPECT_EQ(m.total_anomalies(), 0)
          << scheme_name(scheme) << " seed " << seed;
      for (const auto& c : m.components) {
        EXPECT_EQ(c.timesteps_done - c.timesteps_reworked, 10)
            << scheme_name(scheme) << " seed " << seed << " " << c.name;
      }
    }
  }
}

TEST(PipelineTest, TemporalSubsamplingAcrossTheChain) {
  // The analysis reads features only every 2nd timestep; versions it skips
  // must not deadlock GC or retention.
  WorkflowSpec spec = pipeline_spec(Scheme::kUncoordinated, 0, 1);
  spec.components[2].reads[0].every = 2;
  WorkflowRunner runner(std::move(spec));
  auto m = runner.run();
  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_EQ(m.component("analysis").timesteps_done, 10);
  // Half as many reads as the every-timestep consumer would issue.
  EXPECT_EQ(m.component("analysis").get_response_s.count(), 5u);
}

}  // namespace
}  // namespace dstage::core
