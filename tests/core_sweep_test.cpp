// Sweep harness tests: thread-count invariance (a parallel sweep must be
// bit-identical to a serial one), error propagation, and the JSON export.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/setups.hpp"
#include "core/sweep.hpp"

namespace dstage::core {
namespace {

WorkflowSpec sweep_spec(std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(Scheme::kUncoordinated);
  spec.total_ts = 12;
  spec.failures.count = 2;
  spec.failures.seed = seed;
  return spec;
}

TEST(SweepTest, ParallelSweepMatchesSerialPerSeed) {
  constexpr int kSeeds = 6;
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;

  const auto a = run_seed_sweep(sweep_spec, kSeeds, serial);
  const auto b = run_seed_sweep(sweep_spec, kSeeds, parallel);
  ASSERT_EQ(a.size(), static_cast<std::size_t>(kSeeds));
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, i + 1);
    EXPECT_EQ(b[i].seed, a[i].seed);
    EXPECT_EQ(b[i].trace_digest, a[i].trace_digest) << "seed " << a[i].seed;
    EXPECT_EQ(b[i].metrics.total_time_s, a[i].metrics.total_time_s);
    EXPECT_EQ(b[i].metrics.events_processed, a[i].metrics.events_processed);
    EXPECT_EQ(b[i].metrics.failures_injected, a[i].metrics.failures_injected);
    EXPECT_EQ(b[i].metrics.pfs_bytes_written, a[i].metrics.pfs_bytes_written);
  }
  EXPECT_EQ(mean_total_time(a), mean_total_time(b));
}

TEST(SweepTest, EmptySweepIsEmpty) {
  EXPECT_TRUE(run_sweep({}).empty());
  EXPECT_TRUE(run_seed_sweep(sweep_spec, 0).empty());
  EXPECT_EQ(mean_total_time({}), 0);
}

TEST(SweepTest, InvalidSpecPropagatesOutOfWorkerThreads) {
  auto bad = sweep_spec(1);
  bad.staging_servers = 0;
  SweepOptions opts;
  opts.threads = 2;
  EXPECT_THROW(run_sweep({sweep_spec(1), bad}, opts), std::invalid_argument);
}

TEST(SweepTest, MeanTotalTimeAveragesRuns) {
  std::vector<SweepRun> runs(2);
  runs[0].metrics.total_time_s = 10;
  runs[1].metrics.total_time_s = 30;
  EXPECT_DOUBLE_EQ(mean_total_time(runs), 20);
}

TEST(SweepTest, DigestHexIsZeroPadded) {
  EXPECT_EQ(digest_hex(0xba25ef72a474a18bull), "ba25ef72a474a18b");
  EXPECT_EQ(digest_hex(0x1ull), "0000000000000001");
}

TEST(SweepTest, SweepJsonCarriesSeedDigestAndMetrics) {
  const auto runs = run_seed_sweep(sweep_spec, 2, SweepOptions{.threads = 2});
  const Json doc = sweep_to_json(runs);
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.size(), 2u);
  const std::string text = doc.str();
  EXPECT_NE(text.find("\"seed\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"seed\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"trace_digest\": \"" + digest_hex(runs[0].trace_digest)
                      + "\""),
            std::string::npos);
  EXPECT_NE(text.find("\"total_time_s\""), std::string::npos);
  EXPECT_NE(text.find("\"components\""), std::string::npos);
}

}  // namespace
}  // namespace dstage::core
