// Unit tests for the bench baseline gate's comparison core. The historic
// bugs these pin down: a zero baseline divided deviation into infinity
// (any nonzero candidate "regressed" by inf%), a NaN candidate silently
// PASSED because `NaN > tolerance` is false, and sign was dropped from the
// reported delta.
#include "util/bench_gate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/json_reader.hpp"

namespace dstage {
namespace {

using bench_gate::Gate;

JsonValue json(const std::string& text) {
  JsonParse p = parse_json(text);
  EXPECT_TRUE(p.ok) << text;
  return p.value;
}

JsonValue number(double v) {
  JsonValue j;
  j.kind = JsonValue::Kind::kNumber;
  j.number = v;
  return j;
}

TEST(BenchGateTest, IdenticalTreesPass) {
  Gate g;
  const JsonValue doc = json(R"({"a": 1.5, "b": {"c": [10, 20]}, "s": "x"})");
  g.compare("", doc, doc);
  EXPECT_TRUE(g.problems.empty());
  EXPECT_EQ(g.checked, 3);  // strings are labels, not gated
}

TEST(BenchGateTest, ZeroBaselineGatesInAbsoluteTerms) {
  // Regression: 0-baseline used to divide into inf (or pass everything,
  // depending on the FP mood). With the abs floor of 1, a zero baseline
  // tolerates |candidate| <= tolerance and nothing more.
  Gate g;
  g.compare("", json(R"({"waits": 0})"), json(R"({"waits": 0.1})"));
  EXPECT_TRUE(g.problems.empty()) << g.problems.front();
  g.compare("", json(R"({"waits": 0})"), json(R"({"waits": 3})"));
  ASSERT_EQ(g.problems.size(), 1u);
  EXPECT_NE(g.problems[0].find("waits"), std::string::npos);
}

TEST(BenchGateTest, NegativeDeltaGatesLikePositive) {
  // A 20% drop must fail a 15% gate exactly like a 20% rise — "lower is
  // better" metrics regress downward too.
  Gate g;
  g.compare("", json(R"({"m": 10})"), json(R"({"m": 8})"));
  ASSERT_EQ(g.problems.size(), 1u);
  EXPECT_NE(g.problems[0].find("-20.0%"), std::string::npos)
      << g.problems[0];
  g.problems.clear();
  g.compare("", json(R"({"m": 10})"), json(R"({"m": 11})"));
  EXPECT_TRUE(g.problems.empty());
}

TEST(BenchGateTest, NegativeBaselineUsesMagnitude) {
  Gate g;
  g.compare("", json(R"({"m": -10})"), json(R"({"m": -8})"));
  ASSERT_EQ(g.problems.size(), 1u);  // dev = 2/10 = 20%
  g.problems.clear();
  g.compare("", json(R"({"m": -10})"), json(R"({"m": -9.5})"));
  EXPECT_TRUE(g.problems.empty());
}

TEST(BenchGateTest, MissingMetricFails) {
  Gate g;
  g.compare("", json(R"({"kept": 1, "gone": 2})"), json(R"({"kept": 1})"));
  ASSERT_EQ(g.problems.size(), 1u);
  EXPECT_NE(g.problems[0].find("gone"), std::string::npos);
  EXPECT_NE(g.problems[0].find("missing"), std::string::npos);
  // Extra candidate keys are new metrics, not regressions.
  g.problems.clear();
  g.compare("", json(R"({"kept": 1})"), json(R"({"kept": 1, "new": 9})"));
  EXPECT_TRUE(g.problems.empty());
}

TEST(BenchGateTest, NonFiniteCandidateAlwaysFails) {
  // Regression: `dev > tolerance` is false for NaN, so a NaN candidate
  // (e.g. a 0/0 events_per_sec) sailed through the gate.
  Gate g;
  g.compare_number("m", number(10.0), number(std::nan("")));
  ASSERT_EQ(g.problems.size(), 1u);
  EXPECT_NE(g.problems[0].find("non-finite"), std::string::npos);
  g.problems.clear();
  g.compare_number("m", number(std::nan("")), number(10.0));
  EXPECT_EQ(g.problems.size(), 1u);
  g.problems.clear();
  g.compare_number("m", number(10.0),
                   number(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(g.problems.size(), 1u);
}

TEST(BenchGateTest, ArrayLengthAndTypeMismatchesFail) {
  Gate g;
  g.compare("", json(R"({"pts": [1, 2, 3]})"), json(R"({"pts": [1, 2]})"));
  ASSERT_EQ(g.problems.size(), 1u);
  g.problems.clear();
  g.compare("", json(R"({"m": 1})"), json(R"({"m": "one"})"));
  ASSERT_EQ(g.problems.size(), 1u);
  g.problems.clear();
  g.compare("", json(R"({"m": {"x": 1}})"), json(R"({"m": 3})"));
  EXPECT_EQ(g.problems.size(), 1u);
}

TEST(BenchGateTest, ToleranceAndFloorAreConfigurable) {
  Gate g;
  g.tolerance = 0.5;
  g.compare("", json(R"({"m": 10})"), json(R"({"m": 14})"));
  EXPECT_TRUE(g.problems.empty());  // 40% < 50%
  Gate tight;
  tight.tolerance = 0.5;
  tight.abs_floor = 0.001;
  tight.compare("", json(R"({"m": 0})"), json(R"({"m": 0.1})"));
  EXPECT_EQ(tight.problems.size(), 1u);  // floor gone: 0.1/0.001 >> 50%
}

}  // namespace
}  // namespace dstage
