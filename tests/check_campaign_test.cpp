// End-to-end consistency campaign, run under the ctest label `campaign`
// (CI runs a larger sweep via tools/campaign; this keeps a fast,
// deterministic slice in the default test suite).
#include <gtest/gtest.h>

#include "check/campaign.hpp"

namespace dstage::check {
namespace {

TEST(CampaignTest, MixedSchemeCampaignPassesAllInvariants) {
  CampaignOptions opts;
  opts.gen.count = 20;
  opts.gen.seed = 3;
  opts.threads = 2;
  const CampaignResult result = run_campaign(opts);
  EXPECT_EQ(result.schedules, 20);
  EXPECT_EQ(result.passed, 20);
  EXPECT_TRUE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    ADD_FAILURE() << f.schedule.repro() << "\n" << f.report.summary();
  }
}

TEST(CampaignTest, VerdictIndependentOfThreadCount) {
  CampaignOptions opts;
  opts.gen.count = 12;
  opts.gen.seed = 11;
  opts.shrink = false;
  opts.threads = 1;
  const CampaignResult serial = run_campaign(opts);
  opts.threads = 4;
  const CampaignResult parallel = run_campaign(opts);
  EXPECT_EQ(serial.passed, parallel.passed);
  EXPECT_EQ(serial.total_failures_injected, parallel.total_failures_injected);
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].schedule, parallel.failures[i].schedule);
  }
}

TEST(CampaignTest, MemoryGovernedCampaignExercisesSpillAndBackpressure) {
  // A 512 MB/server budget on the Table-II-sized campaign workload is
  // tight enough that both relief mechanisms fire (versions spilled to the
  // PFS, puts bounced with RetryLater) while every recovery invariant
  // still holds — the oracle's read-equivalence and durability checks run
  // against memory-governed references.
  CampaignOptions opts;
  opts.gen.count = 8;
  opts.gen.seed = 3;
  opts.gen.schemes = {core::Scheme::kUncoordinated, core::Scheme::kHybrid};
  opts.gen.memory_budget_mb = 512;
  opts.threads = 2;
  const CampaignResult result = run_campaign(opts);
  EXPECT_EQ(result.passed, 8);
  EXPECT_TRUE(result.ok());
  for (const CampaignFailure& f : result.failures) {
    ADD_FAILURE() << f.schedule.repro() << "\n" << f.report.summary();
  }
  EXPECT_GT(result.spilled_versions, 0u);
  EXPECT_GT(result.puts_rejected, 0u);
  EXPECT_GT(result.backpressure_waits, 0u);
}

TEST(CampaignTest, SkipReplaySabotageFailsAndShrinks) {
  CampaignOptions opts;
  opts.gen.count = 12;
  opts.gen.seed = 1;
  // Logging schemes only: the sabotage disables their replay stage.
  opts.gen.schemes = {core::Scheme::kUncoordinated, core::Scheme::kHybrid};
  opts.threads = 2;
  opts.sabotage = Sabotage::kSkipReplay;
  opts.max_shrunk = 2;
  const CampaignResult result = run_campaign(opts);
  ASSERT_FALSE(result.ok());
  // The shrinker must deliver a small reproducer for the sabotage.
  bool small_repro = false;
  for (const CampaignFailure& f : result.failures) {
    EXPECT_FALSE(f.report.ok());
    if (f.shrink_attempts > 0 && f.shrunk.failures.size() <= 2) {
      small_repro = true;
    }
  }
  EXPECT_TRUE(small_repro);
}

}  // namespace
}  // namespace dstage::check
