#include "util/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/rng.hpp"

namespace dstage {
namespace {

TEST(HilbertTest, Order1EnumeratesAllEightCells) {
  HilbertCurve h(1);
  EXPECT_EQ(h.length(), 8u);
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 2; ++x)
    for (std::uint32_t y = 0; y < 2; ++y)
      for (std::uint32_t z = 0; z < 2; ++z) seen.insert(h.index_of(x, y, z));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(HilbertTest, RoundTripOrder3Exhaustive) {
  HilbertCurve h(3);
  for (std::uint64_t idx = 0; idx < h.length(); ++idx) {
    auto p = h.point_of(idx);
    EXPECT_EQ(h.index_of(p[0], p[1], p[2]), idx);
  }
}

TEST(HilbertTest, BijectiveOrder3) {
  HilbertCurve h(3);
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z) {
        auto idx = h.index_of(x, y, z);
        EXPECT_LT(idx, h.length());
        EXPECT_TRUE(seen.insert(idx).second)
            << "duplicate index " << idx << " at " << x << "," << y << ","
            << z;
      }
  EXPECT_EQ(seen.size(), h.length());
}

TEST(HilbertTest, ConsecutiveIndicesAreAdjacentCells) {
  // The defining locality property of the Hilbert curve: successive curve
  // positions differ by exactly one step along exactly one axis.
  HilbertCurve h(4);
  auto prev = h.point_of(0);
  for (std::uint64_t idx = 1; idx < h.length(); ++idx) {
    auto cur = h.point_of(idx);
    int manhattan = 0;
    for (int a = 0; a < 3; ++a) {
      manhattan += std::abs(static_cast<int>(cur[static_cast<std::size_t>(a)]) -
                            static_cast<int>(prev[static_cast<std::size_t>(a)]));
    }
    ASSERT_EQ(manhattan, 1) << "discontinuity at index " << idx;
    prev = cur;
  }
}

TEST(HilbertTest, RandomRoundTripHighOrder) {
  HilbertCurve h(10);
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_u64(0, 1023));
    const auto y = static_cast<std::uint32_t>(rng.uniform_u64(0, 1023));
    const auto z = static_cast<std::uint32_t>(rng.uniform_u64(0, 1023));
    auto idx = h.index_of(x, y, z);
    auto p = h.point_of(idx);
    EXPECT_EQ(p[0], x);
    EXPECT_EQ(p[1], y);
    EXPECT_EQ(p[2], z);
  }
}

TEST(HilbertTest, RejectsBadArguments) {
  EXPECT_THROW(HilbertCurve(0), std::invalid_argument);
  EXPECT_THROW(HilbertCurve(21), std::invalid_argument);
  HilbertCurve h(2);
  EXPECT_THROW((void)h.index_of(4, 0, 0), std::out_of_range);
  EXPECT_THROW((void)h.point_of(h.length()), std::out_of_range);
}

}  // namespace
}  // namespace dstage
