// Property-based sweeps over seeds, schemes and failure counts: the
// workflow-level invariants of Section III must hold for *every* execution,
// not just the hand-picked ones.
#include <gtest/gtest.h>

#include <tuple>

#include "core/executor.hpp"
#include "core/setups.hpp"

namespace dstage::core {
namespace {

WorkflowSpec sweep_spec(Scheme scheme, int failures, std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(scheme);
  spec.total_ts = 10;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  return spec;
}

class SchemeSeedSweep
    : public ::testing::TestWithParam<std::tuple<Scheme, int, int>> {};

TEST_P(SchemeSeedSweep, CompletesAllTimesteps) {
  const auto [scheme, failures, seed] = GetParam();
  WorkflowRunner runner(
      sweep_spec(scheme, failures, static_cast<std::uint64_t>(seed)));
  auto m = runner.run();
  for (const auto& c : m.components) {
    EXPECT_EQ(c.timesteps_done - c.timesteps_reworked, 10)
        << scheme_name(scheme) << " seed " << seed;
  }
  EXPECT_EQ(m.failures_injected, failures);
}

TEST_P(SchemeSeedSweep, LoggedSchemesAreAnomalyFree) {
  const auto [scheme, failures, seed] = GetParam();
  if (!scheme_uses_logging(scheme) && scheme != Scheme::kCoordinated) {
    GTEST_SKIP() << "consistency only guaranteed for Co/Un/Hy";
  }
  WorkflowRunner runner(
      sweep_spec(scheme, failures, static_cast<std::uint64_t>(seed)));
  auto m = runner.run();
  EXPECT_EQ(m.total_anomalies(), 0)
      << scheme_name(scheme) << " failures=" << failures << " seed=" << seed;
  EXPECT_EQ(m.staging.replay_mismatches, 0u);
}

TEST_P(SchemeSeedSweep, SuppressionOnlyHappensUnderLoggedReplay) {
  const auto [scheme, failures, seed] = GetParam();
  WorkflowRunner runner(
      sweep_spec(scheme, failures, static_cast<std::uint64_t>(seed)));
  auto m = runner.run();
  if (!scheme_uses_logging(scheme)) {
    EXPECT_EQ(m.staging.puts_suppressed, 0u);
  }
  if (failures == 0) {
    EXPECT_EQ(m.staging.puts_suppressed, 0u);
    EXPECT_EQ(m.staging.gets_from_log, 0u);
    for (const auto& c : m.components) EXPECT_EQ(c.failures, 0);
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<Scheme, int, int>>& info) {
  return std::string(scheme_name(std::get<0>(info.param))) + "_f" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemeSeedSweep,
    ::testing::Combine(
        ::testing::Values(Scheme::kCoordinated, Scheme::kUncoordinated,
                          Scheme::kIndividual, Scheme::kHybrid),
        ::testing::Values(0, 1, 2),
        ::testing::Values(1, 4, 7, 13)),
    sweep_name);

class FailureTimingSweep : public ::testing::TestWithParam<int> {};

TEST_P(FailureTimingSweep, UncoordinatedConsistentForEverySeed) {
  // Wider seed sweep so failures land at many different timesteps and
  // phases, in both components.
  const int seed = GetParam();
  WorkflowRunner runner(sweep_spec(Scheme::kUncoordinated, 1,
                                   static_cast<std::uint64_t>(seed)));
  auto m = runner.run();
  EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
  EXPECT_EQ(m.staging.replay_mismatches, 0u) << "seed " << seed;
  for (const auto& c : m.components) {
    EXPECT_EQ(c.timesteps_done - c.timesteps_reworked, 10);
  }
}

TEST_P(FailureTimingSweep, HybridConsistentForEverySeed) {
  const int seed = GetParam();
  WorkflowRunner runner(
      sweep_spec(Scheme::kHybrid, 1, static_cast<std::uint64_t>(seed)));
  auto m = runner.run();
  EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
}

TEST_P(FailureTimingSweep, CoordinatedConsistentForEverySeed) {
  const int seed = GetParam();
  WorkflowRunner runner(
      sweep_spec(Scheme::kCoordinated, 1, static_cast<std::uint64_t>(seed)));
  auto m = runner.run();
  EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureTimingSweep, ::testing::Range(1, 26));

TEST(PropertyTest, DoubleFailureOfSameComponentRecovers) {
  // Seeds where both failures hit the simulation exercise failure-during-
  // replay re-entry; sweep to find and verify several.
  int exercised = 0;
  for (std::uint64_t seed = 1; seed <= 20 && exercised < 5; ++seed) {
    WorkflowSpec spec = sweep_spec(Scheme::kUncoordinated, 2, seed);
    WorkflowRunner runner(spec);
    auto m = runner.run();
    EXPECT_EQ(m.total_anomalies(), 0) << "seed " << seed;
    if (m.component("simulation").failures == 2) ++exercised;
  }
  EXPECT_GT(exercised, 0);
}

TEST(PropertyTest, ExecutionTimeOrderingHoldsOnAverage) {
  // Paper Fig. 9(e): In <= Un ~ Hy < Co under failures, summed over seeds.
  double co = 0, un = 0, hy = 0, in = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    co += WorkflowRunner(sweep_spec(Scheme::kCoordinated, 1, seed))
              .run().total_time_s;
    un += WorkflowRunner(sweep_spec(Scheme::kUncoordinated, 1, seed))
              .run().total_time_s;
    hy += WorkflowRunner(sweep_spec(Scheme::kHybrid, 1, seed))
              .run().total_time_s;
    in += WorkflowRunner(sweep_spec(Scheme::kIndividual, 1, seed))
              .run().total_time_s;
  }
  EXPECT_LT(un, co);
  EXPECT_LT(hy, co);
  EXPECT_LE(in, un * 1.001);  // In is the no-consistency lower bound
  EXPECT_LT(un, in * 1.05);   // ...and Un stays within a few % of it
}

TEST(PropertyTest, MemoryGrowsWithCheckpointPeriod) {
  // Paper Fig. 9(d): longer checkpoint periods retain more logged data.
  double prev = 0;
  for (int period : {2, 4, 6}) {
    WorkflowSpec spec = table2_setup(Scheme::kUncoordinated, 1.0, period,
                                     period + 1);
    spec.total_ts = 12;
    WorkflowRunner runner(spec);
    auto m = runner.run();
    const double mean = m.staging.total_bytes_mean;
    EXPECT_GT(mean, prev) << "period " << period;
    prev = mean;
  }
}

TEST(PropertyTest, MemoryGrowsWithSubsetFraction) {
  // Paper Fig. 9(c): more data exchanged, more staged and logged bytes.
  double prev = 0;
  for (double fraction : {0.2, 0.6, 1.0}) {
    WorkflowSpec spec = table2_setup(Scheme::kUncoordinated, fraction);
    spec.total_ts = 10;
    WorkflowRunner runner(spec);
    auto m = runner.run();
    EXPECT_GT(m.staging.total_bytes_mean, prev);
    prev = m.staging.total_bytes_mean;
  }
}

}  // namespace
}  // namespace dstage::core
