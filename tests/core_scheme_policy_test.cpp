// Unit tests for the SchemePolicy strategy layer: factory wiring, logging
// and proactive predicates, the coordinated barrier cost, and the paper's
// per-scheme recovery semantics (hybrid failover without replay, Fig. 2
// anomalies under the unlogged individual scheme).
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/scheme/policy.hpp"
#include "core/setups.hpp"

namespace dstage::core {
namespace {

WorkflowSpec small_spec(Scheme scheme, int failures, std::uint64_t seed) {
  WorkflowSpec spec = table2_setup(scheme);
  spec.total_ts = 12;
  spec.failures.count = failures;
  spec.failures.seed = seed;
  return spec;
}

TEST(SchemePolicyTest, FactoryMapsEveryScheme) {
  for (Scheme s : {Scheme::kNone, Scheme::kCoordinated, Scheme::kUncoordinated,
                   Scheme::kIndividual, Scheme::kHybrid}) {
    auto policy = make_scheme_policy(s);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->scheme(), s);
    EXPECT_STREQ(policy->name(), scheme_name(s));
    EXPECT_EQ(policy->uses_logging(), scheme_uses_logging(s));
  }
}

TEST(SchemePolicyTest, ComponentLoggedFollowsMethodAndScheme) {
  ComponentSpec cr;
  cr.name = "cr";
  ComponentSpec repl;
  repl.name = "repl";
  repl.method = FtMethod::kReplication;

  auto un = make_scheme_policy(Scheme::kUncoordinated);
  EXPECT_TRUE(un->component_logged(cr));
  EXPECT_FALSE(un->component_logged(repl));  // replicas never replay

  auto in = make_scheme_policy(Scheme::kIndividual);
  EXPECT_FALSE(in->component_logged(cr));  // no logging at all

  auto hy = make_scheme_policy(Scheme::kHybrid);
  EXPECT_TRUE(hy->component_logged(cr));
  EXPECT_FALSE(hy->component_logged(repl));
}

TEST(SchemePolicyTest, ProactiveEligibility) {
  ComponentSpec cr;
  ComponentSpec repl;
  repl.method = FtMethod::kReplication;

  EXPECT_FALSE(make_scheme_policy(Scheme::kNone)->proactive_eligible(cr));
  EXPECT_TRUE(
      make_scheme_policy(Scheme::kUncoordinated)->proactive_eligible(cr));
  EXPECT_TRUE(make_scheme_policy(Scheme::kHybrid)->proactive_eligible(cr));
  EXPECT_FALSE(make_scheme_policy(Scheme::kHybrid)->proactive_eligible(repl));
}

TEST(SchemePolicyTest, CoordinatedBarrierCostIsAlphaLogP) {
  WorkflowRunner runner(small_spec(Scheme::kCoordinated, 0, 1));
  const auto services = runner.runtime().services();
  const auto expected =
      runner.runtime().spec().costs.barrier_time(services.total_app_cores());
  EXPECT_EQ(runner.policy().barrier_cost(services), expected);
  EXPECT_GT(expected, sim::Duration{0});
}

TEST(SchemePolicyTest, NonCoordinatedSchemesPayNoBarrier) {
  for (Scheme s : {Scheme::kNone, Scheme::kUncoordinated, Scheme::kIndividual,
                   Scheme::kHybrid}) {
    WorkflowRunner runner(small_spec(s, 0, 1));
    EXPECT_EQ(runner.policy().barrier_cost(runner.runtime().services()),
              sim::Duration{0})
        << scheme_name(s);
  }
}

TEST(SchemePolicyTest, CoordinatedRuntimeGrowsWithBarrierAlpha) {
  auto base = small_spec(Scheme::kCoordinated, 0, 1);
  auto free_spec = base;
  free_spec.costs.barrier_alpha_s = 0;
  WorkflowRunner with_alpha(base);
  WorkflowRunner without_alpha(free_spec);
  EXPECT_GT(with_alpha.run().total_time_s,
            without_alpha.run().total_time_s);
}

// Fig. 6: a failure of the replicated analytic under Hy fails over to the
// replica — no rollback, no rework, and no staging replay.
TEST(SchemePolicyTest, HybridAnalyticFailoverTriggersNoReplay) {
  // Seed 16 places the single failure on the analytic (found by scan;
  // guarded by the assertion below).
  WorkflowRunner runner(small_spec(Scheme::kHybrid, 1, 16));
  auto m = runner.run();
  const auto& analytic = m.component("analytic");
  ASSERT_EQ(analytic.failures, 1);
  EXPECT_EQ(analytic.timesteps_reworked, 0);
  EXPECT_EQ(analytic.checkpoints, 0);
  EXPECT_EQ(analytic.timesteps_done, 12);
  EXPECT_EQ(m.total_anomalies(), 0);
  // Failover is not a checkpoint/restart: the recovery pipeline's restart
  // stages never run, so no recovery or replay milestones are traced.
  EXPECT_TRUE(runner.trace().of_kind(TraceKind::kRecoveryStart).empty());
  EXPECT_TRUE(runner.trace().of_kind(TraceKind::kReplayDone).empty());
  EXPECT_EQ(runner.trace().of_kind(TraceKind::kFailure).size(), 1u);
}

// Fig. 2: without logging, an individually-restarted component re-reads
// stale coupled data — the consistency anomalies the paper's scheme exists
// to prevent. The logged uncoordinated scheme sees none on the same seed.
TEST(SchemePolicyTest, IndividualSchemeExhibitsAnomaliesUnCannotSee) {
  auto in = WorkflowRunner(small_spec(Scheme::kIndividual, 1, 16)).run();
  EXPECT_GT(in.total_anomalies(), 0);

  auto un = WorkflowRunner(small_spec(Scheme::kUncoordinated, 1, 16)).run();
  EXPECT_EQ(un.total_anomalies(), 0);
  EXPECT_EQ(un.failures_injected, 1);
}

}  // namespace
}  // namespace dstage::core
