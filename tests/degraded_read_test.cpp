// Degraded reads: reconstructing owner chunks from redundancy fragments.
// Exhaustive loss-pattern coverage over the RS(k, m) configurations the
// staging policies use, plus the typed data-loss error when losses exceed
// the policy's tolerance.
#include "staging/degraded_read.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "resilience/reed_solomon.hpp"
#include "staging/types.hpp"

namespace dstage::staging {
namespace {

constexpr double kBytesPerPoint = 8.0;
constexpr std::uint64_t kMemScale = 64;

Chunk owner_chunk(const Box& region, Version version = 3) {
  return make_chunk("f", version, region, kBytesPerPoint, kMemScale);
}

FragmentPut fragment_of(const Chunk& chunk, int frag_index,
                        std::uint64_t nominal,
                        std::vector<std::uint8_t> bytes) {
  FragmentPut f;
  f.owner = 0;
  f.var = chunk.var;
  f.version = chunk.version;
  f.region = chunk.region;
  f.frag_index = frag_index;
  f.nominal_bytes = nominal;
  f.original_physical = chunk.data->size();
  f.content_key = chunk.content_key;
  f.data = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  return f;
}

/// The full RS fragment set for one owner chunk, index 0 .. k+m-1, shaped
/// exactly like StagingServer::push_fragments shapes them.
std::vector<FragmentPut> rs_fragments(const Chunk& chunk,
                                      const resilience::ResiliencePolicy& p) {
  const resilience::ReedSolomon rs(p.rs_k, p.rs_m);
  const auto shards = rs.encode(std::span{*chunk.data});
  const std::uint64_t shard_nominal =
      chunk.nominal_bytes / static_cast<std::uint64_t>(p.rs_k);
  std::vector<FragmentPut> frags;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    frags.push_back(fragment_of(chunk, static_cast<int>(i), shard_nominal,
                                shards[i]));
  }
  return frags;
}

resilience::ResiliencePolicy ec_policy(int k, int m) {
  resilience::ResiliencePolicy p;
  p.kind = resilience::Redundancy::kErasureCode;
  p.rs_k = k;
  p.rs_m = m;
  return p;
}

ObjectDesc desc_for(const Chunk& chunk) {
  ObjectDesc d;
  d.var = chunk.var;
  d.version = chunk.version;
  d.region = chunk.region;
  return d;
}

TEST(DegradedReadTest, ExhaustiveErasureLossPatterns) {
  // For every deployed RS shape, walk every subset of surviving peer
  // fragments (the owner's shard 0 died with the owner). Any >= k
  // survivors reconstruct byte-identical data; fewer raise the typed
  // data-loss error.
  const Box region = Box::from_dims(8, 8, 8);
  for (const auto& [k, m] : {std::pair{2, 1}, std::pair{2, 2},
                             std::pair{3, 2}, std::pair{4, 2}}) {
    const auto policy = ec_policy(k, m);
    const Chunk chunk = owner_chunk(region);
    const auto all = rs_fragments(chunk, policy);
    const int peers = k + m - 1;  // shards 1 .. k+m-1 live on peers
    for (unsigned mask = 0; mask < (1u << peers); ++mask) {
      std::vector<FragmentPut> survivors;
      for (int i = 0; i < peers; ++i) {
        if (mask & (1u << i)) survivors.push_back(all[1 + i]);
      }
      const int alive = static_cast<int>(survivors.size());
      const std::string label = "RS(" + std::to_string(k) + "," +
                                std::to_string(m) + ") mask " +
                                std::to_string(mask);
      if (alive >= k) {
        const auto rec =
            reconstruct_from_fragments(survivors, desc_for(chunk), policy);
        ASSERT_EQ(rec.pieces.size(), 1u) << label;
        ASSERT_TRUE(rec.pieces[0].data != nullptr) << label;
        EXPECT_EQ(*rec.pieces[0].data, *chunk.data) << label;
        EXPECT_EQ(rec.chunks_rebuilt, 1u) << label;
      } else {
        EXPECT_THROW(
            reconstruct_from_fragments(survivors, desc_for(chunk), policy),
            DataLossError)
            << label;
      }
    }
  }
}

TEST(DegradedReadTest, OwnerShardAloneCountsTowardK) {
  // A resilver in flight can leave the owner's systematic shard 0 on the
  // wire; it participates like any other shard.
  const auto policy = ec_policy(2, 1);
  const Chunk chunk = owner_chunk(Box::from_dims(8, 8, 8));
  const auto all = rs_fragments(chunk, policy);
  const std::vector<FragmentPut> survivors = {all[0], all[1]};
  const auto rec =
      reconstruct_from_fragments(survivors, desc_for(chunk), policy);
  ASSERT_EQ(rec.pieces.size(), 1u);
  EXPECT_EQ(*rec.pieces[0].data, *chunk.data);
}

TEST(DegradedReadTest, ReplicationLossPatterns) {
  resilience::ResiliencePolicy policy;
  policy.kind = resilience::Redundancy::kReplication;
  policy.replicas = 3;
  const Chunk chunk = owner_chunk(Box::from_dims(8, 8, 8));
  // Peer replicas are full copies (frag_index 1 and 2).
  std::vector<FragmentPut> replicas;
  for (int j = 1; j < policy.replicas; ++j) {
    replicas.push_back(
        fragment_of(chunk, j, chunk.nominal_bytes, *chunk.data));
  }
  for (unsigned mask = 0; mask < 4u; ++mask) {
    std::vector<FragmentPut> survivors;
    for (int i = 0; i < 2; ++i) {
      if (mask & (1u << i)) survivors.push_back(replicas[i]);
    }
    if (survivors.empty()) {
      EXPECT_THROW(
          reconstruct_from_fragments(survivors, desc_for(chunk), policy),
          DataLossError);
    } else {
      const auto rec =
          reconstruct_from_fragments(survivors, desc_for(chunk), policy);
      ASSERT_EQ(rec.pieces.size(), 1u);
      EXPECT_EQ(*rec.pieces[0].data, *chunk.data);
      EXPECT_EQ(rec.nominal_bytes, chunk.nominal_bytes);
    }
  }
}

TEST(DegradedReadTest, CorruptFragmentFailsVerificationNotServes) {
  const auto policy = ec_policy(2, 1);
  const Chunk chunk = owner_chunk(Box::from_dims(8, 8, 8));
  auto all = rs_fragments(chunk, policy);
  // Flip one byte of a surviving shard: the decode "succeeds" but the
  // rebuilt payload must fail content verification and read as loss.
  std::vector<std::uint8_t> bad = *all[1].data;
  bad[bad.size() / 2] ^= 0xff;
  std::vector<FragmentPut> survivors = {
      fragment_of(chunk, 1, all[1].nominal_bytes, std::move(bad)), all[2]};
  EXPECT_THROW(
      reconstruct_from_fragments(survivors, desc_for(chunk), policy),
      DataLossError);
}

TEST(DegradedReadTest, MultiChunkRegionsReassembleAndClip) {
  // Two owner chunks protect adjacent slabs; a read spanning both
  // reconstructs both, and a read of one slab only needs that slab's
  // fragments.
  const auto policy = ec_policy(2, 1);
  Box left = Box::from_dims(8, 8, 8);
  Box right = left;
  right.lo.x += 8;
  right.hi.x += 8;
  const Chunk a = owner_chunk(left);
  const Chunk b = owner_chunk(right);
  auto frags = rs_fragments(a, policy);
  const auto more = rs_fragments(b, policy);
  frags.insert(frags.end(), more.begin() + 1, more.end());

  Box both = left;
  both.hi.x = right.hi.x;
  ObjectDesc desc;
  desc.var = a.var;
  desc.version = a.version;
  desc.region = both;
  const auto rec = reconstruct_from_fragments(frags, desc, policy);
  EXPECT_EQ(rec.chunks_rebuilt, 2u);
  std::uint64_t points = 0;
  for (const Chunk& piece : rec.pieces) {
    points += static_cast<std::uint64_t>(
        piece.region.intersection(both).volume());
  }
  EXPECT_EQ(points, static_cast<std::uint64_t>(both.volume()));

  // Fragments for the right slab alone cannot cover a read of both.
  const std::vector<FragmentPut> right_only(more.begin() + 1, more.end());
  EXPECT_THROW(reconstruct_from_fragments(right_only, desc, policy),
               DataLossError);
}

TEST(DegradedReadTest, DataLossErrorCarriesTypedContext) {
  const auto policy = ec_policy(4, 2);
  const Chunk chunk = owner_chunk(Box::from_dims(8, 8, 8), /*version=*/7);
  const auto all = rs_fragments(chunk, policy);
  // Three survivors < k = 4.
  const std::vector<FragmentPut> survivors(all.begin() + 1, all.begin() + 4);
  try {
    (void)reconstruct_from_fragments(survivors, desc_for(chunk), policy);
    FAIL() << "expected DataLossError";
  } catch (const DataLossError& e) {
    EXPECT_EQ(e.var(), "f");
    EXPECT_EQ(e.version(), 7u);
    EXPECT_NE(std::string(e.what()).find("data loss"), std::string::npos);
  }
}

}  // namespace
}  // namespace dstage::staging
