// Epoch-aware ownership in the spatial index: membership changes move the
// minimum set of cells, snapshots stay stable while the live map
// rebalances, and malformed grids are rejected up front.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "dht/spatial_index.hpp"

namespace dstage::dht {
namespace {

constexpr int kCells = 8;
const Box kDomain = Box::from_dims(64, 64, 64);

std::map<std::uint64_t, int> owner_map(const SpatialIndex& index) {
  std::map<std::uint64_t, int> owners;
  const PlacementView view = index.snapshot();
  for (std::uint64_t c = 0; c < view.owners->size(); ++c) {
    owners[c] = (*view.owners)[c];
  }
  return owners;
}

TEST(DhtElasticTest, RejectsNonPositiveCellsPerAxis) {
  EXPECT_THROW(SpatialIndex(kDomain, 2, 0), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(kDomain, 2, -1), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(kDomain, 2, -8), std::invalid_argument);
  // Power-of-two grids stay accepted.
  EXPECT_NO_THROW(SpatialIndex(kDomain, 2, 1));
  EXPECT_NO_THROW(SpatialIndex(kDomain, 2, 8));
}

TEST(DhtElasticTest, EpochZeroMatchesFixedGroupPlacement) {
  // The elastic index at epoch 0 must place exactly like a fresh
  // fixed-group index: the golden digests ride on this equivalence.
  SpatialIndex fixed(kDomain, 3, kCells);
  SpatialIndex elastic(kDomain, 3, kCells);
  (void)elastic.snapshot();
  EXPECT_EQ(elastic.epoch(), 0u);
  EXPECT_EQ(owner_map(fixed), owner_map(elastic));
  EXPECT_EQ(elastic.active_servers(), (std::vector<int>{0, 1, 2}));
}

TEST(DhtElasticTest, AddServerMovesOnlyReportedCells) {
  SpatialIndex index(kDomain, 3, kCells);
  const auto before = owner_map(index);

  const std::vector<CellMove> moves = index.add_server(3);
  EXPECT_EQ(index.epoch(), 1u);
  EXPECT_FALSE(moves.empty());

  const auto after = owner_map(index);
  std::set<std::uint64_t> moved;
  for (const CellMove& m : moves) {
    moved.insert(m.cell);
    EXPECT_EQ(m.to, 3);
    EXPECT_EQ(before.at(m.cell), m.from);
    EXPECT_EQ(after.at(m.cell), 3);
  }
  // Every cell not named in the move list keeps its owner.
  for (const auto& [cell, owner] : before) {
    if (moved.count(cell) == 0) EXPECT_EQ(after.at(cell), owner);
  }
  // The newcomer's share is an even split (within one cell per donor).
  const auto per_server = index.cells_per_server();
  const std::uint64_t total = kCells * std::uint64_t{kCells} * kCells;
  EXPECT_NEAR(static_cast<double>(per_server[3]),
              static_cast<double>(total) / 4.0, 3.0);
}

TEST(DhtElasticTest, RemoveServerReassignsOnlyItsCells) {
  SpatialIndex index(kDomain, 4, kCells);
  const auto before = owner_map(index);

  const std::vector<CellMove> moves = index.remove_server(2);
  EXPECT_EQ(index.epoch(), 1u);
  const auto after = owner_map(index);

  std::set<std::uint64_t> moved;
  for (const CellMove& m : moves) {
    moved.insert(m.cell);
    EXPECT_EQ(m.from, 2);
    EXPECT_NE(m.to, 2);
    EXPECT_EQ(after.at(m.cell), m.to);
  }
  for (const auto& [cell, owner] : before) {
    if (owner == 2) {
      EXPECT_TRUE(moved.count(cell) > 0);
    } else {
      EXPECT_EQ(after.at(cell), owner);
    }
  }
  const auto active = index.active_servers();
  EXPECT_EQ(active, (std::vector<int>{0, 1, 3}));
}

TEST(DhtElasticTest, SnapshotStaysStableAcrossRebalance) {
  SpatialIndex index(kDomain, 3, kCells);
  const PlacementView old_view = index.snapshot();
  const auto moves = index.add_server(3);
  ASSERT_FALSE(moves.empty());

  // Pick a moved cell with a non-empty box and compare routing through the
  // stale snapshot vs the live map.
  for (const CellMove& m : moves) {
    const Box box = index.cell_box_of(m.cell);
    if (box.empty()) continue;
    const auto live = index.place(box);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0].server, m.to);
    const auto stale = index.place(box, old_view);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].server, m.from);
    EXPECT_EQ(index.sole_owner(box), m.to);
    return;
  }
  FAIL() << "no moved cell with a non-empty box";
}

TEST(DhtElasticTest, GrowAndShrinkKeepsFullCoverage) {
  SpatialIndex index(kDomain, 3, kCells);
  (void)index.add_server(3);
  (void)index.add_server(4);
  (void)index.remove_server(0);
  EXPECT_EQ(index.epoch(), 3u);
  EXPECT_EQ(index.active_servers(), (std::vector<int>{1, 2, 3, 4}));

  // Whole-domain query covers every point across the active set only.
  std::uint64_t points = 0;
  for (const Placement& p : index.place(kDomain)) {
    EXPECT_NE(p.server, 0);
    points += p.total_points;
  }
  EXPECT_EQ(points, static_cast<std::uint64_t>(kDomain.volume()));
}

TEST(DhtElasticTest, SoleOwnerDetectsSplitRegions) {
  SpatialIndex index(kDomain, 2, kCells);
  // The whole domain spans both servers.
  EXPECT_EQ(index.sole_owner(kDomain), -1);
  // A single cell has exactly one owner.
  const Box cell = index.cell_box(0, 0, 0);
  EXPECT_GE(index.sole_owner(cell), 0);
  // Outside the domain there is no owner.
  Box outside = Box::from_dims(4, 4, 4);
  outside.lo.x += 1000;
  outside.hi.x += 1000;
  EXPECT_EQ(index.sole_owner(outside), -1);
}

}  // namespace
}  // namespace dstage::dht
