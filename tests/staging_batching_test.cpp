// Opt-in request coalescing (net::Config::batching): the client's DHT
// shard fan-out aggregates same-destination chunk puts into one BatchPut
// per server. Off by default; with it on, the same data lands with fewer
// fabric messages and identical read results.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/executor.hpp"
#include "core/setups.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/server.hpp"

namespace dstage::staging {
namespace {

struct Rig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  Box domain = Box::from_dims(64, 64, 64);
  dht::SpatialIndex index;
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<StagingServer>> servers;

  explicit Rig(int nservers) : index(domain, nservers, 8) {
    ServerParams sp;
    sp.logging = true;
    for (int s = 0; s < nservers; ++s) {
      auto vp =
          cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(std::make_unique<StagingServer>(cluster, vp, sp));
      servers.back()->register_var("f", {{1, true}});
    }
    std::vector<net::EndpointId> endpoints;
    for (auto vp : server_vprocs)
      endpoints.push_back(cluster.vproc(vp).endpoint);
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s]->set_peers(static_cast<int>(s), endpoints);
      servers[s]->start();
    }
  }

  std::unique_ptr<StagingClient> make_client(AppId app, bool batching) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.batching = batching;
    return std::make_unique<StagingClient>(cluster, index, server_vprocs,
                                           vp, cp);
  }
};

struct PutOutcome {
  PutResult put;
  GetResult get;
  std::uint64_t fabric_packets = 0;
  std::uint64_t fabric_bytes = 0;
  std::uint64_t server_puts = 0;
  std::uint64_t batch_puts = 0;
};

PutOutcome run_one(bool batching) {
  Rig rig(4);
  auto producer = rig.make_client(0, batching);
  auto consumer = rig.make_client(1, /*batching=*/false);
  PutOutcome out;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    out.put = co_await producer->put(ctx, "f", 1, rig.domain);
    out.fabric_packets = rig.fabric.packets_sent();
    out.fabric_bytes = rig.fabric.bytes_sent();
    out.get = co_await consumer->get(ctx, "f", 1, rig.domain);
  });
  rig.eng.run();
  for (const auto& s : rig.servers) {
    out.server_puts += s->stats().puts;
    out.batch_puts += s->stats().batch_puts;
  }
  return out;
}

TEST(StagingBatchingTest, CoalescesShardFanOutIntoOneMessagePerServer) {
  const PutOutcome off = run_one(false);
  const PutOutcome on = run_one(true);

  // Same write, same shards, same per-chunk server work.
  EXPECT_EQ(on.put.pieces, off.put.pieces);
  EXPECT_EQ(on.put.nominal_bytes, off.put.nominal_bytes);
  EXPECT_EQ(on.server_puts, off.server_puts);

  // Without batching every piece is a message; with it, one per server.
  EXPECT_EQ(off.put.messages, off.put.pieces);
  EXPECT_EQ(off.batch_puts, 0u);
  ASSERT_GT(off.put.pieces, 4u);  // the sweep actually fans out
  EXPECT_EQ(on.put.messages, 4u);
  EXPECT_EQ(on.batch_puts, 4u);
  EXPECT_LT(on.fabric_packets, off.fabric_packets);

  // The envelope saving is real but bounded: one 64 B header per
  // coalesced chunk replaces a full per-message object header.
  EXPECT_LT(on.fabric_bytes, off.fabric_bytes);

  // Readers cannot tell the difference.
  EXPECT_EQ(on.get.nominal_bytes, off.get.nominal_bytes);
  EXPECT_EQ(on.get.wrong_version, 0);
  EXPECT_EQ(on.get.corrupt, 0);
}

TEST(StagingBatchingTest, WorkflowRunsCleanWithBatchingOn) {
  core::WorkflowSpec spec =
      core::table2_setup(core::Scheme::kUncoordinated);
  spec.total_ts = 6;
  spec.net.batching = true;
  core::WorkflowRunner runner(std::move(spec));
  const core::RunMetrics m = runner.run();

  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_GT(m.staging.batch_puts, 0u);
  EXPECT_GT(m.staging.puts, m.staging.batch_puts);  // real coalescing

  // The same spec without batching stages the same chunk population.
  core::WorkflowSpec base =
      core::table2_setup(core::Scheme::kUncoordinated);
  base.total_ts = 6;
  core::WorkflowRunner base_runner(std::move(base));
  const core::RunMetrics b = base_runner.run();
  EXPECT_EQ(m.staging.puts, b.staging.puts);
  EXPECT_EQ(b.staging.batch_puts, 0u);
  EXPECT_LT(m.fabric_packets, b.fabric_packets);
}

}  // namespace
}  // namespace dstage::staging
