// Multi-tenant staging invariants, pinned at the unit level: tenant key
// namespacing, per-tenant store accounting, tenant-scoped rollback leaving
// co-residents untouched, weighted fair-share admission math, and the
// per-tenant maintenance trigger (a tenant over its share gets spill relief
// even while the pooled watermark is quiet). The end-to-end isolation
// property — a bystander tenant's reads are bit-for-bit its solo run — is
// the oracle's invariant 6, exercised by the campaign tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/memory_governor.hpp"
#include "staging/object_store.hpp"
#include "staging/server.hpp"
#include "staging/spill_gateway.hpp"
#include "staging/tenant.hpp"

namespace dstage::staging {
namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

TEST(TenantKeyTest, HelpersRoundTrip) {
  // Default tenant: identity, so single-tenant keys (and golden digests)
  // are untouched.
  EXPECT_EQ(tenant_key(kDefaultTenant, "pressure"), "pressure");
  EXPECT_EQ(tenant_of("pressure"), kDefaultTenant);
  EXPECT_EQ(base_var("pressure"), "pressure");

  const std::string key = tenant_key(3, "pressure");
  EXPECT_NE(key, "pressure");
  EXPECT_NE(key.find(kTenantSep), std::string::npos);
  EXPECT_EQ(tenant_of(key), 3);
  EXPECT_EQ(base_var(key), "pressure");

  // Distinct tenants never collide on the same logical name.
  EXPECT_NE(tenant_key(1, "f"), tenant_key(2, "f"));
}

TEST(TenantStoreTest, PerTenantAccountingAndScopedRollback) {
  ObjectStore store(/*version_window=*/4);
  const Box box = Box::from_dims(8, 8, 8);
  auto put = [&](net::TenantId t, Version v) {
    Chunk c;
    c.var = tenant_key(t, "f");
    c.version = v;
    c.region = box;
    c.nominal_bytes = box.volume() * 8;
    store.put(std::move(c));
  };
  put(1, 1);
  put(1, 2);
  put(2, 1);

  const std::uint64_t per_version = box.volume() * 8;
  EXPECT_EQ(store.nominal_bytes(1), 2 * per_version);
  EXPECT_EQ(store.nominal_bytes(2), per_version);
  EXPECT_EQ(store.nominal_bytes(), 3 * per_version);
  EXPECT_EQ(store.tenants(), (std::vector<net::TenantId>{1, 2}));

  // Tenant 1 rolls back to version 1; tenant 2's namespace is untouched.
  const std::size_t dropped = store.drop_versions_above(
      1, [](const std::string& var) { return tenant_of(var) == 1; });
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(store.versions_of(tenant_key(1, "f")),
            (std::vector<Version>{1}));
  EXPECT_EQ(store.versions_of(tenant_key(2, "f")),
            (std::vector<Version>{1}));
  EXPECT_EQ(store.nominal_bytes(1), per_version);
  EXPECT_EQ(store.nominal_bytes(2), per_version);
  // Peaks keep the high-water mark from before the rollback.
  EXPECT_EQ(store.peak_nominal_bytes(1), 2 * per_version);
}

TEST(TenantGovernorTest, WeightedSharesAndTenantAdmission) {
  GovernorParams p;
  p.memory_budget = 100 * kMiB;
  p.tenant_weights = {{0, 3.0}, {1, 1.0}};
  MemoryGovernor gov(p);
  ASSERT_TRUE(gov.fair_share());

  // Shares split the hard watermark 3:1.
  EXPECT_EQ(gov.share_bytes(0), gov.hard_bytes() * 3 / 4);
  EXPECT_EQ(gov.share_bytes(1), gov.hard_bytes() / 4);
  // An unlisted tenant falls back to the full pooled watermark.
  EXPECT_EQ(gov.share_bytes(7), gov.hard_bytes());

  // Tenant 1's share is 22.5 MiB: a put fitting the pool but not the share
  // is rejected; the same put under tenant 0's share is admitted.
  const std::uint64_t incoming = 4 * kMiB;
  const std::uint64_t governed = 20 * kMiB;
  EXPECT_EQ(gov.admit(governed, incoming), MemoryGovernor::Admission::kAdmit);
  EXPECT_EQ(gov.admit_tenant(1, governed, incoming),
            MemoryGovernor::Admission::kReject);
  EXPECT_EQ(gov.admit_tenant(0, governed, incoming),
            MemoryGovernor::Admission::kAdmit);
  // Oversized-put livelock avoidance applies per share: a single put
  // bigger than the whole share goes through as an overrun.
  EXPECT_EQ(gov.admit_tenant(1, 0, 30 * kMiB),
            MemoryGovernor::Admission::kAdmitOverrun);

  // over_share is soft-share based (spill-victim preference).
  EXPECT_TRUE(gov.over_share(1, 20 * kMiB));
  EXPECT_FALSE(gov.over_share(0, 20 * kMiB));

  // Empty weights: fair_share off, per-tenant admission degenerates to the
  // pooled decision — the single-tenant fast path.
  GovernorParams pooled_params;
  pooled_params.memory_budget = 100 * kMiB;
  MemoryGovernor pooled(pooled_params);
  EXPECT_FALSE(pooled.fair_share());
  EXPECT_FALSE(pooled.over_share(1, 90 * kMiB));
}

struct TenantRig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  cluster::Pfs pfs{eng, {}};
  Box domain = Box::from_dims(64, 64, 64);  // 2 MiB nominal per version
  dht::SpatialIndex index;
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<StagingServer>> servers;
  std::unique_ptr<SpillGateway> gateway;

  TenantRig(int nservers, std::uint64_t budget_bytes,
            std::map<int, double> weights = {})
      : index(domain, nservers, 8) {
    ServerParams params;
    params.logging = true;
    params.governor.memory_budget = budget_bytes;
    params.governor.tenant_weights = std::move(weights);
    for (int s = 0; s < nservers; ++s) {
      auto vp =
          cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(std::make_unique<StagingServer>(cluster, vp, params));
      // Each tenant's namespaced key gets its own rollback-capable consumer
      // registration, so GC watermarks — and retention — are per-tenant.
      servers.back()->register_var(tenant_key(1, "f"), {{1, true}});
      servers.back()->register_var(tenant_key(2, "f"), {{1, true}});
    }
    std::vector<net::EndpointId> endpoints;
    for (auto vp : server_vprocs)
      endpoints.push_back(cluster.vproc(vp).endpoint);
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s]->set_peers(static_cast<int>(s), endpoints);
      servers[s]->start();
    }
    auto gw_vp = cluster.add_vproc("spill-gw", cluster.add_node());
    gateway = std::make_unique<SpillGateway>(cluster, gw_vp, pfs);
    gateway->start();
    for (auto& s : servers) s->set_spill_endpoint(gateway->endpoint());
  }

  std::unique_ptr<StagingClient> make_client(AppId app, net::TenantId tenant) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.tenant = tenant;
    cp.put_timeout = sim::seconds(15);
    cp.get_timeout = sim::seconds(30);
    return std::make_unique<StagingClient>(cluster, index, server_vprocs, vp,
                                           cp);
  }

  void run() { eng.run(); }
};

TEST(TenantRollbackTest, ScopedRollbackLeavesCoResidentTenantIntact) {
  // Tenants 1 and 2 share the group, both staging "f". Tenant 1's
  // coordinated restart rolls its staging state back to version 1; tenant
  // 2 must keep — and still verify — its version 2 afterwards.
  TenantRig rig(2, /*budget_bytes=*/0);
  auto c1 = rig.make_client(0, /*tenant=*/1);
  auto c2 = rig.make_client(1, /*tenant=*/2);
  std::uint64_t got = 0;
  int bad = 0;
  std::vector<Version> t1_versions, t2_versions;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 2; ++v) {
      co_await c1->put(ctx, "f", v, rig.domain);
      co_await c2->put(ctx, "f", v, rig.domain);
    }
    co_await c1->rollback_staging(ctx, /*version=*/1, /*tenant=*/1);
    auto gr = co_await c2->get(ctx, "f", 2, rig.domain);
    got = gr.nominal_bytes;
    bad = gr.wrong_version + gr.corrupt;
    for (const auto& s : rig.servers) {
      for (Version v : s->store().versions_of(tenant_key(1, "f")))
        t1_versions.push_back(v);
      for (Version v : s->store().versions_of(tenant_key(2, "f")))
        t2_versions.push_back(v);
    }
  });
  rig.run();
  EXPECT_EQ(got, rig.domain.volume() * 8);
  EXPECT_EQ(bad, 0);
  // Tenant 1's version 2 is gone everywhere; tenant 2 still holds both.
  for (Version v : t1_versions) EXPECT_LE(v, 1u);
  EXPECT_TRUE(std::count(t2_versions.begin(), t2_versions.end(), 2) > 0);
}

TEST(TenantGovernorTest, OverShareTenantGetsSpillReliefWhilePoolIsQuiet) {
  // Regression for the fair-share maintenance trigger: tenant 1's share is
  // a sliver of a large budget, so its log retention crosses the share
  // long before the pooled soft watermark is anywhere near. Maintenance
  // must fire on per-tenant pressure — otherwise tenant 1's puts bounce
  // off their share forever (RetryLater until the transport gives up) and
  // the run never finishes.
  TenantRig rig(2, /*budget_bytes=*/256 * kMiB,
                {{1, 1.0}, {2, 19.0}});
  auto hog = rig.make_client(0, /*tenant=*/1);
  auto bystander = rig.make_client(1, /*tenant=*/2);
  bool done = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await bystander->put(ctx, "f", 1, rig.domain);
    // 16 logged versions, never checkpointed: ~17 MiB retained per server
    // (the domain splits across both) against a ~11.5 MiB hard share —
    // while the pooled soft watermark sits at ~179 MiB, untouched.
    for (Version v = 1; v <= 16; ++v)
      co_await hog->put(ctx, "f", v, rig.domain);
    done = true;
  });
  rig.run();
  EXPECT_TRUE(done);  // no livelock: every put was eventually admitted
  std::uint64_t spilled = 0, governed = 0;
  for (const auto& s : rig.servers) {
    spilled += s->stats().spill_versions;
    governed += s->memory().governed();
  }
  // Relief came from spilling the over-share tenant...
  EXPECT_GT(spilled, 0u);
  // ...while the pool as a whole never even reached its soft watermark —
  // the pooled trigger alone would never have run.
  for (const auto& s : rig.servers) {
    EXPECT_LT(s->memory().governed(), (256 * kMiB * 7) / 10);
  }
  // The bystander felt nothing.
  EXPECT_EQ(bystander->rpc_stats().backpressure_waits, 0u);
  (void)governed;
}

}  // namespace
}  // namespace dstage::staging
