// Memory-governor edge cases: oversized-put overruns, spill vs GC races,
// replay read-through of spilled payloads, and the RetryLater backpressure
// protocol (including partially admitted batches). The happy path — spill
// and backpressure bounding a long run's footprint — is covered by the
// consistency campaign and the fig_memcap bench; these tests pin down the
// corners.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "dht/spatial_index.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/server.hpp"
#include "staging/spill_gateway.hpp"

namespace dstage::staging {
namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct Rig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  cluster::Pfs pfs{eng, {}};
  Box domain = Box::from_dims(64, 64, 64);  // 2 MiB nominal per version
  dht::SpatialIndex index;
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<StagingServer>> servers;
  std::unique_ptr<SpillGateway> gateway;

  Rig(int nservers, std::uint64_t budget_bytes, int cells = 8)
      : index(domain, nservers, cells) {
    ServerParams params;
    params.logging = true;
    params.governor.memory_budget = budget_bytes;
    for (int s = 0; s < nservers; ++s) {
      auto vp =
          cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(std::make_unique<StagingServer>(cluster, vp, params));
      servers.back()->register_var("f", {{1, true}});
    }
    std::vector<net::EndpointId> endpoints;
    for (auto vp : server_vprocs)
      endpoints.push_back(cluster.vproc(vp).endpoint);
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s]->set_peers(static_cast<int>(s), endpoints);
      servers[s]->start();
    }
    auto gw_vp = cluster.add_vproc("spill-gw", cluster.add_node());
    gateway = std::make_unique<SpillGateway>(cluster, gw_vp, pfs);
    gateway->start();
    for (auto& s : servers) s->set_spill_endpoint(gateway->endpoint());
  }

  std::unique_ptr<StagingClient> make_client(AppId app,
                                             bool batching = false) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.put_timeout = sim::seconds(15);
    cp.get_timeout = sim::seconds(30);
    cp.batching = batching;
    return std::make_unique<StagingClient>(cluster, index, server_vprocs, vp,
                                           cp);
  }

  template <class Pick>
  std::uint64_t stat_sum(Pick pick) const {
    std::uint64_t total = 0;
    for (const auto& s : servers) total += pick(s->stats());
    return total;
  }

  void run() { eng.run(); }
};

TEST(StagingGovernorTest, OversizedPutAdmittedAsOverrun) {
  // Budget far below a single chunk: rejecting would bounce the put on
  // every retry forever, so the governor lets it through and counts it.
  Rig rig(1, /*budget_bytes=*/64 << 10, /*cells=*/2);
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  bool done = false;
  std::uint64_t got = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 3; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);
    auto gr = co_await consumer->get(ctx, "f", 3, rig.domain);
    got = gr.nominal_bytes;
    done = true;
  });
  rig.run();
  EXPECT_TRUE(done);  // no livelock: every put completed
  EXPECT_EQ(got, rig.domain.volume() * 8);
  EXPECT_GT(rig.stat_sum([](const ServerStats& s) {
    return s.governor_overruns;
  }), 0u);
  EXPECT_EQ(rig.stat_sum([](const ServerStats& s) {
    return s.puts_rejected;
  }), 0u);
}

TEST(StagingGovernorTest, SpillAndBackpressureBoundTheFootprint) {
  // Tight-but-feasible budget: the log outgrows the soft watermark (spill)
  // and puts transiently cross the hard watermark (RetryLater) before the
  // spill catches up. Everything still completes, and reads verify.
  Rig rig(2, /*budget_bytes=*/6 * kMiB);
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  std::uint64_t got = 0;
  int bad = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 10; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);
    auto gr = co_await consumer->get(ctx, "f", 10, rig.domain);
    got = gr.nominal_bytes;
    bad = gr.wrong_version + gr.corrupt;
  });
  rig.run();
  EXPECT_EQ(got, rig.domain.volume() * 8);
  EXPECT_EQ(bad, 0);
  const std::uint64_t spilled =
      rig.stat_sum([](const ServerStats& s) { return s.spill_versions; });
  const std::uint64_t rejected =
      rig.stat_sum([](const ServerStats& s) { return s.puts_rejected; });
  EXPECT_GT(spilled, 0u);
  EXPECT_GT(rejected, 0u);
  // On the single-put path the rpc transport absorbs the RetryLater loop;
  // the client-visible evidence is its backpressure-wait counter.
  EXPECT_GT(producer->rpc_stats().backpressure_waits, 0u);
  // Spilled versions really live at the gateway.
  EXPECT_GT(rig.gateway->stats().spill_puts, 0u);
  // With the budget enforced, no server's governed footprint stays above
  // its hard watermark once the run has drained.
  for (const auto& s : rig.servers) {
    EXPECT_LE(s->memory().governed(), 6 * kMiB);
  }
}

TEST(StagingGovernorTest, SpillAbortedWhenGcReclaimsVictim) {
  // A checkpoint lands while a spill RPC is in flight: the GC sweep frees
  // the victim before the gateway acks, the server revalidates and must
  // abandon the eviction instead of double-freeing log bytes.
  Rig rig(2, /*budget_bytes=*/6 * kMiB);
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 4; ++v) {
      co_await producer->put(ctx, "f", v, rig.domain);
      co_await consumer->get(ctx, "f", v, rig.domain);
    }
    // The fourth put pushed the governed footprint past the soft mark, so
    // maintenance is now spilling (the PFS open latency keeps each spill
    // in flight for milliseconds). Checkpoint both apps immediately: the
    // sweep reclaims the spill victim under the maintenance coroutine.
    co_await consumer->workflow_check(ctx, 4);
    co_await producer->workflow_check(ctx, 4);
  });
  rig.run();
  EXPECT_GT(rig.stat_sum([](const ServerStats& s) {
    return s.spills_aborted;
  }), 0u);
  // The aborted spill's gateway copy is an orphan, not a leak: the server
  // no longer indexes it, so reads never see it.
  for (const auto& s : rig.servers) EXPECT_TRUE(s->spilled().empty());
}

TEST(StagingGovernorTest, ReplayFaultsSpilledPayloadBackIn) {
  // A consumer's logged read is replayed after a restart; by then the
  // version has been spilled to the PFS. The server faults it back into
  // the log transparently and serves verified content.
  Rig rig(2, /*budget_bytes=*/6 * kMiB);
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  std::uint64_t got = 0;
  int bad = 0;
  bool was_spilled = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await consumer->get(ctx, "f", 1, rig.domain);  // recorded for replay
    // Enough newer versions to push v1 out of the base window and spill it
    // out of the log.
    for (Version v = 2; v <= 8; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);
    co_await ctx.delay(sim::seconds(1));  // let maintenance drain
    for (const auto& s : rig.servers)
      was_spilled |= !s->spilled().empty();

    // Consumer restarts from scratch and replays its read of v1.
    co_await consumer->workflow_restart(ctx, 0);
    auto gr = co_await consumer->get(ctx, "f", 1, rig.domain);
    got = gr.nominal_bytes;
    bad = gr.wrong_version + gr.corrupt;
  });
  rig.run();
  EXPECT_TRUE(was_spilled);
  EXPECT_EQ(got, rig.domain.volume() * 8);
  EXPECT_EQ(bad, 0);
  EXPECT_GT(rig.stat_sum([](const ServerStats& s) {
    return s.spill_fetches;
  }), 0u);
  EXPECT_GT(rig.gateway->stats().fetches, 0u);
}

TEST(StagingGovernorTest, SpilledThenFaultedBackCountsOnce) {
  // Two replay reads of the same spilled version race: both miss the log,
  // both issue a gateway fetch, and the second fetch lands after the first
  // already re-ingested the payload. Re-adding it again would double-count
  // the governed footprint forever (the log would hold two copies of the
  // version's chunks). Property: the final per-server footprint with a
  // racing fault-in is identical to the single-reader footprint.
  auto run_replay = [](int concurrent_reads) {
    Rig rig(2, /*budget_bytes=*/6 * kMiB);
    auto producer = rig.make_client(0);
    auto consumer = rig.make_client(1);
    bool was_spilled = false;
    int bad = 0;
    int finished = 0;
    sim::spawn(rig.eng, [&, concurrent_reads]() -> sim::Task<void> {
      sim::Ctx ctx{&rig.eng, nullptr};
      co_await producer->put(ctx, "f", 1, rig.domain);
      co_await consumer->get(ctx, "f", 1, rig.domain);  // recorded for replay
      for (Version v = 2; v <= 8; ++v)
        co_await producer->put(ctx, "f", v, rig.domain);
      co_await ctx.delay(sim::seconds(1));  // let maintenance spill v1
      for (const auto& s : rig.servers) was_spilled |= !s->spilled().empty();
      co_await consumer->workflow_restart(ctx, 0);
      for (int r = 0; r < concurrent_reads; ++r) {
        sim::spawn(rig.eng, [&]() -> sim::Task<void> {
          sim::Ctx rctx{&rig.eng, nullptr};
          auto gr = co_await consumer->get(rctx, "f", 1, rig.domain);
          bad += gr.wrong_version + gr.corrupt;
          ++finished;
        });
      }
    });
    rig.run();
    EXPECT_TRUE(was_spilled);
    EXPECT_EQ(bad, 0);
    EXPECT_EQ(finished, concurrent_reads);
    // Payload bytes only: the extra reader legitimately appends one more
    // read event to the replay script (log metadata); what must NOT grow
    // is the payload accounting — a second copy of the version's chunks.
    std::vector<std::uint64_t> payload;
    for (const auto& s : rig.servers) {
      const auto m = s->memory();
      payload.push_back(m.store_bytes + m.log_payload_bytes);
    }
    return payload;
  };
  const auto solo = run_replay(1);
  const auto raced = run_replay(2);
  // Same puts, same spill, same faulted-back version — a racing second
  // reader must not inflate any server's payload footprint.
  EXPECT_EQ(solo, raced);
}

TEST(StagingGovernorTest, PartiallyAdmittedBatchIsNotAckedUntilDurable) {
  // With batching on, one BatchPut can straddle the hard watermark: early
  // chunks admitted, later ones bounced. The put must not return until the
  // bounced chunks were re-sent and admitted — and the data must verify.
  Rig rig(2, /*budget_bytes=*/6 * kMiB);
  auto producer = rig.make_client(0, /*batching=*/true);
  auto consumer = rig.make_client(1);
  std::size_t resends = 0;
  std::uint64_t got = 0;
  int bad = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 10; ++v) {
      auto pr = co_await producer->put(ctx, "f", v, rig.domain);
      resends += pr.backpressure_resends;
      // The ack claims durability: the just-written version must be fully
      // readable the moment put() returns, even when parts of its batch
      // were initially bounced.
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      got = gr.nominal_bytes;
      bad += gr.wrong_version + gr.corrupt;
    }
  });
  rig.run();
  EXPECT_GT(resends, 0u);
  EXPECT_GT(rig.stat_sum([](const ServerStats& s) {
    return s.puts_rejected;
  }), 0u);
  EXPECT_EQ(got, rig.domain.volume() * 8);
  EXPECT_EQ(bad, 0);
}

}  // namespace
}  // namespace dstage::staging
