// Tests for the minimal ordered JSON writer backing the bench/CLI output.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/json.hpp"

namespace dstage {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json().str(), "null\n");
  EXPECT_EQ(Json(true).str(), "true\n");
  EXPECT_EQ(Json(false).str(), "false\n");
  EXPECT_EQ(Json(42).str(), "42\n");
  EXPECT_EQ(Json(-7).str(), "-7\n");
  EXPECT_EQ(Json("hi").str(), "\"hi\"\n");
}

TEST(JsonTest, SixtyFourBitIntegersAreExact) {
  EXPECT_EQ(Json(std::uint64_t{0xffffffffffffffffull}).str(),
            "18446744073709551615\n");
  EXPECT_EQ(Json(std::int64_t{-9007199254740993}).str(),
            "-9007199254740993\n");
}

TEST(JsonTest, DoublesRoundTripAndNonFiniteDegradesToNull) {
  EXPECT_EQ(Json(0.5).str(), "0.5\n");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).str(), "null\n");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).str(), "null\n");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").str(), "\"a\\\"b\\\\c\\nd\"\n");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1).set("alpha", 2).set("mid", 3);
  const std::string text = j.str();
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mid"));
}

TEST(JsonTest, DuplicateKeyOverwritesInPlace) {
  Json j = Json::object();
  j.set("k", 1).set("other", 2).set("k", 9);
  EXPECT_EQ(j.size(), 2u);
  const std::string text = j.str();
  EXPECT_EQ(text.find("\"k\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"k\": 9"), std::string::npos);
  EXPECT_LT(text.find("\"k\""), text.find("\"other\""));
}

TEST(JsonTest, NestedPrettyPrint) {
  Json doc = Json::object();
  doc.set("name", "run");
  Json arr = Json::array();
  arr.push(1);
  Json inner = Json::object();
  inner.set("ok", true);
  arr.push(std::move(inner));
  doc.set("points", std::move(arr));
  doc.set("empty_list", Json::array());
  doc.set("empty_obj", Json::object());

  EXPECT_EQ(doc.str(),
            "{\n"
            "  \"name\": \"run\",\n"
            "  \"points\": [\n"
            "    1,\n"
            "    {\n"
            "      \"ok\": true\n"
            "    }\n"
            "  ],\n"
            "  \"empty_list\": [],\n"
            "  \"empty_obj\": {}\n"
            "}\n");
}

}  // namespace
}  // namespace dstage
