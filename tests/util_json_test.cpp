// Tests for the minimal ordered JSON writer backing the bench/CLI output,
// and edge cases of its read-side counterpart (util/json_reader.hpp): the
// reader ingests bench baselines and forensic bundles from disk, so it must
// degrade to clean errors — never crashes — on truncated, hostile, or
// merely odd input.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/json.hpp"
#include "util/json_reader.hpp"

namespace dstage {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(Json().str(), "null\n");
  EXPECT_EQ(Json(true).str(), "true\n");
  EXPECT_EQ(Json(false).str(), "false\n");
  EXPECT_EQ(Json(42).str(), "42\n");
  EXPECT_EQ(Json(-7).str(), "-7\n");
  EXPECT_EQ(Json("hi").str(), "\"hi\"\n");
}

TEST(JsonTest, SixtyFourBitIntegersAreExact) {
  EXPECT_EQ(Json(std::uint64_t{0xffffffffffffffffull}).str(),
            "18446744073709551615\n");
  EXPECT_EQ(Json(std::int64_t{-9007199254740993}).str(),
            "-9007199254740993\n");
}

TEST(JsonTest, DoublesRoundTripAndNonFiniteDegradesToNull) {
  EXPECT_EQ(Json(0.5).str(), "0.5\n");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).str(), "null\n");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).str(), "null\n");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").str(), "\"a\\\"b\\\\c\\nd\"\n");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1).set("alpha", 2).set("mid", 3);
  const std::string text = j.str();
  EXPECT_LT(text.find("zebra"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mid"));
}

TEST(JsonTest, DuplicateKeyOverwritesInPlace) {
  Json j = Json::object();
  j.set("k", 1).set("other", 2).set("k", 9);
  EXPECT_EQ(j.size(), 2u);
  const std::string text = j.str();
  EXPECT_EQ(text.find("\"k\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"k\": 9"), std::string::npos);
  EXPECT_LT(text.find("\"k\""), text.find("\"other\""));
}

TEST(JsonTest, NestedPrettyPrint) {
  Json doc = Json::object();
  doc.set("name", "run");
  Json arr = Json::array();
  arr.push(1);
  Json inner = Json::object();
  inner.set("ok", true);
  arr.push(std::move(inner));
  doc.set("points", std::move(arr));
  doc.set("empty_list", Json::array());
  doc.set("empty_obj", Json::object());

  EXPECT_EQ(doc.str(),
            "{\n"
            "  \"name\": \"run\",\n"
            "  \"points\": [\n"
            "    1,\n"
            "    {\n"
            "      \"ok\": true\n"
            "    }\n"
            "  ],\n"
            "  \"empty_list\": [],\n"
            "  \"empty_obj\": {}\n"
            "}\n");
}

TEST(JsonReaderTest, TruncatedInputsFailWithOffsets) {
  // Every truncation point of a small document must yield ok=false with at
  // least one positioned error — and, critically, no crash.
  const std::string doc = R"({"a": [1, 2.5e3, "x\n"], "b": {"c": null}})";
  for (std::size_t len = 0; len < doc.size(); ++len) {
    const JsonParse p = parse_json(doc.substr(0, len));
    EXPECT_FALSE(p.ok) << "prefix length " << len;
    ASSERT_FALSE(p.errors.empty()) << "prefix length " << len;
    EXPECT_NE(p.errors.front().find("at offset"), std::string::npos);
  }
  EXPECT_TRUE(parse_json(doc).ok);
  // Mid-escape and mid-keyword truncations, specifically.
  EXPECT_FALSE(parse_json(R"("ab\)").ok);
  EXPECT_FALSE(parse_json(R"("ab\u00)").ok);
  EXPECT_FALSE(parse_json("tru").ok);
  EXPECT_FALSE(parse_json("[1,").ok);
}

TEST(JsonReaderTest, DeepNestingIsRefusedNotOverflowed) {
  // An adversarial document of 100k opening brackets must be rejected by
  // the parser's depth cap, not by the process's stack guard page.
  const std::string bombs[] = {std::string(100000, '['),
                               std::string(50000, '[') + "1" +
                                   std::string(50000, ']')};
  for (const std::string& bomb : bombs) {
    const JsonParse p = parse_json(bomb);
    EXPECT_FALSE(p.ok);
    ASSERT_FALSE(p.errors.empty());
    EXPECT_NE(p.errors.front().find("nesting too deep"), std::string::npos);
  }
  // Reasonable nesting still parses: depth resets on the way out, so many
  // shallow siblings never accumulate toward the cap.
  std::string wide = "[";
  for (int i = 0; i < 1000; ++i) wide += "[0],";
  wide += "[0]]";
  EXPECT_TRUE(parse_json(wide).ok);
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  deep += "7";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_TRUE(parse_json(deep).ok);
}

TEST(JsonReaderTest, NonUtf8BytesPassThroughStrings) {
  // The reader is byte-transparent: invalid UTF-8 inside a string is the
  // consumer's problem (digests and paths are opaque bytes), so it must
  // survive the round trip unmodified rather than be mangled or rejected.
  const std::string raw = {'\x80', '\xff', '\xc3', '(', '\x01'};
  const JsonParse p = parse_json("\"\x80\xff\xc3(\x01\"");
  ASSERT_TRUE(p.ok);
  ASSERT_TRUE(p.value.is_string());
  EXPECT_EQ(p.value.string, raw);
}

TEST(JsonReaderTest, DuplicateKeysKeepBothMemberReturnsFirst) {
  const JsonParse p = parse_json(R"({"k": 1, "k": 2, "other": 3})");
  ASSERT_TRUE(p.ok);
  ASSERT_EQ(p.value.object.size(), 3u);  // nothing silently dropped
  const JsonValue* k = p.value.member("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->as_i64(), 1);  // first wins on lookup, deterministically
}

TEST(JsonReaderTest, SixtyFourBitLiteralsSurviveExactly) {
  const JsonParse p =
      parse_json(R"({"u": 18446744073709551615, "i": -9007199254740993})");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.value.member("u")->as_u64(), 18446744073709551615ull);
  EXPECT_EQ(p.value.member("i")->as_i64(), -9007199254740993ll);
}

}  // namespace
}  // namespace dstage
