// Elastic staging group, end to end: standbys join mid-workload behind a
// background resilver, retirees drain before leaving, stale client views
// bounce with a typed wrong-epoch reject and refresh, and degraded reads
// reconstruct pieces from redundancy fragments while an owner is down.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/executor.hpp"
#include "core/setups.hpp"
#include "dht/spatial_index.hpp"
#include "net/rpc.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/degraded_read.hpp"
#include "staging/group.hpp"
#include "staging/server.hpp"

namespace dstage::staging {
namespace {

ServerParams elastic_params(resilience::Redundancy kind) {
  ServerParams p;
  p.logging = true;
  p.policy.kind = kind;
  p.policy.replicas = 2;
  p.policy.rs_k = 2;
  p.policy.rs_m = 1;
  return p;
}

/// A staging group with live membership: `active` servers in the epoch-0
/// view, `standby` more built but outside it, and a GroupManager driving
/// joins/retires.
struct ElasticRig {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  Box domain = Box::from_dims(64, 64, 64);
  dht::SpatialIndex index;
  std::vector<cluster::VprocId> server_vprocs;
  std::vector<std::unique_ptr<StagingServer>> servers;
  std::unique_ptr<GroupManager> group;
  cluster::VprocId control_vproc;
  std::unique_ptr<net::Rpc> control;

  ElasticRig(int active, int standby, ServerParams params)
      : index(domain, active, 8) {
    const int total = active + standby;
    for (int s = 0; s < total; ++s) {
      auto vp =
          cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
      server_vprocs.push_back(vp);
      servers.push_back(std::make_unique<StagingServer>(cluster, vp, params));
      servers.back()->register_var("f", {{1, true}});
    }
    std::vector<net::EndpointId> endpoints;
    for (auto vp : server_vprocs)
      endpoints.push_back(cluster.vproc(vp).endpoint);
    std::vector<StagingServer*> raw;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      servers[s]->set_peers(static_cast<int>(s), endpoints);
      servers[s]->set_group_index(&index);
      servers[s]->apply_membership(index.epoch(), index.active_servers());
      servers[s]->start();
      raw.push_back(servers[s].get());
    }
    auto gm_vproc = cluster.add_vproc("group-mgr", cluster.add_node());
    group = std::make_unique<GroupManager>(cluster, gm_vproc, index,
                                           std::move(raw));
    group->start();
    control_vproc = cluster.add_vproc("ctl", cluster.add_node());
    control = std::make_unique<net::Rpc>(
        fabric, cluster.vproc(control_vproc).endpoint);
  }

  std::unique_ptr<StagingClient> make_client(AppId app) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.put_timeout = sim::seconds(15);
    cp.get_timeout = sim::seconds(30);
    auto client = std::make_unique<StagingClient>(cluster, index,
                                                  server_vprocs, vp, cp);
    client->set_group_endpoint(group->endpoint());
    return client;
  }

  sim::Task<GroupChangeAck> change(sim::Ctx ctx, bool join, int server) {
    if (join) {
      JoinGroup req;
      req.server = server;
      return control->call(ctx, group->endpoint(), std::move(req));
    }
    RetireServer req;
    req.server = server;
    return control->call(ctx, group->endpoint(), std::move(req));
  }

  void run() { eng.run(); }
};

TEST(StagingElasticTest, JoinResilversAndReadsStayEquivalent) {
  ElasticRig rig(2, 1, elastic_params(resilience::Redundancy::kNone));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  int wrong = 0, corrupt = 0;
  std::uint64_t bytes = 0;
  bool joined = false;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 3; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);

    GroupChangeAck ack = co_await rig.change(ctx, /*join=*/true, 2);
    joined = ack.ok && ack.server == 2;

    // Every pre-join version must read back intact through the new map.
    for (Version v = 1; v <= 3; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      wrong += gr.wrong_version;
      corrupt += gr.corrupt;
      bytes += gr.nominal_bytes;
    }
    // New writes land on the grown group, including the joiner.
    co_await producer->put(ctx, "f", 4, rig.domain);
  });
  rig.run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(rig.index.epoch(), 1u);
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(corrupt, 0);
  EXPECT_EQ(bytes, 3u * rig.domain.volume() * 8);
  EXPECT_EQ(rig.group->stats().joins, 1u);
  EXPECT_GT(rig.group->stats().resilver_bytes, 0u);
  // The joiner took real ownership: it now holds data.
  EXPECT_GT(rig.servers[2]->store().nominal_bytes() +
                rig.servers[2]->data_log().nominal_bytes(),
            0u);
}

TEST(StagingElasticTest, RetireDrainsTheLeaverCompletely) {
  ElasticRig rig(3, 0, elastic_params(resilience::Redundancy::kNone));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  bool retired = false;
  int wrong = 0;
  std::uint64_t bytes = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    for (Version v = 1; v <= 2; ++v)
      co_await producer->put(ctx, "f", v, rig.domain);

    GroupChangeAck ack = co_await rig.change(ctx, /*join=*/false, 1);
    retired = ack.ok && ack.server == 1;

    for (Version v = 1; v <= 2; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, rig.domain);
      wrong += gr.wrong_version + gr.corrupt;
      bytes += gr.nominal_bytes;
    }
  });
  rig.run();
  EXPECT_TRUE(retired);
  EXPECT_TRUE(rig.servers[1]->drained());
  EXPECT_EQ(rig.index.active_servers(), (std::vector<int>{0, 2}));
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(bytes, 2u * rig.domain.volume() * 8);
  EXPECT_EQ(rig.group->stats().retires, 1u);
}

TEST(StagingElasticTest, StaleViewBouncesWithWrongEpochAndRefreshes) {
  ElasticRig rig(2, 1, elastic_params(resilience::Redundancy::kNone));
  auto producer = rig.make_client(0);
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);  // caches epoch-0 view
    (void)co_await rig.change(ctx, /*join=*/true, 2);
    // The stale view still routes moved cells to their old owners; those
    // puts bounce wrong_epoch, the client refreshes, and the put lands.
    auto pr = co_await producer->put(ctx, "f", 2, rig.domain);
    EXPECT_GT(pr.wrong_epoch_retries, 0u);
  });
  rig.run();
  EXPECT_GE(producer->epoch_refreshes(), 1u);
  std::uint64_t rejects = 0;
  for (const auto& s : rig.servers) rejects += s->stats().wrong_epoch_rejects;
  EXPECT_GT(rejects, 0u);
}

TEST(StagingElasticTest, DegradedReadsReconstructDuringOwnerOutage) {
  ElasticRig rig(3, 0, elastic_params(resilience::Redundancy::kErasureCode));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  consumer->set_resilience_policy(elastic_params(
      resilience::Redundancy::kErasureCode).policy);
  consumer->set_degraded_reads(true);
  std::set<int> down;
  consumer->set_degraded_probe([&](int server) { return down.count(server) > 0; });
  int wrong = 0;
  std::uint64_t bytes = 0;
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await ctx.delay(sim::seconds(2));  // fragments propagate

    down.insert(0);  // owner down, unrecovered
    auto gr = co_await consumer->get(ctx, "f", 1, rig.domain);
    wrong = gr.wrong_version + gr.corrupt;
    bytes = gr.nominal_bytes;
    EXPECT_GT(gr.degraded_pieces, 0u);
  });
  rig.run();
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(bytes, static_cast<std::uint64_t>(rig.domain.volume()) * 8);
  EXPECT_GT(consumer->degraded_read_count(), 0u);
  std::uint64_t fetches = 0;
  for (const auto& s : rig.servers) fetches += s->stats().fragment_fetches;
  EXPECT_GT(fetches, 0u);
}

TEST(StagingElasticTest, LossBeyondToleranceIsTypedDataLossNotTimeout) {
  // RS(2,1): three fragments per chunk. With the owner and one fragment
  // holder both gone, a single surviving shard is below k — the get must
  // fail fast with the typed DataLossError, not hang into an rpc timeout.
  ElasticRig rig(3, 0, elastic_params(resilience::Redundancy::kErasureCode));
  auto producer = rig.make_client(0);
  auto consumer = rig.make_client(1);
  consumer->set_resilience_policy(elastic_params(
      resilience::Redundancy::kErasureCode).policy);
  consumer->set_degraded_reads(true);
  std::set<int> down;
  consumer->set_degraded_probe([&](int server) { return down.count(server) > 0; });
  bool typed_loss = false;
  sim::TimePoint failed_at{};
  sim::spawn(rig.eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&rig.eng, nullptr};
    co_await producer->put(ctx, "f", 1, rig.domain);
    co_await ctx.delay(sim::seconds(2));

    down.insert(0);
    down.insert(1);
    try {
      (void)co_await consumer->get(ctx, "f", 1, rig.domain);
    } catch (const DataLossError& e) {
      typed_loss = true;
      failed_at = rig.eng.now();
      EXPECT_EQ(e.var(), "f");
    }
  });
  rig.run();
  EXPECT_TRUE(typed_loss);
  // Fail-fast: well under the client's 30 s get timeout window.
  EXPECT_LT(failed_at.ns, sim::seconds(20).ns);
}

TEST(StagingElasticTest, WorkflowGrowsAndShrinksMidRun) {
  // The acceptance scenario: a 3-server group grows to 5 and shrinks back
  // to 3 mid-workflow, with every read equivalent across epochs.
  core::WorkflowSpec spec = core::table2_setup(core::Scheme::kUncoordinated);
  spec.total_ts = 12;
  spec.staging_servers = 3;
  spec.elastic.standby_servers = 2;
  spec.elastic.events = {{3, true, -1},
                         {5, true, -1},
                         {8, false, -1},
                         {10, false, -1}};
  core::WorkflowRunner runner(std::move(spec));
  core::RunMetrics m = runner.run();

  EXPECT_EQ(m.total_anomalies(), 0);
  EXPECT_EQ(m.staging.membership_joins, 2u);
  EXPECT_EQ(m.staging.membership_retires, 2u);
  EXPECT_EQ(m.staging.membership_epoch, 4u);
  EXPECT_GT(m.staging.resilver_bytes_moved, 0u);
  for (const auto& c : m.components) EXPECT_EQ(c.timesteps_done, 12);
  EXPECT_EQ(runner.runtime().services().index->active_servers().size(), 3u);
}

TEST(StagingElasticTest, ElasticSpecValidationRejectsNonsense) {
  core::WorkflowSpec spec = core::table2_setup(core::Scheme::kUncoordinated);
  spec.elastic.standby_servers = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = core::table2_setup(core::Scheme::kUncoordinated);
  spec.elastic.events = {{1, true, -1}};  // join with no standby built
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = core::table2_setup(core::Scheme::kUncoordinated);
  spec.staging_servers = 1;
  spec.elastic.events = {{1, false, -1}};  // retire would empty the group
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = core::table2_setup(core::Scheme::kUncoordinated);
  spec.elastic.degraded_reads = true;  // no redundancy policy configured
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace dstage::staging
