// Figure 10: total workflow execution time at 704..11,264 cores with 1..3
// failures (Table III). The paper reports that uncoordinated checkpointing
// reduced total execution time by up to 7.89/10.48/11.5/12.03/13.48 % over
// coordinated checkpointing at the five scales. The saving depends strongly
// on which component absorbs the failures (an analytic failure is nearly
// free under Un but triggers a full global rollback under Co), so both the
// mean and the best case over the seed batch are reported.
#include "bench/common.hpp"

int main() {
  using namespace dstage;
  bench::print_header(
      "Figure 10 — total execution time at scale (Table III)",
      "704..11264 cores; failures follow Table III's MTBF rows (1..3 per "
      "run); 8 seeds per cell (paper: Un saves up to "
      "7.89/10.48/11.5/12.03/13.48%).");

  constexpr int kSeeds = 8;
  const double paper_up_to[] = {7.89, 10.48, 11.5, 12.03, 13.48};

  std::printf("%7s %4s %10s %10s %10s %10s %10s %10s\n", "cores", "fail",
              "Co (s)", "Un (s)", "Hy (s)", "mean save", "max save",
              "paper");
  for (int k = 0; k <= 4; ++k) {
    // Table III: MTBF 600/300/200 s maps to 1/2/3 failures per run; the
    // larger scales keep the highest failure rate.
    const int failures = k == 0 ? 1 : (k == 1 ? 2 : 3);
    double co_sum = 0, un_sum = 0, hy_sum = 0, max_save = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto co = bench::run(core::table3_setup(
          core::Scheme::kCoordinated, k, failures,
          static_cast<std::uint64_t>(seed)));
      auto un = bench::run(core::table3_setup(
          core::Scheme::kUncoordinated, k, failures,
          static_cast<std::uint64_t>(seed)));
      auto hy = bench::run(core::table3_setup(
          core::Scheme::kHybrid, k, failures,
          static_cast<std::uint64_t>(seed)));
      co_sum += co.total_time_s;
      un_sum += un.total_time_s;
      hy_sum += hy.total_time_s;
      max_save = std::max(max_save,
                          100.0 * (1.0 - un.total_time_s / co.total_time_s));
    }
    std::printf("%7d %4d %10.1f %10.1f %10.1f %9.2f%% %9.2f%% %9.2f%%\n",
                core::table3_total_cores(k), failures, co_sum / kSeeds,
                un_sum / kSeeds, hy_sum / kSeeds,
                100.0 * (1.0 - un_sum / co_sum), max_save, paper_up_to[k]);
  }
  return 0;
}
