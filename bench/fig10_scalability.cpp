// Figure 10: total workflow execution time at 704..11,264 cores with 1..3
// failures (Table III). The paper reports that uncoordinated checkpointing
// reduced total execution time by up to 7.89/10.48/11.5/12.03/13.48 % over
// coordinated checkpointing at the five scales. The saving depends strongly
// on which component absorbs the failures (an analytic failure is nearly
// free under Un but triggers a full global rollback under Co), so both the
// mean and the best case over the seed batch are reported.
//
// Two extensions beyond the paper table:
//  - each scale is re-run with the write-log codec armed (delta_lz) to
//    report the staged-byte reduction the codec buys on the figure's own
//    workload (deterministic, so the ratio is baseline-gated);
//  - a DES ceiling sweep pushes the engine to 10k..100k staging vprocs and
//    reports host-side events/sec (wall-clock, so candidate-only).
//
// Extra flags:
//   --ceiling=N       largest ceiling cell to run (default 100000; 0 skips
//                     the ceiling sweep entirely — CI smoke uses 10000)
//   --no-wallclock    omit wall_s / events_per_sec from the JSON so the
//                     document is fully deterministic (baseline generation)
#include <algorithm>
#include <chrono>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig10_scalability", argc, argv, 8);
  const int ceiling = h.flag_int("ceiling", 100000);
  const bool wallclock = !h.flag_bool("no-wallclock", false);
  bench::print_header(
      "Figure 10 — total execution time at scale (Table III)",
      "704..11264 cores; failures follow Table III's MTBF rows (1..3 per "
      "run); a seed batch per cell (paper: Un saves up to "
      "7.89/10.48/11.5/12.03/13.48%).");

  const double paper_up_to[] = {7.89, 10.48, 11.5, 12.03, 13.48};

  std::printf("%7s %4s %10s %10s %10s %10s %10s %10s %7s\n", "cores", "fail",
              "Co (s)", "Un (s)", "Hy (s)", "mean save", "max save", "paper",
              "codec");
  for (int k = 0; k <= 4; ++k) {
    // Table III: MTBF 600/300/200 s maps to 1/2/3 failures per run; the
    // larger scales keep the highest failure rate.
    const int failures = k == 0 ? 1 : (k == 1 ? 2 : 3);
    auto sweep_scheme = [&](core::Scheme scheme,
                            wlog::codec::Scheme codec) {
      return h.sweep([&, scheme, codec](std::uint64_t seed) {
        auto spec = core::table3_setup(scheme, k, failures, seed);
        spec.wlog.codec = codec;
        return spec;
      });
    };
    auto co = sweep_scheme(core::Scheme::kCoordinated,
                           wlog::codec::Scheme::kNone);
    auto un = sweep_scheme(core::Scheme::kUncoordinated,
                           wlog::codec::Scheme::kNone);
    auto hy = sweep_scheme(core::Scheme::kHybrid, wlog::codec::Scheme::kNone);
    // The same Un cell with the payload codec armed: the ratio of nominal
    // bytes presented to the encoder vs nominal-scale bytes retained.
    auto un_cx = sweep_scheme(core::Scheme::kUncoordinated,
                              wlog::codec::Scheme::kDeltaLz);
    double codec_raw = 0, codec_stored = 0;
    for (const auto& r : un_cx) {
      codec_raw += static_cast<double>(r.metrics.staging.codec_raw_bytes);
      codec_stored +=
          static_cast<double>(r.metrics.staging.codec_stored_bytes);
    }
    const double codec_ratio =
        codec_stored > 0 ? codec_raw / codec_stored : 0.0;
    const double co_mean = core::mean_total_time(co);
    const double un_mean = core::mean_total_time(un);
    const double hy_mean = core::mean_total_time(hy);
    double max_save = 0;
    for (std::size_t s = 0; s < co.size(); ++s) {
      max_save = std::max(max_save,
                          100.0 * (1.0 - un[s].metrics.total_time_s /
                                             co[s].metrics.total_time_s));
    }
    const double mean_save = 100.0 * (1.0 - un_mean / co_mean);
    std::printf(
        "%7d %4d %10.1f %10.1f %10.1f %9.2f%% %9.2f%% %9.2f%% %6.2fx\n",
        core::table3_total_cores(k), failures, co_mean, un_mean, hy_mean,
        mean_save, max_save, paper_up_to[k], codec_ratio);

    Json p = Json::object();
    p.set("scale_index", k);
    p.set("total_cores", core::table3_total_cores(k));
    p.set("failures", failures);
    p.set("co_mean_total_time_s", co_mean);
    p.set("un_mean_total_time_s", un_mean);
    p.set("hy_mean_total_time_s", hy_mean);
    p.set("mean_saving_pct", mean_save);
    p.set("max_saving_pct", max_save);
    p.set("paper_up_to_pct", paper_up_to[k]);
    p.set("un_codec_raw_bytes", codec_raw);
    p.set("un_codec_stored_bytes", codec_stored);
    p.set("un_codec_ratio", codec_ratio);
    h.add_point(std::move(p));
  }

  // DES ceiling sweep: one short uncoordinated run per cell, sized by the
  // staging-server count so the vproc population — not the data volume —
  // is what grows. Virtual-time metrics are deterministic; wall_s and
  // events_per_sec are host measurements and stay out of the baseline.
  Json ceiling_points = Json::array();
  if (ceiling > 0) {
    bench::print_header(
        "DES ceiling — engine throughput at 10k..100k staging vprocs",
        "one seed per cell; events/sec is host wall-clock over the whole "
        "run (build + simulate + collect).");
    std::printf("%8s %8s %12s %12s %9s %12s\n", "servers", "vprocs",
                "events", "virt (s)", "wall (s)", "events/sec");
    for (const int servers : {10'000, 32'000, 100'000}) {
      if (servers > ceiling) continue;
      const auto t0 = std::chrono::steady_clock::now();
      auto m = bench::run(core::ceiling_setup(servers));
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const double events_per_sec =
          wall_s > 0 ? static_cast<double>(m.events_processed) / wall_s : 0.0;
      std::printf("%8d %8d %12llu %12.1f %9.2f %12.0f\n", servers, m.vprocs,
                  static_cast<unsigned long long>(m.events_processed),
                  m.total_time_s, wall_s, events_per_sec);

      Json p = Json::object();
      p.set("servers", servers);
      p.set("vprocs", m.vprocs);
      p.set("events_processed", static_cast<double>(m.events_processed));
      p.set("total_time_s", m.total_time_s);
      p.set("fabric_packets", static_cast<double>(m.fabric_packets));
      p.set("staging_puts", static_cast<double>(m.staging.puts));
      if (wallclock) {
        p.set("wall_s", wall_s);
        p.set("events_per_sec", events_per_sec);
      }
      ceiling_points.push(std::move(p));
    }
  }
  h.set_extra("ceiling_points", std::move(ceiling_points));
  return h.finish();
}
