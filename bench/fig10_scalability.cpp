// Figure 10: total workflow execution time at 704..11,264 cores with 1..3
// failures (Table III). The paper reports that uncoordinated checkpointing
// reduced total execution time by up to 7.89/10.48/11.5/12.03/13.48 % over
// coordinated checkpointing at the five scales. The saving depends strongly
// on which component absorbs the failures (an analytic failure is nearly
// free under Un but triggers a full global rollback under Co), so both the
// mean and the best case over the seed batch are reported.
#include <algorithm>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig10_scalability", argc, argv, 8);
  bench::print_header(
      "Figure 10 — total execution time at scale (Table III)",
      "704..11264 cores; failures follow Table III's MTBF rows (1..3 per "
      "run); a seed batch per cell (paper: Un saves up to "
      "7.89/10.48/11.5/12.03/13.48%).");

  const double paper_up_to[] = {7.89, 10.48, 11.5, 12.03, 13.48};

  std::printf("%7s %4s %10s %10s %10s %10s %10s %10s\n", "cores", "fail",
              "Co (s)", "Un (s)", "Hy (s)", "mean save", "max save",
              "paper");
  for (int k = 0; k <= 4; ++k) {
    // Table III: MTBF 600/300/200 s maps to 1/2/3 failures per run; the
    // larger scales keep the highest failure rate.
    const int failures = k == 0 ? 1 : (k == 1 ? 2 : 3);
    auto sweep_scheme = [&](core::Scheme scheme) {
      return h.sweep([&, scheme](std::uint64_t seed) {
        return core::table3_setup(scheme, k, failures, seed);
      });
    };
    auto co = sweep_scheme(core::Scheme::kCoordinated);
    auto un = sweep_scheme(core::Scheme::kUncoordinated);
    auto hy = sweep_scheme(core::Scheme::kHybrid);
    const double co_mean = core::mean_total_time(co);
    const double un_mean = core::mean_total_time(un);
    const double hy_mean = core::mean_total_time(hy);
    double max_save = 0;
    for (std::size_t s = 0; s < co.size(); ++s) {
      max_save = std::max(max_save,
                          100.0 * (1.0 - un[s].metrics.total_time_s /
                                             co[s].metrics.total_time_s));
    }
    const double mean_save = 100.0 * (1.0 - un_mean / co_mean);
    std::printf("%7d %4d %10.1f %10.1f %10.1f %9.2f%% %9.2f%% %9.2f%%\n",
                core::table3_total_cores(k), failures, co_mean, un_mean,
                hy_mean, mean_save, max_save, paper_up_to[k]);

    Json p = Json::object();
    p.set("scale_index", k);
    p.set("total_cores", core::table3_total_cores(k));
    p.set("failures", failures);
    p.set("co_mean_total_time_s", co_mean);
    p.set("un_mean_total_time_s", un_mean);
    p.set("hy_mean_total_time_s", hy_mean);
    p.set("mean_saving_pct", mean_save);
    p.set("max_saving_pct", max_save);
    p.set("paper_up_to_pct", paper_up_to[k]);
    h.add_point(std::move(p));
  }
  return h.finish();
}
