// Figure 9(a): cumulative data write response time, Case 1 — different
// subsets (20..100%) of the data domain written each timestep; plain data
// staging (Ds) vs staging with data/event logging.
// Paper: logging increased write response time by 10/12/14/14/15 %.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig9a_write_response_subset", argc, argv, 1);
  bench::print_header(
      "Figure 9(a) — cumulative write response time vs subset size",
      "Table II setup, 40 ts, failure-free; Ds = original staging, "
      "Ds+log = staging with data/event logging (paper: +10..15%).");

  std::printf("%8s %14s %14s %10s %12s\n", "subset", "Ds (s)", "Ds+log (s)",
              "delta", "paper");
  const double paper[] = {10, 12, 14, 14, 15};
  int i = 0;
  auto cum_wr = [](const core::RunMetrics& m) {
    return m.component("simulation").cum_put_response_s;
  };
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto ds = h.sweep([fraction](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kNone, fraction);
      spec.failures.seed = seed;
      return spec;
    });
    auto logged = h.sweep([fraction](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated, fraction);
      spec.failures.seed = seed;
      return spec;
    });
    const double ds_wr = bench::mean_over(ds, cum_wr);
    const double log_wr = bench::mean_over(logged, cum_wr);
    const double delta = bench::pct(log_wr, ds_wr);
    std::printf("%7.0f%% %14.3f %14.3f %+9.1f%% %+11.0f%%\n", fraction * 100,
                ds_wr, log_wr, delta, paper[i]);
    const SampleSet ds_resp = bench::pooled_put_response(ds, "simulation");
    const SampleSet log_resp =
        bench::pooled_put_response(logged, "simulation");
    std::printf("        per-put p50/p95/p99 (ms): Ds %.2f/%.2f/%.2f   "
                "Ds+log %.2f/%.2f/%.2f\n",
                ds_resp.percentile(50) * 1e3, ds_resp.percentile(95) * 1e3,
                ds_resp.percentile(99) * 1e3, log_resp.percentile(50) * 1e3,
                log_resp.percentile(95) * 1e3, log_resp.percentile(99) * 1e3);

    Json p = Json::object();
    p.set("subset_fraction", fraction);
    p.set("ds_cum_write_response_s", ds_wr);
    p.set("logged_cum_write_response_s", log_wr);
    p.set("ds_p50_put_response_s", ds_resp.percentile(50));
    p.set("ds_p95_put_response_s", ds_resp.percentile(95));
    p.set("ds_p99_put_response_s", ds_resp.percentile(99));
    p.set("logged_p50_put_response_s", log_resp.percentile(50));
    p.set("logged_p95_put_response_s", log_resp.percentile(95));
    p.set("logged_p99_put_response_s", log_resp.percentile(99));
    p.set("delta_pct", delta);
    p.set("paper_delta_pct", paper[i]);
    h.add_point(std::move(p));
    ++i;
  }
  return h.finish();
}
