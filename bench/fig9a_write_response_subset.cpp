// Figure 9(a): cumulative data write response time, Case 1 — different
// subsets (20..100%) of the data domain written each timestep; plain data
// staging (Ds) vs staging with data/event logging.
// Paper: logging increased write response time by 10/12/14/14/15 %.
#include "bench/common.hpp"

int main() {
  using namespace dstage;
  bench::print_header(
      "Figure 9(a) — cumulative write response time vs subset size",
      "Table II setup, 40 ts, failure-free; Ds = original staging, "
      "Ds+log = staging with data/event logging (paper: +10..15%).");

  std::printf("%8s %14s %14s %10s %12s\n", "subset", "Ds (s)", "Ds+log (s)",
              "delta", "paper");
  const double paper[] = {10, 12, 14, 14, 15};
  int i = 0;
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto ds = bench::run(core::table2_setup(core::Scheme::kNone, fraction));
    auto logged =
        bench::run(core::table2_setup(core::Scheme::kUncoordinated, fraction));
    const double ds_wr = ds.component("simulation").cum_put_response_s;
    const double log_wr = logged.component("simulation").cum_put_response_s;
    std::printf("%7.0f%% %14.3f %14.3f %+9.1f%% %+11.0f%%\n", fraction * 100,
                ds_wr, log_wr, bench::pct(log_wr, ds_wr), paper[i++]);
  }
  return 0;
}
