// Micro-benchmarks (google-benchmark) for the building blocks under the
// workflow harness: DES engine throughput, Hilbert mapping, spatial
// placement, fabric round-trips through the typed RPC transport,
// object-store operations, event-queue bookkeeping, GF(256) arithmetic,
// and Reed–Solomon encode/decode.
#include <benchmark/benchmark.h>

#include <any>

#include "dht/spatial_index.hpp"
#include "gc/garbage_collector.hpp"
#include "net/rpc.hpp"
#include "resilience/reed_solomon.hpp"
#include "sim/channel.hpp"
#include "sim/spawn.hpp"
#include "staging/object_store.hpp"
#include "util/hilbert.hpp"
#include "util/rng.hpp"
#include "wlog/event_queue.hpp"

namespace {

using namespace dstage;

void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_call(sim::microseconds(i), [] {});
    }
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  // Headline DES hot-path metric, gated by tools/bench_compare in CI.
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 1000),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Channel<int> a(eng), b(eng);
    sim::spawn(eng, [](sim::Channel<int>* in,
                       sim::Channel<int>* out) -> sim::Task<void> {
      for (int i = 0; i < 500; ++i) {
        int v = co_await in->recv(nullptr);
        out->send(v + 1);
      }
    }(&a, &b));
    sim::spawn(eng, [](sim::Channel<int>* in,
                       sim::Channel<int>* out) -> sim::Task<void> {
      out->send(0);
      for (int i = 0; i < 500; ++i) {
        int v = co_await in->recv(nullptr);
        if (i + 1 < 500) out->send(v + 1);
      }
    }(&b, &a));
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 1000),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoroutinePingPong);

// Host-side wall-clock throughput of a full typed RPC round trip across
// the fabric (request in the mailbox, response over the control path).
void BM_FabricRpcRoundTrip(benchmark::State& state) {
  constexpr int kCalls = 256;
  for (auto _ : state) {
    sim::Engine eng;
    net::Fabric fabric(eng, {});
    const auto n0 = fabric.add_node();
    const auto n1 = fabric.add_node();
    const auto client_ep = fabric.add_endpoint(n0);
    const auto server_ep = fabric.add_endpoint(n1);
    net::Rpc client(fabric, client_ep);
    net::Rpc server(fabric, server_ep);
    sim::spawn(eng, [&]() -> sim::Task<void> {
      sim::Ctx ctx{&eng, nullptr};
      for (int i = 0; i < kCalls; ++i) {
        net::Packet pkt = co_await fabric.endpoint(server_ep).recv(nullptr);
        auto& req = std::get<net::QueryRequest>(pkt.payload);
        net::QueryResponse resp;
        resp.store_versions = {1, 2};
        co_await server.fulfill(ctx, req.reply_to, std::move(req.reply),
                                std::move(resp));
      }
    });
    sim::spawn(eng, [&]() -> sim::Task<void> {
      sim::Ctx ctx{&eng, nullptr};
      for (int i = 0; i < kCalls; ++i) {
        net::QueryRequest req;
        req.var = "f";
        auto resp = co_await client.call(ctx, server_ep, std::move(req));
        benchmark::DoNotOptimize(resp.store_versions.size());
      }
    });
    benchmark::DoNotOptimize(eng.run());
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
}
BENCHMARK(BM_FabricRpcRoundTrip);

// Envelope pack/unpack only: the std::any packet payload the typed codec
// replaced (kept here, outside src/, as the before/after reference).
void BM_PayloadEnvelopeAny(benchmark::State& state) {
  for (auto _ : state) {
    net::FragmentPrune prune;
    prune.owner = 1;
    prune.var = "field";
    prune.upto = 7;
    std::any envelope = std::move(prune);
    auto& out = std::any_cast<net::FragmentPrune&>(envelope);
    benchmark::DoNotOptimize(out.upto);
  }
}
BENCHMARK(BM_PayloadEnvelopeAny);

void BM_PayloadEnvelopeTyped(benchmark::State& state) {
  for (auto _ : state) {
    net::FragmentPrune prune;
    prune.owner = 1;
    prune.var = "field";
    prune.upto = 7;
    net::Message envelope{std::move(prune)};
    auto& out = std::get<net::FragmentPrune>(envelope);
    benchmark::DoNotOptimize(out.upto);
  }
}
BENCHMARK(BM_PayloadEnvelopeTyped);

void BM_HilbertIndexOf(benchmark::State& state) {
  HilbertCurve curve(static_cast<int>(state.range(0)));
  Rng rng(1);
  const std::uint32_t mask = (1u << state.range(0)) - 1;
  for (auto _ : state) {
    const auto v = rng.next_u64();
    benchmark::DoNotOptimize(curve.index_of(
        static_cast<std::uint32_t>(v) & mask,
        static_cast<std::uint32_t>(v >> 20) & mask,
        static_cast<std::uint32_t>(v >> 40) & mask));
  }
}
BENCHMARK(BM_HilbertIndexOf)->Arg(4)->Arg(8)->Arg(16);

void BM_SpatialPlace(benchmark::State& state) {
  dht::SpatialIndex index(Box::from_dims(512, 512, 256),
                          static_cast<int>(state.range(0)), 8);
  Box query{{17, 33, 9}, {430, 401, 200}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.place(query));
  }
}
BENCHMARK(BM_SpatialPlace)->Arg(4)->Arg(16)->Arg(64);

// The epoch-aware refactor must add no lookup-path regression: these two
// run the identical place() workload against a constructor-time map
// (epoch 0, the legacy shape) and against a map that lived through a
// grow/shrink episode (joins + retires fragment the curve segments).
void BM_DhtLegacyLookup(benchmark::State& state) {
  dht::SpatialIndex index(Box::from_dims(512, 512, 256),
                          static_cast<int>(state.range(0)), 8);
  Box query{{17, 33, 9}, {430, 401, 200}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.place(query));
    benchmark::DoNotOptimize(index.server_of({100, 200, 50}));
  }
}
BENCHMARK(BM_DhtLegacyLookup)->Arg(4)->Arg(16);

void BM_DhtEpochLookup(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  dht::SpatialIndex index(Box::from_dims(512, 512, 256), servers, 8);
  // Grow by two, shrink back: same active count as the legacy index but
  // ownership assigned across four epochs of minimal-motion moves.
  benchmark::DoNotOptimize(index.add_server(servers));
  benchmark::DoNotOptimize(index.add_server(servers + 1));
  benchmark::DoNotOptimize(index.remove_server(0));
  benchmark::DoNotOptimize(index.remove_server(1));
  Box query{{17, 33, 9}, {430, 401, 200}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.place(query));
    benchmark::DoNotOptimize(index.server_of({100, 200, 50}));
  }
}
BENCHMARK(BM_DhtEpochLookup)->Arg(4)->Arg(16);

void BM_ObjectStorePutGet(benchmark::State& state) {
  const Box region = Box::from_dims(64, 64, 64);
  for (auto _ : state) {
    staging::ObjectStore store(2);
    for (staging::Version v = 1; v <= 16; ++v) {
      store.put(staging::make_chunk("f", v, region, 8.0, 65536));
      benchmark::DoNotOptimize(store.get("f", v, region));
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ObjectStorePutGet);

void BM_EventQueueRecordTruncate(benchmark::State& state) {
  const auto events = state.range(0);
  for (auto _ : state) {
    wlog::EventQueue q;
    for (std::int64_t i = 0; i < events; ++i) {
      q.record(wlog::LogEvent{wlog::EventKind::kPut, 0,
                              static_cast<staging::Version>(i), "f",
                              Box::from_dims(8, 8, 8), 512, 0});
    }
    q.record(wlog::LogEvent{wlog::EventKind::kCheckpoint, 0,
                            static_cast<staging::Version>(events), {},
                            Box{}, 0, 1});
    benchmark::DoNotOptimize(q.truncate_before_last_checkpoint());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueRecordTruncate)->Arg(64)->Arg(1024);

void BM_GcSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    gc::GarbageCollector gc;
    gc.register_var("f", {{1, true}});
    gc.on_checkpoint(1, 48);
    wlog::DataLog log;
    for (staging::Version v = 1; v <= 64; ++v)
      log.add(staging::make_chunk("f", v, Box::from_dims(16, 16, 16), 8.0,
                                  65536));
    state.ResumeTiming();
    benchmark::DoNotOptimize(gc.sweep(log));
  }
}
BENCHMARK(BM_GcSweep);

void BM_Gf256MulAdd(benchmark::State& state) {
  const auto& gf = resilience::gf256();
  std::vector<std::uint8_t> dst(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> src(dst.size());
  Rng rng(5);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
  for (auto _ : state) {
    gf.mul_add(dst, src, 0x8e);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Gf256MulAdd)->Arg(4096)->Arg(1 << 20);

void BM_ReedSolomonEncode(benchmark::State& state) {
  resilience::ReedSolomon rs(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)));
  std::vector<std::uint8_t> data(1 << 20);
  Rng rng(6);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ReedSolomonEncode)->Args({4, 2})->Args({8, 4});

void BM_ReedSolomonDecodeWithErasures(benchmark::State& state) {
  resilience::ReedSolomon rs(4, 2);
  std::vector<std::uint8_t> data(1 << 20);
  Rng rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  auto shards = rs.encode(data);
  shards[1].clear();
  shards[4].clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.decode(shards, data.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ReedSolomonDecodeWithErasures);

}  // namespace

BENCHMARK_MAIN();
