// Transport batching sweep: the Table II workload with per-chunk messages
// (the golden-trace baseline) versus opt-in request coalescing
// (WorkflowSpec::net.batching), which aggregates a producer's
// same-destination DHT shards into one BatchPut per staging server.
// Reports fabric message/byte totals and the producer-side write response,
// so the message reduction (roughly shard-count-fold on the put path) and
// its latency effect are visible side by side.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig_batching", argc, argv, 4);
  bench::print_header(
      "Transport batching — fabric messages under request coalescing",
      "Table II workload (Un scheme, 1 failure); batching=off is the "
      "golden-trace baseline, batching=on coalesces same-destination "
      "chunk puts into one message per server.");

  std::printf("%10s %14s %14s %12s %12s %10s\n", "batching", "fabric msgs",
              "fabric bytes", "batch msgs", "cum write(s)", "time (s)");

  struct Cell {
    double packets = 0, bytes = 0, batch_puts = 0, write_s = 0, time_s = 0;
  };
  auto measure = [&](bool batching) {
    auto runs = h.sweep([&](std::uint64_t seed) {
      core::WorkflowSpec spec =
          core::table2_setup(core::Scheme::kUncoordinated);
      spec.failures.count = 1;
      spec.failures.seed = seed;
      spec.net.batching = batching;
      return spec;
    });
    Cell c;
    c.packets = bench::mean_over(
        runs, [](const core::RunMetrics& m) {
          return static_cast<double>(m.fabric_packets);
        });
    c.bytes = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.fabric_bytes);
    });
    c.batch_puts = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.staging.batch_puts);
    });
    c.write_s = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return m.cum_write_response_s();
    });
    c.time_s = core::mean_total_time(runs);
    std::printf("%10s %14.0f %14.0f %12.0f %12.2f %10.1f\n",
                batching ? "on" : "off", c.packets, c.bytes, c.batch_puts,
                c.write_s, c.time_s);
    return c;
  };

  const Cell off = measure(false);
  const Cell on = measure(true);
  const double reduction = on.packets > 0 ? off.packets / on.packets : 0;
  std::printf("\nmessage_reduction: %.2fx fewer fabric messages with "
              "batching on\n", reduction);

  Json p = Json::object();
  p.set("fabric_packets_off", off.packets);
  p.set("fabric_packets_on", on.packets);
  p.set("fabric_bytes_off", off.bytes);
  p.set("fabric_bytes_on", on.bytes);
  p.set("batch_puts_on", on.batch_puts);
  p.set("cum_write_response_off_s", off.write_s);
  p.set("cum_write_response_on_s", on.write_s);
  p.set("total_time_off_s", off.time_s);
  p.set("total_time_on_s", on.time_s);
  p.set("message_reduction", reduction);
  h.add_point(std::move(p));
  return h.finish();
}
