// Figure 9(b): cumulative write response time, Case 2 — full data domain
// written each timestep, checkpoint period swept from 2 to 6 timesteps.
// Paper: logging increased write response time by at most 14 %.
#include "bench/common.hpp"

int main() {
  using namespace dstage;
  bench::print_header(
      "Figure 9(b) — cumulative write response time vs checkpoint period",
      "Table II setup, full domain, 40 ts, failure-free "
      "(paper: <= +14% across periods 2..6).");

  std::printf("%8s %14s %14s %10s\n", "period", "Ds (s)", "Ds+log (s)",
              "delta");
  for (int period : {2, 3, 4, 5, 6}) {
    auto ds = bench::run(
        core::table2_setup(core::Scheme::kNone, 1.0, period, period + 1));
    auto logged = bench::run(core::table2_setup(
        core::Scheme::kUncoordinated, 1.0, period, period + 1));
    const double ds_wr = ds.component("simulation").cum_put_response_s;
    const double log_wr = logged.component("simulation").cum_put_response_s;
    std::printf("%5d ts %14.3f %14.3f %+9.1f%%\n", period, ds_wr, log_wr,
                bench::pct(log_wr, ds_wr));
  }
  return 0;
}
