// Figure 9(b): cumulative write response time, Case 2 — full data domain
// written each timestep, checkpoint period swept from 2 to 6 timesteps.
// Paper: logging increased write response time by at most 14 %.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig9b_write_response_period", argc, argv, 1);
  bench::print_header(
      "Figure 9(b) — cumulative write response time vs checkpoint period",
      "Table II setup, full domain, 40 ts, failure-free "
      "(paper: <= +14% across periods 2..6).");

  std::printf("%8s %14s %14s %10s\n", "period", "Ds (s)", "Ds+log (s)",
              "delta");
  auto cum_wr = [](const core::RunMetrics& m) {
    return m.component("simulation").cum_put_response_s;
  };
  for (int period : {2, 3, 4, 5, 6}) {
    auto ds = h.sweep([period](std::uint64_t seed) {
      auto spec =
          core::table2_setup(core::Scheme::kNone, 1.0, period, period + 1);
      spec.failures.seed = seed;
      return spec;
    });
    auto logged = h.sweep([period](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated, 1.0,
                                     period, period + 1);
      spec.failures.seed = seed;
      return spec;
    });
    const double ds_wr = bench::mean_over(ds, cum_wr);
    const double log_wr = bench::mean_over(logged, cum_wr);
    const double delta = bench::pct(log_wr, ds_wr);
    std::printf("%5d ts %14.3f %14.3f %+9.1f%%\n", period, ds_wr, log_wr,
                delta);

    Json p = Json::object();
    p.set("ckpt_period", period);
    p.set("ds_cum_write_response_s", ds_wr);
    p.set("logged_cum_write_response_s", log_wr);
    p.set("delta_pct", delta);
    h.add_point(std::move(p));
  }
  return h.finish();
}
