// Multi-level checkpoint hierarchy vs classic synchronous PFS checkpoints.
// Three modes of the Table II logged setup on a contended PFS share
// (write_bw scaled down to model checkpoint traffic competing with the
// rest of the machine):
//
//   sync-pfs      hierarchy off: every due checkpoint blocks the app for
//                 the full PFS write (the stall the drain collapses)
//   async-drain   hierarchy on (XOR group 3), no failures: the app pays
//                 only the node-local cache write; the drain agent flushes
//                 to the PFS in the background
//   cache-restart hierarchy on, one process failure and one node failure:
//                 restarts come from the cache and a partner rebuild
//                 instead of a cold PFS read
//
// The point of the figure: ckpt_stall_s collapses from the full PFS write
// cost to the local-device write cost, while drains_completed shows the
// same sets still reaching durability — and with failures, restarts are
// served by the fast levels (cache_restarts / partner_rebuilds nonzero).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig_ckpt_drain", argc, argv, 3);
  bench::print_header(
      "Multi-level checkpointing — async drain vs synchronous PFS",
      "Table II setup, 40 ts, uncoordinated logging; contended PFS share.");

  struct Mode {
    const char* name;
    int xor_group;      // 0 = hierarchy off
    bool failures;      // inject one process + one node failure
  };
  const Mode modes[] = {
      {"sync-pfs", 0, false},
      {"async-drain", 3, false},
      {"cache-restart", 3, true},
  };

  std::printf("%14s %12s %8s %8s %8s %8s %10s\n", "mode", "ckpt stall",
              "drains", "cache", "partner", "pfs-rst", "time");

  double sync_stall = 0;  // sync-pfs mode's stall (the baseline to collapse)
  for (const Mode& mode : modes) {
    auto runs = h.sweep([&mode](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated);
      spec.failures.seed = seed;
      // Checkpoint traffic competes with the rest of the machine for the
      // PFS: give it a contended share instead of the full aggregate.
      spec.pfs.write_bw = 2e9;
      spec.ckpt.xor_group = mode.xor_group;
      if (mode.failures) {
        // One process failure (freshest cache set survives) and one later
        // node failure (cache lost, partners rebuild the missing blocks).
        spec.failures.explicit_failures = {
            {.comp = 0, .ts = 14, .phase = 0.5, .node_level = false},
            {.comp = 0, .ts = 26, .phase = 0.5, .node_level = true},
        };
      }
      return spec;
    });
    const double stall = bench::mean_over(runs, [](const core::RunMetrics& m) {
      double total = 0;
      for (const auto& c : m.components) total += c.ckpt_stall_s;
      return total;
    });
    const double time = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return m.total_time_s;
    });
    auto sum = [&runs](auto pick) {
      double total = 0;
      for (const auto& r : runs) total += static_cast<double>(pick(r.metrics));
      return total / static_cast<double>(runs.size());
    };
    const double drains = sum([](const core::RunMetrics& m) {
      return m.ckpt.drains_completed;
    });
    const double cache = sum([](const core::RunMetrics& m) {
      return m.ckpt.cache_restarts;
    });
    const double partner = sum([](const core::RunMetrics& m) {
      return m.ckpt.partner_rebuilds;
    });
    const double pfs_restarts = sum([](const core::RunMetrics& m) {
      return m.ckpt.pfs_restarts;
    });
    if (mode.xor_group == 0 && !mode.failures) sync_stall = stall;

    std::printf("%14s %11.2fs %8.0f %8.0f %8.0f %8.0f %9.1fs\n", mode.name,
                stall, drains, cache, partner, pfs_restarts, time);

    Json p = Json::object();
    p.set("mode", std::string(mode.name));
    p.set("ckpt_stall_s", stall);
    p.set("stall_delta_pct",
          sync_stall > 0 ? bench::pct(stall, sync_stall) : 0.0);
    p.set("drains_completed", drains);
    p.set("cache_restarts", cache);
    p.set("partner_rebuilds", partner);
    p.set("pfs_restarts", pfs_restarts);
    p.set("total_time_s", time);
    h.add_point(std::move(p));
  }
  return h.finish();
}
