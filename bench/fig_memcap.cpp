// Memory-governor cap sweep: bounded-budget runs against the unbounded
// Fig 9(c)/(d) memory baseline. Each budget runs the Table II logged setup
// (kUncoordinated) with a per-server governor budget; the unbounded run
// (budget 0) reproduces the Fig 9(c) 100%-subset cell. The point of the
// figure: as the budget tightens, peak governed memory stays pinned under
// the budget while execution time degrades gracefully — first via
// spill-to-PFS (soft watermark), then via client backpressure (hard
// watermark). Budgets below the workload's working-set floor (~448 MB per
// server: a two-version store window plus the newest, never-evictable log
// versions) cannot make progress; 512 MB is the tightest feasible cell.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig_memcap", argc, argv, 1);
  bench::print_header(
      "Memory governor — bounded budgets vs the unbounded Fig 9(c)/(d) run",
      "Table II setup, 40 ts, uncoordinated logging; budget per server.");

  std::printf("%8s %12s %12s %10s %9s %9s %11s %9s %9s\n", "budget",
              "mem peak", "mem mean", "time", "spilled", "fetched",
              "rejected", "bp waits", "sweeps");

  double base_time = 0;  // unbounded run's execution time (budget 0)
  for (std::uint64_t budget_mb : {0, 1024, 768, 640, 512}) {
    auto runs = h.sweep([budget_mb](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated);
      spec.failures.seed = seed;
      spec.staging.memory_budget = budget_mb << 20;
      return spec;
    });
    const double peak = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.staging.total_bytes_peak);
    });
    const double mean = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return m.staging.total_bytes_mean;
    });
    const double time = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return m.total_time_s;
    });
    auto sum = [&runs](auto pick) {
      double total = 0;
      for (const auto& r : runs) total += static_cast<double>(pick(r.metrics));
      return total / static_cast<double>(runs.size());
    };
    const double spilled = sum([](const core::RunMetrics& m) {
      return m.staging.spilled_versions;
    });
    const double spilled_bytes = sum([](const core::RunMetrics& m) {
      return m.staging.spilled_bytes;
    });
    const double fetches = sum([](const core::RunMetrics& m) {
      return m.staging.spill_fetches;
    });
    const double rejected = sum([](const core::RunMetrics& m) {
      return m.staging.puts_rejected;
    });
    const double waits = sum([](const core::RunMetrics& m) {
      return m.rpc_backpressure_waits;
    });
    const double sweeps = sum([](const core::RunMetrics& m) {
      return m.staging.urgent_gc_sweeps;
    });
    if (budget_mb == 0) base_time = time;

    char label[32];
    if (budget_mb == 0) {
      std::snprintf(label, sizeof label, "unbnd");
    } else {
      std::snprintf(label, sizeof label, "%lluMB",
                    static_cast<unsigned long long>(budget_mb));
    }
    std::printf("%8s %12s %12s %8.1fs %9.0f %9.0f %11.0f %9.0f %9.0f\n",
                label,
                format_bytes(static_cast<std::uint64_t>(peak)).c_str(),
                format_bytes(static_cast<std::uint64_t>(mean)).c_str(), time,
                spilled, fetches, rejected, waits, sweeps);

    Json p = Json::object();
    p.set("budget_mb", static_cast<double>(budget_mb));
    p.set("mem_peak_bytes", peak);
    p.set("mem_mean_bytes", mean);
    p.set("total_time_s", time);
    p.set("time_delta_pct", base_time > 0 ? bench::pct(time, base_time) : 0.0);
    p.set("spilled_versions", spilled);
    p.set("spilled_bytes", spilled_bytes);
    p.set("spill_fetches", fetches);
    p.set("puts_rejected", rejected);
    p.set("backpressure_waits", waits);
    p.set("urgent_gc_sweeps", sweeps);
    h.add_point(std::move(p));
  }
  return h.finish();
}
