// Shared helpers for the figure-reproduction harnesses. Each bench binary
// regenerates one table/figure of the paper's evaluation section and prints
// the measured series next to the values the paper reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/setups.hpp"

namespace dstage::bench {

inline core::RunMetrics run(core::WorkflowSpec spec) {
  core::WorkflowRunner runner(std::move(spec));
  return runner.run();
}

/// Mean total execution time over `seeds` runs of `make(seed)`.
template <class MakeSpec>
double mean_total_time(MakeSpec make, int seeds) {
  double total = 0;
  for (int s = 1; s <= seeds; ++s)
    total += run(make(static_cast<std::uint64_t>(s))).total_time_s;
  return total / seeds;
}

inline void print_header(const char* figure, const char* description) {
  std::printf("\n=== %s ===\n%s\n\n", figure, description);
}

inline double pct(double measured, double baseline) {
  return 100.0 * (measured / baseline - 1.0);
}

}  // namespace dstage::bench
