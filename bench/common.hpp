// Shared harness for the figure-reproduction benches. Each bench binary
// regenerates one table/figure of the paper's evaluation section, prints
// the measured series next to the values the paper reports, and can emit
// the same series machine-readably.
//
// Every figure bench accepts:
//   --seeds=N     failure seeds per cell (default: the figure's own batch)
//   --threads=N   sweep worker threads (default: hardware concurrency)
//   --json[=PATH] write a BENCH_<name>.json results document
#pragma once

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/setups.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace dstage::bench {

/// One-shot run (kept for tests/examples that need a single spec).
inline core::RunMetrics run(core::WorkflowSpec spec) {
  core::WorkflowRunner runner(std::move(spec));
  return runner.run();
}

inline void print_header(const char* figure, const char* description) {
  std::printf("\n=== %s ===\n%s\n\n", figure, description);
}

inline double pct(double measured, double baseline) {
  return 100.0 * (measured / baseline - 1.0);
}

/// Mean of `f(metrics)` over a sweep's runs.
template <class F>
double mean_over(const std::vector<core::SweepRun>& runs, F f) {
  if (runs.empty()) return 0;
  double total = 0;
  for (const auto& r : runs) total += f(r.metrics);
  return total / static_cast<double>(runs.size());
}

/// Per-put response samples of one component pooled over a sweep's runs —
/// the population whose p50/p95/p99 the fig9 benches report alongside the
/// paper's cumulative means.
inline SampleSet pooled_put_response(const std::vector<core::SweepRun>& runs,
                                     const std::string& component) {
  SampleSet pooled;
  for (const auto& r : runs) {
    pooled.merge(r.metrics.component(component).put_response_s);
  }
  return pooled;
}

/// Mean total execution time over `seeds` runs of `make(seed)` — the
/// classic serial helper, now backed by the parallel sweep.
template <class MakeSpec>
double mean_total_time(MakeSpec make, int seeds) {
  return core::mean_total_time(core::run_seed_sweep(make, seeds));
}

/// Flag plumbing + JSON accumulation shared by the figure benches.
/// `--obs` turns on the observability layer for every swept run: each run's
/// metrics registry is merged into a sweep-wide aggregate, and finish()
/// writes it (with p50/p95/p99 response histograms) into the BENCH JSON.
class Harness {
 public:
  Harness(std::string name, int argc, char** argv, int default_seeds)
      : name_(std::move(name)), flags_(argc, argv) {
    seeds_ = flags_.get_int("seeds", default_seeds);
    threads_ = flags_.get_int("threads", 0);
    obs_ = flags_.get_bool("obs", false);
    json_path_ = flags_.get("json", "");
    if (json_path_ == "true") json_path_ = "BENCH_" + name_ + ".json";
  }

  [[nodiscard]] int seeds() const { return seeds_; }
  /// Bench-specific flags beyond the shared --seeds/--threads/--json/--obs.
  [[nodiscard]] int flag_int(const std::string& name, int fallback) const {
    return flags_.get_int(name, fallback);
  }
  [[nodiscard]] bool flag_bool(const std::string& name, bool fallback) const {
    return flags_.get_bool(name, fallback);
  }
  [[nodiscard]] bool obs_enabled() const { return obs_; }
  [[nodiscard]] const obs::MetricsRegistry& obs_metrics() const {
    return obs_metrics_;
  }
  [[nodiscard]] core::SweepOptions sweep_options() {
    core::SweepOptions opts;
    opts.threads = threads_;
    if (obs_) opts.metrics = &obs_metrics_;
    return opts;
  }

  /// Parallel sweep of make(seed) for seeds 1..seeds().
  std::vector<core::SweepRun> sweep(
      const std::function<core::WorkflowSpec(std::uint64_t)>& make) {
    auto wrapped = [&](std::uint64_t seed) {
      core::WorkflowSpec spec = make(seed);
      if (obs_) spec.obs.enabled = true;
      return spec;
    };
    return core::run_seed_sweep(wrapped, seeds_, sweep_options());
  }

  /// One measured cell of the figure (a subset fraction, a scale, ...).
  void add_point(Json point) { points_.push(std::move(point)); }

  /// Additional top-level key in the BENCH JSON document (e.g. a second
  /// series that is not part of the figure's main point array).
  void set_extra(std::string key, Json value) {
    extras_.emplace_back(std::move(key), std::move(value));
  }

  /// Validate flags and write the JSON document if requested. Return value
  /// is the process exit code.
  int finish() {
    bool bad = false;
    for (const auto& unknown : flags_.unused()) {
      std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
      bad = true;
    }
    if (bad) return 2;
    if (json_path_.empty()) return 0;
    Json doc = Json::object();
    doc.set("bench", name_);
    doc.set("seeds", seeds_);
    doc.set("points", std::move(points_));
    for (auto& [key, value] : extras_) doc.set(key, std::move(value));
    if (obs_ && !obs_metrics_.empty()) {
      doc.set("obs_metrics", obs_metrics_.to_json());
    }
    std::ofstream out(json_path_);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path_.c_str());
      return 1;
    }
    doc.dump(out);
    std::printf("\nresults written to %s\n", json_path_.c_str());
    return 0;
  }

 private:
  std::string name_;
  Flags flags_;
  int seeds_ = 1;
  int threads_ = 0;
  bool obs_ = false;
  std::string json_path_;
  Json points_ = Json::array();
  std::vector<std::pair<std::string, Json>> extras_;
  obs::MetricsRegistry obs_metrics_;  // sweep-wide aggregate (--obs)
};

}  // namespace dstage::bench
