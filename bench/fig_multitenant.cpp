// Multi-tenant consolidation sweep (DESIGN.md §13): N copies of the
// Table II logged workflow share one staging group and one per-server
// memory budget. Tenant 0 is a hog: it writes the full domain and its
// consumer checkpoints only once at the end, so its data log hoards every
// version it ever staged. Tenants > 0 write half-subsets and checkpoint
// normally — they are the QoS victims the figure watches. The budget
// scales with the tenant count so every cell is feasible (each weighted
// share clears its tenant's non-evictable floor), but the soft→hard gap
// is narrower than one timestep of the hog's production: with fair-share
// OFF the hog's write burst races the spill drain across the pooled hard
// watermark, so victims' puts bounce as collateral; with fair-share ON
// (weights 2:1:...:1, matching demand) per-tenant maintenance spills the
// hog down to its own share before the pool ever feels the burst, so a
// victim's tail latency stays at its solo baseline no matter what the
// hog does.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/multi_tenant.hpp"

namespace {

int tenant_of_name(const std::string& name) {
  const std::size_t at = name.rfind("@t");
  if (at == std::string::npos) return 0;
  return std::atoi(name.c_str() + at + 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig_multitenant", argc, argv, 1);
  bench::print_header(
      "Multi-tenant staging — weighted fair-share QoS vs a pooled budget",
      "Table II setup x N tenants, one staging group; tenant 0 hogs "
      "(full-domain writes), tenants > 0 are half-subset victims.");

  std::printf("%5s %8s %8s %10s %12s %12s %9s %9s %9s\n", "fair", "tenants",
              "budget", "time", "hog p99", "victim p99", "fs rej",
              "rejected", "bp waits");

  for (const bool fair : {false, true}) {
    for (const int tenants : {1, 2, 4, 8}) {
      // Per-server budget sized to the pooled working-set floor (hog
      // ~512 MB non-evictable + ~260 MB per victim) over a 0.72 headroom
      // factor. With 0.85/0.90 watermarks, the weighted soft shares land
      // at ~550 MB (hog) / ~275 MB (victim) per server — just above each
      // tenant's floor, so proactive per-share spilling is always
      // feasible — while the pooled soft→hard gap (~0.05 × budget) is
      // smaller than the ~134 MB/server the hog stages per timestep.
      const std::uint64_t budget_mb = static_cast<std::uint64_t>(
          (512.0 + 260.0 * (tenants - 1)) / 0.72);
      auto runs = h.sweep([=](std::uint64_t seed) {
        auto spec = core::table2_setup(core::Scheme::kUncoordinated);
        spec.failures.seed = seed;
        spec.staging.memory_budget = budget_mb << 20;
        spec.staging.soft_watermark = 0.85;
        spec.staging.hard_watermark = 0.90;
        spec.tenancy.tenants = tenants;
        // Demand-proportional weights: the hog writes the full domain,
        // victims half of it, so entitlements are 2:1:...:1.
        spec.tenancy.fair_share = fair;
        spec.tenancy.weights[0] = 2.0;
        for (int t = 1; t < tenants; ++t) spec.tenancy.weights[t] = 1.0;
        // Pre-expand so individual clones can be tweaked; the runtime's
        // own expansion then no-ops (tenancy.expanded).
        core::expand_tenants(spec);
        for (auto& c : spec.components) {
          if (c.tenant == 0) {
            // The hog: its consumer checkpoints once at the end of the
            // run, so the GC watermark never advances and its data log
            // hoards every version it ever staged.
            if (!c.reads.empty()) c.ckpt_period = spec.total_ts;
            continue;
          }
          // The victims: well-behaved half-subset tenants.
          for (auto& w : c.writes) w.subset_fraction *= 0.5;
          for (auto& r : c.reads) r.subset_fraction *= 0.5;
        }
        return spec;
      });

      const double time = bench::mean_over(runs, [](const core::RunMetrics& m) {
        return m.total_time_s;
      });
      auto sum = [&runs](auto pick) {
        double total = 0;
        for (const auto& r : runs) {
          total += static_cast<double>(pick(r.metrics));
        }
        return total / static_cast<double>(runs.size());
      };
      const double fs_rejects = sum([](const core::RunMetrics& m) {
        return m.staging.fair_share_rejects;
      });
      const double rejected = sum([](const core::RunMetrics& m) {
        return m.staging.puts_rejected;
      });
      const double waits = sum([](const core::RunMetrics& m) {
        return m.rpc_backpressure_waits;
      });

      // Per-tenant put-response populations pooled over the sweep, plus the
      // per-tenant peak store footprint the fair-share adherence compares.
      std::vector<SampleSet> put_response(static_cast<std::size_t>(tenants));
      std::vector<double> store_peak(static_cast<std::size_t>(tenants), 0.0);
      for (const auto& r : runs) {
        for (const auto& c : r.metrics.components) {
          const int t = tenant_of_name(c.name);
          put_response[static_cast<std::size_t>(t)].merge(c.put_response_s);
        }
        for (const auto& [t, peak] : r.metrics.staging.tenant_store_bytes_peak) {
          store_peak[static_cast<std::size_t>(t)] +=
              static_cast<double>(peak) / static_cast<double>(runs.size());
        }
      }
      double peak_total = 0;
      for (const double p : store_peak) peak_total += p;
      const double hog_p99 = put_response[0].percentile(99);
      double victim_p99 = 0;  // worst victim tail (0 when single-tenant)
      for (int t = 1; t < tenants; ++t) {
        victim_p99 = std::max(
            victim_p99, put_response[static_cast<std::size_t>(t)].percentile(99));
      }

      std::printf("%5s %8d %7lluM %8.1fs %11.4fs %11.4fs %9.0f %9.0f %9.0f\n",
                  fair ? "on" : "off", tenants,
                  static_cast<unsigned long long>(budget_mb), time, hog_p99,
                  victim_p99, fs_rejects, rejected, waits);

      Json p = Json::object();
      p.set("tenants", static_cast<double>(tenants));
      p.set("fair_share", fair ? 1.0 : 0.0);
      p.set("budget_mb", static_cast<double>(budget_mb));
      p.set("total_time_s", time);
      p.set("hog_p99_put_s", hog_p99);
      p.set("victim_p99_put_s", victim_p99);
      p.set("hog_store_peak_frac",
            peak_total > 0 ? store_peak[0] / peak_total : 0.0);
      p.set("fair_share_rejects", fs_rejects);
      p.set("puts_rejected", rejected);
      p.set("backpressure_waits", waits);
      Json per_tenant = Json::array();
      for (int t = 0; t < tenants; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        Json tj = Json::object();
        tj.set("tenant", static_cast<double>(t));
        tj.set("p50_put_s", put_response[ti].percentile(50));
        tj.set("p95_put_s", put_response[ti].percentile(95));
        tj.set("p99_put_s", put_response[ti].percentile(99));
        tj.set("store_peak_bytes", store_peak[ti]);
        per_tenant.push(std::move(tj));
      }
      p.set("per_tenant", std::move(per_tenant));
      h.add_point(std::move(p));
    }
  }
  return h.finish();
}
