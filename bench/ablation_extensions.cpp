// Ablation: the design extensions DESIGN.md calls out, measured against
// plain uncoordinated checkpointing on the Table II workload under three
// failures — (a) multi-level checkpointing (node-local + PFS levels),
// (b) proactive checkpointing at several predictor qualities, and (c) the
// staging redundancy policy's cost (write response + staging memory).
#include <utility>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  constexpr int kFailures = 3;
  bench::Harness h("ablation_extensions", argc, argv, 8);

  bench::print_header(
      "Ablation — checkpointing extensions (Table II, 3 failures)",
      "Mean over the seed batch; Un baseline vs multi-level and proactive "
      "variants.");

  auto measure = [&](const char* variant, auto mutate) {
    auto runs = h.sweep([&](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated);
      spec.failures.count = kFailures;
      spec.failures.seed = seed;
      spec.failures.node_failure_fraction = 0.3;
      mutate(spec);
      return spec;
    });
    const double total = core::mean_total_time(runs);
    const double rework = bench::mean_over(runs, [](const core::RunMetrics& m) {
      double r = 0;
      for (const auto& c : m.components) r += c.timesteps_reworked;
      return r;
    });
    Json p = Json::object();
    p.set("variant", variant);
    p.set("mean_total_time_s", total);
    p.set("mean_reworked_ts", rework);
    h.add_point(std::move(p));
    return std::pair{total, rework};
  };

  const auto [base_t, base_r] =
      measure("un_pfs_only", [](core::WorkflowSpec&) {});
  std::printf("%34s %10.1f s %8.1f reworked ts\n", "Un (PFS-only)", base_t,
              base_r);

  const auto [ml_t, ml_r] =
      measure("un_multi_level", [](core::WorkflowSpec& s) {
        for (auto& c : s.components) c.local_ckpt_period = 1;
      });
  std::printf("%34s %10.1f s %8.1f reworked ts  (%+.2f%%)\n",
              "Un + multi-level (local @1 ts)", ml_t, ml_r,
              bench::pct(ml_t, base_t));

  for (double recall : {0.5, 1.0}) {
    const auto [p_t, p_r] = measure(
        recall == 0.5 ? "un_proactive_recall_0.5" : "un_proactive_recall_1.0",
        [recall](core::WorkflowSpec& s) {
          s.failures.predictor_recall = recall;
        });
    std::printf("%30s %.1f %10.1f s %8.1f reworked ts  (%+.2f%%)\n",
                "Un + proactive, recall", recall, p_t, p_r,
                bench::pct(p_t, base_t));
  }
  const auto [fa_t, fa_r] =
      measure("un_proactive_false_alarms", [](core::WorkflowSpec& s) {
        s.failures.predictor_recall = 1.0;
        s.failures.predictor_false_alarms = 6;
      });
  std::printf("%34s %10.1f s %8.1f reworked ts  (%+.2f%%)\n",
              "Un + proactive, 6 false alarms", fa_t, fa_r,
              bench::pct(fa_t, base_t));

  bench::print_header(
      "Ablation — staging redundancy policy (Table II, failure-free)",
      "Cost of protecting staged + logged data against staging-server "
      "loss.");
  std::printf("%22s %14s %14s %14s\n", "policy", "write resp", "vs none",
              "staging bytes");
  double none_wr = 0;
  for (int p = 0; p < 3; ++p) {
    const char* label = "none";
    const char* variant = "redundancy_none";
    auto runs = h.sweep([&](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated);
      spec.failures.seed = seed;
      if (p == 1) {
        spec.server.policy.kind = resilience::Redundancy::kReplication;
        spec.server.policy.replicas = 2;
      } else if (p == 2) {
        spec.server.policy.kind = resilience::Redundancy::kErasureCode;
        spec.server.policy.rs_k = 4;
        spec.server.policy.rs_m = 2;
      }
      return spec;
    });
    if (p == 1) {
      label = "replication x2";
      variant = "redundancy_replication_x2";
    } else if (p == 2) {
      label = "erasure RS(4,2)";
      variant = "redundancy_rs_4_2";
    }
    const double wr = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return m.component("simulation").cum_put_response_s;
    });
    const double mem = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return m.staging.total_bytes_mean;
    });
    if (p == 0) none_wr = wr;
    std::printf("%22s %13.3fs %+13.1f%% %14s\n", label, wr,
                bench::pct(wr, none_wr),
                format_bytes(static_cast<std::uint64_t>(mem)).c_str());

    Json pj = Json::object();
    pj.set("variant", variant);
    pj.set("cum_write_response_s", wr);
    pj.set("vs_none_pct", bench::pct(wr, none_wr));
    pj.set("staging_mem_mean_bytes", mem);
    h.add_point(std::move(pj));
  }
  return h.finish();
}
