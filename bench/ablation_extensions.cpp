// Ablation: the design extensions DESIGN.md calls out, measured against
// plain uncoordinated checkpointing on the Table II workload under three
// failures — (a) multi-level checkpointing (node-local + PFS levels),
// (b) proactive checkpointing at several predictor qualities, and (c) the
// staging redundancy policy's cost (write response + staging memory).
#include "bench/common.hpp"

int main() {
  using namespace dstage;
  constexpr int kSeeds = 8;
  constexpr int kFailures = 3;

  bench::print_header(
      "Ablation — checkpointing extensions (Table II, 3 failures)",
      "Mean over 8 seeds; Un baseline vs multi-level and proactive "
      "variants.");

  auto measure = [&](auto mutate) {
    double total = 0, rework = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated);
      spec.failures.count = kFailures;
      spec.failures.seed = static_cast<std::uint64_t>(seed);
      spec.failures.node_failure_fraction = 0.3;
      mutate(spec);
      auto m = bench::run(std::move(spec));
      total += m.total_time_s;
      for (const auto& c : m.components) rework += c.timesteps_reworked;
    }
    return std::pair{total / kSeeds, rework / kSeeds};
  };

  const auto [base_t, base_r] = measure([](core::WorkflowSpec&) {});
  std::printf("%34s %10.1f s %8.1f reworked ts\n", "Un (PFS-only)", base_t,
              base_r);

  const auto [ml_t, ml_r] = measure([](core::WorkflowSpec& s) {
    for (auto& c : s.components) c.local_ckpt_period = 1;
  });
  std::printf("%34s %10.1f s %8.1f reworked ts  (%+.2f%%)\n",
              "Un + multi-level (local @1 ts)", ml_t, ml_r,
              bench::pct(ml_t, base_t));

  for (double recall : {0.5, 1.0}) {
    const auto [p_t, p_r] = measure([recall](core::WorkflowSpec& s) {
      s.failures.predictor_recall = recall;
    });
    std::printf("%30s %.1f %10.1f s %8.1f reworked ts  (%+.2f%%)\n",
                "Un + proactive, recall", recall, p_t, p_r,
                bench::pct(p_t, base_t));
  }
  const auto [fa_t, fa_r] = measure([](core::WorkflowSpec& s) {
    s.failures.predictor_recall = 1.0;
    s.failures.predictor_false_alarms = 6;
  });
  std::printf("%34s %10.1f s %8.1f reworked ts  (%+.2f%%)\n",
              "Un + proactive, 6 false alarms", fa_t, fa_r,
              bench::pct(fa_t, base_t));

  bench::print_header(
      "Ablation — staging redundancy policy (Table II, failure-free)",
      "Cost of protecting staged + logged data against staging-server "
      "loss.");
  std::printf("%22s %14s %14s %14s\n", "policy", "write resp", "vs none",
              "staging bytes");
  double none_wr = 0;
  for (int p = 0; p < 3; ++p) {
    auto spec = core::table2_setup(core::Scheme::kUncoordinated);
    const char* label = "none";
    if (p == 1) {
      spec.server.policy.kind = resilience::Redundancy::kReplication;
      spec.server.policy.replicas = 2;
      label = "replication x2";
    } else if (p == 2) {
      spec.server.policy.kind = resilience::Redundancy::kErasureCode;
      spec.server.policy.rs_k = 4;
      spec.server.policy.rs_m = 2;
      label = "erasure RS(4,2)";
    }
    auto m = bench::run(std::move(spec));
    const double wr = m.component("simulation").cum_put_response_s;
    if (p == 0) none_wr = wr;
    std::printf("%22s %13.3fs %+13.1f%% %14s\n", label, wr,
                bench::pct(wr, none_wr),
                format_bytes(static_cast<std::uint64_t>(
                                 m.staging.total_bytes_mean))
                    .c_str());
  }
  return 0;
}
