// Figure 9(c): staging memory usage vs subset size. The paper reports data/
// event logging raising memory by 81/82/84/86/86 % over the original
// staging's. Our accounting counts the data log's retained payloads in full
// (the paper's implementation appears to share buffers more aggressively),
// so the measured overhead is higher in absolute terms; the *shape* — flat
// across subset sizes, roughly doubling memory — is preserved. Both peak
// and time-averaged bytes (nominal, paper-scale) are reported.
#include "bench/common.hpp"

#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig9c_memory_subset", argc, argv, 1);
  bench::print_header(
      "Figure 9(c) — staging memory usage vs subset size",
      "Table II setup, 40 ts, failure-free (paper: +81..86% from logging).");

  std::printf("%8s %12s %12s %10s %12s %12s %10s\n", "subset", "Ds mean",
              "log mean", "delta", "Ds peak", "log peak", "delta");
  auto mem_mean = [](const core::RunMetrics& m) {
    return m.staging.total_bytes_mean;
  };
  auto mem_peak = [](const core::RunMetrics& m) {
    return static_cast<double>(m.staging.total_bytes_peak);
  };
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto ds = h.sweep([fraction](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kNone, fraction);
      spec.failures.seed = seed;
      return spec;
    });
    auto lg = h.sweep([fraction](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated, fraction);
      spec.failures.seed = seed;
      return spec;
    });
    const double ds_mean = bench::mean_over(ds, mem_mean);
    const double lg_mean = bench::mean_over(lg, mem_mean);
    const double ds_peak = bench::mean_over(ds, mem_peak);
    const double lg_peak = bench::mean_over(lg, mem_peak);
    std::printf(
        "%7.0f%% %12s %12s %+9.1f%% %12s %12s %+9.1f%%\n", fraction * 100,
        format_bytes(static_cast<std::uint64_t>(ds_mean)).c_str(),
        format_bytes(static_cast<std::uint64_t>(lg_mean)).c_str(),
        bench::pct(lg_mean, ds_mean),
        format_bytes(static_cast<std::uint64_t>(ds_peak)).c_str(),
        format_bytes(static_cast<std::uint64_t>(lg_peak)).c_str(),
        bench::pct(lg_peak, ds_peak));

    Json p = Json::object();
    p.set("subset_fraction", fraction);
    p.set("ds_mem_mean_bytes", ds_mean);
    p.set("logged_mem_mean_bytes", lg_mean);
    p.set("mean_delta_pct", bench::pct(lg_mean, ds_mean));
    p.set("ds_mem_peak_bytes", ds_peak);
    p.set("logged_mem_peak_bytes", lg_peak);
    p.set("peak_delta_pct", bench::pct(lg_peak, ds_peak));
    h.add_point(std::move(p));
  }
  return h.finish();
}
