// Figure 9(c): staging memory usage vs subset size. The paper reports data/
// event logging raising memory by 81/82/84/86/86 % over the original
// staging's. Our accounting counts the data log's retained payloads in full
// (the paper's implementation appears to share buffers more aggressively),
// so the measured overhead is higher in absolute terms; the *shape* — flat
// across subset sizes, roughly doubling memory — is preserved. Both peak
// and time-averaged bytes (nominal, paper-scale) are reported.
#include "bench/common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace dstage;
  bench::print_header(
      "Figure 9(c) — staging memory usage vs subset size",
      "Table II setup, 40 ts, failure-free (paper: +81..86% from logging).");

  std::printf("%8s %12s %12s %10s %12s %12s %10s\n", "subset", "Ds mean",
              "log mean", "delta", "Ds peak", "log peak", "delta");
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto ds = bench::run(core::table2_setup(core::Scheme::kNone, fraction));
    auto lg =
        bench::run(core::table2_setup(core::Scheme::kUncoordinated, fraction));
    std::printf(
        "%7.0f%% %12s %12s %+9.1f%% %12s %12s %+9.1f%%\n", fraction * 100,
        format_bytes(static_cast<std::uint64_t>(ds.staging.total_bytes_mean))
            .c_str(),
        format_bytes(static_cast<std::uint64_t>(lg.staging.total_bytes_mean))
            .c_str(),
        bench::pct(lg.staging.total_bytes_mean, ds.staging.total_bytes_mean),
        format_bytes(ds.staging.total_bytes_peak).c_str(),
        format_bytes(lg.staging.total_bytes_peak).c_str(),
        bench::pct(static_cast<double>(lg.staging.total_bytes_peak),
                   static_cast<double>(ds.staging.total_bytes_peak)));
  }
  return 0;
}
