// Figure 9(e): total workflow execution time under one synthetic failure
// (MTBF ~10 min over the 40-ts window) for the five configurations the
// paper compares:
//   Ds    — original staging, failure-free reference
//   Co+1f — global coordinated checkpoint/restart
//   Un+1f — uncoordinated C/R with data logging
//   Hy+1f — hybrid (C/R simulation + replicated analytic) with logging
//   In+1f — individual C/R without logging (lower bound, sacrifices
//           consistency — its anomaly count is reported)
// Paper: Un and Hy achieve nearly the execution time of In and reduce total
// time by ~3 % relative to Co (both cases).
#include "bench/common.hpp"

int main() {
  using namespace dstage;
  bench::print_header(
      "Figure 9(e) — total workflow execution time (Table II, 1 failure)",
      "Averaged over 16 failure seeds; anomalies shown for the unlogged "
      "individual scheme (paper: Un/Hy ~= In, ~3% under Co).");

  struct Row {
    const char* label;
    core::Scheme scheme;
    int failures;
  };
  const Row rows[] = {
      {"Ds", core::Scheme::kNone, 0},
      {"Co+1f", core::Scheme::kCoordinated, 1},
      {"Un+1f", core::Scheme::kUncoordinated, 1},
      {"Hy+1f", core::Scheme::kHybrid, 1},
      {"In+1f", core::Scheme::kIndividual, 1},
  };
  constexpr int kSeeds = 16;

  std::printf("%8s %12s %12s %12s\n", "config", "time (s)", "vs Co",
              "anomalies");
  double co_time = 0;
  for (const Row& row : rows) {
    double total = 0;
    int anomalies = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      auto spec = core::table2_setup(row.scheme);
      spec.failures.count = row.failures;
      spec.failures.seed = static_cast<std::uint64_t>(seed);
      auto m = bench::run(std::move(spec));
      total += m.total_time_s;
      anomalies += m.total_anomalies();
    }
    total /= kSeeds;
    if (row.scheme == core::Scheme::kCoordinated) co_time = total;
    if (co_time > 0 && row.scheme != core::Scheme::kNone) {
      std::printf("%8s %12.1f %+11.2f%% %12d\n", row.label, total,
                  bench::pct(total, co_time), anomalies);
    } else {
      std::printf("%8s %12.1f %12s %12d\n", row.label, total, "-", anomalies);
    }
  }
  return 0;
}
