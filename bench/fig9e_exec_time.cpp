// Figure 9(e): total workflow execution time under one synthetic failure
// (MTBF ~10 min over the 40-ts window) for the five configurations the
// paper compares:
//   Ds    — original staging, failure-free reference
//   Co+1f — global coordinated checkpoint/restart
//   Un+1f — uncoordinated C/R with data logging
//   Hy+1f — hybrid (C/R simulation + replicated analytic) with logging
//   In+1f — individual C/R without logging (lower bound, sacrifices
//           consistency — its anomaly count is reported)
// Paper: Un and Hy achieve nearly the execution time of In and reduce total
// time by ~3 % relative to Co (both cases).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig9e_exec_time", argc, argv, 16);
  bench::print_header(
      "Figure 9(e) — total workflow execution time (Table II, 1 failure)",
      "Averaged over the failure-seed batch; anomalies shown for the "
      "unlogged individual scheme (paper: Un/Hy ~= In, ~3% under Co).");

  struct Row {
    const char* label;
    core::Scheme scheme;
    int failures;
  };
  const Row rows[] = {
      {"Ds", core::Scheme::kNone, 0},
      {"Co+1f", core::Scheme::kCoordinated, 1},
      {"Un+1f", core::Scheme::kUncoordinated, 1},
      {"Hy+1f", core::Scheme::kHybrid, 1},
      {"In+1f", core::Scheme::kIndividual, 1},
  };

  std::printf("%8s %12s %12s %12s\n", "config", "time (s)", "vs Co",
              "anomalies");
  double co_time = 0;
  for (const Row& row : rows) {
    auto runs = h.sweep([&row](std::uint64_t seed) {
      auto spec = core::table2_setup(row.scheme);
      spec.failures.count = row.failures;
      spec.failures.seed = seed;
      return spec;
    });
    const double total = core::mean_total_time(runs);
    int anomalies = 0;
    for (const auto& r : runs) anomalies += r.metrics.total_anomalies();
    if (row.scheme == core::Scheme::kCoordinated) co_time = total;

    Json p = Json::object();
    p.set("config", row.label);
    p.set("scheme", core::scheme_name(row.scheme));
    p.set("failures", row.failures);
    p.set("mean_total_time_s", total);
    p.set("anomalies", anomalies);
    if (co_time > 0 && row.scheme != core::Scheme::kNone) {
      const double vs_co = bench::pct(total, co_time);
      std::printf("%8s %12.1f %+11.2f%% %12d\n", row.label, total, vs_co,
                  anomalies);
      p.set("vs_co_pct", vs_co);
    } else {
      std::printf("%8s %12.1f %12s %12d\n", row.label, total, "-", anomalies);
    }
    h.add_point(std::move(p));
  }
  return h.finish();
}
