// Elastic staging group: membership churn against the fixed-group
// baseline. Three workflow scenarios sweep join/leave events over the
// Table II logged setup — a join storm (3 servers grow to 5), the paper's
// full grow/shrink episode (3 -> 5 -> 3), and a retire under governor
// pressure — reporting the data the resilver moved, the time it spent
// moving it, and the execution-time delta the churn cost the workflow.
// A fourth scenario measures degraded-read latency at the staging layer:
// RS(2, 1) reads served by fragment reconstruction while the chunk owner
// is down, next to the same reads served healthy.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "net/rpc.hpp"
#include "sim/spawn.hpp"
#include "staging/client.hpp"
#include "staging/group.hpp"
#include "staging/server.hpp"

namespace dstage {
namespace {

/// One workflow cell: Table II uncoordinated-logging run with the given
/// elastic shape.
core::WorkflowSpec elastic_spec(std::uint64_t seed, int servers, int standby,
                                std::vector<core::ElasticEvent> events,
                                std::uint64_t budget_mb) {
  auto spec = core::table2_setup(core::Scheme::kUncoordinated);
  spec.failures.seed = seed;
  spec.staging_servers = servers;
  spec.elastic.standby_servers = standby;
  spec.elastic.events = std::move(events);
  spec.staging.memory_budget = budget_mb << 20;
  return spec;
}

struct DegradedPoint {
  double healthy_get_s = 0;   // mean healthy read latency
  double degraded_get_s = 0;  // mean reconstructed read latency
  std::uint64_t degraded_read_count = 0;
  std::uint64_t fragment_fetches = 0;
  std::uint64_t bytes_read = 0;
};

/// Staging-layer degraded-read latency: a 3-server RS(2, 1) group serves
/// the same reads healthy and with the owner down (reconstructing every
/// piece from the surviving k fragments).
DegradedPoint run_degraded(staging::Version versions) {
  sim::Engine eng;
  net::Fabric fabric{eng, {}};
  cluster::Cluster cluster{eng, fabric};
  const Box domain = Box::from_dims(64, 64, 64);
  dht::SpatialIndex index(domain, 3, 8);

  staging::ServerParams params;
  params.logging = true;
  params.policy.kind = resilience::Redundancy::kErasureCode;
  params.policy.rs_k = 2;
  params.policy.rs_m = 1;

  std::vector<cluster::VprocId> vprocs;
  std::vector<std::unique_ptr<staging::StagingServer>> servers;
  for (int s = 0; s < 3; ++s) {
    auto vp = cluster.add_vproc("srv" + std::to_string(s), cluster.add_node());
    vprocs.push_back(vp);
    servers.push_back(
        std::make_unique<staging::StagingServer>(cluster, vp, params));
    servers.back()->register_var("f", {{1, true}});
  }
  std::vector<net::EndpointId> endpoints;
  for (auto vp : vprocs) endpoints.push_back(cluster.vproc(vp).endpoint);
  std::vector<staging::StagingServer*> raw;
  for (std::size_t s = 0; s < servers.size(); ++s) {
    servers[s]->set_peers(static_cast<int>(s), endpoints);
    servers[s]->set_group_index(&index);
    servers[s]->apply_membership(index.epoch(), index.active_servers());
    servers[s]->start();
    raw.push_back(servers[s].get());
  }
  auto gm_vproc = cluster.add_vproc("group-mgr", cluster.add_node());
  staging::GroupManager group(cluster, gm_vproc, index, std::move(raw));
  group.start();

  auto make_client = [&](staging::AppId app) {
    auto vp =
        cluster.add_vproc("app" + std::to_string(app), cluster.add_node());
    staging::ClientParams cp;
    cp.app = app;
    cp.logged = true;
    cp.mem_scale = 4096;
    cp.put_timeout = sim::seconds(15);
    cp.get_timeout = sim::seconds(30);
    auto client = std::make_unique<staging::StagingClient>(cluster, index,
                                                           vprocs, vp, cp);
    client->set_group_endpoint(group.endpoint());
    return client;
  };
  auto producer = make_client(0);
  auto consumer = make_client(1);
  consumer->set_resilience_policy(params.policy);
  consumer->set_degraded_reads(true);
  std::set<int> down;
  consumer->set_degraded_probe(
      [&](int server) { return down.count(server) > 0; });

  DegradedPoint point;
  sim::spawn(eng, [&]() -> sim::Task<void> {
    sim::Ctx ctx{&eng, nullptr};
    for (staging::Version v = 1; v <= versions; ++v)
      co_await producer->put(ctx, "f", v, domain);
    co_await ctx.delay(sim::seconds(2));  // fragments propagate

    for (staging::Version v = 1; v <= versions; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, domain);
      point.healthy_get_s += gr.response_time.seconds();
    }
    down.insert(0);  // the owner of the lowest cells goes dark, unrecovered
    for (staging::Version v = 1; v <= versions; ++v) {
      auto gr = co_await consumer->get(ctx, "f", v, domain);
      point.degraded_get_s += gr.response_time.seconds();
      point.bytes_read += gr.nominal_bytes;
    }
  });
  eng.run();

  point.healthy_get_s /= versions;
  point.degraded_get_s /= versions;
  point.degraded_read_count = consumer->degraded_read_count();
  for (const auto& s : servers)
    point.fragment_fetches += s->stats().fragment_fetches;
  return point;
}

}  // namespace
}  // namespace dstage

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig_elastic", argc, argv, 3);
  bench::print_header(
      "Elastic staging group — membership churn vs the fixed-group baseline",
      "Table II setup, 40 ts, uncoordinated logging; events fire mid-run.");

  struct Scenario {
    const char* name;
    int servers;
    int standby;
    std::vector<core::ElasticEvent> events;
    std::uint64_t budget_mb;
  };
  const Scenario scenarios[] = {
      {"fixed", 4, 0, {}, 0},
      {"join-storm", 3, 2, {{10, true, -1}, {12, true, -1}}, 0},
      {"grow-shrink",
       3,
       2,
       {{10, true, -1}, {12, true, -1}, {25, false, -1}, {27, false, -1}},
       0},
      {"retire-pressure", 4, 0, {{20, false, -1}}, 1024},
  };

  std::printf("%16s %10s %12s %12s %10s %8s %8s\n", "scenario", "time",
              "moved", "resilver", "epoch", "rejects", "delta");

  double base_time = 0;  // fixed-group run's execution time
  for (const Scenario& sc : scenarios) {
    auto runs = h.sweep([&sc](std::uint64_t seed) {
      return elastic_spec(seed, sc.servers, sc.standby, sc.events,
                          sc.budget_mb);
    });
    const double time = bench::mean_over(
        runs, [](const core::RunMetrics& m) { return m.total_time_s; });
    const double moved = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.staging.resilver_bytes_moved);
    });
    const double chunks = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.staging.resilver_chunks_moved);
    });
    const double resilver_s = bench::mean_over(
        runs,
        [](const core::RunMetrics& m) { return m.staging.resilver_time_s; });
    const double epoch = bench::mean_over(runs, [](const core::RunMetrics& m) {
      return static_cast<double>(m.staging.membership_epoch);
    });
    const double rejects = bench::mean_over(
        runs, [](const core::RunMetrics& m) {
          return static_cast<double>(m.staging.wrong_epoch_rejects);
        });
    if (sc.events.empty()) base_time = time;

    std::printf("%16s %9.1fs %12s %10.3fs %10.0f %8.0f %+7.1f%%\n", sc.name,
                time,
                format_bytes(static_cast<std::uint64_t>(moved)).c_str(),
                resilver_s, epoch, rejects,
                base_time > 0 ? bench::pct(time, base_time) : 0.0);

    Json p = Json::object();
    p.set("scenario", sc.name);
    p.set("total_time_s", time);
    p.set("time_delta_pct", base_time > 0 ? bench::pct(time, base_time) : 0.0);
    p.set("bytes_moved", moved);
    p.set("chunks_moved", chunks);
    p.set("resilver_time_s", resilver_s);
    p.set("membership_epoch", epoch);
    p.set("wrong_epoch_rejects", rejects);
    p.set("degraded_read_count", 0.0);
    h.add_point(std::move(p));
  }

  // Degraded-read latency: reconstruction cost on the get path while the
  // chunk owner is down, RS(2, 1), staging layer.
  const DegradedPoint d = run_degraded(4);
  std::printf("%16s %9.3fs vs %.3fs healthy  (%llu reads, %llu fetches)\n",
              "degraded-read", d.degraded_get_s, d.healthy_get_s,
              static_cast<unsigned long long>(d.degraded_read_count),
              static_cast<unsigned long long>(d.fragment_fetches));

  Json p = Json::object();
  p.set("scenario", "degraded-read");
  p.set("healthy_get_s", d.healthy_get_s);
  p.set("degraded_get_s", d.degraded_get_s);
  p.set("latency_delta_pct", d.healthy_get_s > 0
                                 ? bench::pct(d.degraded_get_s, d.healthy_get_s)
                                 : 0.0);
  p.set("bytes_moved", 0.0);
  p.set("resilver_time_s", 0.0);
  p.set("degraded_read_count", static_cast<double>(d.degraded_read_count));
  p.set("fragment_fetches", static_cast<double>(d.fragment_fetches));
  h.add_point(std::move(p));

  return h.finish();
}
