// Figure 9(d): staging memory usage vs checkpoint period. Less frequent
// checkpoints mean longer data/event queues in the staging area: the paper
// reports +76/79/84/89/97 % for periods 2..6. Our retention accounting is
// stricter (see fig9c), so absolute percentages are higher, but the rising
// trend with checkpoint period is reproduced.
#include "bench/common.hpp"

#include "util/stats.hpp"

int main() {
  using namespace dstage;
  bench::print_header(
      "Figure 9(d) — staging memory usage vs checkpoint period",
      "Table II setup, full domain, 40 ts, failure-free "
      "(paper: +76/79/84/89/97% for periods 2..6).");

  const double paper[] = {76, 79, 84, 89, 97};
  std::printf("%8s %12s %12s %10s %12s\n", "period", "Ds mean", "log mean",
              "delta", "paper");
  int i = 0;
  for (int period : {2, 3, 4, 5, 6}) {
    auto ds = bench::run(
        core::table2_setup(core::Scheme::kNone, 1.0, period, period + 1));
    auto lg = bench::run(core::table2_setup(core::Scheme::kUncoordinated,
                                            1.0, period, period + 1));
    std::printf(
        "%5d ts %12s %12s %+9.1f%% %+11.0f%%\n", period,
        format_bytes(static_cast<std::uint64_t>(ds.staging.total_bytes_mean))
            .c_str(),
        format_bytes(static_cast<std::uint64_t>(lg.staging.total_bytes_mean))
            .c_str(),
        bench::pct(lg.staging.total_bytes_mean, ds.staging.total_bytes_mean),
        paper[i++]);
  }
  return 0;
}
