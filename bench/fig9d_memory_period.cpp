// Figure 9(d): staging memory usage vs checkpoint period. Less frequent
// checkpoints mean longer data/event queues in the staging area: the paper
// reports +76/79/84/89/97 % for periods 2..6. Our retention accounting is
// stricter (see fig9c), so absolute percentages are higher, but the rising
// trend with checkpoint period is reproduced.
#include "bench/common.hpp"

#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dstage;
  bench::Harness h("fig9d_memory_period", argc, argv, 1);
  bench::print_header(
      "Figure 9(d) — staging memory usage vs checkpoint period",
      "Table II setup, full domain, 40 ts, failure-free "
      "(paper: +76/79/84/89/97% for periods 2..6).");

  const double paper[] = {76, 79, 84, 89, 97};
  std::printf("%8s %12s %12s %10s %12s\n", "period", "Ds mean", "log mean",
              "delta", "paper");
  auto mem_mean = [](const core::RunMetrics& m) {
    return m.staging.total_bytes_mean;
  };
  int i = 0;
  for (int period : {2, 3, 4, 5, 6}) {
    auto ds = h.sweep([period](std::uint64_t seed) {
      auto spec =
          core::table2_setup(core::Scheme::kNone, 1.0, period, period + 1);
      spec.failures.seed = seed;
      return spec;
    });
    auto lg = h.sweep([period](std::uint64_t seed) {
      auto spec = core::table2_setup(core::Scheme::kUncoordinated, 1.0,
                                     period, period + 1);
      spec.failures.seed = seed;
      return spec;
    });
    const double ds_mean = bench::mean_over(ds, mem_mean);
    const double lg_mean = bench::mean_over(lg, mem_mean);
    const double delta = bench::pct(lg_mean, ds_mean);
    std::printf("%5d ts %12s %12s %+9.1f%% %+11.0f%%\n", period,
                format_bytes(static_cast<std::uint64_t>(ds_mean)).c_str(),
                format_bytes(static_cast<std::uint64_t>(lg_mean)).c_str(),
                delta, paper[i]);

    Json p = Json::object();
    p.set("ckpt_period", period);
    p.set("ds_mem_mean_bytes", ds_mean);
    p.set("logged_mem_mean_bytes", lg_mean);
    p.set("delta_pct", delta);
    p.set("paper_delta_pct", paper[i]);
    h.add_point(std::move(p));
    ++i;
  }
  return h.finish();
}
