// forensics — offline post-mortem for forensic bundles dumped by the
// flight recorder (check/forensics). Loads one or more bundle JSON files
// (written by `campaign --forensics=DIR` or attached to oracle reports),
// reconstructs the causal chain backwards from the recorded events, and
// names the first event where the failing run diverged from its memoized
// failure-free reference.
//
//   forensics out/bundle-3.json
//   forensics out/*.json                  # analyze a whole campaign's dumps
//   forensics --chain-only out/bundle-3.json
//
// Exit codes: 0 = every bundle parsed and a divergence was named,
// 1 = a bundle parsed but no divergence survived the rings, 2 = bad
// input (unreadable file, malformed JSON, no files given).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/forensics.hpp"
#include "util/flags.hpp"

namespace {

using namespace dstage;

int usage() {
  std::puts(
      "usage: forensics [options] BUNDLE.json [BUNDLE.json ...]\n"
      "  --chain-only   print only the causal chain, no bundle header\n"
      "  --help         this text\n"
      "\n"
      "Bundles are written by `campaign --forensics=DIR` when a schedule\n"
      "violates an oracle invariant, the recorder notes a loud degradation,\n"
      "or an --expect-fail campaign unexpectedly passes.");
  return 2;
}

void print_event(const obs::FrDecoded& e, const char* marker) {
  std::printf("  %s[seq %llu] t=%.6fs %-14s %s",
              marker, static_cast<unsigned long long>(e.seq),
              static_cast<double>(e.at_ns) * 1e-9, e.kind.c_str(),
              e.track.c_str());
  if (!e.detail.empty()) std::printf(" %s", e.detail.c_str());
  std::printf(" a=%lld b=%lld\n", static_cast<long long>(e.a),
              static_cast<long long>(e.b));
}

/// Analyze one bundle. Returns 0 (divergence named) or 1 (none found).
int analyze(const std::string& path, const check::ForensicBundle& b,
            bool chain_only) {
  if (!chain_only) {
    std::printf("bundle: %s\n", path.c_str());
    std::printf("  trigger:   %s\n", b.trigger.c_str());
    std::printf("  detail:    %s\n", b.detail.c_str());
    std::printf("  repro:     --repro='%s'\n", b.repro.c_str());
    std::printf("  sabotage:  %s\n", b.sabotage.c_str());
    std::printf("  digests:   run=%llu reference=%llu%s\n",
                static_cast<unsigned long long>(b.trace_digest),
                static_cast<unsigned long long>(b.reference_digest),
                b.trace_digest == b.reference_digest ? " (identical)"
                                                     : " (diverged)");
    std::printf("  recorder:  %llu events recorded, %llu lost to ring "
                "wraparound, %zu retained (%zu reference)\n",
                static_cast<unsigned long long>(b.events_recorded),
                static_cast<unsigned long long>(b.events_dropped),
                b.events.size(), b.reference_events.size());
    for (const std::string& d : b.degradations) {
      std::printf("  degradation: %s\n", d.c_str());
    }
  }

  const check::Divergence div = check::find_divergence(b);
  if (!div.found) {
    std::printf("no divergent event survived the rings (%zu events "
                "retained); re-run the repro with a larger ring if the "
                "history was truncated\n",
                b.events.size());
    return 1;
  }

  std::printf("first divergent event:\n");
  print_event(b.events[div.index], "");
  std::printf("  %s\n", div.what.c_str());
  std::printf("causal chain (oldest first, '>' = the divergent event):\n");
  for (const obs::FrDecoded& e : div.causal_chain) {
    print_event(e, e.seq == b.events[div.index].seq ? "> " : "  ");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();
  std::vector<std::string> paths = flags.positional();
  // The flag parser reads `--chain-only FILE` as a valued flag; a value
  // that is not a boolean token is really the first bundle path.
  const std::string chain_val = flags.get("chain-only", "false");
  bool chain_only =
      chain_val == "true" || chain_val == "1" || chain_val == "yes";
  if (!chain_only && chain_val != "false" && chain_val != "0" &&
      chain_val != "no") {
    chain_only = true;
    paths.insert(paths.begin(), chain_val);
  }
  for (const std::string& flag : flags.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return usage();
  }
  if (paths.empty()) {
    std::fputs("forensics: no bundle files given\n", stderr);
    return usage();
  }

  int rc = 0;
  bool first = true;
  for (const std::string& path : paths) {
    if (!first) std::printf("\n");
    first = false;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "forensics: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    check::ForensicBundle bundle;
    try {
      bundle = check::bundle_from_json(buf.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "forensics: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    rc = std::max(rc, analyze(path, bundle, chain_only));
  }
  return rc;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
