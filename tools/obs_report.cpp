// obs_report — run one instrumented workflow and print the Fig. 9(e)-style
// per-phase execution-time breakdown plus the causal critical path of every
// recovery, from the observability span stream. Optionally export the span
// stream as Chrome trace-event JSON (load in Perfetto / chrome://tracing)
// and the breakdown as a JSON document.
//
//   obs_report --scheme=co --failures=1 --seed=3
//   obs_report --scheme=hy --failures=2 --trace-json=run.trace.json
//   obs_report --validate=run.trace.json        # CI: exit 1 if malformed
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "core/executor.hpp"
#include "core/setups.hpp"
#include "core/sweep.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"
#include "staging/tenant.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace dstage;

core::Scheme parse_scheme(const std::string& name) {
  if (name == "ds" || name == "none") return core::Scheme::kNone;
  if (name == "co") return core::Scheme::kCoordinated;
  if (name == "un") return core::Scheme::kUncoordinated;
  if (name == "in") return core::Scheme::kIndividual;
  if (name == "hy") return core::Scheme::kHybrid;
  throw std::invalid_argument("unknown scheme '" + name +
                              "' (expected ds|co|un|in|hy)");
}

// The tenant a span track belongs to, parsed from the expand_tenants()
// "@t<N>" name suffix. Tracks without a suffix — tenant 0's components and
// shared infrastructure (staging servers, spill gateway) — land in bucket
// 0, which the rollup labels accordingly.
int track_tenant(const std::string& track) {
  const std::size_t at = track.rfind("@t");
  if (at == std::string::npos) return 0;
  return std::atoi(track.c_str() + at + 2);
}

// Collapse the per-track breakdown into one synthetic track per tenant, so
// print_breakdown() renders a per-tenant phase table. Totals are summed
// across the tenant's tracks (a rollup of attributed time, not a wall
// clock).
obs::Breakdown by_tenant_rollup(const obs::Breakdown& b) {
  obs::Breakdown out;
  out.span_horizon_ns = b.span_horizon_ns;
  std::map<int, obs::TrackBreakdown> buckets;
  for (const auto& t : b.tracks) {
    const int tenant = track_tenant(t.track);
    auto& bucket = buckets[tenant];
    bucket.track = tenant == 0 ? "tenant 0 (+shared)"
                               : "tenant " + std::to_string(tenant);
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
      bucket.phase_ns[p] += t.phase_ns[p];
    bucket.total_ns += t.total_ns;
  }
  for (auto& [tenant, bucket] : buckets) out.tracks.push_back(bucket);
  return out;
}

int usage() {
  std::puts(
      "usage: obs_report [options]\n"
      "  --setup=table2|table3       experiment preset        [table2]\n"
      "  --scale=0..4                table3 scale index       [0]\n"
      "  --scheme=ds|co|un|in|hy     fault-tolerance scheme   [co]\n"
      "  --failures=N                injected failures        [1]\n"
      "  --seed=N                    failure seed             [1]\n"
      "  --timesteps=N               run length               [40]\n"
      "  --tenants=N                 co-located workflow copies [1]\n"
      "  --by-tenant                 roll the phase breakdown up per tenant\n"
      "  --trace-json=FILE           export Chrome trace-event JSON\n"
      "  --json=FILE                 export breakdown + metrics JSON\n"
      "  --validate=FILE             validate an exported trace instead\n"
      "  --help                      this text");
  return 2;
}

int run_validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const obs::TraceValidation v = obs::validate_chrome_trace(buf.str());
  if (!v.ok) {
    std::fprintf(stderr, "%s: INVALID (%zu events)\n", path.c_str(),
                 v.events);
    for (const auto& e : v.errors) {
      std::fprintf(stderr, "  %s\n", e.c_str());
    }
    return 1;
  }
  std::printf("%s: OK (%zu events)\n", path.c_str(), v.events);
  return 0;
}

}  // namespace

int run_report(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_report(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int run_report(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();

  const std::string validate_file = flags.get("validate", "");
  if (!validate_file.empty()) {
    for (const auto& unknown : flags.unused()) {
      std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
      return usage();
    }
    return run_validate(validate_file);
  }

  core::WorkflowSpec spec;
  const std::string setup = flags.get("setup", "table2");
  const core::Scheme scheme = parse_scheme(flags.get("scheme", "co"));
  if (setup == "table2") {
    spec = core::table2_setup(scheme);
  } else if (setup == "table3") {
    spec = core::table3_setup(scheme, flags.get_int("scale", 0), 0);
  } else {
    std::fprintf(stderr, "unknown setup '%s'\n", setup.c_str());
    return usage();
  }
  spec.total_ts = flags.get_int("timesteps", spec.total_ts);
  spec.failures.count = flags.get_int("failures", 1);
  spec.failures.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.tenancy.tenants = flags.get_int("tenants", 1);
  if (spec.tenancy.tenants < 1) {
    std::fprintf(stderr, "--tenants must be >= 1\n");
    return usage();
  }
  const bool by_tenant = flags.get_bool("by-tenant", false);
  spec.obs.enabled = true;
  const std::string trace_file = flags.get("trace-json", "");
  const std::string json_file = flags.get("json", "");

  for (const auto& unknown : flags.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    return usage();
  }

  if (!obs::compiled_in()) {
    std::fprintf(stderr,
                 "obs_report: built with DSTAGE_OBS=OFF; nothing to report\n");
    return 1;
  }

  core::WorkflowRunner runner(spec);
  const core::RunMetrics m = runner.run();
  const obs::Observability* obs = runner.runtime().obs();
  if (obs == nullptr) {
    std::fprintf(stderr, "obs_report: observability layer did not attach\n");
    return 1;
  }

  std::printf("scheme %s | %d ts | %d failure(s) injected | seed %llu | "
              "total %.2f s (virtual)\n",
              core::scheme_name(m.scheme), spec.total_ts, m.failures_injected,
              static_cast<unsigned long long>(spec.failures.seed),
              m.total_time_s);

  const obs::Breakdown breakdown = obs::phase_breakdown(obs->tracer());
  if (breakdown.tracks.empty()) {
    // An empty section is a trap to debug: say why it can be empty rather
    // than printing a headline over nothing.
    std::fprintf(stderr,
                 "obs_report: WARNING: no spans matched the breakdown — the "
                 "span stream is empty. Spans are only emitted when the obs "
                 "gate is on (spec.obs.enabled, forced on by this tool) and "
                 "the build has -DDSTAGE_OBS=ON.\n");
  } else {
    std::printf("\nExecution-time breakdown (virtual seconds per phase):\n\n");
    print_breakdown(std::cout, breakdown);
  }

  obs::Breakdown tenant_rollup;
  if (by_tenant) {
    tenant_rollup = by_tenant_rollup(breakdown);
    std::printf("\nPer-tenant rollup (attributed virtual seconds; tenant 0 "
                "includes shared staging infrastructure):\n\n");
    print_breakdown(std::cout, tenant_rollup);
    if (!m.staging.tenant_store_bytes_peak.empty()) {
      std::printf("\nPer-tenant staging store peak:\n");
      for (const auto& [tenant, peak] : m.staging.tenant_store_bytes_peak) {
        std::printf("  tenant %-3d %8.1f MB\n", tenant,
                    static_cast<double>(peak) / (1024.0 * 1024.0));
      }
    }
  }

  // Self-check: the integer-ns sweep attributes every nanosecond, so each
  // track's phase columns must sum to its total (acceptance bound 1e-9 s).
  for (const auto& t : breakdown.tracks) {
    const double gap_s = std::abs(static_cast<double>(t.attributed_ns()) -
                                  static_cast<double>(t.total_ns)) *
                         1e-9;
    if (gap_s > 1e-9) {
      std::fprintf(stderr,
                   "obs_report: phase sum mismatch on track %s (%.3e s)\n",
                   t.track.c_str(), gap_s);
      return 1;
    }
  }

  const auto recoveries = obs::recovery_paths(obs->tracer());
  if (recoveries.empty()) {
    if (m.failures_injected > 0) {
      std::fprintf(stderr,
                   "obs_report: WARNING: %d failure(s) injected but no "
                   "\"recovery\" spans matched — the recovery section is "
                   "empty. Check that the obs gate (spec.obs.enabled) was on "
                   "when the recovery pipeline ran.\n",
                   m.failures_injected);
    } else {
      std::printf("\nno recoveries (failure-free run)\n");
    }
  } else {
    std::printf("\nRecovery critical paths (%zu recover%s):\n\n",
                recoveries.size(), recoveries.size() == 1 ? "y" : "ies");
    for (const auto& root : recoveries) {
      print_recovery_tree(std::cout, root);
      std::printf("\n");
    }
  }

  if (!trace_file.empty()) {
    const Json doc = obs::chrome_trace_json(obs->tracer());
    const std::string text = doc.str();
    // Never ship a trace the independent validator rejects.
    const obs::TraceValidation v = obs::validate_chrome_trace(text);
    if (!v.ok) {
      std::fprintf(stderr, "exported trace failed validation:\n");
      for (const auto& e : v.errors) {
        std::fprintf(stderr, "  %s\n", e.c_str());
      }
      return 1;
    }
    std::ofstream out(trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
      return 1;
    }
    out << text;
    std::printf("Chrome trace (%zu events) written to %s — open in "
                "https://ui.perfetto.dev\n",
                v.events, trace_file.c_str());
  }

  if (!json_file.empty()) {
    Json doc = Json::object();
    doc.set("run", core::metrics_to_json(m));
    doc.set("phases", obs::breakdown_to_json(breakdown));
    if (by_tenant)
      doc.set("phases_by_tenant", obs::breakdown_to_json(tenant_rollup));
    doc.set("metrics", obs->metrics().to_json());
    std::ofstream out(json_file);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_file.c_str());
      return 1;
    }
    doc.dump(out);
    std::printf("breakdown JSON written to %s\n", json_file.c_str());
  }
  return m.total_anomalies() == 0 ? 0 : 1;
}
