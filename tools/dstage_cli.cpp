// dstage_cli — run any workflow configuration from the command line and
// print the metrics the paper's evaluation reports; optionally export the
// structured execution trace as CSV, the metrics as JSON, or a whole
// multi-seed sweep.
//
//   dstage_cli --scheme=un --failures=1 --seed=6
//   dstage_cli --setup=table3 --scale=2 --scheme=co --failures=3
//   dstage_cli --scheme=un --failures=2 --trace=run.csv
//              --local-ckpt-period=1 --predictor-recall=1.0
//   dstage_cli --scheme=hy --failures=2 --seeds=16 --json=sweep.json
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "core/executor.hpp"
#include "core/setups.hpp"
#include "core/sweep.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace dstage;

core::Scheme parse_scheme(const std::string& name) {
  if (name == "ds" || name == "none") return core::Scheme::kNone;
  if (name == "co") return core::Scheme::kCoordinated;
  if (name == "un") return core::Scheme::kUncoordinated;
  if (name == "in") return core::Scheme::kIndividual;
  if (name == "hy") return core::Scheme::kHybrid;
  throw std::invalid_argument("unknown scheme '" + name +
                              "' (expected ds|co|un|in|hy)");
}

int usage() {
  std::puts(
      "usage: dstage_cli [options]\n"
      "  --setup=table2|table3       experiment preset        [table2]\n"
      "  --scale=0..4                table3 scale index       [0]\n"
      "  --scheme=ds|co|un|in|hy     fault-tolerance scheme   [un]\n"
      "  --failures=N                injected failures        [0]\n"
      "  --seed=N                    failure seed             [1]\n"
      "  --seeds=N                   sweep seeds 1..N instead [off]\n"
      "  --threads=N                 sweep worker threads     [auto]\n"
      "  --timesteps=N               run length               [40]\n"
      "  --subset=F                  coupled fraction (0,1]   [1.0]\n"
      "  --sim-period=N              sim ckpt period          [4]\n"
      "  --analytic-period=N         analytic ckpt period     [5]\n"
      "  --local-ckpt-period=N       multi-level local period [0=off]\n"
      "  --predictor-recall=F        proactive ckpt recall    [0=off]\n"
      "  --node-failure-fraction=F   node-level failure share [0.2]\n"
      "  --batching                  coalesce same-server puts [off]\n"
      "  --trace=FILE                write execution trace CSV\n"
      "  --json=FILE                 write metrics/sweep JSON\n"
      "  --help                      this text");
  return 2;
}

bool write_json(const std::string& path, const Json& doc) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  doc.dump(out);
  std::printf("JSON written to %s\n", path.c_str());
  return true;
}

}  // namespace

int run_cli(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int run_cli(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();

  core::WorkflowSpec spec;
  const std::string setup = flags.get("setup", "table2");
  const core::Scheme scheme = parse_scheme(flags.get("scheme", "un"));
  if (setup == "table2") {
    spec = core::table2_setup(scheme, flags.get_double("subset", 1.0),
                              flags.get_int("sim-period", 4),
                              flags.get_int("analytic-period", 5));
  } else if (setup == "table3") {
    spec = core::table3_setup(scheme, flags.get_int("scale", 0),
                              flags.get_int("failures", 0));
  } else {
    std::fprintf(stderr, "unknown setup '%s'\n", setup.c_str());
    return usage();
  }
  spec.total_ts = flags.get_int("timesteps", spec.total_ts);
  spec.failures.count = flags.get_int("failures", spec.failures.count);
  spec.failures.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.failures.node_failure_fraction =
      flags.get_double("node-failure-fraction", 0.2);
  spec.failures.predictor_recall = flags.get_double("predictor-recall", 0);
  spec.net.batching = flags.get_bool("batching", false);
  const int local_period = flags.get_int("local-ckpt-period", 0);
  for (auto& c : spec.components) c.local_ckpt_period = local_period;
  const std::string trace_file = flags.get("trace", "");
  const std::string json_file = flags.get("json", "");
  const int seeds = flags.get_int("seeds", 0);
  const int threads = flags.get_int("threads", 0);

  for (const auto& unknown : flags.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    return usage();
  }

  if (seeds > 0) {
    // Multi-seed sweep: one independent simulation per seed, in parallel.
    std::vector<core::WorkflowSpec> specs;
    specs.reserve(static_cast<std::size_t>(seeds));
    for (int s = 1; s <= seeds; ++s) {
      core::WorkflowSpec one = spec;
      one.failures.seed = static_cast<std::uint64_t>(s);
      specs.push_back(std::move(one));
    }
    core::SweepOptions opts;
    opts.threads = threads;
    const auto runs = core::run_sweep(std::move(specs), opts);

    std::printf("scheme %s | %d ts | sweep of %d seeds\n",
                core::scheme_name(scheme), spec.total_ts, seeds);
    int anomalies = 0;
    for (const auto& r : runs) {
      anomalies += r.metrics.total_anomalies();
      std::printf(
          "  seed %3llu: total %8.2f s | %d failure(s) | %d anomalies | "
          "digest %s\n",
          static_cast<unsigned long long>(r.seed), r.metrics.total_time_s,
          r.metrics.failures_injected, r.metrics.total_anomalies(),
          core::digest_hex(r.trace_digest).c_str());
    }
    std::printf("mean total workflow execution time: %.2f s (virtual)\n",
                core::mean_total_time(runs));
    if (!json_file.empty() && !write_json(json_file, sweep_to_json(runs))) {
      return 1;
    }
    return anomalies == 0 ? 0 : 1;
  }

  core::WorkflowRunner runner(spec);
  core::RunMetrics m = runner.run();

  std::printf("scheme %s | %d ts | %d failure(s) injected | seed %llu\n",
              core::scheme_name(m.scheme), spec.total_ts,
              m.failures_injected,
              static_cast<unsigned long long>(spec.failures.seed));
  std::printf("total workflow execution time: %.2f s (virtual)\n",
              m.total_time_s);
  for (const auto& c : m.components) {
    std::printf(
        "  %-12s done %8.2f s | ckpt %d pfs / %d local / %d proactive | "
        "%d failures | %d ts reworked | put %6.3f s cum\n",
        c.name.c_str(), c.completion_time_s, c.checkpoints,
        c.local_checkpoints, c.proactive_checkpoints, c.failures,
        c.timesteps_reworked, c.cum_put_response_s);
  }
  std::printf(
      "staging: %llu puts (%llu suppressed) | %llu gets (%llu from log) | "
      "mem mean %s | anomalies %d\n",
      static_cast<unsigned long long>(m.staging.puts),
      static_cast<unsigned long long>(m.staging.puts_suppressed),
      static_cast<unsigned long long>(m.staging.gets),
      static_cast<unsigned long long>(m.staging.gets_from_log),
      format_bytes(static_cast<std::uint64_t>(m.staging.total_bytes_mean))
          .c_str(),
      m.total_anomalies());
  std::printf("pfs: wrote %s, read %s | fabric msgs: %llu | DES events: "
              "%llu | trace: %zu records (digest %016llx)\n",
              format_bytes(m.pfs_bytes_written).c_str(),
              format_bytes(m.pfs_bytes_read).c_str(),
              static_cast<unsigned long long>(m.fabric_packets),
              static_cast<unsigned long long>(m.events_processed),
              runner.trace().size(),
              static_cast<unsigned long long>(runner.trace().digest()));

  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_file.c_str());
      return 1;
    }
    runner.trace().write_csv(out);
    std::printf("trace written to %s\n", trace_file.c_str());
  }
  if (!json_file.empty()) {
    Json doc = core::metrics_to_json(m);
    doc.set("trace_digest", core::digest_hex(runner.trace().digest()));
    doc.set("seed", spec.failures.seed);
    if (!write_json(json_file, doc)) return 1;
  }
  return m.total_anomalies() == 0 ? 0 : 1;
}
