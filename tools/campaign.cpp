// campaign — randomized crash-consistency campaigns over the staging
// runtime. Generates failure schedules, runs each under the consistency
// oracle (four machine-checked recovery invariants against a failure-free
// reference run), and shrinks anything that fails into a minimal
// reproducer printed as a re-runnable --repro flag.
//
//   campaign --schedules=500 --all-schemes            # the acceptance run
//   campaign --schedules=50 --schemes=un,hy --seed=7
//   campaign --break=skip-replay --expect-fail        # oracle self-test
//   campaign --repro='cc1;id=3;sch=un;ts=12;...'      # replay one schedule
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/forensics.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "util/flags.hpp"
#include "wlog/codec.hpp"

namespace {

using namespace dstage;

int usage() {
  std::puts(
      "usage: campaign [options]\n"
      "  --schedules=N       randomized schedules to run        [100]\n"
      "  --seed=N            campaign seed                      [1]\n"
      "  --all-schemes       draw from ds,co,un,in,hy (default)\n"
      "  --schemes=a,b,..    restrict to these schemes\n"
      "  --timesteps=N       timesteps per schedule             [12]\n"
      "  --max-failures=N    failures per schedule, at most     [3]\n"
      "  --threads=N         worker threads                     [auto]\n"
      "  --memory-budget=MB  per-server staging memory budget   [0 = off]\n"
      "  --require-pressure  fail unless spill AND backpressure both fired\n"
      "  --elastic=P         fraction of schedules with a join/retire\n"
      "                      episode (first failure aimed into the\n"
      "                      resilver window)                    [0 = off]\n"
      "  --require-elastic   fail unless resilver moved data and a\n"
      "                      hand-off release was audited\n"
      "  --ckpt-levels=P     fraction of schedules running the multi-level\n"
      "                      checkpoint hierarchy (XOR group from {2,3,4})\n"
      "                                                         [0 = off]\n"
      "  --require-ckpt      fail unless >= 1 cache restart and >= 1 partner\n"
      "                      rebuild were exercised\n"
      "  --tenants=N         co-located tenants per schedule; failures\n"
      "                      target tenant 0, the rest are bystanders\n"
      "                      checked bit-for-bit vs solo runs     [1]\n"
      "  --require-isolation fail unless failures were injected AND the\n"
      "                      isolation invariant compared >= 1 bystander\n"
      "                      read against its solo reference\n"
      "  --codec=MODE        write-log payload codec armed on every\n"
      "                      schedule: none|lz|delta|delta_lz, or mix to\n"
      "                      cycle schedules through all three     [none]\n"
      "  --require-codec     fail unless blocks were encoded AND the\n"
      "                      transparency invariant compared >= 1 read\n"
      "                      against its codec-off reference\n"
      "  --break=MODE        none|skip-replay|gc-overcollect    [none]\n"
      "  --expect-fail       exit 0 iff >= 1 schedule violated an invariant\n"
      "  --forensics=DIR     write a forensic bundle (JSON) per failing\n"
      "                      schedule for tools/forensics; on an\n"
      "                      --expect-fail mismatch, capture one anyway\n"
      "  --no-shrink         keep failing schedules unminimized\n"
      "  --shrink-budget=N   oracle runs per shrink             [120]\n"
      "  --repro=SPEC        run one schedule from a repro string and exit\n"
      "  --help              this text");
  return 2;
}

std::vector<core::Scheme> parse_scheme_list(const std::string& csv) {
  std::vector<core::Scheme> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t end = csv.find(',', start);
    const std::string token =
        end == std::string::npos ? csv.substr(start)
                                 : csv.substr(start, end - start);
    if (!token.empty()) out.push_back(check::parse_scheme_token(token));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

void print_report(const check::Schedule& schedule,
                  const check::OracleReport& report) {
  std::printf("schedule %d [%s]: %s (%d failure%s injected",
              schedule.id, check::scheme_token(schedule.scheme),
              report.ok() ? "PASS" : "FAIL", report.failures_injected,
              report.failures_injected == 1 ? "" : "s");
  if (report.alarms_fired > 0) {
    std::printf(", %d false alarm%s", report.alarms_fired,
                report.alarms_fired == 1 ? "" : "s");
  }
  std::printf(")\n");
  if (!report.ok()) std::fputs(report.summary().c_str(), stdout);
}

/// Write one forensic bundle under `dir` (created on demand). Returns
/// false (with a note on stderr) if the filesystem refuses.
bool write_bundle(const std::string& dir, const std::string& name,
                  const check::ForensicBundle& bundle) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "forensics: cannot write %s\n", path.c_str());
    return false;
  }
  out << check::bundle_to_json(bundle) << '\n';
  std::printf("forensics: wrote %s (%s)\n", path.c_str(),
              bundle.trigger.c_str());
  return true;
}

int run_repro(const std::string& spec, check::Sabotage sabotage,
              const std::string& forensics_dir) {
  const check::Schedule schedule = check::Schedule::parse(spec);
  check::ReferenceCache cache;
  const check::OracleReport report =
      check::check_schedule(schedule, cache, sabotage);
  print_report(schedule, report);
  if (!forensics_dir.empty() && report.bundle != nullptr) {
    write_bundle(forensics_dir,
                 "bundle-repro-" + std::to_string(schedule.id) + ".json",
                 *report.bundle);
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int run_cli(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();

  check::CampaignOptions opts;
  opts.gen.count = flags.get_int("schedules", 100);
  opts.gen.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opts.gen.total_ts = flags.get_int("timesteps", 12);
  opts.gen.max_failures = flags.get_int("max-failures", 3);
  opts.gen.memory_budget_mb = flags.get_int("memory-budget", 0);
  if (opts.gen.memory_budget_mb < 0) {
    std::fputs("--memory-budget must be >= 0 (0 disables the governor)\n",
               stderr);
    return usage();
  }
  opts.gen.elastic_probability = flags.get_double("elastic", 0.0);
  if (opts.gen.elastic_probability < 0 || opts.gen.elastic_probability > 1) {
    std::fputs("--elastic must be in [0, 1]\n", stderr);
    return usage();
  }
  opts.gen.ckpt_probability = flags.get_double("ckpt-levels", 0.0);
  if (opts.gen.ckpt_probability < 0 || opts.gen.ckpt_probability > 1) {
    std::fputs("--ckpt-levels must be in [0, 1]\n", stderr);
    return usage();
  }
  opts.gen.tenants = flags.get_int("tenants", 1);
  if (opts.gen.tenants < 1) {
    std::fputs("--tenants must be >= 1\n", stderr);
    return usage();
  }
  const std::string codec_mode = flags.get("codec", "none");
  if (codec_mode == "mix") {
    opts.gen.codec_mix = true;
  } else if (const auto scheme = wlog::codec::parse_scheme(codec_mode)) {
    opts.gen.codec = *scheme;
  } else {
    std::fputs("--codec must be none|lz|delta|delta_lz|mix\n", stderr);
    return usage();
  }
  opts.threads = flags.get_int("threads", 0);
  opts.sabotage = check::parse_sabotage(flags.get("break", "none"));
  opts.shrink = !flags.get_bool("no-shrink", false);
  opts.shrink_budget = flags.get_int("shrink-budget", 120);
  flags.get_bool("all-schemes", true);  // the default; accepted for clarity
  if (flags.has("schemes")) {
    opts.gen.schemes = parse_scheme_list(flags.get("schemes", ""));
  }
  const bool expect_fail = flags.get_bool("expect-fail", false);
  const bool require_pressure = flags.get_bool("require-pressure", false);
  const bool require_elastic = flags.get_bool("require-elastic", false);
  const bool require_ckpt = flags.get_bool("require-ckpt", false);
  const bool require_isolation = flags.get_bool("require-isolation", false);
  const bool require_codec = flags.get_bool("require-codec", false);
  const std::string repro = flags.get("repro", "");
  const std::string forensics_dir = flags.get("forensics", "");

  for (const std::string& flag : flags.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return usage();
  }

  if (!repro.empty()) return run_repro(repro, opts.sabotage, forensics_dir);

  const check::CampaignResult result = check::run_campaign(opts);
  std::printf("campaign: %d/%d schedules passed, %d invariant violation%s "
              "(%d failures injected, sabotage=%s)\n",
              result.passed, result.schedules,
              static_cast<int>(result.failures.size()),
              result.failures.size() == 1 ? "" : "s",
              result.total_failures_injected,
              check::sabotage_name(opts.sabotage));
  if (opts.gen.memory_budget_mb > 0) {
    std::printf("memory governor (%d MB/server): %llu versions spilled, "
                "%llu faulted back, %llu puts bounced, %llu backpressure "
                "waits\n",
                opts.gen.memory_budget_mb,
                static_cast<unsigned long long>(result.spilled_versions),
                static_cast<unsigned long long>(result.spill_fetches),
                static_cast<unsigned long long>(result.puts_rejected),
                static_cast<unsigned long long>(result.backpressure_waits));
  }
  if (opts.gen.elastic_probability > 0) {
    std::printf("elastic membership: %llu chunks resilvered, %llu hand-off "
                "releases audited, %llu wrong-epoch bounces, %llu degraded "
                "reads\n",
                static_cast<unsigned long long>(result.resilver_chunks_moved),
                static_cast<unsigned long long>(result.resilver_drops),
                static_cast<unsigned long long>(result.wrong_epoch_rejects),
                static_cast<unsigned long long>(result.degraded_reads));
  }

  if (opts.gen.ckpt_probability > 0) {
    std::printf("ckpt hierarchy: %llu drains completed, %llu cache restarts, "
                "%llu partner rebuilds, %llu PFS restarts\n",
                static_cast<unsigned long long>(result.ckpt_drains_completed),
                static_cast<unsigned long long>(result.ckpt_cache_restarts),
                static_cast<unsigned long long>(result.ckpt_partner_rebuilds),
                static_cast<unsigned long long>(result.ckpt_pfs_restarts));
  }

  if (opts.gen.tenants > 1) {
    std::printf("tenant isolation (%d tenants): %llu bystander reads "
                "compared bit-for-bit against solo references\n",
                opts.gen.tenants,
                static_cast<unsigned long long>(
                    result.isolation_reads_checked));
  }

  if (opts.gen.codec_mix ||
      opts.gen.codec != wlog::codec::Scheme::kNone) {
    const double ratio =
        result.codec_stored_bytes > 0
            ? static_cast<double>(result.codec_raw_bytes) /
                  static_cast<double>(result.codec_stored_bytes)
            : 0.0;
    std::printf("payload codec (%s): %llu blocks encoded (%.2fx over "
                "%llu MB raw), %llu reads compared against codec-off "
                "references\n",
                codec_mode.c_str(),
                static_cast<unsigned long long>(result.codec_blocks_encoded),
                ratio,
                static_cast<unsigned long long>(result.codec_raw_bytes >> 20),
                static_cast<unsigned long long>(result.codec_reads_checked));
  }

  for (const check::CampaignFailure& failure : result.failures) {
    std::printf("---\n");
    // The report tracks the shrunk schedule (== the original when the
    // shrinker was disabled or out of budget).
    print_report(failure.shrunk, failure.report);
    if (failure.shrink_attempts > 0) {
      std::printf("shrunk to %d failure%s in %d oracle runs\n",
                  static_cast<int>(failure.shrunk.failures.size()),
                  failure.shrunk.failures.size() == 1 ? "" : "s",
                  failure.shrink_attempts);
    }
    std::printf("REPRO: --repro='%s'\n", failure.shrunk.repro().c_str());
    if (!forensics_dir.empty() && failure.report.bundle != nullptr) {
      write_bundle(forensics_dir,
                   "bundle-" + std::to_string(failure.schedule.id) + ".json",
                   *failure.report.bundle);
    }
  }

  bool ok = expect_fail ? !result.ok() : result.ok();
  if (expect_fail && result.ok()) {
    std::fputs("expected at least one invariant violation, found none\n",
               stdout);
    if (!forensics_dir.empty()) {
      // Document the mismatch: re-run the first schedule with a forced
      // bundle so CI has recorder evidence of the run that should have
      // failed but didn't.
      const std::vector<check::Schedule> schedules =
          check::generate_schedules(opts.gen);
      if (!schedules.empty()) {
        check::ReferenceCache cache;
        const check::OracleReport rerun = check::check_schedule(
            schedules.front(), cache, opts.sabotage, /*capture_bundle=*/true);
        if (rerun.bundle != nullptr) {
          write_bundle(forensics_dir, "bundle-mismatch.json", *rerun.bundle);
        }
      }
    }
  }
  if (require_pressure &&
      (result.spilled_versions == 0 || result.backpressure_waits == 0)) {
    std::fputs("--require-pressure: budget too loose — spill and "
               "backpressure must both fire for the run to prove anything\n",
               stdout);
    ok = false;
  }
  if (require_elastic &&
      (result.resilver_chunks_moved == 0 || result.resilver_drops == 0)) {
    std::fputs("--require-elastic: no resilver data motion observed — "
               "membership changes that moved nothing verified nothing\n",
               stdout);
    ok = false;
  }
  if (require_ckpt &&
      (result.ckpt_cache_restarts == 0 || result.ckpt_partner_rebuilds == 0)) {
    std::fputs("--require-ckpt: cache restart and partner rebuild must both "
               "be exercised — a campaign where every restart fell through "
               "to the PFS verified neither fast level\n",
               stdout);
    ok = false;
  }
  if (require_isolation && (result.isolation_reads_checked == 0 ||
                            result.total_failures_injected == 0)) {
    std::fputs("--require-isolation: need injected failures AND compared "
               "bystander reads — a campaign where tenant 0 never crashed "
               "or no co-tenant read was checked verified no isolation\n",
               stdout);
    ok = false;
  }
  if (require_codec && (result.codec_blocks_encoded == 0 ||
                        result.codec_reads_checked == 0)) {
    std::fputs("--require-codec: need encoded blocks AND compared reads — "
               "a campaign where the codec never encoded a block or no "
               "read was checked against a codec-off reference verified "
               "no transparency\n",
               stdout);
    ok = false;
  }
  return ok ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
