// bench_compare — the bench baseline gate. Diffs candidate BENCH_*.json
// documents (produced by the bench binaries' --json flag) against
// checked-in baselines and fails on any numeric leaf deviating more than
// the tolerance (default 15%) or missing from the candidate. The simulator
// is deterministic in virtual time, so baseline drift means a real
// behavioral change — the gate forces it to be acknowledged by refreshing
// bench/baselines/ in the same change.
//
//   bench_compare BENCH_fig_memcap.json BENCH_fig9a.json
//   bench_compare --baselines=bench/baselines --tolerance=0.15 BENCH_*.json
//
// Exit codes: 0 = every compared leaf within tolerance, 1 = regression or
// missing key, 2 = bad input (unreadable/malformed JSON, no files).
// Candidates with no checked-in baseline are reported and skipped: a new
// bench must land its baseline to become gated, but does not break the
// gate for everyone else.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/flags.hpp"
#include "util/json_reader.hpp"

namespace {

using namespace dstage;

int usage() {
  std::puts(
      "usage: bench_compare [options] BENCH.json [BENCH.json ...]\n"
      "  --baselines=DIR   baseline directory      [bench/baselines]\n"
      "  --tolerance=F     max relative deviation  [0.15]\n"
      "  --help            this text");
  return 2;
}

struct Gate {
  double tolerance = 0.15;
  int checked = 0;
  std::vector<std::string> problems;

  void fail(const std::string& path, const std::string& why) {
    problems.push_back(path + ": " + why);
  }

  void compare_number(const std::string& path, const JsonValue& base,
                      const JsonValue& cand) {
    ++checked;
    const double b = base.number;
    const double c = cand.number;
    if (b == c) return;
    // A zero baseline has no scale: any nonzero candidate is a change the
    // baseline never sanctioned (0 backpressure waits becoming 3 is a
    // behavioral shift, not noise).
    const double denom = std::abs(b);
    const double dev =
        denom > 0 ? std::abs(c - b) / denom
                  : std::numeric_limits<double>::infinity();
    if (dev > tolerance) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "baseline %g, candidate %g (%+.1f%% > %.0f%% tolerance)",
                    b, c,
                    denom > 0 ? (c - b) / denom * 100.0 : 100.0,
                    tolerance * 100.0);
      fail(path, buf);
    }
  }

  /// Walk the baseline tree; every numeric leaf must exist in the
  /// candidate at the same path and match within tolerance. Extra
  /// candidate keys are fine (new metrics are not regressions).
  void compare(const std::string& path, const JsonValue& base,
               const JsonValue& cand) {
    if (base.is_object()) {
      if (!cand.is_object()) {
        fail(path, "baseline is an object, candidate is not");
        return;
      }
      for (const auto& [key, value] : base.object) {
        const std::string child = path.empty() ? key : path + "." + key;
        const JsonValue* c = cand.member(key);
        if (c == nullptr) {
          fail(child, "present in baseline, missing from candidate");
          continue;
        }
        compare(child, value, *c);
      }
      return;
    }
    if (base.is_array()) {
      if (!cand.is_array()) {
        fail(path, "baseline is an array, candidate is not");
        return;
      }
      if (base.array.size() != cand.array.size()) {
        fail(path, "array length " + std::to_string(cand.array.size()) +
                       ", baseline " + std::to_string(base.array.size()));
        return;
      }
      for (std::size_t i = 0; i < base.array.size(); ++i) {
        compare(path + "[" + std::to_string(i) + "]", base.array[i],
                cand.array[i]);
      }
      return;
    }
    if (base.is_number()) {
      if (!cand.is_number()) {
        fail(path, "baseline is a number, candidate is not");
        return;
      }
      compare_number(path, base, cand);
    }
    // Strings / bools / nulls are labels, not measurements — not gated.
  }
};

bool load(const std::string& path, JsonValue& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonParse parsed = parse_json(buf.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 parsed.errors.empty() ? "malformed JSON"
                                       : parsed.errors.front().c_str());
    return false;
  }
  out = std::move(parsed.value);
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();
  const std::string baselines = flags.get("baselines", "bench/baselines");
  const double tolerance = flags.get_double("tolerance", 0.15);
  for (const std::string& flag : flags.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return usage();
  }
  if (flags.positional().empty()) {
    std::fputs("bench_compare: no candidate files given\n", stderr);
    return usage();
  }

  int rc = 0;
  for (const std::string& candidate_path : flags.positional()) {
    const std::string name =
        std::filesystem::path(candidate_path).filename().string();
    const std::string baseline_path = baselines + "/" + name;
    if (!std::filesystem::exists(baseline_path)) {
      std::printf("%s: SKIP (no baseline — check one in at %s to gate it)\n",
                  name.c_str(), baseline_path.c_str());
      continue;
    }
    JsonValue base;
    JsonValue cand;
    if (!load(baseline_path, base) || !load(candidate_path, cand)) return 2;

    Gate gate;
    gate.tolerance = tolerance;
    gate.compare("", base, cand);
    if (gate.problems.empty()) {
      std::printf("%s: OK (%d numeric leaves within %.0f%%)\n", name.c_str(),
                  gate.checked, tolerance * 100.0);
    } else {
      std::printf("%s: FAIL (%zu of %d leaves out of tolerance)\n",
                  name.c_str(), gate.problems.size(), gate.checked);
      for (const std::string& p : gate.problems) {
        std::printf("  %s\n", p.c_str());
      }
      rc = 1;
    }
  }
  return rc;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
