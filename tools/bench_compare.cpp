// bench_compare — the bench baseline gate. Diffs candidate BENCH_*.json
// documents (produced by the bench binaries' --json flag) against
// checked-in baselines and fails on any numeric leaf deviating more than
// the tolerance (default 15%) or missing from the candidate. The simulator
// is deterministic in virtual time, so baseline drift means a real
// behavioral change — the gate forces it to be acknowledged by refreshing
// bench/baselines/ in the same change.
//
//   bench_compare BENCH_fig_memcap.json BENCH_fig9a.json
//   bench_compare --baselines=bench/baselines --tolerance=0.15 BENCH_*.json
//
// Exit codes: 0 = every compared leaf within tolerance, 1 = regression or
// missing key, 2 = bad input (unreadable/malformed JSON, no files).
// Candidates with no checked-in baseline are reported and skipped: a new
// bench must land its baseline to become gated, but does not break the
// gate for everyone else.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/bench_gate.hpp"
#include "util/flags.hpp"
#include "util/json_reader.hpp"

namespace {

using namespace dstage;
using bench_gate::Gate;

int usage() {
  std::puts(
      "usage: bench_compare [options] BENCH.json [BENCH.json ...]\n"
      "  --baselines=DIR   baseline directory      [bench/baselines]\n"
      "  --tolerance=F     max relative deviation  [0.15]\n"
      "  --abs-floor=F     deviation denominator floor (zero-baseline\n"
      "                    leaves gate in absolute terms)  [1]\n"
      "  --help            this text");
  return 2;
}

bool load(const std::string& path, JsonValue& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonParse parsed = parse_json(buf.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 parsed.errors.empty() ? "malformed JSON"
                                       : parsed.errors.front().c_str());
    return false;
  }
  out = std::move(parsed.value);
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  Flags flags(argc, argv);
  if (flags.get_bool("help", false)) return usage();
  const std::string baselines = flags.get("baselines", "bench/baselines");
  const double tolerance = flags.get_double("tolerance", 0.15);
  const double abs_floor = flags.get_double("abs-floor", 1.0);
  for (const std::string& flag : flags.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return usage();
  }
  if (flags.positional().empty()) {
    std::fputs("bench_compare: no candidate files given\n", stderr);
    return usage();
  }

  int rc = 0;
  for (const std::string& candidate_path : flags.positional()) {
    const std::string name =
        std::filesystem::path(candidate_path).filename().string();
    const std::string baseline_path = baselines + "/" + name;
    if (!std::filesystem::exists(baseline_path)) {
      std::printf("%s: SKIP (no baseline — check one in at %s to gate it)\n",
                  name.c_str(), baseline_path.c_str());
      continue;
    }
    JsonValue base;
    JsonValue cand;
    if (!load(baseline_path, base) || !load(candidate_path, cand)) return 2;

    Gate gate;
    gate.tolerance = tolerance;
    gate.abs_floor = abs_floor;
    gate.compare("", base, cand);
    if (gate.problems.empty()) {
      std::printf("%s: OK (%d numeric leaves within %.0f%%)\n", name.c_str(),
                  gate.checked, tolerance * 100.0);
    } else {
      std::printf("%s: FAIL (%zu of %d leaves out of tolerance)\n",
                  name.c_str(), gate.problems.size(), gate.checked);
      for (const std::string& p : gate.problems) {
        std::printf("  %s\n", p.c_str());
      }
      rc = 1;
    }
  }
  return rc;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
