// Spatial metadata index: DataSpaces' DHT partitions the global domain
// across staging servers by Hilbert space-filling-curve index, so each
// server owns a contiguous curve segment (spatially compact set of cells)
// and any geometric query resolves to a small server set.
//
// Ownership is epoch-versioned: the constructor seeds epoch 0 with the
// classic contiguous-equal-segments split, and `add_server` /
// `remove_server` advance the epoch while moving only the cells whose
// owner actually changed (minimal data motion). Callers that must agree
// on a placement across a membership change route lookups through an
// immutable `PlacementView` snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/geometry.hpp"
#include "util/hilbert.hpp"

namespace dstage::dht {

/// One server's share of a geometric query.
struct Placement {
  int server = -1;
  std::vector<Box> pieces;          // cell-clipped sub-regions, disjoint
  std::uint64_t total_points = 0;   // sum of piece volumes
};

/// One cell whose owner changes across a membership transition.
struct CellMove {
  std::uint64_t cell = 0;  // Hilbert curve index
  int from = -1;
  int to = -1;
};

/// Immutable snapshot of the ownership map at one epoch. Cheap to copy
/// (shared, copy-on-write under membership changes); lookups through a
/// view are stable even while the live index rebalances.
struct PlacementView {
  std::uint64_t epoch = 0;
  std::shared_ptr<const std::vector<int>> owners;  // per curve cell
  std::shared_ptr<const std::vector<int>> active;  // ascending server ids

  [[nodiscard]] bool valid() const { return owners != nullptr; }
};

class SpatialIndex {
 public:
  /// @param domain          global domain box (non-empty)
  /// @param server_count    number of staging servers (>= 1)
  /// @param cells_per_axis  positive power of two; the domain is coarsened
  ///                        to a cells³ grid that the curve runs over
  SpatialIndex(Box domain, int server_count, int cells_per_axis = 16);

  [[nodiscard]] int server_count() const { return server_count_; }
  [[nodiscard]] int cells_per_axis() const { return cells_; }
  [[nodiscard]] const Box& domain() const { return domain_; }

  /// Current membership epoch (0 until the first add/remove).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Snapshot of the current ownership map.
  [[nodiscard]] PlacementView snapshot() const;

  /// Servers active in the current epoch, ascending.
  [[nodiscard]] const std::vector<int>& active_servers() const {
    return *active_;
  }

  /// Admit `server` into the group: steals an even share of cells from the
  /// tail of every existing owner's segment and returns exactly the cells
  /// that changed owner. Advances the epoch.
  std::vector<CellMove> add_server(int server);

  /// Retire `server` from the group: redistributes only its cells across
  /// the survivors (in curve order) and returns the moves. Advances the
  /// epoch. At least one server must remain.
  std::vector<CellMove> remove_server(int server);

  /// Owning server of the cell containing `p` (current epoch).
  [[nodiscard]] int server_of(const Point3& p) const;

  /// Split `query` into per-server placements (cell-granular, clipped).
  /// Placements appear in ascending server order; servers with no overlap
  /// are omitted.
  [[nodiscard]] std::vector<Placement> place(const Box& query) const;

  /// Same split evaluated against a snapshot instead of the live map.
  [[nodiscard]] std::vector<Placement> place(const Box& query,
                                             const PlacementView& view) const;

  /// Server owning every cell that `region` overlaps in the current
  /// epoch, or -1 if ownership is split (or the region misses the
  /// domain). Servers use this to detect stale-view requests.
  [[nodiscard]] int sole_owner(const Box& region) const;

  /// Number of curve cells owned by each server (for balance tests).
  /// Sized to cover the highest server id ever admitted.
  [[nodiscard]] std::vector<std::uint64_t> cells_per_server() const;

  /// Geometric queries resolved since construction (observability).
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }

  /// Box covered by cell (cx, cy, cz), clipped to the domain.
  [[nodiscard]] Box cell_box(std::uint32_t cx, std::uint32_t cy,
                             std::uint32_t cz) const;

  /// Box covered by the cell at `curve_index`, clipped to the domain.
  /// Empty when the curve point falls outside the cells³ grid (the curve
  /// always spans a power-of-two cube).
  [[nodiscard]] Box cell_box_of(std::uint64_t curve_index) const;

 private:
  [[nodiscard]] int server_of_index(std::uint64_t curve_index) const;
  [[nodiscard]] std::uint32_t cell_coord(std::int64_t v, std::int64_t lo,
                                         std::int64_t cell_size) const;
  [[nodiscard]] std::vector<Placement> place_impl(
      const Box& query, const std::vector<int>& owners) const;
  /// Cells owned by `server`, ascending curve order.
  [[nodiscard]] std::vector<std::uint64_t> cells_of(
      const std::vector<int>& owners, int server) const;

  Box domain_;
  mutable std::uint64_t lookups_ = 0;  // counted in const place()
  int server_count_;
  int cells_;
  int order_;
  HilbertCurve curve_;
  std::int64_t cell_sx_, cell_sy_, cell_sz_;  // cell extents per axis
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const std::vector<int>> owners_;
  std::shared_ptr<const std::vector<int>> active_;
};

}  // namespace dstage::dht
