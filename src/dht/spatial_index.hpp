// Spatial metadata index: DataSpaces' DHT partitions the global domain
// across staging servers by Hilbert space-filling-curve index, so each
// server owns a contiguous curve segment (spatially compact set of cells)
// and any geometric query resolves to a small server set.
#pragma once

#include <cstdint>
#include <vector>

#include "util/geometry.hpp"
#include "util/hilbert.hpp"

namespace dstage::dht {

/// One server's share of a geometric query.
struct Placement {
  int server = -1;
  std::vector<Box> pieces;          // cell-clipped sub-regions, disjoint
  std::uint64_t total_points = 0;   // sum of piece volumes
};

class SpatialIndex {
 public:
  /// @param domain          global domain box (non-empty)
  /// @param server_count    number of staging servers (>= 1)
  /// @param cells_per_axis  power of two; the domain is coarsened to a
  ///                        cells³ grid that the curve runs over
  SpatialIndex(Box domain, int server_count, int cells_per_axis = 16);

  [[nodiscard]] int server_count() const { return server_count_; }
  [[nodiscard]] int cells_per_axis() const { return cells_; }
  [[nodiscard]] const Box& domain() const { return domain_; }

  /// Owning server of the cell containing `p`.
  [[nodiscard]] int server_of(const Point3& p) const;

  /// Split `query` into per-server placements (cell-granular, clipped).
  /// Placements appear in ascending server order; servers with no overlap
  /// are omitted.
  [[nodiscard]] std::vector<Placement> place(const Box& query) const;

  /// Number of curve cells owned by each server (for balance tests).
  [[nodiscard]] std::vector<std::uint64_t> cells_per_server() const;

  /// Geometric queries resolved since construction (observability).
  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }

  /// Box covered by cell (cx, cy, cz), clipped to the domain.
  [[nodiscard]] Box cell_box(std::uint32_t cx, std::uint32_t cy,
                             std::uint32_t cz) const;

 private:
  [[nodiscard]] int server_of_index(std::uint64_t curve_index) const;
  [[nodiscard]] std::uint32_t cell_coord(std::int64_t v, std::int64_t lo,
                                         std::int64_t cell_size) const;

  Box domain_;
  mutable std::uint64_t lookups_ = 0;  // counted in const place()
  int server_count_;
  int cells_;
  int order_;
  HilbertCurve curve_;
  std::int64_t cell_sx_, cell_sy_, cell_sz_;  // cell extents per axis
};

}  // namespace dstage::dht
