#include "dht/spatial_index.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace dstage::dht {

namespace {
int log2_exact(int v) {
  if (v < 1)
    throw std::invalid_argument("cells_per_axis must be positive");
  int order = 0;
  while ((1 << order) < v) ++order;
  if ((1 << order) != v)
    throw std::invalid_argument("cells_per_axis must be a power of two");
  return order;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

SpatialIndex::SpatialIndex(Box domain, int server_count, int cells_per_axis)
    : domain_(domain),
      server_count_(server_count),
      cells_(cells_per_axis),
      order_(log2_exact(cells_per_axis)),
      curve_(std::max(order_, 1)) {
  if (domain_.empty()) throw std::invalid_argument("empty domain");
  if (server_count_ < 1)
    throw std::invalid_argument("need at least one server");
  const auto ext = domain_.extents();
  cell_sx_ = std::max<std::int64_t>(1, ceil_div(ext[0], cells_));
  cell_sy_ = std::max<std::int64_t>(1, ceil_div(ext[1], cells_));
  cell_sz_ = std::max<std::int64_t>(1, ceil_div(ext[2], cells_));

  // Epoch 0 reproduces the classic split exactly: contiguous equal curve
  // segments per server. Placement (and therefore every golden trace) is
  // byte-identical to the pre-elastic constructor-time map.
  const std::uint64_t total = curve_.length();
  std::vector<int> owners(static_cast<std::size_t>(total));
  for (std::uint64_t idx = 0; idx < total; ++idx) {
    const auto server = static_cast<int>(
        (idx * static_cast<std::uint64_t>(server_count_)) / total);
    owners[static_cast<std::size_t>(idx)] =
        std::min(server, server_count_ - 1);
  }
  owners_ = std::make_shared<const std::vector<int>>(std::move(owners));
  std::vector<int> active(static_cast<std::size_t>(server_count_));
  for (int s = 0; s < server_count_; ++s)
    active[static_cast<std::size_t>(s)] = s;
  active_ = std::make_shared<const std::vector<int>>(std::move(active));
}

std::uint32_t SpatialIndex::cell_coord(std::int64_t v, std::int64_t lo,
                                       std::int64_t cell_size) const {
  auto c = (v - lo) / cell_size;
  c = std::clamp<std::int64_t>(c, 0, cells_ - 1);
  return static_cast<std::uint32_t>(c);
}

int SpatialIndex::server_of_index(std::uint64_t curve_index) const {
  return (*owners_)[static_cast<std::size_t>(curve_index)];
}

int SpatialIndex::server_of(const Point3& p) const {
  if (!domain_.contains(p)) throw std::out_of_range("point outside domain");
  const auto cx = cell_coord(p.x, domain_.lo.x, cell_sx_);
  const auto cy = cell_coord(p.y, domain_.lo.y, cell_sy_);
  const auto cz = cell_coord(p.z, domain_.lo.z, cell_sz_);
  return server_of_index(curve_.index_of(cx, cy, cz));
}

Box SpatialIndex::cell_box(std::uint32_t cx, std::uint32_t cy,
                           std::uint32_t cz) const {
  Box b;
  b.lo = {domain_.lo.x + static_cast<std::int64_t>(cx) * cell_sx_,
          domain_.lo.y + static_cast<std::int64_t>(cy) * cell_sy_,
          domain_.lo.z + static_cast<std::int64_t>(cz) * cell_sz_};
  b.hi = {b.lo.x + cell_sx_ - 1, b.lo.y + cell_sy_ - 1,
          b.lo.z + cell_sz_ - 1};
  return b.intersection(domain_);
}

Box SpatialIndex::cell_box_of(std::uint64_t curve_index) const {
  const auto pt = curve_.point_of(curve_index);
  const auto limit = static_cast<std::uint32_t>(cells_);
  if (pt[0] >= limit || pt[1] >= limit || pt[2] >= limit) return Box{};
  return cell_box(pt[0], pt[1], pt[2]);
}

PlacementView SpatialIndex::snapshot() const {
  return PlacementView{epoch_, owners_, active_};
}

std::vector<std::uint64_t> SpatialIndex::cells_of(
    const std::vector<int>& owners, int server) const {
  std::vector<std::uint64_t> cells;
  for (std::uint64_t idx = 0; idx < owners.size(); ++idx) {
    if (owners[static_cast<std::size_t>(idx)] == server)
      cells.push_back(idx);
  }
  return cells;
}

std::vector<CellMove> SpatialIndex::add_server(int server) {
  if (server < 0) throw std::invalid_argument("negative server id");
  if (std::find(active_->begin(), active_->end(), server) != active_->end())
    throw std::invalid_argument("server already in group");

  const auto n_old = static_cast<int>(active_->size());
  const auto n_new = n_old + 1;
  // The newcomer's fair share of the curve.
  const std::uint64_t target = curve_.length() / static_cast<std::uint64_t>(
                                                     n_new);
  std::vector<int> owners = *owners_;
  std::vector<CellMove> moves;
  moves.reserve(static_cast<std::size_t>(target));
  // Steal an even slice from each existing owner, always from the tail of
  // its segment so every owner keeps a contiguous prefix and only
  // `target` cells move in total.
  for (int i = 0; i < n_old; ++i) {
    const int victim = (*active_)[static_cast<std::size_t>(i)];
    const std::uint64_t lo = target * static_cast<std::uint64_t>(i) /
                             static_cast<std::uint64_t>(n_old);
    const std::uint64_t hi = target * static_cast<std::uint64_t>(i + 1) /
                             static_cast<std::uint64_t>(n_old);
    const auto steal = hi - lo;
    if (steal == 0) continue;
    const auto held = cells_of(owners, victim);
    const auto take = std::min<std::uint64_t>(steal, held.size());
    for (std::uint64_t j = 0; j < take; ++j) {
      const std::uint64_t cell = held[held.size() - take + j];
      owners[static_cast<std::size_t>(cell)] = server;
      moves.push_back(CellMove{cell, victim, server});
    }
  }

  std::vector<int> active = *active_;
  active.insert(std::upper_bound(active.begin(), active.end(), server),
                server);
  owners_ = std::make_shared<const std::vector<int>>(std::move(owners));
  active_ = std::make_shared<const std::vector<int>>(std::move(active));
  ++epoch_;
  return moves;
}

std::vector<CellMove> SpatialIndex::remove_server(int server) {
  const auto it = std::find(active_->begin(), active_->end(), server);
  if (it == active_->end())
    throw std::invalid_argument("server not in group");
  if (active_->size() < 2)
    throw std::invalid_argument("cannot retire the last server");

  std::vector<int> survivors;
  survivors.reserve(active_->size() - 1);
  for (int s : *active_)
    if (s != server) survivors.push_back(s);

  // Only the leaver's cells move: hand out contiguous runs of its cell
  // list (curve order) to the survivors in turn, so spatial locality is
  // preserved and no survivor-to-survivor motion happens.
  std::vector<int> owners = *owners_;
  const auto leaving = cells_of(owners, server);
  const auto n_rem = static_cast<std::uint64_t>(survivors.size());
  const auto cnt = static_cast<std::uint64_t>(leaving.size());
  std::vector<CellMove> moves;
  moves.reserve(leaving.size());
  for (std::uint64_t j = 0; j < n_rem; ++j) {
    const std::uint64_t lo = cnt * j / n_rem;
    const std::uint64_t hi = cnt * (j + 1) / n_rem;
    const int heir = survivors[static_cast<std::size_t>(j)];
    for (std::uint64_t c = lo; c < hi; ++c) {
      const std::uint64_t cell = leaving[static_cast<std::size_t>(c)];
      owners[static_cast<std::size_t>(cell)] = heir;
      moves.push_back(CellMove{cell, server, heir});
    }
  }

  owners_ = std::make_shared<const std::vector<int>>(std::move(owners));
  active_ = std::make_shared<const std::vector<int>>(std::move(survivors));
  ++epoch_;
  return moves;
}

std::vector<Placement> SpatialIndex::place(const Box& query) const {
  ++lookups_;
  return place_impl(query, *owners_);
}

std::vector<Placement> SpatialIndex::place(const Box& query,
                                           const PlacementView& view) const {
  ++lookups_;
  return place_impl(query, *view.owners);
}

int SpatialIndex::sole_owner(const Box& region) const {
  const Box clipped = region.intersection(domain_);
  if (clipped.empty()) return -1;
  const auto c0x = cell_coord(clipped.lo.x, domain_.lo.x, cell_sx_);
  const auto c1x = cell_coord(clipped.hi.x, domain_.lo.x, cell_sx_);
  const auto c0y = cell_coord(clipped.lo.y, domain_.lo.y, cell_sy_);
  const auto c1y = cell_coord(clipped.hi.y, domain_.lo.y, cell_sy_);
  const auto c0z = cell_coord(clipped.lo.z, domain_.lo.z, cell_sz_);
  const auto c1z = cell_coord(clipped.hi.z, domain_.lo.z, cell_sz_);
  int owner = -1;
  for (std::uint32_t cz = c0z; cz <= c1z; ++cz) {
    for (std::uint32_t cy = c0y; cy <= c1y; ++cy) {
      for (std::uint32_t cx = c0x; cx <= c1x; ++cx) {
        if (cell_box(cx, cy, cz).intersection(clipped).empty()) continue;
        const int s = server_of_index(curve_.index_of(cx, cy, cz));
        if (owner == -1) owner = s;
        else if (owner != s) return -1;
      }
    }
  }
  return owner;
}

std::vector<Placement> SpatialIndex::place_impl(
    const Box& query, const std::vector<int>& owners) const {
  std::map<int, Placement> by_server;
  const Box clipped = query.intersection(domain_);
  if (clipped.empty()) return {};

  const auto c0x = cell_coord(clipped.lo.x, domain_.lo.x, cell_sx_);
  const auto c1x = cell_coord(clipped.hi.x, domain_.lo.x, cell_sx_);
  const auto c0y = cell_coord(clipped.lo.y, domain_.lo.y, cell_sy_);
  const auto c1y = cell_coord(clipped.hi.y, domain_.lo.y, cell_sy_);
  const auto c0z = cell_coord(clipped.lo.z, domain_.lo.z, cell_sz_);
  const auto c1z = cell_coord(clipped.hi.z, domain_.lo.z, cell_sz_);

  for (std::uint32_t cz = c0z; cz <= c1z; ++cz) {
    for (std::uint32_t cy = c0y; cy <= c1y; ++cy) {
      for (std::uint32_t cx = c0x; cx <= c1x; ++cx) {
        const Box overlap = cell_box(cx, cy, cz).intersection(clipped);
        if (overlap.empty()) continue;
        const int server =
            owners[static_cast<std::size_t>(curve_.index_of(cx, cy, cz))];
        Placement& p = by_server[server];
        p.server = server;
        p.total_points += overlap.volume();
        // Merge x-adjacent cells owned by the same server into strips to
        // bound the per-request piece count.
        if (!p.pieces.empty()) {
          Box& last = p.pieces.back();
          if (last.lo.y == overlap.lo.y && last.hi.y == overlap.hi.y &&
              last.lo.z == overlap.lo.z && last.hi.z == overlap.hi.z &&
              last.hi.x + 1 == overlap.lo.x) {
            last.hi.x = overlap.hi.x;
            continue;
          }
        }
        p.pieces.push_back(overlap);
      }
    }
  }

  std::vector<Placement> out;
  out.reserve(by_server.size());
  for (auto& [server, placement] : by_server)
    out.push_back(std::move(placement));
  return out;
}

std::vector<std::uint64_t> SpatialIndex::cells_per_server() const {
  int highest = server_count_ - 1;
  for (int s : *active_) highest = std::max(highest, s);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(highest + 1),
                                    0);
  for (std::uint64_t idx = 0; idx < curve_.length(); ++idx) {
    ++counts[static_cast<std::size_t>(server_of_index(idx))];
  }
  return counts;
}

}  // namespace dstage::dht
