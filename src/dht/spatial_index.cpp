#include "dht/spatial_index.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace dstage::dht {

namespace {
int log2_exact(int v) {
  int order = 0;
  while ((1 << order) < v) ++order;
  if ((1 << order) != v)
    throw std::invalid_argument("cells_per_axis must be a power of two");
  return order;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

SpatialIndex::SpatialIndex(Box domain, int server_count, int cells_per_axis)
    : domain_(domain),
      server_count_(server_count),
      cells_(cells_per_axis),
      order_(log2_exact(cells_per_axis)),
      curve_(std::max(order_, 1)) {
  if (domain_.empty()) throw std::invalid_argument("empty domain");
  if (server_count_ < 1)
    throw std::invalid_argument("need at least one server");
  const auto ext = domain_.extents();
  cell_sx_ = std::max<std::int64_t>(1, ceil_div(ext[0], cells_));
  cell_sy_ = std::max<std::int64_t>(1, ceil_div(ext[1], cells_));
  cell_sz_ = std::max<std::int64_t>(1, ceil_div(ext[2], cells_));
}

std::uint32_t SpatialIndex::cell_coord(std::int64_t v, std::int64_t lo,
                                       std::int64_t cell_size) const {
  auto c = (v - lo) / cell_size;
  c = std::clamp<std::int64_t>(c, 0, cells_ - 1);
  return static_cast<std::uint32_t>(c);
}

int SpatialIndex::server_of_index(std::uint64_t curve_index) const {
  // Contiguous equal curve segments per server.
  const std::uint64_t total = curve_.length();
  const auto server = static_cast<int>(
      (curve_index * static_cast<std::uint64_t>(server_count_)) / total);
  return std::min(server, server_count_ - 1);
}

int SpatialIndex::server_of(const Point3& p) const {
  if (!domain_.contains(p)) throw std::out_of_range("point outside domain");
  const auto cx = cell_coord(p.x, domain_.lo.x, cell_sx_);
  const auto cy = cell_coord(p.y, domain_.lo.y, cell_sy_);
  const auto cz = cell_coord(p.z, domain_.lo.z, cell_sz_);
  return server_of_index(curve_.index_of(cx, cy, cz));
}

Box SpatialIndex::cell_box(std::uint32_t cx, std::uint32_t cy,
                           std::uint32_t cz) const {
  Box b;
  b.lo = {domain_.lo.x + static_cast<std::int64_t>(cx) * cell_sx_,
          domain_.lo.y + static_cast<std::int64_t>(cy) * cell_sy_,
          domain_.lo.z + static_cast<std::int64_t>(cz) * cell_sz_};
  b.hi = {b.lo.x + cell_sx_ - 1, b.lo.y + cell_sy_ - 1,
          b.lo.z + cell_sz_ - 1};
  return b.intersection(domain_);
}

std::vector<Placement> SpatialIndex::place(const Box& query) const {
  ++lookups_;
  std::map<int, Placement> by_server;
  const Box clipped = query.intersection(domain_);
  if (clipped.empty()) return {};

  const auto c0x = cell_coord(clipped.lo.x, domain_.lo.x, cell_sx_);
  const auto c1x = cell_coord(clipped.hi.x, domain_.lo.x, cell_sx_);
  const auto c0y = cell_coord(clipped.lo.y, domain_.lo.y, cell_sy_);
  const auto c1y = cell_coord(clipped.hi.y, domain_.lo.y, cell_sy_);
  const auto c0z = cell_coord(clipped.lo.z, domain_.lo.z, cell_sz_);
  const auto c1z = cell_coord(clipped.hi.z, domain_.lo.z, cell_sz_);

  for (std::uint32_t cz = c0z; cz <= c1z; ++cz) {
    for (std::uint32_t cy = c0y; cy <= c1y; ++cy) {
      for (std::uint32_t cx = c0x; cx <= c1x; ++cx) {
        const Box overlap = cell_box(cx, cy, cz).intersection(clipped);
        if (overlap.empty()) continue;
        const int server = server_of_index(curve_.index_of(cx, cy, cz));
        Placement& p = by_server[server];
        p.server = server;
        p.total_points += overlap.volume();
        // Merge x-adjacent cells owned by the same server into strips to
        // bound the per-request piece count.
        if (!p.pieces.empty()) {
          Box& last = p.pieces.back();
          if (last.lo.y == overlap.lo.y && last.hi.y == overlap.hi.y &&
              last.lo.z == overlap.lo.z && last.hi.z == overlap.hi.z &&
              last.hi.x + 1 == overlap.lo.x) {
            last.hi.x = overlap.hi.x;
            continue;
          }
        }
        p.pieces.push_back(overlap);
      }
    }
  }

  std::vector<Placement> out;
  out.reserve(by_server.size());
  for (auto& [server, placement] : by_server)
    out.push_back(std::move(placement));
  return out;
}

std::vector<std::uint64_t> SpatialIndex::cells_per_server() const {
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(server_count_), 0);
  for (std::uint64_t idx = 0; idx < curve_.length(); ++idx) {
    ++counts[static_cast<std::size_t>(server_of_index(idx))];
  }
  return counts;
}

}  // namespace dstage::dht
