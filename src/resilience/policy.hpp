// Redundancy policy applied by staging servers to staged and logged
// payloads (CoREC's scheme: replication for hot/small objects, erasure
// coding for capacity). The policy supplies the storage and compute cost
// model; the actual shard math is ReedSolomon.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dstage::resilience {

enum class Redundancy { kNone, kReplication, kErasureCode };

struct ResiliencePolicy {
  Redundancy kind = Redundancy::kNone;
  /// Total copies (including the primary) under replication.
  int replicas = 2;
  /// RS(k, m) parameters under erasure coding.
  int rs_k = 4;
  int rs_m = 2;
  /// Throughput of producing redundancy (memcpy for replication, parity
  /// arithmetic for RS), bytes of source data per second.
  double encode_bw = 44e9;

  /// Additional bytes stored per `n` payload bytes.
  [[nodiscard]] std::uint64_t redundancy_bytes(std::uint64_t n) const;
  /// Total stored bytes per `n` payload bytes (payload + redundancy).
  [[nodiscard]] std::uint64_t stored_bytes(std::uint64_t n) const;
  /// Virtual-time cost of producing the redundancy for `n` payload bytes.
  [[nodiscard]] sim::Duration encode_time(std::uint64_t n) const;
  /// Number of surviving fragments needed to recover a payload.
  [[nodiscard]] int fragments_needed() const;
  /// Total fragments produced (1 for none, replicas for replication,
  /// k + m for erasure coding).
  [[nodiscard]] int fragments_total() const;
  /// Maximum concurrent fragment losses that remain recoverable.
  [[nodiscard]] int max_losses() const;

  /// Rejects (std::invalid_argument) configs that are fundamentally
  /// unsatisfiable on a group of `server_count` servers: degenerate
  /// parameters (replicas < 2, rs_k/rs_m < 1, non-positive encode
  /// bandwidth) or redundancy with no peer to hold a second fragment
  /// (server_count < 2). A group merely smaller than fragments_total() is
  /// allowed — placement clamps with a loud warning and a metric, and
  /// survivability degrades (see StagingServer::push_fragments) — because
  /// partial redundancy still beats none.
  void validate(int server_count) const;
};

/// Deterministic placement of a payload's fragments across servers:
/// fragment j of an object owned by `owner` lands on (owner + j) % count.
/// Throws std::invalid_argument when count < fragments: the modulo would
/// silently wrap several fragments of one object onto the same server,
/// and every caller of this helper relies on the distinct-servers
/// guarantee (callers that can tolerate wrapping clamp explicitly).
std::vector<int> fragment_placement(int owner, int fragments,
                                    int server_count);

}  // namespace dstage::resilience
