#include "resilience/policy.hpp"

#include <stdexcept>

namespace dstage::resilience {

std::uint64_t ResiliencePolicy::redundancy_bytes(std::uint64_t n) const {
  switch (kind) {
    case Redundancy::kNone:
      return 0;
    case Redundancy::kReplication:
      return n * static_cast<std::uint64_t>(replicas - 1);
    case Redundancy::kErasureCode: {
      // m parity shards of size ceil(n / k).
      const std::uint64_t shard =
          (n + static_cast<std::uint64_t>(rs_k) - 1) /
          static_cast<std::uint64_t>(rs_k);
      return shard * static_cast<std::uint64_t>(rs_m);
    }
  }
  return 0;
}

std::uint64_t ResiliencePolicy::stored_bytes(std::uint64_t n) const {
  return n + redundancy_bytes(n);
}

sim::Duration ResiliencePolicy::encode_time(std::uint64_t n) const {
  if (kind == Redundancy::kNone) return {};
  if (encode_bw <= 0) throw std::logic_error("non-positive encode bandwidth");
  // Replication touches n bytes per extra copy; RS touches n bytes per
  // parity shard row (k multiply-adds over n/k bytes each).
  const std::uint64_t touched =
      kind == Redundancy::kReplication
          ? n * static_cast<std::uint64_t>(replicas - 1)
          : n * static_cast<std::uint64_t>(rs_m);
  return sim::from_seconds(static_cast<double>(touched) / encode_bw);
}

int ResiliencePolicy::fragments_needed() const {
  switch (kind) {
    case Redundancy::kNone:
    case Redundancy::kReplication:
      return 1;
    case Redundancy::kErasureCode:
      return rs_k;
  }
  return 1;
}

int ResiliencePolicy::fragments_total() const {
  switch (kind) {
    case Redundancy::kNone:
      return 1;
    case Redundancy::kReplication:
      return replicas;
    case Redundancy::kErasureCode:
      return rs_k + rs_m;
  }
  return 1;
}

int ResiliencePolicy::max_losses() const {
  return fragments_total() - fragments_needed();
}

std::vector<int> fragment_placement(int owner, int fragments,
                                    int server_count) {
  if (server_count < 1) throw std::invalid_argument("no servers");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(fragments));
  for (int j = 0; j < fragments; ++j) {
    out.push_back((owner + j) % server_count);
  }
  return out;
}

}  // namespace dstage::resilience
