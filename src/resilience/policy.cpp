#include "resilience/policy.hpp"

#include <stdexcept>
#include <string>

namespace dstage::resilience {

std::uint64_t ResiliencePolicy::redundancy_bytes(std::uint64_t n) const {
  switch (kind) {
    case Redundancy::kNone:
      return 0;
    case Redundancy::kReplication:
      return n * static_cast<std::uint64_t>(replicas - 1);
    case Redundancy::kErasureCode: {
      // m parity shards of size ceil(n / k).
      const std::uint64_t shard =
          (n + static_cast<std::uint64_t>(rs_k) - 1) /
          static_cast<std::uint64_t>(rs_k);
      return shard * static_cast<std::uint64_t>(rs_m);
    }
  }
  return 0;
}

std::uint64_t ResiliencePolicy::stored_bytes(std::uint64_t n) const {
  return n + redundancy_bytes(n);
}

sim::Duration ResiliencePolicy::encode_time(std::uint64_t n) const {
  if (kind == Redundancy::kNone) return {};
  if (encode_bw <= 0) throw std::logic_error("non-positive encode bandwidth");
  // Replication touches n bytes per extra copy; RS touches n bytes per
  // parity shard row (k multiply-adds over n/k bytes each).
  const std::uint64_t touched =
      kind == Redundancy::kReplication
          ? n * static_cast<std::uint64_t>(replicas - 1)
          : n * static_cast<std::uint64_t>(rs_m);
  return sim::from_seconds(static_cast<double>(touched) / encode_bw);
}

int ResiliencePolicy::fragments_needed() const {
  switch (kind) {
    case Redundancy::kNone:
    case Redundancy::kReplication:
      return 1;
    case Redundancy::kErasureCode:
      return rs_k;
  }
  return 1;
}

int ResiliencePolicy::fragments_total() const {
  switch (kind) {
    case Redundancy::kNone:
      return 1;
    case Redundancy::kReplication:
      return replicas;
    case Redundancy::kErasureCode:
      return rs_k + rs_m;
  }
  return 1;
}

int ResiliencePolicy::max_losses() const {
  return fragments_total() - fragments_needed();
}

void ResiliencePolicy::validate(int server_count) const {
  if (kind == Redundancy::kNone) return;
  if (encode_bw <= 0) {
    throw std::invalid_argument(
        "resilience policy: encode_bw must be positive");
  }
  if (kind == Redundancy::kReplication && replicas < 2) {
    throw std::invalid_argument(
        "resilience policy: replication needs replicas >= 2");
  }
  if (kind == Redundancy::kErasureCode && (rs_k < 1 || rs_m < 1)) {
    throw std::invalid_argument(
        "resilience policy: erasure coding needs rs_k >= 1 and rs_m >= 1");
  }
  if (server_count < 2) {
    throw std::invalid_argument(
        "resilience policy: redundancy is unsatisfiable with fewer than 2 "
        "servers (no peer can hold a second fragment)");
  }
}

std::vector<int> fragment_placement(int owner, int fragments,
                                    int server_count) {
  if (server_count < 1) throw std::invalid_argument("no servers");
  if (fragments > server_count) {
    throw std::invalid_argument(
        "fragment_placement: " + std::to_string(fragments) +
        " fragments cannot land on distinct servers in a group of " +
        std::to_string(server_count));
  }
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(fragments));
  for (int j = 0; j < fragments; ++j) {
    out.push_back((owner + j) % server_count);
  }
  return out;
}

}  // namespace dstage::resilience
