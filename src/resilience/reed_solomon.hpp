// Systematic Reed–Solomon erasure code RS(k, m): k data shards, m parity
// shards, tolerating any m erasures. Encoding matrix is a Vandermonde matrix
// reduced to systematic form (identity over the data rows), the standard
// construction used by storage systems.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "resilience/gf256.hpp"

namespace dstage::resilience {

/// Dense matrix over GF(256).
class GfMatrix {
 public:
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::uint8_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] GfMatrix multiply(const GfMatrix& other) const;
  /// Gauss–Jordan inverse; nullopt when singular.
  [[nodiscard]] std::optional<GfMatrix> inverted() const;
  [[nodiscard]] static GfMatrix identity(std::size_t n);
  /// rows × cols Vandermonde: at(r, c) = r^c.
  [[nodiscard]] static GfMatrix vandermonde(std::size_t rows,
                                            std::size_t cols);
  /// Extract a subset of rows.
  [[nodiscard]] GfMatrix sub_rows(const std::vector<std::size_t>& rows) const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> data_;
};

using Shard = std::vector<std::uint8_t>;

class ReedSolomon {
 public:
  /// Requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  [[nodiscard]] int data_shards() const { return k_; }
  [[nodiscard]] int parity_shards() const { return m_; }
  [[nodiscard]] int total_shards() const { return k_ + m_; }

  /// Split `data` into k shards (zero-padded) and append m parity shards.
  /// Shard size is ceil(len / k).
  [[nodiscard]] std::vector<Shard> encode(
      std::span<const std::uint8_t> data) const;

  /// Rebuild the original byte stream from any k surviving shards.
  /// `shards[i]` must be empty when shard i is lost; `original_size` trims
  /// the padding. Returns nullopt when more than m shards are missing.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode(
      const std::vector<Shard>& shards, std::size_t original_size) const;

  /// Reconstruct every missing shard in place. Returns false when more than
  /// m shards are missing.
  [[nodiscard]] bool reconstruct(std::vector<Shard>& shards) const;

  /// Verify that parity shards are consistent with data shards.
  [[nodiscard]] bool verify(const std::vector<Shard>& shards) const;

 private:
  int k_, m_;
  GfMatrix encode_matrix_;  // (k+m) × k, top k×k block is identity
};

}  // namespace dstage::resilience
