#include "resilience/gf256.hpp"

#include <stdexcept>

namespace dstage::resilience {

Gf256::Gf256() {
  // Generate the field with primitive element 2 over polynomial 0x11d.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    log_[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (int i = 255; i < 512; ++i) {
    exp_[static_cast<std::size_t>(i)] = exp_[static_cast<std::size_t>(i - 255)];
  }
  log_[0] = 0;  // undefined; guarded by callers
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  if (b == 0) throw std::domain_error("GF(256) division by zero");
  if (a == 0) return 0;
  return exp_[static_cast<std::size_t>(log_[a]) + 255 - log_[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  if (a == 0) throw std::domain_error("GF(256) inverse of zero");
  return exp_[static_cast<std::size_t>(255 - log_[a])];
}

std::uint8_t Gf256::pow(std::uint8_t a, int p) const {
  if (p == 0) return 1;
  if (a == 0) return 0;
  const int l = (log_[a] * p) % 255;
  return exp_[static_cast<std::size_t>(l < 0 ? l + 255 : l)];
}

void Gf256::mul_add(std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t> src, std::uint8_t c) const {
  if (c == 0) return;
  const std::size_t n = std::min(dst.size(), src.size());
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t lc = log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= exp_[static_cast<std::size_t>(log_[s]) + lc];
  }
}

const Gf256& gf256() {
  static const Gf256 instance;
  return instance;
}

}  // namespace dstage::resilience
