#include "resilience/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

namespace dstage::resilience {

GfMatrix GfMatrix::multiply(const GfMatrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("shape mismatch");
  const auto& gf = gf256();
  GfMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const std::uint8_t a = at(r, i);
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) ^= gf.mul(a, other.at(i, c));
      }
    }
  }
  return out;
}

std::optional<GfMatrix> GfMatrix::inverted() const {
  if (rows_ != cols_) throw std::invalid_argument("inverse of non-square");
  const auto& gf = gf256();
  const std::size_t n = rows_;
  GfMatrix work(*this);
  GfMatrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Normalize pivot row.
    const std::uint8_t scale = gf.inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = gf.mul(work.at(col, c), scale);
      inv.at(col, c) = gf.mul(inv.at(col, c), scale);
    }
    // Eliminate other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) ^= gf.mul(factor, work.at(col, c));
        inv.at(r, c) ^= gf.mul(factor, inv.at(col, c));
      }
    }
  }
  return inv;
}

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::vandermonde(std::size_t rows, std::size_t cols) {
  const auto& gf = gf256();
  GfMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = gf.pow(static_cast<std::uint8_t>(r), static_cast<int>(c));
    }
  }
  return m;
}

GfMatrix GfMatrix::sub_rows(const std::vector<std::size_t>& rows) const {
  GfMatrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(i, c) = at(rows[i], c);
    }
  }
  return out;
}

ReedSolomon::ReedSolomon(int k, int m)
    : k_(k), m_(m), encode_matrix_(1, 1) {
  if (k < 1 || m < 0 || k + m > 255)
    throw std::invalid_argument("invalid RS(k, m) parameters");
  // Systematic [I ; Cauchy] construction. With parity row p and data column
  // i mapped to distinct field points x_p = k + p and y_i = i, the Cauchy
  // block at(k+p, i) = 1 / (x_p ^ y_i) makes every k-row submatrix of the
  // whole encoding matrix invertible (the MDS property), unlike the naive
  // Vandermonde-times-inverse construction which can produce singular
  // subsets for some (k, m).
  const auto& gf = gf256();
  encode_matrix_ = GfMatrix(static_cast<std::size_t>(k + m),
                            static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    encode_matrix_.at(static_cast<std::size_t>(i),
                      static_cast<std::size_t>(i)) = 1;
  }
  for (int p = 0; p < m; ++p) {
    for (int i = 0; i < k; ++i) {
      const auto x = static_cast<std::uint8_t>(k + p);
      const auto y = static_cast<std::uint8_t>(i);
      encode_matrix_.at(static_cast<std::size_t>(k + p),
                        static_cast<std::size_t>(i)) =
          gf.inv(static_cast<std::uint8_t>(x ^ y));
    }
  }
}

std::vector<Shard> ReedSolomon::encode(
    std::span<const std::uint8_t> data) const {
  const std::size_t shard_size =
      (data.size() + static_cast<std::size_t>(k_) - 1) /
      static_cast<std::size_t>(k_);
  std::vector<Shard> shards(static_cast<std::size_t>(k_ + m_));
  // Data shards: zero-padded slices.
  for (int i = 0; i < k_; ++i) {
    Shard& s = shards[static_cast<std::size_t>(i)];
    s.assign(shard_size, 0);
    const std::size_t off = static_cast<std::size_t>(i) * shard_size;
    if (off < data.size()) {
      const std::size_t n = std::min(shard_size, data.size() - off);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), n,
                  s.begin());
    }
  }
  // Parity shards.
  const auto& gf = gf256();
  for (int p = 0; p < m_; ++p) {
    Shard& out = shards[static_cast<std::size_t>(k_ + p)];
    out.assign(shard_size, 0);
    for (int i = 0; i < k_; ++i) {
      gf.mul_add(out, shards[static_cast<std::size_t>(i)],
                 encode_matrix_.at(static_cast<std::size_t>(k_ + p),
                                   static_cast<std::size_t>(i)));
    }
  }
  return shards;
}

bool ReedSolomon::reconstruct(std::vector<Shard>& shards) const {
  if (shards.size() != static_cast<std::size_t>(k_ + m_))
    throw std::invalid_argument("wrong shard count");
  std::vector<std::size_t> present;
  std::size_t shard_size = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!shards[i].empty()) {
      present.push_back(i);
      if (shard_size == 0) shard_size = shards[i].size();
      if (shards[i].size() != shard_size)
        throw std::invalid_argument("inconsistent shard sizes");
    }
  }
  if (present.size() == shards.size()) return true;  // nothing missing
  if (present.size() < static_cast<std::size_t>(k_)) return false;
  present.resize(static_cast<std::size_t>(k_));  // any k rows suffice

  auto decode_matrix = encode_matrix_.sub_rows(present).inverted();
  if (!decode_matrix) return false;  // cannot happen for Vandermonde-derived

  const auto& gf = gf256();
  // Recover the k data shards first.
  std::vector<Shard> data_shards(static_cast<std::size_t>(k_));
  for (int r = 0; r < k_; ++r) {
    Shard& out = data_shards[static_cast<std::size_t>(r)];
    const std::size_t ur = static_cast<std::size_t>(r);
    if (!shards[ur].empty()) {
      continue;  // filled below from the original
    }
    out.assign(shard_size, 0);
    for (std::size_t i = 0; i < present.size(); ++i) {
      gf.mul_add(out, shards[present[i]],
                 decode_matrix->at(ur, i));
    }
  }
  for (int r = 0; r < k_; ++r) {
    const std::size_t ur = static_cast<std::size_t>(r);
    if (shards[ur].empty()) shards[ur] = std::move(data_shards[ur]);
  }
  // Re-derive any missing parity from the (now complete) data shards.
  for (int p = 0; p < m_; ++p) {
    const std::size_t up = static_cast<std::size_t>(k_ + p);
    if (!shards[up].empty()) continue;
    shards[up].assign(shard_size, 0);
    for (int i = 0; i < k_; ++i) {
      gf.mul_add(shards[up], shards[static_cast<std::size_t>(i)],
                 encode_matrix_.at(up, static_cast<std::size_t>(i)));
    }
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(
    const std::vector<Shard>& shards, std::size_t original_size) const {
  if (original_size == 0) return std::vector<std::uint8_t>{};
  std::vector<Shard> work = shards;
  if (!reconstruct(work)) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  for (int i = 0; i < k_ && out.size() < original_size; ++i) {
    const Shard& s = work[static_cast<std::size_t>(i)];
    const std::size_t n = std::min(s.size(), original_size - out.size());
    out.insert(out.end(), s.begin(),
               s.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (out.size() != original_size) return std::nullopt;
  return out;
}

bool ReedSolomon::verify(const std::vector<Shard>& shards) const {
  if (shards.size() != static_cast<std::size_t>(k_ + m_)) return false;
  for (const auto& s : shards) {
    if (s.empty() || s.size() != shards[0].size()) return false;
  }
  const auto& gf = gf256();
  for (int p = 0; p < m_; ++p) {
    Shard expect(shards[0].size(), 0);
    for (int i = 0; i < k_; ++i) {
      gf.mul_add(expect, shards[static_cast<std::size_t>(i)],
                 encode_matrix_.at(static_cast<std::size_t>(k_ + p),
                                   static_cast<std::size_t>(i)));
    }
    if (expect != shards[static_cast<std::size_t>(k_ + p)]) return false;
  }
  return true;
}

}  // namespace dstage::resilience
