// GF(2^8) arithmetic over the AES-adjacent polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the field under the Reed–Solomon codes that give staged (and
// logged) data CoREC-style erasure resilience.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dstage::resilience {

class Gf256 {
 public:
  /// Tables are built once; the class is a stateless value afterwards.
  Gf256();

  [[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }
  [[nodiscard]] std::uint8_t sub(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;  // characteristic 2: addition is subtraction
  }
  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<std::size_t>(log_[a]) + log_[b]];
  }
  /// b must be non-zero.
  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const;
  /// a must be non-zero.
  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const;
  /// exponentiation g^p of the generator, p in [0, 254].
  [[nodiscard]] std::uint8_t exp(int p) const {
    return exp_[static_cast<std::size_t>(p % 255)];
  }
  [[nodiscard]] std::uint8_t pow(std::uint8_t a, int p) const;

  /// dst[i] ^= c * src[i] — the inner loop of encode/decode.
  void mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
               std::uint8_t c) const;

 private:
  std::array<std::uint8_t, 512> exp_{};  // doubled to skip the mod in mul
  std::array<std::uint8_t, 256> log_{};
};

/// Process-wide shared instance (construction is cheap but avoid rebuilding
/// tables per call site).
const Gf256& gf256();

}  // namespace dstage::resilience
