#include "staging/recovery.hpp"

#include <cstdio>

#include "sim/spawn.hpp"

namespace dstage::staging {

void StagingRecoveryManager::arm() {
  cluster_->on_failure([this](cluster::VprocId vp) { on_failure(vp); });
}

void StagingRecoveryManager::on_failure(cluster::VprocId vproc) {
  for (std::size_t i = 0; i < server_vprocs_.size(); ++i) {
    if (server_vprocs_[i] != vproc) continue;
    const int index = static_cast<int>(i);
    ++stats_.server_failures;
    if (recovering_.count(index) > 0) {
      // A recovery for this server is already in flight. Spawning another
      // would double-acquire a spare and race two replacements into the
      // same slot; coalesce instead and re-check when the first one lands.
      ++stats_.coalesced_failures;
      pending_.insert(index);
      return;
    }
    start_recovery(index);
    return;
  }
}

void StagingRecoveryManager::start_recovery(int index) {
  if (!spares_.acquire()) {
    ++stats_.spare_exhausted;
    // No replacement is coming: the group runs degraded and every
    // request to this server is lost. That must be loud.
    degraded_.insert(index);
    std::fprintf(stderr,
                 "[staging] WARNING: spare pool exhausted; server %d is "
                 "down and will NOT be recovered (degraded mode)\n",
                 index);
    if (obs_ != nullptr) {
      obs_->metrics().counter("recovery.degraded_servers", obs_track_).inc();
    }
    if (recorder_ != nullptr) {
      recorder_->note_degradation(
          recorder_track_, cluster_->engine().now(),
          "spare pool exhausted; server " + std::to_string(index) +
              " down unrecovered (degraded mode)");
    }
    if (on_degraded_) on_degraded_(index);
    return;
  }
  recovering_.insert(index);
  sim::spawn(cluster_->engine(), recover(index));
}

sim::Task<void> StagingRecoveryManager::recover(int index) {
  sim::Ctx sys{&cluster_->engine(), nullptr};
  // Spare process joins and re-registers with the staging group.
  co_await sys.delay(respawn_cost_);
  const auto vp = server_vprocs_[static_cast<std::size_t>(index)];
  cluster_->revive(vp);

  // Fresh server instance on the same vproc/endpoint: the mailbox (and any
  // backlog that accumulated during the outage) is preserved.
  auto replacement =
      std::make_unique<StagingServer>(*cluster_, vp, params_);
  std::vector<net::EndpointId> endpoints;
  endpoints.reserve(server_vprocs_.size());
  for (auto v : server_vprocs_)
    endpoints.push_back(cluster_->vproc(v).endpoint);
  replacement->set_peers(index, std::move(endpoints));
  if (spill_endpoint_ >= 0) replacement->set_spill_endpoint(spill_endpoint_);
  (*servers_)[static_cast<std::size_t>(index)] = std::move(replacement);
  (*servers_)[static_cast<std::size_t>(index)]->start_with_recovery();
  ++stats_.servers_recovered;
  degraded_.erase(index);
  recovering_.erase(index);

  // Failures coalesced while this recovery was in flight: the replacement
  // we just started rebuilt from post-failure peer state, so they are
  // normally covered — but if the vproc died again after the revive above,
  // a fresh recovery round is needed (the failure was already counted when
  // it was coalesced).
  if (pending_.erase(index) > 0 && !cluster_->vproc(vp).alive) {
    start_recovery(index);
  }
}

}  // namespace dstage::staging
