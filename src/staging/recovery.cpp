#include "staging/recovery.hpp"

#include "sim/spawn.hpp"

namespace dstage::staging {

void StagingRecoveryManager::arm() {
  cluster_->on_failure([this](cluster::VprocId vp) { on_failure(vp); });
}

void StagingRecoveryManager::on_failure(cluster::VprocId vproc) {
  for (std::size_t i = 0; i < server_vprocs_.size(); ++i) {
    if (server_vprocs_[i] != vproc) continue;
    ++stats_.server_failures;
    if (!spares_.acquire()) {
      ++stats_.spare_exhausted;
      return;  // no replacement available; staging runs degraded
    }
    sim::spawn(cluster_->engine(), recover(static_cast<int>(i)));
    return;
  }
}

sim::Task<void> StagingRecoveryManager::recover(int index) {
  sim::Ctx sys{&cluster_->engine(), nullptr};
  // Spare process joins and re-registers with the staging group.
  co_await sys.delay(respawn_cost_);
  const auto vp = server_vprocs_[static_cast<std::size_t>(index)];
  cluster_->revive(vp);

  // Fresh server instance on the same vproc/endpoint: the mailbox (and any
  // backlog that accumulated during the outage) is preserved.
  auto replacement =
      std::make_unique<StagingServer>(*cluster_, vp, params_);
  std::vector<net::EndpointId> endpoints;
  endpoints.reserve(server_vprocs_.size());
  for (auto v : server_vprocs_)
    endpoints.push_back(cluster_->vproc(v).endpoint);
  replacement->set_peers(index, std::move(endpoints));
  (*servers_)[static_cast<std::size_t>(index)] = std::move(replacement);
  (*servers_)[static_cast<std::size_t>(index)]->start_with_recovery();
  ++stats_.servers_recovered;
}

}  // namespace dstage::staging
