#include "staging/group.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <variant>

#include "sim/spawn.hpp"

namespace dstage::staging {

namespace {
/// Control-plane processing cost per membership request.
constexpr sim::Duration kControlOverhead = sim::microseconds(3);
/// Pause between drain sweeps of a retiring server (lets in-flight puts
/// that passed the ownership gate before the epoch bump land).
constexpr sim::Duration kDrainPause = sim::microseconds(50);
/// Drain passes before a retire gives up and reports failure.
constexpr int kMaxDrainSweeps = 64;
}  // namespace

GroupManager::GroupManager(cluster::Cluster& cluster, cluster::VprocId vproc,
                           dht::SpatialIndex& index,
                           std::vector<StagingServer*> servers)
    : cluster_(&cluster),
      vproc_(vproc),
      index_(&index),
      servers_(std::move(servers)),
      rpc_(cluster.fabric(), cluster.vproc(vproc).endpoint) {}

net::EndpointId GroupManager::endpoint() const {
  return cluster_->vproc(vproc_).endpoint;
}

void GroupManager::start() { sim::spawn(cluster_->engine(), run()); }

sim::Task<void> GroupManager::run() {
  auto& ep = cluster_->fabric().endpoint(endpoint());
  sim::Ctx c = ctx();
  for (;;) {
    net::Packet packet = co_await ep.recv(c.tok);
    net::Message msg = std::move(packet.payload);
    if (auto* join = std::get_if<JoinGroup>(&msg)) {
      co_await handle_join(std::move(*join));
    } else if (auto* retire = std::get_if<RetireServer>(&msg)) {
      co_await handle_retire(std::move(*retire));
    } else if (auto* query = std::get_if<MembershipQuery>(&msg)) {
      co_await handle_query(std::move(*query));
    }
    // Anything else is misrouted; dropping keeps the manager inert.
  }
}

sim::Task<void> GroupManager::broadcast_view() {
  sim::Ctx c = ctx();
  const std::uint64_t epoch = index_->epoch();
  const std::vector<int> active = index_->active_servers();
  if (recorder_ != nullptr)
    recorder_->record(recorder_track_, cluster_->engine().now(),
                      obs::FrKind::kEpochChange, std::uint32_t{0},
                      static_cast<std::int64_t>(epoch),
                      static_cast<std::int64_t>(active.size()));
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    ++stats_.membership_updates;
    net::Message update{MembershipUpdate{epoch, active}};
    co_await rpc_.send(c, server_endpoint(static_cast<int>(s)),
                       std::move(update));
  }
}

sim::Task<StagingServer::ResilverOutcome> GroupManager::resilver_moves(
    std::vector<dht::CellMove> moves) {
  sim::Ctx c = ctx();
  StagingServer::ResilverOutcome total;

  // Group the moved cells by (old owner → new owner) pair; each pair is one
  // resilver transfer of exactly those cells' boxes — minimal data motion.
  std::map<std::pair<int, int>, std::vector<Box>> transfers;
  for (const dht::CellMove& m : moves) {
    Box box = index_->cell_box_of(m.cell);
    if (box.empty()) continue;  // curve cell outside the domain grid
    transfers[{m.from, m.to}].push_back(box);
  }

  std::vector<sim::Task<StagingServer::ResilverOutcome>> sweeps;
  for (auto& [pair, regions] : transfers) {
    const auto [from, to] = pair;
    sweeps.push_back(servers_[static_cast<std::size_t>(from)]->resilver_out(
        to, server_endpoint(to), std::move(regions)));
  }
  auto outcomes = co_await sim::when_all(c, std::move(sweeps));
  for (const StagingServer::ResilverOutcome& o : outcomes) {
    total.chunks += o.chunks;
    total.bytes += o.bytes;
  }
  stats_.resilver_chunks += total.chunks;
  stats_.resilver_bytes += total.bytes;
  if (obs_ != nullptr) {
    obs_->metrics()
        .counter("elastic.resilver_chunks", obs_track_)
        .inc(total.chunks);
    obs_->metrics()
        .counter("elastic.resilver_bytes", obs_track_)
        .inc(total.bytes);
  }
  co_return total;
}

sim::Task<void> GroupManager::handle_join(JoinGroup req) {
  sim::Ctx c = ctx();
  co_await c.delay(kControlOverhead);

  const std::vector<int>& active = index_->active_servers();
  int server = req.server;
  if (server < 0) {
    // Pick the lowest-numbered standby.
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (std::find(active.begin(), active.end(), static_cast<int>(s)) ==
          active.end()) {
        server = static_cast<int>(s);
        break;
      }
    }
  }

  GroupChangeAck ack;
  ack.server = server;
  const bool valid =
      server >= 0 && server < static_cast<int>(servers_.size()) &&
      std::find(active.begin(), active.end(), server) == active.end();
  if (!valid) {
    ++stats_.rejected;
    ack.ok = false;
    ack.epoch = index_->epoch();
    co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply), ack);
    co_return;
  }

  obs::SpanId span = 0;
  if (obs_ != nullptr) {
    span = obs_->tracer().begin(obs_track_, "join", obs::Phase::kResilver,
                                cluster_->engine().now());
    obs_->metrics().counter("elastic.joins", obs_track_).inc();
  }

  std::vector<dht::CellMove> moves = index_->add_server(server);
  co_await broadcast_view();

  resilver_active_ = true;
  const sim::TimePoint resilver_start = cluster_->engine().now();
  co_await resilver_moves(std::move(moves));
  stats_.resilver_time_s +=
      (cluster_->engine().now() - resilver_start).seconds();
  resilver_active_ = false;

  ++stats_.joins;
  ack.ok = true;
  ack.epoch = index_->epoch();
  if (obs_ != nullptr) obs_->tracer().end(span, cluster_->engine().now());
  co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply), ack);
}

sim::Task<void> GroupManager::handle_retire(RetireServer req) {
  sim::Ctx c = ctx();
  co_await c.delay(kControlOverhead);

  const std::vector<int>& active = index_->active_servers();
  int server = req.server;
  if (server < 0 && !active.empty()) server = active.back();

  GroupChangeAck ack;
  ack.server = server;
  const bool valid =
      server >= 0 && server < static_cast<int>(servers_.size()) &&
      active.size() >= 2 &&
      std::find(active.begin(), active.end(), server) != active.end();
  if (!valid) {
    ++stats_.rejected;
    ack.ok = false;
    ack.epoch = index_->epoch();
    co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply), ack);
    co_return;
  }

  obs::SpanId span = 0;
  if (obs_ != nullptr) {
    span = obs_->tracer().begin(obs_track_, "retire", obs::Phase::kResilver,
                                cluster_->engine().now());
    obs_->metrics().counter("elastic.retires", obs_track_).inc();
  }

  std::vector<dht::CellMove> moves = index_->remove_server(server);
  co_await broadcast_view();

  // Drain until the retiree holds no primary data. New requests bounce off
  // the live ownership gate the moment the epoch advanced, but puts that
  // passed the gate before the bump may still land between sweeps.
  resilver_active_ = true;
  const sim::TimePoint resilver_start = cluster_->engine().now();
  StagingServer* retiree = servers_[static_cast<std::size_t>(server)];
  co_await resilver_moves(moves);

  // The per-destination sweep above leaves behind any chunk straddling
  // cells that moved to *different* successors (no single transfer covers
  // it). The drain pass hands each leftover piece whole to every new owner
  // of its region before releasing it, so a finite number of sweeps always
  // empties the retiree.
  std::map<int, std::vector<Box>> successor_regions;
  for (const dht::CellMove& m : moves) {
    Box box = index_->cell_box_of(m.cell);
    if (!box.empty()) successor_regions[m.to].push_back(box);
  }
  std::vector<StagingServer::DrainDest> dests;
  for (auto& [to, regions] : successor_regions) {
    dests.push_back({to, server_endpoint(to), std::move(regions)});
  }
  int sweeps = 0;
  while (!retiree->drained() && sweeps < kMaxDrainSweeps) {
    if (sweeps > 0) {
      ++stats_.drain_sweeps;
      co_await c.delay(kDrainPause);
    }
    ++sweeps;
    StagingServer::ResilverOutcome o = co_await retiree->drain_out(dests);
    stats_.resilver_chunks += o.chunks;
    stats_.resilver_bytes += o.bytes;
    if (obs_ != nullptr) {
      obs_->metrics()
          .counter("elastic.resilver_chunks", obs_track_)
          .inc(o.chunks);
      obs_->metrics()
          .counter("elastic.resilver_bytes", obs_track_)
          .inc(o.bytes);
    }
  }
  co_await retiree->handoff_redundancy();
  stats_.resilver_time_s +=
      (cluster_->engine().now() - resilver_start).seconds();
  resilver_active_ = false;

  ack.ok = retiree->drained();
  if (ack.ok) ++stats_.retires;
  ack.epoch = index_->epoch();
  if (obs_ != nullptr) obs_->tracer().end(span, cluster_->engine().now());
  co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply), ack);
}

sim::Task<void> GroupManager::handle_query(MembershipQuery req) {
  sim::Ctx c = ctx();
  co_await c.delay(kControlOverhead);
  MembershipInfo info;
  info.epoch = index_->epoch();
  info.active = index_->active_servers();
  co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply),
                       std::move(info));
}

}  // namespace dstage::staging
