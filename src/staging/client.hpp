// Staging client: the application-side half of the Global User Interface
// (Table 1 of the paper). Geometric puts/gets are sharded across servers by
// the spatial DHT and issued in parallel; workflow_check()/workflow_restart()
// broadcast checkpoint and recovery events to every server. All traffic
// flows through the typed net::Rpc transport, which owns the
// timeout/retry/backoff loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "net/rpc.hpp"
#include "resilience/policy.hpp"
#include "staging/types.hpp"

namespace dstage::staging {

struct ClientParams {
  AppId app = 0;
  /// Issue requests with data logging (the *_with_log interface). Plain
  /// DataSpaces semantics when false.
  bool logged = true;
  /// Nominal payload size per grid point.
  double bytes_per_point = 8.0;
  /// Physical payloads are nominal / mem_scale (floor 16 B) so paper-scale
  /// runs fit in RAM while virtual-time costs use nominal sizes.
  std::uint64_t mem_scale = 4096;
  /// Cost of (re)building RDMA connections to all servers on restart.
  sim::Duration reconnect_cost = sim::milliseconds(50);
  /// RPC retry timeouts; zero disables retries (the default — coupling
  /// reads legitimately block for long stretches). Enable when staging
  /// servers can fail so requests lost in a crash are re-sent to the
  /// recovered replacement.
  sim::Duration put_timeout{0};
  sim::Duration get_timeout{0};
  int max_retries = 6;
  /// Initial retry backoff, doubled per attempt (0 = immediate re-send,
  /// the historical behavior).
  sim::Duration retry_backoff{0};
  /// Coalesce same-destination chunk puts of one write into a single
  /// BatchPut message per server (see net::Config::batching).
  bool batching = false;
  /// Tenant this client acts for. Every variable name is namespaced through
  /// tenant_key() before it reaches the DHT or a server, and every request
  /// carries the tenant so servers can scope admission and rollback. The
  /// default tenant (0) leaves names — and all traffic — byte-identical to
  /// the single-tenant build.
  net::TenantId tenant = 0;
};

struct PutResult {
  sim::Duration response_time{};
  std::uint64_t nominal_bytes = 0;
  std::size_t pieces = 0;
  std::size_t suppressed = 0;  // pieces recognized as replay duplicates
  std::size_t messages = 0;    // fabric messages the write fanned out into
  /// Chunks a memory-governed server bounced with RetryLater and the client
  /// re-sent after backing off. The put only returns once every piece is
  /// admitted, so a partially admitted batch is never acked as durable.
  std::size_t backpressure_resends = 0;
  /// Pieces bounced with wrong_epoch and re-placed against a refreshed
  /// membership view (elastic mode only).
  std::size_t wrong_epoch_retries = 0;
};

/// Aggregated version metadata across the staging group.
struct QueryResult {
  /// Versions some server still holds in its base window (union).
  std::vector<Version> available;
  /// Versions every contacted server retains in its data log
  /// (intersection — i.e. fully replayable versions).
  std::vector<Version> fully_logged;
};

struct GetResult {
  sim::Duration response_time{};
  std::uint64_t nominal_bytes = 0;
  std::vector<Chunk> pieces;
  int wrong_version = 0;  // Fig.-2 anomaly: stale/newer version observed
  int corrupt = 0;
  bool any_from_log = false;
  /// Pieces re-placed after a wrong_epoch bounce (elastic mode only).
  std::size_t wrong_epoch_retries = 0;
  /// Pieces served by reconstructing redundancy fragments off surviving
  /// peers because the owner was down or mid-resilver.
  std::size_t degraded_pieces = 0;
};

class StagingClient {
 public:
  StagingClient(cluster::Cluster& cluster, const dht::SpatialIndex& index,
                std::vector<cluster::VprocId> servers,
                cluster::VprocId self, ClientParams params);

  // put()/get() are plain shims over private coroutines. GCC 12 coroutines
  // double-destroy prvalue argument temporaries in co_await expressions, so
  // the shims take only trivially-destructible parameter types
  // (string_view, Box) and materialize the owned string inside the shim,
  // moving it (an xvalue, which is safe) into the coroutine.

  /// dspaces_put_with_log(): write (var, version, region); the payload is
  /// synthesized deterministically so consumers can verify it.
  sim::Task<PutResult> put(sim::Ctx ctx, std::string_view var,
                           Version version, Box region) {
    std::string owned(var);
    return put_impl(ctx, std::move(owned), version, region);
  }

  /// dspaces_get_with_log(): read (var, version, region); blocks until the
  /// data is available; verifies every returned piece.
  sim::Task<GetResult> get(sim::Ctx ctx, std::string_view var,
                           Version version, Box region) {
    std::string owned(var);
    return get_impl(ctx, std::move(owned), version, region);
  }

  /// workflow_check(): notify every staging server of a checkpoint event at
  /// timestep `version`. Returns the highest assigned W_Chk_ID. Pass
  /// `durable = false` for checkpoint levels a node failure can wipe
  /// (node-local, emergency): the marker still anchors replay, but must
  /// not advance the staging GC watermark.
  sim::Task<std::uint64_t> workflow_check(sim::Ctx ctx, Version version,
                                          bool durable = true);

  /// Multi-level checkpointing: announce a freshly cached checkpoint set to
  /// the drain agent — the level-1 store notification followed by the
  /// level-2 XOR parity share (whose `parity_bytes` really travel to the
  /// partner group). Both are one-way: hierarchy state was updated
  /// synchronously by the scheme layer, so restart correctness never waits
  /// on these messages.
  sim::Task<void> ckpt_announce(sim::Ctx ctx, Version version,
                                std::uint64_t parity_bytes,
                                net::EndpointId drain_ep);

  /// workflow_restart(): re-initialize the client after recovery (RDMA
  /// reconnect) and notify servers; returns the total number of logged
  /// events the servers will replay.
  sim::Task<std::size_t> workflow_restart(sim::Ctx ctx,
                                          Version restored_version);

  /// Coordinated-restart support: roll the staging state itself back.
  /// `tenant < 0` (the pre-multi-tenant default) rolls back every tenant's
  /// state; `tenant >= 0` scopes the wipe to that tenant's namespace so one
  /// workflow's coordinated restart never truncates a co-resident tenant.
  sim::Task<void> rollback_staging(sim::Ctx ctx, Version version,
                                   net::TenantId tenant = -1);

  /// dspaces_query-style metadata lookup: which versions of `var` are
  /// currently available / fully logged across the staging group.
  sim::Task<QueryResult> query(sim::Ctx ctx, std::string_view var) {
    std::string owned(var);
    return query_impl(ctx, std::move(owned));
  }

  /// Install a probe reporting whether a staging server is in degraded
  /// (failed, spares exhausted, never recovered) state. When set, requests
  /// to such a server fail fast — and retry-exhausted requests re-surface —
  /// as a distinct "staging degraded" error instead of a generic rpc
  /// timeout, so callers can tell unrecoverable loss from transient stalls.
  void set_degraded_probe(std::function<bool(int)> probe) {
    degraded_probe_ = std::move(probe);
  }

  /// Elastic membership: point the client at the GroupManager's endpoint.
  /// Non-negative enables elastic mode — placements route through a cached
  /// membership view, and a typed wrong_epoch reject triggers a
  /// MembershipQuery refresh plus re-placement of only the bounced pieces.
  void set_group_endpoint(net::EndpointId ep) { group_ep_ = ep; }
  [[nodiscard]] bool elastic() const { return group_ep_ >= 0; }

  /// The group's resilience policy, needed to reconstruct degraded reads
  /// from redundancy fragments (replica pick or RS decode).
  void set_resilience_policy(resilience::ResiliencePolicy policy) {
    policy_ = policy;
  }
  /// Enable fragment-reconstruction reads when a fragment owner is down or
  /// mid-resilver (requires a redundancy policy and elastic mode). A read
  /// whose losses exceed the policy's tolerance throws DataLossError.
  void set_degraded_reads(bool on) { degraded_reads_ = on; }

  [[nodiscard]] std::uint64_t degraded_read_count() const {
    return degraded_read_count_;
  }
  [[nodiscard]] std::uint64_t epoch_refreshes() const {
    return epoch_refreshes_;
  }

  [[nodiscard]] AppId app() const { return params_.app; }
  [[nodiscard]] const ClientParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t puts_issued() const { return puts_issued_; }
  [[nodiscard]] std::uint64_t gets_issued() const { return gets_issued_; }
  /// Transport-level counters (calls, retries, exhausted attempts).
  [[nodiscard]] const net::RpcStats& rpc_stats() const {
    return rpc_.stats();
  }

 private:
  [[nodiscard]] net::EndpointId server_endpoint(int server) const;
  [[nodiscard]] net::RetryPolicy put_policy() const {
    return {params_.put_timeout, params_.max_retries, params_.retry_backoff};
  }
  [[nodiscard]] net::RetryPolicy get_policy() const {
    return {params_.get_timeout, params_.max_retries, params_.retry_backoff};
  }

  sim::Task<PutResult> put_impl(sim::Ctx ctx, std::string var,
                                Version version, Box region);
  sim::Task<QueryResult> query_impl(sim::Ctx ctx, std::string var);
  sim::Task<GetResult> get_impl(sim::Ctx ctx, std::string var,
                                Version version, Box region);
  sim::Task<PutResponse> send_put(sim::Ctx ctx, int server, Chunk chunk);
  sim::Task<BatchPutResponse> send_batch(sim::Ctx ctx, int server,
                                         std::vector<Chunk> chunks);
  /// send_batch plus the backpressure protocol: chunks the server bounced
  /// with RetryLater are re-sent (alone) after an escalating backoff until
  /// every piece is admitted. Returns the merged per-chunk results in the
  /// original chunk order.
  sim::Task<BatchPutResponse> send_batch_admitted(sim::Ctx ctx, int server,
                                                  std::vector<Chunk> chunks,
                                                  PutResult* result);
  sim::Task<GetResponse> send_get(sim::Ctx ctx, int server,
                                  ObjectDesc desc);
  /// Throws the distinct degraded error when the probe reports `server`
  /// unrecovered; otherwise returns.
  void fail_if_degraded(int server) const;

  // Elastic-mode request paths: placement through the cached view, bounded
  // wrong_epoch refresh/re-place loops, and (for gets) the degraded
  // fragment-reconstruction fallback.
  sim::Task<PutResult> put_elastic(sim::Ctx ctx, std::string var,
                                   Version version, Box region);
  sim::Task<GetResult> get_elastic(sim::Ctx ctx, std::string var,
                                   Version version, Box region);
  /// One get attempt that converts the two recoverable outcomes into data
  /// instead of exceptions: kWrongEpoch (re-place) and kDegraded
  /// (reconstruct from fragments).
  struct PieceOutcome {
    enum class Status { kOk, kWrongEpoch, kDegraded };
    Status status = Status::kOk;
    GetResponse resp;
  };
  sim::Task<PieceOutcome> get_piece_guarded(sim::Ctx ctx, int server,
                                            ObjectDesc desc);
  /// Degraded read: broadcast FragmentFetch to the surviving peers of
  /// `owner`, reconstruct `piece`, and pay the decode cost.
  sim::Task<std::vector<Chunk>> degraded_fetch(sim::Ctx ctx, int owner,
                                               std::string var,
                                               Version version, Box piece);
  /// Fetch the current membership view from the GroupManager and re-snapshot
  /// the placement map.
  sim::Task<void> refresh_view(sim::Ctx ctx);
  void ensure_view();
  /// Broadcast targets for workflow events: the active membership view in
  /// elastic mode, every server otherwise.
  [[nodiscard]] std::vector<int> fanout_targets() const;

  cluster::Cluster* cluster_;
  const dht::SpatialIndex* index_;
  std::vector<cluster::VprocId> servers_;
  cluster::VprocId self_;
  ClientParams params_;
  net::Rpc rpc_;
  std::function<bool(int)> degraded_probe_;
  std::uint64_t puts_issued_ = 0;
  std::uint64_t gets_issued_ = 0;
  // Elastic membership state (inert unless set_group_endpoint is called).
  net::EndpointId group_ep_ = -1;
  dht::PlacementView view_;
  resilience::ResiliencePolicy policy_;
  bool degraded_reads_ = false;
  std::uint64_t degraded_read_count_ = 0;
  std::uint64_t epoch_refreshes_ = 0;
};

}  // namespace dstage::staging
