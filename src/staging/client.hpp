// Staging client: the application-side half of the Global User Interface
// (Table 1 of the paper). Geometric puts/gets are sharded across servers by
// the spatial DHT and issued in parallel; workflow_check()/workflow_restart()
// broadcast checkpoint and recovery events to every server. All traffic
// flows through the typed net::Rpc transport, which owns the
// timeout/retry/backoff loop.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "net/rpc.hpp"
#include "staging/types.hpp"

namespace dstage::staging {

struct ClientParams {
  AppId app = 0;
  /// Issue requests with data logging (the *_with_log interface). Plain
  /// DataSpaces semantics when false.
  bool logged = true;
  /// Nominal payload size per grid point.
  double bytes_per_point = 8.0;
  /// Physical payloads are nominal / mem_scale (floor 16 B) so paper-scale
  /// runs fit in RAM while virtual-time costs use nominal sizes.
  std::uint64_t mem_scale = 4096;
  /// Cost of (re)building RDMA connections to all servers on restart.
  sim::Duration reconnect_cost = sim::milliseconds(50);
  /// RPC retry timeouts; zero disables retries (the default — coupling
  /// reads legitimately block for long stretches). Enable when staging
  /// servers can fail so requests lost in a crash are re-sent to the
  /// recovered replacement.
  sim::Duration put_timeout{0};
  sim::Duration get_timeout{0};
  int max_retries = 6;
  /// Initial retry backoff, doubled per attempt (0 = immediate re-send,
  /// the historical behavior).
  sim::Duration retry_backoff{0};
  /// Coalesce same-destination chunk puts of one write into a single
  /// BatchPut message per server (see net::Config::batching).
  bool batching = false;
};

struct PutResult {
  sim::Duration response_time{};
  std::uint64_t nominal_bytes = 0;
  std::size_t pieces = 0;
  std::size_t suppressed = 0;  // pieces recognized as replay duplicates
  std::size_t messages = 0;    // fabric messages the write fanned out into
  /// Chunks a memory-governed server bounced with RetryLater and the client
  /// re-sent after backing off. The put only returns once every piece is
  /// admitted, so a partially admitted batch is never acked as durable.
  std::size_t backpressure_resends = 0;
};

/// Aggregated version metadata across the staging group.
struct QueryResult {
  /// Versions some server still holds in its base window (union).
  std::vector<Version> available;
  /// Versions every contacted server retains in its data log
  /// (intersection — i.e. fully replayable versions).
  std::vector<Version> fully_logged;
};

struct GetResult {
  sim::Duration response_time{};
  std::uint64_t nominal_bytes = 0;
  std::vector<Chunk> pieces;
  int wrong_version = 0;  // Fig.-2 anomaly: stale/newer version observed
  int corrupt = 0;
  bool any_from_log = false;
};

class StagingClient {
 public:
  StagingClient(cluster::Cluster& cluster, const dht::SpatialIndex& index,
                std::vector<cluster::VprocId> servers,
                cluster::VprocId self, ClientParams params);

  // put()/get() are plain shims over private coroutines. GCC 12 coroutines
  // double-destroy prvalue argument temporaries in co_await expressions, so
  // the shims take only trivially-destructible parameter types
  // (string_view, Box) and materialize the owned string inside the shim,
  // moving it (an xvalue, which is safe) into the coroutine.

  /// dspaces_put_with_log(): write (var, version, region); the payload is
  /// synthesized deterministically so consumers can verify it.
  sim::Task<PutResult> put(sim::Ctx ctx, std::string_view var,
                           Version version, Box region) {
    std::string owned(var);
    return put_impl(ctx, std::move(owned), version, region);
  }

  /// dspaces_get_with_log(): read (var, version, region); blocks until the
  /// data is available; verifies every returned piece.
  sim::Task<GetResult> get(sim::Ctx ctx, std::string_view var,
                           Version version, Box region) {
    std::string owned(var);
    return get_impl(ctx, std::move(owned), version, region);
  }

  /// workflow_check(): notify every staging server of a checkpoint event at
  /// timestep `version`. Returns the highest assigned W_Chk_ID. Pass
  /// `durable = false` for checkpoint levels a node failure can wipe
  /// (node-local, emergency): the marker still anchors replay, but must
  /// not advance the staging GC watermark.
  sim::Task<std::uint64_t> workflow_check(sim::Ctx ctx, Version version,
                                          bool durable = true);

  /// workflow_restart(): re-initialize the client after recovery (RDMA
  /// reconnect) and notify servers; returns the total number of logged
  /// events the servers will replay.
  sim::Task<std::size_t> workflow_restart(sim::Ctx ctx,
                                          Version restored_version);

  /// Coordinated-restart support: roll the staging state itself back.
  sim::Task<void> rollback_staging(sim::Ctx ctx, Version version);

  /// dspaces_query-style metadata lookup: which versions of `var` are
  /// currently available / fully logged across the staging group.
  sim::Task<QueryResult> query(sim::Ctx ctx, std::string_view var) {
    std::string owned(var);
    return query_impl(ctx, std::move(owned));
  }

  /// Install a probe reporting whether a staging server is in degraded
  /// (failed, spares exhausted, never recovered) state. When set, requests
  /// to such a server fail fast — and retry-exhausted requests re-surface —
  /// as a distinct "staging degraded" error instead of a generic rpc
  /// timeout, so callers can tell unrecoverable loss from transient stalls.
  void set_degraded_probe(std::function<bool(int)> probe) {
    degraded_probe_ = std::move(probe);
  }

  [[nodiscard]] AppId app() const { return params_.app; }
  [[nodiscard]] const ClientParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t puts_issued() const { return puts_issued_; }
  [[nodiscard]] std::uint64_t gets_issued() const { return gets_issued_; }
  /// Transport-level counters (calls, retries, exhausted attempts).
  [[nodiscard]] const net::RpcStats& rpc_stats() const {
    return rpc_.stats();
  }

 private:
  [[nodiscard]] net::EndpointId server_endpoint(int server) const;
  [[nodiscard]] net::RetryPolicy put_policy() const {
    return {params_.put_timeout, params_.max_retries, params_.retry_backoff};
  }
  [[nodiscard]] net::RetryPolicy get_policy() const {
    return {params_.get_timeout, params_.max_retries, params_.retry_backoff};
  }

  sim::Task<PutResult> put_impl(sim::Ctx ctx, std::string var,
                                Version version, Box region);
  sim::Task<QueryResult> query_impl(sim::Ctx ctx, std::string var);
  sim::Task<GetResult> get_impl(sim::Ctx ctx, std::string var,
                                Version version, Box region);
  sim::Task<PutResponse> send_put(sim::Ctx ctx, int server, Chunk chunk);
  sim::Task<BatchPutResponse> send_batch(sim::Ctx ctx, int server,
                                         std::vector<Chunk> chunks);
  /// send_batch plus the backpressure protocol: chunks the server bounced
  /// with RetryLater are re-sent (alone) after an escalating backoff until
  /// every piece is admitted. Returns the merged per-chunk results in the
  /// original chunk order.
  sim::Task<BatchPutResponse> send_batch_admitted(sim::Ctx ctx, int server,
                                                  std::vector<Chunk> chunks,
                                                  PutResult* result);
  sim::Task<GetResponse> send_get(sim::Ctx ctx, int server,
                                  ObjectDesc desc);
  /// Throws the distinct degraded error when the probe reports `server`
  /// unrecovered; otherwise returns.
  void fail_if_degraded(int server) const;

  cluster::Cluster* cluster_;
  const dht::SpatialIndex* index_;
  std::vector<cluster::VprocId> servers_;
  cluster::VprocId self_;
  ClientParams params_;
  net::Rpc rpc_;
  std::function<bool(int)> degraded_probe_;
  std::uint64_t puts_issued_ = 0;
  std::uint64_t gets_issued_ = 0;
};

}  // namespace dstage::staging
