// Versioned in-memory object store held by each staging server. The base
// store keeps a bounded window of recent versions per variable (DataSpaces
// retains the latest coupling data; historical versions belong to the data
// log). All byte accounting distinguishes nominal (paper-scale) from
// physical (scaled-down) sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "staging/types.hpp"
#include "util/stats.hpp"

namespace dstage::staging {

/// Why a version left the store (consistency-oracle probe classification).
enum class DropReason {
  kRotation,  // rotated out of the base store's version window
  kExplicit,  // dropped deliberately (GC reclaim)
  kRollback,  // discarded by a coordinated-restart rollback
  kSpill,     // evicted to the PFS spill gateway (still durable there)
  kResilver,  // handed off to the cell's new owner (durable there)
};

class ObjectStore {
 public:
  /// @param version_window how many most-recent versions of each variable
  ///        the base store retains (older ones rotate out on put).
  explicit ObjectStore(int version_window = 1);

  /// Insert a chunk; rotates versions older than the window out.
  void put(Chunk chunk);

  /// All stored pieces of (var, version) clipped to `region`.
  [[nodiscard]] std::vector<Chunk> get(const std::string& var,
                                       Version version,
                                       const Box& region) const;

  /// True when stored pieces of (var, version) cover `region` entirely
  /// (producer puts are disjoint, so coverage is volume-additive).
  [[nodiscard]] bool covers(const std::string& var, Version version,
                            const Box& region) const;

  [[nodiscard]] std::optional<Version> latest(const std::string& var) const;

  /// Stored versions of `var`, ascending.
  [[nodiscard]] std::vector<Version> versions_of(const std::string& var) const;
  /// All variable names with at least one stored version.
  [[nodiscard]] std::vector<std::string> variables() const;

  /// Coordinated-restart rollback: drop all versions > `version` of every
  /// variable. Returns the number of dropped (var, version) entries.
  std::size_t drop_versions_above(Version version);

  /// Tenant-scoped rollback: drop all versions > `version`, but only of
  /// variables for which `var_pred` returns true (tenant-namespace match).
  std::size_t drop_versions_above(
      Version version, const std::function<bool(const std::string&)>& var_pred);

  /// Explicitly drop one version of a variable (GC helper). The reason is
  /// reported to the drop probe: kExplicit for GC reclaim, kSpill when the
  /// memory governor evicted the version to the PFS.
  bool drop_version(const std::string& var, Version version,
                    DropReason reason = DropReason::kExplicit);

  /// All stored pieces of (var, version), unclipped (spill-eviction helper).
  [[nodiscard]] std::vector<Chunk> chunks_of(const std::string& var,
                                             Version version) const;

  /// Replace the payload representation of the piece at (var, version,
  /// region) in place — codec support (delta rebase / re-encode). Identity
  /// and nominal size are unchanged; footprint accounting moves to the new
  /// stored size. No probes fire: the held (var, version) set is unchanged.
  /// Returns false when no such piece exists.
  bool rewrite_payload(const std::string& var, Version version,
                       const Box& region,
                       std::shared_ptr<const std::vector<std::uint8_t>> data,
                       std::uint64_t stored_bytes);

  /// Drop the individual pieces of (var, version) for which `pred` returns
  /// true (resilver hand-off helper: a chunk leaves only once the new cell
  /// owner holds it). The drop probe fires — with `reason` — only when the
  /// version's last piece leaves. Returns the number of pieces dropped.
  std::size_t drop_pieces(const std::string& var, Version version,
                          const std::function<bool(const Chunk&)>& pred,
                          DropReason reason = DropReason::kResilver);

  [[nodiscard]] std::uint64_t nominal_bytes() const { return nominal_bytes_; }
  [[nodiscard]] std::uint64_t physical_bytes() const {
    return physical_bytes_;
  }
  [[nodiscard]] std::uint64_t peak_nominal_bytes() const {
    return static_cast<std::uint64_t>(watermark_.peak());
  }
  /// Per-tenant nominal footprint, keyed off each chunk's tenant prefix
  /// (tenant 0 for bare variable names). Drives the governor's weighted
  /// fair-share admission; zero-cost for single-tenant stores (one map
  /// entry for tenant 0).
  [[nodiscard]] std::uint64_t nominal_bytes(net::TenantId tenant) const;
  /// Peak of a tenant's nominal footprint over the store's lifetime.
  [[nodiscard]] std::uint64_t peak_nominal_bytes(net::TenantId tenant) const;
  /// Tenants with a nonzero lifetime footprint, ascending.
  [[nodiscard]] std::vector<net::TenantId> tenants() const;
  [[nodiscard]] std::size_t object_count() const;
  [[nodiscard]] int version_window() const { return version_window_; }

  /// Consistency-oracle instrumentation. The probes observe every applied
  /// chunk and every dropped (var, version) without touching virtual time
  /// or store behavior; null probes (the default) cost one branch.
  using PutProbe = std::function<void(const Chunk&)>;
  using DropProbe =
      std::function<void(const std::string& var, Version, DropReason)>;
  void set_probes(PutProbe on_put, DropProbe on_drop) {
    put_probe_ = std::move(on_put);
    drop_probe_ = std::move(on_drop);
  }

 private:
  void account(const Chunk& c, int sign);

  int version_window_;
  // var → version → pieces
  std::map<std::string, std::map<Version, std::vector<Chunk>>> store_;
  std::uint64_t nominal_bytes_ = 0;
  std::uint64_t physical_bytes_ = 0;
  Watermark watermark_;
  struct TenantUsage {
    std::uint64_t nominal = 0;
    std::uint64_t peak = 0;
  };
  std::map<net::TenantId, TenantUsage> tenant_usage_;
  PutProbe put_probe_;
  DropProbe drop_probe_;
};

}  // namespace dstage::staging
