// PFS spill gateway: the staging-side face of the parallel file system for
// memory-governor evictions. One gateway vproc serves the whole staging
// group; servers above their soft watermark push cold log versions here
// (SpillPut), fault them back in on replay (SpillFetch), and reclaim them
// when the GC watermark passes or a rollback discards them (SpillPrune).
// Every payload transfer pays the cluster::Pfs cost model, so spill traffic
// contends with checkpoint traffic on the same FIFO channel — exactly the
// coupling a real deployment has.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "net/rpc.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "staging/object_store.hpp"
#include "staging/types.hpp"

namespace dstage::staging {

struct SpillGatewayStats {
  std::uint64_t spill_puts = 0;     // chunks persisted
  std::uint64_t spill_bytes = 0;    // nominal bytes persisted
  std::uint64_t fetches = 0;        // payload fetches served
  std::uint64_t fetch_bytes = 0;    // nominal bytes read back
  std::uint64_t index_fetches = 0;  // descriptor-only fetches served
  std::uint64_t pruned_versions = 0;
};

class SpillGateway {
 public:
  SpillGateway(cluster::Cluster& cluster, cluster::VprocId vproc,
               cluster::Pfs& pfs);

  /// Spawn the request-processing loop.
  void start();

  [[nodiscard]] net::EndpointId endpoint() const;
  [[nodiscard]] const SpillGatewayStats& stats() const { return stats_; }

  /// Attach the run's observability bundle (null = off).
  void set_obs(obs::Observability* obs, std::string track) {
    obs_ = obs;
    obs_track_ = std::move(track);
  }

  /// Attach the always-on flight recorder (null = off).
  void set_recorder(obs::FlightRecorder* recorder, std::uint32_t track) {
    recorder_ = recorder;
    recorder_track_ = track;
  }

  // Oracle-facing holdings API (aggregated across owners), shaped like the
  // ObjectStore accessors so check::verify_holdings treats the gateway as
  // one more holder in the durability union.
  [[nodiscard]] std::vector<std::string> variables() const;
  [[nodiscard]] std::vector<Version> versions_of(const std::string& var) const;
  [[nodiscard]] std::vector<Chunk> get(const std::string& var, Version version,
                                       const Box& region) const;
  [[nodiscard]] std::uint64_t nominal_bytes() const;

 private:
  sim::Task<void> run();
  sim::Task<void> handle_put(SpillPut put);
  sim::Task<void> handle_fetch(SpillFetch fetch);
  void handle_prune(const SpillPrune& prune);

  [[nodiscard]] sim::Ctx ctx() { return cluster_->ctx_for(vproc_); }

  cluster::Cluster* cluster_;
  cluster::VprocId vproc_;
  cluster::Pfs* pfs_;
  net::Rpc rpc_;
  /// Spill "files" per owning server. Owners spill disjoint key ranges in
  /// normal operation, but keeping them separate makes prune exact and
  /// lets a replacement server rebuild precisely its own spill index.
  std::map<int, ObjectStore> per_owner_;
  SpillGatewayStats stats_;
  obs::Observability* obs_ = nullptr;
  std::string obs_track_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint32_t recorder_track_ = 0;
};

}  // namespace dstage::staging
