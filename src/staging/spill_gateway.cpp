#include "staging/spill_gateway.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <variant>

#include "sim/spawn.hpp"
#include "staging/tenant.hpp"
#include "wlog/codec.hpp"

namespace dstage::staging {

SpillGateway::SpillGateway(cluster::Cluster& cluster, cluster::VprocId vproc,
                           cluster::Pfs& pfs)
    : cluster_(&cluster),
      vproc_(vproc),
      pfs_(&pfs),
      rpc_(cluster.fabric(), cluster.vproc(vproc).endpoint) {}

net::EndpointId SpillGateway::endpoint() const {
  return cluster_->vproc(vproc_).endpoint;
}

void SpillGateway::start() { sim::spawn(cluster_->engine(), run()); }

sim::Task<void> SpillGateway::run() {
  auto& ep = cluster_->fabric().endpoint(endpoint());
  sim::Ctx c = ctx();
  for (;;) {
    net::Packet packet = co_await ep.recv(c.tok);
    net::Message msg = std::move(packet.payload);
    if (auto* put = std::get_if<SpillPut>(&msg)) {
      co_await handle_put(std::move(*put));
    } else if (auto* fetch = std::get_if<SpillFetch>(&msg)) {
      co_await handle_fetch(std::move(*fetch));
    } else if (auto* prune = std::get_if<SpillPrune>(&msg)) {
      handle_prune(*prune);
    }
    // Anything else is misrouted: the gateway speaks only the spill
    // vocabulary, and dropping keeps it inert for non-governed runs.
  }
}

sim::Task<void> SpillGateway::handle_put(SpillPut put) {
  sim::Ctx c = ctx();
  // Encoded log blocks spill at their encoded size: the PFS write (and the
  // spill accounting) should see the codec's savings, not the raw size.
  const std::uint64_t bytes = put.chunk.accounted_bytes();
  obs::SpanId span = 0;
  if (obs_ != nullptr)
    span = obs_->tracer().begin(obs_track_, "spill", obs::Phase::kSpill,
                                cluster_->engine().now());
  if (recorder_ != nullptr)
    recorder_->record(recorder_track_, cluster_->engine().now(),
                      obs::FrKind::kSpillOut, put.chunk.var,
                      static_cast<std::int64_t>(put.chunk.version),
                      static_cast<std::int64_t>(bytes));
  // Persisting the evicted chunk is a real PFS write: it queues on the
  // same FIFO channel as checkpoint traffic.
  co_await pfs_->write(c, bytes);
  auto [it, inserted] = per_owner_.try_emplace(put.owner, 1 << 30);
  it->second.put(std::move(put.chunk));
  ++stats_.spill_puts;
  stats_.spill_bytes += bytes;
  if (obs_ != nullptr) {
    obs_->metrics().counter("spill.chunks", obs_track_).inc();
    obs_->metrics().counter("spill.bytes", obs_track_).inc(bytes);
    obs_->tracer().end(span, cluster_->engine().now());
  }
  co_await rpc_.fulfill(c, put.reply_to, std::move(put.reply), SpillAck{true});
}

sim::Task<void> SpillGateway::handle_fetch(SpillFetch fetch) {
  sim::Ctx c = ctx();
  SpillFetchResponse resp;
  auto it = per_owner_.find(fetch.owner);
  if (fetch.index_only) {
    // Descriptor-only inventory: what does the gateway hold on the owner's
    // behalf? (Replacement servers rebuild their spill index from this.)
    if (it != per_owner_.end()) {
      for (const std::string& var : it->second.variables()) {
        for (Version v : it->second.versions_of(var)) {
          for (Chunk chunk : it->second.chunks_of(var, v)) {
            chunk.data.reset();  // index entries carry no payload
            resp.chunks.push_back(std::move(chunk));
          }
        }
      }
    }
    ++stats_.index_fetches;
  } else {
    std::uint64_t bytes = 0;
    if (it != per_owner_.end()) {
      resp.chunks = it->second.chunks_of(fetch.var, fetch.version);
      for (const Chunk& chunk : resp.chunks) bytes += chunk.accounted_bytes();
    }
    obs::SpanId span = 0;
    if (obs_ != nullptr)
      span = obs_->tracer().begin(obs_track_, "fetch-back", obs::Phase::kSpill,
                                  cluster_->engine().now());
    if (recorder_ != nullptr)
      recorder_->record(recorder_track_, cluster_->engine().now(),
                        obs::FrKind::kSpillFetch, fetch.var,
                        static_cast<std::int64_t>(fetch.version),
                        static_cast<std::int64_t>(bytes));
    // Reading the spill file back is a real PFS read. The file stays put —
    // reclamation is the owner's explicit SpillPrune, mirroring how GC (not
    // reads) retires log versions.
    if (bytes > 0) co_await pfs_->read(c, bytes);
    ++stats_.fetches;
    stats_.fetch_bytes += bytes;
    if (obs_ != nullptr) {
      obs_->metrics().counter("spill.fetches", obs_track_).inc();
      obs_->metrics().counter("spill.fetch_bytes", obs_track_).inc(bytes);
      obs_->tracer().end(span, cluster_->engine().now());
    }
  }
  co_await rpc_.fulfill(c, fetch.reply_to, std::move(fetch.reply),
                        std::move(resp));
}

void SpillGateway::handle_prune(const SpillPrune& prune) {
  auto it = per_owner_.find(prune.owner);
  if (it == per_owner_.end()) return;
  ObjectStore& store = it->second;
  std::size_t dropped = 0;
  if (prune.above) {
    // Rollback: discard spilled versions newer than the snapshot (empty
    // var = every variable, matching the staging rollback semantics). A
    // tenant-scoped rollback (tenant >= 0) must leave co-resident tenants'
    // spill files untouched — their durability does not depend on another
    // workflow's restart.
    dropped = store.drop_versions_above(
        prune.upto, [&](const std::string& var) {
          return prune.tenant < 0 || tenant_of(var) == prune.tenant;
        });
  } else {
    for (Version v : store.versions_of(prune.var)) {
      if (v > prune.upto) break;
      if (store.drop_version(prune.var, v)) ++dropped;
    }
  }
  stats_.pruned_versions += dropped;
  if (obs_ != nullptr && dropped > 0)
    obs_->metrics().counter("spill.pruned_versions", obs_track_).inc(dropped);
}

std::vector<std::string> SpillGateway::variables() const {
  std::vector<std::string> out;
  for (const auto& [owner, store] : per_owner_) {
    for (std::string& var : store.variables()) {
      if (std::find(out.begin(), out.end(), var) == out.end())
        out.push_back(std::move(var));
    }
  }
  return out;
}

std::vector<Version> SpillGateway::versions_of(const std::string& var) const {
  std::vector<Version> out;
  for (const auto& [owner, store] : per_owner_) {
    for (Version v : store.versions_of(var)) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Chunk> SpillGateway::get(const std::string& var, Version version,
                                     const Box& region) const {
  std::vector<Chunk> out;
  for (const auto& [owner, store] : per_owner_) {
    for (Chunk& chunk : store.get(var, version, region)) {
      if (chunk.data && wlog::codec::is_encoded(*chunk.data)) {
        // Spilled log blocks are exported self-contained (full, never
        // delta), so they decode without a base. The oracle's durability
        // union compares raw bytes; never hand it an encoded block.
        wlog::codec::DecodeResult decoded = wlog::codec::decode(*chunk.data);
        if (!decoded.ok()) {
          throw std::runtime_error(
              std::string("spill gateway: decode failed (") +
              wlog::codec::codec_error_name(*decoded.error) + ") for " +
              chunk.var + " v" + std::to_string(chunk.version));
        }
        chunk.data = std::make_shared<std::vector<std::uint8_t>>(
            std::move(decoded.raw));
        chunk.stored_bytes = 0;
      }
      out.push_back(std::move(chunk));
    }
  }
  return out;
}

std::uint64_t SpillGateway::nominal_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [owner, store] : per_owner_) total += store.nominal_bytes();
  return total;
}

}  // namespace dstage::staging
