#include "staging/tenant.hpp"

#include <cstdio>
#include <cstdlib>

namespace dstage::staging {

std::string tenant_key(net::TenantId t, const std::string& var) {
  if (t <= kDefaultTenant) return var;
  char prefix[16];
  std::snprintf(prefix, sizeof prefix, "t%d%c", t, kTenantSep);
  return prefix + var;
}

net::TenantId tenant_of(const std::string& key) {
  const std::size_t sep = key.find(kTenantSep);
  if (sep == std::string::npos || sep < 2 || key[0] != 't') {
    return kDefaultTenant;
  }
  return static_cast<net::TenantId>(
      std::strtol(key.c_str() + 1, nullptr, 10));
}

std::string base_var(const std::string& key) {
  const std::size_t sep = key.find(kTenantSep);
  if (sep == std::string::npos || sep < 2 || key[0] != 't') return key;
  return key.substr(sep + 1);
}

}  // namespace dstage::staging
