#include "staging/server.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "resilience/reed_solomon.hpp"
#include "sim/spawn.hpp"

namespace dstage::staging {

StagingServer::StagingServer(cluster::Cluster& cluster,
                             cluster::VprocId vproc, ServerParams params)
    : cluster_(&cluster),
      vproc_(vproc),
      params_(params),
      store_(params.version_window) {}

net::EndpointId StagingServer::endpoint() const {
  return cluster_->vproc(vproc_).endpoint;
}

sim::Task<void> StagingServer::respond(net::EndpointId dst,
                                       std::uint64_t bytes,
                                       std::function<void()> fulfil) {
  if (bytes <= 256) {
    // Small acks are RDMA completion notifications: control path only.
    co_await cluster_->fabric().notify(ctx(), endpoint(), dst,
                                       std::move(fulfil));
  } else {
    co_await cluster_->fabric().transmit(ctx(), endpoint(), dst, bytes,
                                         std::move(fulfil));
  }
}

sim::Duration StagingServer::copy_time(std::uint64_t bytes) const {
  return sim::from_seconds(static_cast<double>(bytes) / params_.mem_bw);
}

MemoryReport StagingServer::memory() const {
  MemoryReport r;
  r.store_bytes = store_.nominal_bytes();
  r.log_payload_bytes = dlog_.nominal_bytes();
  for (const auto& [app, q] : queues_) r.log_metadata_bytes += q.metadata_bytes();
  r.redundancy_bytes = fragment_bytes_;
  return r;
}

void StagingServer::sample_memory() {
  const sim::TimePoint now = cluster_->engine().now();
  byte_seconds_ +=
      static_cast<double>(last_total_) * (now - last_sample_).seconds();
  last_sample_ = now;
  last_total_ = memory().total();
  peak_total_ = std::max(peak_total_, last_total_);
}

double StagingServer::mean_total_bytes() const {
  const double elapsed = last_sample_.seconds();
  return elapsed > 0 ? byte_seconds_ / elapsed
                     : static_cast<double>(last_total_);
}

void StagingServer::set_peers(int self_index,
                              std::vector<net::EndpointId> endpoints) {
  self_index_ = self_index;
  peer_endpoints_ = std::move(endpoints);
}

void StagingServer::start() {
  sim::spawn(cluster_->engine(), run());
}

void StagingServer::start_with_recovery() {
  sim::spawn(cluster_->engine(), run_after_recovery());
}

sim::Task<void> StagingServer::run_after_recovery() {
  co_await rebuild_from_peers();
  co_await run();
}

sim::Task<void> StagingServer::run() {
  auto& ep = cluster_->fabric().endpoint(endpoint());
  sim::Ctx c = ctx();
  for (;;) {
    net::Packet packet = co_await ep.recv(c.tok);
    auto* request = std::any_cast<Request>(&packet.payload);
    if (request == nullptr) continue;  // foreign packet: ignore
    co_await handle(std::move(*request));
    sample_memory();
  }
}

sim::Task<void> StagingServer::handle(Request request) {
  static constexpr const char* kRequestName[] = {
      "put",           "get",           "checkpoint",  "recovery",
      "rollback",      "fragment_put",  "fragment_prune",
      "queue_backup",  "recovery_pull", "query"};
  if (obs_ != nullptr) {
    const std::size_t idx = std::min<std::size_t>(request.index(), 9);
    current_request_span_ =
        obs_->tracer().begin(obs_track_, kRequestName[idx], obs::Phase::kOther,
                             cluster_->engine().now());
    obs_->metrics().counter("staging.requests", obs_track_).inc();
  }
  switch (request.index()) {
    case 0:
      co_await handle_put(std::get<0>(std::move(request)));
      break;
    case 1:
      co_await handle_get(std::get<1>(std::move(request)));
      break;
    case 2:
      co_await handle_checkpoint(std::get<2>(std::move(request)));
      break;
    case 3:
      co_await handle_recovery(std::get<3>(std::move(request)));
      break;
    case 4:
      co_await handle_rollback(std::get<4>(std::move(request)));
      break;
    case 5:
      handle_fragment_put(std::get<5>(std::move(request)));
      break;
    case 6:
      handle_fragment_prune(std::get<6>(request));
      break;
    case 7:
      handle_queue_backup(std::get<7>(std::move(request)));
      break;
    case 8:
      co_await handle_recovery_pull(std::get<8>(std::move(request)));
      break;
    default:
      co_await handle_query(std::get<9>(std::move(request)));
      break;
  }
  if (obs_ != nullptr) {
    obs_->tracer().end(current_request_span_, cluster_->engine().now());
    current_request_span_ = 0;
  }
}

sim::Task<void> StagingServer::handle_put(PutRequest req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.puts;

  PutResponse resp;
  bool apply = true;

  if (params_.logging && req.logged) {
    auto& q = queues_[req.app];
    if (q.replaying()) {
      const wlog::LogEvent* expected = q.expected();
      if (expected != nullptr && expected->kind == wlog::EventKind::kPut &&
          expected->var == req.chunk.var &&
          expected->version == req.chunk.version &&
          expected->region == req.chunk.region) {
        // Redundant write from a rolled-back producer: the payload is
        // already staged/logged, so the write request is omitted.
        q.advance();
        apply = false;
        resp.suppressed = true;
        ++stats_.puts_suppressed;
      } else {
        ++stats_.replay_mismatches;  // diverged replay: apply as fresh
      }
    }
    if (apply) {
      // Client retries are idempotent: an identical chunk already staged is
      // acknowledged without re-applying or re-logging.
      auto existing =
          store_.get(req.chunk.var, req.chunk.version, req.chunk.region);
      if (existing.size() == 1 && existing[0].region == req.chunk.region &&
          existing[0].content_key == req.chunk.content_key) {
        apply = false;
        resp.applied = true;
      }
    }
    if (apply) {
      co_await c.delay(params_.log_event_overhead);
      wlog::LogEvent event{wlog::EventKind::kPut, req.app,
                           req.chunk.version, req.chunk.var,
                           req.chunk.region, req.chunk.nominal_bytes, 0};
      q.record(event);
      sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
    }
  }

  if (apply) {
    co_await c.delay(copy_time(req.chunk.nominal_bytes));
    if (params_.logging && req.logged) {
      // Log append: the data log retains the payload for replay (buffer
      // shared with the base store; the cost is version/index bookkeeping).
      co_await c.delay(sim::from_seconds(
          copy_time(req.chunk.nominal_bytes).seconds() *
          params_.log_append_fraction));
      dlog_.add(req.chunk);
    }
    const std::string var = req.chunk.var;
    const Version version = req.chunk.version;
    if (params_.policy.kind != resilience::Redundancy::kNone) {
      co_await c.delay(params_.policy.encode_time(req.chunk.nominal_bytes));
      const bool was_logged = params_.logging && req.logged;
      sim::spawn(cluster_->engine(),
                 push_fragments(req.chunk, was_logged));
    }
    store_.put(std::move(req.chunk));
    resp.applied = true;
    poke_pending(var, version);
  }

  // Named deliver closure: GCC 12 double-destroys non-trivial prvalue
  // temporaries inside co_await full-expressions.
  std::function<void()> deliver = [reply = req.reply, resp] {
    reply->fulfill(resp);
  };
  co_await respond(req.reply_to, 64, std::move(deliver));
}

sim::Task<void> StagingServer::handle_get(GetRequest req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.gets;

  if (params_.logging && req.logged) {
    auto& q = queues_[req.app];
    if (q.replaying()) {
      const wlog::LogEvent* expected = q.expected();
      // The version is part of the match, exactly as for puts: after a
      // fallback restart from a checkpoint older than the replay anchor
      // (node failure wiping a node-local checkpoint), the app re-reads
      // versions from before the script — matching on var/region alone
      // would serve the script's newer version for those reads.
      if (expected != nullptr && expected->kind == wlog::EventKind::kGet &&
          expected->var == req.desc.var &&
          expected->version == req.desc.version &&
          expected->region == req.desc.region) {
        // Serve the version observed during the initial execution.
        const Version logged_version = expected->version;
        q.advance();
        std::vector<Chunk> pieces =
            dlog_.get(req.desc.var, logged_version, req.desc.region);
        if (pieces.empty() ||
            !dlog_.covers(req.desc.var, logged_version, req.desc.region)) {
          pieces = store_.get(req.desc.var, logged_version, req.desc.region);
        }
        ++stats_.gets_from_log;
        sim::spawn(cluster_->engine(),
                   respond_get(std::move(req), std::move(pieces), true));
        co_return;
      }
      ++stats_.replay_mismatches;  // fall through as a fresh request
    }
  }

  if (store_.covers(req.desc.var, req.desc.version, req.desc.region)) {
    if (params_.logging && req.logged) {
      co_await c.delay(params_.log_event_overhead);
      wlog::LogEvent event{wlog::EventKind::kGet, req.app, req.desc.version,
                           req.desc.var, req.desc.region, 0, 0};
      queues_[req.app].record(event);
      sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
    }
    auto pieces = store_.get(req.desc.var, req.desc.version, req.desc.region);
    sim::spawn(cluster_->engine(),
               respond_get(std::move(req), std::move(pieces), false));
    co_return;
  }
  if (params_.logging && req.logged &&
      dlog_.covers(req.desc.var, req.desc.version, req.desc.region)) {
    // Version already rotated out of the base window but still retained in
    // the log (slow consumer).
    co_await c.delay(params_.log_event_overhead);
    wlog::LogEvent levent{wlog::EventKind::kGet, req.app, req.desc.version,
                          req.desc.var, req.desc.region, 0, 0};
    queues_[req.app].record(levent);
    sim::spawn(cluster_->engine(), mirror_event(std::move(levent)));
    auto pieces = dlog_.get(req.desc.var, req.desc.version, req.desc.region);
    ++stats_.gets_from_log;
    sim::spawn(cluster_->engine(),
               respond_get(std::move(req), std::move(pieces), true));
    co_return;
  }

  // Without logging, a request for an already-superseded version is
  // answered with the newest available data — exactly the Fig.-2 case-1
  // anomaly that individual checkpoint/restart exhibits and the data log
  // exists to prevent. (Consumers detect it via content keys.)
  if (!(params_.logging && req.logged)) {
    const auto latest = store_.latest(req.desc.var);
    if (latest && *latest > req.desc.version &&
        store_.covers(req.desc.var, *latest, req.desc.region)) {
      auto pieces = store_.get(req.desc.var, *latest, req.desc.region);
      sim::spawn(cluster_->engine(),
                 respond_get(std::move(req), std::move(pieces), false));
      co_return;
    }
  }

  // Data not yet produced: park the request until a covering put arrives
  // (DataSpaces-style blocking get).
  ++stats_.gets_pending;
  pending_.push_back(std::move(req));
}

// Runs detached from the request loop: the gather copy and the NIC DMA of
// the response overlap with subsequent request processing, as with real
// RDMA; concurrent responses still serialize on the node's NIC resource.
sim::Task<void> StagingServer::respond_get(GetRequest req,
                                           std::vector<Chunk> pieces,
                                           bool from_log) {
  GetResponse resp;
  resp.found = !pieces.empty();
  resp.from_log = from_log;
  std::uint64_t bytes = 128;
  for (const Chunk& piece : pieces) bytes += piece.nominal_bytes;
  resp.pieces = std::move(pieces);
  co_await ctx().delay(copy_time(bytes));  // gather/pack on the server
  std::function<void()> deliver = [reply = req.reply,
                                   resp = std::move(resp)]() mutable {
    reply->fulfill(std::move(resp));
  };
  co_await respond(req.reply_to, bytes, std::move(deliver));
}

void StagingServer::poke_pending(const std::string& var, Version version) {
  for (std::size_t i = 0; i < pending_.size();) {
    GetRequest& req = pending_[i];
    // Exact-version match always serves; a non-logged request parked on an
    // older version is unblocked by any newer covering write (and will
    // observe the wrong-version anomaly).
    const bool exact = req.desc.version == version;
    const bool superseded = !(params_.logging && req.logged) &&
                            req.desc.version < version;
    if (req.desc.var == var && (exact || superseded) &&
        store_.covers(var, version, req.desc.region)) {
      GetRequest ready = std::move(req);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      if (params_.logging && ready.logged) {
        wlog::LogEvent event{wlog::EventKind::kGet, ready.app,
                             ready.desc.version, ready.desc.var,
                             ready.desc.region, 0, 0};
        queues_[ready.app].record(event);
        sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
      }
      // `version` (not desc.version) so superseded requests observe the
      // newer data.
      auto pieces = store_.get(ready.desc.var, version, ready.desc.region);
      sim::spawn(cluster_->engine(),
                 respond_get(std::move(ready), std::move(pieces), false));
    } else {
      ++i;
    }
  }
}

sim::Task<void> StagingServer::handle_checkpoint(CheckpointEvent ev) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.checkpoints;

  // Watermark diffing for the observability hooks: snapshot before the
  // checkpoint is applied, compare after. Skipped entirely when no hook is
  // installed, so uninstrumented runs pay nothing.
  std::vector<std::pair<std::string, Version>> pre_watermarks;
  if (obs_hooks_.gc_watermark_advance && ev.durable) {
    for (const std::string& var : gc_.variables()) {
      pre_watermarks.emplace_back(var, gc_.watermark(var));
    }
  }

  CheckpointAck ack;
  ack.chk_id = next_chk_id_++;
  // Only durable checkpoints move the watermark: a non-durable level
  // (node-local, emergency) is wiped by a node failure, whose recovery
  // falls back to the last durable checkpoint and must still be able to
  // replay every logged version above it.
  if (ev.durable) gc_.on_checkpoint(ev.app, ev.version);

  for (const auto& [var, from] : pre_watermarks) {
    const Version to = gc_.watermark(var);
    if (to > from) obs_hooks_.gc_watermark_advance(var, from, to);
  }

  if (params_.logging) {
    auto& q = queues_[ev.app];
    wlog::LogEvent marker{wlog::EventKind::kCheckpoint, ev.app, ev.version,
                          {}, Box{}, 0, ack.chk_id};
    q.record(marker);
    sim::spawn(cluster_->engine(), mirror_event(std::move(marker)));
    // End of a checkpoint cycle: clean the event queue. The marker is
    // recorded for every level — it anchors the replay script for a
    // restart from this checkpoint — but payload reclamation below only
    // runs when the watermark may actually have advanced.
    const std::size_t events_dropped = q.truncate_before_last_checkpoint();
    if (obs_hooks_.log_truncate) {
      obs_hooks_.log_truncate(ev.app, ev.version, events_dropped);
    }
  }
  if (params_.logging && ev.durable) {
    obs::SpanId sweep_span = 0;
    if (obs_ != nullptr) {
      sweep_span = obs_->tracer().begin(
          obs_track_, "gc sweep", obs::Phase::kOther,
          cluster_->engine().now(), current_request_span_);
    }
    const gc::SweepResult sweep = gc_.sweep(dlog_);
    stats_.gc_versions_dropped += sweep.versions_dropped;
    stats_.gc_nominal_freed += sweep.nominal_freed;
    co_await c.delay(params_.gc_cost_per_entry *
                     static_cast<std::int64_t>(sweep.entries_scanned + 1));
    if (obs_ != nullptr) {
      obs_->tracer().end(sweep_span, cluster_->engine().now());
      obs_->metrics()
          .counter("gc.versions_dropped", obs_track_)
          .inc(sweep.versions_dropped);
      obs_->metrics()
          .counter("gc.nominal_freed_bytes", obs_track_)
          .inc(sweep.nominal_freed);
    }
    if (obs_hooks_.gc_sweep) {
      obs_hooks_.gc_sweep(ev.version, sweep.versions_dropped,
                          sweep.nominal_freed, sweep.entries_scanned);
    }
    // Peers can reclaim fragments that neither the log's retention nor the
    // base store's window still needs.
    if (params_.policy.kind != resilience::Redundancy::kNone &&
        peer_endpoints_.size() > 1) {
      for (const std::string& var : store_.variables()) {
        const auto store_versions = store_.versions_of(var);
        const Version oldest_store =
            store_versions.empty() ? 0 : store_versions.front();
        const auto log_versions = dlog_.versions_of(var);
        const Version oldest_log =
            log_versions.empty() ? oldest_store : log_versions.front();
        const Version keep_from = std::min(oldest_store, oldest_log);
        if (keep_from == 0) continue;
        for (std::size_t p = 0; p < peer_endpoints_.size(); ++p) {
          if (static_cast<int>(p) == self_index_) continue;
          sim::Ctx sc = ctx();
          std::any payload =
              Request{FragmentPrune{self_index_, var, keep_from - 1}};
          sim::spawn(cluster_->engine(),
                     cluster_->fabric().send(sc, endpoint(),
                                             peer_endpoints_[p],
                                             std::move(payload), 64));
        }
      }
    }
  }

  std::function<void()> deliver = [reply = ev.reply, ack] {
    reply->fulfill(ack);
  };
  co_await respond(ev.reply_to, 64, std::move(deliver));
}

sim::Task<void> StagingServer::handle_recovery(RecoveryEvent ev) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.recoveries;

  RecoveryAck ack;
  if (params_.logging) {
    auto& q = queues_[ev.app];
    q.record(wlog::LogEvent{wlog::EventKind::kRecovery, ev.app,
                            ev.restored_version, {}, Box{}, 0, 0});
    ack.replay_events = q.begin_replay();
  }
  std::function<void()> deliver = [reply = ev.reply, ack] {
    reply->fulfill(ack);
  };
  co_await respond(ev.reply_to, 64, std::move(deliver));
}

sim::Task<void> StagingServer::handle_rollback(RollbackRequest req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);

  RollbackAck ack;
  ack.versions_dropped = store_.drop_versions_above(req.version);
  dlog_.drop_above(req.version);
  queues_.clear();
  // Parked gets for discarded versions belong to rolled-back clients.
  std::erase_if(pending_, [&](const GetRequest& g) {
    return g.desc.version > req.version;
  });

  std::function<void()> deliver = [reply = req.reply, ack] {
    reply->fulfill(ack);
  };
  co_await respond(req.reply_to, 64, std::move(deliver));
}

void StagingServer::handle_fragment_put(FragmentPut frag) {
  fragment_bytes_ += frag.nominal_bytes;
  ++stats_.fragments_held;
  fragments_[frag.owner].push_back(std::move(frag));
}

void StagingServer::handle_fragment_prune(const FragmentPrune& prune) {
  auto it = fragments_.find(prune.owner);
  if (it == fragments_.end()) return;
  std::erase_if(it->second, [&](const FragmentPut& f) {
    const bool drop = f.var == prune.var && f.version <= prune.upto;
    if (drop) fragment_bytes_ -= f.nominal_bytes;
    return drop;
  });
}

void StagingServer::handle_queue_backup(QueueBackup backup) {
  ++stats_.mirrored_events;
  auto& q = mirrors_[backup.owner][backup.app];
  q.record(wlog::LogEvent{static_cast<wlog::EventKind>(backup.kind),
                          backup.app, backup.version, std::move(backup.var),
                          backup.region, backup.nominal_bytes,
                          backup.chk_id});
  if (static_cast<wlog::EventKind>(backup.kind) ==
      wlog::EventKind::kCheckpoint) {
    q.truncate_before_last_checkpoint();
  }
}

sim::Task<void> StagingServer::handle_recovery_pull(RecoveryPull pull) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  RecoveryPullResponse resp;
  if (auto it = fragments_.find(pull.owner); it != fragments_.end()) {
    resp.fragments = it->second;
  }
  if (auto it = mirrors_.find(pull.owner); it != mirrors_.end()) {
    for (const auto& [app, queue] : it->second) {
      for (const wlog::LogEvent& e : queue.events()) {
        resp.events.push_back(QueueBackup{pull.owner, app,
                                          static_cast<int>(e.kind),
                                          e.version, e.var, e.region,
                                          e.nominal_bytes, e.chk_id});
      }
    }
  }
  for (const FragmentPut& f : resp.fragments)
    resp.transport_bytes += f.nominal_bytes;
  resp.transport_bytes += 96 * resp.events.size() + 128;
  const std::uint64_t bytes = resp.transport_bytes;
  co_await c.delay(copy_time(bytes));
  std::function<void()> deliver = [reply = pull.reply,
                                   resp = std::move(resp)]() mutable {
    reply->fulfill(std::move(resp));
  };
  co_await respond(pull.reply_to, bytes, std::move(deliver));
}

sim::Task<void> StagingServer::handle_query(QueryRequest query) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  QueryResponse resp;
  resp.store_versions = store_.versions_of(query.var);
  resp.logged_versions = dlog_.versions_of(query.var);
  const std::uint64_t bytes =
      64 + 4 * (resp.store_versions.size() + resp.logged_versions.size());
  std::function<void()> deliver = [reply = query.reply,
                                   resp = std::move(resp)]() mutable {
    reply->fulfill(std::move(resp));
  };
  co_await respond(query.reply_to, bytes, std::move(deliver));
}

sim::Task<void> StagingServer::mirror_event(wlog::LogEvent event) {
  if (peer_endpoints_.size() < 2) co_return;
  const auto successor = static_cast<std::size_t>(
      (self_index_ + 1) % static_cast<int>(peer_endpoints_.size()));
  QueueBackup backup{self_index_,       event.app,
                     static_cast<int>(event.kind), event.version,
                     std::move(event.var),         event.region,
                     event.nominal_bytes,          event.chk_id};
  sim::Ctx c = ctx();
  std::any payload = Request{std::move(backup)};
  co_await cluster_->fabric().send(c, endpoint(), peer_endpoints_[successor],
                                   std::move(payload), 96);
}

sim::Task<void> StagingServer::push_fragments(Chunk chunk, bool logged) {
  const int total_servers = static_cast<int>(peer_endpoints_.size());
  if (total_servers < 2) co_return;
  sim::Ctx c = ctx();
  ++stats_.fragments_pushed;

  auto push_one = [&](int frag_index, std::uint64_t nominal,
                      std::shared_ptr<const std::vector<std::uint8_t>> data)
      -> sim::Task<void> {
    // Round-robin over the *other* servers only: a fragment stored on its
    // own owner would die with it.
    const auto peer = static_cast<std::size_t>(
        (self_index_ + 1 + (frag_index - 1) % (total_servers - 1)) %
        total_servers);
    FragmentPut frag{self_index_,       chunk.var,
                     chunk.version,     chunk.region,
                     frag_index,        nominal,
                     chunk.data ? chunk.data->size() : 0,
                     chunk.content_key, logged,
                     std::move(data)};
    std::any payload = Request{std::move(frag)};
    return cluster_->fabric().send(c, endpoint(), peer_endpoints_[peer],
                                   std::move(payload), nominal);
  };

  if (params_.policy.kind == resilience::Redundancy::kReplication) {
    // Full copies on the next replicas-1 peers.
    for (int j = 1; j < params_.policy.replicas && j < total_servers; ++j) {
      co_await push_one(j, chunk.nominal_bytes, chunk.data);
    }
    co_return;
  }

  // Erasure coding: the owner keeps the full payload (fast local reads) and
  // spreads all k+m shards of it across the following peers, so the loss of
  // this server leaves k-1+m >= k survivors for reconstruction.
  const resilience::ReedSolomon rs(params_.policy.rs_k, params_.policy.rs_m);
  std::vector<resilience::Shard> shards;
  if (chunk.data) {
    shards = rs.encode(*chunk.data);
  }
  const std::uint64_t shard_nominal =
      chunk.nominal_bytes / static_cast<std::uint64_t>(params_.policy.rs_k);
  for (int j = 1; j < rs.total_shards(); ++j) {
    std::shared_ptr<const std::vector<std::uint8_t>> data;
    if (!shards.empty()) {
      data = std::make_shared<std::vector<std::uint8_t>>(
          std::move(shards[static_cast<std::size_t>(j)]));
    }
    co_await push_one(j, shard_nominal, std::move(data));
  }
}

sim::Task<void> StagingServer::rebuild_from_peers() {
  sim::Ctx c = ctx();
  const int total_servers = static_cast<int>(peer_endpoints_.size());
  if (total_servers < 2 ||
      params_.policy.kind == resilience::Redundancy::kNone) {
    co_return;  // nothing recoverable
  }

  // Pull everything our peers hold on our behalf.
  std::vector<sim::Task<RecoveryPullResponse>> pulls;
  for (int p = 0; p < total_servers; ++p) {
    if (p == self_index_) continue;
    pulls.push_back([](StagingServer* self, sim::Ctx ctx2,
                       net::EndpointId peer)
                        -> sim::Task<RecoveryPullResponse> {
      auto reply = net::make_reply<RecoveryPullResponse>(*ctx2.eng);
      RecoveryPull pull{self->self_index_, self->endpoint(), reply};
      std::any payload = Request{std::move(pull)};
      co_await self->cluster_->fabric().send(ctx2, self->endpoint(), peer,
                                             std::move(payload), 64);
      co_return co_await reply->take(ctx2);
    }(this, c, peer_endpoints_[static_cast<std::size_t>(p)]));
  }
  auto responses = co_await sim::when_all(c, std::move(pulls));

  // Group fragments by object; replay mirrored queue events in order (the
  // single successor mirror preserves per-app ordering).
  struct Key {
    std::string var;
    Version version;
    std::uint64_t region;
    bool operator<(const Key& o) const {
      return std::tie(var, version, region) <
             std::tie(o.var, o.version, o.region);
    }
  };
  std::map<Key, std::vector<FragmentPut>> objects;
  for (auto& resp : responses) {
    for (FragmentPut& f : resp.fragments) {
      objects[Key{f.var, f.version, region_hash(f.region)}].push_back(
          std::move(f));
    }
    for (QueueBackup& e : resp.events) {
      auto& q = queues_[e.app];
      q.record(wlog::LogEvent{static_cast<wlog::EventKind>(e.kind), e.app,
                              e.version, std::move(e.var), e.region,
                              e.nominal_bytes, e.chk_id});
    }
  }

  const resilience::ReedSolomon rs(params_.policy.rs_k, params_.policy.rs_m);
  for (auto& [key, frags] : objects) {
    const FragmentPut& first = frags.front();
    Chunk chunk;
    chunk.var = first.var;
    chunk.version = first.version;
    chunk.region = first.region;
    chunk.content_key = first.content_key;
    bool restored = false;

    if (params_.policy.kind == resilience::Redundancy::kReplication) {
      chunk.nominal_bytes = first.nominal_bytes;
      chunk.data = first.data;
      restored = chunk.data != nullptr;
    } else {
      chunk.nominal_bytes =
          first.nominal_bytes *
          static_cast<std::uint64_t>(params_.policy.rs_k);
      std::vector<resilience::Shard> shards(
          static_cast<std::size_t>(rs.total_shards()));
      std::size_t original_physical = 0;
      for (const FragmentPut& f : frags) {
        original_physical = f.original_physical;
        if (f.data && f.frag_index >= 0 &&
            f.frag_index < rs.total_shards()) {
          shards[static_cast<std::size_t>(f.frag_index)] = *f.data;
        }
      }
      auto decoded = rs.decode(shards, original_physical);
      if (decoded) {
        // Verify the reconstruction against the chunk's content key.
        if (verify_payload(std::as_bytes(std::span{*decoded}),
                           chunk.content_key)) {
          chunk.data = std::make_shared<std::vector<std::uint8_t>>(
              std::move(*decoded));
          restored = true;
        }
      }
    }

    if (restored) {
      ++stats_.chunks_rebuilt;
      co_await c.delay(copy_time(chunk.nominal_bytes));
      if (params_.logging && first.logged) dlog_.add(chunk);
      store_.put(std::move(chunk));
      // Re-protect the restored object on the (new) fragment layout.
      if (params_.policy.kind != resilience::Redundancy::kNone) {
        Chunk copy = store_.get(key.var, key.version, first.region).front();
        copy.region = first.region;
        sim::spawn(cluster_->engine(),
                   push_fragments(std::move(copy), first.logged));
      }
    } else {
      ++stats_.rebuild_failures;
    }
  }
}

}  // namespace dstage::staging
