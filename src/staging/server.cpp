#include "staging/server.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <tuple>
#include <utility>
#include <variant>

#include "resilience/reed_solomon.hpp"
#include "sim/spawn.hpp"
#include "staging/tenant.hpp"

namespace dstage::staging {

namespace {
/// Exhaustive-visit helper: adding a Message alternative without a matching
/// handler lambda is a compile error.
template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;
}  // namespace

StagingServer::StagingServer(cluster::Cluster& cluster,
                             cluster::VprocId vproc, ServerParams params)
    : cluster_(&cluster),
      vproc_(vproc),
      params_(params),
      rpc_(cluster.fabric(), cluster.vproc(vproc).endpoint),
      governor_(params.governor),
      store_(params.version_window) {
  dlog_.set_codec(params.log_codec);
}

net::EndpointId StagingServer::endpoint() const {
  return cluster_->vproc(vproc_).endpoint;
}

sim::Duration StagingServer::copy_time(std::uint64_t bytes) const {
  return sim::from_seconds(static_cast<double>(bytes) / params_.mem_bw);
}

MemoryReport StagingServer::memory() const {
  MemoryReport r;
  r.store_bytes = store_.nominal_bytes();
  r.log_payload_bytes = dlog_.nominal_bytes();
  for (const auto& [app, q] : queues_) r.log_metadata_bytes += q.metadata_bytes();
  r.redundancy_bytes = fragment_bytes_;
  return r;
}

void StagingServer::sample_memory() {
  const sim::TimePoint now = cluster_->engine().now();
  byte_seconds_ +=
      static_cast<double>(last_total_) * (now - last_sample_).seconds();
  last_sample_ = now;
  last_total_ = memory().total();
  peak_total_ = std::max(peak_total_, last_total_);
  if (obs_ != nullptr && governor_.enabled()) {
    // Gauges merge by max, so the final registry reports peak pressure.
    obs_->metrics()
        .gauge("governor.pressure", obs_track_)
        .set(governor_.pressure(memory().governed()));
  }
}

double StagingServer::mean_total_bytes() const {
  const double elapsed = last_sample_.seconds();
  return elapsed > 0 ? byte_seconds_ / elapsed
                     : static_cast<double>(last_total_);
}

void StagingServer::set_peers(
    int self_index,
    std::shared_ptr<const std::vector<net::EndpointId>> endpoints,
    std::shared_ptr<const std::vector<int>> initial_view) {
  self_index_ = self_index;
  peer_endpoints_ = std::move(endpoints);
  if (initial_view != nullptr) {
    active_view_ = std::move(initial_view);
    return;
  }
  // Default membership view: every peer is active. Elastic runs overwrite
  // this via apply_membership / MembershipUpdate; non-elastic runs keep it,
  // which makes the view-based fan-out below byte-identical to the old
  // index-over-all-peers loops.
  auto identity = std::make_shared<std::vector<int>>(peers().size());
  for (std::size_t s = 0; s < identity->size(); ++s)
    (*identity)[s] = static_cast<int>(s);
  active_view_ = std::move(identity);
}

void StagingServer::apply_membership(std::uint64_t epoch,
                                     std::vector<int> active) {
  view_epoch_ = epoch;
  active_view_ = std::make_shared<const std::vector<int>>(std::move(active));
}

int StagingServer::active_pos() const {
  const auto it = std::find(view().begin(), view().end(), self_index_);
  if (it == view().end()) return -1;
  return static_cast<int>(it - view().begin());
}

bool StagingServer::not_owner(const Box& region) const {
  return group_index_ != nullptr &&
         group_index_->sole_owner(region) != self_index_;
}

void StagingServer::start() {
  sim::spawn(cluster_->engine(), run());
}

void StagingServer::start_with_recovery() {
  sim::spawn(cluster_->engine(), run_after_recovery());
}

sim::Task<void> StagingServer::run_after_recovery() {
  co_await rebuild_from_peers();
  co_await run();
}

sim::Task<void> StagingServer::run() {
  auto& ep = cluster_->fabric().endpoint(endpoint());
  sim::Ctx c = ctx();
  for (;;) {
    net::Packet packet = co_await ep.recv(c.tok);
    co_await handle(std::move(packet.payload));
    sample_memory();
  }
}

sim::Task<void> StagingServer::handle(Request request) {
  if (obs_ != nullptr) {
    current_request_span_ = obs_->tracer().begin(
        obs_track_, net::message_name(request), obs::Phase::kOther,
        cluster_->engine().now());
    obs_->metrics().counter("staging.requests", obs_track_).inc();
  }
  co_await std::visit(
      Overloaded{
          [this](PutRequest&& m) { return handle_put(std::move(m)); },
          [this](GetRequest&& m) { return handle_get(std::move(m)); },
          [this](CheckpointEvent&& m) {
            return handle_checkpoint(std::move(m));
          },
          [this](RecoveryEvent&& m) { return handle_recovery(std::move(m)); },
          [this](RollbackRequest&& m) { return handle_rollback(std::move(m)); },
          [this](FragmentPut&& m) { return handle_fragment_put(std::move(m)); },
          [this](FragmentPrune&& m) {
            return handle_fragment_prune(std::move(m));
          },
          [this](QueueBackup&& m) { return handle_queue_backup(std::move(m)); },
          [this](RecoveryPull&& m) {
            return handle_recovery_pull(std::move(m));
          },
          [this](QueryRequest&& m) { return handle_query(std::move(m)); },
          [this](BatchPut&& m) { return handle_batch_put(std::move(m)); },
          // Spill traffic is addressed to the gateway endpoint; a server
          // receiving it means a routing bug, and dropping is the safe
          // answer (the sender's reply slot times out loudly).
          [this](SpillPut&&) { return ignore_message(); },
          [this](SpillFetch&&) { return ignore_message(); },
          [this](SpillPrune&&) { return ignore_message(); },
          // Group-membership control verbs belong to the GroupManager;
          // servers only consume the resulting view updates and the
          // resilver/degraded-read data traffic.
          [this](JoinGroup&&) { return ignore_message(); },
          [this](RetireServer&&) { return ignore_message(); },
          [this](MembershipQuery&&) { return ignore_message(); },
          [this](MembershipUpdate&& m) {
            return handle_membership_update(std::move(m));
          },
          [this](FragmentFetch&& m) {
            return handle_fragment_fetch(std::move(m));
          },
          [this](ResilverPut&& m) {
            return handle_resilver_put(std::move(m));
          },
          // Level-1/2 checkpoint announcements belong to the drain agent;
          // a server only consumes the final durable promotion.
          [this](CkptStoreLocal&&) { return ignore_message(); },
          [this](CkptXorShard&&) { return ignore_message(); },
          [this](CkptDrainAck&& m) {
            return handle_ckpt_drain_ack(std::move(m));
          },
      },
      std::move(request));
  if (obs_ != nullptr) {
    obs_->tracer().end(current_request_span_, cluster_->engine().now());
    current_request_span_ = 0;
  }
}

sim::Task<PutResponse> StagingServer::apply_put(AppId app, bool logged,
                                                Chunk chunk) {
  sim::Ctx c = ctx();
  ++stats_.puts;

  PutResponse resp;

  // Elastic ownership gate, before any state is touched: a put placed
  // against a stale membership view must leave no trace here — the client
  // refreshes its view and re-places against the current epoch.
  if (not_owner(chunk.region)) {
    ++stats_.wrong_epoch_rejects;
    if (obs_ != nullptr)
      obs_->metrics().counter("elastic.wrong_epoch", obs_track_).inc();
    if (recorder_ != nullptr)
      recorder_->record(recorder_track_, cluster_->engine().now(),
                        obs::FrKind::kPutBounce, chunk.var,
                        static_cast<std::int64_t>(chunk.version),
                        static_cast<std::int64_t>(group_index_->epoch()));
    resp.wrong_epoch = true;
    resp.epoch = group_index_->epoch();
    co_return resp;
  }

  bool apply = true;

  if (params_.logging && logged) {
    auto& q = queues_[app];
    if (q.replaying()) {
      const wlog::LogEvent* expected = q.expected();
      if (expected != nullptr && expected->kind == wlog::EventKind::kPut &&
          expected->var == chunk.var && expected->version == chunk.version &&
          expected->region == chunk.region) {
        // Redundant write from a rolled-back producer: the payload is
        // already staged/logged, so the write request is omitted.
        q.advance();
        apply = false;
        resp.suppressed = true;
        ++stats_.puts_suppressed;
      } else {
        ++stats_.replay_mismatches;  // diverged replay: apply as fresh
      }
    }
    if (apply) {
      // Client retries are idempotent: an identical chunk already staged is
      // acknowledged without re-applying or re-logging.
      auto existing = store_.get(chunk.var, chunk.version, chunk.region);
      if (existing.size() == 1 && existing[0].region == chunk.region &&
          existing[0].content_key == chunk.content_key) {
        apply = false;
        resp.applied = true;
      }
    }
  }

  // Memory-governor admission: decided before the event is recorded, so a
  // rejected put leaves no trace anywhere (no replay-script entry, no
  // bytes) — the client's re-send is a genuinely fresh request.
  if (apply && governor_.enabled()) {
    const std::uint64_t incoming =
        chunk.nominal_bytes *
        (params_.logging && logged ? 2u : 1u);  // store copy + log retention
    switch (governor_.admit(memory().governed(), incoming)) {
      case MemoryGovernor::Admission::kAdmit:
        break;
      case MemoryGovernor::Admission::kAdmitOverrun:
        ++stats_.governor_overruns;
        if (obs_ != nullptr)
          obs_->metrics().counter("governor.overruns", obs_track_).inc();
        break;
      case MemoryGovernor::Admission::kReject:
        ++stats_.puts_rejected;
        if (obs_ != nullptr)
          obs_->metrics().counter("governor.puts_rejected", obs_track_).inc();
        if (recorder_ != nullptr)
          recorder_->record(recorder_track_, cluster_->engine().now(),
                            obs::FrKind::kPutReject, chunk.var,
                            static_cast<std::int64_t>(chunk.version),
                            static_cast<std::int64_t>(chunk.nominal_bytes));
        resp.applied = false;
        resp.retry_later = true;
        poke_governor();  // make sure relief is under way before the retry
        co_return resp;
    }
    // Weighted fair-share: a put that fits the pooled budget must also fit
    // its own tenant's share, so a hoarding tenant's backlog bounces only
    // that tenant's writers — co-resident tenants keep their full shares.
    if (governor_.fair_share()) {
      const net::TenantId tenant = tenant_of(chunk.var);
      switch (governor_.admit_tenant(tenant, governed_bytes(tenant),
                                     incoming)) {
        case MemoryGovernor::Admission::kAdmit:
          break;
        case MemoryGovernor::Admission::kAdmitOverrun:
          ++stats_.governor_overruns;
          if (obs_ != nullptr)
            obs_->metrics().counter("governor.overruns", obs_track_).inc();
          break;
        case MemoryGovernor::Admission::kReject:
          ++stats_.puts_rejected;
          ++stats_.fair_share_rejects;
          if (obs_ != nullptr)
            obs_->metrics()
                .counter("governor.fair_share_rejects", obs_track_)
                .inc();
          if (recorder_ != nullptr)
            recorder_->record(recorder_track_, cluster_->engine().now(),
                              obs::FrKind::kPutReject, chunk.var,
                              static_cast<std::int64_t>(chunk.version),
                              static_cast<std::int64_t>(chunk.nominal_bytes));
          resp.applied = false;
          resp.retry_later = true;
          poke_governor();
          co_return resp;
      }
    }
  }

  if (apply && params_.logging && logged) {
    co_await c.delay(params_.log_event_overhead);
    wlog::LogEvent event{wlog::EventKind::kPut, app,
                         chunk.version,         chunk.var,
                         chunk.region,          chunk.nominal_bytes,
                         0};
    queues_[app].record(event);
    sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
  }

  if (apply) {
    co_await c.delay(copy_time(chunk.nominal_bytes));
    if (params_.logging && logged) {
      // Log append: the data log retains the payload for replay (buffer
      // shared with the base store; the cost is version/index bookkeeping).
      co_await c.delay(
          sim::from_seconds(copy_time(chunk.nominal_bytes).seconds() *
                            params_.log_append_fraction));
      dlog_.add(chunk);
    }
    const std::string var = chunk.var;
    const Version version = chunk.version;
    if (recorder_ != nullptr)
      recorder_->record(recorder_track_, cluster_->engine().now(),
                        obs::FrKind::kPutAdmit, var,
                        static_cast<std::int64_t>(version),
                        static_cast<std::int64_t>(chunk.nominal_bytes));
    if (params_.policy.kind != resilience::Redundancy::kNone) {
      co_await c.delay(params_.policy.encode_time(chunk.nominal_bytes));
      const bool was_logged = params_.logging && logged;
      sim::spawn(cluster_->engine(), push_fragments(chunk, was_logged));
    }
    store_.put(std::move(chunk));
    resp.applied = true;
    poke_pending(var, version);
    poke_governor();  // the footprint just grew; spill if over the soft mark
  }
  co_return resp;
}

sim::Task<void> StagingServer::handle_put(PutRequest req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  app_tenants_[req.app] = req.tenant;
  PutResponse resp = co_await apply_put(req.app, req.logged,
                                        std::move(req.chunk));
  co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply), resp);
}

sim::Task<void> StagingServer::handle_batch_put(BatchPut req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  app_tenants_[req.app] = req.tenant;
  ++stats_.batch_puts;
  BatchPutResponse resp;
  resp.results.reserve(req.chunks.size());
  // The chunks are applied sequentially — the same server-side pipeline a
  // sequence of single puts runs through — but the fabric charged the
  // message overhead only once, and the response below acks all of them.
  for (Chunk& chunk : req.chunks) {
    resp.results.push_back(
        co_await apply_put(req.app, req.logged, std::move(chunk)));
  }
  co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply),
                        std::move(resp));
}

sim::Task<void> StagingServer::handle_get(GetRequest req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  app_tenants_[req.app] = req.tenant;
  ++stats_.gets;

  // Elastic ownership gate: the cell moved — tell the reader to re-place
  // rather than parking a request no local put will ever satisfy.
  if (not_owner(req.desc.region)) {
    ++stats_.wrong_epoch_rejects;
    if (obs_ != nullptr)
      obs_->metrics().counter("elastic.wrong_epoch", obs_track_).inc();
    if (recorder_ != nullptr)
      recorder_->record(recorder_track_, cluster_->engine().now(),
                        obs::FrKind::kGetBounce, req.desc.var,
                        static_cast<std::int64_t>(req.desc.version),
                        static_cast<std::int64_t>(group_index_->epoch()));
    GetResponse resp;
    resp.wrong_epoch = true;
    resp.epoch = group_index_->epoch();
    co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply),
                          std::move(resp));
    co_return;
  }

  if (params_.logging && req.logged) {
    auto& q = queues_[req.app];
    if (q.replaying()) {
      const wlog::LogEvent* expected = q.expected();
      // The version is part of the match, exactly as for puts: after a
      // fallback restart from a checkpoint older than the replay anchor
      // (node failure wiping a node-local checkpoint), the app re-reads
      // versions from before the script — matching on var/region alone
      // would serve the script's newer version for those reads.
      if (expected != nullptr && expected->kind == wlog::EventKind::kGet &&
          expected->var == req.desc.var &&
          expected->version == req.desc.version &&
          expected->region == req.desc.region) {
        // Serve the version observed during the initial execution.
        const Version logged_version = expected->version;
        q.advance();
        // The replayed version may have been spilled to the PFS under
        // memory pressure: fault it back into the log first.
        co_await ensure_log_resident(req.desc.var, logged_version);
        std::vector<Chunk> pieces =
            dlog_.get(req.desc.var, logged_version, req.desc.region);
        if (pieces.empty() ||
            !dlog_.covers(req.desc.var, logged_version, req.desc.region)) {
          pieces = store_.get(req.desc.var, logged_version, req.desc.region);
        }
        ++stats_.gets_from_log;
        sim::spawn(cluster_->engine(),
                   respond_get(std::move(req), std::move(pieces), true));
        co_return;
      }
      ++stats_.replay_mismatches;  // fall through as a fresh request
    }
  }

  if (store_.covers(req.desc.var, req.desc.version, req.desc.region)) {
    if (params_.logging && req.logged) {
      co_await c.delay(params_.log_event_overhead);
      wlog::LogEvent event{wlog::EventKind::kGet, req.app, req.desc.version,
                           req.desc.var, req.desc.region, 0, 0};
      queues_[req.app].record(event);
      sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
    }
    auto pieces = store_.get(req.desc.var, req.desc.version, req.desc.region);
    sim::spawn(cluster_->engine(),
               respond_get(std::move(req), std::move(pieces), false));
    co_return;
  }
  if (params_.logging && req.logged &&
      (dlog_.covers(req.desc.var, req.desc.version, req.desc.region) ||
       spill_covers(req.desc.var, req.desc.version))) {
    // Version already rotated out of the base window but still retained in
    // the log (slow consumer) — or spilled to the PFS, in which case the
    // read-through below faults it back in first.
    co_await ensure_log_resident(req.desc.var, req.desc.version);
    co_await c.delay(params_.log_event_overhead);
    wlog::LogEvent levent{wlog::EventKind::kGet, req.app, req.desc.version,
                          req.desc.var, req.desc.region, 0, 0};
    queues_[req.app].record(levent);
    sim::spawn(cluster_->engine(), mirror_event(std::move(levent)));
    auto pieces = dlog_.get(req.desc.var, req.desc.version, req.desc.region);
    ++stats_.gets_from_log;
    sim::spawn(cluster_->engine(),
               respond_get(std::move(req), std::move(pieces), true));
    co_return;
  }

  // Without logging, a request for an already-superseded version is
  // answered with the newest available data — exactly the Fig.-2 case-1
  // anomaly that individual checkpoint/restart exhibits and the data log
  // exists to prevent. (Consumers detect it via content keys.)
  if (!(params_.logging && req.logged)) {
    const auto latest = store_.latest(req.desc.var);
    if (latest && *latest > req.desc.version &&
        store_.covers(req.desc.var, *latest, req.desc.region)) {
      // Wrong-version serve: the forensic smoking gun for the Fig.-2
      // anomaly — recorded with the version actually substituted.
      if (recorder_ != nullptr)
        recorder_->record(recorder_track_, cluster_->engine().now(),
                          obs::FrKind::kGetAnomaly, req.desc.var,
                          static_cast<std::int64_t>(req.desc.version),
                          static_cast<std::int64_t>(*latest));
      auto pieces = store_.get(req.desc.var, *latest, req.desc.region);
      sim::spawn(cluster_->engine(),
                 respond_get(std::move(req), std::move(pieces), false));
      co_return;
    }
  }

  // Data not yet produced: park the request until a covering put arrives
  // (DataSpaces-style blocking get).
  ++stats_.gets_pending;
  pending_.push_back(std::move(req));
}

// Runs detached from the request loop: the gather copy and the NIC DMA of
// the response overlap with subsequent request processing, as with real
// RDMA; concurrent responses still serialize on the node's NIC resource.
sim::Task<void> StagingServer::respond_get(GetRequest req,
                                           std::vector<Chunk> pieces,
                                           bool from_log) {
  GetResponse resp;
  resp.found = !pieces.empty();
  resp.from_log = from_log;
  resp.pieces = std::move(pieces);
  const std::uint64_t bytes = net::wire_size(resp);
  co_await ctx().delay(copy_time(bytes));  // gather/pack on the server
  co_await rpc_.fulfill(ctx(), req.reply_to, std::move(req.reply),
                        std::move(resp));
}

void StagingServer::poke_pending(const std::string& var, Version version) {
  for (std::size_t i = 0; i < pending_.size();) {
    GetRequest& req = pending_[i];
    // Exact-version match always serves; a non-logged request parked on an
    // older version is unblocked by any newer covering write (and will
    // observe the wrong-version anomaly).
    const bool exact = req.desc.version == version;
    const bool superseded = !(params_.logging && req.logged) &&
                            req.desc.version < version;
    if (req.desc.var == var && (exact || superseded) &&
        store_.covers(var, version, req.desc.region)) {
      GetRequest ready = std::move(req);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      if (params_.logging && ready.logged) {
        wlog::LogEvent event{wlog::EventKind::kGet, ready.app,
                             ready.desc.version, ready.desc.var,
                             ready.desc.region, 0, 0};
        queues_[ready.app].record(event);
        sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
      }
      // `version` (not desc.version) so superseded requests observe the
      // newer data.
      auto pieces = store_.get(ready.desc.var, version, ready.desc.region);
      sim::spawn(cluster_->engine(),
                 respond_get(std::move(ready), std::move(pieces), false));
    } else {
      ++i;
    }
  }
}

sim::Task<void> StagingServer::handle_checkpoint(CheckpointEvent ev) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  app_tenants_[ev.app] = ev.tenant;
  ++stats_.checkpoints;

  // Watermark diffing for the observability hooks: snapshot before the
  // checkpoint is applied, compare after. Skipped entirely when no hook is
  // installed, so uninstrumented runs pay nothing.
  std::vector<std::pair<std::string, Version>> pre_watermarks;
  if (obs_hooks_.gc_watermark_advance && ev.durable) {
    for (const std::string& var : gc_.variables()) {
      pre_watermarks.emplace_back(var, gc_.watermark(var));
    }
  }

  CheckpointAck ack;
  ack.chk_id = next_chk_id_++;
  // Only durable checkpoints move the watermark: a non-durable level
  // (node-local, emergency) is wiped by a node failure, whose recovery
  // falls back to the last durable checkpoint and must still be able to
  // replay every logged version above it.
  if (ev.durable) gc_.on_checkpoint(ev.app, ev.version);

  for (const auto& [var, from] : pre_watermarks) {
    const Version to = gc_.watermark(var);
    if (to > from) obs_hooks_.gc_watermark_advance(var, from, to);
  }

  if (params_.logging) {
    auto& q = queues_[ev.app];
    wlog::LogEvent marker{wlog::EventKind::kCheckpoint, ev.app, ev.version,
                          {}, Box{}, 0, ack.chk_id};
    q.record(marker);
    sim::spawn(cluster_->engine(), mirror_event(std::move(marker)));
    // End of a checkpoint cycle: clean the event queue. The marker is
    // recorded for every level — it anchors the replay script for a
    // restart from this checkpoint — but payload reclamation below only
    // runs when the watermark may actually have advanced.
    const std::size_t events_dropped = q.truncate_before_last_checkpoint();
    if (obs_hooks_.log_truncate) {
      obs_hooks_.log_truncate(ev.app, ev.version, events_dropped);
    }
  }
  if (params_.logging && ev.durable) {
    co_await sweep_after_durable(ev.version);
  }

  co_await rpc_.fulfill(c, ev.reply_to, std::move(ev.reply), ack);
}

sim::Task<void> StagingServer::sweep_after_durable(Version version) {
  sim::Ctx c = ctx();
  obs::SpanId sweep_span = 0;
  if (obs_ != nullptr) {
    sweep_span = obs_->tracer().begin(
        obs_track_, "gc sweep", obs::Phase::kOther,
        cluster_->engine().now(), current_request_span_);
  }
  const gc::SweepResult sweep = gc_.sweep(dlog_);
  stats_.gc_versions_dropped += sweep.versions_dropped;
  stats_.gc_nominal_freed += sweep.nominal_freed;
  co_await c.delay(params_.gc_cost_per_entry *
                   static_cast<std::int64_t>(sweep.entries_scanned + 1));
  if (obs_ != nullptr) {
    obs_->tracer().end(sweep_span, cluster_->engine().now());
    obs_->metrics()
        .counter("gc.versions_dropped", obs_track_)
        .inc(sweep.versions_dropped);
    obs_->metrics()
        .counter("gc.nominal_freed_bytes", obs_track_)
        .inc(sweep.nominal_freed);
  }
  if (obs_hooks_.gc_sweep) {
    obs_hooks_.gc_sweep(version, sweep.versions_dropped,
                        sweep.nominal_freed, sweep.entries_scanned);
  }
  // Spilled versions the watermark has now passed are as unreachable as
  // swept log versions: retire their PFS spill files too.
  prune_spilled_upto_watermark();
  // Peers can reclaim fragments that neither the log's retention nor the
  // base store's window still needs. The fan-out follows the membership
  // view: retired standbys hold no fragments worth pruning.
  if (params_.policy.kind != resilience::Redundancy::kNone &&
      view().size() > 1) {
    for (const std::string& var : store_.variables()) {
      const auto store_versions = store_.versions_of(var);
      const Version oldest_store =
          store_versions.empty() ? 0 : store_versions.front();
      const auto log_versions = dlog_.versions_of(var);
      const Version oldest_log =
          log_versions.empty() ? oldest_store : log_versions.front();
      const Version keep_from = std::min(oldest_store, oldest_log);
      if (keep_from == 0) continue;
      for (int p : view()) {
        if (p == self_index_) continue;
        sim::Ctx sc = ctx();
        net::Message prune{FragmentPrune{self_index_, var, keep_from - 1}};
        sim::spawn(cluster_->engine(),
                   rpc_.send(sc,
                             peers()[static_cast<std::size_t>(p)],
                             std::move(prune)));
      }
    }
  }
}

sim::Task<void> StagingServer::handle_ckpt_drain_ack(CkptDrainAck ack) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.drain_promotions;
  if (recorder_ != nullptr)
    recorder_->record(recorder_track_, cluster_->engine().now(),
                      obs::FrKind::kDrainAck, std::to_string(ack.app),
                      static_cast<std::int64_t>(ack.version));

  std::vector<std::pair<std::string, Version>> pre_watermarks;
  if (obs_hooks_.gc_watermark_advance) {
    for (const std::string& var : gc_.variables()) {
      pre_watermarks.emplace_back(var, gc_.watermark(var));
    }
  }
  // The async drain completed: the cached set at `version` is durable now,
  // which is exactly what lets the GC watermark advance. No queue marker is
  // recorded here — the non-durable CheckpointEvent taken when the set was
  // cached already anchors the replay script at this timestep.
  gc_.on_checkpoint(ack.app, ack.version);
  for (const auto& [var, from] : pre_watermarks) {
    const Version to = gc_.watermark(var);
    if (to > from) obs_hooks_.gc_watermark_advance(var, from, to);
  }
  if (params_.logging) co_await sweep_after_durable(ack.version);
}

sim::Task<void> StagingServer::handle_recovery(RecoveryEvent ev) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  app_tenants_[ev.app] = ev.tenant;
  ++stats_.recoveries;

  RecoveryAck ack;
  if (params_.logging) {
    auto& q = queues_[ev.app];
    q.record(wlog::LogEvent{wlog::EventKind::kRecovery, ev.app,
                            ev.restored_version, {}, Box{}, 0, 0});
    ack.replay_events = q.begin_replay();
  }
  co_await rpc_.fulfill(c, ev.reply_to, std::move(ev.reply), ack);
}

sim::Task<void> StagingServer::handle_rollback(RollbackRequest req) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);

  // Tenant scoping: a coordinated restart of one workflow (req.tenant >= 0)
  // must drop only that tenant's namespace. A co-resident tenant's store
  // window, log retention, spill files, replay queues and parked gets are
  // invariantly untouched — its GC watermarks and durability never move
  // because someone else rolled back. The default (-1) is the global wipe
  // every pre-multi-tenant caller gets, byte-identical to the old path.
  const net::TenantId tenant = req.tenant;
  const auto in_scope = [tenant](const std::string& var) {
    return tenant < 0 || tenant_of(var) == tenant;
  };

  RollbackAck ack;
  ack.versions_dropped = store_.drop_versions_above(req.version, in_scope);
  dlog_.drop_above(req.version, in_scope);
  // Spilled versions newer than the snapshot are rolled back with the log:
  // drop the index entries and have the gateway discard the spill files.
  if (!spilled_.empty()) {
    for (auto vit = spilled_.begin(); vit != spilled_.end();) {
      if (!in_scope(vit->first)) {
        ++vit;
        continue;
      }
      auto& versions = vit->second;
      versions.erase(versions.upper_bound(req.version), versions.end());
      vit = versions.empty() ? spilled_.erase(vit) : std::next(vit);
    }
    if (spill_endpoint_ >= 0) {
      sim::Ctx sc = ctx();
      net::Message prune{SpillPrune{self_index_, std::string{}, req.version,
                                    true, tenant}};
      sim::spawn(cluster_->engine(),
                 rpc_.send(sc, spill_endpoint_, std::move(prune)));
    }
  }
  if (tenant < 0) {
    queues_.clear();
  } else {
    std::erase_if(queues_, [&](const auto& entry) {
      const auto it = app_tenants_.find(entry.first);
      return it != app_tenants_.end() && it->second == tenant;
    });
  }
  // Parked gets for discarded versions belong to rolled-back clients.
  std::erase_if(pending_, [&](const GetRequest& g) {
    return in_scope(g.desc.var) && g.desc.version > req.version;
  });

  co_await rpc_.fulfill(c, req.reply_to, std::move(req.reply), ack);
}

sim::Task<void> StagingServer::handle_fragment_put(FragmentPut frag) {
  if (group_index_ != nullptr) {
    // Elastic runs re-push fragments during resilver and retirement
    // hand-off; an identical fragment already held must not be counted
    // twice (durability accounting would overstate redundancy).
    for (const FragmentPut& held : fragments_[frag.owner]) {
      if (held.var == frag.var && held.version == frag.version &&
          held.frag_index == frag.frag_index &&
          held.region == frag.region) {
        ++stats_.fragments_deduped;
        co_return;
      }
    }
  }
  fragment_bytes_ += frag.nominal_bytes;
  ++stats_.fragments_held;
  fragments_[frag.owner].push_back(std::move(frag));
  co_return;
}

sim::Task<void> StagingServer::handle_fragment_prune(FragmentPrune prune) {
  auto it = fragments_.find(prune.owner);
  if (it == fragments_.end()) co_return;
  std::erase_if(it->second, [&](const FragmentPut& f) {
    const bool drop = f.var == prune.var && f.version <= prune.upto;
    if (drop) fragment_bytes_ -= f.nominal_bytes;
    return drop;
  });
  co_return;
}

sim::Task<void> StagingServer::handle_queue_backup(QueueBackup backup) {
  ++stats_.mirrored_events;
  auto& q = mirrors_[backup.owner][backup.record.app];
  const bool checkpoint =
      backup.record.kind == wlog::EventKind::kCheckpoint;
  q.record(std::move(backup.record));
  if (checkpoint) q.truncate_before_last_checkpoint();
  co_return;
}

sim::Task<void> StagingServer::handle_recovery_pull(RecoveryPull pull) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  RecoveryPullResponse resp;
  if (auto it = fragments_.find(pull.owner); it != fragments_.end()) {
    resp.fragments = it->second;
  }
  if (auto it = mirrors_.find(pull.owner); it != mirrors_.end()) {
    for (const auto& [app, queue] : it->second) {
      for (const wlog::LogEvent& e : queue.events()) {
        resp.events.push_back(QueueBackup{pull.owner, e});
      }
    }
  }
  const std::uint64_t bytes = net::wire_size(resp);
  co_await c.delay(copy_time(bytes));
  co_await rpc_.fulfill(c, pull.reply_to, std::move(pull.reply),
                        std::move(resp));
}

sim::Task<void> StagingServer::handle_query(QueryRequest query) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  QueryResponse resp;
  resp.store_versions = store_.versions_of(query.var);
  resp.logged_versions = dlog_.versions_of(query.var);
  // Spilled versions are still logically retained by the log — they are
  // just parked on the PFS — so metadata queries report them.
  if (auto it = spilled_.find(query.var); it != spilled_.end()) {
    for (const auto& [version, bytes] : it->second)
      resp.logged_versions.push_back(version);
    std::sort(resp.logged_versions.begin(), resp.logged_versions.end());
    resp.logged_versions.erase(std::unique(resp.logged_versions.begin(),
                                           resp.logged_versions.end()),
                               resp.logged_versions.end());
  }
  co_await rpc_.fulfill(c, query.reply_to, std::move(query.reply),
                        std::move(resp));
}

sim::Task<void> StagingServer::mirror_event(wlog::LogEvent event) {
  // Successor in the membership view (identical to the old index-order
  // successor while every peer is active). A retired standby generates no
  // events worth mirroring.
  if (view().size() < 2) co_return;
  const int pos = active_pos();
  if (pos < 0) co_return;
  const auto successor = static_cast<std::size_t>(
      view()[(static_cast<std::size_t>(pos) + 1) %
                   view().size()]);
  net::Message backup{QueueBackup{self_index_, std::move(event)}};
  co_await rpc_.send(ctx(), peers()[successor], std::move(backup));
}

sim::Task<void> StagingServer::push_fragments(Chunk chunk, bool logged) {
  // Fragment placement round-robins over the *active* membership view, so
  // joins widen the fan-out and retiring servers stop receiving new
  // fragments. With every peer active this reduces to the old
  // index-arithmetic placement exactly.
  const int group = static_cast<int>(view().size());
  const int self_pos = active_pos();
  if (group < 2 || self_pos < 0) co_return;
  sim::Ctx c = ctx();
  ++stats_.fragments_pushed;

  // The round-robin below wraps when the policy's fan-out exceeds the
  // group: several fragments of one object land on the same peer, so the
  // policy's nominal max_losses() overstates survivability. The push still
  // proceeds (single-failure tolerance holds: the owner's loss leaves all
  // pushed fragments intact), but the degradation is loud — once on
  // stderr, and per push in stats/metrics.
  if (params_.policy.fragments_total() > group) {
    ++stats_.placement_clamped;
    if (!placement_warned_) {
      placement_warned_ = true;
      std::fprintf(stderr,
                   "dstage: staging-%d: resilience policy wants %d distinct "
                   "fragment holders but the group has %d servers; placement "
                   "wraps and survivability is degraded\n",
                   self_index_, params_.policy.fragments_total(), group);
    }
    if (obs_ != nullptr)
      obs_->metrics()
          .counter("resilience.placement_clamped", obs_track_)
          .inc();
  }

  auto push_one = [&](int frag_index, std::uint64_t nominal,
                      std::shared_ptr<const std::vector<std::uint8_t>> data)
      -> sim::Task<void> {
    // Round-robin over the *other* active servers only: a fragment stored
    // on its own owner would die with it.
    const auto peer = static_cast<std::size_t>(view()[
        static_cast<std::size_t>((self_pos + 1 + (frag_index - 1) %
                                                     (group - 1)) %
                                 group)]);
    net::Message frag{FragmentPut{self_index_,       chunk.var,
                                  chunk.version,     chunk.region,
                                  frag_index,        nominal,
                                  chunk.data ? chunk.data->size() : 0,
                                  chunk.content_key, logged,
                                  std::move(data)}};
    return rpc_.send(c, peers()[peer], std::move(frag));
  };

  if (params_.policy.kind == resilience::Redundancy::kReplication) {
    // Full copies on the next replicas-1 peers.
    for (int j = 1; j < params_.policy.replicas && j < group; ++j) {
      co_await push_one(j, chunk.nominal_bytes, chunk.data);
    }
    co_return;
  }

  // Erasure coding: the owner keeps the full payload (fast local reads) and
  // spreads all k+m shards of it across the following peers, so the loss of
  // this server leaves k-1+m >= k survivors for reconstruction.
  const resilience::ReedSolomon rs(params_.policy.rs_k, params_.policy.rs_m);
  std::vector<resilience::Shard> shards;
  if (chunk.data) {
    shards = rs.encode(*chunk.data);
  }
  const std::uint64_t shard_nominal =
      chunk.nominal_bytes / static_cast<std::uint64_t>(params_.policy.rs_k);
  for (int j = 1; j < rs.total_shards(); ++j) {
    std::shared_ptr<const std::vector<std::uint8_t>> data;
    if (!shards.empty()) {
      data = std::make_shared<std::vector<std::uint8_t>>(
          std::move(shards[static_cast<std::size_t>(j)]));
    }
    co_await push_one(j, shard_nominal, std::move(data));
  }
}

sim::Task<void> StagingServer::rebuild_from_peers() {
  const int total_servers = static_cast<int>(peers().size());
  if (total_servers >= 2 &&
      params_.policy.kind != resilience::Redundancy::kNone) {
    co_await rebuild_objects_from_peers();
  }
  // The spill gateway outlived the failed incarnation: ask it what it still
  // holds on our behalf (a descriptor-only inventory) and rebuild the
  // spill index, so replay-path reads keep faulting those versions in.
  // Versions the fragment rebuild already restored to the log stay local.
  if (governor_.enabled() && spill_endpoint_ >= 0) {
    sim::Ctx c = ctx();
    SpillFetch fetch;
    fetch.owner = self_index_;
    fetch.index_only = true;
    SpillFetchResponse inventory =
        co_await rpc_.call(c, spill_endpoint_, std::move(fetch));
    for (const Chunk& chunk : inventory.chunks) {
      if (dlog_.has(chunk.var, chunk.version)) continue;
      spilled_[chunk.var][chunk.version] += chunk.accounted_bytes();
    }
  }
}

sim::Task<void> StagingServer::rebuild_objects_from_peers() {
  sim::Ctx c = ctx();
  const int total_servers = static_cast<int>(peers().size());

  // Pull everything our peers hold on our behalf.
  std::vector<sim::Task<RecoveryPullResponse>> pulls;
  for (int p = 0; p < total_servers; ++p) {
    if (p == self_index_) continue;
    RecoveryPull pull;
    pull.owner = self_index_;
    pulls.push_back(
        rpc_.call(c, peers()[static_cast<std::size_t>(p)],
                  std::move(pull)));
  }
  auto responses = co_await sim::when_all(c, std::move(pulls));

  // Group fragments by object; replay mirrored queue events in order (the
  // single successor mirror preserves per-app ordering).
  struct Key {
    std::string var;
    Version version;
    std::uint64_t region;
    bool operator<(const Key& o) const {
      return std::tie(var, version, region) <
             std::tie(o.var, o.version, o.region);
    }
  };
  std::map<Key, std::vector<FragmentPut>> objects;
  for (auto& resp : responses) {
    for (FragmentPut& f : resp.fragments) {
      objects[Key{f.var, f.version, region_hash(f.region)}].push_back(
          std::move(f));
    }
    for (QueueBackup& e : resp.events) {
      auto& q = queues_[e.record.app];
      q.record(std::move(e.record));
    }
  }

  const resilience::ReedSolomon rs(params_.policy.rs_k, params_.policy.rs_m);
  for (auto& [key, frags] : objects) {
    const FragmentPut& first = frags.front();
    Chunk chunk;
    chunk.var = first.var;
    chunk.version = first.version;
    chunk.region = first.region;
    chunk.content_key = first.content_key;
    bool restored = false;

    if (params_.policy.kind == resilience::Redundancy::kReplication) {
      chunk.nominal_bytes = first.nominal_bytes;
      chunk.data = first.data;
      restored = chunk.data != nullptr;
    } else {
      chunk.nominal_bytes =
          first.nominal_bytes *
          static_cast<std::uint64_t>(params_.policy.rs_k);
      std::vector<resilience::Shard> shards(
          static_cast<std::size_t>(rs.total_shards()));
      std::size_t original_physical = 0;
      for (const FragmentPut& f : frags) {
        original_physical = f.original_physical;
        if (f.data && f.frag_index >= 0 &&
            f.frag_index < rs.total_shards()) {
          shards[static_cast<std::size_t>(f.frag_index)] = *f.data;
        }
      }
      auto decoded = rs.decode(shards, original_physical);
      if (decoded) {
        // Verify the reconstruction against the chunk's content key.
        if (verify_payload(std::as_bytes(std::span{*decoded}),
                           chunk.content_key)) {
          chunk.data = std::make_shared<std::vector<std::uint8_t>>(
              std::move(*decoded));
          restored = true;
        }
      }
    }

    if (restored) {
      ++stats_.chunks_rebuilt;
      co_await c.delay(copy_time(chunk.nominal_bytes));
      if (params_.logging && first.logged) dlog_.add(chunk);
      store_.put(std::move(chunk));
      // Re-protect the restored object on the (new) fragment layout.
      if (params_.policy.kind != resilience::Redundancy::kNone) {
        Chunk copy = store_.get(key.var, key.version, first.region).front();
        copy.region = first.region;
        sim::spawn(cluster_->engine(),
                   push_fragments(std::move(copy), first.logged));
      }
    } else {
      ++stats_.rebuild_failures;
    }
  }
}

sim::Task<void> StagingServer::handle_membership_update(
    MembershipUpdate update) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  apply_membership(update.epoch, std::move(update.active));
}

sim::Task<void> StagingServer::handle_fragment_fetch(FragmentFetch fetch) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.fragment_fetches;
  FragmentFetchResponse resp;
  if (auto it = fragments_.find(fetch.owner); it != fragments_.end()) {
    for (const FragmentPut& f : it->second) {
      if (f.var == fetch.var && f.version == fetch.version)
        resp.fragments.push_back(f);
    }
  }
  co_await c.delay(copy_time(net::wire_size(resp)));  // gather/pack
  co_await rpc_.fulfill(c, fetch.reply_to, std::move(fetch.reply),
                        std::move(resp));
}

sim::Task<void> StagingServer::handle_resilver_put(ResilverPut put) {
  sim::Ctx c = ctx();
  co_await c.delay(params_.request_overhead);
  ++stats_.resilver_chunks_in;
  stats_.resilver_bytes_in += put.chunk.accounted_bytes();
  if (recorder_ != nullptr)
    recorder_->record(recorder_track_, cluster_->engine().now(),
                      obs::FrKind::kResilverIn, put.chunk.var,
                      static_cast<std::int64_t>(put.chunk.version),
                      static_cast<std::int64_t>(put.chunk.nominal_bytes));
  if (obs_ != nullptr) {
    obs_->metrics().counter("elastic.resilver_chunks_in", obs_track_).inc();
    obs_->metrics()
        .counter("elastic.resilver_bytes_in", obs_track_)
        .inc(put.chunk.nominal_bytes);
  }
  co_await c.delay(copy_time(put.chunk.nominal_bytes));
  const std::string var = put.chunk.var;
  const Version version = put.chunk.version;
  if (params_.logging && put.logged) {
    co_await c.delay(
        sim::from_seconds(copy_time(put.chunk.nominal_bytes).seconds() *
                          params_.log_append_fraction));
    dlog_.add(put.chunk);
  }
  if (put.in_store) {
    store_.put(std::move(put.chunk));
    poke_pending(var, version);
  } else if (params_.logging && put.logged) {
    // A log-only version landed: poke_pending only consults the base
    // store, so wake parked logged readers the data log now covers.
    for (std::size_t i = 0; i < pending_.size();) {
      GetRequest& req = pending_[i];
      if (req.logged && req.desc.var == var && req.desc.version == version &&
          dlog_.covers(var, version, req.desc.region)) {
        GetRequest ready = std::move(req);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        wlog::LogEvent event{wlog::EventKind::kGet, ready.app,
                             ready.desc.version, ready.desc.var,
                             ready.desc.region, 0, 0};
        queues_[ready.app].record(event);
        sim::spawn(cluster_->engine(), mirror_event(std::move(event)));
        auto pieces = dlog_.get(var, version, ready.desc.region);
        ++stats_.gets_from_log;
        sim::spawn(cluster_->engine(),
                   respond_get(std::move(ready), std::move(pieces), true));
      } else {
        ++i;
      }
    }
  }
  poke_governor();
  ResilverAck ack;
  ack.ok = true;
  if (governor_.enabled()) {
    ack.pressure = static_cast<double>(memory().governed()) /
                   static_cast<double>(governor_.soft_bytes());
  }
  co_await rpc_.fulfill(c, put.reply_to, std::move(put.reply), ack);
}

sim::Task<StagingServer::ResilverOutcome> StagingServer::resilver_out_impl(
    int dest, net::EndpointId dest_ep, std::vector<Box> regions) {
  sim::Ctx c = ctx();
  ResilverOutcome outcome;
  obs::SpanId span = 0;
  if (obs_ != nullptr) {
    span = obs_->tracer().begin(obs_track_, "resilver", obs::Phase::kResilver,
                                cluster_->engine().now());
  }

  const auto moved = [&](const Box& region) {
    for (const Box& r : regions) {
      if (!region.intersection(r).empty()) return true;
    }
    return false;
  };
  // Drop a local piece only when the hand-off fully covers it; a chunk
  // straddling moved and kept cells stays behind (safe duplication — the
  // oracle's coverage invariant unions holdings across servers).
  const auto covered = [&](const Chunk& ch) {
    return boxes_cover(ch.region, regions);
  };

  // Spilled log versions park their payload on the PFS gateway under
  // *this* server's spill index, which the new owner cannot read. Fault
  // them back in first so the sweep below can hand them off.
  {
    std::vector<std::pair<std::string, Version>> parked;
    for (const auto& [var, versions] : spilled_) {
      for (const auto& [version, bytes] : versions)
        parked.emplace_back(var, version);
    }
    for (auto& [var, version] : parked) {
      co_await ensure_log_resident(var, version);
    }
  }

  std::vector<std::string> vars = store_.variables();
  for (const std::string& var : dlog_.variables()) {
    if (std::find(vars.begin(), vars.end(), var) == vars.end())
      vars.push_back(var);
  }
  std::sort(vars.begin(), vars.end());

  for (const std::string& var : vars) {
    std::vector<Version> versions = store_.versions_of(var);
    for (Version v : dlog_.versions_of(var)) {
      if (std::find(versions.begin(), versions.end(), v) == versions.end())
        versions.push_back(v);
    }
    std::sort(versions.begin(), versions.end());

    // Ascending versions: the destination's window rotation keeps the
    // newest, matching what the old owner would retain.
    for (const Version version : versions) {
      const bool in_store = !store_.chunks_of(var, version).empty();
      const bool logged =
          params_.logging && dlog_.has(var, version);
      // Log-only versions travel in export form (self-contained blocks);
      // store-resident versions travel raw, and the destination's log
      // re-encodes under its own (identical) codec.
      std::vector<Chunk> chunks = in_store
                                      ? store_.chunks_of(var, version)
                                      : dlog_.export_chunks(var, version);
      bool sent_any = false;
      for (Chunk& chunk : chunks) {
        if (!moved(chunk.region)) continue;
        const std::uint64_t bytes = chunk.accounted_bytes();
        ResilverPut rp;
        rp.from = self_index_;
        rp.chunk = std::move(chunk);
        rp.logged = logged;
        rp.in_store = in_store;
        ResilverAck ack = co_await rpc_.call(c, dest_ep, std::move(rp));
        if (!ack.ok) continue;
        sent_any = true;
        ++outcome.chunks;
        outcome.bytes += bytes;
        ++stats_.resilver_chunks_out;
        stats_.resilver_bytes_out += bytes;
        if (obs_ != nullptr) {
          obs_->metrics()
              .counter("elastic.resilver_chunks_out", obs_track_)
              .inc();
          obs_->metrics()
              .counter("elastic.resilver_bytes_out", obs_track_)
              .inc(bytes);
        }
        // Yield to foreground traffic while the destination's governor
        // reports pressure: resilver is background work.
        if (ack.pressure > 1.0) {
          co_await c.delay(net::kBackpressureBackoff);
        }
      }
      if (sent_any) {
        if (in_store) store_.drop_pieces(var, version, covered);
        if (logged) dlog_.drop_resilvered(var, version, covered);
      }
    }
  }

  // Parked gets for regions this server no longer owns would wait forever
  // (no local put will cover them): bounce them so the reader re-places
  // against the current epoch.
  for (std::size_t i = 0; i < pending_.size();) {
    if (not_owner(pending_[i].desc.region)) {
      GetRequest bounced = std::move(pending_[i]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      ++stats_.wrong_epoch_rejects;
      GetResponse resp;
      resp.wrong_epoch = true;
      resp.epoch = group_index_ != nullptr ? group_index_->epoch() : 0;
      sim::spawn(cluster_->engine(),
                 rpc_.fulfill(c, bounced.reply_to, std::move(bounced.reply),
                              std::move(resp)));
    } else {
      ++i;
    }
  }

  if (recorder_ != nullptr && outcome.chunks > 0)
    recorder_->record(recorder_track_, cluster_->engine().now(),
                      obs::FrKind::kResilverOut,
                      "dest-" + std::to_string(dest),
                      static_cast<std::int64_t>(outcome.chunks),
                      static_cast<std::int64_t>(outcome.bytes));
  if (obs_ != nullptr) obs_->tracer().end(span, cluster_->engine().now());
  (void)dest;
  co_return outcome;
}

sim::Task<StagingServer::ResilverOutcome> StagingServer::drain_out_impl(
    std::vector<DrainDest> dests) {
  sim::Ctx c = ctx();
  ResilverOutcome outcome;

  // Late spills between sweeps would strand payloads under this server's
  // spill index; fault them back in before walking the holdings.
  {
    std::vector<std::pair<std::string, Version>> parked;
    for (const auto& [var, versions] : spilled_) {
      for (const auto& [version, bytes] : versions)
        parked.emplace_back(var, version);
    }
    for (auto& [var, version] : parked) {
      co_await ensure_log_resident(var, version);
    }
  }

  const auto intersects = [](const Box& region,
                             const std::vector<Box>& boxes) {
    for (const Box& b : boxes) {
      if (!region.intersection(b).empty()) return true;
    }
    return false;
  };

  std::vector<std::string> vars = store_.variables();
  for (const std::string& var : dlog_.variables()) {
    if (std::find(vars.begin(), vars.end(), var) == vars.end())
      vars.push_back(var);
  }
  std::sort(vars.begin(), vars.end());

  for (const std::string& var : vars) {
    std::vector<Version> versions = store_.versions_of(var);
    for (Version v : dlog_.versions_of(var)) {
      if (std::find(versions.begin(), versions.end(), v) == versions.end())
        versions.push_back(v);
    }
    std::sort(versions.begin(), versions.end());

    for (const Version version : versions) {
      const bool in_store = !store_.chunks_of(var, version).empty();
      const bool logged = params_.logging && dlog_.has(var, version);
      const std::vector<Chunk> chunks =
          in_store ? store_.chunks_of(var, version)
                   : dlog_.export_chunks(var, version);
      std::set<std::uint64_t> released;
      for (const Chunk& chunk : chunks) {
        // The whole piece goes to every successor that now owns part of
        // it; the local copy is released only once all of them hold it,
        // so no reader's placement target is ever missing the bytes.
        bool all_acked = true;
        bool any_dest = false;
        for (const DrainDest& dest : dests) {
          if (!intersects(chunk.region, dest.regions)) continue;
          any_dest = true;
          ResilverPut rp;
          rp.from = self_index_;
          rp.chunk = chunk;
          rp.logged = logged;
          rp.in_store = in_store;
          ResilverAck ack =
              co_await rpc_.call(c, dest.endpoint, std::move(rp));
          if (!ack.ok) {
            all_acked = false;
            continue;
          }
          ++outcome.chunks;
          outcome.bytes += chunk.accounted_bytes();
          ++stats_.resilver_chunks_out;
          stats_.resilver_bytes_out += chunk.accounted_bytes();
          if (ack.pressure > 1.0) {
            co_await c.delay(net::kBackpressureBackoff);
          }
        }
        if (any_dest && all_acked) released.insert(region_hash(chunk.region));
      }
      if (!released.empty()) {
        const auto is_released = [&](const Chunk& ch) {
          return released.count(region_hash(ch.region)) > 0;
        };
        if (in_store) store_.drop_pieces(var, version, is_released);
        if (logged) dlog_.drop_resilvered(var, version, is_released);
      }
    }
  }
  co_return outcome;
}

sim::Task<void> StagingServer::handoff_redundancy_impl() {
  sim::Ctx c = ctx();
  const int n_act = static_cast<int>(view().size());

  // Re-home fragments held for still-active owners using the owner's own
  // round-robin placement over the current view — the same peer the owner
  // would choose when re-pushing, so the receiver's dedup absorbs any
  // overlap instead of double-counting durability. Fragments for owners
  // that also left the group die here: their primaries drained with them.
  if (n_act >= 2) {
    for (auto& [owner, frags] : fragments_) {
      const auto oit =
          std::find(view().begin(), view().end(), owner);
      if (oit == view().end()) continue;
      const int pos = static_cast<int>(oit - view().begin());
      for (FragmentPut& f : frags) {
        const int slot = f.frag_index >= 1 ? f.frag_index : 1;
        const auto target = static_cast<std::size_t>(view()[
            static_cast<std::size_t>((pos + 1 + (slot - 1) % (n_act - 1)) %
                                     n_act)]);
        if (static_cast<int>(target) == owner) continue;
        net::Message msg{f};
        co_await rpc_.send(c, peers()[target], std::move(msg));
      }
    }
    for (auto& [owner, apps] : mirrors_) {
      const auto oit =
          std::find(view().begin(), view().end(), owner);
      if (oit == view().end()) continue;
      const int pos = static_cast<int>(oit - view().begin());
      const auto successor = static_cast<std::size_t>(
          view()[static_cast<std::size_t>((pos + 1) % n_act)]);
      if (static_cast<int>(successor) == owner) continue;
      for (auto& [app, queue] : apps) {
        for (const wlog::LogEvent& e : queue.events()) {
          net::Message msg{QueueBackup{owner, e}};
          co_await rpc_.send(c, peers()[successor], std::move(msg));
        }
      }
    }
  }
  fragments_.clear();
  fragment_bytes_ = 0;
  mirrors_.clear();
}

sim::Task<void> StagingServer::ignore_message() { co_return; }

bool StagingServer::spill_covers(const std::string& var,
                                 Version version) const {
  auto it = spilled_.find(var);
  return it != spilled_.end() && it->second.count(version) > 0;
}

bool StagingServer::any_tenant_over_share() const {
  if (!governor_.fair_share()) return false;
  for (const net::TenantId tenant : store_.tenants()) {
    if (governor_.over_share(tenant, governed_bytes(tenant))) return true;
  }
  return false;
}

void StagingServer::poke_governor() {
  if (!governor_.enabled() || maintenance_inflight_) return;
  // Under fair share a single tenant over its slice needs relief even when
  // the pool as a whole is comfortable — otherwise a hoarding tenant's
  // writers bounce forever while the pooled watermark never trips.
  if (!governor_.over_soft(memory().governed()) && !any_tenant_over_share()) {
    return;
  }
  maintenance_inflight_ = true;
  sim::spawn(cluster_->engine(), maintain_memory());
}

sim::Task<void> StagingServer::maintain_memory() {
  sim::Ctx c = ctx();
  // Urgent GC sweep first: versions the watermark already passed are freed
  // for an index walk, no PFS traffic.
  if (params_.logging) {
    const gc::SweepResult sweep = gc_.sweep(dlog_);
    ++stats_.urgent_gc_sweeps;
    stats_.gc_versions_dropped += sweep.versions_dropped;
    stats_.gc_nominal_freed += sweep.nominal_freed;
    co_await c.delay(params_.gc_cost_per_entry *
                     static_cast<std::int64_t>(sweep.entries_scanned + 1));
    if (obs_ != nullptr) {
      obs_->metrics().counter("governor.urgent_sweeps", obs_track_).inc();
      obs_->metrics()
          .counter("gc.versions_dropped", obs_track_)
          .inc(sweep.versions_dropped);
      obs_->metrics()
          .counter("gc.nominal_freed_bytes", obs_track_)
          .inc(sweep.nominal_freed);
    }
    prune_spilled_upto_watermark();
  }

  // Then spill the coldest reclaim-ineligible log versions until the
  // governed footprint is back under the soft watermark. The victim is the
  // globally oldest retained version that is not its variable's newest —
  // the newest is live coupling data, which even GC never reclaims. Under
  // weighted fair-share, victims come from over-share tenants first: the
  // tenant that outgrew its slice pays the spill latency, not its
  // co-residents.
  while (spill_endpoint_ >= 0 && params_.logging &&
         (governor_.over_soft(memory().governed()) ||
          any_tenant_over_share())) {
    std::string victim_var;
    Version victim_version = 0;
    bool found = false;
    bool found_over_share = false;
    for (const std::string& var : dlog_.variables()) {
      const auto versions = dlog_.versions_of(var);
      if (versions.size() < 2) continue;
      const net::TenantId tenant = tenant_of(var);
      const bool over_share =
          governor_.over_share(tenant, governed_bytes(tenant));
      if (found) {
        if (found_over_share && !over_share) continue;
        if (found_over_share == over_share &&
            versions.front() >= victim_version)
          continue;
      }
      found = true;
      found_over_share = over_share;
      victim_var = var;
      victim_version = versions.front();
    }
    if (!found) break;

    // Export form: delta blocks are rebased to self-contained full blocks,
    // so the gateway's copy decodes without this log's base versions.
    auto chunks = dlog_.export_chunks(victim_var, victim_version);
    if (chunks.empty()) break;
    obs::SpanId span = 0;
    if (obs_ != nullptr) {
      span = obs_->tracer().begin(obs_track_, "spill", obs::Phase::kSpill,
                                  cluster_->engine().now());
    }
    std::uint64_t bytes = 0;
    for (Chunk& chunk : chunks) {
      bytes += chunk.accounted_bytes();
      SpillPut sp;
      sp.owner = self_index_;
      sp.chunk = std::move(chunk);
      co_await rpc_.call(c, spill_endpoint_, std::move(sp));
    }
    if (obs_ != nullptr) obs_->tracer().end(span, cluster_->engine().now());

    // The gateway round-trip let the request loop run: a checkpoint-driven
    // GC sweep or a rollback may have reclaimed the victim meanwhile. The
    // gateway's copy is then an orphan that the next prune retires; the
    // log must NOT be touched (the version is already gone, and dropping
    // a re-added successor would lose data).
    if (!dlog_.has(victim_var, victim_version)) {
      ++stats_.spills_aborted;
      if (obs_ != nullptr)
        obs_->metrics().counter("governor.spills_aborted", obs_track_).inc();
      continue;
    }
    dlog_.drop_spilled(victim_var, victim_version);
    spilled_[victim_var][victim_version] = bytes;
    ++stats_.spill_versions;
    stats_.spill_bytes += bytes;
    if (obs_ != nullptr) {
      obs_->metrics().counter("governor.spill_versions", obs_track_).inc();
      obs_->metrics().counter("governor.spill_bytes", obs_track_).inc(bytes);
    }
    if (obs_hooks_.spill)
      obs_hooks_.spill(victim_var, victim_version, bytes);
  }
  // Nothing left to sweep or spill, yet still above the hard watermark:
  // the budget is below the workload's working-set floor (base window +
  // newest log versions, which are never evictable). Every put will bounce
  // until clients give up — say so once instead of deadlocking silently.
  if (!budget_warned_ &&
      !governor_.admitting(memory().governed())) {
    budget_warned_ = true;
    std::fprintf(stderr,
                 "[staging] WARNING: server %d governed footprint %llu B "
                 "exceeds the hard watermark %llu B with nothing left to "
                 "spill; memory_budget is below the workload's working-set "
                 "floor\n",
                 self_index_,
                 static_cast<unsigned long long>(memory().governed()),
                 static_cast<unsigned long long>(governor_.hard_bytes()));
  }
  maintenance_inflight_ = false;
}

sim::Task<void> StagingServer::ensure_log_resident(std::string var,
                                                   Version version) {
  if (spill_endpoint_ < 0 || !spill_covers(var, version)) co_return;
  sim::Ctx c = ctx();
  obs::SpanId span = 0;
  if (obs_ != nullptr) {
    span = obs_->tracer().begin(obs_track_, "spill fetch", obs::Phase::kSpill,
                                cluster_->engine().now(),
                                current_request_span_);
  }
  SpillFetch fetch;
  fetch.owner = self_index_;
  fetch.var = var;
  fetch.version = version;
  SpillFetchResponse resp =
      co_await rpc_.call(c, spill_endpoint_, std::move(fetch));
  // The gateway round-trip let the request loop run: a concurrent fault-in
  // of the same version (two replay reads racing) may already have
  // re-ingested it and erased the spill-index entry, or a rollback may have
  // discarded it. Re-adding here would double-count the footprint — or
  // resurrect a rolled-back version.
  if (!spill_covers(var, version) || dlog_.has(var, version)) {
    if (obs_ != nullptr) obs_->tracer().end(span, cluster_->engine().now());
    co_return;
  }
  std::uint64_t bytes = 0;
  for (Chunk& chunk : resp.chunks) {
    bytes += chunk.accounted_bytes();
    dlog_.add(std::move(chunk));
  }
  co_await c.delay(copy_time(bytes));  // re-ingest into the log's index
  ++stats_.spill_fetches;
  stats_.spill_fetch_bytes += bytes;
  if (auto it = spilled_.find(var); it != spilled_.end()) {
    it->second.erase(version);
    if (it->second.empty()) spilled_.erase(it);
  }
  if (obs_ != nullptr) {
    obs_->tracer().end(span, cluster_->engine().now());
    obs_->metrics().counter("governor.spill_fetches", obs_track_).inc();
    obs_->metrics()
        .counter("governor.spill_fetch_bytes", obs_track_)
        .inc(bytes);
  }
  if (obs_hooks_.spill_fetch) obs_hooks_.spill_fetch(var, version, bytes);
  poke_governor();  // the fault-in may have pushed us over the soft mark
}

void StagingServer::prune_spilled_upto_watermark() {
  if (spilled_.empty()) return;
  for (auto vit = spilled_.begin(); vit != spilled_.end();) {
    const std::string& var = vit->first;
    const Version mark = gc_.watermark(var);
    auto& versions = vit->second;
    std::size_t dropped = 0;
    for (auto it = versions.begin();
         it != versions.end() && it->first <= mark;) {
      it = versions.erase(it);
      ++dropped;
    }
    if (dropped > 0 && spill_endpoint_ >= 0) {
      sim::Ctx sc = ctx();
      net::Message prune{SpillPrune{self_index_, var, mark, false}};
      sim::spawn(cluster_->engine(),
                 rpc_.send(sc, spill_endpoint_, std::move(prune)));
    }
    vit = versions.empty() ? spilled_.erase(vit) : std::next(vit);
  }
}

}  // namespace dstage::staging
