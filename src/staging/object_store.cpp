#include "staging/object_store.hpp"

#include <stdexcept>

#include "staging/tenant.hpp"

namespace dstage::staging {

ObjectStore::ObjectStore(int version_window)
    : version_window_(version_window) {
  if (version_window < 1)
    throw std::invalid_argument("version window must be >= 1");
}

void ObjectStore::account(const Chunk& c, int sign) {
  // Footprint accounting charges the *stored* representation: for
  // codec-encoded log chunks that is the (smaller) encoded size, which is
  // exactly how the memory governor and the spill gateway see the codec's
  // savings. Raw chunks have stored_bytes == 0 and charge nominal as ever.
  const std::uint64_t stored = c.accounted_bytes();
  TenantUsage& usage = tenant_usage_[tenant_of(c.var)];
  if (sign > 0) {
    nominal_bytes_ += stored;
    physical_bytes_ += c.physical_bytes();
    watermark_.add(static_cast<std::int64_t>(stored));
    usage.nominal += stored;
    if (usage.nominal > usage.peak) usage.peak = usage.nominal;
  } else {
    nominal_bytes_ -= stored;
    physical_bytes_ -= c.physical_bytes();
    watermark_.add(-static_cast<std::int64_t>(stored));
    usage.nominal -= stored;
  }
}

std::uint64_t ObjectStore::nominal_bytes(net::TenantId tenant) const {
  auto it = tenant_usage_.find(tenant);
  return it == tenant_usage_.end() ? 0 : it->second.nominal;
}

std::uint64_t ObjectStore::peak_nominal_bytes(net::TenantId tenant) const {
  auto it = tenant_usage_.find(tenant);
  return it == tenant_usage_.end() ? 0 : it->second.peak;
}

std::vector<net::TenantId> ObjectStore::tenants() const {
  std::vector<net::TenantId> out;
  out.reserve(tenant_usage_.size());
  for (const auto& [tenant, usage] : tenant_usage_) {
    if (usage.peak > 0) out.push_back(tenant);
  }
  return out;
}

void ObjectStore::put(Chunk chunk) {
  auto& versions = store_[chunk.var];
  auto& chunks = versions[chunk.version];
  // A re-put of the same region (client retry, or an individually restarted
  // producer) overwrites in place rather than duplicating.
  for (Chunk& existing : chunks) {
    if (existing.region == chunk.region) {
      account(existing, -1);
      account(chunk, +1);
      existing = std::move(chunk);
      if (put_probe_) put_probe_(existing);
      return;
    }
  }
  account(chunk, +1);
  const std::string var = chunk.var;
  chunks.push_back(std::move(chunk));
  if (put_probe_) put_probe_(chunks.back());
  // Rotate versions that fell out of the retention window.
  while (static_cast<int>(versions.size()) > version_window_) {
    auto oldest = versions.begin();
    // Never rotate out a version newer than the one just written.
    if (oldest->first >= versions.rbegin()->first) break;
    for (const Chunk& c : oldest->second) account(c, -1);
    if (drop_probe_) drop_probe_(var, oldest->first, DropReason::kRotation);
    versions.erase(oldest);
  }
}

std::vector<Chunk> ObjectStore::get(const std::string& var, Version version,
                                    const Box& region) const {
  std::vector<Chunk> out;
  auto vit = store_.find(var);
  if (vit == store_.end()) return out;
  auto it = vit->second.find(version);
  if (it == vit->second.end()) return out;
  std::vector<Box> served;
  for (const Chunk& c : it->second) {
    const Box overlap = c.region.intersection(region);
    if (overlap.empty()) continue;
    // After an elastic rebalance a version may be held in redundant
    // overlapping copies (a straddler delivered whole to several
    // successors, or a replayed put re-shaped by a newer epoch's
    // placement). Serve each point of the request once: a piece's nominal
    // size covers only the volume no earlier piece already served, and a
    // fully redundant copy is omitted outright.
    const std::uint64_t fresh = uncovered_volume(overlap, served);
    if (fresh == 0) continue;
    served.push_back(overlap);
    // Return the piece clipped to the overlap; bytes stay shared, and the
    // clipped nominal size is proportional to the clipped volume.
    Chunk piece = c;
    const double frac = static_cast<double>(fresh) /
                        static_cast<double>(c.region.volume());
    piece.nominal_bytes = static_cast<std::uint64_t>(
        static_cast<double>(c.nominal_bytes) * frac);
    // The content key stays that of the *source* chunk: consumers verify
    // against the source region carried in `region`.
    out.push_back(std::move(piece));
  }
  return out;
}

bool ObjectStore::covers(const std::string& var, Version version,
                         const Box& region) const {
  if (region.empty()) return true;
  auto vit = store_.find(var);
  if (vit == store_.end()) return false;
  auto it = vit->second.find(version);
  if (it == vit->second.end()) return false;
  // Fast path: one stored chunk contains the probe outright — the common
  // case when gets are fragment-aligned with the writes that fed them.
  for (const Chunk& c : it->second) {
    if (c.region.contains(region)) return true;
  }
  std::vector<Box> cover;
  cover.reserve(it->second.size());
  for (const Chunk& c : it->second) cover.push_back(c.region);
  // Exact even when stored chunks overlap (e.g. writes from overlapping
  // producer decompositions).
  return boxes_cover(region, cover);
}

std::optional<Version> ObjectStore::latest(const std::string& var) const {
  auto vit = store_.find(var);
  if (vit == store_.end() || vit->second.empty()) return std::nullopt;
  return vit->second.rbegin()->first;
}

std::vector<Version> ObjectStore::versions_of(const std::string& var) const {
  std::vector<Version> out;
  auto vit = store_.find(var);
  if (vit == store_.end()) return out;
  out.reserve(vit->second.size());
  for (const auto& [version, chunks] : vit->second) out.push_back(version);
  return out;
}

std::vector<std::string> ObjectStore::variables() const {
  std::vector<std::string> out;
  out.reserve(store_.size());
  for (const auto& [var, versions] : store_) {
    if (!versions.empty()) out.push_back(var);
  }
  return out;
}

std::size_t ObjectStore::drop_versions_above(Version version) {
  return drop_versions_above(version,
                             [](const std::string&) { return true; });
}

std::size_t ObjectStore::drop_versions_above(
    Version version, const std::function<bool(const std::string&)>& var_pred) {
  std::size_t dropped = 0;
  for (auto& [var, versions] : store_) {
    if (!var_pred(var)) continue;
    for (auto it = versions.upper_bound(version); it != versions.end();) {
      for (const Chunk& c : it->second) account(c, -1);
      if (drop_probe_) drop_probe_(var, it->first, DropReason::kRollback);
      it = versions.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

bool ObjectStore::drop_version(const std::string& var, Version version,
                               DropReason reason) {
  auto vit = store_.find(var);
  if (vit == store_.end()) return false;
  auto it = vit->second.find(version);
  if (it == vit->second.end()) return false;
  for (const Chunk& c : it->second) account(c, -1);
  if (drop_probe_) drop_probe_(var, version, reason);
  vit->second.erase(it);
  return true;
}

std::size_t ObjectStore::drop_pieces(
    const std::string& var, Version version,
    const std::function<bool(const Chunk&)>& pred, DropReason reason) {
  auto vit = store_.find(var);
  if (vit == store_.end()) return 0;
  auto it = vit->second.find(version);
  if (it == vit->second.end()) return 0;
  std::size_t dropped = 0;
  std::erase_if(it->second, [&](const Chunk& c) {
    if (!pred(c)) return false;
    account(c, -1);
    ++dropped;
    return true;
  });
  if (it->second.empty()) {
    if (drop_probe_) drop_probe_(var, version, reason);
    vit->second.erase(it);
  }
  return dropped;
}

bool ObjectStore::rewrite_payload(
    const std::string& var, Version version, const Box& region,
    std::shared_ptr<const std::vector<std::uint8_t>> data,
    std::uint64_t stored_bytes) {
  auto vit = store_.find(var);
  if (vit == store_.end()) return false;
  auto it = vit->second.find(version);
  if (it == vit->second.end()) return false;
  for (Chunk& c : it->second) {
    if (!(c.region == region)) continue;
    // Representation change only (codec rebase): identity, nominal size and
    // content key are untouched, so no probe fires — the oracle's view of
    // which (var, version) is held does not change.
    account(c, -1);
    c.data = std::move(data);
    c.stored_bytes = stored_bytes;
    account(c, +1);
    return true;
  }
  return false;
}

std::vector<Chunk> ObjectStore::chunks_of(const std::string& var,
                                          Version version) const {
  auto vit = store_.find(var);
  if (vit == store_.end()) return {};
  auto it = vit->second.find(version);
  if (it == vit->second.end()) return {};
  return it->second;
}

std::size_t ObjectStore::object_count() const {
  std::size_t n = 0;
  for (const auto& [var, versions] : store_) {
    for (const auto& [version, chunks] : versions) n += chunks.size();
  }
  return n;
}

}  // namespace dstage::staging
