// Tenant namespacing for the staging fabric. Every ObjectStore / DataLog
// key a multi-tenant run touches is namespaced through tenant_key(), so two
// workflows sharing one staging group can never collide on a variable name
// and every per-var mechanism (GC watermarks, spill indices, rollback
// predicates) becomes per-tenant for free. The default tenant (0) maps to
// the bare variable name, which keeps every single-tenant code path — and
// every golden trace digest — byte-identical.
//
// These three helpers are the ONLY legal way to build or split a tenant-
// qualified key; CI lints src/staging + src/wlog for the separator byte
// appearing anywhere else.
#pragma once

#include <string>

#include "net/message.hpp"

namespace dstage::staging {

/// The implicit tenant of every pre-multi-tenant caller.
inline constexpr net::TenantId kDefaultTenant = 0;

/// Separator between the tenant prefix and the logical variable name.
/// A non-printable byte (ASCII unit separator) that cannot appear in a
/// spec-declared variable name, so base_var()/tenant_of() are unambiguous.
inline constexpr char kTenantSep = '\x1f';

/// Storage key of `var` under tenant `t`. Identity for the default tenant.
[[nodiscard]] std::string tenant_key(net::TenantId t, const std::string& var);

/// The tenant a storage key belongs to (kDefaultTenant for bare names).
[[nodiscard]] net::TenantId tenant_of(const std::string& key);

/// The logical variable name with any tenant prefix stripped.
[[nodiscard]] std::string base_var(const std::string& key);

}  // namespace dstage::staging
