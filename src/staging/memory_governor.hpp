// Per-server memory governor. A staging deployment has a fixed allocation,
// but the data log's retention is driven by consumer progress, not by the
// producer — so bounding memory needs three cooperating mechanisms:
//
//   soft watermark  → urgent GC sweep, then spill the coldest
//                     reclaim-ineligible log versions to the PFS gateway;
//   hard watermark  → admission control: puts get a typed RetryLater
//                     response the client's retry loop honors as
//                     backpressure;
//   oversized put   → a single put larger than the hard watermark is
//                     admitted anyway (rejecting it forever would livelock
//                     the workflow) and counted as a governor overrun.
//
// The governed footprint is store + log payload + event-queue metadata —
// redundancy fragments held on peers' behalf are the peers' budget problem.
// A budget of 0 disables the governor entirely (the default; the Table II
// golden digests are recorded without it).
#pragma once

#include <cstdint>
#include <map>

namespace dstage::staging {

struct GovernorParams {
  /// Per-server budget in nominal bytes; 0 disables the governor.
  std::uint64_t memory_budget = 0;
  /// Crossing soft_watermark * budget triggers an urgent GC sweep + spill.
  double soft_watermark = 0.70;
  /// Crossing hard_watermark * budget rejects new puts with RetryLater.
  double hard_watermark = 0.90;
  /// Weighted fair-share multi-tenancy: tenant id → weight. Empty (the
  /// default) keeps the single pooled budget and byte-identical behavior.
  /// Non-empty splits the hard/soft watermarks into per-tenant shares of
  /// hard_bytes × w/Σw, so admission rejects only tenants over their own
  /// share (Σ shares = hard_bytes keeps the global footprint bounded).
  /// Every tenant of the run must appear; an unlisted tenant falls back to
  /// the full pooled watermark.
  std::map<int, double> tenant_weights;
};

class MemoryGovernor {
 public:
  enum class Admission {
    kAdmit,         // under the hard watermark (or governor disabled)
    kAdmitOverrun,  // single put larger than the hard watermark: let it in
    kReject,        // over the hard watermark: RetryLater
  };

  explicit MemoryGovernor(GovernorParams params) : params_(params) {}

  [[nodiscard]] bool enabled() const { return params_.memory_budget > 0; }
  [[nodiscard]] std::uint64_t budget() const { return params_.memory_budget; }
  [[nodiscard]] std::uint64_t soft_bytes() const {
    return scaled(params_.soft_watermark);
  }
  [[nodiscard]] std::uint64_t hard_bytes() const {
    return scaled(params_.hard_watermark);
  }

  /// Governed bytes as a fraction of the budget (pressure gauge; 0 when
  /// the governor is off).
  [[nodiscard]] double pressure(std::uint64_t governed) const {
    if (!enabled()) return 0;
    return static_cast<double>(governed) /
           static_cast<double>(params_.memory_budget);
  }

  [[nodiscard]] bool over_soft(std::uint64_t governed) const {
    return enabled() && governed > soft_bytes();
  }

  /// True when a minimal put would still be admitted at this footprint
  /// (i.e. we are under the hard watermark, or the governor is off).
  [[nodiscard]] bool admitting(std::uint64_t governed) const {
    return !enabled() || governed < hard_bytes();
  }

  /// Admission decision for a put that would add `incoming` governed bytes
  /// on top of the current `governed` footprint.
  [[nodiscard]] Admission admit(std::uint64_t governed,
                                std::uint64_t incoming) const;

  /// True when weighted fair-share admission is active (governor on and
  /// tenant weights configured).
  [[nodiscard]] bool fair_share() const {
    return enabled() && !params_.tenant_weights.empty();
  }
  /// `tenant`'s slice of the hard watermark: hard_bytes × w/Σw. Unlisted
  /// tenants get the full pooled hard watermark.
  [[nodiscard]] std::uint64_t share_bytes(int tenant) const;
  /// `tenant`'s slice of the soft watermark (spill-victim preference).
  [[nodiscard]] std::uint64_t soft_share_bytes(int tenant) const;
  /// True when `tenant_governed` exceeds the tenant's soft share — the
  /// tenant is the one memory maintenance should evict from first.
  [[nodiscard]] bool over_share(int tenant,
                                std::uint64_t tenant_governed) const {
    return fair_share() && tenant_governed > soft_share_bytes(tenant);
  }
  /// Per-tenant admission, applied on top of (never instead of) the pooled
  /// admit(): a put must fit both the global hard watermark and its own
  /// tenant's share, so one tenant's backlog can only ever bounce that
  /// tenant's writers. Oversized-put livelock avoidance applies per share.
  [[nodiscard]] Admission admit_tenant(int tenant,
                                       std::uint64_t tenant_governed,
                                       std::uint64_t incoming) const;

 private:
  [[nodiscard]] std::uint64_t scaled(double fraction) const {
    return static_cast<std::uint64_t>(
        static_cast<double>(params_.memory_budget) * fraction);
  }

  GovernorParams params_;
};

}  // namespace dstage::staging
