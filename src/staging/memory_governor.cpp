#include "staging/memory_governor.hpp"

namespace dstage::staging {

MemoryGovernor::Admission MemoryGovernor::admit(std::uint64_t governed,
                                                std::uint64_t incoming) const {
  if (!enabled()) return Admission::kAdmit;
  if (governed + incoming <= hard_bytes()) return Admission::kAdmit;
  // A put that cannot fit even into an empty server would be rejected on
  // every retry; admit it loudly instead of livelocking the producer.
  if (incoming > hard_bytes()) return Admission::kAdmitOverrun;
  return Admission::kReject;
}

namespace {
std::uint64_t weighted_slice(const std::map<int, double>& weights, int tenant,
                             std::uint64_t whole) {
  const auto it = weights.find(tenant);
  if (it == weights.end()) return whole;
  double sum = 0;
  for (const auto& [t, w] : weights) sum += w;
  if (sum <= 0) return whole;
  return static_cast<std::uint64_t>(static_cast<double>(whole) *
                                    (it->second / sum));
}
}  // namespace

std::uint64_t MemoryGovernor::share_bytes(int tenant) const {
  return weighted_slice(params_.tenant_weights, tenant, hard_bytes());
}

std::uint64_t MemoryGovernor::soft_share_bytes(int tenant) const {
  return weighted_slice(params_.tenant_weights, tenant, soft_bytes());
}

MemoryGovernor::Admission MemoryGovernor::admit_tenant(
    int tenant, std::uint64_t tenant_governed, std::uint64_t incoming) const {
  if (!fair_share()) return Admission::kAdmit;
  const std::uint64_t share = share_bytes(tenant);
  if (tenant_governed + incoming <= share) return Admission::kAdmit;
  if (incoming > share) return Admission::kAdmitOverrun;
  return Admission::kReject;
}

}  // namespace dstage::staging
