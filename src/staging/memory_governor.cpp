#include "staging/memory_governor.hpp"

namespace dstage::staging {

MemoryGovernor::Admission MemoryGovernor::admit(std::uint64_t governed,
                                                std::uint64_t incoming) const {
  if (!enabled()) return Admission::kAdmit;
  if (governed + incoming <= hard_bytes()) return Admission::kAdmit;
  // A put that cannot fit even into an empty server would be rejected on
  // every retry; admit it loudly instead of livelocking the producer.
  if (incoming > hard_bytes()) return Admission::kAdmitOverrun;
  return Admission::kReject;
}

}  // namespace dstage::staging
