#include "staging/client.hpp"

#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/spawn.hpp"
#include "staging/degraded_read.hpp"
#include "staging/tenant.hpp"

namespace dstage::staging {

namespace {
/// Bound on wrong_epoch refresh/re-place rounds per request. Each round
/// re-snapshots the placement map, so a request can only keep bouncing if
/// membership churns faster than the client can follow — a configuration
/// error worth failing loudly on, not retrying forever.
constexpr int kMaxEpochRounds = 8;
}  // namespace

StagingClient::StagingClient(cluster::Cluster& cluster,
                             const dht::SpatialIndex& index,
                             std::vector<cluster::VprocId> servers,
                             cluster::VprocId self, ClientParams params)
    : cluster_(&cluster),
      index_(&index),
      servers_(std::move(servers)),
      self_(self),
      params_(params),
      rpc_(cluster.fabric(), cluster.vproc(self).endpoint) {}

net::EndpointId StagingClient::server_endpoint(int server) const {
  return cluster_->vproc(servers_[static_cast<std::size_t>(server)]).endpoint;
}

void StagingClient::fail_if_degraded(int server) const {
  if (degraded_probe_ && degraded_probe_(server)) {
    throw std::runtime_error("staging degraded: server " +
                             std::to_string(server) + " unrecovered");
  }
}

sim::Task<PutResponse> StagingClient::send_put(sim::Ctx ctx, int server,
                                               Chunk chunk) {
  fail_if_degraded(server);
  PutRequest req;
  req.app = params_.app;
  req.chunk = std::move(chunk);
  req.logged = params_.logged;
  req.tenant = params_.tenant;
  try {
    co_return co_await rpc_.call(ctx, server_endpoint(server), std::move(req),
                                 put_policy());
  } catch (const std::runtime_error&) {
    // Retries exhausted: distinguish "the server is gone for good" from a
    // transient stall before re-surfacing.
    fail_if_degraded(server);
    throw;
  }
}

sim::Task<BatchPutResponse> StagingClient::send_batch(
    sim::Ctx ctx, int server, std::vector<Chunk> chunks) {
  fail_if_degraded(server);
  BatchPut req;
  req.app = params_.app;
  req.logged = params_.logged;
  req.chunks = std::move(chunks);
  req.tenant = params_.tenant;
  try {
    co_return co_await rpc_.call(ctx, server_endpoint(server), std::move(req),
                                 put_policy());
  } catch (const std::runtime_error&) {
    fail_if_degraded(server);
    throw;
  }
}

sim::Task<BatchPutResponse> StagingClient::send_batch_admitted(
    sim::Ctx ctx, int server, std::vector<Chunk> chunks, PutResult* result) {
  BatchPutResponse merged;
  merged.results.resize(chunks.size());
  // Slot i of the current round maps back to slots[i] of the original batch.
  std::vector<std::size_t> slots(chunks.size());
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i] = i;

  const net::RetryPolicy policy = put_policy();
  int rounds = 0;
  while (!chunks.empty()) {
    BatchPutResponse resp = co_await send_batch(ctx, server, chunks);
    std::vector<Chunk> rejected;
    std::vector<std::size_t> rejected_slots;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const PutResponse& r = resp.results[i];
      if (r.retry_later) {
        rejected.push_back(std::move(chunks[i]));
        rejected_slots.push_back(slots[i]);
      } else {
        merged.results[slots[i]] = r;
      }
    }
    if (rejected.empty()) break;
    // A partially admitted batch must not ack as fully durable: keep
    // re-sending the bounced remainder (alone) with an escalating backoff,
    // mirroring the transport's single-put backpressure loop.
    if (++rounds > policy.max_backpressure_retries) {
      throw std::runtime_error(
          "rpc batch_put rejected by memory governor after retries");
    }
    const std::int64_t base = policy.backoff.ns > 0
                                  ? policy.backoff.ns
                                  : net::kBackpressureBackoff.ns;
    const int shift = rounds - 1 < 16 ? rounds - 1 : 16;
    co_await ctx.delay(sim::Duration{base << shift});
    result->backpressure_resends += rejected.size();
    ++result->messages;
    chunks = std::move(rejected);
    slots = std::move(rejected_slots);
  }
  co_return merged;
}

sim::Task<GetResponse> StagingClient::send_get(sim::Ctx ctx, int server,
                                               ObjectDesc desc) {
  fail_if_degraded(server);
  GetRequest req;
  req.app = params_.app;
  req.desc = std::move(desc);
  req.logged = params_.logged;
  req.tenant = params_.tenant;
  try {
    co_return co_await rpc_.call(ctx, server_endpoint(server), std::move(req),
                                 get_policy());
  } catch (const std::runtime_error&) {
    fail_if_degraded(server);
    throw;
  }
}

sim::Task<PutResult> StagingClient::put_impl(sim::Ctx ctx, std::string var,
                                             Version version, Box region) {
  // Namespace before any placement or send: servers, logs, GC watermarks
  // and spill indices all key on the tenant-qualified name. Identity for
  // the default tenant.
  var = tenant_key(params_.tenant, var);
  if (elastic()) {
    co_return co_await put_elastic(ctx, std::move(var), version, region);
  }
  const sim::TimePoint start = ctx.now();
  ++puts_issued_;
  PutResult result;

  if (params_.batching) {
    // Coalesce: all chunks bound for the same server travel as one
    // BatchPut, paying the fabric's per-message overhead once.
    std::vector<std::pair<int, std::vector<Chunk>>> groups;
    for (const dht::Placement& placement : index_->place(region)) {
      auto group = groups.end();
      for (auto it = groups.begin(); it != groups.end(); ++it) {
        if (it->first == placement.server) {
          group = it;
          break;
        }
      }
      if (group == groups.end()) {
        groups.emplace_back(placement.server, std::vector<Chunk>{});
        group = groups.end() - 1;
      }
      for (const Box& piece : placement.pieces) {
        Chunk chunk = make_chunk(var, version, piece, params_.bytes_per_point,
                                 params_.mem_scale);
        result.nominal_bytes += chunk.nominal_bytes;
        ++result.pieces;
        group->second.push_back(std::move(chunk));
      }
    }
    std::vector<sim::Task<BatchPutResponse>> sends;
    for (auto& [server, chunks] : groups) {
      ++result.messages;
      sends.push_back(
          send_batch_admitted(ctx, server, std::move(chunks), &result));
    }
    auto responses = co_await sim::when_all(ctx, std::move(sends));
    for (const BatchPutResponse& batch : responses) {
      for (const PutResponse& r : batch.results) {
        if (r.suppressed) ++result.suppressed;
      }
    }
    result.response_time = ctx.now() - start;
    co_return result;
  }

  std::vector<sim::Task<PutResponse>> sends;
  for (const dht::Placement& placement : index_->place(region)) {
    for (const Box& piece : placement.pieces) {
      Chunk chunk = make_chunk(var, version, piece, params_.bytes_per_point,
                               params_.mem_scale);
      result.nominal_bytes += chunk.nominal_bytes;
      ++result.pieces;
      ++result.messages;
      sends.push_back(send_put(ctx, placement.server, std::move(chunk)));
    }
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));
  for (const PutResponse& r : responses) {
    if (r.suppressed) ++result.suppressed;
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<GetResult> StagingClient::get_impl(sim::Ctx ctx, std::string var,
                                             Version version, Box region) {
  var = tenant_key(params_.tenant, var);
  if (elastic()) {
    co_return co_await get_elastic(ctx, std::move(var), version, region);
  }
  const sim::TimePoint start = ctx.now();
  ++gets_issued_;
  GetResult result;

  std::vector<sim::Task<GetResponse>> sends;
  for (const dht::Placement& placement : index_->place(region)) {
    for (const Box& piece : placement.pieces) {
      ObjectDesc desc{var, version, piece};
      sends.push_back(send_get(ctx, placement.server, std::move(desc)));
    }
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));
  for (GetResponse& r : responses) {
    result.any_from_log |= r.from_log;
    for (Chunk& piece : r.pieces) {
      result.nominal_bytes += piece.nominal_bytes;
      switch (check_chunk(piece, var, version)) {
        case ChunkCheck::kOk:
          break;
        case ChunkCheck::kWrongVersion:
          ++result.wrong_version;
          break;
        case ChunkCheck::kCorrupt:
          ++result.corrupt;
          break;
      }
      result.pieces.push_back(std::move(piece));
    }
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<std::uint64_t> StagingClient::workflow_check(sim::Ctx ctx,
                                                       Version version,
                                                       bool durable) {
  std::vector<sim::Task<CheckpointAck>> sends;
  for (int s : fanout_targets()) {
    CheckpointEvent ev;
    ev.app = params_.app;
    ev.version = version;
    ev.durable = durable;
    ev.tenant = params_.tenant;
    sends.push_back(rpc_.call(ctx, server_endpoint(s), std::move(ev)));
  }
  auto acks = co_await sim::when_all(ctx, std::move(sends));
  std::uint64_t max_id = 0;
  for (const CheckpointAck& a : acks) max_id = std::max(max_id, a.chk_id);
  co_return max_id;
}

sim::Task<void> StagingClient::ckpt_announce(sim::Ctx ctx, Version version,
                                             std::uint64_t parity_bytes,
                                             net::EndpointId drain_ep) {
  co_await rpc_.send(ctx, drain_ep,
                     net::Message{CkptStoreLocal{params_.app, version}});
  co_await rpc_.send(
      ctx, drain_ep,
      net::Message{CkptXorShard{params_.app, version, parity_bytes}});
}

sim::Task<std::size_t> StagingClient::workflow_restart(
    sim::Ctx ctx, Version restored_version) {
  // Re-initialize the staging client: rebuild RDMA connections to every
  // server before the recovery notification goes out.
  co_await ctx.delay(params_.reconnect_cost);

  std::vector<sim::Task<RecoveryAck>> sends;
  for (int s : fanout_targets()) {
    RecoveryEvent ev;
    ev.app = params_.app;
    ev.restored_version = restored_version;
    ev.tenant = params_.tenant;
    sends.push_back(rpc_.call(ctx, server_endpoint(s), std::move(ev)));
  }
  auto acks = co_await sim::when_all(ctx, std::move(sends));
  std::size_t total = 0;
  for (const RecoveryAck& a : acks) total += a.replay_events;
  co_return total;
}

sim::Task<QueryResult> StagingClient::query_impl(sim::Ctx ctx,
                                                 std::string var) {
  var = tenant_key(params_.tenant, var);
  std::vector<sim::Task<QueryResponse>> sends;
  for (int s : fanout_targets()) {
    QueryRequest req;
    req.var = var;
    req.tenant = params_.tenant;
    sends.push_back(rpc_.call(ctx, server_endpoint(s), std::move(req)));
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));

  QueryResult result;
  std::map<Version, std::size_t> log_counts;
  std::set<Version> available;
  for (const QueryResponse& r : responses) {
    available.insert(r.store_versions.begin(), r.store_versions.end());
    for (Version v : r.logged_versions) ++log_counts[v];
  }
  result.available.assign(available.begin(), available.end());
  for (const auto& [v, n] : log_counts) {
    if (n == responses.size()) result.fully_logged.push_back(v);
  }
  co_return result;
}

sim::Task<void> StagingClient::rollback_staging(sim::Ctx ctx, Version version,
                                                net::TenantId tenant) {
  std::vector<sim::Task<RollbackAck>> sends;
  for (int s : fanout_targets()) {
    RollbackRequest req;
    req.version = version;
    req.tenant = tenant;
    sends.push_back(rpc_.call(ctx, server_endpoint(s), std::move(req)));
  }
  co_await sim::when_all(ctx, std::move(sends));
}

void StagingClient::ensure_view() {
  if (!view_.valid()) view_ = index_->snapshot();
}

std::vector<int> StagingClient::fanout_targets() const {
  // In elastic mode workflow events follow the live active set: retired
  // standbys are drained and joiners must see checkpoints so their GC
  // watermarks advance. Otherwise: every server, in index order (the
  // pre-elastic broadcast, byte-identical traffic).
  if (elastic()) return index_->active_servers();
  std::vector<int> all(servers_.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

sim::Task<void> StagingClient::refresh_view(sim::Ctx ctx) {
  if (group_ep_ < 0) {
    view_ = index_->snapshot();
    co_return;
  }
  MembershipQuery query;
  MembershipInfo info =
      co_await rpc_.call(ctx, group_ep_, std::move(query), get_policy());
  // The round-trip models fetching the view from the GroupManager; the
  // snapshot is the authoritative owner map for (at least) info.epoch.
  view_ = index_->snapshot();
  ++epoch_refreshes_;
  (void)info;
}

sim::Task<PutResult> StagingClient::put_elastic(sim::Ctx ctx, std::string var,
                                               Version version, Box region) {
  const sim::TimePoint start = ctx.now();
  ++puts_issued_;
  PutResult result;
  ensure_view();

  std::vector<Box> todo{region};
  int rounds = 0;
  while (!todo.empty()) {
    if (++rounds > kMaxEpochRounds) {
      throw std::runtime_error(
          "staging put: membership refresh retries exhausted");
    }
    // Place the outstanding boxes through the cached view, grouped per
    // server so the batching path coalesces exactly as the static one.
    std::vector<int> servers;
    std::vector<std::vector<Box>> boxes;
    std::vector<std::vector<std::uint64_t>> nominals;
    std::vector<std::vector<Chunk>> chunks;
    for (const Box& box : todo) {
      for (const dht::Placement& placement : index_->place(box, view_)) {
        std::size_t g = 0;
        while (g < servers.size() && servers[g] != placement.server) ++g;
        if (g == servers.size()) {
          servers.push_back(placement.server);
          boxes.emplace_back();
          nominals.emplace_back();
          chunks.emplace_back();
        }
        for (const Box& piece : placement.pieces) {
          Chunk chunk = make_chunk(var, version, piece,
                                   params_.bytes_per_point, params_.mem_scale);
          boxes[g].push_back(piece);
          nominals[g].push_back(chunk.nominal_bytes);
          chunks[g].push_back(std::move(chunk));
        }
      }
    }
    todo.clear();

    std::vector<BatchPutResponse> responses;
    if (params_.batching) {
      std::vector<sim::Task<BatchPutResponse>> sends;
      for (std::size_t g = 0; g < servers.size(); ++g) {
        ++result.messages;
        sends.push_back(
            send_batch_admitted(ctx, servers[g], std::move(chunks[g]),
                                &result));
      }
      responses = co_await sim::when_all(ctx, std::move(sends));
    } else {
      std::vector<sim::Task<PutResponse>> sends;
      for (std::size_t g = 0; g < servers.size(); ++g) {
        for (Chunk& chunk : chunks[g]) {
          ++result.messages;
          sends.push_back(send_put(ctx, servers[g], std::move(chunk)));
        }
      }
      auto flat = co_await sim::when_all(ctx, std::move(sends));
      responses.resize(servers.size());
      std::size_t i = 0;
      for (std::size_t g = 0; g < servers.size(); ++g) {
        for (std::size_t j = 0; j < boxes[g].size(); ++j) {
          responses[g].results.push_back(flat[i++]);
        }
      }
    }

    bool refresh = false;
    for (std::size_t g = 0; g < servers.size(); ++g) {
      for (std::size_t j = 0; j < responses[g].results.size(); ++j) {
        const PutResponse& r = responses[g].results[j];
        if (r.wrong_epoch) {
          // The cell moved under us: re-place just this piece against the
          // refreshed view. Admitted siblings stay admitted.
          todo.push_back(boxes[g][j]);
          ++result.wrong_epoch_retries;
          refresh = true;
          continue;
        }
        result.nominal_bytes += nominals[g][j];
        ++result.pieces;
        if (r.suppressed) ++result.suppressed;
      }
    }
    if (refresh) co_await refresh_view(ctx);
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<StagingClient::PieceOutcome> StagingClient::get_piece_guarded(
    sim::Ctx ctx, int server, ObjectDesc desc) {
  PieceOutcome out;
  try {
    out.resp = co_await send_get(ctx, server, std::move(desc));
    if (out.resp.wrong_epoch) out.status = PieceOutcome::Status::kWrongEpoch;
  } catch (const DataLossError&) {
    throw;
  } catch (const std::runtime_error&) {
    // Only the degraded-server error is recoverable (via fragment
    // reconstruction); anything else re-surfaces.
    if (degraded_reads_ && degraded_probe_ && degraded_probe_(server) &&
        policy_.kind != resilience::Redundancy::kNone) {
      out.status = PieceOutcome::Status::kDegraded;
    } else {
      throw;
    }
  }
  co_return out;
}

sim::Task<std::vector<Chunk>> StagingClient::degraded_fetch(sim::Ctx ctx,
                                                            int owner,
                                                            std::string var,
                                                            Version version,
                                                            Box piece) {
  // Gather whatever fragments the surviving peers hold for the owner.
  // Peers that are themselves down are skipped — reconstruction succeeds
  // from any k survivors (RS) or any replica.
  std::vector<FragmentPut> fragments;
  for (int s : fanout_targets()) {
    if (s == owner) continue;
    if (degraded_probe_ && degraded_probe_(s)) continue;
    FragmentFetch fetch;
    fetch.owner = owner;
    fetch.var = var;
    fetch.version = version;
    try {
      FragmentFetchResponse resp = co_await rpc_.call(
          ctx, server_endpoint(s), std::move(fetch), get_policy());
      for (FragmentPut& f : resp.fragments) fragments.push_back(std::move(f));
    } catch (const std::runtime_error&) {
      // Unreachable peer: reconstruct from whoever answered.
    }
  }
  ObjectDesc desc{std::move(var), version, piece};
  DegradedReconstruction rec =
      reconstruct_from_fragments(fragments, desc, policy_);
  // Decoding the survivors costs what encoding them did.
  co_await ctx.delay(policy_.encode_time(rec.nominal_bytes));
  ++degraded_read_count_;
  co_return std::move(rec.pieces);
}

sim::Task<GetResult> StagingClient::get_elastic(sim::Ctx ctx, std::string var,
                                               Version version, Box region) {
  const sim::TimePoint start = ctx.now();
  ++gets_issued_;
  GetResult result;
  ensure_view();

  auto accumulate = [&](Chunk piece) {
    result.nominal_bytes += piece.nominal_bytes;
    switch (check_chunk(piece, var, version)) {
      case ChunkCheck::kOk:
        break;
      case ChunkCheck::kWrongVersion:
        ++result.wrong_version;
        break;
      case ChunkCheck::kCorrupt:
        ++result.corrupt;
        break;
    }
    result.pieces.push_back(std::move(piece));
  };

  std::vector<Box> todo{region};
  int rounds = 0;
  while (!todo.empty()) {
    if (++rounds > kMaxEpochRounds) {
      throw std::runtime_error(
          "staging get: membership refresh retries exhausted");
    }
    std::vector<int> targets;
    std::vector<Box> pieces;
    for (const Box& box : todo) {
      for (const dht::Placement& placement : index_->place(box, view_)) {
        for (const Box& piece : placement.pieces) {
          targets.push_back(placement.server);
          pieces.push_back(piece);
        }
      }
    }
    todo.clear();

    std::vector<sim::Task<PieceOutcome>> sends;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ObjectDesc desc{var, version, pieces[i]};
      sends.push_back(get_piece_guarded(ctx, targets[i], std::move(desc)));
    }
    auto outcomes = co_await sim::when_all(ctx, std::move(sends));

    bool refresh = false;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      PieceOutcome& o = outcomes[i];
      switch (o.status) {
        case PieceOutcome::Status::kOk:
          result.any_from_log |= o.resp.from_log;
          for (Chunk& piece : o.resp.pieces) accumulate(std::move(piece));
          break;
        case PieceOutcome::Status::kWrongEpoch:
          todo.push_back(pieces[i]);
          ++result.wrong_epoch_retries;
          refresh = true;
          break;
        case PieceOutcome::Status::kDegraded: {
          auto rebuilt =
              co_await degraded_fetch(ctx, targets[i], var, version,
                                      pieces[i]);
          ++result.degraded_pieces;
          for (Chunk& piece : rebuilt) accumulate(std::move(piece));
          break;
        }
      }
    }
    if (refresh) co_await refresh_view(ctx);
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

}  // namespace dstage::staging
