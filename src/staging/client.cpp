#include "staging/client.hpp"

#include <map>
#include <set>
#include <utility>

#include "sim/spawn.hpp"

namespace dstage::staging {

StagingClient::StagingClient(cluster::Cluster& cluster,
                             const dht::SpatialIndex& index,
                             std::vector<cluster::VprocId> servers,
                             cluster::VprocId self, ClientParams params)
    : cluster_(&cluster),
      index_(&index),
      servers_(std::move(servers)),
      self_(self),
      params_(params),
      rpc_(cluster.fabric(), cluster.vproc(self).endpoint) {}

net::EndpointId StagingClient::server_endpoint(int server) const {
  return cluster_->vproc(servers_[static_cast<std::size_t>(server)]).endpoint;
}

sim::Task<PutResponse> StagingClient::send_put(sim::Ctx ctx, int server,
                                               Chunk chunk) {
  PutRequest req;
  req.app = params_.app;
  req.chunk = std::move(chunk);
  req.logged = params_.logged;
  return rpc_.call(ctx, server_endpoint(server), std::move(req),
                   put_policy());
}

sim::Task<BatchPutResponse> StagingClient::send_batch(
    sim::Ctx ctx, int server, std::vector<Chunk> chunks) {
  BatchPut req;
  req.app = params_.app;
  req.logged = params_.logged;
  req.chunks = std::move(chunks);
  return rpc_.call(ctx, server_endpoint(server), std::move(req),
                   put_policy());
}

sim::Task<GetResponse> StagingClient::send_get(sim::Ctx ctx, int server,
                                               ObjectDesc desc) {
  GetRequest req;
  req.app = params_.app;
  req.desc = std::move(desc);
  req.logged = params_.logged;
  return rpc_.call(ctx, server_endpoint(server), std::move(req),
                   get_policy());
}

sim::Task<PutResult> StagingClient::put_impl(sim::Ctx ctx, std::string var,
                                             Version version, Box region) {
  const sim::TimePoint start = ctx.now();
  ++puts_issued_;
  PutResult result;

  if (params_.batching) {
    // Coalesce: all chunks bound for the same server travel as one
    // BatchPut, paying the fabric's per-message overhead once.
    std::vector<std::pair<int, std::vector<Chunk>>> groups;
    for (const dht::Placement& placement : index_->place(region)) {
      auto group = groups.end();
      for (auto it = groups.begin(); it != groups.end(); ++it) {
        if (it->first == placement.server) {
          group = it;
          break;
        }
      }
      if (group == groups.end()) {
        groups.emplace_back(placement.server, std::vector<Chunk>{});
        group = groups.end() - 1;
      }
      for (const Box& piece : placement.pieces) {
        Chunk chunk = make_chunk(var, version, piece, params_.bytes_per_point,
                                 params_.mem_scale);
        result.nominal_bytes += chunk.nominal_bytes;
        ++result.pieces;
        group->second.push_back(std::move(chunk));
      }
    }
    std::vector<sim::Task<BatchPutResponse>> sends;
    for (auto& [server, chunks] : groups) {
      ++result.messages;
      sends.push_back(send_batch(ctx, server, std::move(chunks)));
    }
    auto responses = co_await sim::when_all(ctx, std::move(sends));
    for (const BatchPutResponse& batch : responses) {
      for (const PutResponse& r : batch.results) {
        if (r.suppressed) ++result.suppressed;
      }
    }
    result.response_time = ctx.now() - start;
    co_return result;
  }

  std::vector<sim::Task<PutResponse>> sends;
  for (const dht::Placement& placement : index_->place(region)) {
    for (const Box& piece : placement.pieces) {
      Chunk chunk = make_chunk(var, version, piece, params_.bytes_per_point,
                               params_.mem_scale);
      result.nominal_bytes += chunk.nominal_bytes;
      ++result.pieces;
      ++result.messages;
      sends.push_back(send_put(ctx, placement.server, std::move(chunk)));
    }
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));
  for (const PutResponse& r : responses) {
    if (r.suppressed) ++result.suppressed;
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<GetResult> StagingClient::get_impl(sim::Ctx ctx, std::string var,
                                             Version version, Box region) {
  const sim::TimePoint start = ctx.now();
  ++gets_issued_;
  GetResult result;

  std::vector<sim::Task<GetResponse>> sends;
  for (const dht::Placement& placement : index_->place(region)) {
    for (const Box& piece : placement.pieces) {
      ObjectDesc desc{var, version, piece};
      sends.push_back(send_get(ctx, placement.server, std::move(desc)));
    }
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));
  for (GetResponse& r : responses) {
    result.any_from_log |= r.from_log;
    for (Chunk& piece : r.pieces) {
      result.nominal_bytes += piece.nominal_bytes;
      switch (check_chunk(piece, var, version)) {
        case ChunkCheck::kOk:
          break;
        case ChunkCheck::kWrongVersion:
          ++result.wrong_version;
          break;
        case ChunkCheck::kCorrupt:
          ++result.corrupt;
          break;
      }
      result.pieces.push_back(std::move(piece));
    }
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<std::uint64_t> StagingClient::workflow_check(sim::Ctx ctx,
                                                       Version version,
                                                       bool durable) {
  std::vector<sim::Task<CheckpointAck>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    CheckpointEvent ev;
    ev.app = params_.app;
    ev.version = version;
    ev.durable = durable;
    sends.push_back(rpc_.call(ctx, server_endpoint(static_cast<int>(s)),
                              std::move(ev)));
  }
  auto acks = co_await sim::when_all(ctx, std::move(sends));
  std::uint64_t max_id = 0;
  for (const CheckpointAck& a : acks) max_id = std::max(max_id, a.chk_id);
  co_return max_id;
}

sim::Task<std::size_t> StagingClient::workflow_restart(
    sim::Ctx ctx, Version restored_version) {
  // Re-initialize the staging client: rebuild RDMA connections to every
  // server before the recovery notification goes out.
  co_await ctx.delay(params_.reconnect_cost);

  std::vector<sim::Task<RecoveryAck>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    RecoveryEvent ev;
    ev.app = params_.app;
    ev.restored_version = restored_version;
    sends.push_back(rpc_.call(ctx, server_endpoint(static_cast<int>(s)),
                              std::move(ev)));
  }
  auto acks = co_await sim::when_all(ctx, std::move(sends));
  std::size_t total = 0;
  for (const RecoveryAck& a : acks) total += a.replay_events;
  co_return total;
}

sim::Task<QueryResult> StagingClient::query_impl(sim::Ctx ctx,
                                                 std::string var) {
  std::vector<sim::Task<QueryResponse>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    QueryRequest req;
    req.var = var;
    sends.push_back(rpc_.call(ctx, server_endpoint(static_cast<int>(s)),
                              std::move(req)));
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));

  QueryResult result;
  std::map<Version, std::size_t> log_counts;
  std::set<Version> available;
  for (const QueryResponse& r : responses) {
    available.insert(r.store_versions.begin(), r.store_versions.end());
    for (Version v : r.logged_versions) ++log_counts[v];
  }
  result.available.assign(available.begin(), available.end());
  for (const auto& [v, n] : log_counts) {
    if (n == responses.size()) result.fully_logged.push_back(v);
  }
  co_return result;
}

sim::Task<void> StagingClient::rollback_staging(sim::Ctx ctx,
                                                Version version) {
  std::vector<sim::Task<RollbackAck>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    RollbackRequest req;
    req.version = version;
    sends.push_back(rpc_.call(ctx, server_endpoint(static_cast<int>(s)),
                              std::move(req)));
  }
  co_await sim::when_all(ctx, std::move(sends));
}

}  // namespace dstage::staging
