#include "staging/client.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "sim/spawn.hpp"

namespace dstage::staging {

StagingClient::StagingClient(cluster::Cluster& cluster,
                             const dht::SpatialIndex& index,
                             std::vector<cluster::VprocId> servers,
                             cluster::VprocId self, ClientParams params)
    : cluster_(&cluster),
      index_(&index),
      servers_(std::move(servers)),
      self_(self),
      params_(params) {}

net::EndpointId StagingClient::self_endpoint() const {
  return cluster_->vproc(self_).endpoint;
}

net::EndpointId StagingClient::server_endpoint(int server) const {
  return cluster_->vproc(servers_[static_cast<std::size_t>(server)]).endpoint;
}

sim::Task<PutResponse> StagingClient::send_put(sim::Ctx ctx, int server,
                                               Chunk chunk) {
  const std::uint64_t bytes = chunk.nominal_bytes + 128;
  for (int attempt = 0;; ++attempt) {
    auto reply = net::make_reply<PutResponse>(*ctx.eng);
    PutRequest req{params_.app, chunk, params_.logged, self_endpoint(),
                   reply};
    std::any payload = Request{std::move(req)};
    co_await cluster_->fabric().send(ctx, self_endpoint(),
                                     server_endpoint(server),
                                     std::move(payload), bytes);
    if (params_.put_timeout.ns <= 0) co_return co_await reply->take(ctx);
    auto resp = co_await reply->take_for(ctx, params_.put_timeout);
    if (resp) co_return std::move(*resp);
    if (attempt + 1 >= params_.max_retries)
      throw std::runtime_error("staging put timed out after retries");
  }
}

sim::Task<GetResponse> StagingClient::send_get(sim::Ctx ctx, int server,
                                               ObjectDesc desc) {
  for (int attempt = 0;; ++attempt) {
    auto reply = net::make_reply<GetResponse>(*ctx.eng);
    GetRequest req{params_.app, desc, params_.logged, self_endpoint(),
                   reply};
    std::any payload = Request{std::move(req)};
    co_await cluster_->fabric().send(ctx, self_endpoint(),
                                     server_endpoint(server),
                                     std::move(payload), 128);
    if (params_.get_timeout.ns <= 0) co_return co_await reply->take(ctx);
    auto resp = co_await reply->take_for(ctx, params_.get_timeout);
    if (resp) co_return std::move(*resp);
    if (attempt + 1 >= params_.max_retries)
      throw std::runtime_error("staging get timed out after retries");
  }
}

sim::Task<PutResult> StagingClient::put_impl(sim::Ctx ctx, std::string var,
                                             Version version, Box region) {
  const sim::TimePoint start = ctx.now();
  ++puts_issued_;
  PutResult result;

  std::vector<sim::Task<PutResponse>> sends;
  for (const dht::Placement& placement : index_->place(region)) {
    for (const Box& piece : placement.pieces) {
      Chunk chunk = make_chunk(var, version, piece, params_.bytes_per_point,
                               params_.mem_scale);
      result.nominal_bytes += chunk.nominal_bytes;
      ++result.pieces;
      sends.push_back(send_put(ctx, placement.server, std::move(chunk)));
    }
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));
  for (const PutResponse& r : responses) {
    if (r.suppressed) ++result.suppressed;
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<GetResult> StagingClient::get_impl(sim::Ctx ctx, std::string var,
                                             Version version, Box region) {
  const sim::TimePoint start = ctx.now();
  ++gets_issued_;
  GetResult result;

  std::vector<sim::Task<GetResponse>> sends;
  for (const dht::Placement& placement : index_->place(region)) {
    for (const Box& piece : placement.pieces) {
      ObjectDesc desc{var, version, piece};
      sends.push_back(send_get(ctx, placement.server, std::move(desc)));
    }
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));
  for (GetResponse& r : responses) {
    result.any_from_log |= r.from_log;
    for (Chunk& piece : r.pieces) {
      result.nominal_bytes += piece.nominal_bytes;
      switch (check_chunk(piece, var, version)) {
        case ChunkCheck::kOk:
          break;
        case ChunkCheck::kWrongVersion:
          ++result.wrong_version;
          break;
        case ChunkCheck::kCorrupt:
          ++result.corrupt;
          break;
      }
      result.pieces.push_back(std::move(piece));
    }
  }
  result.response_time = ctx.now() - start;
  co_return result;
}

sim::Task<std::uint64_t> StagingClient::workflow_check(sim::Ctx ctx,
                                                       Version version,
                                                       bool durable) {
  std::vector<sim::Task<CheckpointAck>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    sends.push_back([](StagingClient* self, sim::Ctx c, int server, Version v,
                       bool dur) -> sim::Task<CheckpointAck> {
      auto reply = net::make_reply<CheckpointAck>(*c.eng);
      CheckpointEvent ev{self->params_.app, v, self->self_endpoint(), reply,
                         dur};
      std::any payload = Request{std::move(ev)};
      co_await self->cluster_->fabric().send(
          c, self->self_endpoint(), self->server_endpoint(server),
          std::move(payload), 64);
      co_return co_await reply->take(c);
    }(this, ctx, static_cast<int>(s), version, durable));
  }
  auto acks = co_await sim::when_all(ctx, std::move(sends));
  std::uint64_t max_id = 0;
  for (const CheckpointAck& a : acks) max_id = std::max(max_id, a.chk_id);
  co_return max_id;
}

sim::Task<std::size_t> StagingClient::workflow_restart(
    sim::Ctx ctx, Version restored_version) {
  // Re-initialize the staging client: rebuild RDMA connections to every
  // server before the recovery notification goes out.
  co_await ctx.delay(params_.reconnect_cost);

  std::vector<sim::Task<RecoveryAck>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    sends.push_back([](StagingClient* self, sim::Ctx c, int server,
                       Version v) -> sim::Task<RecoveryAck> {
      auto reply = net::make_reply<RecoveryAck>(*c.eng);
      RecoveryEvent ev{self->params_.app, v, self->self_endpoint(), reply};
      std::any payload = Request{std::move(ev)};
      co_await self->cluster_->fabric().send(
          c, self->self_endpoint(), self->server_endpoint(server),
          std::move(payload), 64);
      co_return co_await reply->take(c);
    }(this, ctx, static_cast<int>(s), restored_version));
  }
  auto acks = co_await sim::when_all(ctx, std::move(sends));
  std::size_t total = 0;
  for (const RecoveryAck& a : acks) total += a.replay_events;
  co_return total;
}

sim::Task<QueryResult> StagingClient::query_impl(sim::Ctx ctx,
                                                 std::string var) {
  std::vector<sim::Task<QueryResponse>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    sends.push_back([](StagingClient* self, sim::Ctx c, int server,
                       std::string v) -> sim::Task<QueryResponse> {
      auto reply = net::make_reply<QueryResponse>(*c.eng);
      QueryRequest req{std::move(v), self->self_endpoint(), reply};
      std::any payload = Request{std::move(req)};
      co_await self->cluster_->fabric().send(
          c, self->self_endpoint(), self->server_endpoint(server),
          std::move(payload), 64);
      co_return co_await reply->take(c);
    }(this, ctx, static_cast<int>(s), var));
  }
  auto responses = co_await sim::when_all(ctx, std::move(sends));

  QueryResult result;
  std::map<Version, std::size_t> log_counts;
  std::set<Version> available;
  for (const QueryResponse& r : responses) {
    available.insert(r.store_versions.begin(), r.store_versions.end());
    for (Version v : r.logged_versions) ++log_counts[v];
  }
  result.available.assign(available.begin(), available.end());
  for (const auto& [v, n] : log_counts) {
    if (n == responses.size()) result.fully_logged.push_back(v);
  }
  co_return result;
}

sim::Task<void> StagingClient::rollback_staging(sim::Ctx ctx,
                                                Version version) {
  std::vector<sim::Task<RollbackAck>> sends;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    sends.push_back([](StagingClient* self, sim::Ctx c, int server,
                       Version v) -> sim::Task<RollbackAck> {
      auto reply = net::make_reply<RollbackAck>(*c.eng);
      RollbackRequest req{v, self->self_endpoint(), reply};
      std::any payload = Request{std::move(req)};
      co_await self->cluster_->fabric().send(
          c, self->self_endpoint(), self->server_endpoint(server),
          std::move(payload), 64);
      co_return co_await reply->take(c);
    }(this, ctx, static_cast<int>(s), version));
  }
  co_await sim::when_all(ctx, std::move(sends));
}

}  // namespace dstage::staging
