// Shared vocabulary of the staging service. The wire-facing types —
// geometric object descriptors (DataSpaces-style), payload chunks carrying
// real (scaled) bytes, and every request/response message — live in the
// net message layer (net/message.hpp) so the transport codec and the
// endpoints agree on one closed vocabulary; this header aliases them into
// the staging namespace and adds the payload-synthesis/verification
// helpers that are staging-side concerns.
#pragma once

#include <cstdint>
#include <string>

#include "net/message.hpp"
#include "util/checksum.hpp"
#include "util/geometry.hpp"

namespace dstage::staging {

using AppId = net::AppId;
using Version = net::Version;

using ObjectDesc = net::ObjectDesc;
using Chunk = net::Chunk;

using PutResponse = net::PutResponse;
using GetResponse = net::GetResponse;
using CheckpointAck = net::CheckpointAck;
using RecoveryAck = net::RecoveryAck;
using RollbackAck = net::RollbackAck;
using BatchPutResponse = net::BatchPutResponse;
using RecoveryPullResponse = net::RecoveryPullResponse;
using QueryResponse = net::QueryResponse;

using PutRequest = net::PutRequest;
using GetRequest = net::GetRequest;
using CheckpointEvent = net::CheckpointEvent;
using RecoveryEvent = net::RecoveryEvent;
using RollbackRequest = net::RollbackRequest;
using FragmentPut = net::FragmentPut;
using FragmentPrune = net::FragmentPrune;
using QueueBackup = net::QueueBackup;
using RecoveryPull = net::RecoveryPull;
using QueryRequest = net::QueryRequest;
using BatchPut = net::BatchPut;

using SpillAck = net::SpillAck;
using SpillFetchResponse = net::SpillFetchResponse;
using SpillPut = net::SpillPut;
using SpillFetch = net::SpillFetch;
using SpillPrune = net::SpillPrune;

using GroupChangeAck = net::GroupChangeAck;
using MembershipInfo = net::MembershipInfo;
using FragmentFetchResponse = net::FragmentFetchResponse;
using ResilverAck = net::ResilverAck;
using JoinGroup = net::JoinGroup;
using RetireServer = net::RetireServer;
using MembershipUpdate = net::MembershipUpdate;
using MembershipQuery = net::MembershipQuery;
using FragmentFetch = net::FragmentFetch;
using ResilverPut = net::ResilverPut;
using CkptStoreLocal = net::CkptStoreLocal;
using CkptXorShard = net::CkptXorShard;
using CkptDrainAck = net::CkptDrainAck;

/// Any staging message (historical name for net::Message).
using Request = net::Message;

/// Stable hash of a region, mixed into payload content keys.
std::uint64_t region_hash(const Box& b);

/// Content key identifying the unique byte stream for (var, version,
/// source region). Consumers recompute it to detect version anomalies.
std::uint64_t chunk_content_key(const std::string& var, Version version,
                                const Box& source_region);

/// Synthesizes a chunk whose bytes are the deterministic stream for
/// (var, version, region). `bytes_per_point` sets the nominal size;
/// `mem_scale` divides it down to the physically allocated size.
Chunk make_chunk(const std::string& var, Version version, const Box& region,
                 double bytes_per_point, std::uint64_t mem_scale);

/// Checks a chunk's bytes against its own key, and its key against the
/// expected (var, version): detects both corruption and the Fig.-2
/// wrong-version anomaly.
enum class ChunkCheck { kOk, kWrongVersion, kCorrupt };
ChunkCheck check_chunk(const Chunk& chunk, const std::string& expected_var,
                       Version expected_version);

}  // namespace dstage::staging
