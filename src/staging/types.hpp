// Shared vocabulary of the staging service: geometric object descriptors
// (DataSpaces-style), payload chunks carrying real (scaled) bytes, and the
// request/response messages exchanged between clients and servers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/fabric.hpp"
#include "util/checksum.hpp"
#include "util/geometry.hpp"

namespace dstage::staging {

using AppId = int;
using Version = std::uint32_t;

/// Geometric descriptor: a named, versioned region of the global domain.
struct ObjectDesc {
  std::string var;
  Version version = 0;
  Box region;

  friend bool operator==(const ObjectDesc&, const ObjectDesc&) = default;
};

/// Stable hash of a region, mixed into payload content keys.
std::uint64_t region_hash(const Box& b);

/// Content key identifying the unique byte stream for (var, version,
/// source region). Consumers recompute it to detect version anomalies.
std::uint64_t chunk_content_key(const std::string& var, Version version,
                                const Box& source_region);

/// A stored piece of an object. `data` holds real bytes scaled down by the
/// configured mem_scale; `nominal_bytes` is the unscaled size used by all
/// virtual-time cost models and accounting.
struct Chunk {
  std::string var;
  Version version = 0;
  Box region;  // source region this piece covers
  std::uint64_t nominal_bytes = 0;
  std::uint64_t content_key = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> data;

  [[nodiscard]] std::uint64_t physical_bytes() const {
    return data ? data->size() : 0;
  }
};

/// Synthesizes a chunk whose bytes are the deterministic stream for
/// (var, version, region). `bytes_per_point` sets the nominal size;
/// `mem_scale` divides it down to the physically allocated size.
Chunk make_chunk(const std::string& var, Version version, const Box& region,
                 double bytes_per_point, std::uint64_t mem_scale);

/// Checks a chunk's bytes against its own key, and its key against the
/// expected (var, version): detects both corruption and the Fig.-2
/// wrong-version anomaly.
enum class ChunkCheck { kOk, kWrongVersion, kCorrupt };
ChunkCheck check_chunk(const Chunk& chunk, const std::string& expected_var,
                       Version expected_version);

// ---------------------------------------------------------------------------
// Client → server messages. Every request carries the issuing app and a
// Reply the server fulfills after paying response transport costs.
// ---------------------------------------------------------------------------

struct PutResponse {
  bool applied = false;     // false when suppressed as a replayed duplicate
  bool suppressed = false;  // true when recognized from the replay script
};

struct GetResponse {
  bool found = false;
  std::vector<Chunk> pieces;
  /// True when the pieces were resolved from the data log (replay mode)
  /// rather than the live store.
  bool from_log = false;
};

struct CheckpointAck {
  std::uint64_t chk_id = 0;
};

struct RecoveryAck {
  /// Number of logged events the server will replay for this app.
  std::size_t replay_events = 0;
};

struct RollbackAck {
  std::size_t versions_dropped = 0;
};

struct PutRequest {
  AppId app = -1;
  Chunk chunk;
  bool logged = false;
  net::EndpointId reply_to = -1;
  net::ReplyPtr<PutResponse> reply;
};

struct GetRequest {
  AppId app = -1;
  ObjectDesc desc;
  bool logged = false;
  net::EndpointId reply_to = -1;
  net::ReplyPtr<GetResponse> reply;
};

/// workflow_check(): a checkpoint event for `app`; the server assigns and
/// records a W_Chk_ID and truncates the app's queue (GC).
struct CheckpointEvent {
  AppId app = -1;
  Version version = 0;  // app's timestep at the checkpoint
  net::EndpointId reply_to = -1;
  net::ReplyPtr<CheckpointAck> reply;
  // A checkpoint marker plays two roles: it anchors the app's replay
  // script (valid for every checkpoint level) and it advances the GC
  // watermark (only sound for a checkpoint that survives the worst
  // failure the app can suffer). Node-local and emergency checkpoints
  // are wiped by a node failure, whose recovery falls back to the PFS
  // level — announcing them as durable would let GC reclaim logged
  // versions the fallback restart still has to replay.
  bool durable = true;
};

/// workflow_restart(): app recovered from its latest checkpoint and
/// re-attached; the server switches the app's queue into replay mode.
struct RecoveryEvent {
  AppId app = -1;
  Version restored_version = 0;
  net::EndpointId reply_to = -1;
  net::ReplyPtr<RecoveryAck> reply;
};

/// Coordinated-restart support: discard every version newer than
/// `version` so the staging state matches the global snapshot.
struct RollbackRequest {
  Version version = 0;
  net::EndpointId reply_to = -1;
  net::ReplyPtr<RollbackAck> reply;
};

// ---------------------------------------------------------------------------
// Inter-server resilience traffic (CoREC-style). Every staged (and logged)
// payload is protected by redundancy fragments pushed to peer servers, and
// each server mirrors its event queues to its successor, so a failed
// staging server can be rebuilt from its peers.
// ---------------------------------------------------------------------------

/// One-way: a redundancy fragment (full replica or RS shard) pushed by the
/// owning server to a peer.
struct FragmentPut {
  int owner = -1;  // staging server index that owns the object
  std::string var;
  Version version = 0;
  Box region;          // the owner's chunk region
  int frag_index = 0;  // 1 .. fragments-1 (the owner's payload is index 0)
  std::uint64_t nominal_bytes = 0;    // paper-scale share for accounting
  std::size_t original_physical = 0;  // owner chunk's physical byte count
  std::uint64_t content_key = 0;      // source chunk key, for verification
  bool logged = false;                // restore into the data log too
  std::shared_ptr<const std::vector<std::uint8_t>> data;  // fragment bytes
};

/// One-way: owner → peers, reclaim fragments of versions <= `upto`.
struct FragmentPrune {
  int owner = -1;
  std::string var;
  Version upto = 0;
};

/// One-way: a mirrored event-queue record (queue resilience). Field-for-
/// field copy of wlog::LogEvent, flattened to avoid a layering cycle.
struct QueueBackup {
  int owner = -1;
  AppId app = -1;
  int kind = 0;  // wlog::EventKind as int
  Version version = 0;
  std::string var;
  Box region;
  std::uint64_t nominal_bytes = 0;
  std::uint64_t chk_id = 0;
};

struct RecoveryPullResponse {
  std::vector<FragmentPut> fragments;
  std::vector<QueueBackup> events;
  std::uint64_t transport_bytes = 0;
};

/// Replacement server → every peer: send back everything you hold on my
/// behalf (fragments + mirrored queue events).
struct RecoveryPull {
  int owner = -1;
  net::EndpointId reply_to = -1;
  net::ReplyPtr<RecoveryPullResponse> reply;
};

/// Metadata query: which versions of `var` does this server hold?
struct QueryResponse {
  std::vector<Version> store_versions;   // base-store window
  std::vector<Version> logged_versions;  // data-log retention
};

struct QueryRequest {
  std::string var;
  net::EndpointId reply_to = -1;
  net::ReplyPtr<QueryResponse> reply;
};

/// Any staging message (std::variant keeps dispatch exhaustive).
using Request =
    std::variant<PutRequest, GetRequest, CheckpointEvent, RecoveryEvent,
                 RollbackRequest, FragmentPut, FragmentPrune, QueueBackup,
                 RecoveryPull, QueryRequest>;

}  // namespace dstage::staging
