// Group manager: the control plane for elastic staging membership. One
// vproc serves the whole group; JoinGroup/RetireServer requests advance the
// spatial index's membership epoch, broadcast the new view to every server,
// and drive the background resilver that re-homes exactly the cells whose
// owner changed. Membership changes are serialized by the single request
// loop, so at most one rebalance is in flight at a time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "net/rpc.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "staging/server.hpp"
#include "staging/types.hpp"

namespace dstage::staging {

struct GroupManagerStats {
  std::uint64_t joins = 0;             // servers admitted
  std::uint64_t retires = 0;           // servers drained + retired
  std::uint64_t rejected = 0;          // invalid change requests
  std::uint64_t membership_updates = 0;  // view broadcasts sent
  std::uint64_t resilver_chunks = 0;   // chunks moved by rebalancing
  std::uint64_t resilver_bytes = 0;    // nominal bytes moved
  std::uint64_t drain_sweeps = 0;      // extra passes to drain a retiree
  double resilver_time_s = 0;          // wall-clock spent moving data
};

class GroupManager {
 public:
  /// `servers` is indexed by staging server id and must cover every server
  /// that can ever join (standbys included). The index is the live one all
  /// servers and clients share.
  GroupManager(cluster::Cluster& cluster, cluster::VprocId vproc,
               dht::SpatialIndex& index, std::vector<StagingServer*> servers);

  /// Spawn the request-processing loop.
  void start();

  [[nodiscard]] net::EndpointId endpoint() const;
  [[nodiscard]] const GroupManagerStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const { return index_->epoch(); }
  /// True while a rebalance is moving data (campaign failure injection
  /// targets this window).
  [[nodiscard]] bool resilver_active() const { return resilver_active_; }

  /// Attach the run's observability bundle (null = off).
  void set_obs(obs::Observability* obs, std::string track) {
    obs_ = obs;
    obs_track_ = std::move(track);
  }

  /// Attach the always-on flight recorder (null = off).
  void set_recorder(obs::FlightRecorder* recorder, std::uint32_t track) {
    recorder_ = recorder;
    recorder_track_ = track;
  }

 private:
  sim::Task<void> run();
  sim::Task<void> handle_join(JoinGroup req);
  sim::Task<void> handle_retire(RetireServer req);
  sim::Task<void> handle_query(MembershipQuery req);
  /// Push the current view to every server (actives and standbys — a
  /// retiree must learn it no longer serves).
  sim::Task<void> broadcast_view();
  /// Drive the per-source resilver transfers for one batch of cell moves;
  /// returns the totals.
  sim::Task<StagingServer::ResilverOutcome> resilver_moves(
      std::vector<dht::CellMove> moves);

  [[nodiscard]] sim::Ctx ctx() { return cluster_->ctx_for(vproc_); }
  [[nodiscard]] net::EndpointId server_endpoint(int server) const {
    return servers_[static_cast<std::size_t>(server)]->endpoint();
  }

  cluster::Cluster* cluster_;
  cluster::VprocId vproc_;
  dht::SpatialIndex* index_;
  std::vector<StagingServer*> servers_;
  net::Rpc rpc_;
  GroupManagerStats stats_;
  bool resilver_active_ = false;
  obs::Observability* obs_ = nullptr;
  std::string obs_track_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint32_t recorder_track_ = 0;
};

}  // namespace dstage::staging
