// Staging server actor. One vproc per server; requests arrive at its
// endpoint and are processed sequentially (queueing under load is the
// server-side contribution to write response time). Integrates the four
// components Figure 8 adds to the staging runtime: data logging, garbage
// collection, the global user interface events, and data resilience.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/spatial_index.hpp"
#include "gc/garbage_collector.hpp"
#include "net/rpc.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "resilience/policy.hpp"
#include "staging/memory_governor.hpp"
#include "staging/object_store.hpp"
#include "staging/types.hpp"
#include "wlog/data_log.hpp"
#include "wlog/event_queue.hpp"

namespace dstage::staging {

struct ServerParams {
  bool logging = false;
  /// Per-server payload processing bandwidth (copy + DHT index + version
  /// chain upkeep on a handful of staging cores — the staging service is
  /// compute-poor by design, which is why server-side logging shows up in
  /// write response times).
  double mem_bw = 6e9;
  /// Log-append work per payload byte, as a fraction of the store copy
  /// (the data log shares buffers with the store; appending is index,
  /// version-chain and refcount bookkeeping, not a second full copy).
  double log_append_fraction = 0.14;
  /// Fixed per-request processing overhead.
  sim::Duration request_overhead = sim::microseconds(3);
  /// GC sweep cost per scanned log entry (index walk).
  sim::Duration gc_cost_per_entry = sim::microseconds(2);
  /// Per-event queue/index maintenance cost when logging.
  sim::Duration log_event_overhead = sim::microseconds(2);
  /// Redundancy applied to staged (and logged) payloads.
  resilience::ResiliencePolicy policy;
  /// Versions per variable retained by the base store.
  int version_window = 2;
  /// Memory governor (budget 0 = disabled, the default).
  GovernorParams governor;
  /// Payload codec applied by the data log at retain time (kNone, the
  /// default, retains raw buffers and leaves every byte count unchanged).
  wlog::codec::Scheme log_codec = wlog::codec::Scheme::kNone;
};

struct ServerStats {
  std::uint64_t puts = 0;
  std::uint64_t batch_puts = 0;  // coalesced put messages unpacked
  std::uint64_t fragments_held = 0;     // fragments stored for peers
  std::uint64_t fragments_pushed = 0;   // fragments sent to peers
  std::uint64_t mirrored_events = 0;    // queue records mirrored here
  std::uint64_t chunks_rebuilt = 0;     // objects restored after recovery
  std::uint64_t rebuild_failures = 0;   // unrecoverable objects
  std::uint64_t gets = 0;
  std::uint64_t gets_pending = 0;   // gets that had to wait for data
  std::uint64_t puts_suppressed = 0;
  std::uint64_t gets_from_log = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t replay_mismatches = 0;
  std::uint64_t gc_versions_dropped = 0;
  std::uint64_t gc_nominal_freed = 0;
  // Memory-governor counters.
  std::uint64_t spill_versions = 0;      // log versions evicted to the PFS
  std::uint64_t spill_bytes = 0;         // nominal bytes evicted
  std::uint64_t spill_fetches = 0;       // spilled versions faulted back in
  std::uint64_t spill_fetch_bytes = 0;
  std::uint64_t spills_aborted = 0;      // victim reclaimed mid-spill
  std::uint64_t urgent_gc_sweeps = 0;    // sweeps forced by the soft mark
  std::uint64_t puts_rejected = 0;       // RetryLater backpressure responses
  std::uint64_t governor_overruns = 0;   // oversized puts admitted anyway
  /// Of puts_rejected, those bounced by the weighted fair-share check: the
  /// put fit the pooled hard watermark but not its own tenant's share.
  std::uint64_t fair_share_rejects = 0;
  /// Fragment pushes whose round-robin placement wrapped onto a peer that
  /// already holds a fragment of the same object (server_count too small
  /// for the policy's fan-out — survivability is degraded).
  std::uint64_t placement_clamped = 0;
  // Elastic-membership counters.
  std::uint64_t wrong_epoch_rejects = 0;   // stale-view requests bounced
  std::uint64_t resilver_chunks_out = 0;   // chunks handed to new owners
  std::uint64_t resilver_bytes_out = 0;
  std::uint64_t resilver_chunks_in = 0;    // chunks received as new owner
  std::uint64_t resilver_bytes_in = 0;
  std::uint64_t fragments_deduped = 0;     // duplicate fragment pushes skipped
  std::uint64_t fragment_fetches = 0;      // degraded-read fragment requests
  /// Multi-level checkpoint promotions: CkptDrainAck messages applied. Each
  /// marks an async PFS drain completing, which is the moment a cached
  /// checkpoint becomes durable and may advance the GC watermark.
  std::uint64_t drain_promotions = 0;
};

/// Point-in-time memory report (nominal, i.e. paper-scale bytes).
struct MemoryReport {
  std::uint64_t store_bytes = 0;       // base object store
  std::uint64_t log_payload_bytes = 0; // data-log retained payloads
  std::uint64_t log_metadata_bytes = 0;
  std::uint64_t redundancy_bytes = 0;  // parity / replica overhead
  [[nodiscard]] std::uint64_t total() const {
    return store_bytes + log_payload_bytes + log_metadata_bytes +
           redundancy_bytes;
  }
  /// The memory governor's budgeted footprint: what this server holds for
  /// its *own* objects. Redundancy fragments held on peers' behalf are
  /// excluded — they are budgeted by their owners.
  [[nodiscard]] std::uint64_t governed() const {
    return store_bytes + log_payload_bytes + log_metadata_bytes;
  }
};

class StagingServer {
 public:
  StagingServer(cluster::Cluster& cluster, cluster::VprocId vproc,
                ServerParams params);

  /// Spawn the request-processing loop.
  void start();

  /// Wire this server into the staging group: its own index and every
  /// server's endpoint (enables fragment push and queue mirroring). All
  /// servers alias one shared endpoint list and (optionally) one shared
  /// initial membership view — per-server copies cost O(N²) bytes across
  /// the group, which forecloses 100k-server ceiling runs.
  void set_peers(int self_index,
                 std::shared_ptr<const std::vector<net::EndpointId>> endpoints,
                 std::shared_ptr<const std::vector<int>> initial_view = {});
  /// Convenience overload for tests and recovery: wraps the vector.
  void set_peers(int self_index, std::vector<net::EndpointId> endpoints) {
    set_peers(self_index,
              std::make_shared<const std::vector<net::EndpointId>>(
                  std::move(endpoints)));
  }

  /// Spawn a replacement server's loop: first rebuild the store, log and
  /// event queues from the peers' fragments/mirrors, then serve the (queued)
  /// mailbox backlog.
  void start_with_recovery();

  /// Declare variable coupling for GC retention decisions (mirrors what the
  /// workflow registers at startup).
  void register_var(const std::string& var,
                    std::vector<std::pair<AppId, bool>> consumers) {
    gc_.register_var(var, std::move(consumers));
  }

  /// Consistency-oracle instrumentation: one bundle of observation hooks
  /// covering the base store, the data log, and the garbage collector.
  /// Probes observe state transitions without touching virtual time; any
  /// member may be null.
  struct ProbeSet {
    ObjectStore::PutProbe store_put;
    ObjectStore::DropProbe store_drop;
    ObjectStore::PutProbe log_put;
    ObjectStore::DropProbe log_drop;
    gc::GarbageCollector::CheckpointProbe gc_checkpoint;
    gc::GarbageCollector::SweepProbe gc_sweep;
  };
  void install_probes(ProbeSet probes) {
    store_.set_probes(std::move(probes.store_put),
                      std::move(probes.store_drop));
    dlog_.set_probes(std::move(probes.log_put), std::move(probes.log_drop));
    gc_.set_probes(std::move(probes.gc_checkpoint),
                   std::move(probes.gc_sweep));
  }

  /// Fault-injection seam for the consistency campaign (see
  /// gc::GarbageCollector::set_watermark_bias).
  void set_gc_watermark_bias(Version bias) { gc_.set_watermark_bias(bias); }

  /// Observability callbacks surfacing staging-internal events (GC sweeps,
  /// watermark advances, metadata-log truncation) to whoever owns the
  /// workflow trace. Installed by the core Runtime when observability is
  /// on; firing them costs no virtual time. Any member may be null.
  struct ObsHooks {
    std::function<void(Version ckpt_version, std::size_t versions_dropped,
                       std::uint64_t nominal_freed,
                       std::size_t entries_scanned)>
        gc_sweep;
    std::function<void(const std::string& var, Version from, Version to)>
        gc_watermark_advance;
    std::function<void(AppId app, Version ckpt_version,
                       std::size_t events_dropped)>
        log_truncate;
    std::function<void(const std::string& var, Version version,
                       std::uint64_t bytes)>
        spill;
    std::function<void(const std::string& var, Version version,
                       std::uint64_t bytes)>
        spill_fetch;
  };
  void set_obs_hooks(ObsHooks hooks) { obs_hooks_ = std::move(hooks); }

  /// Wire the memory governor to the PFS spill gateway. Without a gateway
  /// the governor still enforces admission (backpressure), but has nowhere
  /// to evict cold log versions.
  void set_spill_endpoint(net::EndpointId ep) { spill_endpoint_ = ep; }

  /// Elastic membership: point this server at the live placement index so
  /// it verifies ownership of every put/get against the current epoch.
  /// Non-null enables elastic mode — requests for cells this server no
  /// longer owns bounce with a typed wrong_epoch instead of being applied.
  void set_group_index(const dht::SpatialIndex* group) {
    group_index_ = group;
  }
  [[nodiscard]] bool elastic() const { return group_index_ != nullptr; }

  /// Install a membership view (epoch + active server ids, ascending).
  /// Also delivered at runtime via MembershipUpdate messages; redundancy
  /// (mirror successor, fragment round-robin, prune fan-out) follows the
  /// active set only.
  void apply_membership(std::uint64_t epoch, std::vector<int> active);
  [[nodiscard]] std::uint64_t membership_epoch() const { return view_epoch_; }

  /// Outcome of one resilver sweep (see resilver_out).
  struct ResilverOutcome {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
  };

  /// Resilver hand-off, driven by the GroupManager: push every store/log
  /// piece intersecting `regions` to the new owner at `dest_ep` (each
  /// transfer is acknowledged before the local copy is dropped), then
  /// bounce parked gets for regions no longer owned. Sources back off
  /// while the destination's governor reports pressure. Plain shim over a
  /// private coroutine (GCC 12 coroutine-parameter caveat, see client).
  sim::Task<ResilverOutcome> resilver_out(int dest, net::EndpointId dest_ep,
                                          std::vector<Box> regions) {
    return resilver_out_impl(dest, dest_ep, std::move(regions));
  }

  /// One successor of a retiring server: the new owner of `regions`.
  struct DrainDest {
    int server = -1;
    net::EndpointId endpoint = 0;
    std::vector<Box> regions;
  };

  /// Retirement drain for chunks resilver_out cannot release: a piece
  /// straddling cells that moved to *different* successors is covered by
  /// no single transfer. This pass hands each remaining piece whole to
  /// every successor whose regions intersect it — sequentially, so every
  /// new owner holds the data before the local copy is dropped.
  sim::Task<ResilverOutcome> drain_out(std::vector<DrainDest> dests) {
    return drain_out_impl(std::move(dests));
  }

  /// Retirement: re-home fragments held for other owners and forward
  /// mirrored queue events onto the active set, so redundancy survives
  /// this server leaving the group.
  sim::Task<void> handoff_redundancy() { return handoff_redundancy_impl(); }

  /// True when this server holds no primary data (retirement is complete).
  [[nodiscard]] bool drained() const {
    return store_.nominal_bytes() == 0 && dlog_.nominal_bytes() == 0;
  }

  /// Spilled log versions per variable (version → nominal bytes) — the
  /// read-through index that replay-path gets consult.
  [[nodiscard]] const std::map<std::string, std::map<Version, std::uint64_t>>&
  spilled() const {
    return spilled_;
  }

  /// Attach the run's observability bundle (null = off). `track` names
  /// this server's span track ("staging-N").
  void set_obs(obs::Observability* obs, std::string track) {
    obs_ = obs;
    obs_track_ = std::move(track);
  }

  /// Attach the always-on flight recorder (null = off). `track` is this
  /// server's pre-interned ring id.
  void set_recorder(obs::FlightRecorder* recorder, std::uint32_t track) {
    recorder_ = recorder;
    recorder_track_ = track;
  }

  [[nodiscard]] cluster::VprocId vproc() const { return vproc_; }
  [[nodiscard]] net::EndpointId endpoint() const;
  [[nodiscard]] const ObjectStore& store() const { return store_; }
  [[nodiscard]] const wlog::DataLog& data_log() const { return dlog_; }
  [[nodiscard]] const gc::GarbageCollector& gc() const { return gc_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] MemoryReport memory() const;
  /// One tenant's governed footprint: its store + retained log payloads
  /// (event-queue metadata is unattributed — it is bounded by truncation
  /// and negligible next to payloads).
  [[nodiscard]] std::uint64_t governed_bytes(net::TenantId tenant) const {
    return store_.nominal_bytes(tenant) + dlog_.nominal_bytes(tenant);
  }
  /// Peak total nominal bytes observed at request boundaries.
  [[nodiscard]] std::uint64_t peak_total_bytes() const { return peak_total_; }
  /// Time-averaged total nominal bytes (sampled at request boundaries,
  /// weighted by virtual time between samples).
  [[nodiscard]] double mean_total_bytes() const;
  [[nodiscard]] std::size_t pending_get_count() const {
    return pending_.size();
  }
  [[nodiscard]] const ServerParams& params() const { return params_; }

 private:
  sim::Task<void> run();
  sim::Task<void> handle(Request request);
  sim::Task<void> handle_put(PutRequest req);
  sim::Task<void> handle_batch_put(BatchPut req);
  sim::Task<void> handle_get(GetRequest req);
  sim::Task<void> handle_checkpoint(CheckpointEvent ev);
  sim::Task<void> handle_recovery(RecoveryEvent ev);
  sim::Task<void> handle_rollback(RollbackRequest req);
  sim::Task<void> handle_fragment_put(FragmentPut frag);
  sim::Task<void> handle_fragment_prune(FragmentPrune prune);
  sim::Task<void> handle_queue_backup(QueueBackup backup);
  sim::Task<void> handle_recovery_pull(RecoveryPull pull);
  sim::Task<void> handle_query(QueryRequest query);
  sim::Task<void> handle_membership_update(MembershipUpdate update);
  sim::Task<void> handle_fragment_fetch(FragmentFetch fetch);
  sim::Task<void> handle_resilver_put(ResilverPut put);
  sim::Task<void> handle_ckpt_drain_ack(CkptDrainAck ack);
  /// The durable-checkpoint GC path shared by handle_checkpoint and the
  /// drain agent's CkptDrainAck promotion: sweep the data log behind the
  /// advanced watermark, retire passed spill files, and tell peers to
  /// reclaim fragments below the retention floor. Caller guards on
  /// params_.logging.
  sim::Task<void> sweep_after_durable(Version version);
  sim::Task<ResilverOutcome> resilver_out_impl(int dest,
                                               net::EndpointId dest_ep,
                                               std::vector<Box> regions);
  sim::Task<ResilverOutcome> drain_out_impl(std::vector<DrainDest> dests);
  sim::Task<void> handoff_redundancy_impl();
  /// Position of this server in the active view, or -1 when retired.
  [[nodiscard]] int active_pos() const;
  /// True in elastic mode when the current epoch maps any cell of
  /// `region` to a different owner.
  [[nodiscard]] bool not_owner(const Box& region) const;
  /// No-op arm for messages this endpoint does not speak (spill traffic
  /// belongs to the gateway); keeps the Message visit exhaustive.
  sim::Task<void> ignore_message();

  /// The put state machine shared by single and batched puts: replay
  /// suppression, idempotent-duplicate detection, event logging, the store
  /// copy, log append, and redundancy encode/push. Pays every virtual-time
  /// cost except the per-request overhead (charged once per *message* by
  /// the caller).
  sim::Task<PutResponse> apply_put(AppId app, bool logged, Chunk chunk);

  /// Push redundancy fragments of a freshly applied chunk to peers and
  /// notify them of reclaimable older versions (detached).
  sim::Task<void> push_fragments(Chunk chunk, bool logged);
  sim::Task<void> mirror_event(wlog::LogEvent event);
  /// Rebuild state from peers (runs before the replacement serves traffic).
  sim::Task<void> rebuild_from_peers();
  /// The fragment-pull/decode/re-push half of rebuild_from_peers.
  sim::Task<void> rebuild_objects_from_peers();
  sim::Task<void> run_after_recovery();

  /// Soft-watermark maintenance (detached, single-flight): urgent GC sweep,
  /// then spill the coldest reclaim-ineligible log versions to the gateway
  /// until the governed footprint is back under the soft watermark.
  sim::Task<void> maintain_memory();
  /// Fault a spilled (var, version) back into the data log before a
  /// replay-path read (no-op when it is not spilled).
  sim::Task<void> ensure_log_resident(std::string var, Version version);
  [[nodiscard]] bool spill_covers(const std::string& var,
                                  Version version) const;
  /// Kick maintain_memory() if the governor is over its soft watermark —
  /// pooled, or any tenant over its fair share — and no maintenance pass
  /// is already in flight.
  void poke_governor();
  /// True when weighted fair-share is armed and some tenant's governed
  /// footprint exceeds its soft share (always false single-tenant, so the
  /// pooled paths are byte-identical with tenancy off).
  [[nodiscard]] bool any_tenant_over_share() const;
  /// Drop spilled-index entries the GC watermark has passed and tell the
  /// gateway to reclaim the corresponding spill files.
  void prune_spilled_upto_watermark();

  /// Serve a get whose data is present; pays response transport.
  sim::Task<void> respond_get(GetRequest req, std::vector<Chunk> pieces,
                              bool from_log);
  /// Re-check pending gets after a put made (var, version) more complete.
  void poke_pending(const std::string& var, Version version);

  [[nodiscard]] sim::Ctx ctx() { return cluster_->ctx_for(vproc_); }
  [[nodiscard]] sim::Duration copy_time(std::uint64_t bytes) const;
  void sample_memory();

  cluster::Cluster* cluster_;
  cluster::VprocId vproc_;
  ServerParams params_;
  net::Rpc rpc_;
  MemoryGovernor governor_;
  ObjectStore store_;
  wlog::DataLog dlog_;
  std::map<AppId, wlog::EventQueue> queues_;
  // app → tenant, learned from the tenant field every request carries.
  // Lets a tenant-scoped rollback drop only that tenant's replay queues.
  std::map<AppId, net::TenantId> app_tenants_;
  gc::GarbageCollector gc_;
  std::vector<GetRequest> pending_;
  std::uint64_t next_chk_id_ = 1;
  ServerStats stats_;
  // Resilience state. The endpoint list and membership view are shared
  // across the whole group (copy-on-write: apply_membership installs a
  // fresh vector rather than mutating in place).
  int self_index_ = 0;
  std::shared_ptr<const std::vector<net::EndpointId>> peer_endpoints_ =
      std::make_shared<std::vector<net::EndpointId>>();
  [[nodiscard]] const std::vector<net::EndpointId>& peers() const {
    return *peer_endpoints_;
  }
  // Elastic membership: the live placement index (null = elastic off) and
  // the last membership view applied. Redundancy fan-out follows the
  // active view; peer_endpoints_ keeps every server (standbys included)
  // addressable for recovery pulls.
  const dht::SpatialIndex* group_index_ = nullptr;
  std::uint64_t view_epoch_ = 0;
  std::shared_ptr<const std::vector<int>> active_view_ =
      std::make_shared<std::vector<int>>();  // ascending server ids
  [[nodiscard]] const std::vector<int>& view() const { return *active_view_; }
  // owner → fragments held on that owner's behalf.
  std::map<int, std::vector<FragmentPut>> fragments_;
  std::uint64_t fragment_bytes_ = 0;
  // owner → app → mirrored event queue.
  std::map<int, std::map<AppId, wlog::EventQueue>> mirrors_;
  // Memory-governor state: gateway endpoint (-1 = none), the spill index
  // (var → version → nominal bytes evicted), and the single-flight latch
  // for the maintenance coroutine.
  net::EndpointId spill_endpoint_ = -1;
  std::map<std::string, std::map<Version, std::uint64_t>> spilled_;
  bool maintenance_inflight_ = false;
  bool placement_warned_ = false;
  bool budget_warned_ = false;
  // Memory sampling for peak / time-averaged usage.
  std::uint64_t peak_total_ = 0;
  double byte_seconds_ = 0;
  sim::TimePoint last_sample_{};
  std::uint64_t last_total_ = 0;
  // Observability (null/empty = off). Requests are handled sequentially,
  // so one "current request" span id suffices for parenting child spans.
  obs::Observability* obs_ = nullptr;
  std::string obs_track_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint32_t recorder_track_ = 0;
  ObsHooks obs_hooks_;
  obs::SpanId current_request_span_ = 0;
};

}  // namespace dstage::staging
