#include "staging/degraded_read.hpp"

#include <map>
#include <span>
#include <tuple>
#include <utility>

#include "resilience/reed_solomon.hpp"
#include "staging/object_store.hpp"
#include "util/checksum.hpp"

namespace dstage::staging {

DegradedReconstruction reconstruct_from_fragments(
    const std::vector<FragmentPut>& fragments, const ObjectDesc& desc,
    const resilience::ResiliencePolicy& policy) {
  DegradedReconstruction out;

  // Group the surviving fragments by the owner chunk they protect. The
  // broadcast may return the same fragment from several epochs of
  // re-pushing; the per-index slotting below dedups naturally.
  struct Group {
    Box region;
    std::vector<const FragmentPut*> frags;
  };
  std::map<std::uint64_t, Group> groups;
  for (const FragmentPut& f : fragments) {
    if (f.var != desc.var || f.version != desc.version) continue;
    if (f.region.intersection(desc.region).empty()) continue;
    auto& g = groups[region_hash(f.region)];
    g.region = f.region;
    g.frags.push_back(&f);
  }
  if (groups.empty()) {
    throw DataLossError(desc.var, desc.version,
                        "no surviving fragments for the requested region");
  }

  // Rebuild each owner chunk, verify it, and stage it in a scratch store so
  // overlap/coverage arithmetic matches the normal get path exactly.
  ObjectStore scratch(1 << 30);
  for (auto& [hash, g] : groups) {
    Chunk chunk;
    chunk.var = desc.var;
    chunk.version = desc.version;
    chunk.region = g.region;
    bool rebuilt = false;

    if (policy.kind == resilience::Redundancy::kReplication) {
      for (const FragmentPut* f : g.frags) {
        if (!f->data) continue;
        if (!verify_payload(std::as_bytes(std::span{*f->data}),
                            f->content_key))
          continue;
        chunk.nominal_bytes = f->nominal_bytes;
        chunk.content_key = f->content_key;
        chunk.data = f->data;
        rebuilt = true;
        break;
      }
    } else if (policy.kind == resilience::Redundancy::kErasureCode) {
      const resilience::ReedSolomon rs(policy.rs_k, policy.rs_m);
      std::vector<resilience::Shard> shards(
          static_cast<std::size_t>(rs.total_shards()));
      std::size_t original_physical = 0;
      std::uint64_t shard_nominal = 0;
      std::uint64_t content_key = 0;
      for (const FragmentPut* f : g.frags) {
        original_physical = f->original_physical;
        shard_nominal = f->nominal_bytes;
        content_key = f->content_key;
        if (f->data && f->frag_index >= 0 &&
            f->frag_index < rs.total_shards()) {
          shards[static_cast<std::size_t>(f->frag_index)] = *f->data;
        }
      }
      if (auto decoded = rs.decode(shards, original_physical)) {
        if (verify_payload(std::as_bytes(std::span{*decoded}), content_key)) {
          chunk.nominal_bytes =
              shard_nominal * static_cast<std::uint64_t>(policy.rs_k);
          chunk.content_key = content_key;
          chunk.data = std::make_shared<std::vector<std::uint8_t>>(
              std::move(*decoded));
          rebuilt = true;
        }
      }
    }

    if (!rebuilt) continue;
    ++out.chunks_rebuilt;
    out.nominal_bytes += chunk.nominal_bytes;
    scratch.put(std::move(chunk));
  }

  if (!scratch.covers(desc.var, desc.version, desc.region)) {
    throw DataLossError(desc.var, desc.version,
                        "fragment losses exceed the policy's tolerance");
  }
  out.pieces = scratch.get(desc.var, desc.version, desc.region);
  return out;
}

}  // namespace dstage::staging
