// Staging-service recovery manager (the paper's Process/Data Resilience
// Component, Fig. 8): watches for staging-server failures, allocates a
// replacement from the spare pool, and brings it up through the
// rebuild-from-peers path (fragments restore the store and data log, the
// successor's mirror restores the event queues). Client requests that
// arrived while the server was down wait in its mailbox and are served
// after the rebuild.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "staging/server.hpp"

namespace dstage::staging {

struct RecoveryManagerStats {
  int server_failures = 0;
  int servers_recovered = 0;
  int spare_exhausted = 0;
};

class StagingRecoveryManager {
 public:
  /// @param servers the staging group (the manager replaces entries
  ///        in-place on recovery); all servers must have set_peers() wired.
  StagingRecoveryManager(cluster::Cluster& cluster,
                         std::vector<std::unique_ptr<StagingServer>>* servers,
                         std::vector<cluster::VprocId> server_vprocs,
                         ServerParams server_params, int spares = 4)
      : cluster_(&cluster),
        servers_(servers),
        server_vprocs_(std::move(server_vprocs)),
        params_(server_params),
        spares_(spares) {}

  /// Register the failure observer. Call once, after servers are started.
  void arm();

  [[nodiscard]] const RecoveryManagerStats& stats() const { return stats_; }
  /// Recovery latency model: spare join + service re-registration.
  void set_respawn_cost(sim::Duration d) { respawn_cost_ = d; }

 private:
  void on_failure(cluster::VprocId vproc);
  sim::Task<void> recover(int index);

  cluster::Cluster* cluster_;
  std::vector<std::unique_ptr<StagingServer>>* servers_;
  std::vector<cluster::VprocId> server_vprocs_;
  ServerParams params_;
  cluster::SparePool spares_;
  sim::Duration respawn_cost_ = sim::seconds(2);
  RecoveryManagerStats stats_;
};

}  // namespace dstage::staging
