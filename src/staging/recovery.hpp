// Staging-service recovery manager (the paper's Process/Data Resilience
// Component, Fig. 8): watches for staging-server failures, allocates a
// replacement from the spare pool, and brings it up through the
// rebuild-from-peers path (fragments restore the store and data log, the
// successor's mirror restores the event queues). Client requests that
// arrived while the server was down wait in its mailbox and are served
// after the rebuild.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "staging/server.hpp"

namespace dstage::staging {

struct RecoveryManagerStats {
  int server_failures = 0;
  int servers_recovered = 0;
  int spare_exhausted = 0;
  /// Failures observed for a server whose recovery was already in flight;
  /// coalesced into that recovery instead of spawning a duplicate (which
  /// would double-acquire a spare and race two replacements).
  int coalesced_failures = 0;
};

class StagingRecoveryManager {
 public:
  /// @param servers the staging group (the manager replaces entries
  ///        in-place on recovery); all servers must have set_peers() wired.
  StagingRecoveryManager(cluster::Cluster& cluster,
                         std::vector<std::unique_ptr<StagingServer>>* servers,
                         std::vector<cluster::VprocId> server_vprocs,
                         ServerParams server_params, int spares = 4)
      : cluster_(&cluster),
        servers_(servers),
        server_vprocs_(std::move(server_vprocs)),
        params_(server_params),
        spares_(spares) {}

  /// Register the failure observer. Call once, after servers are started.
  void arm();

  [[nodiscard]] const RecoveryManagerStats& stats() const { return stats_; }
  /// Recovery latency model: spare join + service re-registration.
  void set_respawn_cost(sim::Duration d) { respawn_cost_ = d; }

  /// True while server `index` is failed with no replacement coming (the
  /// spare pool was exhausted when it died). Wire this into
  /// StagingClient::set_degraded_probe so client requests to the dead
  /// server surface the distinct "staging degraded" error instead of
  /// timing out silently.
  [[nodiscard]] bool is_degraded(int index) const {
    return degraded_.count(index) > 0;
  }
  [[nodiscard]] int degraded_count() const {
    return static_cast<int>(degraded_.size());
  }
  /// Optional notification when a server enters degraded mode.
  void set_on_degraded(std::function<void(int)> cb) {
    on_degraded_ = std::move(cb);
  }
  /// Attach the run's observability bundle (null = off) for the
  /// degraded-mode metric/event.
  void set_obs(obs::Observability* obs, std::string track) {
    obs_ = obs;
    obs_track_ = std::move(track);
  }
  /// Attach the always-on flight recorder (null = off): spare-pool
  /// exhaustion is a loud degradation that triggers a forensic dump.
  void set_recorder(obs::FlightRecorder* recorder, std::uint32_t track) {
    recorder_ = recorder;
    recorder_track_ = track;
  }
  /// Spill-gateway endpoint replacement servers should be wired to
  /// (memory-governed runs only; -1 = none).
  void set_spill_endpoint(net::EndpointId ep) { spill_endpoint_ = ep; }

 private:
  void on_failure(cluster::VprocId vproc);
  /// Acquire a spare and spawn recover(index), or enter degraded mode when
  /// the pool is empty. (The failure itself is counted by the caller.)
  void start_recovery(int index);
  sim::Task<void> recover(int index);

  cluster::Cluster* cluster_;
  std::vector<std::unique_ptr<StagingServer>>* servers_;
  std::vector<cluster::VprocId> server_vprocs_;
  ServerParams params_;
  cluster::SparePool spares_;
  sim::Duration respawn_cost_ = sim::seconds(2);
  RecoveryManagerStats stats_;
  /// Per-index recovery-in-flight guard: a second failure of the same
  /// vproc while recover(index) is awaiting the respawn delay must not
  /// spawn a second recovery.
  std::set<int> recovering_;
  /// Indexes that failed again mid-recovery; re-checked when the in-flight
  /// recovery lands.
  std::set<int> pending_;
  /// Indexes running degraded (failed, spare pool empty, unrecovered).
  std::set<int> degraded_;
  std::function<void(int)> on_degraded_;
  obs::Observability* obs_ = nullptr;
  std::string obs_track_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint32_t recorder_track_ = 0;
  net::EndpointId spill_endpoint_ = -1;
};

}  // namespace dstage::staging
