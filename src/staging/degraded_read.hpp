// Degraded reads: reconstruct a requested object region from redundancy
// fragments gathered off surviving peers, without waiting for the owner's
// recovery (or for a resilver in flight to finish). Pure decode/verify
// logic — the client owns the fabric traffic (FragmentFetch broadcast) and
// the virtual-time cost of the decode; this helper only turns fragments
// into verified chunks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "resilience/policy.hpp"
#include "staging/types.hpp"

namespace dstage::staging {

/// Typed terminal error for a degraded read: more fragments were lost than
/// the resilience policy tolerates (beyond m for RS(k, m), every replica
/// for replication), so the requested region cannot be reconstructed. A
/// distinct type — not a timeout — so callers can tell data loss from a
/// slow or partitioned group.
class DataLossError : public std::runtime_error {
 public:
  DataLossError(const std::string& var, Version version,
                const std::string& detail)
      : std::runtime_error("data loss: " + var + " v" +
                           std::to_string(version) + ": " + detail),
        var_(var),
        version_(version) {}

  [[nodiscard]] const std::string& var() const { return var_; }
  [[nodiscard]] Version version() const { return version_; }

 private:
  std::string var_;
  Version version_;
};

/// Outcome of one degraded reconstruction.
struct DegradedReconstruction {
  /// Verified pieces clipped to the requested region.
  std::vector<Chunk> pieces;
  /// Owner chunks rebuilt from fragments (before clipping).
  std::size_t chunks_rebuilt = 0;
  /// Nominal bytes of the rebuilt chunks (decode-cost input).
  std::uint64_t nominal_bytes = 0;
};

/// Reconstruct `desc.region` of (desc.var, desc.version) from `fragments`
/// (the union of every surviving peer's holdings for the owner, possibly
/// with duplicates). Every rebuilt chunk is verified against its content
/// key before it is served. Throws DataLossError when the surviving
/// fragments cannot cover the requested region.
DegradedReconstruction reconstruct_from_fragments(
    const std::vector<FragmentPut>& fragments, const ObjectDesc& desc,
    const resilience::ResiliencePolicy& policy);

}  // namespace dstage::staging
