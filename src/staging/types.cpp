#include "staging/types.hpp"

#include <algorithm>
#include <array>

#include "staging/tenant.hpp"

namespace dstage::staging {

namespace {

/// Thread-local freelist of payload buffers. make_chunk() churns one
/// buffer per fragment — hundreds of thousands per collective put at
/// ceiling scale — and a simulated run is pinned to one sweep thread, so
/// a buffer is always released on the thread that allocated it. Bounded:
/// oversized buffers and overflow beyond the cap are freed normally.
constexpr std::size_t kPayloadPoolMaxBuffers = 256;
constexpr std::size_t kPayloadPoolMaxBytes = 1 << 16;

thread_local std::vector<std::unique_ptr<std::vector<std::uint8_t>>>
    payload_pool;

std::shared_ptr<std::vector<std::uint8_t>> acquire_payload(std::size_t n) {
  std::unique_ptr<std::vector<std::uint8_t>> buf;
  if (!payload_pool.empty()) {
    buf = std::move(payload_pool.back());
    payload_pool.pop_back();
    buf->resize(n);
  } else {
    buf = std::make_unique<std::vector<std::uint8_t>>(n);
  }
  return {buf.release(), [](std::vector<std::uint8_t>* v) {
            if (v->capacity() <= kPayloadPoolMaxBytes &&
                payload_pool.size() < kPayloadPoolMaxBuffers) {
              payload_pool.emplace_back(v);
            } else {
              delete v;
            }
          }};
}

}  // namespace

std::uint64_t region_hash(const Box& b) {
  const std::array<std::int64_t, 6> coords{b.lo.x, b.lo.y, b.lo.z,
                                           b.hi.x, b.hi.y, b.hi.z};
  return fnv1a(std::as_bytes(std::span{coords}));
}

std::uint64_t chunk_content_key(const std::string& var, Version version,
                                const Box& source_region) {
  // Content identity is tenant-invariant: the same logical (var, version,
  // region) synthesizes the same byte stream under any tenant, so a
  // bystander tenant's reads are bit-for-bit comparable against a solo run
  // of the same workflow (the oracle's isolation invariant). The tenant
  // prefix only namespaces *placement* keys, never content.
  return content_key(base_var(var), version, region_hash(source_region));
}

Chunk make_chunk(const std::string& var, Version version, const Box& region,
                 double bytes_per_point, std::uint64_t mem_scale) {
  Chunk c;
  c.var = var;
  c.version = version;
  c.region = region;
  c.nominal_bytes = static_cast<std::uint64_t>(
      static_cast<double>(region.volume()) * bytes_per_point);
  c.content_key = chunk_content_key(var, version, region);
  const std::uint64_t physical =
      std::max<std::uint64_t>(16, c.nominal_bytes / std::max<std::uint64_t>(
                                                        1, mem_scale));
  auto buf = acquire_payload(physical);
  fill_payload(std::as_writable_bytes(std::span{*buf}), c.content_key);
  c.data = std::move(buf);
  return c;
}

ChunkCheck check_chunk(const Chunk& chunk, const std::string& expected_var,
                       Version expected_version) {
  const std::uint64_t expected_key =
      chunk_content_key(expected_var, expected_version, chunk.region);
  if (chunk.content_key != expected_key) return ChunkCheck::kWrongVersion;
  if (chunk.data &&
      !verify_payload(std::as_bytes(std::span{*chunk.data}),
                      chunk.content_key)) {
    return ChunkCheck::kCorrupt;
  }
  return ChunkCheck::kOk;
}

}  // namespace dstage::staging
