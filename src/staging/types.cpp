#include "staging/types.hpp"

#include <algorithm>
#include <array>

#include "staging/tenant.hpp"

namespace dstage::staging {

std::uint64_t region_hash(const Box& b) {
  const std::array<std::int64_t, 6> coords{b.lo.x, b.lo.y, b.lo.z,
                                           b.hi.x, b.hi.y, b.hi.z};
  return fnv1a(std::as_bytes(std::span{coords}));
}

std::uint64_t chunk_content_key(const std::string& var, Version version,
                                const Box& source_region) {
  // Content identity is tenant-invariant: the same logical (var, version,
  // region) synthesizes the same byte stream under any tenant, so a
  // bystander tenant's reads are bit-for-bit comparable against a solo run
  // of the same workflow (the oracle's isolation invariant). The tenant
  // prefix only namespaces *placement* keys, never content.
  return content_key(base_var(var), version, region_hash(source_region));
}

Chunk make_chunk(const std::string& var, Version version, const Box& region,
                 double bytes_per_point, std::uint64_t mem_scale) {
  Chunk c;
  c.var = var;
  c.version = version;
  c.region = region;
  c.nominal_bytes = static_cast<std::uint64_t>(
      static_cast<double>(region.volume()) * bytes_per_point);
  c.content_key = chunk_content_key(var, version, region);
  const std::uint64_t physical =
      std::max<std::uint64_t>(16, c.nominal_bytes / std::max<std::uint64_t>(
                                                        1, mem_scale));
  auto buf = std::make_shared<std::vector<std::uint8_t>>(physical);
  fill_payload(std::as_writable_bytes(std::span{*buf}), c.content_key);
  c.data = std::move(buf);
  return c;
}

ChunkCheck check_chunk(const Chunk& chunk, const std::string& expected_var,
                       Version expected_version) {
  const std::uint64_t expected_key =
      chunk_content_key(expected_var, expected_version, chunk.region);
  if (chunk.content_key != expected_key) return ChunkCheck::kWrongVersion;
  if (chunk.data &&
      !verify_payload(std::as_bytes(std::span{*chunk.data}),
                      chunk.content_key)) {
    return ChunkCheck::kCorrupt;
  }
  return ChunkCheck::kOk;
}

}  // namespace dstage::staging
