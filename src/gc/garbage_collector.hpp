// Garbage Collection Component (Section III-A2). A logged payload of
// version v can be reclaimed once every rollback-capable consumer of the
// variable has checkpointed at or beyond v — no replay can ever re-read it.
// Sweeps run at checkpoint events; the sweep cost (entries scanned) feeds
// the staging server's virtual-time cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "staging/types.hpp"
#include "wlog/data_log.hpp"
#include "wlog/event_queue.hpp"

namespace dstage::gc {

using staging::AppId;
using staging::Version;

struct SweepResult {
  std::size_t versions_dropped = 0;
  std::uint64_t nominal_freed = 0;
  std::size_t entries_scanned = 0;
};

class GarbageCollector {
 public:
  /// Declare a coupling: `consumers` lists the apps reading `var` together
  /// with whether each can roll back (checkpoint/restart). Consumers
  /// protected by process replication never replay, so they never pin log
  /// retention.
  void register_var(const std::string& var,
                    std::vector<std::pair<AppId, bool>> consumers);

  /// Record that `app` checkpointed at timestep `version`.
  void on_checkpoint(AppId app, Version version);

  /// Highest version of `var` whose logged payload is reclaimable: the
  /// minimum checkpointed version over rollback-capable consumers (max
  /// Version when none exist — everything reclaimable but the latest).
  [[nodiscard]] Version watermark(const std::string& var) const;

  /// Reclaim every reclaimable non-latest version in the log.
  SweepResult sweep(wlog::DataLog& log) const;

  [[nodiscard]] Version last_checkpoint(AppId app) const;

  /// Registered variable names, in deterministic (map) order — used by the
  /// observability layer to diff watermarks across a checkpoint event.
  [[nodiscard]] std::vector<std::string> variables() const {
    std::vector<std::string> out;
    out.reserve(consumers_.size());
    for (const auto& [var, _] : consumers_) out.push_back(var);
    return out;
  }

  /// Consistency-oracle instrumentation. The checkpoint probe observes
  /// every on_checkpoint(); the sweep probe fires once per swept variable
  /// with the watermark used, the reclaim bound, and the drop count.
  using CheckpointProbe = std::function<void(AppId, Version)>;
  using SweepProbe = std::function<void(const std::string& var,
                                        Version watermark, Version upto,
                                        std::size_t dropped)>;
  void set_probes(CheckpointProbe on_checkpoint, SweepProbe on_sweep) {
    checkpoint_probe_ = std::move(on_checkpoint);
    sweep_probe_ = std::move(on_sweep);
  }

  /// Fault-injection seam for the consistency campaign: saturating offset
  /// added to every computed watermark, making the GC overcollect (drop
  /// payloads a rolled-back consumer could still replay). Production code
  /// never sets this.
  void set_watermark_bias(Version bias) { watermark_bias_ = bias; }

 private:
  std::map<std::string, std::vector<std::pair<AppId, bool>>> consumers_;
  std::map<AppId, Version> last_ckpt_;
  CheckpointProbe checkpoint_probe_;
  SweepProbe sweep_probe_;
  Version watermark_bias_ = 0;
};

}  // namespace dstage::gc
