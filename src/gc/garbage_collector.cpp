#include "gc/garbage_collector.hpp"

#include <algorithm>

namespace dstage::gc {

void GarbageCollector::register_var(
    const std::string& var, std::vector<std::pair<AppId, bool>> consumers) {
  consumers_[var] = std::move(consumers);
}

void GarbageCollector::on_checkpoint(AppId app, Version version) {
  auto& v = last_ckpt_[app];
  v = std::max(v, version);
  if (checkpoint_probe_) checkpoint_probe_(app, version);
}

Version GarbageCollector::last_checkpoint(AppId app) const {
  auto it = last_ckpt_.find(app);
  return it == last_ckpt_.end() ? 0 : it->second;
}

Version GarbageCollector::watermark(const std::string& var) const {
  auto it = consumers_.find(var);
  Version mark = std::numeric_limits<Version>::max();
  if (it == consumers_.end()) return mark;
  for (const auto& [app, can_rollback] : it->second) {
    if (!can_rollback) continue;  // replicated consumer: never replays
    mark = std::min(mark, last_checkpoint(app));
  }
  if (watermark_bias_ > 0 &&
      mark < std::numeric_limits<Version>::max() - watermark_bias_) {
    mark += watermark_bias_;  // fault-injection seam (campaign sabotage)
  }
  return mark;
}

SweepResult GarbageCollector::sweep(wlog::DataLog& log) const {
  SweepResult result;
  for (const std::string& var : log.variables()) {
    const Version mark = watermark(var);
    const auto versions = log.versions_of(var);
    result.entries_scanned += versions.size();
    if (versions.empty()) continue;
    const Version latest = versions.back();
    // Never reclaim the newest retained version: it is the live coupling
    // data (the base store's window may share its buffer).
    const Version upto =
        std::min<Version>(mark, latest > 0 ? latest - 1 : 0);
    const std::uint64_t before = log.nominal_bytes();
    const std::size_t dropped = log.drop_upto(var, upto);
    result.versions_dropped += dropped;
    result.nominal_freed += before - log.nominal_bytes();
    if (sweep_probe_) sweep_probe_(var, mark, upto, dropped);
  }
  return result;
}

}  // namespace dstage::gc
