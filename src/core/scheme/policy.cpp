#include "core/scheme/policy.hpp"

#include <stdexcept>
#include <utility>

#include "core/recovery_pipeline.hpp"
#include "core/scheme/coordinated.hpp"
#include "core/scheme/hybrid.hpp"
#include "core/scheme/individual.hpp"
#include "core/scheme/uncoordinated.hpp"
#include "sim/spawn.hpp"

namespace dstage::core {

sim::Duration SchemePolicy::barrier_cost(const RuntimeServices&) const {
  return sim::Duration{0};
}

sim::Task<void> SchemePolicy::emergency_checkpoint(RuntimeServices& rt,
                                                   Comp& comp, int ts,
                                                   sim::Ctx ctx) {
  if (ts <= comp.last_ckpt_ts) co_return;  // already covered
  obs::SpanId span = 0;
  if (rt.obs != nullptr) {
    span = rt.obs->tracer().begin(comp.spec.name, "emergency checkpoint",
                                  obs::Phase::kCheckpoint, ctx.now(), 0, ts);
  }
  co_await ctx.delay(sim::from_seconds(
      static_cast<double>(rt.spec->costs.state_bytes(comp.spec.cores)) /
      rt.spec->costs.local_ckpt_bw));
  // Emergency checkpoints land in node-local storage, which a node-level
  // failure wipes — so, like the regular node-local level, they anchor a
  // replay script but must not advance the staging GC watermark (the
  // predicted failure may be the very node failure that forces a
  // PFS-level fallback restart).
  if (component_logged(comp.spec)) {
    co_await comp.client->workflow_check(ctx, static_cast<staging::Version>(ts),
                                         /*durable=*/false);
  }
  comp.last_ckpt_ts = ts;
  ++comp.metrics.proactive_checkpoints;
  rt.trace->record(ctx.now(), TraceKind::kProactiveCheckpoint, comp.spec.name,
                   ts);
  if (rt.obs != nullptr) {
    rt.obs->tracer().end(span, ctx.now());
    rt.obs->metrics().counter("proactive_checkpoints", comp.spec.name).inc();
  }
}

void SchemePolicy::recover_local(RuntimeServices& rt, Comp& comp) {
  if (comp.recovering) return;
  comp.recovering = true;
  ++comp.metrics.failures;
  if (comp.spec.method == FtMethod::kReplication) {
    sim::spawn(*rt.engine, run_failover_recovery(rt, comp));
  } else {
    sim::spawn(*rt.engine, run_checkpoint_restart_recovery(rt, comp));
  }
}

namespace {

/// Plain staging (the paper's Ds): no checkpoints, no logging. Failures
/// still recover — components restart from scratch (checkpoint ts 0) via
/// the same pipeline — so failure injection composes with every scheme.
class NonePolicy final : public SchemePolicy {
 public:
  [[nodiscard]] Scheme scheme() const override { return Scheme::kNone; }
  [[nodiscard]] bool uses_logging() const override { return false; }
  [[nodiscard]] bool proactive_eligible(const ComponentSpec&) const override {
    return false;  // no fault-tolerance scheme, no emergency checkpoints
  }
  sim::Task<void> on_timestep_end(RuntimeServices&, Comp&, int,
                                  sim::Ctx) override {
    co_return;
  }
  sim::Task<void> checkpoint(RuntimeServices&, Comp&, int,
                             sim::Ctx) override {
    co_return;
  }
  void recover(RuntimeServices& rt, Comp& comp) override {
    recover_local(rt, comp);
  }
};

}  // namespace

bool scheme_uses_logging(Scheme s) {
  return make_scheme_policy(s)->uses_logging();
}

std::unique_ptr<SchemePolicy> make_scheme_policy(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone:
      return std::make_unique<NonePolicy>();
    case Scheme::kCoordinated:
      return std::make_unique<CoordinatedPolicy>();
    case Scheme::kUncoordinated:
      return std::make_unique<UncoordinatedPolicy>();
    case Scheme::kIndividual:
      return std::make_unique<IndividualPolicy>();
    case Scheme::kHybrid:
      return std::make_unique<HybridPolicy>();
  }
  throw std::invalid_argument("unknown scheme");
}

}  // namespace dstage::core
