#include "core/scheme/policy.hpp"

#include <stdexcept>
#include <utility>

#include "core/recovery_pipeline.hpp"
#include "core/scheme/coordinated.hpp"
#include "core/scheme/hybrid.hpp"
#include "core/scheme/individual.hpp"
#include "core/scheme/uncoordinated.hpp"
#include "sim/spawn.hpp"

namespace dstage::core {

sim::Duration SchemePolicy::barrier_cost(const RuntimeServices&) const {
  return sim::Duration{0};
}

sim::Task<void> SchemePolicy::emergency_checkpoint(RuntimeServices& rt,
                                                   Comp& comp, int ts,
                                                   sim::Ctx ctx) {
  if (ts <= comp.last_ckpt_ts) co_return;  // already covered
  if (rt.ckpt != nullptr) {
    // Multi-level hierarchy: the emergency snapshot is a regular cache-level
    // set — partner-protected once its parity lands, durable once drained —
    // instead of a bare node-local copy a node failure wipes entirely.
    co_await hierarchy_checkpoint(rt, comp, ts, ctx, /*emergency=*/true);
    co_return;
  }
  const sim::TimePoint stall_start = ctx.now();
  obs::SpanId span = 0;
  if (rt.obs != nullptr) {
    span = rt.obs->tracer().begin(comp.spec.name, "emergency checkpoint",
                                  obs::Phase::kCheckpoint, ctx.now(), 0, ts);
  }
  co_await ctx.delay(sim::from_seconds(
      static_cast<double>(rt.spec->costs.state_bytes(comp.spec.cores)) /
      rt.spec->costs.local_ckpt_bw));
  // Emergency checkpoints land in node-local storage, which a node-level
  // failure wipes — so, like the regular node-local level, they anchor a
  // replay script but must not advance the staging GC watermark (the
  // predicted failure may be the very node failure that forces a
  // PFS-level fallback restart).
  if (component_logged(comp.spec)) {
    co_await comp.client->workflow_check(ctx, static_cast<staging::Version>(ts),
                                         /*durable=*/false);
  }
  comp.last_ckpt_ts = ts;
  ++comp.metrics.proactive_checkpoints;
  comp.metrics.ckpt_stall_s += (ctx.now() - stall_start).seconds();
  rt.trace->record(ctx.now(), TraceKind::kProactiveCheckpoint, comp.spec.name,
                   ts);
  if (rt.obs != nullptr) {
    rt.obs->tracer().end(span, ctx.now());
    rt.obs->metrics().counter("proactive_checkpoints", comp.spec.name).inc();
  }
}

sim::Task<void> SchemePolicy::hierarchy_checkpoint(RuntimeServices& rt,
                                                   Comp& comp, int ts,
                                                   sim::Ctx ctx,
                                                   bool emergency) {
  const sim::TimePoint stall_start = ctx.now();
  obs::SpanId span = 0;
  if (rt.obs != nullptr) {
    span = rt.obs->tracer().begin(comp.spec.name,
                                  emergency
                                      ? "emergency checkpoint (hierarchy)"
                                      : "checkpoint (hierarchy)",
                                  obs::Phase::kCheckpoint, ctx.now(), 0, ts);
  }
  const std::uint64_t bytes = rt.spec->costs.state_bytes(comp.spec.cores);
  // Level 0: node-local cache write — the only synchronous I/O the
  // component pays. PFS durability is the drain agent's job.
  co_await ctx.delay(sim::from_seconds(static_cast<double>(bytes) /
                                       rt.spec->costs.local_ckpt_bw));
  rt.ckpt->write_set(comp.id, ts, bytes);
  // The replay anchor is non-durable: only the drain's CkptDrainAck (set
  // PFS-complete) may advance the staging GC watermark past it.
  if (component_logged(comp.spec)) {
    co_await comp.client->workflow_check(
        ctx, static_cast<staging::Version>(ts), /*durable=*/false);
  }
  // Level 1: ship the XOR parity share and notify the drain agent. One-way
  // sends — restart correctness never waits on them; the hierarchy state
  // above was updated synchronously.
  co_await comp.client->ckpt_announce(
      ctx, static_cast<staging::Version>(ts),
      bytes / static_cast<std::uint64_t>(rt.spec->ckpt.xor_group),
      rt.ckpt_drain_ep);
  comp.last_ckpt_ts = ts;
  if (emergency) {
    ++comp.metrics.proactive_checkpoints;
    rt.trace->record(ctx.now(), TraceKind::kProactiveCheckpoint,
                     comp.spec.name, ts);
  } else {
    ++comp.metrics.local_checkpoints;
    rt.trace->record(ctx.now(), TraceKind::kLocalCheckpoint, comp.spec.name,
                     ts);
  }
  comp.metrics.ckpt_stall_s += (ctx.now() - stall_start).seconds();
  if (rt.obs != nullptr) {
    rt.obs->tracer().end(span, ctx.now());
    rt.obs->metrics()
        .counter("ckpt.hierarchy_writes", comp.spec.name)
        .inc();
  }
}

void SchemePolicy::recover_local(RuntimeServices& rt, Comp& comp) {
  if (comp.recovering) return;
  comp.recovering = true;
  ++comp.metrics.failures;
  if (comp.spec.method == FtMethod::kReplication) {
    sim::spawn(*rt.engine, run_failover_recovery(rt, comp));
  } else {
    sim::spawn(*rt.engine, run_checkpoint_restart_recovery(rt, comp));
  }
}

namespace {

/// Plain staging (the paper's Ds): no checkpoints, no logging. Failures
/// still recover — components restart from scratch (checkpoint ts 0) via
/// the same pipeline — so failure injection composes with every scheme.
class NonePolicy final : public SchemePolicy {
 public:
  [[nodiscard]] Scheme scheme() const override { return Scheme::kNone; }
  [[nodiscard]] bool uses_logging() const override { return false; }
  [[nodiscard]] bool proactive_eligible(const ComponentSpec&) const override {
    return false;  // no fault-tolerance scheme, no emergency checkpoints
  }
  sim::Task<void> on_timestep_end(RuntimeServices&, Comp&, int,
                                  sim::Ctx) override {
    co_return;
  }
  sim::Task<void> checkpoint(RuntimeServices&, Comp&, int,
                             sim::Ctx) override {
    co_return;
  }
  void recover(RuntimeServices& rt, Comp& comp) override {
    recover_local(rt, comp);
  }
};

}  // namespace

bool scheme_uses_logging(Scheme s) {
  return make_scheme_policy(s)->uses_logging();
}

std::unique_ptr<SchemePolicy> make_scheme_policy(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone:
      return std::make_unique<NonePolicy>();
    case Scheme::kCoordinated:
      return std::make_unique<CoordinatedPolicy>();
    case Scheme::kUncoordinated:
      return std::make_unique<UncoordinatedPolicy>();
    case Scheme::kIndividual:
      return std::make_unique<IndividualPolicy>();
    case Scheme::kHybrid:
      return std::make_unique<HybridPolicy>();
  }
  throw std::invalid_argument("unknown scheme");
}

}  // namespace dstage::core
