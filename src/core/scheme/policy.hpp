// SchemePolicy: the strategy interface behind the paper's Ds/Co/Un/In/Hy
// fault-tolerance schemes. Every scheme-dependent protocol decision —
// whether staging logs, when and how components checkpoint, what a barrier
// costs, and how a detected failure is recovered — lives behind this
// interface; the executor and runtime never branch on Scheme. A new scheme
// (multi-level, proactive, replication variants) is a new subclass plus a
// factory case, with no executor surgery.
#pragma once

#include <memory>

#include "core/runtime.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dstage::core {

class SchemePolicy {
 public:
  virtual ~SchemePolicy() = default;

  [[nodiscard]] virtual Scheme scheme() const = 0;
  [[nodiscard]] const char* name() const { return scheme_name(scheme()); }

  /// Does this scheme log coupled data/events in staging (the paper's
  /// *_with_log path)? Wired into servers, clients and GC retention.
  [[nodiscard]] virtual bool uses_logging() const = 0;

  /// True when `c`'s requests go through the log and replay on restart.
  /// Replication-protected components never roll back, so their requests
  /// bypass the log (Fig. 6: replica failover does not trigger replay).
  [[nodiscard]] bool component_logged(const ComponentSpec& c) const {
    return uses_logging() && c.method == FtMethod::kCheckpointRestart;
  }

  /// Should `c` run the log-replay stage after a checkpoint/restart
  /// recovery? Defaults to exactly the logged components — the paper's
  /// protocol. Overridden only by fault-injection harnesses (the
  /// consistency campaign's sabotage policies skip replay to prove the
  /// oracle catches the omission); production schemes keep the default.
  [[nodiscard]] virtual bool replay_on_restart(const ComponentSpec& c) const {
    return component_logged(c);
  }

  /// May `c` take a predictor-triggered emergency checkpoint?
  [[nodiscard]] virtual bool proactive_eligible(const ComponentSpec& c) const {
    return c.method == FtMethod::kCheckpointRestart;
  }

  /// Synchronization cost this scheme charges around a collective step:
  /// alpha * log2(P) for the coordinated barrier protocol, zero elsewhere.
  [[nodiscard]] virtual sim::Duration barrier_cost(
      const RuntimeServices& rt) const;

  /// End-of-timestep hook: decide what checkpointing falls due at `ts` and
  /// perform it (via checkpoint()). Runs in the component's own process.
  virtual sim::Task<void> on_timestep_end(RuntimeServices& rt, Comp& comp,
                                          int ts, sim::Ctx ctx) = 0;

  /// Take the checkpoint due for `comp` at `ts`.
  virtual sim::Task<void> checkpoint(RuntimeServices& rt, Comp& comp, int ts,
                                     sim::Ctx ctx) = 0;

  /// A failure of `comp` was detected: arrange recovery by spawning the
  /// appropriate recovery-pipeline stages (core/recovery_pipeline.hpp).
  virtual void recover(RuntimeServices& rt, Comp& comp) = 0;

  /// Emergency (proactive) checkpoint to node-local storage, plus a
  /// staging checkpoint event for logged components. Shared across schemes;
  /// invoked when the failure predictor flags an imminent crash. Routes
  /// through the multi-level hierarchy when the spec enables it.
  sim::Task<void> emergency_checkpoint(RuntimeServices& rt, Comp& comp,
                                       int ts, sim::Ctx ctx);

  /// Multi-level hierarchy checkpoint (DESIGN.md §12): write the node-local
  /// cache level (the only synchronous I/O the component pays), record a
  /// non-durable replay anchor, then ship the XOR parity share and hand the
  /// set to the async drain agent. Requires rt.ckpt != nullptr.
  /// Deliberately non-virtual: fault-injection wrappers intercept only the
  /// virtual interface, so they can never skip a hierarchy level.
  sim::Task<void> hierarchy_checkpoint(RuntimeServices& rt, Comp& comp,
                                       int ts, sim::Ctx ctx, bool emergency);

 protected:
  /// Per-component recovery dispatch shared by every non-coordinated
  /// scheme: replication failover for replicated components, the Fig. 7(b)
  /// checkpoint/restart pipeline for everything else.
  void recover_local(RuntimeServices& rt, Comp& comp);
};

/// The one place a Scheme value maps to protocol behavior.
[[nodiscard]] std::unique_ptr<SchemePolicy> make_scheme_policy(Scheme scheme);

}  // namespace dstage::core
