#include "core/scheme/coordinated.hpp"

#include <functional>
#include <utility>

#include "core/recovery_pipeline.hpp"
#include "sim/spawn.hpp"

namespace dstage::core {

sim::Duration CoordinatedPolicy::barrier_cost(
    const RuntimeServices& rt) const {
  return rt.spec->costs.barrier_time(rt.total_app_cores());
}

sim::Task<void> CoordinatedPolicy::on_timestep_end(RuntimeServices& rt,
                                                   Comp& comp, int ts,
                                                   sim::Ctx ctx) {
  if (ts % rt.spec->coordinated_period != 0) co_return;
  co_await checkpoint(rt, comp, ts, ctx);
}

sim::Task<void> CoordinatedPolicy::checkpoint(RuntimeServices& rt, Comp& comp,
                                              int ts, sim::Ctx ctx) {
  const sim::TimePoint stall_start = ctx.now();
  obs::SpanId span = 0;
  if (rt.obs != nullptr) {
    // Covers both barriers: the coordination wait is checkpoint cost.
    span = rt.obs->tracer().begin(comp.spec.name, "checkpoint (coordinated)",
                                  obs::Phase::kCheckpoint, ctx.now(), 0, ts);
  }
  // Synchronizing barriers before and after the snapshot flush any
  // in-flight coupling traffic (Section II). Under multi-tenancy the
  // barrier and its cost span only the tenant's own components — tenant
  // A's cut never stalls tenant B; single-tenant runs use the classic
  // shared barrier over all components.
  sim::Barrier* barrier = rt.barrier_for(comp.spec.tenant);
  const sim::Duration bcost =
      rt.spec->tenancy.enabled()
          ? rt.spec->costs.barrier_time(rt.tenant_app_cores(comp.spec.tenant))
          : barrier_cost(rt);
  co_await barrier->arrive_and_wait(ctx.tok);
  co_await ctx.delay(bcost);
  co_await rt.pfs->write(ctx, rt.spec->costs.state_bytes(comp.spec.cores));
  co_await barrier->arrive_and_wait(ctx.tok);
  co_await ctx.delay(bcost);
  if (rt.obs != nullptr) rt.obs->tracer().end(span, ctx.now());
  comp.last_ckpt_ts = ts;
  comp.last_pfs_ckpt_ts = ts;
  global_ckpt_ts_[comp.spec.tenant] = ts;
  ++comp.metrics.checkpoints;
  comp.metrics.ckpt_stall_s += (ctx.now() - stall_start).seconds();
  rt.trace->record(ctx.now(), TraceKind::kCheckpoint, comp.spec.name, ts);
}

void CoordinatedPolicy::recover(RuntimeServices& rt, Comp& comp) {
  const int tenant = comp.spec.tenant;
  // Secondary kill of this tenant's in-flight restart is absorbed; a
  // different tenant's failure starts its own independent rollback.
  if (recovery_active_[tenant]) return;
  recovery_active_[tenant] = true;
  ++comp.metrics.failures;
  std::function<void()> on_restarted = [this, tenant] {
    recovery_active_[tenant] = false;
  };
  // Single-tenant runs pass the scope-everything sentinel (-1) so the
  // rollback path is exactly the classic global one.
  const int scope = rt.spec->tenancy.enabled() ? tenant : -1;
  sim::spawn(*rt.engine,
             run_coordinated_recovery(rt, global_ckpt_ts(tenant),
                                      std::move(on_restarted), scope));
}

}  // namespace dstage::core
