#include "core/scheme/coordinated.hpp"

#include <functional>
#include <utility>

#include "core/recovery_pipeline.hpp"
#include "sim/spawn.hpp"

namespace dstage::core {

sim::Duration CoordinatedPolicy::barrier_cost(
    const RuntimeServices& rt) const {
  return rt.spec->costs.barrier_time(rt.total_app_cores());
}

sim::Task<void> CoordinatedPolicy::on_timestep_end(RuntimeServices& rt,
                                                   Comp& comp, int ts,
                                                   sim::Ctx ctx) {
  if (ts % rt.spec->coordinated_period != 0) co_return;
  co_await checkpoint(rt, comp, ts, ctx);
}

sim::Task<void> CoordinatedPolicy::checkpoint(RuntimeServices& rt, Comp& comp,
                                              int ts, sim::Ctx ctx) {
  const sim::TimePoint stall_start = ctx.now();
  obs::SpanId span = 0;
  if (rt.obs != nullptr) {
    // Covers both barriers: the coordination wait is checkpoint cost.
    span = rt.obs->tracer().begin(comp.spec.name, "checkpoint (coordinated)",
                                  obs::Phase::kCheckpoint, ctx.now(), 0, ts);
  }
  // Synchronizing barriers before and after the snapshot flush any
  // in-flight coupling traffic (Section II).
  co_await rt.barrier->arrive_and_wait(ctx.tok);
  co_await ctx.delay(barrier_cost(rt));
  co_await rt.pfs->write(ctx, rt.spec->costs.state_bytes(comp.spec.cores));
  co_await rt.barrier->arrive_and_wait(ctx.tok);
  co_await ctx.delay(barrier_cost(rt));
  if (rt.obs != nullptr) rt.obs->tracer().end(span, ctx.now());
  comp.last_ckpt_ts = ts;
  comp.last_pfs_ckpt_ts = ts;
  global_ckpt_ts_ = ts;
  ++comp.metrics.checkpoints;
  comp.metrics.ckpt_stall_s += (ctx.now() - stall_start).seconds();
  rt.trace->record(ctx.now(), TraceKind::kCheckpoint, comp.spec.name, ts);
}

void CoordinatedPolicy::recover(RuntimeServices& rt, Comp& comp) {
  if (recovery_active_) return;  // secondary kill of the global restart
  recovery_active_ = true;
  ++comp.metrics.failures;
  std::function<void()> on_restarted = [this] { recovery_active_ = false; };
  sim::spawn(*rt.engine,
             run_coordinated_recovery(rt, global_ckpt_ts_,
                                      std::move(on_restarted)));
}

}  // namespace dstage::core
