// Individual checkpoint/restart (the paper's In): per-component C/R with
// no staging-side logging — the theoretical lower bound on overhead that
// sacrifices correctness. Restarted components re-read newer versions and
// re-put staged data (the Fig. 2 case-1/case-2 anomalies), which the
// harness detects by payload checksum and counts.
#pragma once

#include "core/scheme/uncoordinated.hpp"

namespace dstage::core {

class IndividualPolicy final : public UncoordinatedPolicy {
 public:
  [[nodiscard]] Scheme scheme() const override { return Scheme::kIndividual; }
  [[nodiscard]] bool uses_logging() const override { return false; }
};

}  // namespace dstage::core
