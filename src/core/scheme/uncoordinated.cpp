#include "core/scheme/uncoordinated.hpp"

namespace dstage::core {

sim::Task<void> UncoordinatedPolicy::on_timestep_end(RuntimeServices& rt,
                                                     Comp& comp, int ts,
                                                     sim::Ctx ctx) {
  if (comp.spec.method != FtMethod::kCheckpointRestart) co_return;
  const bool pfs_due = ts % comp.spec.ckpt_period == 0;
  const bool local_due = comp.spec.local_ckpt_period > 0 &&
                         ts % comp.spec.local_ckpt_period == 0;
  if (!pfs_due && !local_due) co_return;
  co_await checkpoint(rt, comp, ts, ctx);
}

sim::Task<void> UncoordinatedPolicy::checkpoint(RuntimeServices& rt,
                                                Comp& comp, int ts,
                                                sim::Ctx ctx) {
  if (ts % comp.spec.ckpt_period == 0) {
    obs::SpanId span = 0;
    if (rt.obs != nullptr) {
      span = rt.obs->tracer().begin(comp.spec.name, "checkpoint",
                                    obs::Phase::kCheckpoint, ctx.now(), 0, ts);
    }
    co_await rt.pfs->write(ctx, rt.spec->costs.state_bytes(comp.spec.cores));
    comp.last_pfs_ckpt_ts = ts;
    ++comp.metrics.checkpoints;
    rt.trace->record(ctx.now(), TraceKind::kCheckpoint, comp.spec.name, ts);
    if (component_logged(comp.spec)) {
      co_await comp.client->workflow_check(ctx,
                                           static_cast<staging::Version>(ts));
    }
    if (rt.obs != nullptr) rt.obs->tracer().end(span, ctx.now());
  } else {
    // Node-local level: fast, uncontended, lost on node failure. The
    // staging servers still record a replay anchor for it, but marked
    // non-durable: a node failure falls back to the PFS level, so letting
    // this level advance the GC watermark would allow logged versions the
    // fallback restart still has to replay to be reclaimed (the oracle
    // catches that as a retention violation followed by a replay deadlock).
    obs::SpanId span = 0;
    if (rt.obs != nullptr) {
      span = rt.obs->tracer().begin(comp.spec.name, "local checkpoint",
                                    obs::Phase::kCheckpoint, ctx.now(), 0, ts);
    }
    co_await ctx.delay(sim::from_seconds(
        static_cast<double>(rt.spec->costs.state_bytes(comp.spec.cores)) /
        rt.spec->costs.local_ckpt_bw));
    ++comp.metrics.local_checkpoints;
    rt.trace->record(ctx.now(), TraceKind::kLocalCheckpoint, comp.spec.name,
                     ts);
    if (component_logged(comp.spec)) {
      co_await comp.client->workflow_check(
          ctx, static_cast<staging::Version>(ts), /*durable=*/false);
    }
    if (rt.obs != nullptr) rt.obs->tracer().end(span, ctx.now());
  }
  comp.last_ckpt_ts = ts;
}

void UncoordinatedPolicy::recover(RuntimeServices& rt, Comp& comp) {
  recover_local(rt, comp);
}

}  // namespace dstage::core
