#include "core/scheme/uncoordinated.hpp"

#include "ckpt/adaptive.hpp"

namespace dstage::core {

namespace {

/// Is a PFS-level (durable) checkpoint due for `comp` at `ts`? Fixed
/// modulo period by default; the Vaidya-style adaptive policy
/// (SCR_Need_checkpoint) when the spec opts in. The adaptive interval
/// anchors on the freshest restartable checkpoint of any level, so it
/// measures exposure, not drain lag.
bool pfs_ckpt_due(const RuntimeServices& rt, const Comp& comp, int ts) {
  if (rt.spec->ckpt.adaptive_interval) {
    ckpt::AdaptiveInterval::Params p;
    p.mtbf_s = rt.spec->failures.mtbf_s;
    p.ckpt_cost_s =
        static_cast<double>(rt.spec->costs.state_bytes(comp.spec.cores)) /
        rt.spec->pfs.write_bw;
    p.compute_per_ts_s = comp.spec.compute_per_ts_s;
    p.fixed_period = comp.spec.ckpt_period;
    return ckpt::AdaptiveInterval(p).need_checkpoint(ts, comp.last_ckpt_ts);
  }
  return ts % comp.spec.ckpt_period == 0;
}

}  // namespace

sim::Task<void> UncoordinatedPolicy::on_timestep_end(RuntimeServices& rt,
                                                     Comp& comp, int ts,
                                                     sim::Ctx ctx) {
  if (comp.spec.method != FtMethod::kCheckpointRestart) co_return;
  const bool pfs_due = pfs_ckpt_due(rt, comp, ts);
  const bool local_due = comp.spec.local_ckpt_period > 0 &&
                         ts % comp.spec.local_ckpt_period == 0;
  if (!pfs_due && !local_due) co_return;
  co_await checkpoint(rt, comp, ts, ctx);
}

sim::Task<void> UncoordinatedPolicy::checkpoint(RuntimeServices& rt,
                                                Comp& comp, int ts,
                                                sim::Ctx ctx) {
  if (rt.ckpt != nullptr) {
    // Multi-level hierarchy: every due checkpoint — PFS-period or
    // node-local-period — becomes a cache-level set; the async drain agent
    // owns PFS durability.
    co_await hierarchy_checkpoint(rt, comp, ts, ctx, /*emergency=*/false);
    co_return;
  }
  const sim::TimePoint stall_start = ctx.now();
  if (pfs_ckpt_due(rt, comp, ts)) {
    obs::SpanId span = 0;
    if (rt.obs != nullptr) {
      span = rt.obs->tracer().begin(comp.spec.name, "checkpoint",
                                    obs::Phase::kCheckpoint, ctx.now(), 0, ts);
    }
    co_await rt.pfs->write(ctx, rt.spec->costs.state_bytes(comp.spec.cores));
    comp.last_pfs_ckpt_ts = ts;
    ++comp.metrics.checkpoints;
    rt.trace->record(ctx.now(), TraceKind::kCheckpoint, comp.spec.name, ts);
    if (component_logged(comp.spec)) {
      co_await comp.client->workflow_check(ctx,
                                           static_cast<staging::Version>(ts));
    }
    if (rt.obs != nullptr) rt.obs->tracer().end(span, ctx.now());
  } else {
    // Node-local level: fast, uncontended, lost on node failure. The
    // staging servers still record a replay anchor for it, but marked
    // non-durable: a node failure falls back to the PFS level, so letting
    // this level advance the GC watermark would allow logged versions the
    // fallback restart still has to replay to be reclaimed (the oracle
    // catches that as a retention violation followed by a replay deadlock).
    obs::SpanId span = 0;
    if (rt.obs != nullptr) {
      span = rt.obs->tracer().begin(comp.spec.name, "local checkpoint",
                                    obs::Phase::kCheckpoint, ctx.now(), 0, ts);
    }
    co_await ctx.delay(sim::from_seconds(
        static_cast<double>(rt.spec->costs.state_bytes(comp.spec.cores)) /
        rt.spec->costs.local_ckpt_bw));
    ++comp.metrics.local_checkpoints;
    rt.trace->record(ctx.now(), TraceKind::kLocalCheckpoint, comp.spec.name,
                     ts);
    if (component_logged(comp.spec)) {
      co_await comp.client->workflow_check(
          ctx, static_cast<staging::Version>(ts), /*durable=*/false);
    }
    if (rt.obs != nullptr) rt.obs->tracer().end(span, ctx.now());
  }
  comp.last_ckpt_ts = ts;
  comp.metrics.ckpt_stall_s += (ctx.now() - stall_start).seconds();
}

void UncoordinatedPolicy::recover(RuntimeServices& rt, Comp& comp) {
  recover_local(rt, comp);
}

}  // namespace dstage::core
