// Coordinated checkpoint/restart (the paper's Co): synchronized barriers
// bracket a global PFS snapshot every coordinated_period timesteps, and any
// failure rolls the whole workflow back to the last global snapshot.
#pragma once

#include "core/scheme/policy.hpp"

namespace dstage::core {

class CoordinatedPolicy final : public SchemePolicy {
 public:
  [[nodiscard]] Scheme scheme() const override { return Scheme::kCoordinated; }
  [[nodiscard]] bool uses_logging() const override { return false; }
  [[nodiscard]] sim::Duration barrier_cost(
      const RuntimeServices& rt) const override;

  sim::Task<void> on_timestep_end(RuntimeServices& rt, Comp& comp, int ts,
                                  sim::Ctx ctx) override;
  /// The Section-II barrier protocol: barrier → snapshot to the (contended)
  /// PFS → barrier, flushing in-flight coupling traffic around the cut.
  sim::Task<void> checkpoint(RuntimeServices& rt, Comp& comp, int ts,
                             sim::Ctx ctx) override;
  /// First failure starts one global rollback; secondary kills of the same
  /// restart are absorbed.
  void recover(RuntimeServices& rt, Comp& comp) override;

  /// Timestep of the last completed global snapshot.
  [[nodiscard]] int global_ckpt_ts() const { return global_ckpt_ts_; }

 private:
  int global_ckpt_ts_ = 0;
  bool recovery_active_ = false;
};

}  // namespace dstage::core
