// Coordinated checkpoint/restart (the paper's Co): synchronized barriers
// bracket a global PFS snapshot every coordinated_period timesteps, and any
// failure rolls the whole workflow back to the last global snapshot.
#pragma once

#include <map>

#include "core/scheme/policy.hpp"

namespace dstage::core {

class CoordinatedPolicy final : public SchemePolicy {
 public:
  [[nodiscard]] Scheme scheme() const override { return Scheme::kCoordinated; }
  [[nodiscard]] bool uses_logging() const override { return false; }
  [[nodiscard]] sim::Duration barrier_cost(
      const RuntimeServices& rt) const override;

  sim::Task<void> on_timestep_end(RuntimeServices& rt, Comp& comp, int ts,
                                  sim::Ctx ctx) override;
  /// The Section-II barrier protocol: barrier → snapshot to the (contended)
  /// PFS → barrier, flushing in-flight coupling traffic around the cut.
  sim::Task<void> checkpoint(RuntimeServices& rt, Comp& comp, int ts,
                             sim::Ctx ctx) override;
  /// First failure starts one rollback of the victim's tenant (the whole
  /// workflow for single-tenant runs); secondary kills of the same restart
  /// are absorbed. Other tenants are never touched.
  void recover(RuntimeServices& rt, Comp& comp) override;

  /// Timestep of `tenant`'s last completed global snapshot. All protocol
  /// state is per tenant — a tenant's barrier cut, snapshot anchor, and
  /// rollback latch are invisible to every other tenant.
  [[nodiscard]] int global_ckpt_ts(int tenant = 0) const {
    const auto it = global_ckpt_ts_.find(tenant);
    return it == global_ckpt_ts_.end() ? 0 : it->second;
  }

 private:
  std::map<int, int> global_ckpt_ts_;      // tenant -> snapshot anchor
  std::map<int, bool> recovery_active_;    // tenant -> rollback in flight
};

}  // namespace dstage::core
