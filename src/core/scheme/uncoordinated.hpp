// Uncoordinated checkpoint/restart with data/event logging (the paper's Un
// — its contribution): components checkpoint independently on their own
// periods, staging logs every coupled put/get, and a failed component
// replays its own data-access history without disturbing the others.
// Also the base for the Individual and Hybrid variants, which share the
// per-component checkpoint machinery (including the multi-level node-local
// layer) and differ only in logging and per-component recovery method.
#pragma once

#include "core/scheme/policy.hpp"

namespace dstage::core {

class UncoordinatedPolicy : public SchemePolicy {
 public:
  [[nodiscard]] Scheme scheme() const override {
    return Scheme::kUncoordinated;
  }
  [[nodiscard]] bool uses_logging() const override { return true; }

  sim::Task<void> on_timestep_end(RuntimeServices& rt, Comp& comp, int ts,
                                  sim::Ctx ctx) override;
  /// PFS-level checkpoint when the component's period is due (the PFS level
  /// wins when both fall on the same timestep), else the fast node-local
  /// level; logged components also insert a W_Chk_ID staging event.
  sim::Task<void> checkpoint(RuntimeServices& rt, Comp& comp, int ts,
                             sim::Ctx ctx) override;
  void recover(RuntimeServices& rt, Comp& comp) override;
};

}  // namespace dstage::core
