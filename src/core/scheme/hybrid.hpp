// Hybrid scheme (the paper's Hy, Fig. 6): checkpoint/restart + logging for
// components that declare FtMethod::kCheckpointRestart, process replication
// for those that declare FtMethod::kReplication. A replicated component
// masks failures by failing over to its replica — no rollback and no
// staging replay — so its requests bypass the log entirely.
#pragma once

#include "core/scheme/uncoordinated.hpp"

namespace dstage::core {

class HybridPolicy final : public UncoordinatedPolicy {
 public:
  [[nodiscard]] Scheme scheme() const override { return Scheme::kHybrid; }
};

}  // namespace dstage::core
