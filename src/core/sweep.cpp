#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include "core/executor.hpp"
#include "obs/report.hpp"

namespace dstage::core {

std::vector<SweepRun> run_sweep(std::vector<WorkflowSpec> specs,
                                const SweepOptions& opts) {
  std::vector<SweepRun> out(specs.size());
  if (specs.empty()) return out;
  const int jobs = static_cast<int>(specs.size());
  int threads = opts.threads;
  if (threads <= 0) {
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  threads = std::min(threads, jobs);

  std::atomic<int> next{0};
  std::vector<std::exception_ptr> errors(specs.size());
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = next.fetch_add(1); i < jobs; i = next.fetch_add(1)) {
          const auto idx = static_cast<std::size_t>(i);
          try {
            WorkflowSpec spec = std::move(specs[idx]);
            out[idx].seed = spec.failures.seed;
            WorkflowRunner runner(std::move(spec));
            out[idx].metrics = runner.run();
            out[idx].trace_digest = runner.trace().digest();
            if (const obs::Observability* o = runner.runtime().obs()) {
              Json oj = Json::object();
              oj.set("metrics", o->metrics().to_json());
              oj.set("phases",
                     obs::breakdown_to_json(obs::phase_breakdown(o->tracer())));
              out[idx].obs = std::move(oj);
              if (opts.metrics != nullptr) opts.metrics->merge(o->metrics());
            }
          } catch (...) {
            errors[idx] = std::current_exception();
          }
        }
      });
    }
  }  // jthread joins here

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return out;
}

std::vector<SweepRun> run_seed_sweep(
    const std::function<WorkflowSpec(std::uint64_t)>& make, int count,
    const SweepOptions& opts) {
  std::vector<WorkflowSpec> specs;
  specs.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int s = 1; s <= count; ++s) {
    specs.push_back(make(static_cast<std::uint64_t>(s)));
  }
  return run_sweep(std::move(specs), opts);
}

double mean_total_time(const std::vector<SweepRun>& runs) {
  if (runs.empty()) return 0;
  double total = 0;
  for (const auto& r : runs) total += r.metrics.total_time_s;
  return total / static_cast<double>(runs.size());
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

Json metrics_to_json(const RunMetrics& m) {
  Json j = Json::object();
  j.set("scheme", scheme_name(m.scheme));
  j.set("total_time_s", m.total_time_s);
  j.set("failures_injected", m.failures_injected);
  j.set("total_anomalies", m.total_anomalies());
  j.set("cum_write_response_s", m.cum_write_response_s());
  j.set("pfs_bytes_written", m.pfs_bytes_written);
  j.set("pfs_bytes_read", m.pfs_bytes_read);
  j.set("events_processed", m.events_processed);

  Json comps = Json::array();
  for (const auto& c : m.components) {
    Json cj = Json::object();
    cj.set("name", c.name);
    cj.set("completion_time_s", c.completion_time_s);
    cj.set("timesteps_done", c.timesteps_done);
    cj.set("timesteps_reworked", c.timesteps_reworked);
    cj.set("failures", c.failures);
    cj.set("checkpoints", c.checkpoints);
    cj.set("local_checkpoints", c.local_checkpoints);
    cj.set("proactive_checkpoints", c.proactive_checkpoints);
    cj.set("mean_put_response_s", c.put_response_s.mean());
    cj.set("mean_get_response_s", c.get_response_s.mean());
    cj.set("p50_put_response_s", c.put_response_s.percentile(50));
    cj.set("p95_put_response_s", c.put_response_s.percentile(95));
    cj.set("p99_put_response_s", c.put_response_s.percentile(99));
    cj.set("p50_get_response_s", c.get_response_s.percentile(50));
    cj.set("p95_get_response_s", c.get_response_s.percentile(95));
    cj.set("p99_get_response_s", c.get_response_s.percentile(99));
    cj.set("cum_put_response_s", c.cum_put_response_s);
    cj.set("cum_get_response_s", c.cum_get_response_s);
    cj.set("put_bytes", c.put_bytes);
    cj.set("suppressed_puts", c.suppressed_puts);
    cj.set("wrong_version_reads", c.wrong_version_reads);
    cj.set("corrupt_reads", c.corrupt_reads);
    comps.push(std::move(cj));
  }
  j.set("components", std::move(comps));

  Json st = Json::object();
  st.set("store_bytes_peak", m.staging.store_bytes_peak);
  st.set("total_bytes_peak", m.staging.total_bytes_peak);
  st.set("total_bytes_mean", m.staging.total_bytes_mean);
  st.set("log_payload_bytes_peak", m.staging.log_payload_bytes_peak);
  st.set("puts", m.staging.puts);
  st.set("gets", m.staging.gets);
  st.set("puts_suppressed", m.staging.puts_suppressed);
  st.set("gets_from_log", m.staging.gets_from_log);
  st.set("replay_mismatches", m.staging.replay_mismatches);
  st.set("gc_versions_dropped", m.staging.gc_versions_dropped);
  j.set("staging", std::move(st));
  return j;
}

Json sweep_to_json(const std::vector<SweepRun>& runs) {
  Json arr = Json::array();
  for (const auto& r : runs) {
    Json rj = Json::object();
    rj.set("seed", r.seed);
    rj.set("trace_digest", digest_hex(r.trace_digest));
    rj.set("metrics", metrics_to_json(r.metrics));
    if (!r.obs.is_null()) rj.set("obs", r.obs);
    arr.push(std::move(rj));
  }
  return arr;
}

}  // namespace dstage::core
