#include "core/executor.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/recovery_pipeline.hpp"
#include "sim/spawn.hpp"
#include "util/checksum.hpp"

namespace dstage::core {

namespace {

/// Order-independent fingerprint of a get's returned pieces: equal piece
/// sets give equal checksums regardless of server response order. Set (not
/// multiset) semantics over (content key, source region, payload): after an
/// elastic rebalance a chunk straddling two successors' cells is held whole
/// by both, so a fan-out read can return the same source chunk twice, each
/// clipped to a different request region (and hence a different nominal
/// fraction). The duplicates carry no extra content and the clipped nominal
/// size is placement-dependent, so neither may perturb cross-epoch read
/// equivalence — total bytes are compared separately.
std::uint64_t pieces_checksum(const std::vector<staging::Chunk>& pieces) {
  std::set<std::uint64_t> hashes;
  for (const staging::Chunk& piece : pieces) {
    std::uint64_t h = piece.content_key ^ staging::region_hash(piece.region);
    if (piece.data) {
      h ^= fnv1a(std::as_bytes(std::span{*piece.data}));
    }
    // SplitMix64 finalizer decorrelates before the XOR combine.
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    hashes.insert(h ^ (h >> 31));
  }
  std::uint64_t sum = 0;
  for (std::uint64_t h : hashes) sum ^= h;
  return sum;
}

}  // namespace

WorkflowRunner::WorkflowRunner(WorkflowSpec spec)
    : WorkflowRunner(std::move(spec), nullptr) {}

WorkflowRunner::WorkflowRunner(WorkflowSpec spec,
                               std::unique_ptr<SchemePolicy> policy)
    : policy_(policy ? std::move(policy) : make_scheme_policy(spec.scheme)) {
  runtime_ = RuntimeBuilder(std::move(spec)).policy(*policy_).build();
  services_ = runtime_->services();
  elastic_fired_.assign(runtime_->spec().elastic.events.size(), false);
  services_.resume = [this](Comp* comp, int start_ts) {
    sim::spawn(runtime_->engine(), run_component(comp, start_ts));
  };
  services_.resume_recovered = [this](Comp* comp) {
    sim::spawn(runtime_->engine(), run_component_recovered(comp));
  };
}

WorkflowRunner::~WorkflowRunner() {
  tearing_down_ = true;
  runtime_->teardown();
}

RunMetrics WorkflowRunner::run() {
  if (ran_) throw std::logic_error("WorkflowRunner::run() is single-shot");
  ran_ = true;

  for (auto& server : runtime_->servers()) server->start();
  if (runtime_->spill_gateway() != nullptr) runtime_->spill_gateway()->start();
  if (runtime_->group_manager() != nullptr) runtime_->group_manager()->start();
  if (runtime_->drain_agent() != nullptr) runtime_->drain_agent()->start();
  runtime_->cluster().on_failure(
      [this](cluster::VprocId vp) { on_vproc_failure(vp); });
  for (auto& comp : runtime_->comps()) {
    sim::spawn(runtime_->engine(), run_component(comp.get(), 0));
  }

  runtime_->engine().run();
  runtime_->finalize_obs();

  if (!runtime_->all_done().is_set()) {
    std::string stuck;
    for (const auto& c : runtime_->comps()) {
      if (!c->done) stuck += " " + c->spec.name + "@ts" +
                             std::to_string(c->current_ts);
    }
    throw std::runtime_error("workflow deadlocked; unfinished:" + stuck);
  }
  return runtime_->collect(failures_injected_);
}

sim::Task<void> WorkflowRunner::run_component(Comp* comp, int start_ts) {
  const WorkflowSpec& spec = runtime_->spec();
  Trace& trace = runtime_->trace();
  sim::Ctx ctx = runtime_->cluster().ctx_for(comp->vproc);
  obs::Observability* obs = services_.obs;
  obs::FlightRecorder* rec = services_.recorder;
  const std::uint32_t rec_track =
      rec != nullptr ? rec->track(comp->spec.name) : 0;
  for (int ts = start_ts + 1; ts <= spec.total_ts; ++ts) {
    trace.record(ctx.now(), TraceKind::kTimestepStart, comp->spec.name, ts);
    fire_elastic_events(ts);
    co_await maybe_fail(comp, ts, ctx);

    // Reads first (consumers pull the coupled data for this timestep).
    obs::SpanId read_span = 0;
    if (obs != nullptr) {
      for (const auto& read : comp->spec.reads) {
        if (ts % read.every == 0) {
          read_span = obs->tracer().begin(comp->spec.name, "read",
                                          obs::Phase::kRead, ctx.now(), 0, ts);
          break;
        }
      }
    }
    for (const auto& read : comp->spec.reads) {
      if (ts % read.every != 0) continue;
      auto result = co_await comp->client->get(
          ctx, read.var, static_cast<staging::Version>(ts),
          runtime_->subset_region(read.subset_fraction));
      comp->metrics.get_response_s.add(result.response_time.seconds());
      comp->metrics.cum_get_response_s += result.response_time.seconds();
      comp->metrics.wrong_version_reads += result.wrong_version;
      comp->metrics.corrupt_reads += result.corrupt;
      if (obs != nullptr) {
        obs->metrics()
            .histogram("get_response_s", comp->spec.name)
            .observe(result.response_time.seconds());
      }
      if (rec != nullptr || services_.read_probe) {
        const std::uint64_t checksum = pieces_checksum(result.pieces);
        if (rec != nullptr) {
          // The order-independent payload fingerprint is the forensic
          // anchor for replay-equivalence diffs: a replayed read that
          // serves different bytes than the reference run diverges here.
          rec->record(rec_track, ctx.now(), obs::FrKind::kGetServe, read.var,
                      ts, static_cast<std::int64_t>(checksum));
        }
        if (services_.read_probe) {
          services_.read_probe(*comp, ts, read.var, checksum,
                               result.nominal_bytes, result.wrong_version,
                               result.corrupt);
        }
      }
      trace.record(ctx.now(), TraceKind::kReadDone, comp->spec.name, ts,
                   static_cast<std::int64_t>(result.nominal_bytes));
    }
    if (obs != nullptr) obs->tracer().end(read_span, ctx.now());

    obs::SpanId compute_span = 0;
    if (obs != nullptr) {
      compute_span = obs->tracer().begin(comp->spec.name, "compute",
                                         obs::Phase::kCompute, ctx.now(), 0, ts);
    }
    co_await ctx.delay(sim::from_seconds(comp->spec.compute_per_ts_s));
    if (obs != nullptr) obs->tracer().end(compute_span, ctx.now());
    trace.record(ctx.now(), TraceKind::kComputeDone, comp->spec.name, ts);

    obs::SpanId write_span = 0;
    if (obs != nullptr && !comp->spec.writes.empty()) {
      write_span = obs->tracer().begin(comp->spec.name, "write",
                                       obs::Phase::kWrite, ctx.now(), 0, ts);
    }
    for (const auto& write : comp->spec.writes) {
      auto result = co_await comp->client->put(
          ctx, write.var, static_cast<staging::Version>(ts),
          runtime_->subset_region(write.subset_fraction));
      comp->metrics.put_response_s.add(result.response_time.seconds());
      comp->metrics.cum_put_response_s += result.response_time.seconds();
      comp->metrics.put_bytes += result.nominal_bytes;
      comp->metrics.suppressed_puts += result.suppressed;
      if (obs != nullptr) {
        obs->metrics()
            .histogram("put_response_s", comp->spec.name)
            .observe(result.response_time.seconds());
      }
      trace.record(ctx.now(), TraceKind::kWriteDone, comp->spec.name, ts,
                   static_cast<std::int64_t>(result.nominal_bytes));
    }
    if (obs != nullptr) obs->tracer().end(write_span, ctx.now());

    comp->current_ts = ts;
    ++comp->metrics.timesteps_done;
    trace.record(ctx.now(), TraceKind::kTimestepDone, comp->spec.name, ts);

    co_await policy_->on_timestep_end(services_, *comp, ts, ctx);
  }
  comp->done = true;
  comp->metrics.completion_time_s = ctx.now().seconds();
  runtime_->check_all_done();
}

sim::Task<void> WorkflowRunner::run_component_recovered(Comp* comp) {
  sim::Ctx ctx = runtime_->cluster().ctx_for(comp->vproc);
  const bool replay = policy_->replay_on_restart(comp->spec);
  co_await stage_reattach_and_replay(services_, *comp, replay, ctx);
  if (services_.obs != nullptr) {
    // The recovery root opened at the failure instant closes once the
    // component is back in its timestep loop.
    services_.obs->tracer().end(comp->obs_recovery_span, ctx.now());
    comp->obs_recovery_span = 0;
    comp->obs_detect_span = 0;
    services_.obs->metrics().counter("recoveries", comp->spec.name).inc();
  }
  co_await run_component(comp, comp->last_ckpt_ts);
}

sim::Task<void> WorkflowRunner::maybe_fail(Comp* comp, int ts, sim::Ctx ctx) {
  for (auto& f : runtime_->plan()) {
    if (f.fired || f.comp != comp->id || f.ts != ts) continue;
    f.fired = true;
    if (f.predicted && policy_->proactive_eligible(comp->spec)) {
      // The failure predictor raised an alert: take an emergency local
      // checkpoint so the imminent failure loses only the current timestep.
      co_await policy_->emergency_checkpoint(services_, *comp, ts - 1, ctx);
    }
    if (f.phase < 0) continue;  // false alarm: no failure follows
    ++failures_injected_;
    // Die partway into this timestep's work.
    obs::SpanId partial = 0;
    if (services_.obs != nullptr) {
      partial = services_.obs->tracer().begin(comp->spec.name,
                                              "compute (interrupted)",
                                              obs::Phase::kCompute, ctx.now(),
                                              0, ts);
    }
    co_await ctx.delay(
        sim::from_seconds(f.phase * comp->spec.compute_per_ts_s));
    if (f.node_level) {
      if (services_.ckpt != nullptr) {
        // Multi-level hierarchy: the node loss wipes one member's cached
        // blocks per affected set; the freshest level still complete (cache
        // intact, partner-rebuildable, or PFS-drained) is the restart point.
        // Mid-drain sets don't qualify until their CkptDrainAck lands.
        const std::uint64_t double_losses_before =
            services_.ckpt->stats().double_losses;
        services_.ckpt->on_node_failure(comp->id);
        if (services_.recorder != nullptr &&
            services_.ckpt->stats().double_losses > double_losses_before) {
          // Double XOR loss: some cached set is now unrestorable at any
          // level below the PFS — loud enough to warrant a forensic dump.
          services_.recorder->note_degradation(
              services_.recorder->track(comp->spec.name), ctx.now(),
              "double XOR loss: checkpoint set(s) of " + comp->spec.name +
                  " unrestorable below the PFS");
        }
        comp->last_ckpt_ts = services_.ckpt->best_restart_ts(
            comp->id, comp->last_pfs_ckpt_ts);
      } else {
        comp->last_ckpt_ts = comp->last_pfs_ckpt_ts;
      }
    }
    if (services_.recorder != nullptr) {
      services_.recorder->record(services_.recorder->track(comp->spec.name),
                                 ctx.now(), obs::FrKind::kFailure,
                                 std::uint32_t{0}, ts, f.node_level ? 1 : 0);
    }
    runtime_->trace().record(ctx.now(), TraceKind::kFailure, comp->spec.name,
                             ts, f.node_level ? 1 : 0);
    if (services_.obs != nullptr) {
      obs::SpanTracer& tracer = services_.obs->tracer();
      tracer.end(partial, ctx.now());
      tracer.instant(comp->spec.name, "failure", ctx.now(),
                     f.node_level ? 1 : 0);
      // Root of this recovery's causal tree; the detect child covers the
      // failure-detection window and is closed by the recovery path that
      // eventually picks the component up.
      comp->obs_recovery_span =
          tracer.begin(comp->spec.name, "recovery", obs::Phase::kRestart,
                       ctx.now(), 0, ts);
      comp->obs_detect_span =
          tracer.begin(comp->spec.name, "detect", obs::Phase::kRestart,
                       ctx.now(), comp->obs_recovery_span);
      services_.obs->metrics().counter("failures", comp->spec.name).inc();
    }
    runtime_->cluster().kill(comp->vproc);
    co_await ctx.delay({0});  // the cancelled token unwinds here
  }
}

void WorkflowRunner::fire_elastic_events(int ts) {
  const auto& events = runtime_->spec().elastic.events;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (elastic_fired_[i] || events[i].ts > ts) continue;
    elastic_fired_[i] = true;
    sim::spawn(runtime_->engine(), drive_elastic_event(events[i]));
  }
}

sim::Task<void> WorkflowRunner::drive_elastic_event(ElasticEvent event) {
  // Membership changes are system activity: they survive component kills
  // and run concurrently with the timestep loops they rebalance under.
  sim::Ctx ctx = services_.system_ctx();
  Trace& trace = runtime_->trace();
  trace.record(ctx.now(), TraceKind::kMembershipChange, "group-mgr", event.ts,
               event.join ? 1 : 0);
  staging::GroupChangeAck ack =
      co_await runtime_->group_change(ctx, event.join, event.server);
  trace.record(ctx.now(), TraceKind::kResilverDone, "group-mgr", event.ts,
               ack.ok ? static_cast<std::int64_t>(ack.server) : -1);
}

void WorkflowRunner::on_vproc_failure(cluster::VprocId vproc) {
  if (tearing_down_ || runtime_->all_done().is_set()) return;
  Comp* comp = runtime_->comp_for_vproc(vproc);
  if (comp == nullptr || comp->done) return;
  policy_->recover(services_, *comp);
}

}  // namespace dstage::core
