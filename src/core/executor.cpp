#include "core/executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/spawn.hpp"

namespace dstage::core {

WorkflowRunner::WorkflowRunner(WorkflowSpec spec)
    : spec_(std::move(spec)),
      fabric_(engine_, spec_.fabric),
      cluster_(engine_, fabric_),
      pfs_(engine_, spec_.pfs),
      rng_(spec_.failures.seed) {
  if (spec_.components.empty())
    throw std::invalid_argument("workflow has no components");
  if (spec_.staging_servers < 1)
    throw std::invalid_argument("need at least one staging server");
  build();
}

WorkflowRunner::~WorkflowRunner() { teardown(); }

int WorkflowRunner::total_app_cores() const {
  int n = 0;
  for (const auto& c : comps_) n += c->spec.cores;
  return n;
}

bool WorkflowRunner::comp_logged(const Comp& c) const {
  // Replication-protected components never roll back, so their requests
  // bypass the log (Fig. 6: replica failover does not trigger replay).
  return uses_logging() && c.spec.method == FtMethod::kCheckpointRestart;
}

Box WorkflowRunner::subset_region(double fraction) const {
  const auto ext = spec_.domain.extents();
  const auto dz = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(fraction * static_cast<double>(ext[2]))));
  Box r = spec_.domain;
  r.hi.z = r.lo.z + std::min(dz, ext[2]) - 1;
  return r;
}

void WorkflowRunner::build() {
  cluster_.set_detection_delay(
      sim::from_seconds(spec_.costs.detection_delay_s));
  index_ = std::make_unique<dht::SpatialIndex>(
      spec_.domain, spec_.staging_servers, spec_.cells_per_axis);
  all_done_ = std::make_unique<sim::OneShotEvent>(engine_);

  // Staging servers: one vproc on its own node each.
  staging::ServerParams server_params = spec_.server;
  server_params.logging = uses_logging();
  for (int s = 0; s < spec_.staging_servers; ++s) {
    const auto node = cluster_.add_node();
    const auto vp = cluster_.add_vproc("staging-" + std::to_string(s), node);
    server_vprocs_.push_back(vp);
    servers_.push_back(
        std::make_unique<staging::StagingServer>(cluster_, vp, server_params));
  }

  {
    std::vector<net::EndpointId> server_endpoints;
    server_endpoints.reserve(server_vprocs_.size());
    for (auto vp : server_vprocs_)
      server_endpoints.push_back(cluster_.vproc(vp).endpoint);
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      servers_[s]->set_peers(static_cast<int>(s), server_endpoints);
    }
  }

  // Application components: one actor vproc each.
  for (std::size_t i = 0; i < spec_.components.size(); ++i) {
    auto comp = std::make_unique<Comp>();
    comp->spec = spec_.components[i];
    comp->id = static_cast<staging::AppId>(i);
    comp->metrics.name = comp->spec.name;
    const auto node = cluster_.add_node();
    const int nodes_spanned =
        std::max(1, comp->spec.cores / spec_.costs.cores_per_node);
    fabric_.set_node_injection_bw(
        node, spec_.fabric.injection_bw * nodes_spanned);
    comp->vproc = cluster_.add_vproc(comp->spec.name, node);
    staging::ClientParams cp;
    cp.app = comp->id;
    cp.logged = comp_logged(*comp);
    cp.bytes_per_point = spec_.bytes_per_point;
    cp.mem_scale = spec_.mem_scale;
    comp->client = std::make_unique<staging::StagingClient>(
        cluster_, *index_, server_vprocs_, comp->vproc, cp);
    comps_.push_back(std::move(comp));
  }

  // Control client (staging rollback broadcasts during coordinated restart).
  {
    const auto node = cluster_.add_node();
    control_vproc_ = cluster_.add_vproc("control", node);
    staging::ClientParams cp;
    cp.app = static_cast<staging::AppId>(comps_.size());
    cp.logged = false;
    control_client_ = std::make_unique<staging::StagingClient>(
        cluster_, *index_, server_vprocs_, control_vproc_, cp);
  }

  // Variable registry for GC retention: consumers pin retention only when
  // they are rollback-capable.
  for (const auto& producer : comps_) {
    for (const auto& write : producer->spec.writes) {
      std::vector<std::pair<staging::AppId, bool>> consumers;
      for (const auto& reader : comps_) {
        for (const auto& read : reader->spec.reads) {
          if (read.var == write.var) {
            consumers.emplace_back(
                reader->id,
                reader->spec.method == FtMethod::kCheckpointRestart &&
                    uses_logging());
          }
        }
      }
      for (auto& server : servers_) {
        server->register_var(write.var, consumers);
      }
    }
  }

  barrier_ = std::make_unique<sim::Barrier>(
      engine_, static_cast<int>(comps_.size()));

  plan_failures();
}

void WorkflowRunner::plan_failures() {
  const int count = spec_.failures.count;
  if (count <= 0 && spec_.failures.predictor_false_alarms <= 0) return;
  std::vector<double> weights;
  weights.reserve(comps_.size());
  for (const auto& c : comps_)
    weights.push_back(static_cast<double>(c->spec.cores));
  for (int i = 0; i < count; ++i) {
    PlannedFailure f;
    f.comp = rng_.weighted_pick(weights);
    f.ts = rng_.uniform_int(1, spec_.total_ts);
    f.phase = rng_.next_double();
    f.node_level = rng_.next_double() < spec_.failures.node_failure_fraction;
    f.predicted = rng_.next_double() < spec_.failures.predictor_recall;
    plan_.push_back(f);
  }
  // Predictor false alarms: emergency checkpoints with no failure behind
  // them, modeled as predicted "failures" that never kill anything.
  for (int i = 0; i < spec_.failures.predictor_false_alarms; ++i) {
    PlannedFailure f;
    f.comp = rng_.weighted_pick(weights);
    f.ts = rng_.uniform_int(1, spec_.total_ts);
    f.predicted = true;
    f.fired = false;
    f.phase = -1;  // sentinel: alarm only, no kill
    plan_.push_back(f);
  }
}

void WorkflowRunner::check_all_done() {
  for (const auto& c : comps_) {
    if (!c->done) return;
  }
  all_done_->set();
}

RunMetrics WorkflowRunner::run() {
  if (ran_) throw std::logic_error("WorkflowRunner::run() is single-shot");
  ran_ = true;

  for (auto& server : servers_) server->start();
  cluster_.on_failure([this](cluster::VprocId vp) { on_vproc_failure(vp); });
  for (auto& comp : comps_) {
    sim::spawn(engine_, run_component(comp.get(), 0));
  }

  engine_.run();

  if (!all_done_->is_set()) {
    std::string stuck;
    for (const auto& c : comps_) {
      if (!c->done) stuck += " " + c->spec.name + "@ts" +
                             std::to_string(c->current_ts);
    }
    throw std::runtime_error("workflow deadlocked; unfinished:" + stuck);
  }
  return collect();
}

sim::Task<void> WorkflowRunner::run_component(Comp* comp, int start_ts) {
  sim::Ctx ctx = cluster_.ctx_for(comp->vproc);
  for (int ts = start_ts + 1; ts <= spec_.total_ts; ++ts) {
    trace_.record(ctx.now(), TraceKind::kTimestepStart, comp->spec.name, ts);
    co_await maybe_fail(comp, ts, ctx);

    // Reads first (consumers pull the coupled data for this timestep).
    for (const auto& read : comp->spec.reads) {
      if (ts % read.every != 0) continue;
      auto result = co_await comp->client->get(
          ctx, read.var, static_cast<staging::Version>(ts),
          subset_region(read.subset_fraction));
      comp->metrics.get_response_s.add(result.response_time.seconds());
      comp->metrics.cum_get_response_s += result.response_time.seconds();
      comp->metrics.wrong_version_reads += result.wrong_version;
      comp->metrics.corrupt_reads += result.corrupt;
      trace_.record(ctx.now(), TraceKind::kReadDone, comp->spec.name, ts,
                    static_cast<std::int64_t>(result.nominal_bytes));
    }

    co_await ctx.delay(sim::from_seconds(comp->spec.compute_per_ts_s));
    trace_.record(ctx.now(), TraceKind::kComputeDone, comp->spec.name, ts);

    for (const auto& write : comp->spec.writes) {
      auto result = co_await comp->client->put(
          ctx, write.var, static_cast<staging::Version>(ts),
          subset_region(write.subset_fraction));
      comp->metrics.put_response_s.add(result.response_time.seconds());
      comp->metrics.cum_put_response_s += result.response_time.seconds();
      comp->metrics.put_bytes += result.nominal_bytes;
      comp->metrics.suppressed_puts += result.suppressed;
      trace_.record(ctx.now(), TraceKind::kWriteDone, comp->spec.name, ts,
                    static_cast<std::int64_t>(result.nominal_bytes));
    }

    comp->current_ts = ts;
    ++comp->metrics.timesteps_done;
    trace_.record(ctx.now(), TraceKind::kTimestepDone, comp->spec.name, ts);

    co_await maybe_checkpoint(comp, ts, ctx);
  }
  comp->done = true;
  comp->metrics.completion_time_s = ctx.now().seconds();
  check_all_done();
}

sim::Task<void> WorkflowRunner::maybe_fail(Comp* comp, int ts, sim::Ctx ctx) {
  for (auto& f : plan_) {
    if (f.fired || f.comp != comp->id || f.ts != ts) continue;
    f.fired = true;
    if (f.predicted && comp->spec.method == FtMethod::kCheckpointRestart &&
        spec_.scheme != Scheme::kNone) {
      // The failure predictor raised an alert: take an emergency local
      // checkpoint so the imminent failure loses only the current timestep.
      co_await proactive_checkpoint(comp, ts - 1, ctx);
    }
    if (f.phase < 0) continue;  // false alarm: no failure follows
    ++failures_injected_;
    // Die partway into this timestep's work.
    co_await ctx.delay(
        sim::from_seconds(f.phase * comp->spec.compute_per_ts_s));
    if (f.node_level) comp->last_ckpt_ts = comp->last_pfs_ckpt_ts;
    trace_.record(ctx.now(), TraceKind::kFailure, comp->spec.name, ts,
                  f.node_level ? 1 : 0);
    cluster_.kill(comp->vproc);
    co_await ctx.delay({0});  // the cancelled token unwinds here
  }
}

sim::Task<void> WorkflowRunner::proactive_checkpoint(Comp* comp, int ts,
                                                     sim::Ctx ctx) {
  if (ts <= comp->last_ckpt_ts) co_return;  // already covered
  co_await ctx.delay(sim::from_seconds(
      static_cast<double>(spec_.costs.state_bytes(comp->spec.cores)) /
      spec_.costs.local_ckpt_bw));
  if (comp_logged(*comp)) {
    co_await comp->client->workflow_check(ctx,
                                          static_cast<staging::Version>(ts));
  }
  comp->last_ckpt_ts = ts;
  ++comp->metrics.proactive_checkpoints;
  trace_.record(ctx.now(), TraceKind::kProactiveCheckpoint, comp->spec.name,
                ts);
}

sim::Task<void> WorkflowRunner::maybe_checkpoint(Comp* comp, int ts,
                                                 sim::Ctx ctx) {
  switch (spec_.scheme) {
    case Scheme::kNone:
      co_return;
    case Scheme::kCoordinated: {
      if (ts % spec_.coordinated_period != 0) co_return;
      // Synchronizing barriers before and after the snapshot flush any
      // in-flight coupling traffic (Section II).
      co_await barrier_->arrive_and_wait(ctx.tok);
      co_await ctx.delay(spec_.costs.barrier_time(total_app_cores()));
      co_await pfs_.write(ctx, spec_.costs.state_bytes(comp->spec.cores));
      co_await barrier_->arrive_and_wait(ctx.tok);
      co_await ctx.delay(spec_.costs.barrier_time(total_app_cores()));
      comp->last_ckpt_ts = ts;
      comp->last_pfs_ckpt_ts = ts;
      global_ckpt_ts_ = ts;
      ++comp->metrics.checkpoints;
      trace_.record(ctx.now(), TraceKind::kCheckpoint, comp->spec.name, ts);
      co_return;
    }
    case Scheme::kUncoordinated:
    case Scheme::kIndividual:
    case Scheme::kHybrid: {
      if (comp->spec.method != FtMethod::kCheckpointRestart) co_return;
      const bool pfs_due = ts % comp->spec.ckpt_period == 0;
      const bool local_due = comp->spec.local_ckpt_period > 0 &&
                             ts % comp->spec.local_ckpt_period == 0;
      if (!pfs_due && !local_due) co_return;
      if (pfs_due) {
        co_await pfs_.write(ctx, spec_.costs.state_bytes(comp->spec.cores));
        comp->last_pfs_ckpt_ts = ts;
        ++comp->metrics.checkpoints;
        trace_.record(ctx.now(), TraceKind::kCheckpoint, comp->spec.name, ts);
      } else {
        // Node-local level: fast, uncontended, lost on node failure.
        co_await ctx.delay(sim::from_seconds(
            static_cast<double>(spec_.costs.state_bytes(comp->spec.cores)) /
            spec_.costs.local_ckpt_bw));
        ++comp->metrics.local_checkpoints;
        trace_.record(ctx.now(), TraceKind::kLocalCheckpoint,
                      comp->spec.name, ts);
      }
      if (comp_logged(*comp)) {
        co_await comp->client->workflow_check(
            ctx, static_cast<staging::Version>(ts));
      }
      comp->last_ckpt_ts = ts;
      co_return;
    }
  }
}

void WorkflowRunner::on_vproc_failure(cluster::VprocId vproc) {
  if (tearing_down_ || all_done_->is_set()) return;
  Comp* comp = nullptr;
  for (auto& c : comps_) {
    if (c->vproc == vproc) {
      comp = c.get();
      break;
    }
  }
  if (comp == nullptr || comp->done) return;

  if (spec_.scheme == Scheme::kCoordinated) {
    if (co_recovery_active_) return;  // secondary kill of the global restart
    co_recovery_active_ = true;
    ++comp->metrics.failures;
    sim::spawn(engine_, recover_coordinated());
    return;
  }
  if (comp->recovering) return;
  comp->recovering = true;
  ++comp->metrics.failures;
  if (comp->spec.method == FtMethod::kReplication) {
    sim::spawn(engine_, recover_failover(comp));
  } else {
    sim::spawn(engine_, recover_cr(comp));
  }
}

sim::Task<void> WorkflowRunner::recover_cr(Comp* comp) {
  sim::Ctx sys{&engine_, &sys_token_};
  trace_.record(sys.now(), TraceKind::kRecoveryStart, comp->spec.name,
                comp->current_ts);
  // ULFM: revoke, shrink, agree, then a spare joins the communicator.
  co_await sys.delay(spec_.costs.ulfm_time(comp->spec.cores));
  // Restore process state from the freshest usable checkpoint: the fast
  // node-local level when it holds the anchor, the PFS otherwise.
  if (comp->last_ckpt_ts > comp->last_pfs_ckpt_ts) {
    co_await sys.delay(sim::from_seconds(
        static_cast<double>(spec_.costs.state_bytes(comp->spec.cores)) /
        spec_.costs.local_ckpt_bw));
  } else {
    co_await pfs_.read(sys, spec_.costs.state_bytes(comp->spec.cores));
  }
  comp->metrics.timesteps_reworked += comp->current_ts - comp->last_ckpt_ts;
  cluster_.revive(comp->vproc);
  comp->recovering = false;
  trace_.record(sys.now(), TraceKind::kRecoveryDone, comp->spec.name,
                comp->last_ckpt_ts);
  sim::spawn(engine_, run_component_recovered(comp));
}

sim::Task<void> WorkflowRunner::run_component_recovered(Comp* comp) {
  sim::Ctx ctx = cluster_.ctx_for(comp->vproc);
  if (comp_logged(*comp)) {
    // workflow_restart(): client re-init + recovery event; the servers
    // switch this app's queues into replay mode.
    const std::size_t replay = co_await comp->client->workflow_restart(
        ctx, static_cast<staging::Version>(comp->last_ckpt_ts));
    trace_.record(ctx.now(), TraceKind::kReplayDone, comp->spec.name,
                  comp->last_ckpt_ts, static_cast<std::int64_t>(replay));
  } else {
    co_await ctx.delay(comp->client->params().reconnect_cost);
  }
  comp->current_ts = comp->last_ckpt_ts;
  co_await run_component(comp, comp->last_ckpt_ts);
}

sim::Task<void> WorkflowRunner::recover_failover(Comp* comp) {
  sim::Ctx sys{&engine_, &sys_token_};
  // The replica takes over; the interrupted timestep is re-executed by the
  // surviving copy. No rollback, no staging recovery event.
  co_await sys.delay(sim::from_seconds(spec_.costs.failover_s));
  cluster_.revive(comp->vproc);
  comp->recovering = false;
  const int resume_from = comp->current_ts;
  sim::spawn(engine_, run_component(comp, resume_from));
}

sim::Task<void> WorkflowRunner::recover_coordinated() {
  sim::Ctx sys{&engine_, &sys_token_};
  // Everyone rolls back: kill all surviving components.
  for (auto& c : comps_) {
    if (cluster_.vproc(c->vproc).alive) cluster_.kill(c->vproc);
  }
  // Global ULFM recovery across the whole workflow.
  co_await sys.delay(spec_.costs.ulfm_time(total_app_cores()));
  // Every component restores its state from the PFS (contended).
  {
    std::vector<sim::Task<void>> reads;
    for (auto& c : comps_) {
      reads.push_back(pfs_.read(sys, spec_.costs.state_bytes(c->spec.cores)));
    }
    co_await sim::when_all(sys, std::move(reads));
  }
  // Roll the staging area back to the global snapshot.
  co_await control_client_->rollback_staging(
      sys, static_cast<staging::Version>(global_ckpt_ts_));
  // Post-recovery resynchronization barrier.
  co_await sys.delay(spec_.costs.barrier_time(total_app_cores()));
  for (auto& c : comps_) {
    c->metrics.timesteps_reworked +=
        std::max(0, c->current_ts - global_ckpt_ts_);
    c->current_ts = global_ckpt_ts_;
    c->last_ckpt_ts = global_ckpt_ts_;
    c->last_pfs_ckpt_ts = global_ckpt_ts_;
    c->done = false;
    cluster_.revive(c->vproc);
  }
  co_recovery_active_ = false;
  for (auto& c : comps_) {
    sim::spawn(engine_, run_component(c.get(), global_ckpt_ts_));
  }
}

RunMetrics WorkflowRunner::collect() {
  RunMetrics m;
  m.scheme = spec_.scheme;
  m.failures_injected = failures_injected_;
  double total = 0;
  for (auto& c : comps_) {
    total = std::max(total, c->metrics.completion_time_s);
    m.components.push_back(c->metrics);
  }
  m.total_time_s = total;
  for (auto& server : servers_) {
    const auto& st = server->stats();
    m.staging.puts += st.puts;
    m.staging.gets += st.gets;
    m.staging.puts_suppressed += st.puts_suppressed;
    m.staging.gets_from_log += st.gets_from_log;
    m.staging.replay_mismatches += st.replay_mismatches;
    m.staging.gc_versions_dropped += st.gc_versions_dropped;
    m.staging.store_bytes_peak += server->store().peak_nominal_bytes();
    m.staging.total_bytes_peak += server->peak_total_bytes();
    m.staging.total_bytes_mean += server->mean_total_bytes();
    const auto mem = server->memory();
    m.staging.log_payload_bytes_peak += mem.log_payload_bytes;
  }
  m.pfs_bytes_written = pfs_.bytes_written();
  m.pfs_bytes_read = pfs_.bytes_read();
  m.events_processed = engine_.processed();
  return m;
}

void WorkflowRunner::teardown() {
  // Unwind every suspended actor so coroutine frames are reclaimed.
  tearing_down_ = true;
  sys_token_.cancel();
  for (auto& c : comps_) {
    if (cluster_.vproc(c->vproc).alive) cluster_.kill(c->vproc);
  }
  for (auto vp : server_vprocs_) {
    if (cluster_.vproc(vp).alive) cluster_.kill(vp);
  }
  engine_.run();
}

}  // namespace dstage::core
