// Multi-seed sweep harness. A sweep runs one independent WorkflowRunner
// per spec on a small thread pool (each Runtime is a self-contained
// simulation, so runs share no mutable state) and returns per-run metrics
// plus the trace digest fingerprint. Results are positionally stable:
// out[i] always corresponds to specs[i] regardless of thread count, so a
// parallel sweep is bit-identical to a serial one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace dstage::core {

struct SweepRun {
  std::uint64_t seed = 0;  // spec.failures.seed of this run
  RunMetrics metrics;
  std::uint64_t trace_digest = 0;
  /// Per-run observability snapshot ({"metrics": ..., "phases": ...});
  /// JSON null when the run's spec had observability off.
  Json obs;
};

struct SweepOptions {
  /// Worker threads; <= 0 means hardware concurrency. Thread count never
  /// affects results, only wall-clock time.
  int threads = 0;
  /// Optional cross-run aggregate: every instrumented run's registry is
  /// merged in (thread-safe; merge is commutative, so the aggregate is
  /// identical for serial and parallel sweeps). Null = no aggregation.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Run every spec to completion. Throws the first run's exception (after
/// all workers have drained) if any run fails.
std::vector<SweepRun> run_sweep(std::vector<WorkflowSpec> specs,
                                const SweepOptions& opts = {});

/// Convenience: sweep `make(seed)` for seeds 1..count.
std::vector<SweepRun> run_seed_sweep(
    const std::function<WorkflowSpec(std::uint64_t)>& make, int count,
    const SweepOptions& opts = {});

/// Mean total_time_s over a sweep's runs.
double mean_total_time(const std::vector<SweepRun>& runs);

/// Machine-readable forms (see util/json.hpp).
Json metrics_to_json(const RunMetrics& m);
Json sweep_to_json(const std::vector<SweepRun>& runs);

/// Trace digest formatted as the 16-hex-digit fingerprint used in logs,
/// golden tests, and JSON output.
std::string digest_hex(std::uint64_t digest);

}  // namespace dstage::core
