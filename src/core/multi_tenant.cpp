#include "core/multi_tenant.hpp"

#include <utility>
#include <vector>

namespace dstage::core {

std::string tenant_suffix(int tenant) {
  return "@t" + std::to_string(tenant);
}

void expand_tenants(WorkflowSpec& spec) {
  if (spec.tenancy.tenants <= 1 || spec.tenancy.expanded) return;
  const int tenants = spec.tenancy.tenants;

  std::vector<ComponentSpec> expanded;
  expanded.reserve(spec.components.size() *
                   static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    for (const ComponentSpec& base : spec.components) {
      ComponentSpec clone = base;
      clone.tenant = t;
      if (t > 0) clone.name += tenant_suffix(t);
      expanded.push_back(std::move(clone));
    }
  }
  spec.components = std::move(expanded);

  if (spec.tenancy.fair_share && spec.tenancy.weights.empty()) {
    for (int t = 0; t < tenants; ++t) spec.tenancy.weights[t] = 1.0;
  }
  if (spec.tenancy.fair_share) {
    spec.staging.tenant_weights = spec.tenancy.weights;
  }
  spec.tenancy.expanded = true;
}

}  // namespace dstage::core
