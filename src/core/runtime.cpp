#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/multi_tenant.hpp"
#include "core/scheme/policy.hpp"
#include "staging/tenant.hpp"

namespace dstage::core {

int RuntimeServices::total_app_cores() const {
  return runtime->total_app_cores();
}

int RuntimeServices::tenant_app_cores(int tenant) const {
  int n = 0;
  for (const auto& c : *comps) {
    if (c->spec.tenant == tenant) n += c->spec.cores;
  }
  return n;
}

Runtime::Runtime(WorkflowSpec spec, const SchemePolicy& policy)
    : spec_(std::move(spec)),
      fabric_(engine_, spec_.fabric),
      cluster_(engine_, fabric_),
      pfs_(engine_, spec_.pfs),
      rng_(spec_.failures.seed) {
  build(policy);
}

Runtime::~Runtime() { teardown(); }

int Runtime::total_app_cores() const {
  int n = 0;
  for (const auto& c : comps_) n += c->spec.cores;
  return n;
}

Box Runtime::subset_region(double fraction) const {
  const auto ext = spec_.domain.extents();
  const auto dz = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(fraction * static_cast<double>(ext[2]))));
  Box r = spec_.domain;
  r.hi.z = r.lo.z + std::min(dz, ext[2]) - 1;
  return r;
}

Comp* Runtime::comp_for_vproc(cluster::VprocId vproc) {
  for (auto& c : comps_) {
    if (c->vproc == vproc) return c.get();
  }
  return nullptr;
}

void Runtime::check_all_done() {
  for (const auto& c : comps_) {
    if (!c->done) return;
  }
  all_done_->set();
}

void Runtime::build(const SchemePolicy& policy) {
  if (obs::compiled_in() && spec_.obs.enabled) {
    obs_ = std::make_unique<obs::Observability>();
  }
  // The flight recorder is pure host-side bookkeeping: no vprocs, no
  // virtual-time delays, no trace records, no randomness. Allocating it
  // unconditionally (default-on) cannot move a digest.
  if (spec_.recorder.enabled) {
    recorder_ = std::make_unique<obs::FlightRecorder>(spec_.recorder);
  }
  cluster_.set_detection_delay(
      sim::from_seconds(spec_.costs.detection_delay_s));
  index_ = std::make_unique<dht::SpatialIndex>(
      spec_.domain, spec_.staging_servers, spec_.cells_per_axis);
  all_done_ = std::make_unique<sim::OneShotEvent>(engine_);

  // Staging servers: one vproc on its own node each. Elastic standbys are
  // built exactly like actives (same params, same registry) but start
  // outside the membership view; a JoinGroup admits them. With no standbys
  // this loop is byte-identical to the classic fixed-group build.
  staging::ServerParams server_params = spec_.server;
  server_params.logging = policy.uses_logging();
  server_params.governor = spec_.staging;
  server_params.log_codec = spec_.wlog.codec;
  const int total_servers =
      spec_.staging_servers + spec_.elastic.standby_servers;
  for (int s = 0; s < total_servers; ++s) {
    const auto node = cluster_.add_node();
    const std::string name = "staging-" + std::to_string(s);
    const auto vp = cluster_.add_vproc(name, node);
    server_vprocs_.push_back(vp);
    servers_.push_back(
        std::make_unique<staging::StagingServer>(cluster_, vp, server_params));
    {
      staging::StagingServer& server = *servers_.back();
      if (obs_ != nullptr) server.set_obs(obs_.get(), name);
      if (recorder_ != nullptr) {
        server.set_recorder(recorder_.get(), recorder_->track(name));
      }
      // GC/log milestone hooks are installed unconditionally: they feed the
      // always-on flight recorder, and their host-side work (snapshotting
      // watermarks before a checkpoint) consumes no virtual time. Trace
      // records and metrics inside them stay obs-gated — those kinds only
      // exist in instrumented runs, so the golden digests of
      // uninstrumented traces are untouched.
      obs::FlightRecorder* rec = recorder_.get();
      const std::uint32_t rec_track =
          rec != nullptr ? rec->track(name) : 0;
      obs::Observability* obs = obs_.get();
      staging::StagingServer::ObsHooks hooks;
      hooks.gc_sweep = [this, rec, rec_track, obs, name](
                           staging::Version ckpt_version,
                           std::size_t versions_dropped,
                           std::uint64_t nominal_freed,
                           std::size_t entries_scanned) {
        if (rec != nullptr) {
          rec->record(rec_track, engine_.now(), obs::FrKind::kGcSweep,
                      std::uint32_t{0},
                      static_cast<std::int64_t>(entries_scanned),
                      static_cast<std::int64_t>(nominal_freed));
        }
        if (obs != nullptr) {
          trace_.record(engine_.now(), TraceKind::kGcSweep, name,
                        static_cast<int>(ckpt_version),
                        static_cast<std::int64_t>(nominal_freed));
          obs->metrics().counter("gc.sweeps", name).inc();
          obs->metrics()
              .counter("gc.entries_scanned", name)
              .inc(entries_scanned);
        }
        (void)versions_dropped;  // counted at the sweep site
      };
      hooks.gc_watermark_advance = [this, rec, rec_track, obs, name](
                                       const std::string& var,
                                       staging::Version from,
                                       staging::Version to) {
        if (rec != nullptr) {
          rec->record(rec_track, engine_.now(), obs::FrKind::kGcWatermark,
                      var, static_cast<std::int64_t>(to));
        }
        if (obs != nullptr) {
          trace_.record(engine_.now(), TraceKind::kGcWatermarkAdvance,
                        name + "/" + var, static_cast<int>(from),
                        static_cast<std::int64_t>(to));
          obs->metrics().counter("gc.watermark_advances", name).inc();
        }
      };
      hooks.log_truncate = [this, rec, rec_track, obs, name](
                               staging::AppId app,
                               staging::Version ckpt_version,
                               std::size_t events_dropped) {
        if (rec != nullptr) {
          rec->record(rec_track, engine_.now(), obs::FrKind::kLogTruncate,
                      std::uint32_t{0},
                      static_cast<std::int64_t>(events_dropped));
        }
        if (obs != nullptr) {
          trace_.record(engine_.now(), TraceKind::kLogTruncate, name,
                        static_cast<int>(ckpt_version),
                        static_cast<std::int64_t>(events_dropped));
          obs->metrics()
              .counter("wlog.events_truncated", name)
              .inc(events_dropped);
        }
        (void)app;
      };
      hooks.spill = [this, rec, rec_track](const std::string& var,
                                           staging::Version version,
                                           std::uint64_t bytes) {
        if (rec != nullptr) {
          rec->record(rec_track, engine_.now(), obs::FrKind::kSpillOut, var,
                      static_cast<std::int64_t>(version),
                      static_cast<std::int64_t>(bytes));
        }
      };
      hooks.spill_fetch = [this, rec, rec_track](const std::string& var,
                                                 staging::Version version,
                                                 std::uint64_t bytes) {
        if (rec != nullptr) {
          rec->record(rec_track, engine_.now(), obs::FrKind::kSpillFetch, var,
                      static_cast<std::int64_t>(version),
                      static_cast<std::int64_t>(bytes));
        }
      };
      server.set_obs_hooks(std::move(hooks));
    }
  }

  {
    // One shared endpoint list and one shared identity view for the whole
    // group: per-server copies are O(N²) bytes across a 100k-server run.
    auto server_endpoints =
        std::make_shared<std::vector<net::EndpointId>>();
    server_endpoints->reserve(server_vprocs_.size());
    for (auto vp : server_vprocs_)
      server_endpoints->push_back(cluster_.vproc(vp).endpoint);
    auto identity_view =
        std::make_shared<std::vector<int>>(server_vprocs_.size());
    for (std::size_t s = 0; s < identity_view->size(); ++s)
      (*identity_view)[s] = static_cast<int>(s);
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      servers_[s]->set_peers(static_cast<int>(s), server_endpoints,
                             identity_view);
    }
  }

  // Application components: one actor vproc each.
  for (std::size_t i = 0; i < spec_.components.size(); ++i) {
    auto comp = std::make_unique<Comp>();
    comp->spec = spec_.components[i];
    comp->id = static_cast<staging::AppId>(i);
    comp->metrics.name = comp->spec.name;
    const auto node = cluster_.add_node();
    const int nodes_spanned =
        std::max(1, comp->spec.cores / spec_.costs.cores_per_node);
    fabric_.set_node_injection_bw(
        node, spec_.fabric.injection_bw * nodes_spanned);
    comp->vproc = cluster_.add_vproc(comp->spec.name, node);
    staging::ClientParams cp;
    cp.app = comp->id;
    cp.logged = policy.component_logged(comp->spec);
    cp.bytes_per_point = spec_.bytes_per_point;
    cp.mem_scale = spec_.mem_scale;
    cp.batching = spec_.net.batching;
    cp.tenant = comp->spec.tenant;
    comp->client = std::make_unique<staging::StagingClient>(
        cluster_, *index_, server_vprocs_, comp->vproc, cp);
    comps_.push_back(std::move(comp));
  }

  // Control client (staging rollback broadcasts during coordinated restart).
  {
    const auto node = cluster_.add_node();
    control_vproc_ = cluster_.add_vproc("control", node);
    staging::ClientParams cp;
    cp.app = static_cast<staging::AppId>(comps_.size());
    cp.logged = false;
    control_client_ = std::make_unique<staging::StagingClient>(
        cluster_, *index_, server_vprocs_, control_vproc_, cp);
  }

  // PFS spill gateway, only when the memory governor is armed. Created
  // after every pre-existing vproc so governed-off runs keep their exact
  // endpoint/vproc numbering (the golden-trace digests depend on it).
  if (spec_.staging.memory_budget > 0) {
    const auto node = cluster_.add_node();
    spill_vproc_ = cluster_.add_vproc("spill-gw", node);
    spill_gateway_ =
        std::make_unique<staging::SpillGateway>(cluster_, spill_vproc_, pfs_);
    if (obs_ != nullptr) spill_gateway_->set_obs(obs_.get(), "spill-gw");
    if (recorder_ != nullptr) {
      spill_gateway_->set_recorder(recorder_.get(),
                                   recorder_->track("spill-gw"));
    }
    const auto ep = cluster_.vproc(spill_vproc_).endpoint;
    for (auto& server : servers_) server->set_spill_endpoint(ep);
  }

  // Elastic membership control plane. Created after every fixed vproc;
  // with the elastic block disabled (the default) none of this runs and
  // the build — and thus the golden-trace digests — is untouched.
  if (spec_.elastic.enabled()) {
    const auto node = cluster_.add_node();
    group_vproc_ = cluster_.add_vproc("group-mgr", node);
    std::vector<staging::StagingServer*> group_servers;
    group_servers.reserve(servers_.size());
    for (auto& server : servers_) group_servers.push_back(server.get());
    group_manager_ = std::make_unique<staging::GroupManager>(
        cluster_, group_vproc_, *index_, std::move(group_servers));
    if (obs_ != nullptr) group_manager_->set_obs(obs_.get(), "group-mgr");
    if (recorder_ != nullptr) {
      group_manager_->set_recorder(recorder_.get(),
                                   recorder_->track("group-mgr"));
    }
    for (auto& server : servers_) {
      server->set_group_index(index_.get());
      server->apply_membership(index_->epoch(), index_->active_servers());
    }
    const auto gep = group_manager_->endpoint();
    for (auto& comp : comps_) {
      comp->client->set_group_endpoint(gep);
      comp->client->set_resilience_policy(spec_.server.policy);
      comp->client->set_degraded_reads(spec_.elastic.degraded_reads);
    }
    control_client_->set_group_endpoint(gep);
    control_rpc_ = std::make_unique<net::Rpc>(
        fabric_, cluster_.vproc(control_vproc_).endpoint);
  }

  // Multi-level checkpoint hierarchy + async drain agent. Created after
  // every fixed vproc; with the hierarchy disabled (the default) none of
  // this runs, so endpoint/vproc numbering — and the golden digests — are
  // untouched.
  if (spec_.ckpt.hierarchy_enabled()) {
    ckpt_hierarchy_ =
        std::make_unique<ckpt::CheckpointHierarchy>(spec_.ckpt.xor_group);
    const auto node = cluster_.add_node();
    drain_vproc_ = cluster_.add_vproc("ckpt-drain", node);
    drain_agent_ = std::make_unique<ckpt::DrainAgent>(
        cluster_, drain_vproc_, pfs_, *ckpt_hierarchy_);
    std::vector<net::EndpointId> server_endpoints;
    server_endpoints.reserve(server_vprocs_.size());
    for (auto vp : server_vprocs_)
      server_endpoints.push_back(cluster_.vproc(vp).endpoint);
    drain_agent_->set_server_endpoints(std::move(server_endpoints));
    // Governor pressure probe: the worst (max) soft-watermark ratio across
    // the group. Always 0 with the governor off, so the drain never stalls.
    if (spec_.staging.memory_budget > 0) {
      const double soft =
          static_cast<double>(spec_.staging.memory_budget) *
          spec_.staging.soft_watermark;
      drain_agent_->set_pressure([this, soft]() {
        double worst = 0;
        for (const auto& server : servers_) {
          worst = std::max(
              worst, static_cast<double>(server->memory().governed()) / soft);
        }
        return worst;
      });
    }
    // A completed drain is the durable promotion: advance the component's
    // PFS anchor (node failures may now restart here) and stamp the trace.
    drain_agent_->set_on_complete([this](int app, int ts) {
      auto& comp = comps_[static_cast<std::size_t>(app)];
      comp->last_pfs_ckpt_ts = std::max(comp->last_pfs_ckpt_ts, ts);
      trace_.record(engine_.now(), TraceKind::kCkptDrainDone, comp->spec.name,
                    ts, ts);
    });
    if (obs_ != nullptr) drain_agent_->set_obs(obs_.get(), "ckpt-drain");
    if (recorder_ != nullptr) {
      drain_agent_->set_recorder(recorder_.get(),
                                 recorder_->track("ckpt-drain"));
    }
  }

  // Variable registry for GC retention: consumers pin retention only when
  // they are rollback-capable. Registered under the tenant-namespaced key
  // — the name the servers actually store under — and coupling only binds
  // within a tenant, so each tenant's GC watermark is driven solely by its
  // own consumers' checkpoints. Tenant 0 keys are unprefixed (identity).
  for (const auto& producer : comps_) {
    for (const auto& write : producer->spec.writes) {
      std::vector<std::pair<staging::AppId, bool>> consumers;
      for (const auto& reader : comps_) {
        if (reader->spec.tenant != producer->spec.tenant) continue;
        for (const auto& read : reader->spec.reads) {
          if (read.var == write.var) {
            consumers.emplace_back(reader->id,
                                   policy.component_logged(reader->spec));
          }
        }
      }
      for (auto& server : servers_) {
        server->register_var(
            staging::tenant_key(producer->spec.tenant, write.var), consumers);
      }
    }
  }

  barrier_ = std::make_unique<sim::Barrier>(
      engine_, static_cast<int>(comps_.size()));
  // Tenant-private coordinated barriers: tenant A's checkpoint cut must
  // never wait on tenant B's components. Single-tenant runs build none and
  // barrier_for() falls back to the shared barrier above.
  if (spec_.tenancy.enabled()) {
    for (int t = 0; t < spec_.tenancy.tenants; ++t) {
      int members = 0;
      for (const auto& c : comps_) {
        if (c->spec.tenant == t) ++members;
      }
      tenant_barriers_.push_back(
          std::make_unique<sim::Barrier>(engine_, members));
    }
  }

  plan_failures();
}

void Runtime::plan_failures() {
  // Hand-specified schedules (the consistency campaign and its shrinker)
  // bypass the randomized planner entirely: the plan is the spec, verbatim.
  if (!spec_.failures.explicit_failures.empty()) {
    for (const auto& e : spec_.failures.explicit_failures) {
      PlannedFailure f;
      f.comp = e.comp;
      f.ts = e.ts;
      f.phase = e.phase;
      f.node_level = e.node_level;
      // A negative phase is the false-alarm sentinel; it only has an effect
      // when the predictor raises it.
      f.predicted = e.predicted || e.phase < 0;
      plan_.push_back(f);
    }
    return;
  }
  const int count = spec_.failures.count;
  const bool mtbf = count <= 0 && spec_.failures.mtbf_s > 0;
  if (count <= 0 && !mtbf && spec_.failures.predictor_false_alarms <= 0) {
    return;
  }
  std::vector<double> weights;
  weights.reserve(comps_.size());
  for (const auto& c : comps_)
    weights.push_back(static_cast<double>(c->spec.cores));
  for (int i = 0; i < count; ++i) {
    PlannedFailure f;
    f.comp = rng_.weighted_pick(weights);
    f.ts = rng_.uniform_int(1, spec_.total_ts);
    f.phase = rng_.next_double();
    f.node_level = rng_.next_double() < spec_.failures.node_failure_fraction;
    f.predicted = rng_.next_double() < spec_.failures.predictor_recall;
    plan_.push_back(f);
  }
  if (mtbf) {
    // Exponential arrivals with the configured MTBF, truncated to the
    // failure-free run-length estimate and mapped onto (timestep, phase)
    // using the slowest component's compute time as the timestep scale.
    double est_ts = 0;
    for (const auto& c : comps_)
      est_ts = std::max(est_ts, c->spec.compute_per_ts_s);
    if (est_ts <= 0) est_ts = 1.0;
    const double window = est_ts * spec_.total_ts;
    double t = 0;
    for (;;) {
      t += rng_.exponential(spec_.failures.mtbf_s);
      if (t >= window) break;
      PlannedFailure f;
      f.comp = rng_.weighted_pick(weights);
      const double pos = t / est_ts;
      f.ts = std::min(spec_.total_ts, 1 + static_cast<int>(pos));
      f.phase = pos - std::floor(pos);
      f.node_level =
          rng_.next_double() < spec_.failures.node_failure_fraction;
      f.predicted = rng_.next_double() < spec_.failures.predictor_recall;
      plan_.push_back(f);
    }
  }
  // Predictor false alarms: emergency checkpoints with no failure behind
  // them, modeled as predicted "failures" that never kill anything.
  for (int i = 0; i < spec_.failures.predictor_false_alarms; ++i) {
    PlannedFailure f;
    f.comp = rng_.weighted_pick(weights);
    f.ts = rng_.uniform_int(1, spec_.total_ts);
    f.predicted = true;
    f.fired = false;
    f.phase = -1;  // sentinel: alarm only, no kill
    plan_.push_back(f);
  }
}

sim::Task<staging::GroupChangeAck> Runtime::group_change_impl(sim::Ctx ctx,
                                                              bool join,
                                                              int server) {
  if (group_manager_ == nullptr || control_rpc_ == nullptr) {
    throw std::logic_error("group_change: elastic staging is not enabled");
  }
  const net::EndpointId dst = group_manager_->endpoint();
  if (join) {
    staging::JoinGroup req;
    req.server = server;
    co_return co_await control_rpc_->call(ctx, dst, std::move(req));
  }
  staging::RetireServer req;
  req.server = server;
  co_return co_await control_rpc_->call(ctx, dst, std::move(req));
}

RuntimeServices Runtime::services() {
  RuntimeServices rt;
  rt.spec = &spec_;
  rt.engine = &engine_;
  rt.fabric = &fabric_;
  rt.cluster = &cluster_;
  rt.pfs = &pfs_;
  rt.index = index_.get();
  rt.servers = &servers_;
  rt.comps = &comps_;
  rt.control_client = control_client_.get();
  rt.barrier = barrier_.get();
  for (const auto& b : tenant_barriers_) rt.tenant_barriers.push_back(b.get());
  rt.sys_token = &sys_token_;
  rt.trace = &trace_;
  rt.runtime = this;
  rt.obs = obs_.get();
  rt.recorder = recorder_.get();
  rt.ckpt = ckpt_hierarchy_.get();
  if (drain_agent_ != nullptr) rt.ckpt_drain_ep = drain_agent_->endpoint();
  return rt;
}

RunMetrics Runtime::collect(int failures_injected) const {
  RunMetrics m;
  m.scheme = spec_.scheme;
  m.failures_injected = failures_injected;
  double total = 0;
  for (const auto& c : comps_) {
    total = std::max(total, c->metrics.completion_time_s);
    m.components.push_back(c->metrics);
  }
  m.total_time_s = total;
  for (const auto& server : servers_) {
    const auto& st = server->stats();
    m.staging.puts += st.puts;
    m.staging.gets += st.gets;
    m.staging.batch_puts += st.batch_puts;
    m.staging.puts_suppressed += st.puts_suppressed;
    m.staging.gets_from_log += st.gets_from_log;
    m.staging.replay_mismatches += st.replay_mismatches;
    m.staging.gc_versions_dropped += st.gc_versions_dropped;
    m.staging.spilled_versions += st.spill_versions;
    m.staging.spilled_bytes += st.spill_bytes;
    m.staging.spill_fetches += st.spill_fetches;
    m.staging.spill_fetch_bytes += st.spill_fetch_bytes;
    m.staging.spills_aborted += st.spills_aborted;
    m.staging.urgent_gc_sweeps += st.urgent_gc_sweeps;
    m.staging.puts_rejected += st.puts_rejected;
    m.staging.governor_overruns += st.governor_overruns;
    m.staging.placement_clamped += st.placement_clamped;
    m.staging.wrong_epoch_rejects += st.wrong_epoch_rejects;
    m.staging.fair_share_rejects += st.fair_share_rejects;
    for (net::TenantId t : server->store().tenants()) {
      m.staging.tenant_store_bytes_peak[t] +=
          server->store().peak_nominal_bytes(t);
    }
    m.staging.store_bytes_peak += server->store().peak_nominal_bytes();
    m.staging.total_bytes_peak += server->peak_total_bytes();
    m.staging.total_bytes_mean += server->mean_total_bytes();
    const auto mem = server->memory();
    m.staging.log_payload_bytes_peak += mem.log_payload_bytes;
    const wlog::CodecStats& cs = server->data_log().codec_stats();
    m.staging.codec_raw_bytes += cs.raw_bytes;
    m.staging.codec_stored_bytes += cs.stored_bytes;
    m.staging.codec_blocks += cs.blocks_encoded;
    m.staging.codec_delta_blocks += cs.delta_blocks;
    m.staging.codec_rebases += cs.rebases;
  }
  m.pfs_bytes_written = pfs_.bytes_written();
  m.pfs_bytes_read = pfs_.bytes_read();
  m.events_processed = engine_.processed();
  m.vprocs = cluster_.vproc_count();
  m.fabric_packets = fabric_.packets_sent();
  m.fabric_bytes = fabric_.bytes_sent();
  for (const auto& c : comps_) {
    const net::RpcStats& rs = c->client->rpc_stats();
    m.rpc_retries += rs.retries;
    m.rpc_exhausted += rs.exhausted;
    m.rpc_backpressure_waits += rs.backpressure_waits;
    m.staging.degraded_reads += c->client->degraded_read_count();
  }
  if (group_manager_ != nullptr) {
    const staging::GroupManagerStats& gs = group_manager_->stats();
    m.staging.membership_epoch = index_->epoch();
    m.staging.membership_joins = gs.joins;
    m.staging.membership_retires = gs.retires;
    m.staging.resilver_chunks_moved = gs.resilver_chunks;
    m.staging.resilver_bytes_moved = gs.resilver_bytes;
    m.staging.resilver_time_s = gs.resilver_time_s;
  }
  if (ckpt_hierarchy_ != nullptr) {
    const ckpt::CkptStats& cs = ckpt_hierarchy_->stats();
    m.ckpt.sets_written = cs.sets_written;
    m.ckpt.sets_encoded = cs.sets_encoded;
    m.ckpt.drains_completed = cs.drains_completed;
    m.ckpt.cache_restarts = cs.cache_restarts;
    m.ckpt.partner_rebuilds = cs.partner_rebuilds;
    m.ckpt.pfs_restarts = cs.pfs_restarts;
    m.ckpt.cache_evictions = cs.cache_evictions;
    m.ckpt.blocks_lost = cs.blocks_lost;
    const ckpt::DrainAgentStats& ds = drain_agent_->stats();
    m.ckpt.drain_bytes = ds.drain_bytes;
    m.ckpt.pressure_stalls = ds.pressure_stalls;
    for (const auto& server : servers_) {
      m.ckpt.drain_promotions += server->stats().drain_promotions;
    }
  }
  return m;
}

void Runtime::finalize_obs() {
  if (obs_ == nullptr) return;
  obs::SpanTracer& tracer = obs_->tracer();
  tracer.end_all(engine_.now());
  obs::MetricsRegistry& m = obs_->metrics();
  m.counter("fabric.packets_sent").inc(fabric_.packets_sent());
  m.counter("fabric.bytes_sent").inc(fabric_.bytes_sent());
  m.counter("pfs.bytes_written").inc(pfs_.bytes_written());
  m.counter("pfs.bytes_read").inc(pfs_.bytes_read());
  m.counter("engine.events_processed").inc(engine_.processed());
  m.counter("dht.lookups").inc(index_->lookups());
  for (const auto& c : comps_) {
    const net::RpcStats& rs = c->client->rpc_stats();
    m.counter("rpc.calls").inc(rs.calls);
    m.counter("rpc.retries").inc(rs.retries);
    m.counter("rpc.exhausted").inc(rs.exhausted);
    if (rs.backpressure_waits > 0)
      m.counter("rpc.backpressure_waits").inc(rs.backpressure_waits);
  }
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const std::string name = "staging-" + std::to_string(s);
    const staging::ServerStats& st = servers_[s]->stats();
    m.counter("staging.puts", name).inc(st.puts);
    m.counter("staging.gets", name).inc(st.gets);
    m.counter("staging.puts_suppressed", name).inc(st.puts_suppressed);
    m.counter("staging.gets_from_log", name).inc(st.gets_from_log);
    m.counter("staging.checkpoints", name).inc(st.checkpoints);
    m.counter("staging.mirrored_events", name).inc(st.mirrored_events);
    m.gauge("staging.peak_total_bytes", name)
        .set(static_cast<double>(servers_[s]->peak_total_bytes()));
    m.gauge("staging.mean_total_bytes", name)
        .set(servers_[s]->mean_total_bytes());
    // Governor counters, only when the governor actually acted, so
    // governed-off instrumented runs export an unchanged metric set.
    if (st.spill_versions > 0)
      m.counter("governor.spilled_versions", name).inc(st.spill_versions);
    if (st.spill_bytes > 0)
      m.counter("governor.spilled_bytes", name).inc(st.spill_bytes);
    if (st.spill_fetches > 0)
      m.counter("governor.spill_fetches", name).inc(st.spill_fetches);
    if (st.puts_rejected > 0)
      m.counter("governor.puts_rejected_total", name).inc(st.puts_rejected);
    if (st.placement_clamped > 0)
      m.counter("resilience.placement_clamped_total", name)
          .inc(st.placement_clamped);
  }
  // Elastic counters, only when the control plane exists, so classic runs
  // export an unchanged metric set.
  if (group_manager_ != nullptr) {
    m.gauge("elastic.epoch", "group-mgr")
        .set(static_cast<double>(index_->epoch()));
    const staging::GroupManagerStats& gs = group_manager_->stats();
    if (gs.membership_updates > 0)
      m.counter("elastic.membership_updates", "group-mgr")
          .inc(gs.membership_updates);
    if (gs.drain_sweeps > 0)
      m.counter("elastic.drain_sweeps", "group-mgr").inc(gs.drain_sweeps);
  }
  // Ckpt-hierarchy counters, only when the drain agent exists, so classic
  // runs export an unchanged metric set.
  if (drain_agent_ != nullptr) {
    const ckpt::CkptStats& cs = ckpt_hierarchy_->stats();
    if (cs.sets_written > 0)
      m.counter("ckpt.sets_written", "ckpt-drain").inc(cs.sets_written);
    if (cs.cache_restarts > 0)
      m.counter("ckpt.cache_restarts", "ckpt-drain").inc(cs.cache_restarts);
    if (cs.partner_rebuilds > 0)
      m.counter("ckpt.partner_rebuilds", "ckpt-drain")
          .inc(cs.partner_rebuilds);
    if (cs.pfs_restarts > 0)
      m.counter("ckpt.pfs_restarts", "ckpt-drain").inc(cs.pfs_restarts);
  }
}

void Runtime::teardown() {
  if (torn_down_) return;
  torn_down_ = true;
  sys_token_.cancel();
  for (auto& c : comps_) {
    if (cluster_.vproc(c->vproc).alive) cluster_.kill(c->vproc);
  }
  for (auto vp : server_vprocs_) {
    if (cluster_.vproc(vp).alive) cluster_.kill(vp);
  }
  if (spill_vproc_ >= 0 && cluster_.vproc(spill_vproc_).alive) {
    cluster_.kill(spill_vproc_);
  }
  if (group_vproc_ >= 0 && cluster_.vproc(group_vproc_).alive) {
    cluster_.kill(group_vproc_);
  }
  if (drain_vproc_ >= 0 && cluster_.vproc(drain_vproc_).alive) {
    cluster_.kill(drain_vproc_);
  }
  engine_.run();
}

std::unique_ptr<Runtime> RuntimeBuilder::build() {
  if (policy_ == nullptr)
    throw std::logic_error("RuntimeBuilder: no scheme policy set");
  // Clone the component graph per tenant (no-op for single-tenant specs
  // and for specs a caller already pre-expanded to tweak clones).
  expand_tenants(spec_);
  spec_.validate();
  return std::make_unique<Runtime>(std::move(spec_), *policy_);
}

}  // namespace dstage::core
