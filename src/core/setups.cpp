#include "core/setups.hpp"

#include <stdexcept>

namespace dstage::core {

WorkflowSpec table2_setup(Scheme scheme, double subset_fraction,
                          int sim_period, int analytic_period) {
  if (subset_fraction <= 0 || subset_fraction > 1.0)
    throw std::invalid_argument("subset fraction must be in (0, 1]");
  WorkflowSpec spec;
  spec.domain = Box::from_dims(512, 512, 256);
  spec.bytes_per_point = 8.0;  // ~0.5 GB per full-domain timestep, 20 GB/run
  spec.mem_scale = 65536;
  spec.total_ts = 40;
  spec.staging_servers = 4;  // 32 staging cores, 8 per server process
  spec.staging_cores = 32;
  spec.scheme = scheme;
  spec.coordinated_period = 4;

  ComponentSpec sim;
  sim.name = "simulation";
  sim.cores = 256;  // 8 x 8 x 4
  sim.compute_per_ts_s = spec.costs.sim_compute_per_ts_s;
  sim.ckpt_period = sim_period;
  sim.writes.push_back(CouplingWrite{"field", subset_fraction});
  spec.components.push_back(sim);

  ComponentSpec analytic;
  analytic.name = "analytic";
  analytic.cores = 64;
  analytic.compute_per_ts_s = spec.costs.analytic_compute_per_ts_s;
  analytic.ckpt_period = analytic_period;
  analytic.method = scheme == Scheme::kHybrid ? FtMethod::kReplication
                                              : FtMethod::kCheckpointRestart;
  analytic.reads.push_back(CouplingRead{"field", subset_fraction, 1});
  spec.components.push_back(analytic);

  return spec;
}

int table3_total_cores(int scale_index) {
  if (scale_index < 0 || scale_index > 4)
    throw std::invalid_argument("scale index must be 0..4");
  return 704 << scale_index;
}

WorkflowSpec table3_setup(Scheme scheme, int scale_index, int failures,
                          std::uint64_t seed) {
  if (scale_index < 0 || scale_index > 4)
    throw std::invalid_argument("scale index must be 0..4");
  const int k = scale_index;
  WorkflowSpec spec;
  spec.domain = Box::from_dims(512, 512, 256);
  // 40 GB over 40 ts at the base scale, doubling with each step (1 GB per
  // full-domain timestep at 704 cores).
  spec.bytes_per_point = 16.0 * static_cast<double>(1 << k);
  spec.mem_scale = 65536ull << k;
  spec.total_ts = 40;
  spec.staging_servers = 4 << k;  // 64 .. 1024 staging cores, 16 per server
  spec.staging_cores = 64 << k;
  spec.scheme = scheme;
  spec.coordinated_period = 8;
  spec.failures.count = failures;
  spec.failures.seed = seed;

  ComponentSpec sim;
  sim.name = "simulation";
  sim.cores = 512 << k;
  sim.compute_per_ts_s = spec.costs.sim_compute_per_ts_s;  // weak scaling
  sim.ckpt_period = 8;
  sim.writes.push_back(CouplingWrite{"field", 1.0});
  spec.components.push_back(sim);

  ComponentSpec analytic;
  analytic.name = "analytic";
  analytic.cores = 128 << k;
  analytic.compute_per_ts_s = spec.costs.analytic_compute_per_ts_s;
  analytic.ckpt_period = 10;
  analytic.method = scheme == Scheme::kHybrid ? FtMethod::kReplication
                                              : FtMethod::kCheckpointRestart;
  analytic.reads.push_back(CouplingRead{"field", 1.0, 1});
  spec.components.push_back(analytic);

  return spec;
}

WorkflowSpec ceiling_setup(int staging_servers, wlog::codec::Scheme codec) {
  if (staging_servers < 1)
    throw std::invalid_argument("staging_servers must be >= 1");
  WorkflowSpec spec;
  spec.domain = Box::from_dims(256, 256, 128);
  spec.bytes_per_point = 8.0;  // 64 MB nominal per full-domain timestep
  spec.mem_scale = 65536;
  spec.total_ts = 4;
  spec.staging_servers = staging_servers;
  spec.staging_cores = staging_servers;
  spec.cells_per_axis = 64;
  spec.scheme = Scheme::kUncoordinated;
  spec.coordinated_period = 4;
  spec.wlog.codec = codec;

  ComponentSpec sim;
  sim.name = "simulation";
  sim.cores = 512;
  sim.compute_per_ts_s = spec.costs.sim_compute_per_ts_s;
  sim.ckpt_period = 2;
  sim.writes.push_back(CouplingWrite{"field", 1.0});
  spec.components.push_back(sim);

  ComponentSpec analytic;
  analytic.name = "analytic";
  analytic.cores = 128;
  analytic.compute_per_ts_s = spec.costs.analytic_compute_per_ts_s;
  analytic.ckpt_period = 3;
  analytic.reads.push_back(CouplingRead{"field", 1.0, 1});
  spec.components.push_back(analytic);

  return spec;
}

}  // namespace dstage::core
