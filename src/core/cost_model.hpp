// Calibration constants for the virtual-time cost model (DESIGN.md §6).
// These stand in for the Cori testbed: absolute values are representative,
// and the experiment shapes (who wins, crossovers, growth trends) are what
// the reproduction preserves.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.hpp"

namespace dstage::core {

struct CostModel {
  // --- compute -----------------------------------------------------------
  /// Simulation (producer) compute per timestep at base scale; weak scaling
  /// keeps this constant as cores grow.
  double sim_compute_per_ts_s = 9.0;
  /// Analytic (consumer) compute per timestep.
  double analytic_compute_per_ts_s = 3.0;

  /// Physical cores per node (Cori Haswell: 32); an application component
  /// spanning C cores aggregates C/cores_per_node NICs of injection
  /// bandwidth.
  int cores_per_node = 32;

  // --- coordination ------------------------------------------------------
  /// Barrier / collective cost multiplier: alpha * log2(P).
  double barrier_alpha_s = 40e-6;

  // --- checkpoint state --------------------------------------------------
  /// Process state checkpointed per core (solver arrays + runtime).
  double ckpt_bytes_per_core = 8e6;

  /// Node-local checkpoint device bandwidth (NVRAM / burst buffer),
  /// uncontended per component.
  double local_ckpt_bw = 5e9;

  /// Partner-rebuild bandwidth for the multi-level hierarchy: pulling a
  /// lost node's checkpoint blocks off its XOR group peers crosses the
  /// fabric, so it is slower than the local device but far faster than a
  /// cold PFS read.
  double partner_rebuild_bw = 2e9;

  // --- recovery ----------------------------------------------------------
  /// Time from crash to detection (heartbeat timeout).
  double detection_delay_s = 0.5;
  /// ULMF revoke/shrink/agree collective: alpha * log2(P).
  double ulfm_alpha_s = 2e-3;
  /// Spare process join + communicator reconstruction, flat.
  double spare_join_s = 1.5;
  /// Replication failover (switch task to the replica), flat.
  double failover_s = 0.4;

  [[nodiscard]] sim::Duration barrier_time(int procs) const {
    return sim::from_seconds(barrier_alpha_s *
                             std::log2(std::max(2, procs)));
  }
  [[nodiscard]] sim::Duration ulfm_time(int procs) const {
    return sim::from_seconds(ulfm_alpha_s * std::log2(std::max(2, procs)) +
                             spare_join_s);
  }
  [[nodiscard]] std::uint64_t state_bytes(int cores) const {
    return static_cast<std::uint64_t>(ckpt_bytes_per_core *
                                      static_cast<double>(cores));
  }
};

}  // namespace dstage::core
