// Multi-tenant spec expansion: turn a single-workflow WorkflowSpec with
// tenancy.tenants == N into N co-located copies of its component graph
// sharing one cluster, staging group, DHT and spill gateway. The expansion
// is pure spec surgery — the runtime underneath never special-cases tenant
// counts — and is idempotent (tenancy.expanded guards re-entry), so
// callers like bench/fig_multitenant may pre-expand, tweak individual
// tenants' clones, and still hand the spec to RuntimeBuilder.
#pragma once

#include "core/workflow.hpp"

namespace dstage::core {

/// Expand `spec.components` to tenancy.tenants copies. Tenant 0's clones
/// come FIRST and keep their original names, so pre-expansion component
/// indices (explicit failures, campaign victim picks) and single-tenant
/// trace component names stay valid; tenant t > 0 clones are renamed
/// "<name>@t<t>". Every clone is stamped with its tenant id; with
/// fair_share set, empty weights become equal weights over all tenants and
/// are forwarded to the staging memory governor. No-op when
/// tenancy.tenants <= 1 or the spec is already expanded.
void expand_tenants(WorkflowSpec& spec);

/// The suffix expand_tenants() appends to tenant-t (t > 0) clone names:
/// "@t<t>". The oracle strips it to rebase bystander reads onto the
/// solo-run reference.
std::string tenant_suffix(int tenant);

}  // namespace dstage::core
