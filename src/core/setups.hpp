// Experiment presets encoding Table II (base synthetic setup, 352 cores)
// and Table III (scalability scenarios, 704 .. 11,264 cores) of the paper.
#pragma once

#include "core/workflow.hpp"

namespace dstage::core {

/// Table II: 256 simulation + 64 analytic + 32 staging cores over a
/// 512×512×256 domain, 40 timesteps, ~20 GB staged over the run;
/// write-immediately-followed-by-read coupling on variable "field".
/// @param subset_fraction Case-1 sweep parameter (0.2 .. 1.0)
/// @param sim_period / analytic_period per-component checkpoint periods
WorkflowSpec table2_setup(Scheme scheme, double subset_fraction = 1.0,
                          int sim_period = 4, int analytic_period = 5);

/// Table III scalability scenario. scale_index 0..4 selects
/// 704/1408/2816/5632/11264 total cores (512/1024/.../8192 simulation
/// cores) with proportional staging and analytic cores and data volume.
/// Checkpoint periods 8 (coordinated and simulation) / 10 (analytic).
WorkflowSpec table3_setup(Scheme scheme, int scale_index, int failures,
                          std::uint64_t seed = 1);

/// Total core count of a Table III scale index (for labels).
int table3_total_cores(int scale_index);

/// DES ceiling scenario: `staging_servers` staging vprocs (tens of
/// thousands) running a short fixed workload. The point is engine/vproc
/// scalability, not data volume: the domain stays fixed, so per-server
/// payloads shrink as the group grows while the event population scales
/// with the server count. cells_per_axis is raised to 64 (262,144 cells)
/// so every server owns cells even at 100k+ servers.
WorkflowSpec ceiling_setup(
    int staging_servers,
    wlog::codec::Scheme codec = wlog::codec::Scheme::kNone);

}  // namespace dstage::core
