#include "core/recovery_pipeline.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/spawn.hpp"

namespace dstage::core {

sim::Task<void> stage_process_recovery(RuntimeServices& rt, Comp& comp,
                                       sim::Ctx sys) {
  rt.trace->record(sys.now(), TraceKind::kRecoveryStart, comp.spec.name,
                   comp.current_ts);
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryStart, &comp, comp.current_ts);
  }
  obs::SpanId ulfm = 0;
  if (rt.obs != nullptr) {
    rt.obs->tracer().end(comp.obs_detect_span, sys.now());
    comp.obs_detect_span = 0;
    ulfm = rt.obs->tracer().begin(comp.spec.name, "ulfm", obs::Phase::kRestart,
                                  sys.now(), comp.obs_recovery_span);
  }
  // ULFM: revoke, shrink, agree, then a spare joins the communicator.
  co_await sys.delay(rt.spec->costs.ulfm_time(comp.spec.cores));
  if (rt.obs != nullptr) rt.obs->tracer().end(ulfm, sys.now());
}

sim::Task<void> stage_data_recovery(RuntimeServices& rt, Comp& comp,
                                    sim::Ctx sys) {
  obs::SpanId restore = 0;
  if (rt.obs != nullptr) {
    restore = rt.obs->tracer().begin(comp.spec.name, "restore",
                                     obs::Phase::kRestart, sys.now(),
                                     comp.obs_recovery_span,
                                     comp.last_ckpt_ts);
  }
  const std::uint64_t bytes = rt.spec->costs.state_bytes(comp.spec.cores);
  if (rt.ckpt != nullptr) {
    // A drain may have landed between the failure instant and this restore,
    // promoting a set newer than the choice made at failure time — and the
    // staging GC watermark may already have advanced past the older choice.
    // Restart from the freshest durable set instead.
    comp.last_ckpt_ts = std::max(comp.last_ckpt_ts, comp.last_pfs_ckpt_ts);
  }
  if (rt.ckpt != nullptr && comp.last_ckpt_ts > 0) {
    // Multi-level hierarchy: restore from the fastest level that still
    // holds a complete set — intact cache, partner rebuild (XOR decode of
    // the survivors' blocks), or the durable PFS copy. The hierarchy
    // verifies checksums and records the choice for the oracle.
    const ckpt::Restore r =
        rt.ckpt->restore(comp.id, comp.last_ckpt_ts, comp.last_pfs_ckpt_ts);
    if (rt.recorder != nullptr) {
      rt.recorder->record(rt.recorder->track(comp.spec.name), sys.now(),
                          obs::FrKind::kRestartLevel, comp.spec.name,
                          static_cast<std::int64_t>(r.level),
                          comp.last_ckpt_ts);
    }
    switch (r.level) {
      case ckpt::CkptLevel::kCache:
        co_await sys.delay(sim::from_seconds(static_cast<double>(bytes) /
                                             rt.spec->costs.local_ckpt_bw));
        break;
      case ckpt::CkptLevel::kPartner: {
        // Pull the lost member's worth of blocks off the group peers and
        // decode; slower than local NVRAM, far faster than a cold PFS read.
        obs::SpanId rebuild = 0;
        if (rt.obs != nullptr) {
          rebuild = rt.obs->tracer().begin(comp.spec.name, "rebuild",
                                           obs::Phase::kDrain, sys.now(),
                                           restore, comp.last_ckpt_ts);
        }
        co_await sys.delay(sim::from_seconds(
            static_cast<double>(bytes) / rt.spec->costs.partner_rebuild_bw));
        if (rt.obs != nullptr) rt.obs->tracer().end(rebuild, sys.now());
        break;
      }
      case ckpt::CkptLevel::kPfs:
        co_await rt.pfs->read(sys, bytes);
        break;
    }
    rt.trace->record(sys.now(), TraceKind::kCkptRestore, comp.spec.name,
                     comp.last_ckpt_ts, static_cast<std::int64_t>(r.level));
  } else if (comp.last_ckpt_ts > comp.last_pfs_ckpt_ts) {
    // Hierarchy off, but a fresher local (cache-level) checkpoint exists.
    if (rt.recorder != nullptr) {
      rt.recorder->record(rt.recorder->track(comp.spec.name), sys.now(),
                          obs::FrKind::kRestartLevel, comp.spec.name,
                          static_cast<std::int64_t>(ckpt::CkptLevel::kCache),
                          comp.last_ckpt_ts);
    }
    co_await sys.delay(sim::from_seconds(static_cast<double>(bytes) /
                                         rt.spec->costs.local_ckpt_bw));
  } else {
    if (rt.recorder != nullptr) {
      rt.recorder->record(rt.recorder->track(comp.spec.name), sys.now(),
                          obs::FrKind::kRestartLevel, comp.spec.name,
                          static_cast<std::int64_t>(ckpt::CkptLevel::kPfs),
                          comp.last_ckpt_ts);
    }
    co_await rt.pfs->read(sys, bytes);
  }
  if (rt.obs != nullptr) rt.obs->tracer().end(restore, sys.now());
  comp.metrics.timesteps_reworked += comp.current_ts - comp.last_ckpt_ts;
}

sim::Task<void> stage_reattach_and_replay(RuntimeServices& rt, Comp& comp,
                                          bool logged, sim::Ctx ctx) {
  obs::SpanId reattach = 0;
  if (rt.obs != nullptr) {
    reattach = rt.obs->tracer().begin(
        comp.spec.name, logged ? "replay" : "reattach",
        logged ? obs::Phase::kReplay : obs::Phase::kRestart, ctx.now(),
        comp.obs_recovery_span, comp.last_ckpt_ts);
  }
  if (logged) {
    // workflow_restart(): client re-init + recovery event; the servers
    // switch this app's queues into replay mode.
    const std::size_t replay = co_await comp.client->workflow_restart(
        ctx, static_cast<staging::Version>(comp.last_ckpt_ts));
    if (rt.recorder != nullptr) {
      rt.recorder->record(rt.recorder->track(comp.spec.name), ctx.now(),
                          obs::FrKind::kReplayDone, comp.spec.name,
                          static_cast<std::int64_t>(replay),
                          comp.last_ckpt_ts);
    }
    rt.trace->record(ctx.now(), TraceKind::kReplayDone, comp.spec.name,
                     comp.last_ckpt_ts, static_cast<std::int64_t>(replay));
    if (rt.recovery_probe) {
      rt.recovery_probe(TraceKind::kReplayDone, &comp, comp.last_ckpt_ts);
    }
  } else {
    co_await ctx.delay(comp.client->params().reconnect_cost);
  }
  if (rt.obs != nullptr) rt.obs->tracer().end(reattach, ctx.now());
  comp.current_ts = comp.last_ckpt_ts;
}

sim::Task<void> run_checkpoint_restart_recovery(RuntimeServices& rt,
                                                Comp& comp) {
  sim::Ctx sys = rt.system_ctx();
  co_await stage_process_recovery(rt, comp, sys);
  co_await stage_data_recovery(rt, comp, sys);
  rt.cluster->revive(comp.vproc);
  comp.recovering = false;
  rt.trace->record(sys.now(), TraceKind::kRecoveryDone, comp.spec.name,
                   comp.last_ckpt_ts);
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryDone, &comp, comp.last_ckpt_ts);
  }
  rt.resume_recovered(&comp);
}

sim::Task<void> run_failover_recovery(RuntimeServices& rt, Comp& comp) {
  sim::Ctx sys = rt.system_ctx();
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryStart, &comp, comp.current_ts);
  }
  obs::SpanId failover = 0;
  if (rt.obs != nullptr) {
    rt.obs->tracer().end(comp.obs_detect_span, sys.now());
    comp.obs_detect_span = 0;
    failover = rt.obs->tracer().begin(comp.spec.name, "failover",
                                      obs::Phase::kRestart, sys.now(),
                                      comp.obs_recovery_span);
  }
  // The replica takes over; the interrupted timestep is re-executed by the
  // surviving copy. No rollback, no staging recovery event.
  co_await sys.delay(sim::from_seconds(rt.spec->costs.failover_s));
  rt.cluster->revive(comp.vproc);
  comp.recovering = false;
  const int resume_from = comp.current_ts;
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryDone, &comp, resume_from);
  }
  if (rt.obs != nullptr) {
    rt.obs->tracer().end(failover, sys.now());
    rt.obs->tracer().end(comp.obs_recovery_span, sys.now());
    comp.obs_recovery_span = 0;
    rt.obs->metrics().counter("recoveries", comp.spec.name).inc();
  }
  rt.resume(&comp, resume_from);
}

sim::Task<void> run_coordinated_recovery(RuntimeServices& rt,
                                         int global_ckpt_ts,
                                         std::function<void()> on_restarted,
                                         int tenant) {
  sim::Ctx sys = rt.system_ctx();
  // Rollback scope: the whole workflow (tenant < 0, the classic path) or
  // one tenant's components only — its peers' clocks, checkpoints and
  // staging keys must come through another tenant's restart untouched.
  const auto in_scope = [tenant](const std::unique_ptr<Comp>& c) {
    return tenant < 0 || c->spec.tenant == tenant;
  };
  const int scope_cores =
      tenant < 0 ? rt.total_app_cores() : rt.tenant_app_cores(tenant);
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryStart, nullptr, global_ckpt_ts);
  }
  // Everyone in scope rolls back: kill the surviving components.
  for (auto& c : *rt.comps) {
    if (!in_scope(c)) continue;
    if (rt.cluster->vproc(c->vproc).alive) rt.cluster->kill(c->vproc);
  }
  obs::SpanId coord = 0;
  if (rt.obs != nullptr) {
    obs::SpanTracer& tracer = rt.obs->tracer();
    obs::SpanId parent = 0;
    for (auto& c : *rt.comps) {
      if (!in_scope(c)) continue;
      if (c->obs_recovery_span != 0) {
        // A component that failed: its recovery root stays open across the
        // whole global restart; close only the detect child.
        tracer.end(c->obs_detect_span, sys.now());
        c->obs_detect_span = 0;
        if (parent == 0) parent = c->obs_recovery_span;
      } else {
        // A survivor killed mid-activity by the rollback.
        tracer.end_open_for_track(c->spec.name, sys.now());
      }
    }
    coord = tracer.begin("workflow", "coordinated restart",
                         obs::Phase::kRestart, sys.now(), parent,
                         global_ckpt_ts);
  }
  auto child = [&](const char* name) {
    return rt.obs == nullptr
               ? obs::SpanId{0}
               : rt.obs->tracer().begin("workflow", name, obs::Phase::kRestart,
                                        sys.now(), coord);
  };
  auto close = [&](obs::SpanId id) {
    if (rt.obs != nullptr) rt.obs->tracer().end(id, sys.now());
  };
  // ULFM recovery across the rollback scope.
  obs::SpanId stage = child("ulfm");
  co_await sys.delay(rt.spec->costs.ulfm_time(scope_cores));
  close(stage);
  // Every in-scope component restores its state from the PFS (contended).
  stage = child("restore");
  {
    std::vector<sim::Task<void>> reads;
    for (auto& c : *rt.comps) {
      if (!in_scope(c)) continue;
      reads.push_back(
          rt.pfs->read(sys, rt.spec->costs.state_bytes(c->spec.cores)));
    }
    co_await sim::when_all(sys, std::move(reads));
  }
  close(stage);
  // Roll the staging area back to the global snapshot — scoped to the
  // tenant's namespaced keys; a whole-workflow rollback (tenant < 0)
  // truncates everything, as before.
  stage = child("rollback");
  co_await rt.control_client->rollback_staging(
      sys, static_cast<staging::Version>(global_ckpt_ts), tenant);
  close(stage);
  // Post-recovery resynchronization barrier.
  stage = child("resync barrier");
  co_await sys.delay(rt.spec->costs.barrier_time(scope_cores));
  close(stage);
  for (auto& c : *rt.comps) {
    if (!in_scope(c)) continue;
    c->metrics.timesteps_reworked +=
        std::max(0, c->current_ts - global_ckpt_ts);
    c->current_ts = global_ckpt_ts;
    c->last_ckpt_ts = global_ckpt_ts;
    c->last_pfs_ckpt_ts = global_ckpt_ts;
    c->done = false;
    rt.cluster->revive(c->vproc);
  }
  if (on_restarted) on_restarted();
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryDone, nullptr, global_ckpt_ts);
  }
  if (rt.obs != nullptr) {
    obs::SpanTracer& tracer = rt.obs->tracer();
    tracer.end(coord, sys.now());
    for (auto& c : *rt.comps) {
      if (!in_scope(c)) continue;
      if (c->obs_recovery_span != 0) {
        tracer.end(c->obs_recovery_span, sys.now());
        c->obs_recovery_span = 0;
      }
    }
    rt.obs->metrics().counter("recoveries", "workflow").inc();
  }
  for (auto& c : *rt.comps) {
    if (!in_scope(c)) continue;
    rt.resume(c.get(), global_ckpt_ts);
  }
}

}  // namespace dstage::core
