#include "core/recovery_pipeline.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/spawn.hpp"

namespace dstage::core {

sim::Task<void> stage_process_recovery(RuntimeServices& rt, Comp& comp,
                                       sim::Ctx sys) {
  rt.trace->record(sys.now(), TraceKind::kRecoveryStart, comp.spec.name,
                   comp.current_ts);
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryStart, &comp, comp.current_ts);
  }
  // ULFM: revoke, shrink, agree, then a spare joins the communicator.
  co_await sys.delay(rt.spec->costs.ulfm_time(comp.spec.cores));
}

sim::Task<void> stage_data_recovery(RuntimeServices& rt, Comp& comp,
                                    sim::Ctx sys) {
  if (comp.last_ckpt_ts > comp.last_pfs_ckpt_ts) {
    co_await sys.delay(sim::from_seconds(
        static_cast<double>(rt.spec->costs.state_bytes(comp.spec.cores)) /
        rt.spec->costs.local_ckpt_bw));
  } else {
    co_await rt.pfs->read(sys, rt.spec->costs.state_bytes(comp.spec.cores));
  }
  comp.metrics.timesteps_reworked += comp.current_ts - comp.last_ckpt_ts;
}

sim::Task<void> stage_reattach_and_replay(RuntimeServices& rt, Comp& comp,
                                          bool logged, sim::Ctx ctx) {
  if (logged) {
    // workflow_restart(): client re-init + recovery event; the servers
    // switch this app's queues into replay mode.
    const std::size_t replay = co_await comp.client->workflow_restart(
        ctx, static_cast<staging::Version>(comp.last_ckpt_ts));
    rt.trace->record(ctx.now(), TraceKind::kReplayDone, comp.spec.name,
                     comp.last_ckpt_ts, static_cast<std::int64_t>(replay));
    if (rt.recovery_probe) {
      rt.recovery_probe(TraceKind::kReplayDone, &comp, comp.last_ckpt_ts);
    }
  } else {
    co_await ctx.delay(comp.client->params().reconnect_cost);
  }
  comp.current_ts = comp.last_ckpt_ts;
}

sim::Task<void> run_checkpoint_restart_recovery(RuntimeServices& rt,
                                                Comp& comp) {
  sim::Ctx sys = rt.system_ctx();
  co_await stage_process_recovery(rt, comp, sys);
  co_await stage_data_recovery(rt, comp, sys);
  rt.cluster->revive(comp.vproc);
  comp.recovering = false;
  rt.trace->record(sys.now(), TraceKind::kRecoveryDone, comp.spec.name,
                   comp.last_ckpt_ts);
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryDone, &comp, comp.last_ckpt_ts);
  }
  rt.resume_recovered(&comp);
}

sim::Task<void> run_failover_recovery(RuntimeServices& rt, Comp& comp) {
  sim::Ctx sys = rt.system_ctx();
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryStart, &comp, comp.current_ts);
  }
  // The replica takes over; the interrupted timestep is re-executed by the
  // surviving copy. No rollback, no staging recovery event.
  co_await sys.delay(sim::from_seconds(rt.spec->costs.failover_s));
  rt.cluster->revive(comp.vproc);
  comp.recovering = false;
  const int resume_from = comp.current_ts;
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryDone, &comp, resume_from);
  }
  rt.resume(&comp, resume_from);
}

sim::Task<void> run_coordinated_recovery(RuntimeServices& rt,
                                         int global_ckpt_ts,
                                         std::function<void()> on_restarted) {
  sim::Ctx sys = rt.system_ctx();
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryStart, nullptr, global_ckpt_ts);
  }
  // Everyone rolls back: kill all surviving components.
  for (auto& c : *rt.comps) {
    if (rt.cluster->vproc(c->vproc).alive) rt.cluster->kill(c->vproc);
  }
  // Global ULFM recovery across the whole workflow.
  co_await sys.delay(rt.spec->costs.ulfm_time(rt.total_app_cores()));
  // Every component restores its state from the PFS (contended).
  {
    std::vector<sim::Task<void>> reads;
    for (auto& c : *rt.comps) {
      reads.push_back(
          rt.pfs->read(sys, rt.spec->costs.state_bytes(c->spec.cores)));
    }
    co_await sim::when_all(sys, std::move(reads));
  }
  // Roll the staging area back to the global snapshot.
  co_await rt.control_client->rollback_staging(
      sys, static_cast<staging::Version>(global_ckpt_ts));
  // Post-recovery resynchronization barrier.
  co_await sys.delay(rt.spec->costs.barrier_time(rt.total_app_cores()));
  for (auto& c : *rt.comps) {
    c->metrics.timesteps_reworked +=
        std::max(0, c->current_ts - global_ckpt_ts);
    c->current_ts = global_ckpt_ts;
    c->last_ckpt_ts = global_ckpt_ts;
    c->last_pfs_ckpt_ts = global_ckpt_ts;
    c->done = false;
    rt.cluster->revive(c->vproc);
  }
  if (on_restarted) on_restarted();
  if (rt.recovery_probe) {
    rt.recovery_probe(TraceKind::kRecoveryDone, nullptr, global_ckpt_ts);
  }
  for (auto& c : *rt.comps) {
    rt.resume(c.get(), global_ckpt_ts);
  }
}

}  // namespace dstage::core
