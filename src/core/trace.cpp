#include "core/trace.hpp"

#include <ostream>

#include "util/checksum.hpp"

namespace dstage::core {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kTimestepStart:
      return "ts_start";
    case TraceKind::kReadDone:
      return "read_done";
    case TraceKind::kComputeDone:
      return "compute_done";
    case TraceKind::kWriteDone:
      return "write_done";
    case TraceKind::kTimestepDone:
      return "ts_done";
    case TraceKind::kCheckpoint:
      return "checkpoint";
    case TraceKind::kLocalCheckpoint:
      return "local_checkpoint";
    case TraceKind::kProactiveCheckpoint:
      return "proactive_checkpoint";
    case TraceKind::kFailure:
      return "failure";
    case TraceKind::kRecoveryStart:
      return "recovery_start";
    case TraceKind::kRecoveryDone:
      return "recovery_done";
    case TraceKind::kReplayDone:
      return "replay_done";
  }
  return "?";
}

void Trace::record(sim::TimePoint at, TraceKind kind, std::string component,
                   int timestep, std::int64_t value) {
  events_.push_back(
      TraceEvent{at, kind, std::move(component), timestep, value});
}

std::vector<TraceEvent> Trace::of_kind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Trace::of_component(
    const std::string& component) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.component == component) out.push_back(e);
  }
  return out;
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& e : events_) {
    const std::int64_t fields[4] = {e.at.ns, static_cast<std::int64_t>(e.kind),
                                    e.timestep, e.value};
    h = fnv1a(std::as_bytes(std::span{fields}), h);
    h = fnv1a_str(e.component, h);
  }
  return h;
}

void Trace::write_csv(std::ostream& os) const {
  os << "time_s,kind,component,timestep,value\n";
  for (const auto& e : events_) {
    os << e.at.seconds() << ',' << trace_kind_name(e.kind) << ','
       << e.component << ',' << e.timestep << ',' << e.value << '\n';
  }
}

}  // namespace dstage::core
