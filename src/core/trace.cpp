#include "core/trace.hpp"

#include <ostream>

#include "util/checksum.hpp"

namespace dstage::core {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kTimestepStart:
      return "ts_start";
    case TraceKind::kReadDone:
      return "read_done";
    case TraceKind::kComputeDone:
      return "compute_done";
    case TraceKind::kWriteDone:
      return "write_done";
    case TraceKind::kTimestepDone:
      return "ts_done";
    case TraceKind::kCheckpoint:
      return "checkpoint";
    case TraceKind::kLocalCheckpoint:
      return "local_checkpoint";
    case TraceKind::kProactiveCheckpoint:
      return "proactive_checkpoint";
    case TraceKind::kFailure:
      return "failure";
    case TraceKind::kRecoveryStart:
      return "recovery_start";
    case TraceKind::kRecoveryDone:
      return "recovery_done";
    case TraceKind::kReplayDone:
      return "replay_done";
    case TraceKind::kGcSweep:
      return "gc_sweep";
    case TraceKind::kGcWatermarkAdvance:
      return "gc_watermark_advance";
    case TraceKind::kLogTruncate:
      return "log_truncate";
    case TraceKind::kMembershipChange:
      return "membership_change";
    case TraceKind::kResilverDone:
      return "resilver_done";
    case TraceKind::kCkptDrainDone:
      return "ckpt_drain_done";
    case TraceKind::kCkptRestore:
      return "ckpt_restore";
  }
  return "?";
}

void Trace::record(sim::TimePoint at, TraceKind kind, std::string component,
                   int timestep, std::int64_t value) {
  events_.push_back(
      TraceEvent{at, kind, std::move(component), timestep, value});
}

TraceView::iterator& TraceView::iterator::operator++() {
  ++i_;
  skip_non_matching();
  return *this;
}

void TraceView::iterator::skip_non_matching() {
  events_ = view_->events_;
  while (i_ < events_->size() && !view_->matches((*events_)[i_])) ++i_;
}

TraceView::iterator TraceView::end() const {
  iterator it;
  it.view_ = this;
  it.events_ = events_;
  it.i_ = events_->size();
  return it;
}

std::size_t TraceView::size() const {
  std::size_t n = 0;
  for ([[maybe_unused]] const TraceEvent& e : *this) ++n;
  return n;
}

const TraceEvent& TraceView::back() const {
  const TraceEvent* last = nullptr;
  for (const TraceEvent& e : *this) last = &e;
  return *last;
}

const TraceEvent& TraceView::operator[](std::size_t i) const {
  auto it = begin();
  for (std::size_t k = 0; k < i; ++k) ++it;
  return *it;
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& e : events_) {
    const std::int64_t fields[4] = {e.at.ns, static_cast<std::int64_t>(e.kind),
                                    e.timestep, e.value};
    h = fnv1a(std::as_bytes(std::span{fields}), h);
    h = fnv1a_str(e.component, h);
  }
  return h;
}

void Trace::write_csv(std::ostream& os) const {
  os << "time_s,kind,component,timestep,value\n";
  for (const auto& e : events_) {
    os << e.at.seconds() << ',' << trace_kind_name(e.kind) << ','
       << e.component << ',' << e.timestep << ',' << e.value << '\n';
  }
}

}  // namespace dstage::core
