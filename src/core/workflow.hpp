// Workflow specification and run metrics — the library's top-level public
// API. A WorkflowSpec describes the coupled components, the staging fabric,
// the fault-tolerance scheme, and the failure plan; WorkflowRunner (see
// executor.hpp) executes it and returns RunMetrics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/pfs.hpp"
#include "core/cost_model.hpp"
#include "net/config.hpp"
#include "net/fabric.hpp"
#include "obs/config.hpp"
#include "staging/memory_governor.hpp"
#include "staging/server.hpp"
#include "util/geometry.hpp"
#include "util/stats.hpp"

namespace dstage::core {

/// Workflow-level fault-tolerance scheme (the paper's Ds/Co/Un/In/Hy).
enum class Scheme {
  kNone,           // Ds: plain staging, no fault tolerance
  kCoordinated,    // Co: global coordinated checkpoint/restart
  kUncoordinated,  // Un: per-component C/R + data logging
  kIndividual,     // In: per-component C/R, no logging (lower bound,
                   //     sacrifices correctness)
  kHybrid,         // Hy: C/R + data logging, replication where declared
};

const char* scheme_name(Scheme s);

/// Per-component fault-tolerance method (meaningful under kHybrid;
/// kCheckpointRestart elsewhere).
enum class FtMethod { kCheckpointRestart, kReplication };

/// One coupled variable written by a component each timestep.
struct CouplingWrite {
  std::string var;
  /// Fraction of the global domain written (Case 1 sweeps 0.2 .. 1.0).
  double subset_fraction = 1.0;
};

/// One coupled variable read by a component.
struct CouplingRead {
  std::string var;
  double subset_fraction = 1.0;
  /// Temporal frequency: read every `every` timesteps (S3D analyses run at
  /// different temporal frequencies).
  int every = 1;
};

struct ComponentSpec {
  std::string name;
  int cores = 1;
  double compute_per_ts_s = 1.0;
  /// Checkpoint period in timesteps (per-component under Un/In/Hy); these
  /// checkpoints go to the parallel file system and survive node loss.
  int ckpt_period = 4;
  /// Multi-level checkpointing (the paper's future-work direction, after
  /// Moody et al. [16]): additional fast checkpoints to node-local storage
  /// every `local_ckpt_period` timesteps (0 disables). Process failures
  /// restart from the freshest local or PFS checkpoint; node failures can
  /// only use the PFS level.
  int local_ckpt_period = 0;
  FtMethod method = FtMethod::kCheckpointRestart;
  std::vector<CouplingWrite> writes;
  std::vector<CouplingRead> reads;
  /// Owning tenant (multi-tenant staging). 0 — the default — is the classic
  /// single-workflow tenant whose staging keys are unprefixed, so existing
  /// specs and the golden digests are untouched. Stamped by
  /// expand_tenants(); appended last so positional initializers compile.
  int tenant = 0;
};

/// One hand-specified failure. Used by the consistency campaign and its
/// shrinker, which need full control over the schedule (dropping a single
/// failure or bisecting its time must not re-shuffle the rest, which any
/// seed-drawn plan would).
struct ExplicitFailure {
  int comp = 0;             // index into WorkflowSpec::components
  int ts = 1;               // timestep the failure strikes
  double phase = 0.5;       // fraction of the timestep's compute before death;
                            // < 0 means predictor false alarm (no kill)
  bool node_level = false;  // node failure: local checkpoints are lost
  bool predicted = false;   // the failure predictor flagged it in advance

  friend bool operator==(const ExplicitFailure&,
                         const ExplicitFailure&) = default;
};

struct FailurePlan {
  /// Exactly this many failures, uniformly placed in the run window.
  int count = 0;
  /// When > 0 and count == 0, draw failures from an exponential
  /// inter-arrival process with this MTBF instead (Table III's rows).
  double mtbf_s = 0;
  /// When non-empty, use exactly these failures and ignore the randomized
  /// planner (count/mtbf_s) entirely.
  std::vector<ExplicitFailure> explicit_failures;
  std::uint64_t seed = 1;
  /// Fraction of failures that take the whole node down (local checkpoints
  /// lost); the rest are process failures.
  double node_failure_fraction = 0.2;
  /// Proactive checkpointing (the paper's future-work direction, after
  /// Bouguerra et al. [15]): a failure predictor flags this fraction of
  /// failures ahead of time; the doomed component takes an emergency
  /// checkpoint just before dying, shrinking rework to the interrupted
  /// timestep. 0 disables prediction.
  double predictor_recall = 0;
  /// False alarms per run: emergency checkpoints taken with no failure
  /// following (the precision cost of the predictor).
  int predictor_false_alarms = 0;
};

/// One scheduled membership change: at the start of timestep `ts`, either
/// admit a standby into the staging group (join) or retire an active
/// server. `server` == -1 lets the GroupManager pick (lowest standby /
/// highest active).
struct ElasticEvent {
  int ts = 1;
  bool join = true;
  int server = -1;

  friend bool operator==(const ElasticEvent&, const ElasticEvent&) = default;
};

/// Elastic staging-group configuration. Inert by default: with no standbys
/// and no events the runtime builds the classic fixed group and the golden
/// digests are byte-identical.
struct ElasticSpec {
  /// Extra servers built alongside the group but not initially active;
  /// JoinGroup events admit them.
  int standby_servers = 0;
  /// Serve reads by reconstructing redundancy fragments when a fragment
  /// owner is down or mid-resilver (requires a redundancy policy).
  bool degraded_reads = false;
  /// Membership changes, fired at the named timesteps in spec order.
  std::vector<ElasticEvent> events;

  [[nodiscard]] bool enabled() const {
    return standby_servers > 0 || degraded_reads || !events.empty();
  }
};

/// Multi-level checkpoint hierarchy (DESIGN.md §12): node-local cache,
/// XOR-encoded partner redundancy, and an asynchronous background drain to
/// the PFS. Inert by default (xor_group == 0): schemes take classic
/// synchronous PFS checkpoints and the golden digests are byte-identical.
struct CkptSpec {
  /// XOR partner-group size (numbers of peers sharing one parity block).
  /// 0 disables the hierarchy; enabled values must lie in [2, 16]. A single
  /// node loss inside a group is rebuilt from the survivors + parity; two
  /// losses degrade loudly to the PFS level.
  int xor_group = 0;
  /// Vaidya-style adaptive checkpoint interval (SCR_Need_checkpoint):
  /// period = sqrt(2 * ckpt_cost * MTBF) instead of the fixed
  /// ckpt_period. Falls back to the fixed period when failure statistics
  /// are absent (mtbf_s == 0).
  bool adaptive_interval = false;

  [[nodiscard]] bool hierarchy_enabled() const { return xor_group >= 2; }
};

/// Multi-tenant staging (DESIGN.md §13): run `tenants` independent copies
/// of the component graph against ONE shared cluster, staging group, DHT
/// and spill gateway. Every copy's staging keys are namespaced by tenant
/// (staging/tenant.hpp), its coordinated barriers are tenant-private, and
/// rollback/GC are tenant-scoped — tenant A's failures must never truncate
/// or roll back tenant B's data. Inert by default (tenants == 1): the
/// component list is untouched and the golden digests are byte-identical.
struct TenancySpec {
  /// Number of co-located workflow instances sharing the staging group.
  /// 1 (the default) disables expansion entirely.
  int tenants = 1;
  /// Weighted fair-share memory QoS: tenant -> weight, forwarded to the
  /// memory governor when `fair_share` is set. Empty with fair_share on
  /// means equal weights for every tenant (filled in by expand_tenants()).
  std::map<int, double> weights;
  /// Arm per-tenant governor shares (requires staging.memory_budget > 0 to
  /// have any effect). Off: tenants compete for the pooled watermark.
  bool fair_share = false;
  /// Set by expand_tenants() once components have been cloned and stamped;
  /// guards against double expansion when a caller pre-expands the spec.
  bool expanded = false;

  [[nodiscard]] bool enabled() const { return tenants > 1; }
};

/// Write-log payload codec (DESIGN.md §14): LZ block compression plus
/// XOR-delta encoding of successive versions of the same region, applied
/// at log-retain time and decoded transparently on every read path.
/// Inert by default (codec == kNone): payloads are retained raw and the
/// golden-trace digests are byte-identical.
struct WlogSpec {
  wlog::codec::Scheme codec = wlog::codec::Scheme::kNone;

  [[nodiscard]] bool enabled() const {
    return codec != wlog::codec::Scheme::kNone;
  }
};

struct WorkflowSpec {
  Box domain = Box::from_dims(512, 512, 256);
  double bytes_per_point = 8.0;
  std::uint64_t mem_scale = 65536;
  int total_ts = 40;
  int staging_servers = 4;
  int staging_cores = 32;  // reported, and used for victim weighting context
  Scheme scheme = Scheme::kUncoordinated;
  /// Global period under kCoordinated.
  int coordinated_period = 4;
  std::vector<ComponentSpec> components;
  FailurePlan failures;
  CostModel costs;
  net::Fabric::Params fabric;
  cluster::Pfs::Params pfs;
  staging::ServerParams server;  // `logging` is overridden by the scheme
  /// Memory governor for the staging service: per-server budget covering
  /// object store + data log + event-queue metadata, with soft-watermark
  /// spill-to-PFS and hard-watermark client backpressure. Disabled by
  /// default (memory_budget = 0): golden-trace digests are recorded with
  /// unbounded staging memory.
  staging::GovernorParams staging;
  /// DHT grid resolution.
  int cells_per_axis = 8;
  /// Cross-layer observability (metrics registry + span tracing). Off by
  /// default: golden-trace digests are recorded without it.
  obs::ObsConfig obs;
  /// Always-on flight recorder (bounded per-track event rings for failure
  /// forensics). ON by default — it is digest-invisible: no vprocs, no
  /// virtual-time cost, no trace records, no randomness.
  obs::RecorderConfig recorder;
  /// Transport options (request coalescing). Off by default: golden-trace
  /// digests are recorded with per-chunk messages.
  net::Config net;
  /// Elastic staging group (standbys, membership events, degraded reads).
  /// Inert by default: golden-trace digests are recorded with a fixed
  /// group.
  ElasticSpec elastic;
  /// Multi-level checkpoint hierarchy + async PFS drain. Inert by default:
  /// golden-trace digests are recorded with classic synchronous
  /// checkpoints.
  CkptSpec ckpt;
  /// Multi-tenant staging (N workflow instances sharing this cluster).
  /// Inert by default (tenants == 1): golden-trace digests are recorded
  /// single-tenant.
  TenancySpec tenancy;
  /// Write-log payload codec (compression + delta encoding). Inert by
  /// default (kNone): golden-trace digests are recorded with raw payload
  /// retention.
  WlogSpec wlog;

  /// Reject malformed specs before the runtime is assembled. Throws
  /// std::invalid_argument with a message naming the offending field (and
  /// component, where applicable). Called by RuntimeBuilder::build().
  void validate() const;
};

/// True when the scheme logs data/events in staging.
bool scheme_uses_logging(Scheme s);

struct ComponentMetrics {
  std::string name;
  double completion_time_s = 0;
  int timesteps_done = 0;
  int timesteps_reworked = 0;  // re-executed after rollbacks
  int failures = 0;
  int checkpoints = 0;       // PFS-level checkpoints
  int local_checkpoints = 0; // node-local checkpoints (multi-level)
  int proactive_checkpoints = 0;
  SampleSet put_response_s;
  SampleSet get_response_s;
  double cum_put_response_s = 0;
  double cum_get_response_s = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t suppressed_puts = 0;
  int wrong_version_reads = 0;  // Fig.-2 case-1 anomalies observed
  int corrupt_reads = 0;
  /// Virtual time this component spent blocked on checkpoint I/O (the
  /// stall the async drain is built to collapse). Accumulated by every
  /// checkpoint path, hierarchy on or off.
  double ckpt_stall_s = 0;
};

struct StagingMetrics {
  std::uint64_t store_bytes_peak = 0;       // summed over servers
  std::uint64_t total_bytes_peak = 0;       // store + log + metadata
  double store_bytes_mean = 0;
  double total_bytes_mean = 0;
  std::uint64_t log_payload_bytes_peak = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t batch_puts = 0;  // coalesced put messages unpacked
  std::uint64_t puts_suppressed = 0;
  std::uint64_t gets_from_log = 0;
  std::uint64_t replay_mismatches = 0;
  std::uint64_t gc_versions_dropped = 0;
  // Memory-governor counters (all zero when the governor is disabled).
  std::uint64_t spilled_versions = 0;    // log versions evicted to the PFS
  std::uint64_t spilled_bytes = 0;       // nominal bytes evicted
  std::uint64_t spill_fetches = 0;       // spilled versions faulted back in
  std::uint64_t spill_fetch_bytes = 0;
  std::uint64_t spills_aborted = 0;      // evictions raced by GC/rollback
  std::uint64_t urgent_gc_sweeps = 0;    // soft-watermark sweeps
  std::uint64_t puts_rejected = 0;       // hard-watermark RetryLater bounces
  std::uint64_t governor_overruns = 0;   // single puts larger than the budget
  std::uint64_t placement_clamped = 0;   // fragment placements that wrapped
  // Elastic-membership counters (all zero with elasticity off).
  std::uint64_t membership_epoch = 0;     // final epoch of the run
  std::uint64_t membership_joins = 0;     // servers admitted mid-run
  std::uint64_t membership_retires = 0;   // servers drained + retired
  std::uint64_t resilver_chunks_moved = 0;
  std::uint64_t resilver_bytes_moved = 0;
  double resilver_time_s = 0;             // wall-clock spent moving data
  std::uint64_t wrong_epoch_rejects = 0;  // stale-view requests bounced
  std::uint64_t degraded_reads = 0;       // pieces reconstructed from
                                          // fragments on the get path
  // Write-log codec counters (all zero with the codec off).
  std::uint64_t codec_raw_bytes = 0;     // nominal bytes presented to encode
  std::uint64_t codec_stored_bytes = 0;  // nominal-scale bytes after encode
  std::uint64_t codec_blocks = 0;        // payload blocks encoded
  std::uint64_t codec_delta_blocks = 0;  // encoded against a prior version
  std::uint64_t codec_rebases = 0;       // deltas re-encoded full pre-drop
  // Multi-tenant counters.
  std::uint64_t fair_share_rejects = 0;   // puts bounced by a tenant share
  /// Per-tenant peak nominal store bytes, summed over servers — what the
  /// fair-share adherence check in bench/fig_multitenant compares against
  /// each tenant's configured share. Single-tenant runs have one entry
  /// (tenant 0).
  std::map<int, std::uint64_t> tenant_store_bytes_peak;
};

/// Multi-level checkpoint hierarchy counters (all zero with the hierarchy
/// off).
struct CkptMetrics {
  std::uint64_t sets_written = 0;      // level-0 cache writes
  std::uint64_t sets_encoded = 0;      // parity distributions completed
  std::uint64_t drains_completed = 0;  // sets flushed durable to the PFS
  std::uint64_t drain_bytes = 0;       // nominal bytes the drain flushed
  std::uint64_t pressure_stalls = 0;   // drain backoffs under governor load
  std::uint64_t drain_promotions = 0;  // CkptDrainAck applied at servers
  std::uint64_t cache_restarts = 0;    // restarts served from level 0
  std::uint64_t partner_rebuilds = 0;  // restarts served by XOR rebuild
  std::uint64_t pfs_restarts = 0;      // restarts that fell through to PFS
  std::uint64_t cache_evictions = 0;   // superseded sets dropped post-drain
  std::uint64_t blocks_lost = 0;       // cached blocks wiped by node loss
};

struct RunMetrics {
  Scheme scheme = Scheme::kNone;
  double total_time_s = 0;
  int failures_injected = 0;
  std::vector<ComponentMetrics> components;
  StagingMetrics staging;
  CkptMetrics ckpt;
  std::uint64_t pfs_bytes_written = 0;
  std::uint64_t pfs_bytes_read = 0;
  std::uint64_t events_processed = 0;
  /// Vprocs the run was built with (staging servers + component actors +
  /// control/agent processes) — the fig10 ceiling sweep's x axis.
  int vprocs = 0;
  /// Fabric totals (messages/bytes across all traffic classes) — the
  /// batching bench's headline numbers.
  std::uint64_t fabric_packets = 0;
  std::uint64_t fabric_bytes = 0;
  /// Client-side transport counters summed over component clients.
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_exhausted = 0;
  /// Backpressure pauses honored by clients (RetryLater bounces waited out,
  /// including batched-put partial-admission re-sends).
  std::uint64_t rpc_backpressure_waits = 0;

  [[nodiscard]] const ComponentMetrics& component(
      const std::string& name) const;
  [[nodiscard]] int total_anomalies() const;
  /// Producer-side cumulative write response (Fig. 9a/9b metric).
  [[nodiscard]] double cum_write_response_s() const;
};

}  // namespace dstage::core
