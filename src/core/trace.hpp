// Structured execution timeline. The runner records one entry per
// workflow-level event (timestep phases, checkpoints, failures, recoveries,
// replay milestones) with virtual timestamps; the trace can be queried in
// tests, printed, or exported as CSV for plotting. Recording is exact and
// deterministic, so trace digests double as whole-run fingerprints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace dstage::core {

enum class TraceKind {
  kTimestepStart,
  kReadDone,
  kComputeDone,
  kWriteDone,
  kTimestepDone,
  kCheckpoint,       // PFS level
  kLocalCheckpoint,  // node-local level
  kProactiveCheckpoint,
  kFailure,
  kRecoveryStart,
  kRecoveryDone,
  kReplayDone,
  // Staging-internal kinds, surfaced by the observability layer. They are
  // recorded only when ObsConfig::enabled is set, so the golden digests of
  // uninstrumented runs (which hash every event) are unaffected.
  kGcSweep,              // value = nominal bytes reclaimed
  kGcWatermarkAdvance,   // value = new watermark version
  kLogTruncate,          // value = metadata log entries dropped
  // Elastic-membership kinds, recorded only when the spec schedules
  // membership events, so fixed-group golden digests are unaffected.
  kMembershipChange,     // value = 1 join / 0 retire
  kResilverDone,         // value = admitted/retired server id, -1 on reject
  // Multi-level checkpoint kinds, recorded only when the hierarchy is
  // enabled, so hierarchy-off golden digests are unaffected.
  kCkptDrainDone,        // value = drained timestep (now PFS-durable)
  kCkptRestore,          // value = restart level (0 cache / 1 partner /
                         //         2 pfs)
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  sim::TimePoint at;
  TraceKind kind = TraceKind::kTimestepStart;
  std::string component;
  int timestep = 0;
  /// Event-specific detail (bytes written, versions replayed, ...).
  std::int64_t value = 0;
};

/// Lazy, allocation-free view over a trace filtered by kind or component.
/// Iterable with range-for; size() and operator[] walk the underlying
/// event vector (O(n)), which is fine for the tests and tools that use
/// them. The view borrows the trace — don't outlive it.
class TraceView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = TraceEvent;
    using difference_type = std::ptrdiff_t;
    using pointer = const TraceEvent*;
    using reference = const TraceEvent&;

    iterator() = default;
    reference operator*() const { return (*events_)[i_]; }
    pointer operator->() const { return &(*events_)[i_]; }
    iterator& operator++();
    iterator operator++(int) {
      iterator t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    friend class TraceView;
    iterator(const TraceView* view, std::size_t i) : view_(view), i_(i) {
      skip_non_matching();
    }
    void skip_non_matching();

    const TraceView* view_ = nullptr;
    const std::vector<TraceEvent>* events_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const;
  [[nodiscard]] bool empty() const { return begin() == end(); }
  /// Number of matching events (walks the trace).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const TraceEvent& front() const { return *begin(); }
  [[nodiscard]] const TraceEvent& back() const;
  /// i-th matching event (walks the trace).
  [[nodiscard]] const TraceEvent& operator[](std::size_t i) const;

 private:
  friend class Trace;
  enum class Mode { kByKind, kByComponent };
  TraceView(const std::vector<TraceEvent>& events, TraceKind kind)
      : events_(&events), mode_(Mode::kByKind), kind_(kind) {}
  TraceView(const std::vector<TraceEvent>& events, std::string component)
      : events_(&events),
        mode_(Mode::kByComponent),
        component_(std::move(component)) {}
  [[nodiscard]] bool matches(const TraceEvent& e) const {
    return mode_ == Mode::kByKind ? e.kind == kind_
                                  : e.component == component_;
  }

  const std::vector<TraceEvent>* events_;
  Mode mode_;
  TraceKind kind_ = TraceKind::kTimestepStart;
  std::string component_;
};

class Trace {
 public:
  void record(sim::TimePoint at, TraceKind kind, std::string component,
              int timestep, std::int64_t value = 0);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Lazy view over events of one kind, in order (no copy).
  [[nodiscard]] TraceView of_kind(TraceKind kind) const {
    return {events_, kind};
  }
  /// Lazy view over events of one component, in order (no copy).
  [[nodiscard]] TraceView of_component(std::string component) const {
    return {events_, std::move(component)};
  }

  /// Order- and content-sensitive digest (FNV over the serialized records);
  /// equal digests ⇔ identical executions.
  [[nodiscard]] std::uint64_t digest() const;

  /// CSV with header: time_s,kind,component,timestep,value
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dstage::core
