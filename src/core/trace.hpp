// Structured execution timeline. The runner records one entry per
// workflow-level event (timestep phases, checkpoints, failures, recoveries,
// replay milestones) with virtual timestamps; the trace can be queried in
// tests, printed, or exported as CSV for plotting. Recording is exact and
// deterministic, so trace digests double as whole-run fingerprints.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dstage::core {

enum class TraceKind {
  kTimestepStart,
  kReadDone,
  kComputeDone,
  kWriteDone,
  kTimestepDone,
  kCheckpoint,       // PFS level
  kLocalCheckpoint,  // node-local level
  kProactiveCheckpoint,
  kFailure,
  kRecoveryStart,
  kRecoveryDone,
  kReplayDone,
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  sim::TimePoint at;
  TraceKind kind = TraceKind::kTimestepStart;
  std::string component;
  int timestep = 0;
  /// Event-specific detail (bytes written, versions replayed, ...).
  std::int64_t value = 0;
};

class Trace {
 public:
  void record(sim::TimePoint at, TraceKind kind, std::string component,
              int timestep, std::int64_t value = 0);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Events of one kind, in order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceKind kind) const;
  /// Events of one component, in order.
  [[nodiscard]] std::vector<TraceEvent> of_component(
      const std::string& component) const;

  /// Order- and content-sensitive digest (FNV over the serialized records);
  /// equal digests ⇔ identical executions.
  [[nodiscard]] std::uint64_t digest() const;

  /// CSV with header: time_s,kind,component,timestep,value
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dstage::core
