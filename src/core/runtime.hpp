// Runtime layer: owns every subsystem a workflow run needs — the DES
// engine, fabric, virtual cluster, PFS, spatial index, staging servers and
// per-component clients — and arms the failure plan. RuntimeBuilder
// validates a WorkflowSpec and assembles a Runtime; RuntimeServices is the
// borrowed view handed to scheme policies and the recovery pipeline, so
// protocol code never reaches into the orchestrator.
//
// One Runtime is one self-contained simulation: independent Runtimes share
// no mutable state, which is what makes multi-seed sweeps (core/sweep.hpp)
// embarrassingly parallel.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ckpt/drain.hpp"
#include "ckpt/hierarchy.hpp"
#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "core/trace.hpp"
#include "core/workflow.hpp"
#include "dht/spatial_index.hpp"
#include "net/fabric.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "staging/client.hpp"
#include "staging/group.hpp"
#include "staging/server.hpp"
#include "staging/spill_gateway.hpp"
#include "util/rng.hpp"

namespace dstage::core {

class SchemePolicy;
class Runtime;

/// One instantiated application component: its spec, its actor vproc, its
/// staging client, and the checkpoint/progress state the protocol tracks.
struct Comp {
  ComponentSpec spec;
  staging::AppId id = -1;
  cluster::VprocId vproc = -1;
  std::unique_ptr<staging::StagingClient> client;
  int current_ts = 0;        // last fully completed timestep
  int last_ckpt_ts = 0;      // freshest restartable checkpoint (any level)
  int last_pfs_ckpt_ts = 0;  // freshest PFS-level checkpoint
  bool done = false;
  bool recovering = false;
  ComponentMetrics metrics;
  // Open observability spans (0 = none); raw ids so this header stays
  // decoupled from the tracer's lifetime.
  obs::SpanId obs_recovery_span = 0;  // root span of the in-flight recovery
  obs::SpanId obs_detect_span = 0;    // its "detect" child
};

/// One entry of the pre-drawn failure plan.
struct PlannedFailure {
  int comp = 0;
  int ts = 1;
  double phase = 0.5;       // fraction of the timestep's compute before death
  bool node_level = false;  // node failure: local checkpoints are lost
  bool predicted = false;   // the failure predictor flagged it in advance
  bool fired = false;
};

/// Borrowed view over a Runtime's subsystems plus the orchestrator hooks a
/// policy needs to restart component actors. Cheap to copy; valid for the
/// lifetime of the Runtime it came from.
struct RuntimeServices {
  const WorkflowSpec* spec = nullptr;
  sim::Engine* engine = nullptr;
  net::Fabric* fabric = nullptr;
  cluster::Cluster* cluster = nullptr;
  cluster::Pfs* pfs = nullptr;
  dht::SpatialIndex* index = nullptr;
  std::vector<std::unique_ptr<staging::StagingServer>>* servers = nullptr;
  std::vector<std::unique_ptr<Comp>>* comps = nullptr;
  staging::StagingClient* control_client = nullptr;
  sim::Barrier* barrier = nullptr;  // coordinated checkpoint barrier
  /// Per-tenant coordinated barriers, one per tenant, sized to that
  /// tenant's component count. Empty for single-tenant runs — barrier_for()
  /// then returns the classic shared `barrier`, so tenancy-off coordinated
  /// runs are byte-identical.
  std::vector<sim::Barrier*> tenant_barriers;
  sim::CancelToken* sys_token = nullptr;
  Trace* trace = nullptr;
  Runtime* runtime = nullptr;
  /// Observability bundle; null when disabled (the common case), so every
  /// instrumentation site is a single pointer test.
  obs::Observability* obs = nullptr;
  /// Always-on flight recorder; null only when RecorderConfig::enabled is
  /// explicitly cleared. Sites pay one pointer test, exactly like obs.
  obs::FlightRecorder* recorder = nullptr;
  /// Multi-level checkpoint hierarchy; null unless
  /// spec.ckpt.hierarchy_enabled(). Schemes route checkpoints through it
  /// and the recovery pipeline restores from the fastest complete level.
  ckpt::CheckpointHierarchy* ckpt = nullptr;
  /// Drain-agent endpoint for ckpt_announce traffic (-1 = hierarchy off).
  net::EndpointId ckpt_drain_ep = -1;

  // Orchestrator hooks, installed by the executor before run():
  /// Respawn a component's timestep loop, resuming after `start_ts`.
  std::function<void(Comp*, int start_ts)> resume;
  /// Run the Fig. 7(b) re-attach (+ replay) stage in the component's own
  /// process context, then resume its loop from its restored checkpoint.
  std::function<void(Comp*)> resume_recovered;

  // Consistency-oracle probes (null by default; installed by src/check).
  // Probes observe without consuming virtual time or touching the trace,
  // so installing them never changes a run's digest.
  /// Fires after every completed consumer get: order-independent payload
  /// checksum, nominal bytes, and the anomaly counts the client detected.
  std::function<void(const Comp&, int ts, const std::string& var,
                     std::uint64_t checksum, std::uint64_t bytes,
                     int wrong_version, int corrupt)>
      read_probe;
  /// Fires at recovery-pipeline milestones (kRecoveryStart, kRecoveryDone,
  /// kReplayDone). `comp` is null for whole-workflow (coordinated) stages.
  std::function<void(TraceKind stage, const Comp* comp, int ts)>
      recovery_probe;

  /// Context for system activities that survive component kills.
  [[nodiscard]] sim::Ctx system_ctx() const { return {engine, sys_token}; }
  [[nodiscard]] int total_app_cores() const;
  /// Cores of `tenant`'s components only (== total_app_cores() for
  /// single-tenant specs, where every component is tenant 0).
  [[nodiscard]] int tenant_app_cores(int tenant) const;
  /// The coordinated barrier `tenant`'s components synchronize on: the
  /// tenant-private barrier under multi-tenancy, the classic shared one
  /// otherwise.
  [[nodiscard]] sim::Barrier* barrier_for(int tenant) const {
    if (tenant_barriers.empty()) return barrier;
    return tenant_barriers[static_cast<std::size_t>(tenant)];
  }
};

/// Owns the full simulated deployment for one workflow run.
class Runtime {
 public:
  /// Prefer RuntimeBuilder; the policy supplies the logging flags wired
  /// into servers, clients, and the GC retention registry.
  Runtime(WorkflowSpec spec, const SchemePolicy& policy);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] const WorkflowSpec& spec() const { return spec_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] cluster::Pfs& pfs() { return pfs_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] std::vector<std::unique_ptr<Comp>>& comps() { return comps_; }
  [[nodiscard]] std::vector<std::unique_ptr<staging::StagingServer>>&
  servers() {
    return servers_;
  }
  [[nodiscard]] const staging::StagingServer& server(int i) const {
    return *servers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int server_count() const {
    return static_cast<int>(servers_.size());
  }
  [[nodiscard]] std::vector<PlannedFailure>& plan() { return plan_; }
  [[nodiscard]] sim::OneShotEvent& all_done() { return *all_done_; }
  /// Null unless the spec enables observability on a build that compiles
  /// it in.
  [[nodiscard]] obs::Observability* obs() { return obs_.get(); }
  [[nodiscard]] const obs::Observability* obs() const { return obs_.get(); }
  /// Always-on flight recorder (null only when spec.recorder.enabled is
  /// cleared).
  [[nodiscard]] obs::FlightRecorder* recorder() { return recorder_.get(); }
  [[nodiscard]] const obs::FlightRecorder* recorder() const {
    return recorder_.get();
  }
  /// PFS spill gateway for memory-governed runs; null when the governor is
  /// disabled (spec.staging.memory_budget == 0, the default).
  [[nodiscard]] staging::SpillGateway* spill_gateway() {
    return spill_gateway_.get();
  }
  [[nodiscard]] const staging::SpillGateway* spill_gateway() const {
    return spill_gateway_.get();
  }
  /// Elastic membership control plane; null unless spec.elastic.enabled().
  [[nodiscard]] staging::GroupManager* group_manager() {
    return group_manager_.get();
  }
  [[nodiscard]] const staging::GroupManager* group_manager() const {
    return group_manager_.get();
  }
  /// Multi-level checkpoint hierarchy; null unless
  /// spec.ckpt.hierarchy_enabled().
  [[nodiscard]] ckpt::CheckpointHierarchy* ckpt_hierarchy() {
    return ckpt_hierarchy_.get();
  }
  [[nodiscard]] const ckpt::CheckpointHierarchy* ckpt_hierarchy() const {
    return ckpt_hierarchy_.get();
  }
  /// Async PFS drain agent; null unless the hierarchy is enabled.
  [[nodiscard]] ckpt::DrainAgent* drain_agent() { return drain_agent_.get(); }
  [[nodiscard]] const ckpt::DrainAgent* drain_agent() const {
    return drain_agent_.get();
  }

  /// Issue a membership change (join = admit a standby, otherwise retire an
  /// active server; server == -1 lets the GroupManager pick) and wait for
  /// the rebalance — including the background resilver — to complete.
  /// Throws std::logic_error when elastic staging is not enabled. Plain
  /// shim over a private coroutine (GCC 12 coroutine-parameter caveat).
  sim::Task<staging::GroupChangeAck> group_change(sim::Ctx ctx, bool join,
                                                  int server = -1) {
    return group_change_impl(ctx, join, server);
  }

  /// Subsystem view with unset orchestrator hooks.
  [[nodiscard]] RuntimeServices services();

  [[nodiscard]] int total_app_cores() const;
  /// Case-1 subsets: the written/read fraction of the global domain.
  [[nodiscard]] Box subset_region(double fraction) const;
  [[nodiscard]] Comp* comp_for_vproc(cluster::VprocId vproc);
  /// Sets all_done once every component has finished.
  void check_all_done();
  /// Aggregate per-component, staging, PFS, and engine metrics.
  [[nodiscard]] RunMetrics collect(int failures_injected) const;
  /// Close any spans still open at end of run and register the final
  /// fabric/PFS/server/engine counters and gauges. No-op when obs is off;
  /// called by WorkflowRunner after the engine drains.
  void finalize_obs();
  /// Unwind every suspended actor so coroutine frames are reclaimed.
  /// Idempotent; also run by the destructor.
  void teardown();

 private:
  void build(const SchemePolicy& policy);
  void plan_failures();
  sim::Task<staging::GroupChangeAck> group_change_impl(sim::Ctx ctx,
                                                       bool join, int server);

  WorkflowSpec spec_;
  sim::Engine engine_;
  net::Fabric fabric_;
  cluster::Cluster cluster_;
  cluster::Pfs pfs_;
  std::unique_ptr<dht::SpatialIndex> index_;
  std::vector<std::unique_ptr<staging::StagingServer>> servers_;
  std::vector<cluster::VprocId> server_vprocs_;
  std::vector<std::unique_ptr<Comp>> comps_;
  std::unique_ptr<sim::Barrier> barrier_;  // coordinated checkpoint barrier
  /// Tenant-private coordinated barriers (empty unless tenancy.enabled()).
  std::vector<std::unique_ptr<sim::Barrier>> tenant_barriers_;
  std::unique_ptr<sim::OneShotEvent> all_done_;
  std::unique_ptr<staging::StagingClient> control_client_;
  cluster::VprocId control_vproc_ = -1;
  std::unique_ptr<staging::SpillGateway> spill_gateway_;
  cluster::VprocId spill_vproc_ = -1;
  std::unique_ptr<staging::GroupManager> group_manager_;
  cluster::VprocId group_vproc_ = -1;
  std::unique_ptr<ckpt::CheckpointHierarchy> ckpt_hierarchy_;
  std::unique_ptr<ckpt::DrainAgent> drain_agent_;
  cluster::VprocId drain_vproc_ = -1;
  /// Control-plane transport for group_change(); shares the control
  /// client's endpoint (replies are fulfilled through their ReplyPtr, not
  /// the endpoint mailbox, so two Rpc instances coexist safely).
  std::unique_ptr<net::Rpc> control_rpc_;
  sim::CancelToken sys_token_;
  std::vector<PlannedFailure> plan_;
  Rng rng_;
  Trace trace_;
  std::unique_ptr<obs::Observability> obs_;  // null = observability off
  std::unique_ptr<obs::FlightRecorder> recorder_;  // null = recorder off
  bool torn_down_ = false;
};

/// Front door: validates the spec (WorkflowSpec::validate()) and assembles
/// the Runtime with the scheme policy's logging flags applied.
class RuntimeBuilder {
 public:
  explicit RuntimeBuilder(WorkflowSpec spec) : spec_(std::move(spec)) {}

  /// The scheme policy whose logging predicates configure servers, clients
  /// and GC retention. Required before build().
  RuntimeBuilder& policy(const SchemePolicy& p) {
    policy_ = &p;
    return *this;
  }

  [[nodiscard]] std::unique_ptr<Runtime> build();

 private:
  WorkflowSpec spec_;
  const SchemePolicy* policy_ = nullptr;
};

}  // namespace dstage::core
