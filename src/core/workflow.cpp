#include "core/workflow.hpp"

#include <stdexcept>
#include <string>

namespace dstage::core {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("invalid WorkflowSpec: " + what);
}

}  // namespace

void WorkflowSpec::validate() const {
  if (components.empty()) reject("components must be non-empty");
  if (staging_servers < 1) reject("staging_servers must be >= 1");
  if (total_ts < 1) reject("total_ts must be >= 1");
  if (coordinated_period < 1) reject("coordinated_period must be >= 1");
  if (cells_per_axis < 1) reject("cells_per_axis must be >= 1");
  if (!(bytes_per_point > 0)) reject("bytes_per_point must be > 0");
  if (mem_scale < 1) reject("mem_scale must be >= 1");
  if (staging.memory_budget > 0) {
    if (!(staging.soft_watermark > 0) || staging.soft_watermark > 1) {
      reject("staging.soft_watermark must be in (0, 1]");
    }
    if (!(staging.hard_watermark > 0) || staging.hard_watermark > 1) {
      reject("staging.hard_watermark must be in (0, 1]");
    }
    if (staging.soft_watermark > staging.hard_watermark) {
      reject("staging.soft_watermark must be <= staging.hard_watermark");
    }
  }
  try {
    server.policy.validate(staging_servers);
  } catch (const std::invalid_argument& e) {
    reject(e.what());
  }
  if (elastic.standby_servers < 0) {
    reject("elastic.standby_servers must be >= 0");
  }
  if (elastic.degraded_reads &&
      server.policy.kind == resilience::Redundancy::kNone) {
    reject("elastic.degraded_reads requires a redundancy policy");
  }
  {
    // Walk the membership events in order: a join needs a standby left, a
    // retire needs a survivor.
    int active = staging_servers;
    const int total = staging_servers + elastic.standby_servers;
    for (const auto& e : elastic.events) {
      if (e.ts < 1 || e.ts > total_ts) {
        reject("elastic event ts must be in [1, total_ts]");
      }
      if (e.server >= total) reject("elastic event server index out of range");
      if (e.join) {
        if (active >= total) reject("elastic join with no standby available");
        ++active;
      } else {
        if (active < 2) reject("elastic retire would empty the staging group");
        --active;
      }
    }
  }
  if (ckpt.xor_group != 0 && (ckpt.xor_group < 2 || ckpt.xor_group > 16)) {
    reject("ckpt.xor_group must be 0 (off) or in [2, 16]");
  }
  if (tenancy.tenants < 1) reject("tenancy.tenants must be >= 1");
  for (const auto& [t, w] : tenancy.weights) {
    if (t < 0 || t >= tenancy.tenants) {
      reject("tenancy.weights key " + std::to_string(t) +
             " outside [0, tenants)");
    }
    if (!(w > 0)) reject("tenancy.weights values must be > 0");
  }
  for (const auto& c : components) {
    if (c.tenant < 0 || c.tenant >= tenancy.tenants) {
      reject("component '" + c.name + "': tenant " +
             std::to_string(c.tenant) + " outside [0, tenancy.tenants)");
    }
  }
  if (failures.count < 0) reject("failures.count must be >= 0");
  if (failures.mtbf_s < 0) reject("failures.mtbf_s must be >= 0");
  if (failures.node_failure_fraction < 0 ||
      failures.node_failure_fraction > 1) {
    reject("failures.node_failure_fraction must be in [0, 1]");
  }
  if (failures.predictor_recall < 0 || failures.predictor_recall > 1) {
    reject("failures.predictor_recall must be in [0, 1]");
  }
  if (failures.predictor_false_alarms < 0) {
    reject("failures.predictor_false_alarms must be >= 0");
  }
  for (const auto& e : failures.explicit_failures) {
    if (e.comp < 0 || e.comp >= static_cast<int>(components.size())) {
      reject("explicit failure comp index out of range");
    }
    // Multi-tenant isolation campaigns aim every failure at tenant 0 so
    // the other tenants are provable bystanders; expansion puts tenant 0's
    // clones first, keeping pre-expansion comp indices valid.
    if (tenancy.enabled() &&
        components[static_cast<std::size_t>(e.comp)].tenant != 0) {
      reject("explicit failures must target tenant 0 components");
    }
    if (e.ts < 1 || e.ts > total_ts) {
      reject("explicit failure ts must be in [1, total_ts]");
    }
    if (e.phase > 1) reject("explicit failure phase must be <= 1");
  }
  for (const auto& c : components) {
    if (c.name.empty()) reject("component name must be non-empty");
    const std::string who = "component '" + c.name + "': ";
    if (c.cores < 1) reject(who + "cores must be >= 1");
    if (c.compute_per_ts_s < 0) reject(who + "compute_per_ts_s must be >= 0");
    if (c.ckpt_period < 1) reject(who + "ckpt_period must be >= 1");
    if (c.local_ckpt_period < 0) {
      reject(who + "local_ckpt_period must be >= 0 (0 disables)");
    }
    for (const auto& w : c.writes) {
      if (w.var.empty()) reject(who + "write var must be non-empty");
      if (!(w.subset_fraction > 0) || w.subset_fraction > 1) {
        reject(who + "write '" + w.var +
               "' subset_fraction must be in (0, 1]");
      }
    }
    for (const auto& r : c.reads) {
      if (r.var.empty()) reject(who + "read var must be non-empty");
      if (!(r.subset_fraction > 0) || r.subset_fraction > 1) {
        reject(who + "read '" + r.var +
               "' subset_fraction must be in (0, 1]");
      }
      if (r.every < 1) reject(who + "read '" + r.var + "' every must be >= 1");
    }
  }
}

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone:
      return "Ds";
    case Scheme::kCoordinated:
      return "Co";
    case Scheme::kUncoordinated:
      return "Un";
    case Scheme::kIndividual:
      return "In";
    case Scheme::kHybrid:
      return "Hy";
  }
  return "?";
}

const ComponentMetrics& RunMetrics::component(const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("no component named " + name);
}

int RunMetrics::total_anomalies() const {
  int n = 0;
  for (const auto& c : components)
    n += c.wrong_version_reads + c.corrupt_reads;
  return n;
}

double RunMetrics::cum_write_response_s() const {
  double total = 0;
  for (const auto& c : components) total += c.cum_put_response_s;
  return total;
}

}  // namespace dstage::core
