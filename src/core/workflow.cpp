#include "core/workflow.hpp"

#include <stdexcept>

namespace dstage::core {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone:
      return "Ds";
    case Scheme::kCoordinated:
      return "Co";
    case Scheme::kUncoordinated:
      return "Un";
    case Scheme::kIndividual:
      return "In";
    case Scheme::kHybrid:
      return "Hy";
  }
  return "?";
}

bool scheme_uses_logging(Scheme s) {
  return s == Scheme::kUncoordinated || s == Scheme::kHybrid;
}

const ComponentMetrics& RunMetrics::component(const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("no component named " + name);
}

int RunMetrics::total_anomalies() const {
  int n = 0;
  for (const auto& c : components)
    n += c.wrong_version_reads + c.corrupt_reads;
  return n;
}

double RunMetrics::cum_write_response_s() const {
  double total = 0;
  for (const auto& c : components) total += c.cum_put_response_s;
  return total;
}

}  // namespace dstage::core
