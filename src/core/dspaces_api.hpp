// Paper-fidelity aliases for the Global User Interface (Table 1). These
// free functions map the published API names onto StagingClient methods so
// code written against the paper reads verbatim:
//
//   workflow_check()         — send a checkpoint event to data staging
//   workflow_restart()       — recover the staging client and notify the
//                              recovery event to data staging
//   dspaces_put_with_log()   — log data to data staging
//   dspaces_get_with_log()   — retrieve the logged data specified by a
//                              geometric descriptor from data staging
#pragma once

#include "staging/client.hpp"

namespace dstage::core {

inline sim::Task<std::uint64_t> workflow_check(staging::StagingClient& client,
                                               sim::Ctx ctx,
                                               staging::Version version,
                                               bool durable = true) {
  return client.workflow_check(ctx, version, durable);
}

inline sim::Task<std::size_t> workflow_restart(staging::StagingClient& client,
                                               sim::Ctx ctx,
                                               staging::Version restored) {
  return client.workflow_restart(ctx, restored);
}

inline sim::Task<staging::PutResult> dspaces_put_with_log(
    staging::StagingClient& client, sim::Ctx ctx, const std::string& var,
    staging::Version version, const Box& region) {
  return client.put(ctx, var, version, region);
}

inline sim::Task<staging::GetResult> dspaces_get_with_log(
    staging::StagingClient& client, sim::Ctx ctx, const std::string& var,
    staging::Version version, const Box& region) {
  return client.get(ctx, var, version, region);
}

}  // namespace dstage::core
