// The Fig. 7(b) recovery sequence as explicit named stages:
//
//   detect -> process recovery -> data recovery -> client re-attach -> replay
//
// Stage 0 (detect) is the heartbeat-timeout delay the cluster arms on every
// kill (CostModel::detection_delay_s); it has already elapsed by the time a
// policy's recover() runs. The remaining stages are coroutines over
// RuntimeServices that scheme policies compose: the per-component
// checkpoint/restart pipeline (Un/In/Hy and plain staging), replication
// failover (Fig. 6), and the global coordinated rollback. Stages emit the
// Trace events (kRecoveryStart, kRecoveryDone, kReplayDone) that tests and
// run fingerprints rely on.
#pragma once

#include <functional>

#include "core/runtime.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace dstage::core {

// --- individual stages (per-component checkpoint/restart path) -----------

/// Process recovery: ULFM-style revoke/shrink/agree collective plus a spare
/// process joining the communicator. Emits kRecoveryStart.
sim::Task<void> stage_process_recovery(RuntimeServices& rt, Comp& comp,
                                       sim::Ctx sys);

/// Data recovery: restore process state from the freshest usable checkpoint
/// level — the fast node-local level when it holds the anchor, the PFS
/// otherwise — and account the timesteps lost to rollback.
sim::Task<void> stage_data_recovery(RuntimeServices& rt, Comp& comp,
                                    sim::Ctx sys);

/// Client re-attach + replay: re-initialize the component's staging client
/// and, for logged components, emit the recovery event that switches the
/// servers' queues into replay mode (kReplayDone records the replayed event
/// count). Runs inside the revived component's own process context.
sim::Task<void> stage_reattach_and_replay(RuntimeServices& rt, Comp& comp,
                                          bool logged, sim::Ctx ctx);

// --- composed pipelines ----------------------------------------------------

/// Per-component checkpoint/restart: process recovery, data recovery,
/// revive (kRecoveryDone), then hand off to the orchestrator's
/// resume_recovered hook for re-attach + replay + loop resumption.
sim::Task<void> run_checkpoint_restart_recovery(RuntimeServices& rt,
                                                Comp& comp);

/// Replication failover (Fig. 6): the replica takes over and re-executes
/// the interrupted timestep — no rollback, no staging recovery event.
sim::Task<void> run_failover_recovery(RuntimeServices& rt, Comp& comp);

/// Global coordinated rollback: kill every survivor, one ULFM recovery
/// across the whole workflow, contended PFS restores, staging rollback to
/// the global snapshot, resynchronization barrier, then every component
/// resumes from `global_ckpt_ts`. `on_restarted` runs after components are
/// revived and immediately before their loops are respawned (the policy
/// clears its recovery-active latch there).
///
/// `tenant` scopes the rollback under multi-tenancy: >= 0 confines every
/// step — the kills, the ULFM/barrier cost (that tenant's cores only), the
/// PFS restores, and the staging rollback — to that tenant's components
/// and staging keys, leaving every other tenant running untouched. The
/// default (-1) is the classic whole-workflow rollback, byte-identical to
/// the pre-tenancy path.
sim::Task<void> run_coordinated_recovery(RuntimeServices& rt,
                                         int global_ckpt_ts,
                                         std::function<void()> on_restarted,
                                         int tenant = -1);

}  // namespace dstage::core
