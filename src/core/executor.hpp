// WorkflowRunner: the thin orchestrator over the layered runtime. It builds
// a Runtime (via RuntimeBuilder) for the scheme policy selected by the
// spec, drives each component's timestep loop (read -> compute -> write),
// injects the planned failures, and delegates every scheme-dependent
// decision — checkpointing, barrier costs, recovery — to the SchemePolicy
// and the Fig. 7(b) recovery pipeline. One runner executes one workflow
// run; construct a fresh runner per run. For multi-run batches see
// core/sweep.hpp.
#pragma once

#include <memory>

#include "core/runtime.hpp"
#include "core/scheme/policy.hpp"

namespace dstage::core {

class WorkflowRunner {
 public:
  explicit WorkflowRunner(WorkflowSpec spec);
  /// Run with a caller-supplied policy instead of make_scheme_policy(
  /// spec.scheme). Used by fault-injection harnesses (src/check) to drive
  /// runs through deliberately broken policies; a null policy falls back
  /// to the spec's scheme.
  WorkflowRunner(WorkflowSpec spec, std::unique_ptr<SchemePolicy> policy);
  ~WorkflowRunner();
  WorkflowRunner(const WorkflowRunner&) = delete;
  WorkflowRunner& operator=(const WorkflowRunner&) = delete;

  /// Execute the workflow to completion and return the collected metrics.
  /// Throws std::runtime_error if the simulation deadlocks (event queue
  /// drained before every component finished).
  RunMetrics run();

  /// Post-run introspection.
  [[nodiscard]] const staging::StagingServer& server(int i) const {
    return runtime_->server(i);
  }
  [[nodiscard]] int server_count() const { return runtime_->server_count(); }
  [[nodiscard]] sim::Engine& engine() { return runtime_->engine(); }
  /// Structured execution timeline (populated during run()).
  [[nodiscard]] const Trace& trace() const { return runtime_->trace(); }
  /// The scheme policy driving this run.
  [[nodiscard]] const SchemePolicy& policy() const { return *policy_; }
  /// The assembled runtime (engine, cluster, staging, components).
  [[nodiscard]] Runtime& runtime() { return *runtime_; }
  /// The services view this runner drives; the consistency oracle installs
  /// its read/recovery probes here before run().
  [[nodiscard]] RuntimeServices& services() { return services_; }

 private:
  sim::Task<void> run_component(Comp* comp, int start_ts);
  sim::Task<void> run_component_recovered(Comp* comp);
  sim::Task<void> maybe_fail(Comp* comp, int ts, sim::Ctx ctx);
  void on_vproc_failure(cluster::VprocId vproc);
  /// Launch every not-yet-fired elastic membership event scheduled at or
  /// before `ts`. Fired flags live in the runner, so replayed timesteps
  /// after a recovery never re-issue a change.
  void fire_elastic_events(int ts);
  sim::Task<void> drive_elastic_event(ElasticEvent event);

  std::unique_ptr<SchemePolicy> policy_;
  std::unique_ptr<Runtime> runtime_;
  RuntimeServices services_;
  std::vector<bool> elastic_fired_;
  int failures_injected_ = 0;
  bool ran_ = false;
  bool tearing_down_ = false;
};

}  // namespace dstage::core
